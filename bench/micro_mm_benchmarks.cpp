// Microbenchmarks (google-benchmark, host time) for the Linux-side
// memory-management substrate: these guard the simulator's own
// performance, since every figure run executes millions of these
// operations.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "hw/bandwidth.hpp"
#include "hw/machine.hpp"
#include "hw/phys_mem.hpp"
#include "hw/tlb.hpp"
#include "linux_mm/address_space.hpp"
#include "linux_mm/fault.hpp"
#include "linux_mm/memory_system.hpp"
#include "linux_mm/page_table.hpp"
#include "linux_mm/vma.hpp"

namespace {

using namespace hpmmap;

void BM_BuddyAllocFree4K(benchmark::State& state) {
  mm::BuddyAllocator buddy(Range{0, 1 * GiB}, mm::kLinuxMaxOrder);
  for (auto _ : state) {
    auto a = buddy.alloc(0);
    benchmark::DoNotOptimize(a);
    buddy.free(a->addr, 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuddyAllocFree4K);

void BM_BuddyAllocFree2M(benchmark::State& state) {
  mm::BuddyAllocator buddy(Range{0, 1 * GiB}, mm::kLinuxMaxOrder);
  for (auto _ : state) {
    auto a = buddy.alloc(mm::kLargePageOrder);
    benchmark::DoNotOptimize(a);
    buddy.free(a->addr, mm::kLargePageOrder);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuddyAllocFree2M);

void BM_BuddyChurnFragmented(benchmark::State& state) {
  // Steady-state mixed-order churn over a fragmented arena — the
  // kernel-build pattern the figure runs sustain for minutes.
  mm::BuddyAllocator buddy(Range{0, 1 * GiB}, mm::kLinuxMaxOrder);
  Rng rng(1);
  std::vector<std::pair<Addr, unsigned>> held;
  for (int i = 0; i < 5000; ++i) {
    const unsigned order = static_cast<unsigned>(rng.uniform(5));
    if (auto a = buddy.alloc(order)) {
      held.push_back({a->addr, order});
    }
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    auto& slot = held[cursor++ % held.size()];
    buddy.free(slot.first, slot.second);
    const unsigned order = static_cast<unsigned>(rng.uniform(5));
    auto a = buddy.alloc(order);
    slot = {a->addr, order};
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuddyChurnFragmented);

void BM_PageTableMapUnmap4K(benchmark::State& state) {
  mm::PageTable pt;
  Addr va = 0x7f00'0000'0000ull;
  for (auto _ : state) {
    pt.map(va, 0x1000, PageSize::k4K, kProtRW);
    pt.unmap(va, PageSize::k4K);
    va += kSmallPageSize;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageTableMapUnmap4K);

void BM_PageTableWalkHit(benchmark::State& state) {
  mm::PageTable pt;
  const Addr base = 0x7f00'0000'0000ull;
  for (int i = 0; i < 1024; ++i) {
    pt.map(base + static_cast<Addr>(i) * kSmallPageSize, static_cast<Addr>(i) * kSmallPageSize,
           PageSize::k4K, kProtRW);
  }
  Addr va = base;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.walk(va));
    va = base + (va - base + kSmallPageSize) % (1024 * kSmallPageSize);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageTableWalkHit);

void BM_VmaFindFreeTopdown(benchmark::State& state) {
  mm::VmaTree vmas;
  Rng rng(2);
  const Range window{mm::AddressLayout::kMmapBottom, mm::AddressLayout::kMmapTop};
  for (int i = 0; i < 200; ++i) {
    mm::Vma v;
    const Addr begin = window.begin + align_down(rng.uniform(window.size() / 2), kSmallPageSize);
    v.range = Range{begin, begin + (1 + rng.uniform(64)) * kSmallPageSize};
    (void)vmas.insert(v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vmas.find_free_topdown(1 * MiB, kSmallPageSize, window));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VmaFindFreeTopdown);

struct FaultBenchFixture {
  hw::PhysicalMemory phys{4 * GiB, 2};
  hw::BandwidthModel bw{2, 5.6};
  mm::CostModel costs{};
  mm::MemorySystem ms{phys, bw, Rng(3), costs};
  mm::FaultHandler handler{ms, nullptr, nullptr};
  mm::AddressSpace as{1};
  FaultBenchFixture() {
    mm::Vma v;
    v.range = Range{0x5000'0000'0000ull, 0x5000'0000'0000ull + 2 * GiB};
    v.prot = kProtRW;
    v.kind = mm::VmaKind::kAnon;
    (void)as.vmas().insert(v);
  }
};

void BM_FaultHandlerSmallPath(benchmark::State& state) {
  FaultBenchFixture f;
  Addr va = 0x5000'0000'0000ull;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.handler.handle(f.as, va, 0));
    va += kSmallPageSize;
    if (va >= 0x5000'0000'0000ull + 2 * GiB) {
      state.PauseTiming();
      f.~FaultBenchFixture();
      new (&f) FaultBenchFixture();
      va = 0x5000'0000'0000ull;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultHandlerSmallPath);

void BM_TlbModelEvaluation(benchmark::State& state) {
  hw::TlbModel tlb(hw::dell_r415().tlb);
  hw::MappingMix mix;
  mix.bytes_4k = 512 * MiB;
  mix.bytes_2m = 1 * GiB;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.translation_cycles_per_access(mix, 0.97));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbModelEvaluation);

void BM_RngLognormal(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.lognormal_from_moments(1768.0, 993.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngLognormal);

} // namespace
