// Rate-vs-p99 knee: how far each manager can push the open-loop arrival
// rate before the serving tail blows through the tight latency budget.
//
// The SLO figure holds the rate fixed and counts violations; this one
// sweeps the rate and locates the knee — the highest swept rate whose
// exact p99 (reservoir, not P² estimate) still fits under 0.5 ms. The
// same seed replays every (manager, rate) cell, so the knee offsets are
// manager effects. Every cell runs with attribution on, and the report
// prints the exact bucket decomposition of the p99 request *at each
// manager's knee* — where the cycles go at the operating point that
// matters (DESIGN.md §15).
//
// Self-checks (exit 1 on failure):
//   - every request's buckets must sum exactly to its measured latency
//     (residual_errors == 0 across the whole grid);
//   - HPMMAP's knee must sit strictly above both Linux knees, and the
//     three knees must be pairwise distinct;
//   - the whole grid is re-run serially and must match the parallel
//     batch byte-for-byte.
//
// BENCH_attr.json gates the knee speedups through bench_diff like the
// other self-reports.
//
// Usage: fig_server_knee [--full] [--trials N] [--jobs N] [--out-dir DIR]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/batch.hpp"
#include "hw/machine.hpp"
#include "profile/attribution.hpp"
#include "workloads/profiles.hpp"

namespace {

using namespace hpmmap;

constexpr double kBaseRateRps = 80'000.0; // the SLO figure's operating point
constexpr double kWindowSeconds = 10.0;
constexpr double kBudgetMs = 0.5; // tight budget from the SLO figure

// Rate grid as multiples of the base rate. Spacing is deliberately
// uneven: fine through the region where the Linux managers fall over,
// coarser out where only HPMMAP survives.
constexpr double kRateGrid[] = {0.50, 0.65, 0.80, 0.90, 1.00, 1.10, 1.20, 1.35, 1.50};
constexpr std::size_t kGridSize = sizeof(kRateGrid) / sizeof(kRateGrid[0]);

harness::ServerRunConfig cell_config(const bench::BenchOptions& opt, harness::Manager m,
                                     double rate_mult) {
  harness::ServerRunConfig cfg;
  cfg.manager = m;
  cfg.seed = 42;
  cfg.duration_scale = opt.duration_scale;
  cfg.arrival.shape = serving::ArrivalShape::kPoisson;
  cfg.arrival.mean_rps = kBaseRateRps * rate_mult;
  cfg.arrival.duration_seconds = kWindowSeconds;
  cfg.commodity = workloads::profile_a(cfg.service.workers);
  cfg.attribution = true;
  return cfg;
}

struct CellOutcome {
  double rate_rps = 0.0;
  double exact_p99_us = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t residual_errors = 0;
};

struct KneeOutcome {
  harness::Manager manager;
  double knee_rps = 0.0;                // 0 = even the lowest rate blew the budget
  std::size_t knee_cell = kGridSize;    // index into this manager's cells
  std::vector<CellOutcome> cells;
};

bool identical(const std::vector<harness::ServerRunResult>& a,
               const std::vector<harness::ServerRunResult>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const harness::ServerRunResult& x = a[i];
    const harness::ServerRunResult& y = b[i];
    if (x.slo_total != y.slo_total || x.server.completed != y.server.completed ||
        x.tail.exact_p99_us != y.tail.exact_p99_us || x.tail.p99_us != y.tail.p99_us ||
        x.runtime_seconds != y.runtime_seconds || x.events_fired != y.events_fired ||
        x.attribution.completed != y.attribution.completed ||
        x.attribution.residual_errors != y.attribution.residual_errors ||
        x.attribution.totals.sum() != y.attribution.totals.sum()) {
      return false;
    }
  }
  return true;
}

} // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_mode(opt, "serving knee: rate-vs-p99 saturation point per manager");

  const double budget_us = kBudgetMs * 1000.0;
  const harness::Manager managers[] = {harness::Manager::kThp, harness::Manager::kHugetlbfs,
                                       harness::Manager::kHpmmap};

  // One flat (manager x rate) grid through the batch runner; results
  // come back in config order for any --jobs value.
  std::vector<harness::ServerRunConfig> grid;
  for (const harness::Manager m : managers) {
    for (const double mult : kRateGrid) {
      grid.push_back(cell_config(opt, m, mult));
    }
  }
  std::vector<harness::ServerRunResult> results = harness::run_server_batch(grid, opt.jobs);

  // Determinism cross-check: the same grid, strictly serial.
  const bool deterministic = identical(results, harness::run_server_batch(grid, /*jobs=*/1));

  std::uint64_t residual_errors = 0;
  std::vector<KneeOutcome> knees;
  std::string csv = "manager,rate_rps,exact_p99_us,completed,budget_us,within_budget\n";
  for (std::size_t mi = 0; mi < 3; ++mi) {
    KneeOutcome knee;
    knee.manager = managers[mi];
    for (std::size_t ri = 0; ri < kGridSize; ++ri) {
      const harness::ServerRunResult& r = results[mi * kGridSize + ri];
      CellOutcome cell;
      cell.rate_rps = kBaseRateRps * kRateGrid[ri];
      cell.exact_p99_us = r.tail.exact_p99_us;
      cell.completed = r.server.completed;
      cell.residual_errors = r.attribution.residual_errors;
      residual_errors += cell.residual_errors;
      const bool within = cell.exact_p99_us <= budget_us;
      if (within) {
        // Highest in-budget rate wins; a dip back under budget past the
        // knee still counts (the knee is the last sustainable rate).
        knee.knee_rps = cell.rate_rps;
        knee.knee_cell = ri;
      }
      knee.cells.push_back(cell);
      csv += std::string(name(knee.manager)) + "," + std::to_string(cell.rate_rps) + "," +
             std::to_string(cell.exact_p99_us) + "," + std::to_string(cell.completed) + "," +
             std::to_string(budget_us) + "," + (within ? "1" : "0") + "\n";
    }
    knees.push_back(std::move(knee));
  }

  std::printf("%-18s", "rate (rps)");
  for (const double mult : kRateGrid) {
    std::printf(" %9.0f", kBaseRateRps * mult);
  }
  std::printf("\n");
  for (const KneeOutcome& k : knees) {
    std::printf("%-18s", std::string(name(k.manager)).c_str());
    for (const CellOutcome& c : k.cells) {
      std::printf(" %8.0f%c", c.exact_p99_us, c.exact_p99_us <= budget_us ? ' ' : '*');
    }
    std::printf("  (p99 us; * = over %.0f us budget)\n", budget_us);
  }
  std::printf("\n");
  for (const KneeOutcome& k : knees) {
    std::printf("%-18s knee %9.0f rps\n", std::string(name(k.manager)).c_str(), k.knee_rps);
  }

  // Attribution at the knee: where the p99 request's cycles go at each
  // manager's last sustainable rate.
  const double clock_hz = hw::dell_r415().clock_hz;
  for (std::size_t mi = 0; mi < 3; ++mi) {
    const KneeOutcome& k = knees[mi];
    if (k.knee_cell >= kGridSize) {
      continue;
    }
    const harness::ServerRunResult& r = results[mi * kGridSize + k.knee_cell];
    std::printf("\n-- %s @ knee (%.0f rps) --\n", std::string(name(k.manager)).c_str(),
                k.knee_rps);
    std::fputs(profile::render_report(r.attribution, clock_hz).c_str(), stdout);
  }

  const std::string csv_path = opt.out_dir + "/fig_server_knee.csv";
  if (std::FILE* f = std::fopen(csv_path.c_str(), "w")) {
    std::fputs(csv.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", csv_path.c_str());
  }

  const double thp_knee = knees[0].knee_rps;
  const double hugetlbfs_knee = knees[1].knee_rps;
  const double hpmmap_knee = knees[2].knee_rps;
  const auto speedup = [](double linux_knee, double hpmmap_k) {
    return linux_knee > 0.0 ? hpmmap_k / linux_knee : 0.0;
  };
  const double vs_thp = speedup(thp_knee, hpmmap_knee);
  const double vs_hugetlbfs = speedup(hugetlbfs_knee, hpmmap_knee);
  std::printf("knee speedup: HPMMAP/THP %.3f, HPMMAP/HugeTLBfs %.3f\n", vs_thp, vs_hugetlbfs);
  std::printf("attribution residual errors: %llu\n",
              static_cast<unsigned long long>(residual_errors));
  std::printf("determinism (serial vs parallel grid): %s\n",
              deterministic ? "match" : "MISMATCH");

  char body[1024];
  std::snprintf(body, sizeof(body),
                "{\n"
                "  \"bench\": \"server_knee\",\n"
                "  \"sweep\": \"poisson %.0f-%.0f rps, p99 < %.0f us, attribution on\",\n"
                "  \"thp_knee_rps\": %.0f,\n"
                "  \"hugetlbfs_knee_rps\": %.0f,\n"
                "  \"hpmmap_knee_rps\": %.0f,\n"
                "  \"attr_residual_errors\": %llu,\n"
                "  \"hpmmap_over_thp_knee_speedup\": %.5f,\n"
                "  \"hpmmap_over_hugetlbfs_knee_speedup\": %.5f,\n"
                "  \"deterministic_match\": %s\n"
                "}\n",
                kBaseRateRps * kRateGrid[0], kBaseRateRps * kRateGrid[kGridSize - 1], budget_us,
                thp_knee, hugetlbfs_knee, hpmmap_knee,
                static_cast<unsigned long long>(residual_errors), vs_thp, vs_hugetlbfs,
                deterministic ? "true" : "false");
  if (!bench::write_bench_json(opt, "BENCH_attr.json", body)) {
    return 1;
  }

  if (residual_errors != 0) {
    std::fprintf(stderr, "FAIL: %llu requests whose buckets do not sum to measured latency\n",
                 static_cast<unsigned long long>(residual_errors));
    return 1;
  }
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: parallel grid diverged from the serial run\n");
    return 1;
  }
  if (hpmmap_knee <= thp_knee || hpmmap_knee <= hugetlbfs_knee || thp_knee == hugetlbfs_knee) {
    std::fprintf(stderr,
                 "FAIL: knees must be pairwise distinct with HPMMAP highest "
                 "(thp %.0f, hugetlbfs %.0f, hpmmap %.0f)\n",
                 thp_knee, hugetlbfs_knee, hpmmap_knee);
    return 1;
  }
  return 0;
}
