// SMP fault-path contention study (DESIGN.md §14): aggregate demand-
// fault throughput versus core count for the three memory managers.
//
//   Linux-1999   coarse PT lock, no pcp lists, per-page TLB IPIs
//   Linux-today  pcp lists + sharded PT locks + batched shootdowns
//   HPMMAP       module-managed, no shared Linux lock at all (§III-A)
//
// Every worker core runs the same mmap/touch/munmap storm as an
// interleaved actor on one engine, so the curves come out of *executed*
// lock acquisitions (mmap_sem, PT shards, zone locks, IPI stalls) — not
// analytic contention formulas. The paper's scalability argument is the
// widening HPMMAP-to-Linux gap (Fig. 7/8 trend); the bench gates on
// that gap growing strictly with core count, on Linux-today landing
// strictly between the 1999 kernel and HPMMAP once contention binds
// (>= 16 cores), and on each modern feature individually mattering
// (disabling it at 16/64 cores must cost throughput).
//
// Self-report: BENCH_smp.json (gated in CI by bench_diff with a
// per-bench threshold; see .github/workflows).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/experiment.hpp"

namespace {

using namespace hpmmap;
using harness::SmpRunConfig;
using harness::SmpRunResult;
using harness::SmpVariant;

constexpr std::uint32_t kCores[] = {1, 4, 16, 64, 256};
constexpr std::uint32_t kAblationCores[] = {16, 64};
constexpr SmpVariant kVariants[] = {SmpVariant::kLinux1999, SmpVariant::kLinuxToday,
                                    SmpVariant::kHpmmap};

struct Ablation {
  const char* label;
  const char* json_key; // modern / ablated, gated by bench_diff
  std::optional<bool> pcp;
  std::optional<bool> sharded;
  std::optional<bool> batched;
};

constexpr Ablation kAblations[] = {
    {"no pcp lists", "pcp", false, std::nullopt, std::nullopt},
    {"no PT sharding", "pt_sharding", std::nullopt, false, std::nullopt},
    {"no IPI batching", "ipi_batching", std::nullopt, std::nullopt, false},
};

/// Bit-exact run fingerprint for the determinism recheck.
bool same_run(const SmpRunResult& a, const SmpRunResult& b) {
  return a.pages_touched == b.pages_touched && a.events_fired == b.events_fired &&
         std::memcmp(&a.seconds, &b.seconds, sizeof(double)) == 0 &&
         a.smp.mmap_sem_wait == b.smp.mmap_sem_wait &&
         a.smp.pt_lock_wait == b.smp.pt_lock_wait &&
         a.smp.zone_lock_wait == b.smp.zone_lock_wait &&
         a.smp.ipi_stall == b.smp.ipi_stall && a.smp.pcp_hits == b.smp.pcp_hits &&
         a.smp.shootdown_ipis == b.smp.shootdown_ipis;
}

} // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_mode(opt, "SMP fault-path contention: faults/s vs cores (DESIGN.md §14)");

  const std::uint64_t rounds = opt.full ? 8 : 3;
  const std::uint64_t slab = opt.full ? 4 * MiB : 2 * MiB;

  // One batch for the whole grid: 5 core counts x 3 managers, plus the
  // modern-kernel ablations at the two contended core counts.
  std::vector<SmpRunConfig> grid;
  for (const std::uint32_t cores : kCores) {
    for (const SmpVariant v : kVariants) {
      SmpRunConfig c;
      c.variant = v;
      c.cores = cores;
      c.rounds = rounds;
      c.slab_bytes = slab;
      grid.push_back(c);
    }
  }
  const std::size_t ablation_base = grid.size();
  for (const std::uint32_t cores : kAblationCores) {
    for (const Ablation& a : kAblations) {
      SmpRunConfig c;
      c.variant = SmpVariant::kLinuxToday;
      c.cores = cores;
      c.rounds = rounds;
      c.slab_bytes = slab;
      c.pcp = a.pcp;
      c.sharded_pt_locks = a.sharded;
      c.batched_shootdowns = a.batched;
      grid.push_back(c);
    }
  }
  const std::vector<SmpRunResult> runs = harness::run_smp_batch(grid);

  const auto at = [&](std::size_t core_idx, std::size_t variant_idx) -> const SmpRunResult& {
    return runs[core_idx * std::size(kVariants) + variant_idx];
  };

  // --- throughput table -------------------------------------------------
  std::printf("%-14s", "faults/s (M)");
  for (const std::uint32_t cores : kCores) {
    std::printf(" %9u", cores);
  }
  std::printf("\n");
  for (std::size_t vi = 0; vi < std::size(kVariants); ++vi) {
    std::printf("%-14s", std::string(name(kVariants[vi])).c_str());
    for (std::size_t ci = 0; ci < std::size(kCores); ++ci) {
      std::printf(" %9.3f", at(ci, vi).faults_per_sec / 1e6);
    }
    std::printf("\n");
  }
  std::printf("%-14s", "HPMMAP/stock");
  double ratios[std::size(kCores)];
  for (std::size_t ci = 0; ci < std::size(kCores); ++ci) {
    ratios[ci] = at(ci, 2).faults_per_sec / at(ci, 0).faults_per_sec;
    std::printf(" %8.2fx", ratios[ci]);
  }
  std::printf("\n\n");

  // --- lock-wait breakdown (executed, not costed) -----------------------
  std::printf("lock-wait share of span (Linux-today):\n");
  std::printf("%-10s %12s %12s %12s %12s %10s\n", "cores", "mmap_sem", "pt_lock",
              "zone_lock", "ipi_stall", "pcp hit%");
  for (std::size_t ci = 0; ci < std::size(kCores); ++ci) {
    const SmpRunResult& r = at(ci, 1);
    const double span = r.seconds * r.clock_hz * r.cores;
    const auto share = [&](Cycles w) { return span > 0 ? 100.0 * double(w) / span : 0.0; };
    const std::uint64_t pcp_total = r.smp.pcp_hits + r.smp.pcp_misses;
    std::printf("%-10u %11.2f%% %11.2f%% %11.2f%% %11.2f%% %9.1f%%\n", r.cores,
                share(r.smp.mmap_sem_wait), share(r.smp.pt_lock_wait),
                share(r.smp.zone_lock_wait), share(r.smp.ipi_stall),
                pcp_total > 0 ? 100.0 * double(r.smp.pcp_hits) / double(pcp_total) : 0.0);
  }
  std::printf("\n");

  // --- ablations --------------------------------------------------------
  std::printf("modern-kernel ablations (faults/s vs full Linux-today):\n");
  double ablation_ratio[std::size(kAblationCores)][std::size(kAblations)];
  bool ablations_bind = true;
  for (std::size_t gi = 0; gi < std::size(kAblationCores); ++gi) {
    const std::size_t ci = kAblationCores[gi] == 16 ? 2 : 3;
    const double modern = at(ci, 1).faults_per_sec;
    for (std::size_t ai = 0; ai < std::size(kAblations); ++ai) {
      const SmpRunResult& r = runs[ablation_base + gi * std::size(kAblations) + ai];
      ablation_ratio[gi][ai] = modern / r.faults_per_sec;
      ablations_bind = ablations_bind && r.faults_per_sec < modern;
      std::printf("  %3u cores  %-16s %9.3f M/s  (full/ablated %.2fx)\n", r.cores,
                  kAblations[ai].label, r.faults_per_sec / 1e6, ablation_ratio[gi][ai]);
    }
  }
  std::printf("\n");

  // --- CSV --------------------------------------------------------------
  {
    const std::string path = opt.out_dir + "/smp_contention.csv";
    std::FILE* csv = std::fopen(path.c_str(), "w");
    if (csv != nullptr) {
      std::fprintf(csv,
                   "variant,cores,pages,seconds,faults_per_sec,mmap_sem_wait,pt_lock_wait,"
                   "zone_lock_wait,ipi_stall,pcp_hits,pcp_misses,shootdown_ipis,"
                   "shootdown_pages\n");
      for (std::size_t i = 0; i < runs.size(); ++i) {
        const SmpRunResult& r = runs[i];
        std::string label{name(grid[i].variant)};
        if (i >= ablation_base) {
          const std::size_t ai = (i - ablation_base) % std::size(kAblations);
          label += std::string("-no-") + kAblations[ai].json_key;
        }
        std::fprintf(csv, "%s,%u,%llu,%.9f,%.3f,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu\n",
                     label.c_str(), r.cores, static_cast<unsigned long long>(r.pages_touched), r.seconds,
                     r.faults_per_sec, static_cast<unsigned long long>(r.smp.mmap_sem_wait),
                     static_cast<unsigned long long>(r.smp.pt_lock_wait),
                     static_cast<unsigned long long>(r.smp.zone_lock_wait),
                     static_cast<unsigned long long>(r.smp.ipi_stall),
                     static_cast<unsigned long long>(r.smp.pcp_hits),
                     static_cast<unsigned long long>(r.smp.pcp_misses),
                     static_cast<unsigned long long>(r.smp.shootdown_ipis),
                     static_cast<unsigned long long>(r.smp.shootdown_pages));
      }
      std::fclose(csv);
      std::printf("wrote %s\n", path.c_str());
    }
  }

  // --- determinism recheck ----------------------------------------------
  // The batch above ran on default_jobs() workers; replay the contended
  // column serially and require bit-identical results.
  bool deterministic = true;
  for (const SmpVariant v : kVariants) {
    SmpRunConfig c;
    c.variant = v;
    c.cores = 16;
    c.rounds = rounds;
    c.slab_bytes = slab;
    const SmpRunResult serial = harness::run_smp(c);
    const std::size_t vi = v == SmpVariant::kLinux1999 ? 0 : v == SmpVariant::kLinuxToday ? 1 : 2;
    deterministic = deterministic && same_run(serial, at(2, vi));
  }
  std::printf("determinism (parallel batch vs serial replay @16 cores): %s\n\n",
              deterministic ? "MATCH" : "MISMATCH");

  // --- gates ------------------------------------------------------------
  bool pass = deterministic;
  for (std::size_t ci = 1; ci < std::size(kCores); ++ci) {
    if (!(ratios[ci] > ratios[ci - 1])) {
      std::printf("GATE FAIL: HPMMAP/stock ratio not strictly increasing at %u cores "
                  "(%.3f -> %.3f)\n",
                  kCores[ci], ratios[ci - 1], ratios[ci]);
      pass = false;
    }
  }
  for (std::size_t ci = 2; ci < std::size(kCores); ++ci) {
    const double stock = at(ci, 0).faults_per_sec;
    const double modern = at(ci, 1).faults_per_sec;
    const double hpm = at(ci, 2).faults_per_sec;
    if (!(stock < modern && modern < hpm)) {
      std::printf("GATE FAIL: at %u cores expected stock < modern < HPMMAP "
                  "(%.0f / %.0f / %.0f)\n",
                  kCores[ci], stock, modern, hpm);
      pass = false;
    }
  }
  if (!ablations_bind) {
    std::printf("GATE FAIL: an ablated modern kernel matched or beat the full one\n");
    pass = false;
  }
  for (std::size_t ci = 1; ci < std::size(kCores); ++ci) {
    if (at(ci, 1).smp.total_lock_wait() == 0 || at(ci, 0).smp.total_lock_wait() == 0) {
      std::printf("GATE FAIL: no executed lock wait recorded at %u cores\n", kCores[ci]);
      pass = false;
    }
  }

  // --- self-report ------------------------------------------------------
  std::string json = "{\n  \"bench\": \"smp_contention\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"sweep\": \"%llu rounds x %llu KiB slab per core, cores 1..256\",\n",
                static_cast<unsigned long long>(rounds), static_cast<unsigned long long>(slab / 1024));
  json += buf;
  json += "  \"cores\": [1, 4, 16, 64, 256],\n";
  for (std::size_t vi = 0; vi < std::size(kVariants); ++vi) {
    const char* key = vi == 0 ? "stock_faults_per_sec"
                              : vi == 1 ? "modern_faults_per_sec" : "hpmmap_faults_per_sec";
    json += std::string("  \"") + key + "\": [";
    for (std::size_t ci = 0; ci < std::size(kCores); ++ci) {
      std::snprintf(buf, sizeof(buf), "%s%.1f", ci == 0 ? "" : ", ",
                    at(ci, vi).faults_per_sec);
      json += buf;
    }
    json += "],\n";
  }
  for (std::size_t ci = 0; ci < std::size(kCores); ++ci) {
    std::snprintf(buf, sizeof(buf), "  \"hpmmap_vs_stock_c%u_improvement_ratio\": %.5f,\n",
                  kCores[ci], ratios[ci]);
    json += buf;
  }
  std::snprintf(buf, sizeof(buf), "  \"modern_vs_stock_c64_improvement_ratio\": %.5f,\n",
                at(3, 1).faults_per_sec / at(3, 0).faults_per_sec);
  json += buf;
  for (std::size_t ai = 0; ai < std::size(kAblations); ++ai) {
    std::snprintf(buf, sizeof(buf), "  \"%s_c64_improvement_ratio\": %.5f,\n",
                  kAblations[ai].json_key, ablation_ratio[1][ai]);
    json += buf;
  }
  json += std::string("  \"deterministic_match\": ") + (deterministic ? "true" : "false") +
          "\n}\n";
  if (!bench::write_bench_json(opt, "BENCH_smp.json", json)) {
    return 1;
  }

  std::printf("bench_smp_contention: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
