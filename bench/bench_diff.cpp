// bench_diff: compare BENCH_*.json self-reports and fail on regression.
//
//   bench_diff [--threshold F] [--threshold-for NAME=F] BASELINE CURRENT
//
// BASELINE and CURRENT are either two JSON files or two directories; in
// directory mode every BENCH_*.json present in BASELINE is diffed
// against the file of the same name in CURRENT (a missing current file
// is a failure — a bench that stopped reporting is a regression too).
//
// Gated metrics (keys ending in improvement_ratio / speedup, or the
// --gate list) fail the run when current < baseline * (1 - threshold);
// absolute throughput numbers are reported but not gated, since they
// measure the runner as much as the code. Exit 0 = pass, 1 = regression,
// 2 = usage/parse error.
//
// --threshold-for overrides the threshold for one file name (repeatable),
// so a noisy bench can run with a looser gate without loosening the rest:
//
//   bench_diff --threshold-for BENCH_smp.json=0.25 baseline/ current/
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "introspect/bench_diff.hpp"

namespace {

using namespace hpmmap;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: bench_diff [--threshold F] [--threshold-for NAME=F]\n"
               "                  [--gate KEY[,KEY...]] BASELINE CURRENT\n"
               "  BASELINE/CURRENT: two BENCH_*.json files, or two directories\n"
               "                    (every BENCH_*.json in BASELINE is compared)\n"
               "  --threshold F     allowed relative drop in gated metrics (default 0.10)\n"
               "  --threshold-for NAME=F  override the threshold for one bench file\n"
               "                    (matched by file name; repeatable)\n"
               "  --gate KEYS       gate exactly these dotted keys instead of the\n"
               "                    default improvement_ratio/speedup set\n");
  std::exit(2);
}

bool is_dir(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

struct ThresholdOverride {
  std::string name; // bench file name, e.g. "BENCH_smp.json"
  double value = 0.0;
};

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Threshold for one bench file: the last matching --threshold-for wins,
/// otherwise the global --threshold.
double threshold_for(const std::string& name, double fallback,
                     const std::vector<ThresholdOverride>& overrides) {
  double t = fallback;
  for (const ThresholdOverride& o : overrides) {
    if (o.name == name) {
      t = o.value;
    }
  }
  return t;
}

std::optional<introspect::BenchDoc> load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream body;
  body << f.rdbuf();
  auto doc = introspect::parse_bench_json(body.str());
  if (!doc) {
    std::fprintf(stderr, "bench_diff: malformed JSON in %s\n", path.c_str());
  }
  return doc;
}

/// BENCH_*.json names in `dir`, sorted for a stable report order.
std::vector<std::string> bench_files(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return names;
  }
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

/// Diff one baseline/current file pair; returns pass/fail (parse errors
/// count as failure so CI can't silently skip a corrupt report).
bool diff_pair(const std::string& base_path, const std::string& cur_path, double threshold,
               const std::vector<std::string>& gates, const std::string& title) {
  const auto base = load(base_path);
  const auto cur = load(cur_path);
  if (!base || !cur) {
    return false;
  }
  const introspect::DiffResult r = introspect::diff_bench(*base, *cur, threshold, gates);
  std::printf("%s", introspect::format_diff(r, title).c_str());
  return r.pass;
}

} // namespace

int main(int argc, char** argv) {
  double threshold = 0.10;
  std::vector<ThresholdOverride> overrides;
  std::vector<std::string> gates;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--threshold") && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--threshold-for") && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "bench_diff: --threshold-for wants NAME=F, got %s\n",
                     spec.c_str());
        usage();
      }
      overrides.push_back({spec.substr(0, eq), std::atof(spec.c_str() + eq + 1)});
    } else if (!std::strcmp(argv[i], "--gate") && i + 1 < argc) {
      std::string list = argv[++i];
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > start) {
          gates.push_back(list.substr(start, end - start));
        }
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
    } else if (argv[i][0] == '-') {
      usage();
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.size() != 2) {
    usage();
  }
  const std::string& baseline = paths[0];
  const std::string& current = paths[1];

  bool pass = true;
  if (is_dir(baseline) && is_dir(current)) {
    const std::vector<std::string> names = bench_files(baseline);
    if (names.empty()) {
      std::fprintf(stderr, "bench_diff: no BENCH_*.json under %s\n", baseline.c_str());
      return 2;
    }
    for (const std::string& name : names) {
      pass = diff_pair(baseline + "/" + name, current + "/" + name,
                       threshold_for(name, threshold, overrides), gates, name) &&
             pass;
    }
  } else {
    pass = diff_pair(baseline, current,
                     threshold_for(basename_of(baseline), threshold, overrides), gates,
                     current);
  }
  std::printf("bench_diff: %s (default threshold %.4g%%, %zu per-bench override%s)\n",
              pass ? "PASS" : "FAIL", threshold * 100.0, overrides.size(),
              overrides.size() == 1 ? "" : "s");
  return pass ? 0 : 1;
}
