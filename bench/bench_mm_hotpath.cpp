// mm hot-path throughput, self-reported as JSON (BENCH_mm.json).
//
// Runs the Figure-2-shaped fault storm — sequential 4K anonymous faults
// over an aged zone, with khugepaged-style 2M merges, occasional THP
// splits, page-cache grow/shrink churn and page-walk storms — through
// two complete mm stacks compiled into this binary:
//
//   current:  the mem_map-backed structures shipped in src/linux_mm
//             (bitmap buddy freelists, intrusive LRU, packed radix
//             page table — zero heap traffic per operation);
//   baseline: the pre-optimization structures (std::set freelists,
//             std::list + std::map LRU, unique_ptr-chained page-table
//             nodes), embedded verbatim in bench/legacy_mm.hpp and
//             measured live, so the improvement ratio is
//             machine-independent.
//
// Both stacks execute the identical operation sequence; because the
// allocator determinism contract (always pop the lowest-addressed free
// block) holds for both, every allocation returns the same address and
// the run fingerprints — an FNV hash over every allocated address plus
// final allocator/cache/page-table state — must match exactly. A
// mismatch fails the bench (exit 1): a speedup measured over divergent
// work would be meaningless.
//
// Usage: bench_mm_hotpath [--full] [--out-dir DIR]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/assert.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "legacy_mm.hpp"
#include "linux_mm/buddy_allocator.hpp"
#include "linux_mm/page_cache.hpp"
#include "linux_mm/page_table.hpp"

namespace {

using namespace hpmmap;

constexpr unsigned kMaxOrder = 10;      // Linux zone allocator
constexpr unsigned kMergeOrder = 9;     // 2M
constexpr Addr kVBase = Addr{1} << 32;  // fault region base (2M-aligned)

struct CurrentStack {
  using Buddy = mm::BuddyAllocator;
  using Cache = mm::PageCache;
  using Pt = mm::PageTable;
};

struct LegacyStack {
  using Buddy = bench::legacy::BuddyAllocator;
  using Cache = bench::legacy::PageCache;
  using Pt = bench::legacy::PageTable;
};

/// Everything the storm's outcome depends on, folded into comparable
/// state. Equal fingerprints <=> both stacks did the same work.
struct Fingerprint {
  std::uint64_t addr_hash = 0xcbf29ce484222325ull; // FNV-1a over alloc addrs
  std::uint64_t free_bytes = 0;
  std::uint64_t cached_bytes = 0;
  std::uint64_t cache_blocks = 0;
  std::uint64_t mix_4k = 0;
  std::uint64_t mix_2m = 0;
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t split_steps = 0;
  std::uint64_t merge_steps = 0;

  void mix(std::uint64_t v) noexcept {
    addr_hash = (addr_hash ^ v) * 1099511628211ull;
  }
  [[nodiscard]] bool operator==(const Fingerprint&) const = default;
};

struct StormResult {
  Fingerprint fp;
  std::uint64_t faults = 0;
  double wall_seconds = 0.0;
  [[nodiscard]] double faults_per_sec() const noexcept {
    return wall_seconds > 0 ? static_cast<double>(faults) / wall_seconds : 0.0;
  }
};

/// xorshift64* — deterministic churn schedule, identical on both stacks
/// (control flow never diverges, so both consume the same stream).
struct Rng {
  std::uint64_t s;
  std::uint64_t next() noexcept {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1Dull;
  }
};

template <typename Stack>
StormResult run_storm(std::uint64_t faults, std::uint64_t zone_bytes) {
  const Range zone{0, zone_bytes};
  typename Stack::Buddy buddy(zone, kMaxOrder);
  typename Stack::Cache cache(buddy, 0.3);
  typename Stack::Pt pt;

  // --- setup (untimed): age the zone the way a booted, loaded node is
  // aged — long-lived slab-style allocations at mixed orders with churn,
  // then a page cache filled to ~45% of RAM. This is what makes order-9
  // assembly contested, per the paper's loaded-fault-cost argument.
  Rng rng{0x9e3779b97f4a7c15ull};
  std::vector<std::pair<Addr, unsigned>> slab;
  slab.reserve(4096);
  for (int i = 0; i < 20000; ++i) {
    if (slab.size() < 4000 && (rng.next() & 3u) != 0) {
      const unsigned o = static_cast<unsigned>(rng.next() % 4);
      if (auto a = buddy.alloc(o); a.has_value()) {
        slab.emplace_back(a->addr, o);
      }
    } else if (!slab.empty()) {
      const std::size_t k = rng.next() % slab.size();
      buddy.free(slab[k].first, slab[k].second);
      slab[k] = slab.back();
      slab.pop_back();
    }
  }
  cache.set_free_floor(zone_bytes / 16);
  cache.grow(zone_bytes * 45 / 100, 0, false);

  // --- the timed fault storm ---
  Fingerprint fp;
  std::vector<Addr> region_phys(kSmallPagesPerLarge, 0);
  struct MergedRegion {
    Addr vbase;
    Addr phys;
    bool split;
  };
  std::vector<MergedRegion> merged; // FIFO working-set window
  merged.reserve(16);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < faults; ++i) {
    const Addr vaddr = kVBase + (i << 12);
    // Fault entry: the walk that missed.
    HPMMAP_ASSERT(!pt.walk(vaddr).has_value(), "fault on a mapped page");
    auto frame = buddy.alloc(0);
    if (!frame.has_value()) {
      // Direct reclaim: shrink the cache and retry.
      const auto r = cache.shrink(2 * MiB);
      HPMMAP_ASSERT(r.bytes_freed > 0, "storm wedged: no memory and no cache");
      frame = buddy.alloc(0);
      HPMMAP_ASSERT(frame.has_value(), "order-0 alloc failed after reclaim");
    }
    fp.mix(frame->addr);
    region_phys[i % kSmallPagesPerLarge] = frame->addr;
    HPMMAP_ASSERT(pt.map(vaddr, frame->addr, PageSize::k4K, kProtRW) == Errno::kOk,
                  "4K map failed");

    // khugepaged: a 2M virtual region just filled with 4K leaves —
    // collapse it (unmap 512, free the scattered frames back through the
    // coalescer, take an order-9 block, install one PD leaf).
    if (i % kSmallPagesPerLarge == kSmallPagesPerLarge - 1) {
      const Addr vregion = align_down(vaddr, kLargePageSize);
      HPMMAP_ASSERT(pt.small_count_in_2m(vregion) == kSmallPagesPerLarge,
                    "merge candidate not fully populated");
      for (std::uint64_t j = 0; j < kSmallPagesPerLarge; ++j) {
        HPMMAP_ASSERT(pt.unmap(vregion + (j << 12), PageSize::k4K) == Errno::kOk,
                      "merge unmap failed");
        buddy.free(region_phys[j], 0);
      }
      auto big = buddy.alloc(kMergeOrder);
      while (!big.has_value()) {
        const auto r = cache.shrink(4 * MiB);
        HPMMAP_ASSERT(r.bytes_freed > 0, "storm wedged assembling a 2M block");
        big = buddy.alloc(kMergeOrder);
      }
      fp.mix(big->addr);
      HPMMAP_ASSERT(pt.map(vregion, big->addr, PageSize::k2M, kProtRW) == Errno::kOk,
                    "2M collapse map failed");
      merged.push_back(MergedRegion{vregion, big->addr, false});
      // Every 8th merged region is immediately split back (mlock on a
      // THP region, §II-B): one PD leaf becomes 512 PTEs.
      if (merged.size() % 8 == 0) {
        HPMMAP_ASSERT(pt.split_large(vregion) == Errno::kOk, "split failed");
        merged.back().split = true;
      }
      // Bound the working set: retire the oldest merged region.
      if (merged.size() > 12) {
        const MergedRegion old = merged.front();
        merged.erase(merged.begin());
        if (old.split) {
          for (std::uint64_t j = 0; j < kSmallPagesPerLarge; ++j) {
            HPMMAP_ASSERT(pt.unmap(old.vbase + (j << 12), PageSize::k4K) == Errno::kOk,
                          "retire unmap failed");
            buddy.free(old.phys + (j << 12), 0); // re-coalesces to order 9
          }
        } else {
          HPMMAP_ASSERT(pt.unmap(old.vbase, PageSize::k2M) == Errno::kOk,
                        "retire unmap failed");
          buddy.free(old.phys, kMergeOrder);
        }
      }
    }

    // Competing page-cache fill (kernel-build file churn: the cache
    // refills toward its floor as fast as reclaim drains it) plus a
    // page-walk storm over the faulted region.
    if (i % 16 == 0) {
      cache.grow(64 * KiB, 0, false);
    }
    if (i % 64 == 0) {
      for (int k = 0; k < 8; ++k) {
        const Addr probe = kVBase + ((rng.next() % (i + 1)) << 12);
        if (const auto t = pt.walk(probe); t.has_value()) {
          fp.mix(t->phys);
        }
      }
    }
    if (i % 512 == 511) {
      cache.shrink(MiB);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  fp.free_bytes = buddy.free_bytes();
  fp.cached_bytes = cache.cached_bytes();
  fp.cache_blocks = cache.block_count();
  const hw::MappingMix mix = pt.mapping_mix();
  fp.mix_4k = mix.bytes_4k;
  fp.mix_2m = mix.bytes_2m;
  fp.allocs = buddy.stats().allocs;
  fp.frees = buddy.stats().frees;
  fp.split_steps = buddy.stats().split_steps;
  fp.merge_steps = buddy.stats().merge_steps;

  StormResult result;
  result.fp = fp;
  result.faults = faults;
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return result;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

} // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_mode(opt, "mm hot-path throughput (JSON self-report)");

  const std::uint64_t faults = opt.full ? 4'000'000 : 1'000'000;
  const std::uint64_t zone_bytes = opt.full ? 2 * GiB : 512 * MiB;

  // Warm both heaps so first-touch noise lands outside the timed loops.
  (void)run_storm<CurrentStack>(faults / 20, zone_bytes);
  (void)run_storm<LegacyStack>(faults / 20, zone_bytes);

  const StormResult current = run_storm<CurrentStack>(faults, zone_bytes);
  const StormResult baseline = run_storm<LegacyStack>(faults, zone_bytes);

  if (!(current.fp == baseline.fp)) {
    std::fprintf(stderr,
                 "FAIL: fingerprint divergence between current and baseline "
                 "stacks\n  addr_hash  %016llx vs %016llx\n  free_bytes %llu "
                 "vs %llu\n  cached     %llu vs %llu\n",
                 static_cast<unsigned long long>(current.fp.addr_hash),
                 static_cast<unsigned long long>(baseline.fp.addr_hash),
                 static_cast<unsigned long long>(current.fp.free_bytes),
                 static_cast<unsigned long long>(baseline.fp.free_bytes),
                 static_cast<unsigned long long>(current.fp.cached_bytes),
                 static_cast<unsigned long long>(baseline.fp.cached_bytes));
    return 1;
  }

  const double ratio = baseline.faults_per_sec() > 0
                           ? current.faults_per_sec() / baseline.faults_per_sec()
                           : 0.0;
  std::printf("mm:       %10.0f faults/sec  (%llu faults, %.3f s wall)\n",
              current.faults_per_sec(),
              static_cast<unsigned long long>(current.faults), current.wall_seconds);
  std::printf("baseline: %10.0f faults/sec  (std::set freelists + list/map LRU + "
              "pointer-chased page table)\n",
              baseline.faults_per_sec());
  std::printf("improvement: %.2fx   (fingerprints identical: %016llx)\n\n", ratio,
              static_cast<unsigned long long>(current.fp.addr_hash));

  std::string j;
  j += "{\n";
  j += "  \"bench\": \"mm_hotpath\",\n";
  j += "  \"workload\": \"fig2-style fault storm: sequential 4K faults, khugepaged "
       "2M merges, THP splits, page-cache churn over an aged zone\",\n";
  j += "  \"faults\": " + std::to_string(current.faults) + ",\n";
  j += "  \"wall_seconds\": " + num(current.wall_seconds) + ",\n";
  j += "  \"faults_per_sec\": " + num(current.faults_per_sec()) + ",\n";
  j += "  \"baseline\": {\n";
  j += "    \"impl\": \"std::set freelists + std::list/std::map LRU + "
       "unique_ptr-chained page table (pre-optimization mm, measured live)\",\n";
  j += "    \"faults\": " + std::to_string(baseline.faults) + ",\n";
  j += "    \"wall_seconds\": " + num(baseline.wall_seconds) + ",\n";
  j += "    \"faults_per_sec\": " + num(baseline.faults_per_sec()) + "\n";
  j += "  },\n";
  j += "  \"improvement_ratio\": " + num(ratio) + "\n";
  j += "}\n";
  if (!bench::write_bench_json(opt, "BENCH_mm.json", j)) {
    return 1;
  }
  return 0;
}
