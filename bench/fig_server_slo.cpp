// Serving-tail figure: SLO violations under a competing kernel build.
//
// The HPC figures measure how much a co-located build stretches an
// application's runtime; this one measures what a datacenter operator
// actually pages on — how many requests of an open-loop serving
// workload blow their latency budget. The same Poisson schedule (common
// random numbers) replays against all three managers on the Dell R415
// model while profile A's kernel build churns beside it; violations are
// exact exceedance counts from the SLO accountant, not quantile
// estimates, so the headline is robust to P²'s bimodal-distribution
// error (the exact reservoir cross-check is reported alongside).
//
// Self-checks (exit 1 on failure):
//   - HPMMAP must finish with strictly fewer total SLO violations than
//     both Linux configurations — the paper's claim, and the regression
//     this figure exists to catch;
//   - one backend's trial loop is re-run serially and must match the
//     parallel run byte-for-byte (violations, completions, sheds, and
//     every tail estimate), the batch determinism contract.
//
// BENCH_server.json gates the violation improvement ratios through
// bench_diff like the other self-reports.
//
// Usage: fig_server_slo [--full] [--trials N] [--jobs N] [--out-dir DIR]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/batch.hpp"
#include "hw/machine.hpp"
#include "workloads/profiles.hpp"

namespace {

using namespace hpmmap;

constexpr double kRateRps = 80'000.0; // ~70% utilization across 4 workers
constexpr double kWindowSeconds = 10.0;

struct BackendOutcome {
  harness::Manager manager;
  std::uint64_t violations = 0; // summed over budgets and trials
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double exact_p99_us = 0.0;
  std::vector<std::uint64_t> per_budget;
};

harness::ServerRunConfig base_config(const bench::BenchOptions& opt) {
  harness::ServerRunConfig cfg;
  cfg.seed = 42;
  cfg.duration_scale = opt.duration_scale;
  cfg.arrival.shape = serving::ArrivalShape::kPoisson;
  cfg.arrival.mean_rps = kRateRps;
  cfg.arrival.duration_seconds = kWindowSeconds;
  cfg.commodity = workloads::profile_a(cfg.service.workers);
  const double clock_hz = hw::dell_r415().clock_hz;
  cfg.service.budgets = {
      serving::SloBudget{"lat<0.5ms", static_cast<Cycles>(clock_hz * 0.0005)},
      serving::SloBudget{"lat<2ms", static_cast<Cycles>(clock_hz * 0.002)},
  };
  return cfg;
}

BackendOutcome fold(harness::Manager manager,
                    const std::vector<harness::ServerRunResult>& trials) {
  BackendOutcome out;
  out.manager = manager;
  for (const harness::ServerRunResult& r : trials) {
    out.violations += r.slo_total;
    out.completed += r.server.completed;
    out.shed += r.server.shed_queue + r.server.shed_timeout;
    if (out.per_budget.size() < r.slo.size()) {
      out.per_budget.resize(r.slo.size(), 0);
    }
    for (std::size_t b = 0; b < r.slo.size(); ++b) {
      out.per_budget[b] += r.slo[b].violations;
    }
  }
  // Tails from the first trial (every trial's table lands in the CSV).
  if (!trials.empty()) {
    out.p50_us = trials[0].tail.p50_us;
    out.p99_us = trials[0].tail.p99_us;
    out.p999_us = trials[0].tail.p999_us;
    out.exact_p99_us = trials[0].tail.exact_p99_us;
  }
  return out;
}

bool identical(const std::vector<harness::ServerRunResult>& a,
               const std::vector<harness::ServerRunResult>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const harness::ServerRunResult& x = a[i];
    const harness::ServerRunResult& y = b[i];
    if (x.slo_total != y.slo_total || x.server.completed != y.server.completed ||
        x.server.shed_queue != y.server.shed_queue ||
        x.server.shed_timeout != y.server.shed_timeout ||
        x.tail.p50_us != y.tail.p50_us || x.tail.p95_us != y.tail.p95_us ||
        x.tail.p99_us != y.tail.p99_us || x.tail.p999_us != y.tail.p999_us ||
        x.tail.exact_p99_us != y.tail.exact_p99_us ||
        x.runtime_seconds != y.runtime_seconds || x.events_fired != y.events_fired) {
      return false;
    }
  }
  return true;
}

} // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_mode(opt, "serving tail latency: SLO violations under a competing build");

  const harness::Manager managers[] = {harness::Manager::kThp, harness::Manager::kHugetlbfs,
                                       harness::Manager::kHpmmap};
  std::vector<BackendOutcome> outcomes;
  std::vector<harness::ServerRunResult> hpmmap_parallel;
  for (const harness::Manager m : managers) {
    harness::ServerRunConfig cfg = base_config(opt);
    cfg.manager = m;
    std::vector<harness::ServerRunResult> trials =
        harness::run_server_trials(cfg, opt.trials, opt.jobs);
    outcomes.push_back(fold(m, trials));
    if (m == harness::Manager::kHpmmap) {
      hpmmap_parallel = std::move(trials);
    }
  }

  // Determinism cross-check: the HPMMAP trial loop again, strictly serial.
  harness::ServerRunConfig recheck = base_config(opt);
  recheck.manager = harness::Manager::kHpmmap;
  const bool deterministic =
      identical(hpmmap_parallel, harness::run_server_trials(recheck, opt.trials, /*jobs=*/1));

  std::printf("%-18s %12s %10s %8s %8s %8s %10s %10s\n", "manager", "violations",
              "completed", "shed", "p50us", "p99us", "p99.9us", "xp99us");
  std::string csv = "manager,violations,completed,shed,p50_us,p99_us,p999_us,exact_p99_us\n";
  for (const BackendOutcome& o : outcomes) {
    std::printf("%-18s %12llu %10llu %8llu %8.0f %8.0f %10.0f %10.0f\n",
                std::string(name(o.manager)).c_str(),
                static_cast<unsigned long long>(o.violations),
                static_cast<unsigned long long>(o.completed),
                static_cast<unsigned long long>(o.shed), o.p50_us, o.p99_us, o.p999_us,
                o.exact_p99_us);
    csv += std::string(name(o.manager)) + "," + std::to_string(o.violations) + "," +
           std::to_string(o.completed) + "," + std::to_string(o.shed) + "," +
           std::to_string(o.p50_us) + "," + std::to_string(o.p99_us) + "," +
           std::to_string(o.p999_us) + "," + std::to_string(o.exact_p99_us) + "\n";
  }
  // CSV goes to --out-dir only, like the other figure benches; the
  // root mirror is reserved for committed BENCH_*.json baselines.
  const std::string csv_path = opt.out_dir + "/fig_server_slo.csv";
  if (std::FILE* f = std::fopen(csv_path.c_str(), "w")) {
    std::fputs(csv.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", csv_path.c_str());
  }

  const BackendOutcome& thp = outcomes[0];
  const BackendOutcome& hugetlbfs = outcomes[1];
  const BackendOutcome& hpmmap = outcomes[2];
  const auto ratio = [](std::uint64_t linux_v, std::uint64_t hpmmap_v) {
    return static_cast<double>(linux_v) / static_cast<double>(std::max<std::uint64_t>(hpmmap_v, 1));
  };
  const double vs_thp = ratio(thp.violations, hpmmap.violations);
  const double vs_hugetlbfs = ratio(hugetlbfs.violations, hpmmap.violations);
  std::printf("\nviolation ratio: THP/HPMMAP %.3f, HugeTLBfs/HPMMAP %.3f\n", vs_thp,
              vs_hugetlbfs);
  std::printf("determinism (serial vs parallel trial loop): %s\n",
              deterministic ? "match" : "MISMATCH");

  char body[1024];
  std::snprintf(body, sizeof(body),
                "{\n"
                "  \"bench\": \"server_slo\",\n"
                "  \"sweep\": \"poisson @ %.0f rps, 4 workers, profile A, %u trials\",\n"
                "  \"budgets_ms\": [0.5, 2.0],\n"
                "  \"thp_violations\": %llu,\n"
                "  \"hugetlbfs_violations\": %llu,\n"
                "  \"hpmmap_violations\": %llu,\n"
                "  \"thp_violation_improvement_ratio\": %.5f,\n"
                "  \"hugetlbfs_violation_improvement_ratio\": %.5f,\n"
                "  \"deterministic_match\": %s\n"
                "}\n",
                kRateRps, opt.trials, static_cast<unsigned long long>(thp.violations),
                static_cast<unsigned long long>(hugetlbfs.violations),
                static_cast<unsigned long long>(hpmmap.violations), vs_thp, vs_hugetlbfs,
                deterministic ? "true" : "false");
  if (!bench::write_bench_json(opt, "BENCH_server.json", body)) {
    return 1;
  }

  if (!deterministic) {
    std::fprintf(stderr, "FAIL: parallel trial loop diverged from the serial run\n");
    return 1;
  }
  if (hpmmap.violations >= thp.violations || hpmmap.violations >= hugetlbfs.violations) {
    std::fprintf(stderr,
                 "FAIL: HPMMAP must have strictly fewer SLO violations than both Linux "
                 "configs (hpmmap %llu, thp %llu, hugetlbfs %llu)\n",
                 static_cast<unsigned long long>(hpmmap.violations),
                 static_cast<unsigned long long>(thp.violations),
                 static_cast<unsigned long long>(hugetlbfs.violations));
    return 1;
  }
  return 0;
}
