// Figure 2 (paper, §II): cycles needed to handle page faults under
// Transparent Huge Pages for the miniMD benchmark, with and without a
// competing kernel build.
//
// Regenerates the table:
//   Added Load | Fault Size | Total Faults | Avg Cycles | Stdev Cycles
// with rows for Small (4K), Large (2M), and Merge (a fault that had to
// wait on a khugepaged merge).
//
// Paper reference values (Dell R415):
//   No  load: Small 136,004 @ 1,768 (sd 993); Large 1,060 @ 367,675
//             (sd 65,663); Merge 30 @ 1,005,412 (sd 503,422)
//   With load: Small 135,987 @ 2,206; Large 1,060 @ 757,598;
//             Merge 45 @ 3,360,292 (sd 4,017,001)
#include <cstdio>

#include "bench_util.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace hpmmap;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_mode(opt, "Figure 2: THP page-fault cost breakdown (miniMD)");

  harness::Table table({"Added Load", "Fault Size", "Total Faults", "Avg Cycles",
                        "Stdev Cycles"});

  for (const bool loaded : {false, true}) {
    harness::SingleNodeRunConfig cfg;
    cfg.app = "miniMD";
    cfg.manager = harness::Manager::kThp;
    cfg.commodity = loaded ? workloads::profile_a(8) : workloads::no_competition();
    cfg.app_cores = 8;
    cfg.seed = 2014;
    cfg.trace.categories = static_cast<std::uint32_t>(trace::Category::kFault);
    cfg.footprint_scale = opt.full ? 1.0 : 0.25;
    cfg.duration_scale = opt.full ? 1.0 : 0.15;
    const harness::RunResult r = harness::run_single_node(cfg);

    const auto row = [&](mm::FaultKind kind, const char* label) {
      const auto& k = r.by_kind(kind);
      table.add_row({loaded ? "Yes" : "No", label, harness::with_commas(k.total_faults),
                     harness::with_commas(static_cast<std::uint64_t>(k.avg_cycles)),
                     harness::with_commas(static_cast<std::uint64_t>(k.stdev_cycles))});
    };
    row(mm::FaultKind::kSmall, "Small");
    row(mm::FaultKind::kLarge, "Large");
    row(mm::FaultKind::kMergeFollower, "Merge");
    std::printf("  [%s load] khugepaged merges completed: %llu\n", loaded ? "with" : "no",
                static_cast<unsigned long long>(r.thp_merges));
  }
  std::printf("\n");
  table.print();
  table.write_csv(opt.out_dir + "/fig2_thp_fault_table.csv");
  std::printf("\nPaper shape check: Large ~200x Small; loaded Large ~2x unloaded;\n"
              "Merge in the ~1M-cycle range, heavier-tailed under load.\n");
  return 0;
}
