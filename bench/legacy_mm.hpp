// The pre-optimization mm hot-path structures, embedded as the measured
// baseline for bench_mm_hotpath (the same live-baseline technique as
// bench_engine_throughput): BuddyAllocator with one std::set<Addr> per
// order (red-black node per free block, malloc/free on every insert and
// erase), PageCache with std::list<Block> LRU plus a std::map address
// index (two more allocations per cached block), and PageTable with
// unique_ptr-linked nodes holding 24-byte Entry structs (a 12 KiB node,
// three cache lines touched per slot). These are the shipped
// implementations before the mem_map/intrusive rework, verbatim except
// that trace/metrics hooks are stripped (tracing is off in the bench, so
// the stripped calls would have been `trace::on()` checks — a load and a
// branch — in the measured loop; removing them slightly *favours* the
// baseline, keeping the reported ratio honest).
//
// Semantics are bit-for-bit those of the current structures: the bench
// driver runs the identical operation sequence through both stacks and
// cross-checks final allocator/cache/page-table state, so any divergence
// fails the bench instead of producing a meaningless ratio.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "hw/tlb.hpp"

namespace hpmmap::bench::legacy {

struct BuddyStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t split_steps = 0;
  std::uint64_t merge_steps = 0;
  std::uint64_t failed_allocs = 0;
};

class BuddyAllocator {
 public:
  struct Allocation {
    Addr addr = 0;
    unsigned split_steps = 0;
  };

  BuddyAllocator(Range phys_range, unsigned max_order)
      : range_(phys_range), max_order_(max_order) {
    HPMMAP_ASSERT(!range_.empty(), "buddy range must be non-empty");
    free_lists_.resize(max_order_ + 1);
    Addr cursor = range_.begin;
    while (cursor < range_.end) {
      unsigned order = max_order_;
      while (order > 0 &&
             (!is_aligned(cursor - range_.begin, order_bytes(order)) ||
              cursor + order_bytes(order) > range_.end)) {
        --order;
      }
      free_lists_[order].insert(cursor);
      free_bytes_ += order_bytes(order);
      cursor += order_bytes(order);
    }
  }

  [[nodiscard]] std::optional<Allocation> alloc(unsigned order) {
    HPMMAP_ASSERT(order <= max_order_, "order above max_order");
    unsigned found = order;
    while (found <= max_order_ && free_lists_[found].empty()) {
      ++found;
    }
    if (found > max_order_) {
      ++stats_.failed_allocs;
      return std::nullopt;
    }
    const Addr block = *free_lists_[found].begin();
    free_lists_[found].erase(free_lists_[found].begin());
    unsigned splits = 0;
    for (unsigned o = found; o > order; --o) {
      const Addr upper = block + order_bytes(o - 1);
      free_lists_[o - 1].insert(upper);
      ++splits;
    }
    free_bytes_ -= order_bytes(order);
    ++stats_.allocs;
    stats_.split_steps += splits;
    return Allocation{block, splits};
  }

  unsigned free(Addr addr, unsigned order) {
    HPMMAP_ASSERT(order <= max_order_, "order above max_order");
    HPMMAP_ASSERT(range_.contains(addr), "free outside buddy range");
    free_bytes_ += order_bytes(order);
    ++stats_.frees;
    unsigned merges = 0;
    Addr block = addr;
    unsigned o = order;
    while (o < max_order_) {
      const Addr buddy = buddy_of(block, o);
      if (buddy + order_bytes(o) > range_.end) {
        break;
      }
      auto it = free_lists_[o].find(buddy);
      if (it == free_lists_[o].end()) {
        break;
      }
      free_lists_[o].erase(it);
      block = std::min(block, buddy);
      ++o;
      ++merges;
    }
    free_lists_[o].insert(block);
    stats_.merge_steps += merges;
    return merges;
  }

  [[nodiscard]] std::uint64_t free_bytes() const noexcept { return free_bytes_; }
  [[nodiscard]] const BuddyStats& stats() const noexcept { return stats_; }
  [[nodiscard]] unsigned max_order() const noexcept { return max_order_; }
  [[nodiscard]] Range range() const noexcept { return range_; }

  [[nodiscard]] static constexpr std::uint64_t order_bytes(unsigned order) noexcept {
    return kSmallPageSize << order;
  }

 private:
  [[nodiscard]] Addr buddy_of(Addr addr, unsigned order) const noexcept {
    return range_.begin + ((addr - range_.begin) ^ order_bytes(order));
  }

  Range range_;
  unsigned max_order_;
  std::uint64_t free_bytes_ = 0;
  std::vector<std::set<Addr>> free_lists_;
  BuddyStats stats_;
};

class PageCache {
 public:
  explicit PageCache(BuddyAllocator& buddy, double dirty_fraction = 0.3)
      : buddy_(buddy), dirty_fraction_(dirty_fraction) {}

  std::uint64_t grow(std::uint64_t bytes, unsigned order, bool dirty) {
    std::uint64_t grown = 0;
    const std::uint64_t block_bytes = BuddyAllocator::order_bytes(order);
    while (grown < bytes) {
      if (buddy_.free_bytes() < free_floor_ + block_bytes) {
        break;
      }
      auto alloc = buddy_.alloc(order);
      if (!alloc.has_value()) {
        break;
      }
      const bool is_dirty =
          dirty || (dirty_fraction_ > 0.0 &&
                    static_cast<double>(grow_count_ % 100) < dirty_fraction_ * 100.0);
      ++grow_count_;
      lru_.push_back(Block{alloc->addr, order, is_dirty});
      by_addr_.emplace(alloc->addr, std::prev(lru_.end()));
      grown += block_bytes;
      cached_bytes_ += block_bytes;
    }
    return grown;
  }

  void set_free_floor(std::uint64_t bytes) noexcept { free_floor_ = bytes; }

  struct ShrinkResult {
    std::uint64_t bytes_freed = 0;
    std::uint64_t writeback_blocks = 0;
    std::uint64_t clean_blocks = 0;
  };

  ShrinkResult shrink(std::uint64_t bytes) {
    ShrinkResult result;
    while (result.bytes_freed < bytes && !lru_.empty()) {
      const Block block = lru_.front();
      by_addr_.erase(block.addr);
      lru_.pop_front();
      const std::uint64_t block_bytes = BuddyAllocator::order_bytes(block.order);
      buddy_.free(block.addr, block.order);
      cached_bytes_ -= block_bytes;
      result.bytes_freed += block_bytes;
      if (block.dirty) {
        ++result.writeback_blocks;
      } else {
        ++result.clean_blocks;
      }
    }
    return result;
  }

  [[nodiscard]] std::optional<std::pair<Addr, unsigned>> block_containing(Addr addr) const {
    auto it = by_addr_.upper_bound(addr);
    if (it == by_addr_.begin()) {
      return std::nullopt;
    }
    --it;
    const Block& block = *it->second;
    if (addr < block.addr + BuddyAllocator::order_bytes(block.order)) {
      return std::make_pair(block.addr, block.order);
    }
    return std::nullopt;
  }

  [[nodiscard]] std::uint64_t cached_bytes() const noexcept { return cached_bytes_; }
  [[nodiscard]] std::size_t block_count() const noexcept { return lru_.size(); }

 private:
  struct Block {
    Addr addr;
    unsigned order;
    bool dirty;
  };
  BuddyAllocator& buddy_;
  std::list<Block> lru_;
  std::map<Addr, std::list<Block>::iterator> by_addr_;
  std::uint64_t cached_bytes_ = 0;
  std::uint64_t free_floor_ = 0;
  double dirty_fraction_;
  std::uint64_t grow_count_ = 0;
};

struct Translation {
  Addr phys = 0;
  PageSize size = PageSize::k4K;
  Prot prot = Prot::kNone;
};

struct PtOpStats {
  unsigned levels = 0;
  unsigned tables_allocated = 0;
  unsigned entries_written = 0;
};

class PageTable {
 public:
  PageTable() : root_(std::make_unique<Node>()) {}

  Errno map(Addr vaddr, Addr paddr, PageSize size, Prot prot, PtOpStats* stats = nullptr) {
    if (!is_aligned(vaddr, bytes(size)) || !is_aligned(paddr, bytes(size))) {
      return Errno::kInval;
    }
    const unsigned target = leaf_level(size);
    Node* node = root_.get();
    PtOpStats local;
    local.levels = 1;
    for (unsigned level = 3; level > target; --level) {
      Entry& e = node->slots[index_at(vaddr, level)];
      if (e.leaf) {
        return Errno::kExist;
      }
      if (!e.child) {
        e.child = std::make_unique<Node>();
        ++node->used;
        ++table_pages_;
        ++local.tables_allocated;
      }
      node = e.child.get();
      ++local.levels;
    }
    Entry& leaf = node->slots[index_at(vaddr, target)];
    if (leaf.leaf) {
      return Errno::kExist;
    }
    if (leaf.child) {
      if (leaf.child->used != 0) {
        return Errno::kExist;
      }
      leaf.child.reset();
      --table_pages_;
      --node->used;
    }
    leaf.leaf = true;
    leaf.phys = paddr;
    leaf.prot = prot;
    ++node->used;
    ++local.entries_written;
    account_map(size, static_cast<std::int64_t>(bytes(size)));
    if (stats != nullptr) {
      *stats = local;
    }
    return Errno::kOk;
  }

  Errno unmap(Addr vaddr, PageSize size, PtOpStats* stats = nullptr) {
    if (!is_aligned(vaddr, bytes(size))) {
      return Errno::kInval;
    }
    const unsigned target = leaf_level(size);
    Node* node = root_.get();
    PtOpStats local;
    local.levels = 1;
    for (unsigned level = 3; level > target; --level) {
      Entry& e = node->slots[index_at(vaddr, level)];
      if (e.leaf || !e.child) {
        return Errno::kNoEnt;
      }
      node = e.child.get();
      ++local.levels;
    }
    Entry& leaf = node->slots[index_at(vaddr, target)];
    if (!leaf.leaf) {
      return Errno::kNoEnt;
    }
    leaf.leaf = false;
    leaf.phys = 0;
    leaf.prot = Prot::kNone;
    --node->used;
    ++local.entries_written;
    account_map(size, -static_cast<std::int64_t>(bytes(size)));
    if (stats != nullptr) {
      *stats = local;
    }
    return Errno::kOk;
  }

  [[nodiscard]] std::optional<Translation> walk(Addr vaddr) const {
    const Node* node = root_.get();
    for (unsigned level = 3; level > 0; --level) {
      const Entry& e = node->slots[index_at(vaddr, level)];
      if (e.leaf) {
        const PageSize size = level == 1 ? PageSize::k2M : PageSize::k1G;
        const Addr offset = vaddr & (bytes(size) - 1);
        return Translation{e.phys + offset, size, e.prot};
      }
      if (!e.child) {
        return std::nullopt;
      }
      node = e.child.get();
    }
    const Entry& leaf = node->slots[index_at(vaddr, 0)];
    if (!leaf.leaf) {
      return std::nullopt;
    }
    const Addr offset = vaddr & (kSmallPageSize - 1);
    return Translation{leaf.phys + offset, PageSize::k4K, leaf.prot};
  }

  Errno split_large(Addr vaddr, PtOpStats* stats = nullptr) {
    const Addr base = align_down(vaddr, kLargePageSize);
    Node* node = root_.get();
    for (unsigned level = 3; level > 1; --level) {
      Entry& e = node->slots[index_at(base, level)];
      if (e.leaf || !e.child) {
        return Errno::kNoEnt;
      }
      node = e.child.get();
    }
    Entry& pd = node->slots[index_at(base, 1)];
    if (!pd.leaf) {
      return Errno::kNoEnt;
    }
    const Addr phys = pd.phys;
    const Prot prot = pd.prot;
    pd.leaf = false;
    pd.child = std::make_unique<Node>();
    ++table_pages_;
    Node* pt = pd.child.get();
    for (unsigned i = 0; i < kFanout; ++i) {
      Entry& e = pt->slots[i];
      e.leaf = true;
      e.phys = phys + static_cast<Addr>(i) * kSmallPageSize;
      e.prot = prot;
    }
    pt->used = kFanout;
    account_map(PageSize::k2M, -static_cast<std::int64_t>(kLargePageSize));
    account_map(PageSize::k4K, static_cast<std::int64_t>(kLargePageSize));
    if (stats != nullptr) {
      stats->levels = 4;
      stats->tables_allocated = 1;
      stats->entries_written = kFanout;
    }
    return Errno::kOk;
  }

  [[nodiscard]] unsigned small_count_in_2m(Addr vaddr) const {
    const Addr base = align_down(vaddr, kLargePageSize);
    const Node* node = root_.get();
    for (unsigned level = 3; level > 1; --level) {
      const Entry& e = node->slots[index_at(base, level)];
      if (e.leaf || !e.child) {
        return 0;
      }
      node = e.child.get();
    }
    const Entry& pd = node->slots[index_at(base, 1)];
    if (pd.leaf || !pd.child) {
      return 0;
    }
    return pd.child->used;
  }

  [[nodiscard]] hw::MappingMix mapping_mix() const noexcept { return mix_; }
  [[nodiscard]] std::uint64_t table_pages() const noexcept { return table_pages_; }

 private:
  static constexpr unsigned kFanout = 512;
  struct Node;
  struct Entry {
    std::unique_ptr<Node> child;
    bool leaf = false;
    Addr phys = 0;
    Prot prot = Prot::kNone;
  };
  struct Node {
    std::array<Entry, kFanout> slots;
    std::uint16_t used = 0;
  };

  [[nodiscard]] static unsigned index_at(Addr vaddr, unsigned level) noexcept {
    return static_cast<unsigned>((vaddr >> (12 + 9 * level)) & (kFanout - 1));
  }
  [[nodiscard]] static unsigned leaf_level(PageSize size) noexcept {
    switch (size) {
      case PageSize::k4K: return 0;
      case PageSize::k2M: return 1;
      case PageSize::k1G: return 2;
    }
    return 0;
  }

  void account_map(PageSize size, std::int64_t delta) noexcept {
    const auto apply = [delta](std::uint64_t& v) {
      v = static_cast<std::uint64_t>(static_cast<std::int64_t>(v) + delta);
    };
    switch (size) {
      case PageSize::k4K: apply(mix_.bytes_4k); break;
      case PageSize::k2M: apply(mix_.bytes_2m); break;
      case PageSize::k1G: apply(mix_.bytes_1g); break;
    }
  }

  std::unique_ptr<Node> root_;
  hw::MappingMix mix_;
  std::uint64_t table_pages_ = 1;
};

} // namespace hpmmap::bench::legacy
