// Microbenchmarks for HPMMAP's own components (host time), plus
// simulated-cycle comparisons of the interposed syscall paths against
// the Linux equivalents — the §III-B "lightweight" claim in numbers.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/kitten_allocator.hpp"
#include "core/module.hpp"
#include "core/pid_registry.hpp"
#include "hw/bandwidth.hpp"
#include "hw/phys_mem.hpp"
#include "os/node.hpp"
#include "sim/engine.hpp"

namespace {

using namespace hpmmap;

void BM_PidRegistryHit(benchmark::State& state) {
  core::PidRegistry reg;
  for (Pid p = 1; p <= 64; ++p) {
    reg.insert(p, p);
  }
  Pid probe = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.find(probe));
    probe = probe % 64 + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PidRegistryHit);

void BM_PidRegistryMiss(benchmark::State& state) {
  core::PidRegistry reg;
  for (Pid p = 1; p <= 64; ++p) {
    reg.insert(p, p);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.find(9999));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PidRegistryMiss);

void BM_KittenAlloc2M(benchmark::State& state) {
  std::vector<std::vector<Range>> ranges{{Range{0, 2 * GiB}}};
  core::KittenAllocator kitten(std::move(ranges));
  for (auto _ : state) {
    auto a = kitten.alloc(0, kLargePageSize);
    benchmark::DoNotOptimize(a);
    kitten.free(0, *a, kLargePageSize);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KittenAlloc2M);

void BM_ModuleMmapMunmap(benchmark::State& state) {
  hw::PhysicalMemory phys{4 * GiB, 2};
  hw::BandwidthModel bw{2, 5.6};
  mm::CostModel costs;
  core::ModuleConfig config;
  config.offline_bytes_per_zone = 1 * GiB;
  core::HpmmapModule module(phys, bw, costs, Rng(1), config);
  mm::AddressSpace as(100);
  module.register_process(100, as);
  for (auto _ : state) {
    const core::SyscallResult r = module.mmap(100, 2 * MiB, kProtRW);
    benchmark::DoNotOptimize(r);
    module.munmap(100, r.addr, 2 * MiB);
  }
  module.unregister_process(100);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModuleMmapMunmap);

/// Not a host-time benchmark: reports the *simulated* cycle cost of the
/// two stacks' mmap+first-access path for one 2M chunk, as counters.
void BM_SimulatedSyscallCycles(benchmark::State& state) {
  double hpmmap_cycles = 0.0;
  double linux_cycles = 0.0;
  for (auto _ : state) {
    sim::Engine engine;
    os::NodeConfig cfg;
    cfg.machine = hw::dell_r415();
    cfg.machine.ram_bytes = 4 * GiB;
    cfg.aged_boot = false;
    core::ModuleConfig mod;
    mod.offline_bytes_per_zone = 512 * MiB;
    cfg.hpmmap = mod;
    os::Node node(engine, cfg);

    os::Process& hpc = node.spawn("h", os::MmPolicy::kHpmmap, 0, 1.0,
                                  mm::AddressSpace::ZonePolicy::kSingle, 0);
    const auto m1 = node.sys_mmap(hpc, 2 * MiB, kProtRW, os::Node::Segment::kHeapData);
    const Cycles t1 = node.touch_range(hpc, Range{m1.addr, m1.addr + 2 * MiB});
    hpmmap_cycles += static_cast<double>(m1.cost + t1);

    os::Process& lin = node.spawn("l", os::MmPolicy::kLinuxThp, 1, 1.0,
                                  mm::AddressSpace::ZonePolicy::kSingle, 0);
    const auto m2 = node.sys_mmap(lin, 2 * MiB, kProtRW, os::Node::Segment::kHeapData);
    const Cycles t2 = node.touch_range(lin, Range{m2.addr, m2.addr + 2 * MiB});
    linux_cycles += static_cast<double>(m2.cost + t2);

    node.exit_process(hpc);
    node.exit_process(lin);
  }
  state.counters["sim_cycles_hpmmap"] =
      benchmark::Counter(hpmmap_cycles / static_cast<double>(state.iterations()));
  state.counters["sim_cycles_linux_thp"] =
      benchmark::Counter(linux_cycles / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_SimulatedSyscallCycles)->Iterations(20);

} // namespace
