// Shared plumbing for the figure-regeneration benchmarks.
//
// Every binary runs in a reduced "quick" scale by default so the full
// suite completes in minutes; pass --full to run at the paper's scale
// (12 GB footprints, 10 trials). CSV copies of every table land in
// ./results/ for replotting.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <sys/stat.h>

#include "harness/batch.hpp"

namespace hpmmap::bench {

struct BenchOptions {
  bool full = false;
  std::uint32_t trials = 3;
  double footprint_scale = 0.15;
  double duration_scale = 0.1;
  /// Worker threads for the batch runner; 0 = hardware concurrency.
  /// Results are byte-identical for every value (merged in seed order).
  unsigned jobs = 0;
  std::string out_dir = "results";
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      opt.full = true;
      opt.trials = 10; // §IV: "average and standard deviation of 10 runs"
      opt.footprint_scale = 1.0;
      opt.duration_scale = 1.0;
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      opt.trials = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      opt.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      opt.out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--full] [--trials N] [--jobs N] [--out-dir DIR]\n"
                  "  --full   paper scale (12 GB footprints, 10 trials); default is a\n"
                  "           reduced scale that preserves the figure's shape\n"
                  "  --jobs   parallel simulation workers (default: all hardware\n"
                  "           threads; output is identical for any value)\n",
                  argv[0]);
      std::exit(0);
    }
  }
  ::mkdir(opt.out_dir.c_str(), 0755);
  harness::set_default_jobs(opt.jobs);
  return opt;
}

/// Write a BENCH_*.json self-report into --out-dir and mirror it at the
/// current directory (the repo root in CI), which is where the committed
/// regression baselines live and where the CI gate and bench_diff read.
inline bool write_bench_json(const BenchOptions& opt, const std::string& name,
                             const std::string& body) {
  const auto write = [&](const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fputs(body.c_str(), f);
    std::fclose(f);
    return true;
  };
  if (!write(opt.out_dir + "/" + name)) {
    return false;
  }
  if (opt.out_dir != "." && !write(name)) {
    return false;
  }
  std::printf("wrote %s/%s (mirrored at ./%s)\n", opt.out_dir.c_str(), name.c_str(),
              name.c_str());
  return true;
}

inline void print_mode(const BenchOptions& opt, const char* what) {
  std::printf("== %s ==\n", what);
  std::printf("mode: %s (footprint x%.2f, duration x%.2f, %u trials, %u jobs)\n\n",
              opt.full ? "FULL (paper scale)" : "quick", opt.footprint_scale,
              opt.duration_scale, opt.trials, harness::default_jobs());
}

} // namespace hpmmap::bench
