// mmprof: offline attribution report over a trace/metrics dump.
//
//   mmprof [--attr ATTR.csv] [--folded OUT.folded] [--top N]
//          [--clock-hz HZ] TRACE.csv
//
// TRACE.csv is the CSV twin run_experiment writes next to --trace-out
// (events round-trip losslessly through trace::parse_csv, including the
// causal `span:u=N` arg). The report has two halves:
//
//   - lock contention, folded from the kLock wait events: per-class
//     totals + log2 wait histograms, the top-N blocked-by table
//     (which span lost the most cycles to which lock class), and —
//     with --folded — flamegraph-ready `class;lock;site count` stacks;
//   - with --attr, the per-request latency decomposition the harness
//     exported (run_experiment --attr-out): aggregate shares plus the
//     exact bucket breakdown of the p50/p99 request.
//
// Exits 1 if any request's buckets fail to sum to its measured latency
// (the decomposition is exact on the virtual clock by construction, so
// a residual is a bug, not noise), or if inputs are unreadable.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "profile/attribution.hpp"
#include "profile/contention.hpp"
#include "trace/export.hpp"

namespace {

using namespace hpmmap;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: mmprof [--attr ATTR.csv] [--folded OUT] [--top N]\n"
               "              [--clock-hz HZ] TRACE.csv\n"
               "  TRACE.csv    CSV trace dump (run_experiment --trace-out FILE writes\n"
               "               FILE.csv next to the Perfetto JSON)\n"
               "  --attr FILE  per-request latency decomposition (--attr-out dump)\n"
               "  --folded OUT write folded stacks (class;lock;site count) to OUT\n"
               "  --top N      rows in the blocked-by table (default 10)\n"
               "  --clock-hz F virtual clock for us conversions (default 2.3e9)\n");
  std::exit(2);
}

bool slurp(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "mmprof: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream body;
  body << f.rdbuf();
  out = body.str();
  return true;
}

} // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string attr_path;
  std::string folded_path;
  std::size_t top_n = 10;
  double clock_hz = 2.3e9;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--attr") && i + 1 < argc) {
      attr_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--folded") && i + 1 < argc) {
      folded_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--top") && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (!std::strcmp(argv[i], "--clock-hz") && i + 1 < argc) {
      clock_hz = std::atof(argv[++i]);
    } else if (argv[i][0] == '-') {
      usage();
    } else if (trace_path.empty()) {
      trace_path = argv[i];
    } else {
      usage();
    }
  }
  if (trace_path.empty()) {
    usage();
  }

  std::string text;
  if (!slurp(trace_path, text)) {
    return 1;
  }
  const std::vector<trace::CsvEvent> events = trace::parse_csv(text);
  std::printf("mmprof: %zu events from %s\n", events.size(), trace_path.c_str());

  const profile::ContentionProfile contention = profile::fold(events, top_n);
  std::fputs(profile::render_contention(contention).c_str(), stdout);
  if (!folded_path.empty()) {
    const std::string stacks = profile::folded_stacks(contention);
    if (std::FILE* f = std::fopen(folded_path.c_str(), "w")) {
      std::fputs(stacks.c_str(), f);
      std::fclose(f);
      std::printf("wrote %zu folded stacks to %s\n", contention.folded.size(),
                  folded_path.c_str());
    } else {
      std::fprintf(stderr, "mmprof: cannot write %s\n", folded_path.c_str());
      return 1;
    }
  }

  if (!attr_path.empty()) {
    std::string attr_text;
    if (!slurp(attr_path, attr_text)) {
      return 1;
    }
    const profile::TrialAttribution trial =
        profile::from_records(profile::parse_attr_csv(attr_text));
    std::fputs(profile::render_report(trial, clock_hz).c_str(), stdout);
    if (trial.residual_errors != 0) {
      std::fprintf(stderr,
                   "mmprof: FAIL: %llu requests whose buckets do not sum to the measured "
                   "latency (decomposition must be exact on the virtual clock)\n",
                   static_cast<unsigned long long>(trial.residual_errors));
      return 1;
    }
  }
  return 0;
}
