// PDES cluster self-report (JSON, gated by bench_diff in CI).
//
//   BENCH_cluster.json — the parallel cluster harness at scale:
//   sequential (one worker) vs parallel (eight workers) wall-time at
//   256 ranks (64 nodes), the Figure-8-shaped HPMMAP-vs-THP point at
//   1024 ranks (256 nodes), and the determinism spot check (worker
//   count invariance plus table equality against the shared-engine
//   run_scaling path at 8 nodes).
//
// `deterministic_match` flipping to false fails the bench directly on
// any machine. The >= 3x speedup floor at 256 ranks only applies when
// the host actually has 8 hardware threads — on smaller runners the
// parallel run degenerates to the sequential schedule plus coordinator
// overhead, which is exactly what the committed single-core baseline
// records. `thp_over_hpmmap_*` keys are gated: the paper's headline
// ordering (THP slower than HPMMAP at scale) must survive any change.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "harness/cluster.hpp"
#include "harness/experiment.hpp"
#include "workloads/profiles.hpp"

namespace {

using namespace hpmmap;

harness::ClusterRunConfig cluster_cfg(const bench::BenchOptions& opt, const char* app,
                                      harness::Manager mgr, std::uint32_t nodes,
                                      unsigned cluster_jobs) {
  harness::ClusterRunConfig cfg;
  cfg.scaling.app = app;
  cfg.scaling.manager = mgr;
  cfg.scaling.commodity = workloads::profile_c();
  cfg.scaling.nodes = nodes;
  cfg.scaling.ranks_per_node = 4;
  cfg.scaling.seed = 500 + nodes;
  cfg.scaling.footprint_scale = opt.full ? 1.0 : 0.05;
  cfg.scaling.duration_scale = opt.full ? 1.0 : 0.05;
  cfg.cluster_jobs = cluster_jobs;
  return cfg;
}

bool tables_equal(const harness::RunResult& a, const harness::RunResult& b) {
  if (std::memcmp(&a.runtime_seconds, &b.runtime_seconds, sizeof(double)) != 0 ||
      a.app_pids != b.app_pids) {
    return false;
  }
  for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
    if (a.faults.count[k] != b.faults.count[k] ||
        a.faults.total_cycles[k] != b.faults.total_cycles[k]) {
      return false;
    }
  }
  return true;
}

double timed_run(const harness::ClusterRunConfig& cfg, harness::RunResult* out) {
  const auto t0 = std::chrono::steady_clock::now();
  harness::RunResult r = harness::run_cluster(cfg);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (out != nullptr) {
    *out = std::move(r);
  }
  return wall;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

} // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_mode(opt, "PDES cluster: per-node engines vs sequential, 256/1024 ranks");
  const unsigned hw = std::thread::hardware_concurrency();

  // Determinism spot check at 8 nodes: worker-count invariance of the
  // PDES path, and table equality against the shared-engine path.
  bool match = true;
  {
    const harness::ClusterRunConfig c1 =
        cluster_cfg(opt, "HPCCG", harness::Manager::kHpmmap, 8, 1);
    harness::ClusterRunConfig cN = c1;
    cN.cluster_jobs = 8;
    const harness::RunResult r1 = harness::run_cluster(c1);
    const harness::RunResult rN = harness::run_cluster(cN);
    const harness::RunResult shared = harness::run_scaling(c1.scaling);
    match = tables_equal(r1, rN) && r1.events_fired == rN.events_fired &&
            tables_equal(r1, shared);
    std::printf("determinism: jobs=1 vs jobs=8 vs shared engine at 8 nodes: %s\n",
                match ? "identical" : "DIVERGED");
  }

  // 256 ranks: one trial sequential, one parallel, same config.
  const harness::ClusterRunConfig seq256 =
      cluster_cfg(opt, "HPCCG", harness::Manager::kHpmmap, 64, 1);
  harness::ClusterRunConfig par256 = seq256;
  par256.cluster_jobs = 8;
  harness::RunResult seq_result;
  harness::RunResult par_result;
  const double seq_wall = timed_run(seq256, &seq_result);
  std::printf("256 ranks sequential: %.3f s wall (%.2f s simulated)\n", seq_wall,
              seq_result.runtime_seconds);
  const double par_wall = timed_run(par256, &par_result);
  std::printf("256 ranks, 8 workers: %.3f s wall\n", par_wall);
  const double speedup = par_wall > 0 ? seq_wall / par_wall : 0.0;
  match = match && tables_equal(seq_result, par_result);
  std::printf("speedup: %.2fx on %u hardware thread(s), identical=%s\n", speedup, hw,
              match ? "yes" : "NO");

  // 1024 ranks: the Figure 8 cell the shared engine can't reach in
  // reasonable time — HPMMAP vs THP at 256 nodes, fat-tree collectives
  // (a single flat switch would be dishonest at this scale).
  const std::uint32_t trials_1024 = opt.full ? 3 : 1;
  harness::ClusterRunConfig big =
      cluster_cfg(opt, "HPCCG", harness::Manager::kHpmmap, 256, 0);
  big.topology = cluster::Topology::kFatTree;
  const harness::SeriesPoint hpmmap_pt = harness::run_cluster_trials(big, trials_1024);
  big.scaling.manager = harness::Manager::kThp;
  const harness::SeriesPoint thp_pt = harness::run_cluster_trials(big, trials_1024);
  const double ratio =
      hpmmap_pt.mean_seconds > 0 ? thp_pt.mean_seconds / hpmmap_pt.mean_seconds : 0.0;
  std::printf("1024 ranks (fat-tree): HPMMAP %.2f s, THP %.2f s, THP/HPMMAP = %.3f\n",
              hpmmap_pt.mean_seconds, thp_pt.mean_seconds, ratio);

  std::string j;
  j += "{\n";
  j += "  \"bench\": \"cluster_pdes\",\n";
  j += "  \"sweep\": \"HPCCG profile C, HPMMAP, 4 ranks/node; 64 and 256 nodes\",\n";
  j += "  \"wall_seconds_256ranks_seq\": " + num(seq_wall) + ",\n";
  j += "  \"wall_seconds_256ranks_jobs8\": " + num(par_wall) + ",\n";
  j += "  \"speedup\": " + num(speedup) + ",\n";
  j += "  \"ranks_1024_hpmmap_mean_s\": " + num(hpmmap_pt.mean_seconds) + ",\n";
  j += "  \"ranks_1024_hpmmap_stdev_s\": " + num(hpmmap_pt.stdev_seconds) + ",\n";
  j += "  \"ranks_1024_thp_mean_s\": " + num(thp_pt.mean_seconds) + ",\n";
  j += "  \"ranks_1024_thp_stdev_s\": " + num(thp_pt.stdev_seconds) + ",\n";
  j += "  \"thp_over_hpmmap_1024ranks_improvement_ratio\": " + num(ratio) + ",\n";
  j += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  j += std::string("  \"deterministic_match\": ") + (match ? "true" : "false") + "\n";
  j += "}\n";
  if (!bench::write_bench_json(opt, "BENCH_cluster.json", j)) {
    return 1;
  }
  if (!match) {
    std::printf("FAIL: parallel cluster run diverged from the sequential/shared path\n");
    return 1;
  }
  if (hw >= 8 && speedup < 3.0) {
    std::printf("FAIL: PDES speedup under 3x (%.2fx) with %u hardware threads\n", speedup,
                hw);
    return 1;
  }
  return 0;
}
