// Engine + batch-runner throughput, self-reported as JSON.
//
// Two measurements, two files (under --out-dir, default ./results):
//
//   BENCH_engine.json — raw event-loop throughput (events/sec) of the
//   current sim::Engine on a self-rescheduling actor workload with
//   cancel churn, against a live-measured `baseline`: the pre-optimization
//   engine (std::function callbacks, std::priority_queue, tombstone-set
//   cancellation) compiled into this binary verbatim. Measuring the
//   baseline in-process makes the improvement ratio machine-independent.
//
//   BENCH_batch.json — wall-time of a Figure-8-shaped sweep (2 managers
//   x 4 trials of 8-node HPCCG under profile C) through the batch runner
//   at --jobs 1 vs --jobs N, with a byte-identity self-check on the two
//   result sets. On a single-hardware-thread host the speedup honestly
//   reports ~1x; the `hardware_concurrency` field says why.
//
// Usage: bench_engine_throughput [--full] [--jobs N] [--out-dir DIR]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_util.hpp"
#include "common/assert.hpp"
#include "common/types.hpp"
#include "harness/batch.hpp"
#include "harness/experiment.hpp"
#include "sim/engine.hpp"

namespace {

using namespace hpmmap;

// ---------------------------------------------------------------------------
// The pre-optimization engine, embedded as the measured baseline. This is
// the shipped implementation before the SBO-callback/slot-generation/arena
// rework: type-erased std::function callbacks (one heap allocation per
// capture that outgrows the SSO), std::priority_queue (copy out of top()),
// and an unordered_set of cancelled sequence numbers consulted on every pop.
// ---------------------------------------------------------------------------

namespace legacy {

struct EventId {
  std::uint64_t seq = 0;
  [[nodiscard]] bool valid() const noexcept { return seq != 0; }
};

class Engine {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] Cycles now() const noexcept { return now_; }

  EventId schedule(Cycles delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  EventId schedule_at(Cycles when, Callback fn) {
    HPMMAP_ASSERT(when >= now_, "cannot schedule an event in the past");
    HPMMAP_ASSERT(fn != nullptr, "event callback must be callable");
    const std::uint64_t seq = next_seq_++;
    heap_.push(Entry{when, seq, std::move(fn)});
    return EventId{seq};
  }

  void cancel(EventId id) {
    if (id.valid()) {
      cancelled_.insert(id.seq);
    }
  }

  void run() {
    stopped_ = false;
    while (!stopped_ && fire_next(~Cycles{0})) {
    }
  }

  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] std::uint64_t events_fired() const noexcept { return fired_; }

 private:
  struct Entry {
    Cycles when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  bool fire_next(Cycles limit) {
    while (!heap_.empty()) {
      if (heap_.top().when > limit) {
        return false;
      }
      Entry e = heap_.top();
      heap_.pop();
      if (auto it = cancelled_.find(e.seq); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      now_ = e.when;
      ++fired_;
      e.fn();
      return true;
    }
    return false;
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  Cycles now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  bool stopped_ = false;
};

} // namespace legacy

// ---------------------------------------------------------------------------
// Workload: kActors self-rescheduling actors with deterministic xorshift
// delays; every 4th firing schedules a decoy event and immediately cancels
// it. This is the shape of the simulator's real load (compute-burst
// reschedules + timer cancellations), so both engines are compared on
// exactly the traffic they serve in the figures.
// ---------------------------------------------------------------------------

template <typename EngineT>
class ChurnDriver {
 public:
  ChurnDriver(EngineT& eng, std::uint64_t target) : eng_(eng), target_(target) {}

  void start(unsigned actors) {
    for (unsigned a = 0; a < actors; ++a) {
      eng_.schedule(next_delay(), [this, a] { step(a); });
    }
  }

  [[nodiscard]] std::uint64_t steps() const noexcept { return done_; }

 private:
  void step(unsigned actor) {
    if (++done_ >= target_) {
      eng_.stop();
      return;
    }
    eng_.schedule(next_delay(), [this, actor] { step(actor); });
    if ((done_ & 3u) == 0) {
      const auto decoy = eng_.schedule(next_delay() + 7, [this] { ++stray_; });
      eng_.cancel(decoy);
    }
  }

  Cycles next_delay() noexcept {
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    return 1 + (rng_ & 0xFF);
  }

  EngineT& eng_;
  std::uint64_t target_;
  std::uint64_t done_ = 0;
  std::uint64_t stray_ = 0;
  std::uint64_t rng_ = 0x243F6A8885A308D3ull;
};

struct Throughput {
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  [[nodiscard]] double events_per_sec() const noexcept {
    return wall_seconds > 0 ? static_cast<double>(events) / wall_seconds : 0.0;
  }
};

template <typename EngineT>
Throughput measure_engine(std::uint64_t target_events) {
  EngineT eng;
  ChurnDriver<EngineT> driver(eng, target_events);
  driver.start(64);
  const auto t0 = std::chrono::steady_clock::now();
  eng.run();
  const auto t1 = std::chrono::steady_clock::now();
  Throughput t;
  t.events = eng.events_fired();
  t.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return t;
}

// ---------------------------------------------------------------------------
// Batch-runner wall-time: the Figure 8 cell shape, serial vs parallel.
// ---------------------------------------------------------------------------

std::vector<harness::ScalingRunConfig> sweep_configs(bool full) {
  std::vector<harness::ScalingRunConfig> cfgs;
  for (const harness::Manager mgr :
       {harness::Manager::kHpmmap, harness::Manager::kThp}) {
    harness::ScalingRunConfig cfg;
    cfg.app = "HPCCG";
    cfg.manager = mgr;
    cfg.commodity = workloads::profile_c();
    cfg.nodes = 8;
    cfg.ranks_per_node = 4;
    cfg.seed = 529;
    cfg.footprint_scale = 1.0;
    cfg.duration_scale = full ? 0.25 : 0.02;
    cfgs.push_back(cfg);
  }
  return cfgs;
}

struct BatchTiming {
  double wall_seconds = 0.0;
  std::vector<harness::SeriesPoint> points;
};

BatchTiming time_sweep(const std::vector<harness::ScalingRunConfig>& cfgs,
                       std::uint32_t trials, unsigned jobs) {
  BatchTiming t;
  const auto t0 = std::chrono::steady_clock::now();
  t.points = harness::run_trials_batch(cfgs, trials, jobs);
  t.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return t;
}

bool identical(const std::vector<harness::SeriesPoint>& a,
               const std::vector<harness::SeriesPoint>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bitwise comparison: the determinism contract is byte-identity, not
    // approximate equality.
    if (std::memcmp(&a[i].mean_seconds, &b[i].mean_seconds, sizeof(double)) != 0 ||
        std::memcmp(&a[i].stdev_seconds, &b[i].stdev_seconds, sizeof(double)) != 0 ||
        a[i].trials != b[i].trials || a[i].events != b[i].events) {
      return false;
    }
  }
  return true;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

} // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_mode(opt, "Engine + batch-runner throughput (JSON self-report)");

  // --- engine hot path: current vs embedded-baseline implementation ---
  const std::uint64_t target = opt.full ? 10'000'000 : 2'000'000;
  // Warm both allocators once so first-touch noise lands outside timing.
  (void)measure_engine<sim::Engine>(target / 20);
  (void)measure_engine<legacy::Engine>(target / 20);
  const Throughput current = measure_engine<sim::Engine>(target);
  const Throughput baseline = measure_engine<legacy::Engine>(target);
  const double ratio = baseline.events_per_sec() > 0
                           ? current.events_per_sec() / baseline.events_per_sec()
                           : 0.0;
  std::printf("engine:   %10.0f events/sec  (%llu events, %.3f s wall)\n",
              current.events_per_sec(),
              static_cast<unsigned long long>(current.events), current.wall_seconds);
  std::printf("baseline: %10.0f events/sec  (std::function + priority_queue + "
              "tombstones)\n",
              baseline.events_per_sec());
  std::printf("improvement: %.2fx\n\n", ratio);

  std::string ej;
  ej += "{\n";
  ej += "  \"bench\": \"engine_throughput\",\n";
  ej += "  \"workload\": \"64 self-rescheduling actors, 1-in-4 cancel churn\",\n";
  ej += "  \"events\": " + std::to_string(current.events) + ",\n";
  ej += "  \"wall_seconds\": " + num(current.wall_seconds) + ",\n";
  ej += "  \"events_per_sec\": " + num(current.events_per_sec()) + ",\n";
  ej += "  \"baseline\": {\n";
  ej += "    \"impl\": \"std::function + std::priority_queue + tombstone set "
        "(pre-optimization engine, measured live)\",\n";
  ej += "    \"events\": " + std::to_string(baseline.events) + ",\n";
  ej += "    \"wall_seconds\": " + num(baseline.wall_seconds) + ",\n";
  ej += "    \"events_per_sec\": " + num(baseline.events_per_sec()) + "\n";
  ej += "  },\n";
  ej += "  \"improvement_ratio\": " + num(ratio) + "\n";
  ej += "}\n";
  if (!bench::write_bench_json(opt, "BENCH_engine.json", ej)) {
    return 1;
  }

  // --- batch runner: serial vs parallel wall-time on a fig8-shaped sweep ---
  const unsigned jobs = opt.jobs == 0 ? harness::hardware_jobs() : opt.jobs;
  const std::uint32_t trials = 4;
  const std::vector<harness::ScalingRunConfig> cfgs = sweep_configs(opt.full);
  const BatchTiming serial = time_sweep(cfgs, trials, 1);
  const BatchTiming par = time_sweep(cfgs, trials, jobs);
  const bool match = identical(serial.points, par.points);
  const double speedup =
      par.wall_seconds > 0 ? serial.wall_seconds / par.wall_seconds : 0.0;
  std::printf("batch:    %zu tasks  jobs=1 %.3f s   jobs=%u %.3f s   speedup "
              "%.2fx   identical=%s\n",
              cfgs.size() * trials, serial.wall_seconds, jobs, par.wall_seconds,
              speedup, match ? "yes" : "NO");

  std::string bj;
  bj += "{\n";
  bj += "  \"bench\": \"batch_runner\",\n";
  bj += "  \"sweep\": \"HPCCG profile C, 8 nodes, HPMMAP vs THP\",\n";
  bj += "  \"tasks\": " + std::to_string(cfgs.size() * trials) + ",\n";
  bj += "  \"trials_per_config\": " + std::to_string(trials) + ",\n";
  bj += "  \"wall_seconds_jobs1\": " + num(serial.wall_seconds) + ",\n";
  bj += "  \"wall_seconds_jobsN\": " + num(par.wall_seconds) + ",\n";
  bj += "  \"jobs\": " + std::to_string(jobs) + ",\n";
  bj += "  \"speedup\": " + num(speedup) + ",\n";
  bj += "  \"hardware_concurrency\": " + std::to_string(harness::hardware_jobs()) +
        ",\n";
  bj += std::string("  \"deterministic_match\": ") + (match ? "true" : "false") +
        "\n";
  bj += "}\n";
  if (!bench::write_bench_json(opt, "BENCH_batch.json", bj)) {
    return 1;
  }
  return match ? 0 : 1;
}
