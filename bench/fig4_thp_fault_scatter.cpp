// Figure 4 (paper, §II-B): impact of competing workloads on the page
// fault handler under THP during miniMD — the scatter of fault cost vs
// time, where khugepaged merge-blocked faults (blue in the paper) form a
// band ~1000x above the ordinary small faults.
//
// The per-fault samples come from the trace subsystem: the run records
// Category::kFault into the flight recorder and the scatter is rebuilt
// from the app ranks' "fault" events (harness::app_fault_samples).
//
// Emits one CSV per panel (no competition / with competition) with
// columns (t_seconds, kind, cycles), plus a terminal summary: per-decade
// histogram of fault costs and the worst offenders.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace hpmmap;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_mode(opt, "Figure 4: THP fault scatter over time (miniMD)");

  for (const bool loaded : {false, true}) {
    harness::SingleNodeRunConfig cfg;
    cfg.app = "miniMD";
    cfg.manager = harness::Manager::kThp;
    cfg.commodity = loaded ? workloads::profile_a(8) : workloads::no_competition();
    cfg.app_cores = 8;
    cfg.seed = 41;
    cfg.trace.categories = static_cast<std::uint32_t>(trace::Category::kFault);
    cfg.footprint_scale = opt.full ? 1.0 : 0.25;
    cfg.duration_scale = opt.full ? 1.0 : 0.15;
    const harness::RunResult r = harness::run_single_node(cfg);
    const std::vector<harness::FaultSample> samples = harness::app_fault_samples(r);
    const double hz = r.clock_hz;

    harness::Table csv({"t_seconds", "kind", "cycles"});
    for (const harness::FaultSample& rec : samples) {
      csv.add_row({harness::fixed(static_cast<double>(rec.when - r.trace_t0) / hz, 6),
                   std::string(name(rec.kind)), std::to_string(rec.cost)});
    }
    const std::string path = opt.out_dir + (loaded ? "/fig4_with_competition.csv"
                                                   : "/fig4_no_competition.csv");
    csv.write_csv(path);

    // Terminal rendition: cost-decade histogram per kind.
    std::printf("--- %s competition: %zu faults over %.1f s -> %s\n",
                loaded ? "WITH" : "no", samples.size(), r.runtime_seconds, path.c_str());
    const char* kinds[] = {"Small", "Large", "Merge"};
    for (int k = 0; k < 3; ++k) {
      std::uint64_t decades[10] = {};
      for (const harness::FaultSample& rec : samples) {
        if (static_cast<int>(rec.kind) != k) {
          continue;
        }
        int d = 0;
        for (Cycles c = rec.cost; c >= 10; c /= 10) {
          ++d;
        }
        ++decades[std::min(d, 9)];
      }
      std::printf("  %-6s cost decades [1e0..1e9]:", kinds[k]);
      for (int d = 0; d < 10; ++d) {
        std::printf(" %llu", static_cast<unsigned long long>(decades[d]));
      }
      std::printf("\n");
    }
    // Worst five faults: under load these should be merge-blocked or
    // reclaim-stalled, echoing the paper's upper band.
    std::vector<harness::FaultSample> worst = samples;
    std::sort(worst.begin(), worst.end(),
              [](const harness::FaultSample& a, const harness::FaultSample& b) {
                return a.cost > b.cost;
              });
    for (std::size_t i = 0; i < std::min<std::size_t>(5, worst.size()); ++i) {
      std::printf("  worst #%zu: t=%.2fs %s %s cycles\n", i + 1,
                  static_cast<double>(worst[i].when - r.trace_t0) / hz,
                  name(worst[i].kind).data(), harness::with_commas(worst[i].cost).c_str());
    }
    std::printf("\n");
  }
  std::printf("Paper shape check: the loaded panel's ceiling sits well above the\n"
              "unloaded panel's; Merge faults populate the top band.\n");
  return 0;
}
