// Snapshot amortization self-report (JSON, gated by bench_diff in CI).
//
//   BENCH_snapshot.json — wall-time of a Figure-7-shaped sweep run
//   straight (every trial re-ages its world from scratch) vs through
//   run_trials_snapshotted (each world group ages ONCE per trial and
//   every member config resumes from the captured image), plus the
//   byte-identity check between the two result sets.
//
// The sweep shares one seed across apps and core counts so each
// (manager) slice forms a single world group — the shape fig7 itself
// uses — and runs a deeply aged world (long build-churn warmup, short
// measurement windows): the regime the snapshot path exists for, where
// re-aging per trial is the sweep's dominant cost. `speedup` is gated
// (a drop past the threshold fails CI); `deterministic_match` flipping
// to false fails the bench directly.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/batch.hpp"
#include "harness/experiment.hpp"
#include "workloads/profiles.hpp"

namespace {

using namespace hpmmap;

std::vector<harness::SingleNodeRunConfig> sweep_configs(bool full) {
  const char* apps[] = {"miniMD", "HPCCG"};
  const std::vector<std::uint32_t> core_counts =
      full ? std::vector<std::uint32_t>{1, 2, 4} : std::vector<std::uint32_t>{1, 4};
  const harness::Manager managers[] = {harness::Manager::kHpmmap,
                                       harness::Manager::kThp,
                                       harness::Manager::kHugetlbfs};
  std::vector<harness::SingleNodeRunConfig> cfgs;
  for (const harness::Manager mgr : managers) {
    for (const char* app : apps) {
      for (const std::uint32_t cores : core_counts) {
        harness::SingleNodeRunConfig cfg;
        cfg.app = app;
        cfg.manager = mgr;
        cfg.commodity = workloads::profile_a(cores);
        cfg.app_cores = cores;
        // One seed for the whole sweep: every config of a manager slice
        // shapes the same aged world (same_world still splits on the
        // manager), so the slice is one snapshot group.
        cfg.seed = 1000;
        cfg.footprint_scale = 1.0;
        // Deeply aged world, short measurement window: 30 s of build
        // churn before a ~0.2 s app phase makes re-aging the dominant
        // per-run cost, which is exactly what the snapshot amortizes.
        cfg.warmup_seconds = 30.0;
        cfg.duration_scale = 0.01;
        cfgs.push_back(cfg);
      }
    }
  }
  return cfgs;
}

struct SweepTiming {
  std::vector<harness::SeriesPoint> points;
  double wall_seconds = 0.0;
};

template <typename Fn>
SweepTiming time_sweep(Fn&& run) {
  SweepTiming t;
  const auto t0 = std::chrono::steady_clock::now();
  t.points = run();
  t.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return t;
}

bool identical(const std::vector<harness::SeriesPoint>& a,
               const std::vector<harness::SeriesPoint>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bitwise comparison: the determinism contract is byte-identity, not
    // approximate equality.
    if (std::memcmp(&a[i].mean_seconds, &b[i].mean_seconds, sizeof(double)) != 0 ||
        std::memcmp(&a[i].stdev_seconds, &b[i].stdev_seconds, sizeof(double)) != 0 ||
        a[i].trials != b[i].trials || a[i].events != b[i].events) {
      return false;
    }
    for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
      if (a[i].fault_counts[k] != b[i].fault_counts[k] ||
          a[i].fault_cycles[k] != b[i].fault_cycles[k]) {
        return false;
      }
    }
  }
  return true;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

} // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_mode(opt, "Snapshot amortized aging: age-once/fan-out vs re-age per trial");

  const unsigned jobs = opt.jobs == 0 ? harness::hardware_jobs() : opt.jobs;
  const std::uint32_t trials = opt.full ? opt.trials : 2;
  const std::vector<harness::SingleNodeRunConfig> cfgs = sweep_configs(opt.full);

  const SweepTiming straight =
      time_sweep([&] { return harness::run_trials_batch(cfgs, trials, jobs); });
  const SweepTiming snapshotted =
      time_sweep([&] { return harness::run_trials_snapshotted(cfgs, trials, jobs); });
  const bool match = identical(straight.points, snapshotted.points);
  const double speedup = snapshotted.wall_seconds > 0
                             ? straight.wall_seconds / snapshotted.wall_seconds
                             : 0.0;

  std::printf("sweep:    %zu configs x %u trials in 3 world groups\n", cfgs.size(),
              trials);
  std::printf("straight: %.3f s wall (every trial re-ages its world)\n",
              straight.wall_seconds);
  std::printf("snapshot: %.3f s wall (age once per group+trial, resume members)\n",
              snapshotted.wall_seconds);
  std::printf("speedup:  %.2fx   identical=%s\n", speedup, match ? "yes" : "NO");

  std::string j;
  j += "{\n";
  j += "  \"bench\": \"snapshot_amortized_aging\",\n";
  j += "  \"sweep\": \"fig7 slice: {miniMD,HPCCG} x cores x 3 managers, profile A, "
       "30 s aged warmup\",\n";
  j += "  \"configs\": " + std::to_string(cfgs.size()) + ",\n";
  j += "  \"trials_per_config\": " + std::to_string(trials) + ",\n";
  j += "  \"world_groups\": 3,\n";
  j += "  \"wall_seconds_straight\": " + num(straight.wall_seconds) + ",\n";
  j += "  \"wall_seconds_snapshotted\": " + num(snapshotted.wall_seconds) + ",\n";
  j += "  \"jobs\": " + std::to_string(jobs) + ",\n";
  j += "  \"speedup\": " + num(speedup) + ",\n";
  j += std::string("  \"deterministic_match\": ") + (match ? "true" : "false") + "\n";
  j += "}\n";
  if (!bench::write_bench_json(opt, "BENCH_snapshot.json", j)) {
    return 1;
  }
  if (!match) {
    std::printf("FAIL: snapshotted sweep diverged from the straight run\n");
    return 1;
  }
  if (speedup < 2.0) {
    std::printf("FAIL: amortized aging under 2x (%.2fx)\n", speedup);
    return 1;
  }
  return 0;
}
