// Figure 8 (paper, §IV-C): multi-node weak-scaling runtimes of HPCCG,
// miniFE and LAMMPS under commodity profiles C and D, HPMMAP vs
// Linux(THP), 4 ranks/node over 1/2/4/8 nodes of the Sandia 1 GbE
// cluster. HugeTLBfs is omitted, as in the paper.
//
// Paper headline (32 ranks): HPMMAP beats THP by 12%/9%/2% (profile C)
// and 11%/6%/4% (profile D) for HPCCG/miniFE/LAMMPS, with visibly
// smaller variance — single-node memory-management noise amplifies
// through the per-iteration barrier as node count grows.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/cluster.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace hpmmap;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  // --cluster-jobs N switches the sweep to the PDES path: per-node
  // engines driven by N workers (0 = all hardware threads). The tables
  // match the shared-engine sweep — see test_cluster.cpp.
  int cluster_jobs = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cluster-jobs") == 0 && i + 1 < argc) {
      cluster_jobs = std::atoi(argv[++i]);
    }
  }
  bench::print_mode(opt, "Figure 8: scaling runtimes (profiles C and D, 1GbE cluster)");
  if (cluster_jobs >= 0) {
    std::printf("engine: PDES per-node engines, %d worker(s)\n", cluster_jobs);
  }

  const char* apps[] = {"HPCCG", "miniFE", "LAMMPS"};
  const std::uint32_t node_counts[] = {1, 2, 4, 8};

  harness::Table table(
      {"App", "Profile", "Nodes", "Ranks", "Manager", "Mean (s)", "Stdev (s)"});

  // Enumerate the full sweep first, fan every (cell, trial) run across
  // the batch runner, then fold the results in enumeration order — the
  // printed table is byte-identical to the serial sweep for any --jobs.
  const std::uint32_t trials = opt.full ? opt.trials : 2;
  std::vector<harness::ScalingRunConfig> cfgs;
  for (const char* app : apps) {
    for (int prof = 0; prof < 2; ++prof) {
      for (const std::uint32_t nodes : node_counts) {
        for (const harness::Manager mgr :
             {harness::Manager::kHpmmap, harness::Manager::kThp}) {
          harness::ScalingRunConfig cfg;
          cfg.app = app;
          cfg.manager = mgr;
          cfg.commodity = prof == 0 ? workloads::profile_c() : workloads::profile_d();
          cfg.nodes = nodes;
          cfg.ranks_per_node = 4;
          // Shared across apps: the three apps at one (profile, nodes,
          // manager) cell resume from a single aged-cluster capture.
          cfg.seed = 500 + static_cast<std::uint64_t>(prof) * 29 + nodes;
          cfg.footprint_scale = 1.0; // pressure needs real footprints
          cfg.duration_scale = opt.full ? 1.0 : 0.05;
          cfgs.push_back(cfg);
        }
      }
    }
  }
  std::vector<harness::SeriesPoint> points;
  if (cluster_jobs >= 0) {
    for (const harness::ScalingRunConfig& cfg : cfgs) {
      harness::ClusterRunConfig ccfg;
      ccfg.scaling = cfg;
      ccfg.cluster_jobs = static_cast<unsigned>(cluster_jobs);
      points.push_back(harness::run_cluster_trials(ccfg, trials));
    }
  } else {
    points = harness::run_trials_snapshotted(cfgs, trials, opt.jobs);
  }

  std::size_t ci = 0;
  for (const char* app : apps) {
    for (int prof = 0; prof < 2; ++prof) {
      double ratio_at_32 = 0.0;
      for (const std::uint32_t nodes : node_counts) {
        double hpmmap_mean = 0.0;
        for (const harness::Manager mgr :
             {harness::Manager::kHpmmap, harness::Manager::kThp}) {
          const harness::SeriesPoint& p = points[ci++];
          if (mgr == harness::Manager::kHpmmap) {
            hpmmap_mean = p.mean_seconds;
          } else if (nodes == 8) {
            ratio_at_32 = p.mean_seconds / hpmmap_mean;
          }
          table.add_row({app, prof == 0 ? "C" : "D", std::to_string(nodes),
                         std::to_string(nodes * 4), std::string(name(mgr)),
                         harness::fixed(p.mean_seconds, 2),
                         harness::fixed(p.stdev_seconds, 2)});
        }
        std::printf(".");
        std::fflush(stdout);
      }
      std::printf(" %s profile %c @32 ranks: THP/HPMMAP = %.3f\n", app, 'C' + prof,
                  ratio_at_32);
    }
  }
  std::printf("\n");
  table.print();
  table.write_csv(opt.out_dir + "/fig8_scaling.csv");
  std::printf("\nPaper shape check (32 ranks): HPMMAP ahead of THP by ~12%%/9%%/2%% (C) and\n"
              "~11%%/6%%/4%% (D) for HPCCG/miniFE/LAMMPS; the gap widens with node count.\n");
  return 0;
}
