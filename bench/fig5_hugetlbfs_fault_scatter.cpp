// Figure 5 (paper, §II-C): impact of additional workloads on the page
// fault handler under HugeTLBfs for HPCCG, CoMD and miniFE — six panels
// (three apps x {no load, kernel build}).
//
// The paper's observation: the pool-backed large faults stay put, but
// the small faults in regions HugeTLBfs does not manage blow up once a
// competing workload saturates the (much smaller) non-pool memory.
// Per-fault samples are rebuilt from the trace stream
// (harness::app_fault_samples), same as Figure 4.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace hpmmap;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_mode(opt, "Figure 5: HugeTLBfs fault scatter (HPCCG, CoMD, miniFE)");

  harness::Table summary({"App", "Load", "Small faults", "Avg small (cyc)",
                          "Max small (cyc)", "Large faults", "Avg large (cyc)"});

  for (const char* app : {"HPCCG", "CoMD", "miniFE"}) {
    for (const bool loaded : {false, true}) {
      harness::SingleNodeRunConfig cfg;
      cfg.app = app;
      cfg.manager = harness::Manager::kHugetlbfs;
      cfg.commodity = loaded ? workloads::profile_a(8) : workloads::no_competition();
      cfg.app_cores = 8;
      cfg.seed = 52;
      cfg.trace.categories = static_cast<std::uint32_t>(trace::Category::kFault);
      cfg.footprint_scale = opt.full ? 1.0 : 0.2;
      cfg.duration_scale = opt.full ? 1.0 : 0.1;
      const harness::RunResult r = harness::run_single_node(cfg);
      const double hz = r.clock_hz;

      harness::Table csv({"t_seconds", "kind", "cycles"});
      Cycles max_small = 0;
      for (const harness::FaultSample& rec : harness::app_fault_samples(r)) {
        csv.add_row({harness::fixed(static_cast<double>(rec.when - r.trace_t0) / hz, 6),
                     std::string(name(rec.kind)), std::to_string(rec.cost)});
        if (rec.kind == mm::FaultKind::kSmall) {
          max_small = std::max(max_small, rec.cost);
        }
      }
      std::string path = opt.out_dir + "/fig5_" + app + (loaded ? "_loaded" : "_idle") + ".csv";
      csv.write_csv(path);

      const auto& small = r.by_kind(mm::FaultKind::kSmall);
      const auto& large = r.by_kind(mm::FaultKind::kLarge);
      summary.add_row({app, loaded ? "build" : "none",
                       harness::with_commas(small.total_faults),
                       harness::with_commas(static_cast<std::uint64_t>(small.avg_cycles)),
                       harness::with_commas(max_small),
                       harness::with_commas(large.total_faults),
                       harness::with_commas(static_cast<std::uint64_t>(large.avg_cycles))});
    }
  }
  summary.print();
  summary.write_csv(opt.out_dir + "/fig5_summary.csv");
  std::printf("\nPaper shape check: per app, the loaded row's small-fault avg and max rise\n"
              "sharply over the idle row while the large-fault avg barely moves.\n");
  return 0;
}
