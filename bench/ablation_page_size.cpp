// Ablation A1 (DESIGN.md): the page size HPMMAP uses as its fundamental
// allocation unit. The paper's §III-A default is 2M with 1G "where
// supported by hardware"; Linux's default 4K demand paging stands in as
// the smallest-granularity baseline.
//
// Reports runtime of HPCCG plus the resulting mapping mix and the TLB
// model's per-access translation estimate — showing *why* large pages
// win at HPC working-set sizes.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/batch.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "os/node.hpp"
#include "sim/engine.hpp"
#include "snapshot/snapshot.hpp"
#include "workloads/mpi_app.hpp"

namespace {

struct Variant {
  const char* label;
  hpmmap::os::MmPolicy policy;
  bool use_1g;
};

using Row = std::vector<std::string>;

/// The shared node shape of the module-backed variants; use_1g_pages
/// acts at map time, not at boot, so both boot bit-identical worlds.
hpmmap::os::NodeConfig module_node_config() {
  using namespace hpmmap;
  os::NodeConfig cfg;
  cfg.machine = hw::dell_r415();
  cfg.seed = 77;
  cfg.thp_enabled = false; // isolate the page-size effect
  core::ModuleConfig mod;
  mod.offline_bytes_per_zone = 6 * GiB;
  cfg.hpmmap = mod;
  return cfg;
}

} // namespace

int main(int argc, char** argv) {
  using namespace hpmmap;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_mode(opt, "Ablation A1: page size as HPMMAP's allocation unit");

  const Variant variants[] = {
      {"4K (Linux demand paging)", os::MmPolicy::kLinuxPlain, false},
      {"2M (HPMMAP default)", os::MmPolicy::kHpmmap, false},
      {"1G (HPMMAP, where aligned)", os::MmPolicy::kHpmmap, true},
  };

  harness::Table table({"Allocation unit", "Runtime (s)", "4K bytes", "2M bytes", "1G bytes",
                        "Translation cyc/access"});

  // The 2M and 1G variants boot the same aged module world — age it once
  // here and let both restore from the capture (DESIGN.md §12); only the
  // module-less Linux variant still pays its own boot aging.
  snapshot::WorldImage module_world;
  {
    sim::Engine engine;
    os::Node node(engine, module_node_config());
    module_world = snapshot::capture_world(engine, {&node});
  }

  // One task per variant on the batch runner — each builds its own
  // engine/node, so variants run concurrently; rows land in variant order.
  std::vector<std::function<Row()>> tasks;
  for (const Variant& v : variants) {
    tasks.emplace_back([&opt, &module_world, v]() -> Row {
      sim::Engine engine;
      os::NodeConfig cfg;
      if (v.policy == os::MmPolicy::kHpmmap) {
        cfg = module_node_config();
        cfg.aged_boot = false; // state arrives from the capture instead
        cfg.hpmmap->use_1g_pages = v.use_1g;
      } else {
        cfg.machine = hw::dell_r415();
        cfg.seed = 77;
        cfg.thp_enabled = false; // isolate the page-size effect
      }
      os::Node node(engine, cfg);
      if (v.policy == os::MmPolicy::kHpmmap) {
        snapshot::restore_world(module_world, engine, {&node});
      }

      workloads::MpiJobConfig jc;
      jc.app = workloads::hpccg(node.spec().clock_hz);
      jc.app.bytes_per_rank = static_cast<std::uint64_t>(
          static_cast<double>(jc.app.bytes_per_rank) * (opt.full ? 1.0 : 0.25));
      jc.app.bytes_per_rank = align_up(jc.app.bytes_per_rank, kHugePageSize); // 1G-able
      jc.app.iterations = static_cast<std::uint64_t>(
          static_cast<double>(jc.app.iterations) * (opt.full ? 1.0 : 0.15));
      jc.app.setup_brk_fraction = 0.0;       // all via mmap so 1G alignment is possible
      jc.app.data_chunk_bytes = 1 * GiB;     // whole-array allocations: 1G-mappable
      jc.policy = v.policy;
      for (std::uint32_t r = 0; r < 4; ++r) {
        workloads::RankPlacement p;
        p.node = &node;
        p.core = static_cast<std::int32_t>(r < 2 ? r : 6 + r - 2);
        p.home_zone = r < 2 ? 0 : 1;
        p.zone_policy = mm::AddressSpace::ZonePolicy::kSingle; // keep 1G chunks zonal
        jc.ranks.push_back(p);
      }
      workloads::MpiJob job(engine, jc);
      job.start([&engine] { engine.stop(); });
      engine.run();

      const hw::MappingMix mix = job.final_mapping_mix();
      const hw::TlbModel tlb(node.spec().tlb);
      return Row{v.label, harness::fixed(job.runtime_seconds(), 2),
                 harness::with_commas(mix.bytes_4k), harness::with_commas(mix.bytes_2m),
                 harness::with_commas(mix.bytes_1g),
                 harness::fixed(tlb.translation_cycles_per_access(mix, jc.app.locality), 3)};
    });
  }
  for (Row& row : harness::BatchRunner(opt.jobs).map(std::move(tasks))) {
    table.add_row(std::move(row));
  }
  table.print();
  table.write_csv(opt.out_dir + "/ablation_page_size.csv");
  std::printf("\nExpected: 2M crushes 4K (reach + walk length). 1G can *lose* to 2M on\n"
              "this Opteron: the part has no 1G DTLB entries, so every 1G-mapped access\n"
              "walks — the reason the paper defaults to 2M and calls 1G hardware-dependent.\n");
  return 0;
}
