// Figure 3 (paper, §II): cycles needed to handle page faults under
// HugeTLBfs for the miniMD benchmark, with and without a competing
// kernel build.
//
// Paper reference values (Dell R415):
//   No  load: Small 1,310 @ 1,350 (sd 1,683); Large 84 @ 735,384 (sd 458,239)
//   With load: Small 1,777 @ 475,724 (sd 16,387,888); Large 75 @ 615,162
//
// The headline behaviours to match: Large faults are expensive but
// load-INSENSITIVE (the pool is reserved), while Small faults explode
// under load (the non-pool memory is starved; reclaim and swap storms).
#include <cstdio>

#include "bench_util.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace hpmmap;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_mode(opt, "Figure 3: HugeTLBfs page-fault cost breakdown (miniMD)");

  harness::Table table({"Added Load", "Fault Size", "Total Faults", "Avg Cycles",
                        "Stdev Cycles"});

  for (const bool loaded : {false, true}) {
    harness::SingleNodeRunConfig cfg;
    cfg.app = "miniMD";
    cfg.manager = harness::Manager::kHugetlbfs;
    cfg.commodity = loaded ? workloads::profile_a(8) : workloads::no_competition();
    cfg.app_cores = 8;
    cfg.seed = 2014;
    cfg.trace.categories = static_cast<std::uint32_t>(trace::Category::kFault);
    cfg.footprint_scale = opt.full ? 1.0 : 0.25;
    cfg.duration_scale = opt.full ? 1.0 : 0.15;
    const harness::RunResult r = harness::run_single_node(cfg);

    const auto row = [&](mm::FaultKind kind, const char* label) {
      const auto& k = r.by_kind(kind);
      table.add_row({loaded ? "Yes" : "No", label, harness::with_commas(k.total_faults),
                     harness::with_commas(static_cast<std::uint64_t>(k.avg_cycles)),
                     harness::with_commas(static_cast<std::uint64_t>(k.stdev_cycles))});
    };
    row(mm::FaultKind::kSmall, "Small");
    row(mm::FaultKind::kLarge, "Large");
  }
  std::printf("\n");
  table.print();
  table.write_csv(opt.out_dir + "/fig3_hugetlbfs_fault_table.csv");
  std::printf("\nPaper shape check: loaded Small avg hundreds of times the unloaded avg,\n"
              "with an enormous stdev (swap storms); Large avg roughly load-insensitive.\n");
  return 0;
}
