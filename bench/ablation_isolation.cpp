// Ablation A3 (DESIGN.md): what memory offlining buys.
//
// The same logical operation — produce one zeroed 2M page for an HPC
// process — is timed against (a) HPMMAP's Kitten allocator over the
// offlined pool and (b) the shared Linux zone allocator, while a kernel
// build churns the shared side. The offlined path's latency distribution
// should be flat; the shared path picks up reclaim/compaction tails that
// grow with load (§III-A's isolation argument, reduced to its kernel).
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "harness/batch.hpp"
#include "harness/table.hpp"
#include "os/node.hpp"
#include "sim/engine.hpp"
#include "snapshot/snapshot.hpp"
#include "workloads/kernel_build.hpp"

namespace {

hpmmap::os::NodeConfig variant_node_config() {
  using namespace hpmmap;
  os::NodeConfig cfg;
  cfg.machine = hw::dell_r415();
  cfg.seed = 13;
  // Offline most of the machine (the §IV configuration): the shared
  // side is small enough that the build actually pressures it.
  core::ModuleConfig mod;
  mod.offline_bytes_per_zone = 7 * GiB; // Linux keeps 1 GiB per zone
  cfg.hpmmap = mod;
  return cfg;
}

} // namespace

int main(int argc, char** argv) {
  using namespace hpmmap;
  using Row = std::vector<std::string>;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_mode(opt, "Ablation A3: isolated (offlined) vs shared allocation");

  harness::Table table({"Source", "Load", "Allocs", "Mean (cyc)", "p99 (cyc)", "Max (cyc)",
                        "Failures"});

  // The idle and loaded variants diverge only after boot (the build
  // starts post-capture), so the aged boot state is captured once and
  // restored into both (DESIGN.md §12).
  snapshot::WorldImage aged;
  {
    sim::Engine engine;
    os::Node node(engine, variant_node_config());
    aged = snapshot::capture_world(engine, {&node});
  }

  // idle and loaded variants run concurrently on the batch runner; each
  // produces its pair of rows, merged back in variant order.
  std::vector<std::function<std::vector<Row>()>> tasks;
  for (const bool loaded : {false, true}) {
    tasks.emplace_back([&opt, &aged, loaded]() -> std::vector<Row> {
      sim::Engine engine;
      os::NodeConfig cfg = variant_node_config();
      cfg.aged_boot = false; // state arrives from the capture instead
      os::Node node(engine, cfg);
      snapshot::restore_world(aged, engine, {&node});

      std::unique_ptr<workloads::KernelBuild> build;
      if (loaded) {
        workloads::KernelBuildConfig bc;
        bc.jobs = 8;
        build = std::make_unique<workloads::KernelBuild>(node, bc, Rng(3));
        build->start();
        engine.run_until(node.spec().cycles(4.0));
      }

      const int n = opt.full ? 2000 : 600;
      const mm::CostModel& costs = node.config().costs;

      // (a) Kitten over the offlined pool: constant-time pops, immune to
      // whatever the build does on the shared side.
      Samples kitten;
      std::vector<std::pair<ZoneId, Addr>> kitten_blocks;
      std::uint64_t kitten_failures = 0;
      core::KittenAllocator& pool = node.hpmmap_module()->allocator_mut();
      for (int i = 0; i < n; ++i) {
        // Interleave with the build's churn on the simulated clock.
        engine.run_until(engine.now() + node.spec().cycles(0.002));
        const ZoneId zone = static_cast<ZoneId>(i % 2);
        auto a = pool.alloc(zone, kLargePageSize);
        if (a.has_value()) {
          kitten_blocks.emplace_back(zone, *a);
          kitten.add(static_cast<double>(costs.hpmmap_alloc_base + costs.hpmmap_pte_install));
          if (kitten_blocks.size() > 64) { // steady-state: recycle
            pool.free(kitten_blocks.front().first, kitten_blocks.front().second, kLargePageSize);
            kitten_blocks.erase(kitten_blocks.begin());
          }
        } else {
          ++kitten_failures;
        }
      }
      for (const auto& [zone, addr] : kitten_blocks) {
        pool.free(zone, addr, kLargePageSize);
      }

      // (b) the shared zone allocator with the full slow path.
      Samples shared;
      std::uint64_t shared_failures = 0;
      std::vector<std::pair<ZoneId, Addr>> shared_blocks;
      for (int i = 0; i < n; ++i) {
        engine.run_until(engine.now() + node.spec().cycles(0.002));
        const ZoneId zone = static_cast<ZoneId>(i % 2);
        mm::AllocOutcome out = node.memory().alloc_pages(zone, mm::kLargePageOrder, true);
        if (out.ok) {
          shared.add(static_cast<double>(node.memory().alloc_cycles(out, zone)));
          shared_blocks.emplace_back(zone, out.addr);
          if (shared_blocks.size() > 64) {
            node.memory().free_pages(shared_blocks.front().first, shared_blocks.front().second,
                                     mm::kLargePageOrder);
            shared_blocks.erase(shared_blocks.begin());
          }
        } else {
          ++shared_failures;
        }
      }

      const char* load_label = loaded ? "kernel build" : "idle";
      std::vector<Row> rows;
      rows.push_back({"offlined pool (Kitten)", load_label, std::to_string(n),
                      harness::fixed(kitten.mean(), 0), harness::fixed(kitten.percentile(99), 0),
                      harness::fixed(kitten.max(), 0), std::to_string(kitten_failures)});
      rows.push_back({"shared zone allocator", load_label, std::to_string(n),
                      harness::fixed(shared.mean(), 0), harness::fixed(shared.percentile(99), 0),
                      harness::fixed(shared.max(), 0), std::to_string(shared_failures)});

      if (build) {
        build->stop();
      }
      return rows;
    });
  }
  for (std::vector<Row>& rows : harness::BatchRunner(opt.jobs).map(std::move(tasks))) {
    for (Row& row : rows) {
      table.add_row(std::move(row));
    }
  }
  table.print();
  table.write_csv(opt.out_dir + "/ablation_isolation.csv");
  std::printf("\nExpected: the offlined pool's latency is flat and load-blind; the shared\n"
              "allocator's p99/max explode once the build saturates the zones.\n");
  return 0;
}
