// Figure 7 (paper, §IV-B): single-node runtimes of HPCCG, CoMD, miniMD
// and miniFE under commodity profiles A and B, for HPMMAP vs Linux(THP)
// vs Linux(HugeTLBfs), weak-scaled over 1/2/4/8 cores; each point is the
// mean and stdev of several trials.
//
// Paper headline: HPMMAP wins everywhere; vs THP by ~15% (A) / ~16% (B)
// on average, vs HugeTLBfs by ~9% (A) / ~36% (B); HugeTLBfs collapses at
// 8 cores under profile B; HPMMAP's error bars are tiny.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace hpmmap;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_mode(opt, "Figure 7: single-node runtimes (profiles A and B)");

  const char* apps[] = {"HPCCG", "CoMD", "miniMD", "miniFE"};
  const harness::Manager managers[] = {harness::Manager::kHpmmap, harness::Manager::kThp,
                                       harness::Manager::kHugetlbfs};
  // Quick mode trades core-count resolution for footprint fidelity: the
  // paper's gaps come from memory pressure, which tiny footprints never
  // generate. Full mode sweeps all four core counts at full scale.
  const std::vector<std::uint32_t> core_counts =
      opt.full ? std::vector<std::uint32_t>{1, 2, 4, 8} : std::vector<std::uint32_t>{1, 8};
  // Footprint stays at paper scale even in quick mode — the gaps are a
  // memory-pressure phenomenon and vanish with shrunken inputs. Quick
  // mode instead shortens the iteration phase and the sweep.
  const double fscale = 1.0;
  const double dscale = opt.full ? 1.0 : 0.05;
  const std::uint32_t trials = opt.full ? opt.trials : 2;

  harness::Table table({"App", "Profile", "Cores", "Manager", "Mean (s)", "Stdev (s)"});
  // Track the profile-wide improvement the paper reports as its average.
  double sum_thp_ratio[2] = {0, 0}, sum_htlb_ratio[2] = {0, 0};
  int ratio_n[2] = {0, 0};

  // Enumerate the whole grid, fan every (cell, trial) run out across the
  // batch runner, then fold in enumeration order — the table is byte-
  // identical to the serial sweep for any --jobs value.
  std::vector<harness::SingleNodeRunConfig> cfgs;
  for (const char* app : apps) {
    for (int prof = 0; prof < 2; ++prof) {
      for (const std::uint32_t cores : core_counts) {
        for (const harness::Manager mgr : managers) {
          harness::SingleNodeRunConfig cfg;
          cfg.app = app;
          cfg.manager = mgr;
          cfg.commodity =
              prof == 0 ? workloads::profile_a(cores) : workloads::profile_b(cores);
          cfg.app_cores = cores;
          // Seed is shared across apps and core counts so every cell of a
          // (profile, manager) slice shapes the same aged world — the
          // snapshotted sweep below then ages each slice once per trial
          // and fans the apps/cores out from the captured image.
          cfg.seed = 1000 + static_cast<std::uint64_t>(prof) * 13;
          cfg.footprint_scale = fscale;
          cfg.duration_scale = dscale;
          cfgs.push_back(cfg);
        }
      }
    }
  }
  const std::vector<harness::SeriesPoint> points =
      harness::run_trials_snapshotted(cfgs, trials, opt.jobs);

  std::size_t ci = 0;
  for (const char* app : apps) {
    for (int prof = 0; prof < 2; ++prof) {
      for (const std::uint32_t cores : core_counts) {
        double mean_by_mgr[3] = {0, 0, 0};
        int mi = 0;
        for (const harness::Manager mgr : managers) {
          const harness::SeriesPoint& p = points[ci++];
          mean_by_mgr[mi++] = p.mean_seconds;
          table.add_row({app, prof == 0 ? "A" : "B", std::to_string(cores),
                         std::string(name(mgr)), harness::fixed(p.mean_seconds, 2),
                         harness::fixed(p.stdev_seconds, 2)});
        }
        sum_thp_ratio[prof] += mean_by_mgr[1] / mean_by_mgr[0];
        sum_htlb_ratio[prof] += mean_by_mgr[2] / mean_by_mgr[0];
        ++ratio_n[prof];
        std::printf(".");
        std::fflush(stdout);
      }
    }
  }
  std::printf("\n\n");
  table.print();
  table.write_csv(opt.out_dir + "/fig7_single_node.csv");

  for (int prof = 0; prof < 2; ++prof) {
    std::printf("\nprofile %c averages: THP / HPMMAP = %.3f  (paper: %.2f)   "
                "HugeTLBfs / HPMMAP = %.3f  (paper: %.2f)\n",
                'A' + prof, sum_thp_ratio[prof] / ratio_n[prof], prof == 0 ? 1.15 : 1.16,
                sum_htlb_ratio[prof] / ratio_n[prof], prof == 0 ? 1.09 : 1.36);
  }
  return 0;
}
