// Ablation A2 (DESIGN.md): HPMMAP's on-request allocation policy vs
// demand paging over the same large-page machinery (§III-A argues
// on-request backing eliminates the fault handler entirely).
//
// Both variants use the module, the offlined pool and 2M pages; only
// *when* the backing happens differs. Reports runtime, fault counts and
// where the backing cost was paid (syscall vs fault path).
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/batch.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "os/node.hpp"
#include "sim/engine.hpp"
#include "snapshot/snapshot.hpp"
#include "workloads/kernel_build.hpp"
#include "workloads/mpi_app.hpp"

namespace {

/// Both variants boot this exact node — on_request only decides *when*
/// backing happens at mmap time, so boot aging and the kernel-build
/// warmup are policy-blind and can be captured once.
hpmmap::os::NodeConfig variant_node_config(bool on_request) {
  using namespace hpmmap;
  os::NodeConfig cfg;
  cfg.machine = hw::dell_r415();
  cfg.seed = 31;
  core::ModuleConfig mod;
  mod.offline_bytes_per_zone = 6 * GiB;
  mod.on_request = on_request;
  cfg.hpmmap = mod;
  return cfg;
}

} // namespace

int main(int argc, char** argv) {
  using namespace hpmmap;
  using Row = std::vector<std::string>;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_mode(opt, "Ablation A2: on-request vs demand backing inside HPMMAP");

  harness::Table table({"Policy", "Runtime (s)", "Demand faults", "Spurious faults",
                        "Linux small faults"});

  // Age the node and run the 1 s kernel-build warmup ONCE, capture build
  // and node at the quiesce point, and let each variant resume from the
  // image (DESIGN.md §12) — the warmup never touches the module, so the
  // captured world is valid for either backing policy.
  snapshot::WorldImage warmed;
  {
    sim::Engine engine;
    os::Node node(engine, variant_node_config(true));
    workloads::KernelBuildConfig bc;
    bc.jobs = 8;
    workloads::KernelBuild build(node, bc, Rng(7));
    build.start();
    engine.run_until(node.spec().cycles(1.0));
    warmed = snapshot::capture_world(engine, {&node}, {{&build, 0}});
  }

  // Both variants run concurrently on the batch runner; each owns its
  // engine and node, and the rows come back in variant order.
  std::vector<std::function<Row()>> tasks;
  for (const bool on_request : {true, false}) {
    tasks.emplace_back([&opt, &warmed, on_request]() -> Row {
      sim::Engine engine;
      os::NodeConfig cfg = variant_node_config(on_request);
      cfg.aged_boot = false; // state arrives from the capture instead
      os::Node node(engine, cfg);

      workloads::KernelBuildConfig bc;
      bc.jobs = 8;
      workloads::KernelBuild build(node, bc, Rng(7));
      snapshot::restore_world(warmed, engine, {&node}, {{&build, 0}});

      workloads::MpiJobConfig jc;
      jc.app = workloads::minimd(node.spec().clock_hz);
      jc.app.bytes_per_rank = static_cast<std::uint64_t>(
          static_cast<double>(jc.app.bytes_per_rank) * (opt.full ? 1.0 : 0.2));
      jc.app.iterations = static_cast<std::uint64_t>(
          static_cast<double>(jc.app.iterations) * (opt.full ? 1.0 : 0.1));
      jc.policy = os::MmPolicy::kHpmmap;
      for (std::uint32_t r = 0; r < 4; ++r) {
        workloads::RankPlacement p;
        p.node = &node;
        p.core = static_cast<std::int32_t>(r < 2 ? r : 6 + r - 2);
        p.home_zone = r < 2 ? 0 : 1;
        jc.ranks.push_back(p);
      }
      workloads::MpiJob job(engine, jc);
      job.start([&engine] { engine.stop(); });
      engine.run();
      build.stop();

      const mm::FaultStats faults = job.aggregate_faults();
      const core::ModuleStats& ms = node.hpmmap_module()->stats();
      return Row{on_request ? "on-request (paper)" : "demand-paged (ablation)",
                 harness::fixed(job.runtime_seconds(), 2),
                 harness::with_commas(ms.demand_faults),
                 harness::with_commas(ms.spurious_faults),
                 harness::with_commas(faults.count[0])};
    });
  }
  for (Row& row : harness::BatchRunner(opt.jobs).map(std::move(tasks))) {
    table.add_row(std::move(row));
  }
  table.print();
  table.write_csv(opt.out_dir + "/ablation_alloc_policy.csv");
  std::printf("\nExpected: identical mapping quality, but the demand variant re-enters\n"
              "the fault path once per 2M chunk; on-request takes zero module faults.\n"
              "The runtime gap is small on an idle fault path — the paper's point is\n"
              "that on-request removes the *exposure* to fault-path interference.\n");
  return 0;
}
