// The true SMP fault path (DESIGN.md §14): virtual-clock locks, the
// per-CPU page-frame caches, sharded PT locking and batched shootdowns,
// and the harness's (cores x variant) grid. The acceptance bar is that
// contention is *executed*, not costed — waits must emerge from how the
// core actors interleave, every modern-kernel feature must individually
// move the measured curve, and the whole grid must stay byte-identical
// for any batch-runner jobs value.
#include <gtest/gtest.h>

#include <cstring>
#include <string_view>
#include <vector>

#include "harness/batch.hpp"
#include "harness/experiment.hpp"
#include "linux_mm/smp.hpp"
#include "trace/trace.hpp"

namespace hpmmap {
namespace {

using harness::SmpRunConfig;
using harness::SmpRunResult;
using harness::SmpVariant;

// --- the virtual-clock lock primitives --------------------------------------

TEST(SimLock, WaitsEmergeFromOverlappingHolds) {
  mm::SimLock lock;
  // Uncontended: no wait, release point moves to now + hold.
  EXPECT_EQ(lock.acquire(100, 50), 0u);
  EXPECT_EQ(lock.free_at, 150u);
  // A second acquire before the release point eats exactly the overlap
  // and queues FIFO behind the holder.
  EXPECT_EQ(lock.acquire(120, 10), 30u);
  EXPECT_EQ(lock.free_at, 160u);
  // After the release point the lock is free again.
  EXPECT_EQ(lock.acquire(200, 5), 0u);
  EXPECT_EQ(lock.free_at, 205u);
}

TEST(SimRwSem, ReadersOverlapWritersSerialize) {
  mm::SimRwSem sem;
  // Two readers enter together: neither waits, both record their holds.
  EXPECT_EQ(sem.read_wait(100), 0u);
  sem.read_hold_until(180);
  EXPECT_EQ(sem.read_wait(110), 0u);
  sem.read_hold_until(150);
  EXPECT_EQ(sem.readers_free_at, 180u);
  // A writer waits out the slowest reader, then holds exclusively.
  EXPECT_EQ(sem.write_acquire(120, 40), 60u);
  EXPECT_EQ(sem.writer_free_at, 220u);
  // Readers arriving under the write hold wait it out; a second writer
  // queues behind the first.
  EXPECT_EQ(sem.read_wait(200), 20u);
  EXPECT_EQ(sem.write_acquire(200, 10), 20u);
}

// --- executed contention ----------------------------------------------------

SmpRunConfig quick(SmpVariant variant, std::uint32_t cores) {
  SmpRunConfig cfg;
  cfg.variant = variant;
  cfg.cores = cores;
  cfg.rounds = 3;
  cfg.slab_bytes = 1 * 1024 * 1024;
  return cfg;
}

TEST(SmpRun, ContentionGrowsWithCores) {
  const SmpRunResult one = harness::run_smp(quick(SmpVariant::kLinux1999, 1));
  const SmpRunResult many = harness::run_smp(quick(SmpVariant::kLinux1999, 16));
  // A single core never contends on mmap_sem with itself, and any
  // residual wait (its own extended lock holds) is noise-level...
  EXPECT_EQ(one.smp.mmap_sem_wait, 0u);
  // ...while 16 cores on the 1999 path fight over mmap_sem, the mm-wide
  // PT lock and the zone lock — waits grow by orders of magnitude, not
  // by the 16x a per-op cost formula would give, and per-core
  // throughput collapses.
  EXPECT_GT(many.smp.mmap_sem_wait, 0u);
  EXPECT_GT(many.smp.pt_lock_wait, 0u);
  EXPECT_GT(many.smp.zone_lock_wait, 0u);
  EXPECT_GT(many.smp.total_lock_wait(), 1000u * (one.smp.total_lock_wait() + 1));
  EXPECT_LT(many.faults_per_sec / 16.0, one.faults_per_sec);
}

TEST(SmpRun, HpmmapTakesNoSharedLocks) {
  const SmpRunResult hpm = harness::run_smp(quick(SmpVariant::kHpmmap, 16));
  const SmpRunResult stock = harness::run_smp(quick(SmpVariant::kLinux1999, 16));
  // Per-process management touches no shared Linux lock (§III-A): the
  // SMP counters stay zero and throughput clears stock at 16 cores.
  EXPECT_EQ(hpm.smp.total_lock_wait(), 0u);
  EXPECT_EQ(hpm.smp.shootdown_ipis, 0u);
  EXPECT_GT(hpm.faults_per_sec, stock.faults_per_sec);
}

TEST(SmpRun, EachFeatureChangesTheCurve) {
  const SmpRunResult full = harness::run_smp(quick(SmpVariant::kLinuxToday, 16));

  SmpRunConfig no_pcp = quick(SmpVariant::kLinuxToday, 16);
  no_pcp.pcp = false;
  SmpRunConfig no_shards = quick(SmpVariant::kLinuxToday, 16);
  no_shards.sharded_pt_locks = false;
  SmpRunConfig no_batch = quick(SmpVariant::kLinuxToday, 16);
  no_batch.batched_shootdowns = false;

  // Contention is executed, not costed: turning each feature off
  // re-exposes the lock it hides, so every ablated kernel is strictly
  // slower than the full one — a cost formula in f(cores) could not
  // respond to the switches.
  const SmpRunResult a = harness::run_smp(no_pcp);
  const SmpRunResult b = harness::run_smp(no_shards);
  const SmpRunResult c = harness::run_smp(no_batch);
  EXPECT_LT(a.faults_per_sec, full.faults_per_sec);
  EXPECT_LT(b.faults_per_sec, full.faults_per_sec);
  EXPECT_LT(c.faults_per_sec, full.faults_per_sec);
  // And each ablation hurts through its own lock, not a shared fudge.
  EXPECT_GT(a.smp.zone_lock_wait, full.smp.zone_lock_wait);
  EXPECT_GT(b.smp.pt_lock_wait, full.smp.pt_lock_wait);
  EXPECT_GT(c.smp.shootdown_ipis, full.smp.shootdown_ipis);
}

TEST(SmpRun, PcpListsBatchZoneLockTraffic) {
  const SmpRunResult on = harness::run_smp(quick(SmpVariant::kLinuxToday, 4));
  // The lists front most order-0 allocations: hits dominate the refills
  // that actually take the zone lock.
  EXPECT_GT(on.smp.pcp_hits, 0u);
  EXPECT_GT(on.smp.pcp_misses, 0u);
  EXPECT_GT(on.smp.pcp_hits, on.smp.pcp_misses);
  EXPECT_GE(on.smp.pcp_refilled_frames, on.smp.pcp_misses);

  SmpRunConfig off_cfg = quick(SmpVariant::kLinuxToday, 4);
  off_cfg.pcp = false;
  const SmpRunResult off = harness::run_smp(off_cfg);
  EXPECT_EQ(off.smp.pcp_hits, 0u);
  EXPECT_EQ(off.smp.pcp_refilled_frames, 0u);
}

TEST(SmpRun, LockWaitTracepointsFeedFlightRecorder) {
  SmpRunConfig cfg = quick(SmpVariant::kLinux1999, 8);
  cfg.trace.categories = static_cast<std::uint32_t>(trace::Category::kLock);
  const SmpRunResult r = harness::run_smp(cfg);
  ASSERT_FALSE(r.events.empty());
  bool saw_pt = false, saw_zone = false;
  for (const trace::Event& e : r.events) {
    EXPECT_EQ(e.cat, trace::Category::kLock);
    if (e.name() == "lock.pt") {
      saw_pt = true;
      // Complete-events spanning the wait, pinned to the waiting core.
      EXPECT_GT(e.dur, 0u);
      EXPECT_GE(e.core, 0);
    }
    saw_zone = saw_zone || e.name() == "lock.zone";
  }
  EXPECT_TRUE(saw_pt);
  EXPECT_TRUE(saw_zone);
}

// --- batch determinism ------------------------------------------------------

bool same_result(const SmpRunResult& a, const SmpRunResult& b) {
  return a.cores == b.cores && a.pages_touched == b.pages_touched &&
         std::memcmp(&a.seconds, &b.seconds, sizeof(double)) == 0 &&
         std::memcmp(&a.faults_per_sec, &b.faults_per_sec, sizeof(double)) == 0 &&
         std::memcmp(&a.smp, &b.smp, sizeof(mm::SmpStats)) == 0 &&
         a.events_fired == b.events_fired;
}

TEST(SmpBatch, GridIsByteIdenticalForAnyJobs) {
  std::vector<SmpRunConfig> grid;
  for (const SmpVariant v :
       {SmpVariant::kLinux1999, SmpVariant::kLinuxToday, SmpVariant::kHpmmap}) {
    for (const std::uint32_t cores : {1u, 4u, 16u}) {
      grid.push_back(quick(v, cores));
    }
  }
  harness::set_default_jobs(1);
  const std::vector<SmpRunResult> serial = harness::run_smp_batch(grid);
  harness::set_default_jobs(3);
  const std::vector<SmpRunResult> parallel = harness::run_smp_batch(grid);
  harness::set_default_jobs(0);

  ASSERT_EQ(serial.size(), grid.size());
  ASSERT_EQ(parallel.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_TRUE(same_result(serial[i], parallel[i])) << "config " << i << " diverged";
  }
}

} // namespace
} // namespace hpmmap
