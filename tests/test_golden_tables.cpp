// Golden regression for the paper-table pipeline: regenerate the Figure
// 2 (THP) and Figure 3 (HugeTLBfs) fault-cost tables at reduced scale
// and compare byte-for-byte against checked-in goldens. Any drift in the
// fault paths, the RNG draw order, the stats pipeline, or the table
// formatter shows up here as a diff.
//
// Refresh after an intentional behaviour change with:
//   HPMMAP_UPDATE_GOLDEN=1 ./test_golden_tables
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace hpmmap {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(HPMMAP_GOLDEN_DIR) + "/" + name;
}

bool update_mode() { return std::getenv("HPMMAP_UPDATE_GOLDEN") != nullptr; }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return in ? ss.str() : std::string{};
}

/// Regenerate one fault-cost table exactly the way the bench/ drivers
/// do (same seed, same scales, same row layout), at quick scale.
std::string fault_table(harness::Manager mgr, bool include_merge_row) {
  harness::Table table({"Added Load", "Fault Size", "Total Faults", "Avg Cycles",
                        "Stdev Cycles"});
  for (const bool loaded : {false, true}) {
    harness::SingleNodeRunConfig cfg;
    cfg.app = "miniMD";
    cfg.manager = mgr;
    cfg.commodity = loaded ? workloads::profile_a(8) : workloads::no_competition();
    cfg.app_cores = 8;
    cfg.seed = 2014;
    cfg.footprint_scale = 0.25;
    cfg.duration_scale = 0.15;
    const harness::RunResult r = harness::run_single_node(cfg);
    const auto row = [&](mm::FaultKind kind, const char* label) {
      const auto& k = r.by_kind(kind);
      table.add_row({loaded ? "Yes" : "No", label, harness::with_commas(k.total_faults),
                     harness::with_commas(static_cast<std::uint64_t>(k.avg_cycles)),
                     harness::with_commas(static_cast<std::uint64_t>(k.stdev_cycles))});
    };
    row(mm::FaultKind::kSmall, "Small");
    row(mm::FaultKind::kLarge, "Large");
    if (include_merge_row) {
      row(mm::FaultKind::kMergeFollower, "Merge");
    }
  }
  return table.to_string();
}

void check_golden(const std::string& name, const std::string& produced) {
  const std::string path = golden_path(name);
  if (update_mode()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << produced;
    return;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << path << " missing — regenerate with HPMMAP_UPDATE_GOLDEN=1";
  EXPECT_EQ(expected, produced)
      << "table drifted from golden " << path
      << " (HPMMAP_UPDATE_GOLDEN=1 refreshes it if the change is intended)";
}

TEST(GoldenTables, Fig2ThpFaultTable) {
  check_golden("fig2_thp_fault_table.txt",
               fault_table(harness::Manager::kThp, /*include_merge_row=*/true));
}

TEST(GoldenTables, Fig3HugetlbfsFaultTable) {
  check_golden("fig3_hugetlbfs_fault_table.txt",
               fault_table(harness::Manager::kHugetlbfs, /*include_merge_row=*/false));
}

TEST(GoldenTables, RegenerationIsByteIdentical) {
  // The guarantee the goldens rest on: two generations in one process
  // are byte-identical (no hidden global state leaks between runs).
  const std::string a = fault_table(harness::Manager::kThp, true);
  const std::string b = fault_table(harness::Manager::kThp, true);
  EXPECT_EQ(a, b);
}

} // namespace
} // namespace hpmmap
