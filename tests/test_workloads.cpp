// Tests: application profiles, the kernel-build interference generator,
// and the MPI job driver.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "os/node.hpp"
#include "sim/engine.hpp"
#include "workloads/kernel_build.hpp"
#include "workloads/mpi_app.hpp"
#include "workloads/profiles.hpp"

namespace hpmmap::workloads {
namespace {

// --- profiles ------------------------------------------------------------------

class ProfileSanity : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfileSanity, FieldsAreWellFormed) {
  const AppProfile p = profile_by_name(GetParam(), 2.3e9);
  EXPECT_EQ(p.name, GetParam());
  EXPECT_GT(p.bytes_per_rank, 512 * MiB);   // weak-scaled HPC footprint
  EXPECT_LE(p.bytes_per_rank, 1500 * MiB);  // 8 ranks + misc fit 12 GB pools
  EXPECT_GT(p.iterations, 50u);
  EXPECT_GT(p.cpu_per_iter, 0u);
  EXPECT_GT(p.access_rate, 0.0);
  EXPECT_LT(p.access_rate, 1.0);
  EXPECT_GT(p.locality, 0.9);
  EXPECT_LT(p.locality, 1.0);
  EXPECT_GE(p.allreduces_per_iter, 1u);
  // 8 ranks of data plus misc must fit the 12 GB reservation (§IV).
  EXPECT_LE(8 * (p.bytes_per_rank + p.misc_bytes), 12 * GiB);
}

INSTANTIATE_TEST_SUITE_P(Apps, ProfileSanity,
                         ::testing::Values("HPCCG", "CoMD", "miniMD", "miniFE", "LAMMPS"));

TEST(Profiles, CommodityProfilesMatchPaper) {
  EXPECT_EQ(profile_a(4).jobs_per_build, 8u);
  EXPECT_EQ(profile_a(8).jobs_per_build, 4u); // throttled at 8 app cores
  EXPECT_EQ(profile_a(4).builds, 1u);
  EXPECT_EQ(profile_b(4).builds, 2u);
  EXPECT_EQ(profile_c().jobs_per_build, 4u);
  EXPECT_EQ(profile_d().builds, 2u);
  EXPECT_EQ(no_competition().builds, 0u);
}

TEST(Profiles, UnknownAppThrowsListingKnownNames) {
  // The CLI leans on this message: a typo'd --app must name the app and
  // every accepted spelling instead of aborting mid-run.
  try {
    (void)profile_by_name("NotAnApp", 2.3e9);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("NotAnApp"), std::string::npos);
    for (const char* known : {"HPCCG", "CoMD", "miniMD", "miniFE", "LAMMPS"}) {
      EXPECT_NE(what.find(known), std::string::npos) << known;
    }
  }
}

TEST(Profiles, TryLookupReturnsEmptyInsteadOfThrowing) {
  EXPECT_FALSE(try_profile_by_name("notanapp", 2.3e9).has_value());
  EXPECT_FALSE(try_profile_by_name("hpccg", 2.3e9).has_value()); // names are case-sensitive
  ASSERT_TRUE(try_profile_by_name("HPCCG", 2.3e9).has_value());
  EXPECT_EQ(try_profile_by_name("HPCCG", 2.3e9)->name, "HPCCG");
}

// --- kernel build ----------------------------------------------------------------

os::NodeConfig build_node_config() {
  os::NodeConfig cfg;
  cfg.machine = hw::dell_r415();
  cfg.machine.ram_bytes = 4 * GiB;
  cfg.seed = 17;
  cfg.aged_boot = false;
  return cfg;
}

TEST(KernelBuild, ConsumesMemoryWhileRunning) {
  sim::Engine engine;
  os::Node node(engine, build_node_config());
  const std::uint64_t free_before =
      node.memory().free_bytes(0) + node.memory().free_bytes(1);
  KernelBuildConfig bc;
  bc.jobs = 4;
  KernelBuild build(node, bc, Rng(3));
  build.start();
  engine.run_until(node.spec().cycles(2.0));
  EXPECT_LT(node.memory().free_bytes(0) + node.memory().free_bytes(1), free_before);
  EXPECT_GT(build.stats().bytes_churned, 0u);
  build.stop();
}

TEST(KernelBuild, StopReleasesWorkingSets) {
  sim::Engine engine;
  os::Node node(engine, build_node_config());
  KernelBuildConfig bc;
  bc.jobs = 4;
  bc.cache_bytes_per_job = 0; // isolate the anon accounting
  KernelBuild build(node, bc, Rng(3));
  const std::uint64_t free_before =
      node.memory().free_bytes(0) + node.memory().free_bytes(1);
  build.start();
  engine.run_until(node.spec().cycles(1.0));
  build.stop();
  EXPECT_EQ(node.memory().free_bytes(0) + node.memory().free_bytes(1), free_before);
}

TEST(KernelBuild, JobsCompleteOverTime) {
  sim::Engine engine;
  os::Node node(engine, build_node_config());
  KernelBuildConfig bc;
  bc.jobs = 8;
  KernelBuild build(node, bc, Rng(3));
  build.start();
  engine.run_until(node.spec().cycles(10.0));
  EXPECT_GT(build.stats().jobs_completed, 8u); // slots respawn
  build.stop();
}

TEST(KernelBuild, GeneratesFragmentation) {
  sim::Engine engine;
  os::Node node(engine, build_node_config());
  const double frag_before = node.memory().buddy(0).fragmentation();
  KernelBuildConfig bc;
  bc.jobs = 8;
  KernelBuild build(node, bc, Rng(3));
  build.start();
  engine.run_until(node.spec().cycles(6.0));
  const double frag_during =
      std::max(node.memory().buddy(0).fragmentation(), node.memory().buddy(1).fragmentation());
  EXPECT_GT(frag_during, frag_before);
  build.stop();
}

TEST(KernelBuild, AddsSchedulerLoad) {
  sim::Engine engine;
  os::Node node(engine, build_node_config());
  KernelBuildConfig bc;
  bc.jobs = 8;
  KernelBuild build(node, bc, Rng(3));
  build.start();
  engine.run_until(node.spec().cycles(1.0));
  EXPECT_GT(node.scheduler().total_weight(), 2.0); // 8 jobs x 0.6 duty
  build.stop();
  EXPECT_NEAR(node.scheduler().total_weight(), 0.0, 1e-9);
}

TEST(KernelBuild, BacksOffUnderMemoryPressure) {
  sim::Engine engine;
  os::NodeConfig cfg = build_node_config();
  cfg.machine.ram_bytes = 2 * GiB; // tiny machine
  os::Node node(engine, cfg);
  // Pin nearly everything so the builds face instant pressure.
  std::vector<Addr> pins;
  for (ZoneId z = 0; z < 2; ++z) {
    while (!node.memory().below_low_watermark(z)) {
      auto a = node.memory().buddy(z).alloc(10);
      if (!a.has_value()) {
        break;
      }
      pins.push_back(a->addr);
    }
  }
  KernelBuildConfig bc;
  bc.jobs = 8;
  KernelBuild build(node, bc, Rng(3));
  build.start();
  engine.run_until(node.spec().cycles(3.0));
  EXPECT_GT(build.stats().alloc_failures, 0u); // backed off, did not abort
  build.stop();
}

// --- MPI job ---------------------------------------------------------------------

MpiJobConfig tiny_job(os::Node& node, os::MmPolicy policy, std::uint32_t ranks) {
  MpiJobConfig jc;
  jc.app = hpccg(node.spec().clock_hz);
  jc.app.bytes_per_rank = 64 * MiB;
  jc.app.misc_bytes = 4 * MiB;
  jc.app.iter_alloc_bytes = 512 * KiB;
  jc.app.iterations = 5;
  jc.app.cpu_per_iter = node.spec().cycles(0.01);
  jc.policy = policy;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    RankPlacement p;
    p.node = &node;
    p.core = static_cast<std::int32_t>(r);
    p.home_zone = r % 2;
    p.zone_policy = mm::AddressSpace::ZonePolicy::kInterleave;
    jc.ranks.push_back(p);
  }
  return jc;
}

class MpiJobPolicy : public ::testing::TestWithParam<os::MmPolicy> {};

TEST_P(MpiJobPolicy, RunsToCompletion) {
  sim::Engine engine;
  os::NodeConfig cfg;
  cfg.machine = hw::dell_r415();
  cfg.machine.ram_bytes = 4 * GiB;
  cfg.seed = 23;
  cfg.thp_enabled = GetParam() != os::MmPolicy::kHugetlbfs;
  if (GetParam() == os::MmPolicy::kHugetlbfs) {
    cfg.hugetlb_pool_per_zone = 512 * MiB;
  }
  if (GetParam() == os::MmPolicy::kHpmmap) {
    core::ModuleConfig mod;
    mod.offline_bytes_per_zone = 512 * MiB;
    cfg.hpmmap = mod;
  }
  os::Node node(engine, cfg);
  MpiJob job(engine, tiny_job(node, GetParam(), 4));
  bool completed = false;
  job.start([&] {
    completed = true;
    engine.stop();
  });
  engine.run();
  ASSERT_TRUE(completed);
  EXPECT_TRUE(job.done());
  EXPECT_GT(job.runtime_seconds(), 0.0);
  // Weak bound: five 10ms iterations plus setup should be < 5 s.
  EXPECT_LT(job.runtime_seconds(), 5.0);
}

INSTANTIATE_TEST_SUITE_P(Policies, MpiJobPolicy,
                         ::testing::Values(os::MmPolicy::kLinuxThp, os::MmPolicy::kLinuxPlain,
                                           os::MmPolicy::kHugetlbfs, os::MmPolicy::kHpmmap));

TEST(MpiJob, HpmmapRanksTakeAlmostNoFaults) {
  sim::Engine engine;
  os::NodeConfig cfg;
  cfg.machine = hw::dell_r415();
  cfg.machine.ram_bytes = 4 * GiB;
  cfg.seed = 23;
  core::ModuleConfig mod;
  mod.offline_bytes_per_zone = 512 * MiB;
  cfg.hpmmap = mod;
  os::Node node(engine, cfg);
  MpiJob job(engine, tiny_job(node, os::MmPolicy::kHpmmap, 2));
  job.start([&] { engine.stop(); });
  engine.run();
  const mm::FaultStats faults = job.aggregate_faults();
  // Only the Linux-managed stack remains; §III-A: "almost no exposure".
  EXPECT_LT(faults.count[0], 2048u);
  EXPECT_EQ(faults.count[1], 0u);
  // The module saw the ranks' mmap/brk traffic.
  EXPECT_GT(node.hpmmap_module()->stats().syscalls_interposed, 0u);
  EXPECT_EQ(node.hpmmap_module()->stats().spurious_faults, 0u);
}

TEST(MpiJob, LinuxRanksFaultTheirFootprint) {
  sim::Engine engine;
  os::NodeConfig cfg;
  cfg.machine = hw::dell_r415();
  cfg.machine.ram_bytes = 4 * GiB;
  cfg.seed = 23;
  os::Node node(engine, cfg);
  MpiJob job(engine, tiny_job(node, os::MmPolicy::kLinuxThp, 2));
  job.start([&] { engine.stop(); });
  engine.run();
  const mm::FaultStats faults = job.aggregate_faults();
  const std::uint64_t touched =
      faults.count[0] * 4 * KiB + faults.count[1] * 2 * MiB + faults.count[2] * 4 * KiB;
  // Faulted bytes roughly cover 2 ranks' data+misc+stack (+ temp churn).
  EXPECT_GT(touched, 2 * (64 + 4) * MiB);
}

TEST(MpiJob, DeterministicAcrossIdenticalRuns) {
  const auto run_once = [] {
    sim::Engine engine;
    os::NodeConfig cfg;
    cfg.machine = hw::dell_r415();
    cfg.machine.ram_bytes = 4 * GiB;
    cfg.seed = 99;
    cfg.aged_boot = true;
    os::Node node(engine, cfg);
    MpiJob job(engine, tiny_job(node, os::MmPolicy::kLinuxThp, 2));
    job.start([&] { engine.stop(); });
    engine.run();
    return job.runtime_cycles();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(MpiJob, TeardownReturnsAllMemory) {
  sim::Engine engine;
  os::NodeConfig cfg;
  cfg.machine = hw::dell_r415();
  cfg.machine.ram_bytes = 4 * GiB;
  cfg.seed = 23;
  cfg.aged_boot = false;
  os::Node node(engine, cfg);
  const std::uint64_t free_before =
      node.memory().free_bytes(0) + node.memory().free_bytes(1);
  MpiJob job(engine, tiny_job(node, os::MmPolicy::kLinuxThp, 2));
  job.start([&] { engine.stop(); });
  engine.run();
  EXPECT_EQ(node.memory().free_bytes(0) + node.memory().free_bytes(1), free_before);
}

TEST(MpiJob, SharedMemoryCommScalesWithRanks) {
  const CommModel comm = shared_memory_comm(2.3e9);
  const AppProfile app = hpccg(2.3e9);
  EXPECT_GT(comm(app, 8), comm(app, 2));
}

} // namespace
} // namespace hpmmap::workloads
