// Unit tests: tracepoint subsystem — flight-recorder ring semantics,
// category gating, clock hook, Chrome-JSON golden output, CSV
// round-trip, metric percentiles, rate-limited logging, and the
// harness-level guarantee that tracing never changes simulation results.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/log.hpp"
#include "harness/experiment.hpp"
#include "sim/engine.hpp"
#include "trace/export.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace hpmmap {
namespace {

// Tracing is process-global; every test leaves it disabled and empty so
// ordering between tests cannot matter.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::disable_all();
    trace::recorder().set_capacity(trace::FlightRecorder::kDefaultCapacity);
  }
  void TearDown() override {
    trace::disable_all();
    trace::recorder().set_capacity(trace::FlightRecorder::kDefaultCapacity);
    trace::metrics().reset();
  }
};

trace::Event make_event(Cycles ts, const char* event_name, trace::Category cat) {
  trace::Event e;
  e.ts = ts;
  e.event_name = event_name;
  e.cat = cat;
  return e;
}

// --- category gating -------------------------------------------------------

TEST_F(TraceTest, DisabledByDefaultAndMaskGates) {
  EXPECT_FALSE(trace::on(trace::Category::kFault));
  trace::enable(static_cast<std::uint32_t>(trace::Category::kFault) |
                static_cast<std::uint32_t>(trace::Category::kThp));
  EXPECT_TRUE(trace::on(trace::Category::kFault));
  EXPECT_TRUE(trace::on(trace::Category::kThp));
  EXPECT_FALSE(trace::on(trace::Category::kBuddy));
  trace::disable_all();
  EXPECT_FALSE(trace::on(trace::Category::kFault));
}

TEST_F(TraceTest, EmitWhileDisabledIsNoOp) {
  trace::recorder().clear();
  trace::instant(trace::Category::kFault, "x", 1, 0);
  trace::complete(trace::Category::kFault, "y", 0, 10, 1, 0);
  trace::counter(trace::Category::kFault, "z", 1.0);
  EXPECT_EQ(trace::recorder().size(), 0u);
  EXPECT_EQ(trace::recorder().recorded(), 0u);
}

TEST_F(TraceTest, ParseCategories) {
  EXPECT_EQ(trace::parse_categories("all"), trace::kAllCategories);
  EXPECT_EQ(trace::parse_categories("none"), 0u);
  EXPECT_EQ(trace::parse_categories("fault"),
            static_cast<std::uint32_t>(trace::Category::kFault));
  EXPECT_EQ(trace::parse_categories("fault,thp,net"),
            static_cast<std::uint32_t>(trace::Category::kFault) |
                static_cast<std::uint32_t>(trace::Category::kThp) |
                static_cast<std::uint32_t>(trace::Category::kNet));
  EXPECT_FALSE(trace::parse_categories("fault,bogus").has_value());
}

// --- flight recorder -------------------------------------------------------

TEST_F(TraceTest, RingWrapsOverwritingOldest) {
  trace::FlightRecorder ring(4);
  for (Cycles t = 1; t <= 6; ++t) {
    ring.push(make_event(t, "e", trace::Category::kFault));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  const std::vector<trace::Event> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest two (ts 1, 2) were overwritten; snapshot is oldest-first.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].ts, i + 3);
  }
}

TEST_F(TraceTest, SetCapacityClearsCounters) {
  trace::FlightRecorder ring(2);
  ring.push(make_event(1, "e", trace::Category::kFault));
  ring.push(make_event(2, "e", trace::Category::kFault));
  ring.push(make_event(3, "e", trace::Category::kFault));
  EXPECT_EQ(ring.dropped(), 1u);
  ring.set_capacity(8);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST_F(TraceTest, ZeroCapacityClampsToOne) {
  trace::FlightRecorder ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.push(make_event(1, "a", trace::Category::kFault));
  ring.push(make_event(2, "b", trace::Category::kFault));
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.snapshot()[0].ts, 2u);
}

TEST_F(TraceTest, ArgCountClampsToMax) {
  trace::enable(trace::kAllCategories);
  trace::recorder().clear();
  trace::instant(trace::Category::kApp, "many", 1, 0,
                 {trace::Arg::u64("a", 1), trace::Arg::u64("b", 2), trace::Arg::u64("c", 3),
                  trace::Arg::u64("d", 4), trace::Arg::u64("e", 5)});
  const auto snap = trace::recorder().snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].arg_count, trace::Event::kMaxArgs);
}

// --- clock hook ------------------------------------------------------------

TEST_F(TraceTest, EngineRegistersAsClock) {
  sim::Engine engine;
  trace::enable(trace::kAllCategories);
  trace::recorder().clear();
  engine.schedule(1000, [] { trace::instant(trace::Category::kApp, "tick", 0, -1); });
  engine.run();
  const auto snap = trace::recorder().snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].ts, 1000u);
}

TEST_F(TraceTest, DyingEngineUnregistersClock) {
  { sim::Engine engine; }
  EXPECT_EQ(trace::clock_now(), 0u);
}

// --- Chrome trace-event JSON ----------------------------------------------

TEST_F(TraceTest, ChromeJsonGolden) {
  std::vector<trace::Event> events;
  trace::Event fault;
  fault.ts = 2300;
  fault.dur = 230;
  fault.event_name = "fault";
  fault.cat = trace::Category::kFault;
  fault.phase = trace::Phase::kComplete;
  fault.pid = 7;
  fault.core = 3;
  fault.arg_count = 2;
  fault.args[0] = trace::Arg::str("kind", "Small");
  fault.args[1] = trace::Arg::u64("lock_wait", 5);
  events.push_back(fault);

  trace::Event spawn;
  spawn.ts = 4600;
  spawn.event_name = "proc.spawn";
  spawn.cat = trace::Category::kApp;
  spawn.phase = trace::Phase::kInstant;
  spawn.pid = 9;
  events.push_back(spawn);

  trace::ExportOptions opts;
  opts.clock_hz = 2.3e9; // 2300 cycles = 1 us
  const std::string json = trace::chrome_json(events, opts);
  const std::string expected =
      "[\n"
      "{\"name\":\"fault\",\"cat\":\"fault\",\"ph\":\"X\",\"ts\":1.000,\"pid\":7,\"tid\":3,"
      "\"dur\":0.100,\"args\":{\"kind\":\"Small\",\"lock_wait\":5}},\n"
      "{\"name\":\"proc.spawn\",\"cat\":\"app\",\"ph\":\"i\",\"ts\":2.000,\"pid\":9,"
      "\"tid\":-1,\"s\":\"t\",\"args\":{}}\n"
      "]\n";
  EXPECT_EQ(json, expected);
}

TEST_F(TraceTest, ChromeJsonNormalizesToT0) {
  std::vector<trace::Event> events{make_event(5000, "late", trace::Category::kApp),
                                   make_event(100, "early", trace::Category::kApp)};
  trace::ExportOptions opts;
  opts.clock_hz = 1e6; // 1 cycle = 1 us
  opts.t0 = 1000;
  const std::string json = trace::chrome_json(events, opts);
  // 5000 - 1000 = 4000 us; pre-t0 events clamp to zero.
  EXPECT_NE(json.find("\"ts\":4000.000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
}

// --- CSV round trip --------------------------------------------------------

TEST_F(TraceTest, CsvRoundTripIsFixpoint) {
  std::vector<trace::Event> events;
  trace::Event e = make_event(123456789, "mm.compaction", trace::Category::kBuddy);
  e.dur = 42;
  e.phase = trace::Phase::kComplete;
  e.pid = 1001;
  e.core = 2;
  e.arg_count = 3;
  e.args[0] = trace::Arg::u64("zone", 1);
  e.args[1] = trace::Arg::f64("ratio", 0.5);
  e.args[2] = trace::Arg::str("result", "ok");
  events.push_back(e);
  events.push_back(make_event(999, "buddy.split", trace::Category::kBuddy));

  const std::string first = trace::csv(events);
  const std::vector<trace::CsvEvent> parsed = trace::parse_csv(first);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].ts, 123456789u);
  EXPECT_EQ(parsed[0].dur, 42u);
  EXPECT_EQ(parsed[0].phase, 'X');
  EXPECT_EQ(parsed[0].category, "buddy");
  EXPECT_EQ(parsed[0].name, "mm.compaction");
  EXPECT_EQ(parsed[0].pid, 1001u);
  EXPECT_EQ(parsed[0].core, 2);
  ASSERT_EQ(parsed[0].args.size(), 3u);
  EXPECT_EQ(parsed[0].args[0].name, "zone");
  EXPECT_EQ(parsed[0].args[0].kind, 'u');
  EXPECT_EQ(parsed[0].args[0].value, "1");
  EXPECT_EQ(parsed[0].args[1].kind, 'f');
  EXPECT_EQ(parsed[0].args[2].value, "ok");

  // Serialize -> parse -> serialize is a fixpoint.
  const std::string second = trace::csv(parsed);
  EXPECT_EQ(second, first);
  EXPECT_EQ(trace::csv(trace::parse_csv(second)), second);
}

// --- metrics ---------------------------------------------------------------

TEST_F(TraceTest, MetricCountersAndHistograms) {
  trace::metrics().reset();
  trace::metrics().counter("fault.count") += 3;
  trace::metrics().counter("fault.count") += 2;
  for (int i = 1; i <= 100; ++i) {
    trace::metrics().histogram("fault.cycles.small").add(static_cast<double>(i));
  }
  EXPECT_EQ(trace::metrics().counters().at("fault.count"), 5u);
  const trace::Histogram& h = trace::metrics().histograms().at("fault.cycles.small");
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_NEAR(h.p50(), 50.0, 3.0);
  EXPECT_NEAR(h.p95(), 95.0, 3.0);
  EXPECT_NEAR(h.p99(), 99.0, 3.0);

  const std::string report = trace::metrics().report();
  EXPECT_NE(report.find("fault.count"), std::string::npos);
  EXPECT_NE(report.find("fault.cycles.small"), std::string::npos);

  trace::metrics().reset();
  EXPECT_TRUE(trace::metrics().counters().empty());
}

// --- rate-limited logging --------------------------------------------------

TEST_F(TraceTest, LogLimiterBudgets) {
  LogLimiter lim(3);
  EXPECT_TRUE(lim.allow());
  EXPECT_TRUE(lim.allow());
  EXPECT_TRUE(lim.allow());
  EXPECT_FALSE(lim.allow());
  EXPECT_TRUE(lim.just_saturated());
  EXPECT_FALSE(lim.allow());
  EXPECT_FALSE(lim.just_saturated());
  EXPECT_EQ(lim.suppressed(), 2u);
  EXPECT_EQ(lim.calls(), 5u);
  lim.reset();
  EXPECT_TRUE(lim.allow());
  EXPECT_EQ(lim.suppressed(), 0u);
}

// --- end-to-end: tracing must not perturb the simulation -------------------

TEST_F(TraceTest, TracingDoesNotChangeResults) {
  harness::SingleNodeRunConfig cfg;
  cfg.app = "miniMD";
  cfg.manager = harness::Manager::kThp;
  cfg.commodity = workloads::profile_a(2);
  cfg.app_cores = 2;
  cfg.seed = 31;
  cfg.footprint_scale = 0.08;
  cfg.duration_scale = 0.05;

  const harness::RunResult off = harness::run_single_node(cfg);
  cfg.trace.categories = trace::kAllCategories;
  const harness::RunResult on = harness::run_single_node(cfg);

  EXPECT_DOUBLE_EQ(on.runtime_seconds, off.runtime_seconds);
  for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
    EXPECT_EQ(on.faults.count[k], off.faults.count[k]) << "kind " << k;
    EXPECT_EQ(on.faults.total_cycles[k], off.faults.total_cycles[k]) << "kind " << k;
  }
  EXPECT_EQ(on.thp_merges, off.thp_merges);
  EXPECT_EQ(on.hpmmap_spurious_faults, off.hpmmap_spurious_faults);
  EXPECT_FALSE(on.events.empty());
  EXPECT_TRUE(off.events.empty());
}

TEST_F(TraceTest, TracedRunExportsValidStreams) {
  harness::SingleNodeRunConfig cfg;
  cfg.app = "HPCCG";
  cfg.manager = harness::Manager::kHpmmap;
  cfg.commodity = workloads::no_competition();
  cfg.app_cores = 2;
  cfg.seed = 5;
  cfg.trace.categories = trace::kAllCategories;
  cfg.footprint_scale = 0.08;
  cfg.duration_scale = 0.05;
  const harness::RunResult r = harness::run_single_node(cfg);
  ASSERT_FALSE(r.events.empty());

  // The JSON stream is a bracketed array with the mandatory keys.
  const std::string json = trace::chrome_json(r.events);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":"), std::string::npos);

  // Every retained event survives the CSV round trip.
  const std::vector<trace::CsvEvent> parsed = trace::parse_csv(trace::csv(r.events));
  EXPECT_EQ(parsed.size(), r.events.size());

  // The module path emitted its registration and backing events.
  bool saw_register = false;
  for (const trace::Event& e : r.events) {
    if (e.name() == "hpmmap.register") {
      saw_register = true;
    }
  }
  EXPECT_TRUE(saw_register);
}

} // namespace
} // namespace hpmmap
