// The fault injector: deterministic schedules fire at exactly the
// planned call indices, probabilistic schedules replay under the same
// seed, the --inject spec parser round-trips, and every injection point
// degrades gracefully inside a full harness run — fallback counters move,
// nothing crashes, and the auditor stays clean throughout.
#include <gtest/gtest.h>

#include <vector>

#include "harness/experiment.hpp"
#include "verify/audit.hpp"
#include "verify/fault_inject.hpp"

namespace hpmmap::verify {
namespace {

/// Every test arms the process-global injector; always disarm on exit so
/// a failing assertion cannot leak an armed plan into the next test.
class InjectionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    injector().set_on_fire(nullptr);
    injector().disarm();
  }
};

harness::SingleNodeRunConfig quick_thp() {
  harness::SingleNodeRunConfig cfg;
  cfg.app = "HPCCG";
  cfg.manager = harness::Manager::kThp;
  cfg.commodity = workloads::profile_a(2);
  cfg.app_cores = 2;
  cfg.seed = 7;
  cfg.footprint_scale = 0.08;
  cfg.duration_scale = 0.05;
  cfg.verify.audit = true;
  return cfg;
}

TEST_F(InjectionTest, DeterministicScheduleFiresAtExactCalls) {
  InjectionPlan plan;
  plan[InjectPoint::kBuddyAlloc] = PointPlan{/*first=*/3, /*period=*/2, /*count=*/3};
  injector().arm(plan, 1);
  std::vector<std::uint64_t> fired_at;
  for (std::uint64_t call = 1; call <= 12; ++call) {
    if (injector().should_fail(InjectPoint::kBuddyAlloc)) {
      fired_at.push_back(call);
    }
  }
  EXPECT_EQ(fired_at, (std::vector<std::uint64_t>{3, 5, 7})); // count caps at 3
  EXPECT_EQ(injector().stats(InjectPoint::kBuddyAlloc).calls, 12u);
  EXPECT_EQ(injector().stats(InjectPoint::kBuddyAlloc).fired, 3u);
  EXPECT_EQ(injector().total_fired(), 3u);
}

TEST_F(InjectionTest, SingleShotFiresOnce) {
  InjectionPlan plan;
  plan[InjectPoint::kHugetlbAlloc] = PointPlan{/*first=*/1};
  injector().arm(plan, 1);
  EXPECT_TRUE(injector().should_fail(InjectPoint::kHugetlbAlloc));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector().should_fail(InjectPoint::kHugetlbAlloc));
  }
}

TEST_F(InjectionTest, PointsAreIndependent) {
  InjectionPlan plan;
  plan[InjectPoint::kThpHugeAlloc] = PointPlan{/*first=*/2};
  injector().arm(plan, 1);
  EXPECT_FALSE(injector().should_fail(InjectPoint::kBuddyAlloc)); // not planned
  EXPECT_FALSE(injector().should_fail(InjectPoint::kThpHugeAlloc)); // call 1
  EXPECT_TRUE(injector().should_fail(InjectPoint::kThpHugeAlloc));  // call 2
  EXPECT_EQ(injector().stats(InjectPoint::kBuddyAlloc).fired, 0u);
}

TEST_F(InjectionTest, DisarmedInjectorNeverFires) {
  InjectionPlan plan;
  plan[InjectPoint::kBuddyAlloc] = PointPlan{/*first=*/1, /*period=*/1, /*count=*/1000};
  injector().arm(plan, 1);
  injector().disarm();
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(injector().should_fail(InjectPoint::kBuddyAlloc));
  }
  EXPECT_EQ(injector().stats(InjectPoint::kBuddyAlloc).calls, 0u); // not even counted
}

TEST_F(InjectionTest, ProbabilisticModeReplaysUnderSameSeed) {
  InjectionPlan plan;
  plan[InjectPoint::kNetDelay] = PointPlan{0, 0, /*count=*/1000, /*probability=*/0.3};
  const auto pattern = [&](std::uint64_t seed) {
    injector().arm(plan, seed);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(injector().should_fail(InjectPoint::kNetDelay));
    }
    return fires;
  };
  const auto a = pattern(42), b = pattern(42), c = pattern(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c); // different seed, different stream (w.h.p.)
  const auto fired = static_cast<double>(injector().stats(InjectPoint::kNetDelay).fired);
  EXPECT_GT(fired, 200 * 0.3 * 0.5); // roughly the asked-for rate
  EXPECT_LT(fired, 200 * 0.3 * 1.5);
}

TEST_F(InjectionTest, OnFireHookSeesEveryFire) {
  InjectionPlan plan;
  plan[InjectPoint::kDirectReclaim] = PointPlan{/*first=*/2, /*period=*/3, /*count=*/4};
  injector().arm(plan, 1);
  std::vector<InjectPoint> seen;
  injector().set_on_fire([&](InjectPoint p) { seen.push_back(p); });
  for (int i = 0; i < 20; ++i) {
    (void)injector().should_fail(InjectPoint::kDirectReclaim);
  }
  EXPECT_EQ(seen.size(), 4u);
  for (const InjectPoint p : seen) {
    EXPECT_EQ(p, InjectPoint::kDirectReclaim);
  }
}

// --- spec parser ---------------------------------------------------------

TEST(InjectSpec, ParsesDeterministicEntry) {
  const auto plan = parse_inject_spec("thp_huge_alloc@100+50x20");
  ASSERT_TRUE(plan.has_value());
  const PointPlan& p = (*plan)[InjectPoint::kThpHugeAlloc];
  EXPECT_EQ(p.first, 100u);
  EXPECT_EQ(p.period, 50u);
  EXPECT_EQ(p.count, 20u);
  EXPECT_TRUE(p.enabled());
  EXPECT_FALSE((*plan)[InjectPoint::kBuddyAlloc].enabled());
}

TEST(InjectSpec, ParsesProbabilisticEntryWithMagnitude) {
  const auto plan = parse_inject_spec("net_delay~0.02*16");
  ASSERT_TRUE(plan.has_value());
  const PointPlan& p = (*plan)[InjectPoint::kNetDelay];
  EXPECT_EQ(p.first, 0u);
  EXPECT_DOUBLE_EQ(p.probability, 0.02);
  EXPECT_DOUBLE_EQ(p.magnitude, 16.0);
  EXPECT_TRUE(p.enabled());
}

TEST(InjectSpec, ParsesMultipleEntries) {
  const auto plan = parse_inject_spec("buddy_alloc@5,hugetlb_alloc@1x3,direct_reclaim~0.5");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ((*plan)[InjectPoint::kBuddyAlloc].first, 5u);
  EXPECT_EQ((*plan)[InjectPoint::kHugetlbAlloc].count, 3u);
  EXPECT_DOUBLE_EQ((*plan)[InjectPoint::kDirectReclaim].probability, 0.5);
}

TEST(InjectSpec, BareNameFiresOnFirstCall) {
  const auto plan = parse_inject_spec("thp_merge_abort");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ((*plan)[InjectPoint::kThpMergeAbort].first, 1u);
  EXPECT_EQ((*plan)[InjectPoint::kThpMergeAbort].count, 1u);
}

TEST(InjectSpec, RejectsGarbage) {
  EXPECT_FALSE(parse_inject_spec("").has_value());
  EXPECT_FALSE(parse_inject_spec("bogus_point@3").has_value());
  EXPECT_FALSE(parse_inject_spec("buddy_alloc@").has_value());
  EXPECT_FALSE(parse_inject_spec("buddy_alloc@abc").has_value());
  EXPECT_FALSE(parse_inject_spec("buddy_alloc~1.5").has_value()); // probability > 1
  EXPECT_FALSE(parse_inject_spec("net_delay%7").has_value());
  EXPECT_TRUE(parse_inject_spec("buddy_alloc@3,").has_value()); // trailing comma ok
}

TEST(InjectSpec, PointNamesRoundTrip) {
  for (std::size_t i = 0; i < kInjectPointCount; ++i) {
    const auto p = static_cast<InjectPoint>(i);
    const auto back = point_from_name(name(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(point_from_name("nonsense").has_value());
}

// --- full-run graceful degradation ---------------------------------------

TEST_F(InjectionTest, ThpHugeAllocFailureFallsBackTo4K) {
  harness::SingleNodeRunConfig cfg = quick_thp();
  cfg.verify.inject[InjectPoint::kThpHugeAlloc] = PointPlan{1, 1, /*count=*/8};
  const harness::RunResult r = harness::run_single_node(cfg);
  // Exactly the planned number of fires, every one absorbed as a 4K
  // fallback, and the machine stayed consistent.
  const auto idx = static_cast<std::size_t>(InjectPoint::kThpHugeAlloc);
  EXPECT_EQ(r.injected[idx].fired, 8u);
  EXPECT_GE(r.injected[idx].calls, 8u);
  EXPECT_GE(r.thp_fault_fallbacks, 8u);
  EXPECT_EQ(r.audit_violations, 0u) << r.audit_report;
  EXPECT_GT(r.runtime_seconds, 0.0);
}

TEST_F(InjectionTest, BuddyAllocFailureForcesReclaimAndRecovers) {
  harness::SingleNodeRunConfig cfg = quick_thp();
  cfg.verify.inject[InjectPoint::kBuddyAlloc] = PointPlan{100, 200, /*count=*/5};
  const harness::RunResult r = harness::run_single_node(cfg);
  EXPECT_EQ(r.injected[static_cast<std::size_t>(InjectPoint::kBuddyAlloc)].fired, 5u);
  EXPECT_EQ(r.audit_violations, 0u) << r.audit_report;
}

TEST_F(InjectionTest, DirectReclaimComingUpEmptyIsSurvivable) {
  harness::SingleNodeRunConfig cfg = quick_thp();
  // Pair the two: buddy misses push the path into reclaim, and reclaim
  // itself then yields nothing on its first attempts.
  cfg.verify.inject[InjectPoint::kBuddyAlloc] = PointPlan{50, 50, /*count=*/10};
  cfg.verify.inject[InjectPoint::kDirectReclaim] = PointPlan{1, 1, /*count=*/5};
  const harness::RunResult r = harness::run_single_node(cfg);
  EXPECT_EQ(r.injected[static_cast<std::size_t>(InjectPoint::kBuddyAlloc)].fired, 10u);
  EXPECT_EQ(r.audit_violations, 0u) << r.audit_report;
}

TEST_F(InjectionTest, MergeAbortCountsAndRecovers) {
  // khugepaged needs a longer miniMD run before it attempts merges; the
  // HPCCG quick config finishes before the scan fires.
  harness::SingleNodeRunConfig cfg = quick_thp();
  cfg.app = "miniMD";
  cfg.footprint_scale = 0.15;
  cfg.duration_scale = 0.1;
  cfg.verify.inject[InjectPoint::kThpMergeAbort] = PointPlan{1, 1, /*count=*/4};
  const harness::RunResult r = harness::run_single_node(cfg);
  const auto idx = static_cast<std::size_t>(InjectPoint::kThpMergeAbort);
  EXPECT_GT(r.injected[idx].fired, 0u);
  EXPECT_GE(r.thp_merges_aborted, r.injected[idx].fired);
  EXPECT_EQ(r.audit_violations, 0u) << r.audit_report;
}

TEST_F(InjectionTest, HugetlbExhaustionFallsThroughGracefully) {
  harness::SingleNodeRunConfig cfg = quick_thp();
  cfg.manager = harness::Manager::kHugetlbfs;
  cfg.verify.inject[InjectPoint::kHugetlbAlloc] = PointPlan{1, 4, /*count=*/6};
  const harness::RunResult r = harness::run_single_node(cfg);
  const auto idx = static_cast<std::size_t>(InjectPoint::kHugetlbAlloc);
  EXPECT_EQ(r.injected[idx].fired, 6u);
  EXPECT_GE(r.hugetlb_pool_exhausted, 6u);
  EXPECT_EQ(r.audit_violations, 0u) << r.audit_report;
}

TEST_F(InjectionTest, NetDelaySpikeSlowsTheClusterRun) {
  harness::ScalingRunConfig cfg;
  cfg.app = "HPCCG";
  cfg.manager = harness::Manager::kThp;
  cfg.commodity = workloads::no_competition();
  cfg.nodes = 2;
  cfg.seed = 11;
  cfg.footprint_scale = 0.08;
  cfg.duration_scale = 0.05;
  const harness::RunResult base = harness::run_scaling(cfg);
  cfg.verify.inject[InjectPoint::kNetDelay] =
      PointPlan{0, 0, /*count=*/100000, /*probability=*/1.0, /*magnitude=*/64.0};
  const harness::RunResult spiked = harness::run_scaling(cfg);
  EXPECT_GT(spiked.injected_total(), 0u);
  EXPECT_GT(spiked.runtime_seconds, base.runtime_seconds);
}

TEST_F(InjectionTest, AuditOnEveryFireStaysClean) {
  // Debug mode: the auditor runs at the instant of each injected fault
  // (pre-mutation), so any fire-time inconsistency would surface here.
  harness::SingleNodeRunConfig cfg = quick_thp();
  cfg.verify.audit = false; // only the on-fire audits contribute
  cfg.verify.audit_on_injection = true;
  cfg.verify.inject[InjectPoint::kThpHugeAlloc] = PointPlan{1, 20, /*count=*/4};
  const harness::RunResult r = harness::run_single_node(cfg);
  EXPECT_EQ(r.injected[static_cast<std::size_t>(InjectPoint::kThpHugeAlloc)].fired, 4u);
  EXPECT_GT(r.audit_checks, 0u); // the on-fire audits ran
  EXPECT_EQ(r.audit_violations, 0u) << r.audit_report;
}

TEST_F(InjectionTest, HarnessDisarmsInjectorAfterRun) {
  harness::SingleNodeRunConfig cfg = quick_thp();
  cfg.verify.inject[InjectPoint::kThpHugeAlloc] = PointPlan{1};
  (void)harness::run_single_node(cfg);
  EXPECT_FALSE(injector().armed());
}

} // namespace
} // namespace hpmmap::verify
