// PDES cluster harness correctness (DESIGN.md §13). The headline
// checks: conservative-window message delivery exactly at the horizon
// edge; the nodes=1 bridge — run_cluster byte-identical to run_scaling,
// trace stream included; the --cluster-jobs determinism contract (any
// worker count byte-identical, exporters included) across a
// nodes × managers matrix; multi-node runtime/fault tables matching the
// shared-engine path; and the topology cost model (flat reproduces the
// paper's single-switch formula through the radix, tree/fat-tree order
// sanely and tree rejects non-power-of-two node counts).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/network.hpp"
#include "harness/cluster.hpp"
#include "harness/experiment.hpp"
#include "introspect/export.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"
#include "trace/trace.hpp"

namespace hpmmap {
namespace {

// --- conservative window loop ---------------------------------------------

TEST(Lookahead, DeliversMessageExactlyAtTheHorizonEdge) {
  // A message stamped send-time + lookahead lands exactly on the first
  // window's inclusive end: legal (the soundness bound is >=, not >) and
  // it must fire inside that window, not one window late.
  sim::Engine a;
  sim::Engine b;
  sim::ParallelCoordinator coord(1);
  coord.add_group(a);
  coord.add_group(b);

  cluster::EthernetSpec eth;
  const double clock_hz = 2.2e9;
  const Cycles lookahead = cluster::min_cross_node_latency(eth, clock_hz);
  ASSERT_GT(lookahead, 0u);

  std::vector<Cycles> fired;
  a.schedule_at(Cycles{100}, [&] {
    coord.post(1, Cycles{100} + lookahead, [&] { fired.push_back(b.now()); });
  });
  b.schedule_at(Cycles{100} + 2 * lookahead, [&] { fired.push_back(b.now()); });

  coord.run_lookahead(lookahead);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], Cycles{100} + lookahead);
  EXPECT_EQ(fired[1], Cycles{100} + 2 * lookahead);
}

TEST(Lookahead, ChainedMessagesRespectEveryDestinationClock) {
  // Ping-pong at exactly the lookahead bound for several rounds; the
  // coordinator's per-delivery assert is the real check here.
  sim::Engine a;
  sim::Engine b;
  sim::ParallelCoordinator coord(2);
  coord.add_group(a);
  coord.add_group(b);
  const Cycles L = 1000;
  int volleys = 0;
  std::function<void(std::size_t, Cycles)> volley = [&](std::size_t dst, Cycles when) {
    ++volleys;
    if (volleys < 8) {
      coord.post(1 - dst, when + L, [&, dst, when] { volley(1 - dst, when + L); });
    }
  };
  a.schedule_at(Cycles{50}, [&] { volley(0, Cycles{50}); });
  coord.run_lookahead(L);
  EXPECT_EQ(volleys, 8);
}

// --- topology cost model ---------------------------------------------------

TEST(Topology, NamesRoundTrip) {
  using cluster::Topology;
  EXPECT_EQ(cluster::name(Topology::kFlat), "flat");
  EXPECT_EQ(cluster::name(Topology::kTree), "tree");
  EXPECT_EQ(cluster::name(Topology::kFatTree), "fat-tree");
  EXPECT_EQ(cluster::topology_from_name("flat"), Topology::kFlat);
  EXPECT_EQ(cluster::topology_from_name("tree"), Topology::kTree);
  EXPECT_EQ(cluster::topology_from_name("fat-tree"), Topology::kFatTree);
  EXPECT_FALSE(cluster::topology_from_name("torus").has_value());
}

TEST(Topology, FlatReproducesThePaperFormulaThroughTheRadix) {
  // Single switch, no contention: 2 * ceil(log2 n) * hop, exactly the
  // model run_scaling always used.
  cluster::EthernetSpec eth;
  const double hop = eth.latency_seconds + 8192.0 / eth.bandwidth_bytes_per_sec;
  for (std::uint32_t n : {2u, 8u, 32u}) {
    std::uint32_t rounds = 0;
    while ((1u << rounds) < n) {
      ++rounds;
    }
    EXPECT_DOUBLE_EQ(
        cluster::allreduce_seconds(eth, cluster::Topology::kFlat, n),
        2.0 * rounds * hop)
        << n << " nodes";
  }
}

TEST(Topology, FlatContentionGrowsPastTheRadix) {
  cluster::EthernetSpec eth;
  const double at32 = cluster::allreduce_seconds(eth, cluster::Topology::kFlat, 32);
  const double at64 = cluster::allreduce_seconds(eth, cluster::Topology::kFlat, 64);
  const double at256 = cluster::allreduce_seconds(eth, cluster::Topology::kFlat, 256);
  // 64 nodes: one extra round AND 2x port contention.
  EXPECT_GT(at64, 2.0 * at32);
  EXPECT_GT(at256, at64);
}

TEST(Topology, TreeBeatsFlatAtScaleAndNeedsPowerOfTwo) {
  cluster::EthernetSpec eth;
  EXPECT_TRUE(cluster::topology_supports(cluster::Topology::kTree, 64));
  EXPECT_FALSE(cluster::topology_supports(cluster::Topology::kTree, 48));
  EXPECT_TRUE(cluster::topology_supports(cluster::Topology::kFlat, 48));
  EXPECT_TRUE(cluster::topology_supports(cluster::Topology::kFatTree, 48));
  // The binomial tree never pays port contention, so past the radix it
  // wins over the flat switch.
  EXPECT_LT(cluster::allreduce_seconds(eth, cluster::Topology::kTree, 256),
            cluster::allreduce_seconds(eth, cluster::Topology::kFlat, 256));
}

TEST(Topology, FatTreeCostsOrderSanely) {
  cluster::EthernetSpec eth;
  // One edge switch: identical to flat.
  EXPECT_DOUBLE_EQ(cluster::allreduce_seconds(eth, cluster::Topology::kFatTree, 16),
                   cluster::allreduce_seconds(eth, cluster::Topology::kFlat, 16));
  // More levels -> longer staged hops, but still cheaper than the
  // contended flat switch at scale.
  const double small = cluster::allreduce_seconds(eth, cluster::Topology::kFatTree, 16);
  const double big = cluster::allreduce_seconds(eth, cluster::Topology::kFatTree, 256);
  EXPECT_GT(big, small);
  EXPECT_LT(big, cluster::allreduce_seconds(eth, cluster::Topology::kFlat, 256));
}

// --- run_cluster vs run_scaling -------------------------------------------

harness::ScalingRunConfig scaling_quick(const std::string& app, harness::Manager mgr,
                                        std::uint32_t nodes) {
  harness::ScalingRunConfig cfg;
  cfg.app = app;
  cfg.manager = mgr;
  cfg.nodes = nodes;
  cfg.ranks_per_node = 2;
  cfg.seed = 99;
  cfg.footprint_scale = 0.05;
  cfg.duration_scale = 0.05;
  cfg.commodity = workloads::profile_c();
  cfg.warmup_seconds = 0.3;
  return cfg;
}

void expect_args_equal(const trace::Event& a, const trace::Event& b, std::size_t i) {
  ASSERT_EQ(a.arg_count, b.arg_count) << "event " << i;
  for (std::uint8_t k = 0; k < a.arg_count; ++k) {
    const trace::Arg& x = a.args[k];
    const trace::Arg& y = b.args[k];
    ASSERT_STREQ(x.name, y.name) << "event " << i << " arg " << int{k};
    ASSERT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind)) << "event " << i;
    switch (x.kind) {
      case trace::Arg::Kind::kNone: break;
      case trace::Arg::Kind::kU64:
        EXPECT_EQ(x.value.u64, y.value.u64) << "event " << i << " arg " << int{k};
        break;
      case trace::Arg::Kind::kF64:
        EXPECT_EQ(x.value.f64, y.value.f64) << "event " << i << " arg " << int{k};
        break;
      case trace::Arg::Kind::kStr:
        EXPECT_STREQ(x.value.str, y.value.str) << "event " << i << " arg " << int{k};
        break;
    }
  }
}

void expect_events_equal(const std::vector<trace::Event>& a,
                         const std::vector<trace::Event>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts, b[i].ts) << "event " << i << " " << a[i].name();
    EXPECT_EQ(a[i].dur, b[i].dur) << "event " << i;
    EXPECT_EQ(a[i].name(), b[i].name()) << "event " << i;
    EXPECT_EQ(static_cast<std::uint32_t>(a[i].cat), static_cast<std::uint32_t>(b[i].cat));
    EXPECT_EQ(static_cast<char>(a[i].phase), static_cast<char>(b[i].phase));
    EXPECT_EQ(a[i].pid, b[i].pid) << "event " << i;
    EXPECT_EQ(a[i].core, b[i].core) << "event " << i;
    expect_args_equal(a[i], b[i], i);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

void expect_telemetry_equal(const harness::RunResult& a, const harness::RunResult& b) {
  ASSERT_EQ(a.telemetry.size(), b.telemetry.size());
  for (std::size_t i = 0; i < a.telemetry.size(); ++i) {
    EXPECT_EQ(a.telemetry[i].metric, b.telemetry[i].metric) << "series " << i;
    EXPECT_EQ(a.telemetry[i].labels, b.telemetry[i].labels) << "series " << i;
    const std::vector<introspect::TimePoint> pa = a.telemetry[i].ordered();
    const std::vector<introspect::TimePoint> pb = b.telemetry[i].ordered();
    ASSERT_EQ(pa.size(), pb.size()) << "series " << a.telemetry[i].metric;
    for (std::size_t j = 0; j < pa.size(); ++j) {
      EXPECT_EQ(pa[j].ts, pb[j].ts) << a.telemetry[i].metric << " point " << j;
      EXPECT_EQ(pa[j].value, pb[j].value) << a.telemetry[i].metric << " point " << j;
    }
  }
  // Satellite contract: the exported files are byte-identical too.
  EXPECT_EQ(introspect::openmetrics(a.telemetry), introspect::openmetrics(b.telemetry));
  EXPECT_EQ(introspect::telemetry_csv(a.telemetry), introspect::telemetry_csv(b.telemetry));
}

/// Full byte-equality, trace stream and telemetry included.
void expect_run_equal(const harness::RunResult& a, const harness::RunResult& b) {
  EXPECT_EQ(a.runtime_seconds, b.runtime_seconds);
  EXPECT_EQ(a.clock_hz, b.clock_hz);
  for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
    EXPECT_EQ(a.faults.count[k], b.faults.count[k]) << "kind " << k;
    EXPECT_EQ(a.faults.total_cycles[k], b.faults.total_cycles[k]) << "kind " << k;
    EXPECT_EQ(a.by_kind_summaries[k].total_faults, b.by_kind_summaries[k].total_faults);
    EXPECT_EQ(a.by_kind_summaries[k].avg_cycles, b.by_kind_summaries[k].avg_cycles);
    EXPECT_EQ(a.by_kind_summaries[k].stdev_cycles, b.by_kind_summaries[k].stdev_cycles);
  }
  EXPECT_EQ(a.trace_dropped, b.trace_dropped);
  EXPECT_EQ(a.app_pids, b.app_pids);
  EXPECT_EQ(a.trace_t0, b.trace_t0);
  EXPECT_EQ(a.thp_merges, b.thp_merges);
  EXPECT_EQ(a.thp_fault_fallbacks, b.thp_fault_fallbacks);
  EXPECT_EQ(a.thp_merges_aborted, b.thp_merges_aborted);
  EXPECT_EQ(a.hugetlb_pool_exhausted, b.hugetlb_pool_exhausted);
  EXPECT_EQ(a.hpmmap_spurious_faults, b.hpmmap_spurious_faults);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.audit_checks, b.audit_checks);
  EXPECT_EQ(a.audit_violations, b.audit_violations);
  EXPECT_EQ(a.audit_report, b.audit_report);
  EXPECT_EQ(a.procfs_text, b.procfs_text);
  expect_events_equal(a.events, b.events);
  expect_telemetry_equal(a, b);
}

/// The shared-engine comparison at nodes > 1: per-node trajectories are
/// identical, so the physics (runtime, faults, pids, node counters) must
/// match; engine bookkeeping (events_fired) legitimately differs (N
/// finish events, N sampler daemons instead of one).
void expect_tables_equal(const harness::RunResult& cluster,
                         const harness::RunResult& scaling) {
  EXPECT_EQ(cluster.runtime_seconds, scaling.runtime_seconds);
  for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
    EXPECT_EQ(cluster.faults.count[k], scaling.faults.count[k]) << "kind " << k;
    EXPECT_EQ(cluster.faults.total_cycles[k], scaling.faults.total_cycles[k]) << "kind " << k;
  }
  EXPECT_EQ(cluster.app_pids, scaling.app_pids);
  EXPECT_EQ(cluster.thp_merges, scaling.thp_merges);
  EXPECT_EQ(cluster.hpmmap_spurious_faults, scaling.hpmmap_spurious_faults);
  EXPECT_EQ(cluster.hugetlb_pool_exhausted, scaling.hugetlb_pool_exhausted);
}

TEST(ClusterBridge, SingleNodeIsByteIdenticalToRunScaling) {
  harness::ScalingRunConfig cfg = scaling_quick("HPCCG", harness::Manager::kHpmmap, 1);
  cfg.trace.categories = trace::kAllCategories;
  cfg.introspect.sample_interval = 40'000'000;
  cfg.introspect.procfs_dump = true;
  const harness::RunResult seq = harness::run_scaling(cfg);

  harness::ClusterRunConfig ccfg;
  ccfg.scaling = cfg;
  const harness::RunResult par = harness::run_cluster(ccfg);
  ASSERT_FALSE(seq.events.empty());
  expect_run_equal(par, seq);
}

class ClusterManagers : public ::testing::TestWithParam<harness::Manager> {};

TEST_P(ClusterManagers, AnyWorkerCountIsByteIdentical) {
  harness::ClusterRunConfig cfg;
  cfg.scaling = scaling_quick("miniFE", GetParam(), 4);
  cfg.scaling.trace.categories = trace::kAllCategories;
  cfg.scaling.introspect.sample_interval = 40'000'000;
  cfg.scaling.introspect.procfs_dump = true;

  cfg.cluster_jobs = 1;
  const harness::RunResult inline_ref = harness::run_cluster(cfg);
  for (unsigned jobs : {2u, 5u}) {
    cfg.cluster_jobs = jobs;
    const harness::RunResult par = harness::run_cluster(cfg);
    expect_run_equal(par, inline_ref);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST_P(ClusterManagers, MultiNodeTablesMatchTheSharedEngine) {
  for (std::uint32_t nodes : {2u, 4u, 8u}) {
    const harness::ScalingRunConfig cfg = scaling_quick("HPCCG", GetParam(), nodes);
    const harness::RunResult seq = harness::run_scaling(cfg);
    harness::ClusterRunConfig ccfg;
    ccfg.scaling = cfg;
    ccfg.cluster_jobs = 3;
    const harness::RunResult par = harness::run_cluster(ccfg);
    expect_tables_equal(par, seq);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Managers, ClusterManagers,
                         ::testing::Values(harness::Manager::kThp,
                                           harness::Manager::kHugetlbfs,
                                           harness::Manager::kHpmmap));

TEST(ClusterTrials, SeriesPointsAreWorkerCountInvariant) {
  harness::ClusterRunConfig cfg;
  cfg.scaling = scaling_quick("LAMMPS", harness::Manager::kThp, 2);
  cfg.cluster_jobs = 1;
  const harness::SeriesPoint a = harness::run_cluster_trials(cfg, 3);
  cfg.cluster_jobs = 4;
  const harness::SeriesPoint b = harness::run_cluster_trials(cfg, 3);
  EXPECT_EQ(a.mean_seconds, b.mean_seconds);
  EXPECT_EQ(a.stdev_seconds, b.stdev_seconds);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.fault_counts, b.fault_counts);
  EXPECT_EQ(a.fault_cycles, b.fault_cycles);
}

TEST(ClusterTopology, TreeRunsAndIsFasterThanFlatPastTheRadix) {
  // Behavioral check at a scale small enough for a unit test: the tree
  // collective changes only the comm draw, so runs stay deterministic.
  harness::ClusterRunConfig cfg;
  cfg.scaling = scaling_quick("HPCCG", harness::Manager::kHpmmap, 4);
  cfg.topology = cluster::Topology::kTree;
  const harness::RunResult tree = harness::run_cluster(cfg);
  cfg.topology = cluster::Topology::kFlat;
  const harness::RunResult flat = harness::run_cluster(cfg);
  // At 4 nodes both topologies price the collective identically (no
  // contention below the radix, same round count), so the runs agree.
  EXPECT_EQ(tree.runtime_seconds, flat.runtime_seconds);
}

} // namespace
} // namespace hpmmap
