// Unit tests: the parallel batch runner and its determinism contract —
// the merged output of any sweep is byte-identical for every --jobs
// value, because results merge in task order and every trial's seed is
// derived from the config, never from execution order.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <vector>

#include "harness/batch.hpp"
#include "harness/experiment.hpp"

namespace hpmmap {
namespace {

bool bit_identical(const harness::SeriesPoint& a, const harness::SeriesPoint& b) {
  return std::memcmp(&a.mean_seconds, &b.mean_seconds, sizeof(double)) == 0 &&
         std::memcmp(&a.stdev_seconds, &b.stdev_seconds, sizeof(double)) == 0 &&
         a.trials == b.trials && a.events == b.events;
}

harness::SingleNodeRunConfig quick_single(harness::Manager mgr, std::uint64_t seed) {
  harness::SingleNodeRunConfig cfg;
  cfg.app = "HPCCG";
  cfg.manager = mgr;
  cfg.commodity = workloads::no_competition();
  cfg.app_cores = 2;
  cfg.seed = seed;
  cfg.footprint_scale = 0.08;
  cfg.duration_scale = 0.05;
  return cfg;
}

harness::ScalingRunConfig quick_scaling(harness::Manager mgr, std::uint32_t nodes) {
  harness::ScalingRunConfig cfg;
  cfg.app = "HPCCG";
  cfg.manager = mgr;
  cfg.commodity = workloads::no_competition();
  cfg.nodes = nodes;
  cfg.ranks_per_node = 2;
  cfg.seed = 500 + nodes;
  cfg.footprint_scale = 0.08;
  cfg.duration_scale = 0.05;
  return cfg;
}

TEST(BatchRunner, HardwareJobsIsPositive) {
  EXPECT_GE(harness::hardware_jobs(), 1u);
  EXPECT_GE(harness::BatchRunner(0).jobs(), 1u);
  EXPECT_EQ(harness::BatchRunner(3).jobs(), 3u);
}

TEST(BatchRunner, EmptyTaskListReturnsEmpty) {
  harness::BatchRunner runner(4);
  EXPECT_TRUE(runner.map(std::vector<std::function<int()>>{}).empty());
}

TEST(BatchRunner, ResultsComeBackInTaskOrder) {
  // 64 tasks finishing in arbitrary order across 4 workers must still
  // land at their submission index.
  std::vector<std::function<int()>> tasks;
  std::atomic<int> spin{0};
  for (int i = 0; i < 64; ++i) {
    tasks.emplace_back([i, &spin] {
      // Uneven work so completion order differs from submission order.
      for (int k = 0; k < (i % 7) * 1000; ++k) {
        spin.fetch_add(1, std::memory_order_relaxed);
      }
      return i * 10;
    });
  }
  const std::vector<int> out = harness::BatchRunner(4).map(std::move(tasks));
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 10);
  }
}

TEST(BatchRunner, LowestIndexExceptionWins) {
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.emplace_back([i]() -> int {
      if (i == 2 || i == 6) {
        throw std::runtime_error("task " + std::to_string(i));
      }
      return i;
    });
  }
  try {
    (void)harness::BatchRunner(4).map(std::move(tasks));
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 2");
  }
}

TEST(BatchRunner, TrialSeedsMatchTheSerialRecurrence) {
  // The documented recurrence the pre-parallel trial loop applied in
  // place: s_{t+1} = s_t * 2654435761 + t + 1.
  const std::vector<std::uint64_t> seeds = harness::trial_seeds(42, 5);
  ASSERT_EQ(seeds.size(), 5u);
  std::uint64_t s = 42;
  for (std::uint32_t t = 0; t < 5; ++t) {
    s = s * 2654435761ull + t + 1; // the serial loop advances before the run
    EXPECT_EQ(seeds[t], s) << "trial " << t;
  }
}

TEST(BatchDeterminism, SingleNodeTrialsIdenticalAcrossJobCounts) {
  const harness::SeriesPoint serial =
      harness::run_trials(quick_single(harness::Manager::kThp, 11), 3, 1);
  const harness::SeriesPoint parallel =
      harness::run_trials(quick_single(harness::Manager::kThp, 11), 3, 4);
  EXPECT_TRUE(bit_identical(serial, parallel));
  EXPECT_GT(serial.mean_seconds, 0.0);
  EXPECT_GT(serial.events, 0u);
}

TEST(BatchDeterminism, ScalingSweepIdenticalAcrossJobCounts) {
  // A miniature Figure 8 sweep: 2 managers x 2 node counts, fanned out at
  // (config, trial) granularity. Byte-identical at 1 and 4 workers.
  std::vector<harness::ScalingRunConfig> cfgs;
  for (const harness::Manager mgr :
       {harness::Manager::kHpmmap, harness::Manager::kThp}) {
    for (const std::uint32_t nodes : {1u, 2u}) {
      cfgs.push_back(quick_scaling(mgr, nodes));
    }
  }
  const std::vector<harness::SeriesPoint> serial =
      harness::run_trials_batch(cfgs, 2, 1);
  const std::vector<harness::SeriesPoint> parallel =
      harness::run_trials_batch(cfgs, 2, 4);
  ASSERT_EQ(serial.size(), cfgs.size());
  ASSERT_EQ(parallel.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_TRUE(bit_identical(serial[i], parallel[i])) << "config " << i;
    EXPECT_GT(serial[i].mean_seconds, 0.0);
  }
}

TEST(BatchDeterminism, DefaultJobsRoutesThroughTheSameSeeds) {
  // run_trials(config, trials) at whatever default_jobs() is set to must
  // agree with the explicit serial overload.
  const unsigned saved = harness::default_jobs();
  harness::set_default_jobs(4);
  const harness::SeriesPoint via_default =
      harness::run_trials(quick_single(harness::Manager::kHpmmap, 23), 2);
  harness::set_default_jobs(saved == 0 ? 1 : saved);
  const harness::SeriesPoint serial =
      harness::run_trials(quick_single(harness::Manager::kHpmmap, 23), 2, 1);
  EXPECT_TRUE(bit_identical(via_default, serial));
}

TEST(BatchRunner, RunBatchReturnsFullResultsInOrder) {
  std::vector<harness::SingleNodeRunConfig> cfgs;
  cfgs.push_back(quick_single(harness::Manager::kThp, 31));
  cfgs.push_back(quick_single(harness::Manager::kHpmmap, 32));
  const std::vector<harness::RunResult> results = harness::run_batch(cfgs, 2);
  ASSERT_EQ(results.size(), 2u);
  for (const harness::RunResult& r : results) {
    EXPECT_GT(r.runtime_seconds, 0.0);
    EXPECT_GT(r.events_fired, 0u);
  }
}

} // namespace
} // namespace hpmmap
