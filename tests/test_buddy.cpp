// Unit + property tests: the buddy allocator (shared by the Linux zone
// allocator and HPMMAP's Kitten instance).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "linux_mm/buddy_allocator.hpp"

namespace hpmmap::mm {
namespace {

constexpr unsigned kMax = 10;

BuddyAllocator make(std::uint64_t bytes = 64 * MiB, Addr base = 0) {
  return BuddyAllocator(Range{base, base + bytes}, kMax);
}

TEST(Buddy, FreshAllocatorIsFullyFree) {
  auto b = make();
  EXPECT_EQ(b.free_bytes(), 64 * MiB);
  EXPECT_EQ(b.total_bytes(), 64 * MiB);
  EXPECT_TRUE(b.check_consistency());
  EXPECT_EQ(b.largest_free_order(), kMax);
}

TEST(Buddy, OrderBytes) {
  EXPECT_EQ(BuddyAllocator::order_bytes(0), 4 * KiB);
  EXPECT_EQ(BuddyAllocator::order_bytes(9), 2 * MiB);
  EXPECT_EQ(BuddyAllocator::order_bytes(10), 4 * MiB);
}

TEST(Buddy, OrderForBytes) {
  EXPECT_EQ(BuddyAllocator::order_for_bytes(1), 0u);
  EXPECT_EQ(BuddyAllocator::order_for_bytes(4 * KiB), 0u);
  EXPECT_EQ(BuddyAllocator::order_for_bytes(4 * KiB + 1), 1u);
  EXPECT_EQ(BuddyAllocator::order_for_bytes(2 * MiB), 9u);
  EXPECT_EQ(BuddyAllocator::order_for_bytes(1 * GiB), 18u);
}

TEST(Buddy, AllocDecrementsFree) {
  auto b = make();
  auto a = b.alloc(0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(b.free_bytes(), 64 * MiB - 4 * KiB);
  EXPECT_TRUE(b.check_consistency());
}

TEST(Buddy, AllocSplitsFromLargest) {
  auto b = make(4 * MiB);
  auto a = b.alloc(0);
  ASSERT_TRUE(a.has_value());
  // One order-10 block split down to order 0: 10 split steps.
  EXPECT_EQ(a->split_steps, 10u);
  // The splits leave one free block at each order 0..9.
  for (unsigned o = 0; o < 10; ++o) {
    EXPECT_EQ(b.free_blocks(o), 1u) << "order " << o;
  }
}

TEST(Buddy, SecondSmallAllocNeedsNoSplit) {
  auto b = make(4 * MiB);
  (void)b.alloc(0);
  auto a = b.alloc(0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->split_steps, 0u);
}

TEST(Buddy, FreeCoalescesBackToMaxOrder) {
  auto b = make(4 * MiB);
  auto a = b.alloc(0);
  ASSERT_TRUE(a.has_value());
  const unsigned merges = b.free(a->addr, 0);
  EXPECT_EQ(merges, 10u);
  EXPECT_EQ(b.free_blocks(kMax), 1u);
  EXPECT_EQ(b.free_bytes(), 4 * MiB);
  EXPECT_TRUE(b.check_consistency());
}

TEST(Buddy, BuddiesOnlyMergeWithEachOther) {
  auto b = make(16 * KiB); // orders 0..2 usable
  auto a0 = b.alloc(0);
  auto a1 = b.alloc(0);
  auto a2 = b.alloc(0);
  auto a3 = b.alloc(0);
  ASSERT_TRUE(a3.has_value());
  // Free two non-buddy neighbours: no merge possible.
  b.free(a1->addr, 0);
  b.free(a2->addr, 0);
  EXPECT_EQ(b.free_blocks(0), 2u);
  EXPECT_EQ(b.free_blocks(1), 0u);
  // Completing each pair coalesces all the way.
  b.free(a0->addr, 0);
  b.free(a3->addr, 0);
  EXPECT_EQ(b.free_bytes(), 16 * KiB);
  EXPECT_TRUE(b.check_consistency());
}

TEST(Buddy, ExhaustionReturnsNullopt) {
  auto b = make(8 * KiB);
  EXPECT_TRUE(b.alloc(0).has_value());
  EXPECT_TRUE(b.alloc(0).has_value());
  EXPECT_FALSE(b.alloc(0).has_value());
  EXPECT_EQ(b.stats().failed_allocs, 1u);
}

TEST(Buddy, CanAllocChecksWithoutSideEffects) {
  auto b = make(4 * MiB);
  EXPECT_TRUE(b.can_alloc(9));
  (void)b.alloc(10);
  EXPECT_FALSE(b.can_alloc(0));
  EXPECT_EQ(b.stats().allocs, 1u); // can_alloc did not allocate
}

TEST(Buddy, NonAlignedBaseSeedsGreedily) {
  // Base not aligned to max order: seeding must still tile the range.
  BuddyAllocator b(Range{12 * KiB, 12 * KiB + 8 * MiB}, kMax);
  EXPECT_EQ(b.free_bytes(), 8 * MiB);
  EXPECT_TRUE(b.check_consistency());
}

TEST(Buddy, AlignmentIsRelativeToBase) {
  // A buddy starting at a 2M-misaligned absolute address must still
  // produce internally-aligned order-9 blocks.
  BuddyAllocator b(Range{kMemorySectionSize, kMemorySectionSize + 16 * MiB}, kMax);
  auto a = b.alloc(9);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(is_aligned(a->addr - kMemorySectionSize, 2 * MiB));
}

TEST(Buddy, FragmentationZeroWhenPristine) {
  auto b = make(64 * MiB);
  EXPECT_DOUBLE_EQ(b.fragmentation(), 0.0);
}

TEST(Buddy, FragmentationRisesWithScatteredHoles) {
  auto b = make(64 * MiB);
  Rng rng(1);
  std::vector<Addr> held;
  for (int i = 0; i < 4000; ++i) {
    if (auto a = b.alloc(0)) {
      held.push_back(a->addr);
    }
  }
  // Free a scattered half: leaves many unmergeable order-0 holes.
  for (std::size_t i = 0; i < held.size(); i += 2) {
    b.free(held[i], 0);
  }
  EXPECT_GT(b.fragmentation(), 0.1);
  EXPECT_TRUE(b.check_consistency());
}

TEST(Buddy, ReserveExactTakesFreeRegion) {
  auto b = make(4 * MiB);
  EXPECT_TRUE(b.reserve_exact(0, 9));
  EXPECT_EQ(b.free_bytes(), 2 * MiB);
  EXPECT_TRUE(b.check_consistency());
  b.free(0, 9);
  EXPECT_EQ(b.free_bytes(), 4 * MiB);
}

TEST(Buddy, ReserveExactFailsOnAllocatedRegion) {
  auto b = make(4 * MiB);
  auto a = b.alloc(0); // carves from the bottom
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(b.reserve_exact(0, 9));
}

TEST(Buddy, FreeBlockContaining) {
  auto b = make(4 * MiB);
  auto blk = b.free_block_containing(1 * MiB);
  ASSERT_TRUE(blk.has_value());
  EXPECT_EQ(blk->first, 0u);
  EXPECT_EQ(blk->second, kMax);
  (void)b.alloc(10); // now nothing is free
  EXPECT_FALSE(b.free_block_containing(1 * MiB).has_value());
}

TEST(Buddy, TakeFreeBlockRemovesExactBlock) {
  auto b = make(4 * MiB);
  (void)b.alloc(0); // fragments the freelists across orders
  ASSERT_EQ(b.free_blocks(9), 1u);
  auto blk = b.free_block_containing(2 * MiB);
  ASSERT_TRUE(blk.has_value());
  EXPECT_TRUE(b.take_free_block(blk->first, blk->second));
  EXPECT_FALSE(b.take_free_block(blk->first, blk->second)); // gone
  EXPECT_TRUE(b.check_consistency());
}

// --- property tests ------------------------------------------------------------

struct BuddyPropertyParams {
  std::uint64_t arena_bytes;
  unsigned max_order;
  std::uint64_t seed;
};

class BuddyProperty : public ::testing::TestWithParam<BuddyPropertyParams> {};

/// Random alloc/free interleaving preserves every invariant and never
/// loses or double-counts a byte.
TEST_P(BuddyProperty, RandomOpsPreserveInvariants) {
  const auto params = GetParam();
  BuddyAllocator b(Range{0, params.arena_bytes}, params.max_order);
  Rng rng(params.seed);
  std::vector<std::pair<Addr, unsigned>> held;
  std::uint64_t held_bytes = 0;

  for (int step = 0; step < 3000; ++step) {
    const bool do_alloc = held.empty() || rng.chance(0.55);
    if (do_alloc) {
      const unsigned order = static_cast<unsigned>(rng.uniform(params.max_order + 1));
      if (auto a = b.alloc(order)) {
        // Returned blocks are aligned and in-range.
        ASSERT_TRUE(is_aligned(a->addr, BuddyAllocator::order_bytes(order)));
        ASSERT_LE(a->addr + BuddyAllocator::order_bytes(order), params.arena_bytes);
        // No overlap with anything currently held.
        for (const auto& [addr, o] : held) {
          const Range lhs{a->addr, a->addr + BuddyAllocator::order_bytes(order)};
          const Range rhs{addr, addr + BuddyAllocator::order_bytes(o)};
          ASSERT_FALSE(lhs.overlaps(rhs));
        }
        held.emplace_back(a->addr, order);
        held_bytes += BuddyAllocator::order_bytes(order);
      }
    } else {
      const std::size_t idx = static_cast<std::size_t>(rng.uniform(held.size()));
      b.free(held[idx].first, held[idx].second);
      held_bytes -= BuddyAllocator::order_bytes(held[idx].second);
      held[idx] = held.back();
      held.pop_back();
    }
    ASSERT_EQ(b.free_bytes() + held_bytes, params.arena_bytes);
  }
  ASSERT_TRUE(b.check_consistency());
  // Releasing everything returns the arena to a fully-coalesced state.
  for (const auto& [addr, order] : held) {
    b.free(addr, order);
  }
  EXPECT_EQ(b.free_bytes(), params.arena_bytes);
  EXPECT_TRUE(b.check_consistency());
}

INSTANTIATE_TEST_SUITE_P(
    Arenas, BuddyProperty,
    ::testing::Values(BuddyPropertyParams{16 * MiB, 10, 1},
                      BuddyPropertyParams{16 * MiB, 10, 2},
                      BuddyPropertyParams{64 * MiB, 10, 3},
                      BuddyPropertyParams{8 * MiB, 6, 4},
                      BuddyPropertyParams{128 * MiB, 13, 5},
                      BuddyPropertyParams{kMemorySectionSize, 15, 6}));

} // namespace
} // namespace hpmmap::mm
