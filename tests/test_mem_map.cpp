// Unit + property tests: the hw::MemMap frame-metadata array and the
// intrusive structures threaded through it. The differential test at the
// bottom drives the bitmap-freelist BuddyAllocator against an
// std::set-based reference model (the pre-rework implementation's data
// structure) through random op sequences — results, accounting and
// per-order populations must agree at every step.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "hw/mem_map.hpp"
#include "linux_mm/buddy_allocator.hpp"

namespace hpmmap {
namespace {

using hw::FrameState;
using hw::MemMap;

constexpr Addr kBase = 16 * MiB;

MemMap make(std::uint64_t bytes = 64 * MiB) {
  return MemMap(Range{kBase, kBase + bytes});
}

TEST(MemMap, IndexAddrRoundTrip) {
  auto m = make();
  EXPECT_EQ(m.frame_count(), 64 * MiB / (4 * KiB));
  EXPECT_EQ(m.index_of(kBase), 0u);
  EXPECT_EQ(m.addr_of(0), kBase);
  const Addr a = kBase + 13 * 4 * KiB;
  EXPECT_EQ(m.addr_of(m.index_of(a)), a);
  // Interior addresses land on their frame's index.
  EXPECT_EQ(m.index_of(a + 100), m.index_of(a));
  EXPECT_FALSE(m.contains(kBase - 1));
  EXPECT_FALSE(m.contains(kBase + 64 * MiB));
}

TEST(MemMap, HeadMarkingPacksStateAndOrder) {
  auto m = make();
  EXPECT_EQ(m.state(5), FrameState::kUntracked);
  m.set_head(5, FrameState::kCacheDirty, 9);
  EXPECT_EQ(m.state(5), FrameState::kCacheDirty);
  EXPECT_EQ(m.order(5), 9u);
  // Neighbouring frames are untouched (head-only marking).
  EXPECT_EQ(m.state(4), FrameState::kUntracked);
  EXPECT_EQ(m.state(6), FrameState::kUntracked);
  m.set_head(5, FrameState::kBuddyFree, 18);
  EXPECT_EQ(m.state(5), FrameState::kBuddyFree);
  EXPECT_EQ(m.order(5), 18u);
  m.clear_head(5);
  EXPECT_EQ(m.state(5), FrameState::kUntracked);
  EXPECT_EQ(m.order(5), 0u);
}

TEST(MemMap, BlockContainingProbesEveryOrder) {
  auto m = make();
  // A 2M cache block at kBase + 2M: every interior address resolves to
  // the block head, at any probing state mask that includes it.
  const Addr block = kBase + 2 * MiB;
  m.set_head(m.index_of(block), FrameState::kCacheClean, 9);
  for (const Addr probe : {block, block + 4 * KiB, block + 2 * MiB - 1}) {
    const auto hit = m.block_containing(probe, hw::kCacheStates, 10);
    ASSERT_TRUE(hit.has_value()) << "probe " << probe;
    EXPECT_EQ(hit->first, block);
    EXPECT_EQ(hit->second, 9u);
  }
  // A mask that excludes the state misses.
  EXPECT_FALSE(m.block_containing(block, hw::state_mask(FrameState::kBuddyFree), 10).has_value());
  // max_order below the block's order misses (probe never reaches o=9).
  EXPECT_FALSE(m.block_containing(block + 8 * KiB, hw::kCacheStates, 8).has_value());
  // Outside the range misses without asserting.
  EXPECT_FALSE(m.block_containing(kBase - 4 * KiB, hw::kCacheStates, 10).has_value());
  // An order-0 head elsewhere is found at exactly its own frame.
  m.set_head(3, FrameState::kBuddyFree, 0);
  const auto small = m.block_containing(m.addr_of(3), hw::state_mask(FrameState::kBuddyFree), 10);
  ASSERT_TRUE(small.has_value());
  EXPECT_EQ(small->second, 0u);
  EXPECT_FALSE(
      m.block_containing(m.addr_of(4), hw::state_mask(FrameState::kBuddyFree), 10).has_value());
}

TEST(MemMap, BlockContainingRequiresMatchingOrder) {
  auto m = make();
  // A frame marked order 3 must not satisfy an order-0 probe of its own
  // address under a different alignment: the meta order is part of the
  // match, so stale low-order marks cannot shadow a larger block.
  m.set_head(0, FrameState::kBuddyFree, 3);
  const auto hit = m.block_containing(kBase + 4 * KiB, hw::state_mask(FrameState::kBuddyFree), 10);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, kBase);
  EXPECT_EQ(hit->second, 3u);
}

TEST(MemMap, LinkInsertUpdateErase) {
  auto m = make();
  EXPECT_FALSE(m.has_link(7));
  m.set_link(7, MemMap::Link{11, MemMap::kNil});
  ASSERT_TRUE(m.has_link(7));
  EXPECT_EQ(m.link(7).next, 11u);
  EXPECT_EQ(m.link(7).prev, MemMap::kNil);
  EXPECT_EQ(m.link_count(), 1u);
  // set_link on an existing key is an update, not a second entry.
  m.set_link(7, MemMap::Link{12, 3});
  EXPECT_EQ(m.link_count(), 1u);
  EXPECT_EQ(m.link(7).next, 12u);
  m.set_next(7, 99);
  m.set_prev(7, 98);
  EXPECT_EQ(m.link(7).next, 99u);
  EXPECT_EQ(m.link(7).prev, 98u);
  m.erase_link(7);
  EXPECT_FALSE(m.has_link(7));
  EXPECT_EQ(m.link_count(), 0u);
}

TEST(MemMap, LinkTableSurvivesCollisionsAndRehash) {
  auto m = make(512 * MiB);
  // Differential check against a reference map through enough inserts to
  // force several rehashes, interleaved with backward-shift deletions.
  std::unordered_map<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>> ref;
  Rng rng(0xfeedULL);
  const std::uint32_t frames = static_cast<std::uint32_t>(m.frame_count());
  for (int i = 0; i < 20'000; ++i) {
    const std::uint32_t key = static_cast<std::uint32_t>(rng.uniform(frames));
    if (rng.uniform(100) < 60 || ref.empty()) {
      const auto next = static_cast<std::uint32_t>(rng.next_u64());
      const auto prev = static_cast<std::uint32_t>(rng.next_u64());
      m.set_link(key, MemMap::Link{next, prev});
      ref[key] = {next, prev};
    } else if (ref.contains(key)) {
      m.erase_link(key);
      ref.erase(key);
    } else {
      EXPECT_FALSE(m.has_link(key));
    }
  }
  EXPECT_EQ(m.link_count(), ref.size());
  for (const auto& [key, l] : ref) {
    ASSERT_TRUE(m.has_link(key)) << key;
    EXPECT_EQ(m.link(key).next, l.first);
    EXPECT_EQ(m.link(key).prev, l.second);
  }
}

TEST(MemMap, ForEachHeadAscendingAndComplete) {
  auto m = make();
  // Heads placed sparsely, including runs of >8 untracked frames (the
  // word-skip path) and adjacent frames.
  const std::vector<std::uint32_t> heads = {0, 1, 9, 64, 65, 1000, 16383};
  for (const std::uint32_t idx : heads) {
    m.set_head(idx, FrameState::kHugetlbPool, 2);
  }
  std::vector<std::uint32_t> seen;
  m.for_each_head([&](Addr a, FrameState st, unsigned order) {
    EXPECT_EQ(st, FrameState::kHugetlbPool);
    EXPECT_EQ(order, 2u);
    seen.push_back(m.index_of(a));
  });
  EXPECT_EQ(seen, heads);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

// ---------------------------------------------------------------------------
// Differential property test: bitmap freelists vs the std::set model.
// ---------------------------------------------------------------------------

/// Reference buddy allocator: the pre-rework ordered-set freelists with
/// the same pop-lowest / eager-coalesce policy. Deliberately naive.
class SetBuddy {
 public:
  SetBuddy(Range range, unsigned max_order) : range_(range), max_order_(max_order) {
    lists_.resize(max_order + 1);
    Addr cursor = range_.begin;
    while (cursor < range_.end) {
      unsigned order = max_order_;
      while (order > 0 &&
             (!is_aligned(cursor - range_.begin, bytes_of(order)) ||
              cursor + bytes_of(order) > range_.end)) {
        --order;
      }
      lists_[order].insert(cursor);
      free_bytes_ += bytes_of(order);
      cursor += bytes_of(order);
    }
  }

  std::optional<Addr> alloc(unsigned order) {
    unsigned found = order;
    while (found <= max_order_ && lists_[found].empty()) {
      ++found;
    }
    if (found > max_order_) {
      return std::nullopt;
    }
    const Addr block = *lists_[found].begin();
    lists_[found].erase(lists_[found].begin());
    for (unsigned o = found; o > order; --o) {
      lists_[o - 1].insert(block + bytes_of(o - 1));
    }
    free_bytes_ -= bytes_of(order);
    return block;
  }

  void free(Addr addr, unsigned order) {
    free_bytes_ += bytes_of(order);
    Addr block = addr;
    unsigned o = order;
    while (o < max_order_) {
      const Addr buddy = range_.begin + ((block - range_.begin) ^ bytes_of(o));
      if (buddy + bytes_of(o) > range_.end || !lists_[o].contains(buddy)) {
        break;
      }
      lists_[o].erase(buddy);
      block = std::min(block, buddy);
      ++o;
    }
    lists_[o].insert(block);
  }

  bool take(Addr addr, unsigned order) {
    if (!lists_[order].contains(addr)) {
      return false;
    }
    lists_[order].erase(addr);
    free_bytes_ -= bytes_of(order);
    return true;
  }

  [[nodiscard]] std::uint64_t free_bytes() const { return free_bytes_; }
  [[nodiscard]] const std::set<Addr>& list(unsigned o) const { return lists_[o]; }

 private:
  [[nodiscard]] static std::uint64_t bytes_of(unsigned o) { return kSmallPageSize << o; }

  Range range_;
  unsigned max_order_;
  std::uint64_t free_bytes_ = 0;
  std::vector<std::set<Addr>> lists_;
};

void expect_equivalent(const mm::BuddyAllocator& b, const SetBuddy& ref) {
  ASSERT_EQ(b.free_bytes(), ref.free_bytes());
  for (unsigned o = 0; o <= b.max_order(); ++o) {
    ASSERT_EQ(b.free_blocks(o), ref.list(o).size()) << "order " << o;
  }
  // Identical enumeration, block for block.
  std::vector<std::pair<Addr, unsigned>> got;
  b.for_each_free_block([&](Addr a, unsigned o) { got.emplace_back(a, o); });
  std::vector<std::pair<Addr, unsigned>> want;
  for (unsigned o = 0; o <= b.max_order(); ++o) {
    for (const Addr a : ref.list(o)) {
      want.emplace_back(a, o);
    }
  }
  ASSERT_EQ(got, want);
  ASSERT_TRUE(b.check_consistency());
}

TEST(MemMapDifferential, BuddyMatchesSetModel) {
  constexpr unsigned kMax = 10;
  const Range range{kBase, kBase + 64 * MiB};
  mm::BuddyAllocator buddy(range, kMax);
  SetBuddy ref(range, kMax);

  Rng rng(0x5eedULL);
  std::vector<std::pair<Addr, unsigned>> held;
  for (int i = 0; i < 30'000; ++i) {
    const std::uint64_t roll = rng.uniform(100);
    if (roll < 55) {
      // Skewed toward small orders, like the real fault mix.
      const unsigned order = static_cast<unsigned>(rng.uniform(kMax + 1)) / 2;
      const auto a = buddy.alloc(order);
      const auto r = ref.alloc(order);
      ASSERT_EQ(a.has_value(), r.has_value());
      if (a.has_value()) {
        ASSERT_EQ(a->addr, *r); // pop-lowest determinism, both models
        held.emplace_back(a->addr, order);
      }
    } else if (roll < 90 && !held.empty()) {
      const std::size_t k = rng.uniform(held.size());
      buddy.free(held[k].first, held[k].second);
      ref.free(held[k].first, held[k].second);
      held[k] = held.back();
      held.pop_back();
    } else {
      // take_free_block on a random existing free block (or a refused
      // miss on an allocated address — both paths must agree).
      const Addr addr = kBase + align_down(rng.uniform(64 * MiB), 4 * KiB);
      const unsigned order = static_cast<unsigned>(rng.uniform(4));
      const Addr base = kBase + align_down(addr - kBase, kSmallPageSize << order);
      const bool took = buddy.take_free_block(base, order);
      ASSERT_EQ(took, ref.take(base, order));
      if (took) {
        held.emplace_back(base, order);
      }
    }
    if (i % 2'000 == 0) {
      expect_equivalent(buddy, ref);
    }
  }
  expect_equivalent(buddy, ref);
  // Drain and confirm full coalescing back to pristine.
  for (const auto& [addr, order] : held) {
    buddy.free(addr, order);
    ref.free(addr, order);
  }
  expect_equivalent(buddy, ref);
  EXPECT_EQ(buddy.free_bytes(), 64 * MiB);
}

} // namespace
} // namespace hpmmap
