// Unit tests: demand-paging fault handler, THP (fault path, khugepaged,
// mlock splitting), HugeTLBfs pools, and the swap path.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "hw/bandwidth.hpp"
#include "hw/phys_mem.hpp"
#include "linux_mm/address_space.hpp"
#include "linux_mm/fault.hpp"
#include "linux_mm/hugetlbfs.hpp"
#include "linux_mm/memory_system.hpp"
#include "linux_mm/thp.hpp"
#include "sim/engine.hpp"

namespace hpmmap::mm {
namespace {

constexpr Addr kVa = 0x5000'0000'0000ull;

struct Fixture {
  hw::PhysicalMemory phys{2 * GiB, 2};
  hw::BandwidthModel bw{2, 5.6};
  CostModel costs{};
  MemorySystem ms{phys, bw, Rng(9), costs};
  sim::Engine engine;
  ThpService thp{ms, engine, [] { return 1.0; }};
  FaultHandler handler{ms, &thp, nullptr};
  AddressSpace as{1};

  Fixture() { as.set_zone_policy(AddressSpace::ZonePolicy::kSingle, 0, 2); }

  void add_vma(Addr begin, std::uint64_t len, bool thp_eligible, Prot prot = kProtRW) {
    Vma v;
    v.range = Range{begin, begin + len};
    v.prot = prot;
    v.kind = VmaKind::kAnon;
    v.thp_eligible = thp_eligible;
    ASSERT_EQ(as.vmas().insert(v), Errno::kOk);
  }
};

TEST(FaultHandler, NoVmaIsSegfault) {
  Fixture f;
  const FaultResult r = f.handler.handle(f.as, kVa, 0);
  EXPECT_EQ(r.err, Errno::kFault);
  EXPECT_EQ(r.kind, FaultKind::kInvalid);
}

TEST(FaultHandler, ProtNoneIsSegfault) {
  Fixture f;
  f.add_vma(kVa, 2 * MiB, false, Prot::kNone);
  const FaultResult r = f.handler.handle(f.as, kVa, 0);
  EXPECT_EQ(r.err, Errno::kFault);
}

TEST(FaultHandler, SmallFaultMapsAndCosts) {
  Fixture f;
  f.add_vma(kVa, 64 * KiB, false); // too small for THP
  const FaultResult r = f.handler.handle(f.as, kVa + 5000, 0);
  EXPECT_EQ(r.err, Errno::kOk);
  EXPECT_EQ(r.kind, FaultKind::kSmall);
  EXPECT_EQ(r.used, PageSize::k4K);
  // Idle-node small fault: Figure 2 territory (hundreds to a few
  // thousand cycles), never the large-page range.
  EXPECT_GT(r.cost, 500u);
  EXPECT_LT(r.cost, 50'000u);
  const auto t = f.as.page_table().walk(kVa + 5000);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->size, PageSize::k4K);
}

TEST(FaultHandler, RepeatFaultOnMappedPageIsCheapSpurious) {
  Fixture f;
  f.add_vma(kVa, 64 * KiB, false);
  (void)f.handler.handle(f.as, kVa, 0);
  const FaultResult r = f.handler.handle(f.as, kVa, 0);
  EXPECT_EQ(r.err, Errno::kOk);
  EXPECT_LT(r.cost, 5'000u);
}

TEST(FaultHandler, ThpEligibleRegionGetsLargePage) {
  Fixture f;
  f.add_vma(align_down(kVa, kLargePageSize), 8 * MiB, true);
  const FaultResult r = f.handler.handle(f.as, align_down(kVa, kLargePageSize) + 12345, 0);
  EXPECT_EQ(r.err, Errno::kOk);
  EXPECT_EQ(r.kind, FaultKind::kLarge);
  EXPECT_EQ(r.used, PageSize::k2M);
  // 2 MiB zeroing dominates: hundreds of thousands of cycles (Fig 2).
  EXPECT_GT(r.cost, 100'000u);
}

TEST(FaultHandler, UnalignedVmaHeadFallsBackToSmall) {
  Fixture f;
  // VMA starts 4K past alignment: the first aligned 2M region is not
  // fully covered at its head -> the §II-A alignment problem.
  const Addr base = align_down(kVa, kLargePageSize) + 4 * KiB;
  f.add_vma(base, kLargePageSize, true);
  const FaultResult r = f.handler.handle(f.as, base, 0);
  EXPECT_EQ(r.used, PageSize::k4K);
}

TEST(FaultHandler, SmallFaultCountsAsMergeFollowerWhenLocked) {
  Fixture f;
  f.add_vma(kVa, 64 * KiB, false);
  f.as.lock_until(1'000'000);
  const FaultResult r = f.handler.handle(f.as, kVa, /*now=*/200'000);
  EXPECT_EQ(r.kind, FaultKind::kMergeFollower);
  EXPECT_EQ(r.lock_wait, 800'000u);
  EXPECT_GE(r.cost, 800'000u);
}

TEST(FaultHandler, SwappedPagePaysDiskRead) {
  Fixture f;
  f.add_vma(kVa, 64 * KiB, false);
  (void)f.handler.handle(f.as, kVa, 0);
  // Evict (what Node::maybe_swap does).
  const auto t = f.as.page_table().walk(kVa);
  ASSERT_TRUE(t.has_value());
  f.as.page_table().unmap(kVa, PageSize::k4K);
  f.ms.free_pages(0, align_down(t->phys, kSmallPageSize), 0);
  f.as.mark_swapped(kVa);
  const FaultResult r = f.handler.handle(f.as, kVa, 0);
  EXPECT_EQ(r.err, Errno::kOk);
  EXPECT_GT(r.cost, 1'000'000u); // disk, not DRAM
  // One-shot: the mark is consumed.
  EXPECT_EQ(f.as.swapped_pages(), 0u);
}

TEST(FaultStats, RecordsByKind) {
  FaultStats s;
  s.record(FaultKind::kSmall, 100);
  s.record(FaultKind::kSmall, 200);
  s.record(FaultKind::kLarge, 1000);
  EXPECT_EQ(s.count[0], 2u);
  EXPECT_EQ(s.total_cycles[0], 300u);
  EXPECT_EQ(s.count[1], 1u);
}

// --- THP service -----------------------------------------------------------------

TEST(Thp, RegionEligibilityRules) {
  Fixture f;
  const Addr base = align_down(kVa, kLargePageSize);
  f.add_vma(base, 4 * MiB, true);
  const Vma* vma = f.as.vmas().find(base);
  ASSERT_NE(vma, nullptr);
  EXPECT_TRUE(f.thp.region_eligible(f.as, *vma, base + 123));
  // Existing small mapping in the region kills eligibility.
  ASSERT_EQ(f.as.page_table().map(base + 8 * KiB, 0, PageSize::k4K, kProtRW), Errno::kOk);
  EXPECT_FALSE(f.thp.region_eligible(f.as, *vma, base + 123));
  // Other regions unaffected.
  EXPECT_TRUE(f.thp.region_eligible(f.as, *vma, base + 2 * MiB));
}

TEST(Thp, LockedVmaNotEligible) {
  Fixture f;
  const Addr base = align_down(kVa, kLargePageSize);
  f.add_vma(base, 4 * MiB, true);
  auto pieces = f.as.vmas().remove(Range{base, base + 4 * MiB});
  for (auto& p : pieces) {
    p.locked = true;
    ASSERT_EQ(f.as.vmas().insert(p), Errno::kOk);
  }
  const Vma* vma = f.as.vmas().find(base);
  EXPECT_FALSE(f.thp.region_eligible(f.as, *vma, base));
}

TEST(Thp, MergeCompletesAndInstallsLargeLeaf) {
  Fixture f;
  f.thp.register_process(&f.as);
  const Addr base = align_down(kVa, kLargePageSize);
  f.add_vma(base, 2 * MiB, true);
  // Map 256 small pages so the region is a merge candidate.
  for (unsigned i = 0; i < 256; ++i) {
    const AllocOutcome out = f.ms.alloc_pages(0, 0);
    ASSERT_TRUE(out.ok);
    ASSERT_EQ(f.as.page_table().map(base + i * 4 * KiB, out.addr, PageSize::k4K, kProtRW),
              Errno::kOk);
  }
  f.thp.note_fallback(&f.as, base);
  f.thp.scan_once();
  f.engine.run_until(f.engine.now() + 1'000'000'000ull);
  EXPECT_EQ(f.thp.stats().merges_completed, 1u);
  const auto t = f.as.page_table().walk(base + 1 * MiB);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->size, PageSize::k2M);
  EXPECT_EQ(f.as.page_table().small_count_in_2m(base), 0u);
}

TEST(Thp, MergeLocksAddressSpaceWhileRunning) {
  Fixture f;
  f.thp.register_process(&f.as);
  const Addr base = align_down(kVa, kLargePageSize);
  f.add_vma(base, 2 * MiB, true);
  for (unsigned i = 0; i < 256; ++i) {
    const AllocOutcome out = f.ms.alloc_pages(0, 0);
    ASSERT_TRUE(out.ok);
    ASSERT_EQ(f.as.page_table().map(base + i * 4 * KiB, out.addr, PageSize::k4K, kProtRW),
              Errno::kOk);
  }
  f.thp.note_fallback(&f.as, base);
  f.thp.scan_once();
  // Step forward in small increments; the AS must be observed locked at
  // some point before the merge completes.
  bool saw_lock = false;
  for (int i = 0; i < 400 && f.thp.stats().merges_completed == 0; ++i) {
    f.engine.run_until(f.engine.now() + 100'000);
    saw_lock = saw_lock || f.as.locked_at(f.engine.now());
  }
  EXPECT_TRUE(saw_lock);
  EXPECT_GT(f.thp.stats().total_merge_lock_cycles, 0u);
}

TEST(Thp, MergeAbortsWhenRegionMunmapped) {
  Fixture f;
  f.thp.register_process(&f.as);
  const Addr base = align_down(kVa, kLargePageSize);
  f.add_vma(base, 2 * MiB, true);
  std::vector<Addr> frames;
  for (unsigned i = 0; i < 256; ++i) {
    const AllocOutcome out = f.ms.alloc_pages(0, 0);
    ASSERT_TRUE(out.ok);
    frames.push_back(out.addr);
    ASSERT_EQ(f.as.page_table().map(base + i * 4 * KiB, out.addr, PageSize::k4K, kProtRW),
              Errno::kOk);
  }
  const std::uint64_t free_before_merge = f.ms.free_bytes(0);
  f.thp.note_fallback(&f.as, base);
  f.thp.scan_once();
  // Remove the VMA before the merge completes.
  f.as.vmas().remove(Range{base, base + 2 * MiB});
  f.engine.run_until(f.engine.now() + 1'000'000'000ull);
  EXPECT_EQ(f.thp.stats().merges_completed, 0u);
  // The pre-allocated huge page went back: free memory did not leak.
  EXPECT_EQ(f.ms.free_bytes(0), free_before_merge);
}

TEST(Thp, UnregisterCancelsPendingWork) {
  Fixture f;
  f.thp.register_process(&f.as);
  f.thp.note_fallback(&f.as, align_down(kVa, kLargePageSize));
  f.thp.unregister_process(&f.as);
  f.thp.scan_once(); // must not touch the unregistered space
  f.engine.run_until(f.engine.now() + 1'000'000'000ull);
  EXPECT_EQ(f.thp.stats().merges_completed, 0u);
}

TEST(Thp, SplitForMlockBreaksLargePages) {
  Fixture f;
  const Addr base = align_down(kVa, kLargePageSize);
  f.add_vma(base, 4 * MiB, true);
  const AllocOutcome out = f.ms.alloc_pages(0, kLargePageOrder);
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(f.as.page_table().map(base, out.addr, PageSize::k2M, kProtRW), Errno::kOk);
  const unsigned splits = f.thp.split_for_mlock(f.as, Range{base, base + 2 * MiB});
  EXPECT_EQ(splits, 1u);
  const auto t = f.as.page_table().walk(base + 1 * MiB);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->size, PageSize::k4K); // §II-B: pinning splits THP pages
  EXPECT_EQ(f.thp.stats().split_on_mlock, 1u);
}

// --- HugeTLBfs -------------------------------------------------------------------

TEST(Hugetlb, BootReservationSizesPools) {
  Fixture f;
  HugetlbPool pool(f.ms, 256 * MiB);
  EXPECT_EQ(pool.total_pages(0), 128u);
  EXPECT_EQ(pool.total_pages(1), 128u);
  EXPECT_EQ(pool.free_pages(0), 128u);
  EXPECT_EQ(pool.stats().pool_pages_total, 256u);
}

TEST(Hugetlb, AllocPrefersRequestedZoneThenSpills) {
  Fixture f;
  HugetlbPool pool(f.ms, 8 * MiB); // 4 pages per zone
  for (int i = 0; i < 4; ++i) {
    const auto page = pool.alloc_page(0);
    ASSERT_TRUE(page.has_value());
    EXPECT_EQ(page->second, 0u);
  }
  const auto spilled = pool.alloc_page(0);
  ASSERT_TRUE(spilled.has_value());
  EXPECT_EQ(spilled->second, 1u); // zone 0 empty -> zone 1
}

TEST(Hugetlb, ExhaustionReturnsNullopt) {
  Fixture f;
  HugetlbPool pool(f.ms, 4 * MiB);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.alloc_page(0).has_value());
  }
  EXPECT_FALSE(pool.alloc_page(0).has_value());
  EXPECT_EQ(pool.stats().pool_exhausted, 1u);
}

TEST(Hugetlb, FreeReturnsToPool) {
  Fixture f;
  HugetlbPool pool(f.ms, 4 * MiB);
  const auto page = pool.alloc_page(1);
  ASSERT_TRUE(page.has_value());
  pool.free_page(page->second, page->first);
  EXPECT_EQ(pool.free_pages(1), 2u);
}

TEST(Hugetlb, FaultOnHugetlbVmaUsesPoolPage) {
  Fixture f;
  HugetlbPool pool(f.ms, 64 * MiB);
  FaultHandler handler(f.ms, &f.thp, &pool);
  Vma v;
  const Addr base = align_down(kVa, kLargePageSize);
  v.range = Range{base, base + 4 * MiB};
  v.prot = kProtRW;
  v.kind = VmaKind::kHugetlb;
  ASSERT_EQ(f.as.vmas().insert(v), Errno::kOk);
  const std::uint64_t pool_before = pool.free_pages(0);
  const FaultResult r = handler.handle(f.as, base + 100, 0);
  EXPECT_EQ(r.err, Errno::kOk);
  EXPECT_EQ(r.kind, FaultKind::kLarge);
  EXPECT_EQ(r.used, PageSize::k2M);
  EXPECT_EQ(pool.free_pages(0), pool_before - 1);
  // HugeTLBfs faults are pricier than THP faults (slower zeroing, extra
  // reservation work) — the Figure 3 vs Figure 2 "Large" relation.
  EXPECT_GT(r.cost, 300'000u);
}

TEST(Hugetlb, PoolMemoryIsLoadInsensitive) {
  // Large-fault cost barely moves under bandwidth pressure (the pool is
  // never contended for capacity; only the zeroing shares the channel).
  Fixture f;
  HugetlbPool pool(f.ms, 64 * MiB);
  FaultHandler handler(f.ms, &f.thp, &pool);
  Vma v;
  const Addr base = align_down(kVa, kLargePageSize);
  v.range = Range{base, base + 32 * MiB};
  v.prot = kProtRW;
  v.kind = VmaKind::kHugetlb;
  ASSERT_EQ(f.as.vmas().insert(v), Errno::kOk);

  RunningStats idle;
  for (std::uint64_t i = 0; i < 8; ++i) {
    idle.add(static_cast<double>(handler.handle(f.as, base + i * 2 * MiB, 0).cost));
  }
  // Competing demand on the zone.
  auto c = f.bw.register_consumer();
  f.bw.set_demand(c, 0, 12.0);
  RunningStats loaded;
  for (std::uint64_t i = 8; i < 16; ++i) {
    loaded.add(static_cast<double>(handler.handle(f.as, base + i * 2 * MiB, 0).cost));
  }
  EXPECT_LT(loaded.mean(), idle.mean() * 8.0); // grows, but no reclaim blowup
  EXPECT_GT(loaded.mean(), idle.mean());       // and it does share the channel
}

} // namespace
} // namespace hpmmap::mm
