// Unit tests: hardware models (machines, physical memory/offlining,
// TLB reach, bandwidth contention).
#include <gtest/gtest.h>

#include "hw/bandwidth.hpp"
#include "hw/machine.hpp"
#include "hw/phys_mem.hpp"
#include "hw/tlb.hpp"

namespace hpmmap::hw {
namespace {

// --- machines ---------------------------------------------------------------

TEST(Machine, DellR415MatchesPaperTestbed) {
  const MachineSpec m = dell_r415();
  EXPECT_EQ(m.total_cores(), 12u);       // 2x 6-core Opteron 4174
  EXPECT_EQ(m.ram_bytes, 16 * GiB);
  EXPECT_EQ(m.numa_zones, 2u);
  EXPECT_DOUBLE_EQ(m.clock_hz, 2.3e9);
  EXPECT_EQ(m.ram_per_zone(), 8 * GiB);
}

TEST(Machine, SandiaNodeMatchesPaperTestbed) {
  const MachineSpec m = sandia_xeon_node();
  EXPECT_EQ(m.total_cores(), 8u);        // 2x 4-core Xeon X5570
  EXPECT_EQ(m.ram_bytes, 24 * GiB);
  EXPECT_EQ(m.numa_zones, 2u);
}

TEST(Machine, SecondsCyclesRoundTrip) {
  const MachineSpec m = dell_r415();
  EXPECT_DOUBLE_EQ(m.seconds(m.cycles(1.5)), 1.5);
  EXPECT_EQ(m.cycles(1.0), static_cast<Cycles>(2.3e9));
}

// --- physical memory / offlining --------------------------------------------

TEST(PhysicalMemory, LayoutSplitsEvenly) {
  PhysicalMemory pm(16 * GiB, 2);
  ASSERT_EQ(pm.zones().size(), 2u);
  EXPECT_EQ(pm.zones()[0].range, (Range{0, 8 * GiB}));
  EXPECT_EQ(pm.zones()[1].range, (Range{8 * GiB, 16 * GiB}));
  EXPECT_EQ(pm.sections().size(), 16 * GiB / kMemorySectionSize);
  EXPECT_EQ(pm.online_bytes(0), 8 * GiB);
}

TEST(PhysicalMemory, ZoneOf) {
  PhysicalMemory pm(16 * GiB, 2);
  EXPECT_EQ(pm.zone_of(0), 0u);
  EXPECT_EQ(pm.zone_of(8 * GiB - 1), 0u);
  EXPECT_EQ(pm.zone_of(8 * GiB), 1u);
  EXPECT_EQ(pm.zone_of(16 * GiB - 1), 1u);
}

TEST(PhysicalMemory, OfflineTakesFromTopOfZone) {
  PhysicalMemory pm(16 * GiB, 2);
  const auto ranges = pm.offline_bytes(0, 6 * GiB);
  ASSERT_EQ(ranges.size(), 1u); // contiguous top block
  EXPECT_EQ(ranges[0], (Range{2 * GiB, 8 * GiB}));
  EXPECT_EQ(pm.online_bytes(0), 2 * GiB);
  EXPECT_EQ(pm.offlined_bytes(0), 6 * GiB);
  EXPECT_TRUE(pm.is_offline(5 * GiB));
  EXPECT_FALSE(pm.is_offline(1 * GiB));
}

TEST(PhysicalMemory, OfflineRoundsUpToSections) {
  PhysicalMemory pm(16 * GiB, 2);
  const auto ranges = pm.offline_bytes(0, kMemorySectionSize / 2);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].size(), kMemorySectionSize);
}

TEST(PhysicalMemory, OfflineTooMuchFails) {
  PhysicalMemory pm(16 * GiB, 2);
  EXPECT_TRUE(pm.offline_bytes(0, 9 * GiB).empty());
  EXPECT_EQ(pm.online_bytes(0), 8 * GiB); // untouched
}

TEST(PhysicalMemory, OnlineRestores) {
  PhysicalMemory pm(16 * GiB, 2);
  const auto ranges = pm.offline_bytes(1, 4 * GiB);
  EXPECT_EQ(pm.online_bytes(1), 4 * GiB);
  pm.online_ranges(ranges);
  EXPECT_EQ(pm.online_bytes(1), 8 * GiB);
  EXPECT_FALSE(pm.is_offline(15 * GiB));
}

TEST(PhysicalMemory, RepeatedOfflineConsumesDownward) {
  PhysicalMemory pm(16 * GiB, 2);
  const auto first = pm.offline_bytes(0, 2 * GiB);
  const auto second = pm.offline_bytes(0, 2 * GiB);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(first[0].begin, 6 * GiB);
  EXPECT_EQ(second[0].begin, 4 * GiB);
}

TEST(PhysicalMemoryDeath, DoubleOnlineAborts) {
  PhysicalMemory pm(16 * GiB, 2);
  const auto ranges = pm.offline_bytes(0, 1 * GiB);
  pm.online_ranges(ranges);
  EXPECT_DEATH(pm.online_ranges(ranges), "double-online");
}

// --- TLB model -----------------------------------------------------------------

TEST(TlbModel, NoMissWhenWorkingSetFits) {
  TlbModel tlb(dell_r415().tlb);
  MappingMix mix;
  mix.bytes_4k = 64 * KiB; // trivially covered
  EXPECT_EQ(tlb.miss_rate(mix, 0.9), 0.0);
  EXPECT_EQ(tlb.translation_cycles_per_access(mix, 0.9), 0.0);
}

TEST(TlbModel, EmptyMixCostsNothing) {
  TlbModel tlb(dell_r415().tlb);
  EXPECT_EQ(tlb.translation_cycles_per_access(MappingMix{}, 0.9), 0.0);
}

TEST(TlbModel, LargePagesBeatSmallPagesAtScale) {
  TlbModel tlb(dell_r415().tlb);
  MappingMix small;
  small.bytes_4k = 2 * GiB;
  MappingMix large;
  large.bytes_2m = 2 * GiB;
  const double cost_small = tlb.translation_cycles_per_access(small, 0.95);
  const double cost_large = tlb.translation_cycles_per_access(large, 0.95);
  EXPECT_GT(cost_small, cost_large * 3.0); // the paper's whole premise
}

TEST(TlbModel, MissRateMonotonicInWorkingSet) {
  TlbModel tlb(dell_r415().tlb);
  double prev = -1.0;
  for (std::uint64_t ws = 64 * MiB; ws <= 4 * GiB; ws *= 2) {
    MappingMix mix;
    mix.bytes_4k = ws;
    const double rate = tlb.miss_rate(mix, 0.95);
    EXPECT_GE(rate, prev);
    prev = rate;
  }
}

TEST(TlbModel, HigherLocalityLowersCost) {
  TlbModel tlb(dell_r415().tlb);
  MappingMix mix;
  mix.bytes_4k = 1 * GiB;
  EXPECT_LT(tlb.translation_cycles_per_access(mix, 0.99),
            tlb.translation_cycles_per_access(mix, 0.80));
}

TEST(TlbModel, LargeFraction) {
  MappingMix mix;
  mix.bytes_4k = 1 * GiB;
  mix.bytes_2m = 3 * GiB;
  EXPECT_DOUBLE_EQ(mix.large_fraction(), 0.75);
  EXPECT_EQ(MappingMix{}.large_fraction(), 0.0);
}

// --- bandwidth -------------------------------------------------------------------

TEST(Bandwidth, NoContentionBelowCapacity) {
  BandwidthModel bw(2, 5.6);
  auto c = bw.register_consumer();
  bw.set_demand(c, 0, 3.0);
  EXPECT_DOUBLE_EQ(bw.contention_factor(0), 1.0);
  EXPECT_DOUBLE_EQ(bw.contention_factor(1), 1.0);
}

TEST(Bandwidth, ContentionGrowsWithOversubscription) {
  BandwidthModel bw(2, 5.0);
  auto c1 = bw.register_consumer();
  auto c2 = bw.register_consumer();
  bw.set_demand(c1, 0, 4.0);
  bw.set_demand(c2, 0, 6.0);
  EXPECT_DOUBLE_EQ(bw.contention_factor(0), 2.0); // 10 over 5
}

TEST(Bandwidth, EffectiveRateProportionalShare) {
  BandwidthModel bw(1, 8.0);
  auto c = bw.register_consumer();
  bw.set_demand(c, 0, 8.0);
  // A newcomer wanting 8 against 8 existing on an 8-capacity channel
  // gets half the channel.
  EXPECT_DOUBLE_EQ(bw.effective_rate(0, 8.0), 4.0);
}

TEST(Bandwidth, EffectiveRateUnimpairedWhenIdle) {
  BandwidthModel bw(1, 8.0);
  EXPECT_DOUBLE_EQ(bw.effective_rate(0, 6.0), 6.0);
}

TEST(Bandwidth, RetargetingDemandReplaces) {
  BandwidthModel bw(1, 10.0);
  auto c = bw.register_consumer();
  bw.set_demand(c, 0, 9.0);
  bw.set_demand(c, 0, 2.0); // replaces, not adds
  EXPECT_DOUBLE_EQ(bw.total_demand(0), 2.0);
}

TEST(Bandwidth, ClearDemandRemovesAllZones) {
  BandwidthModel bw(2, 10.0);
  auto c = bw.register_consumer();
  bw.set_demand(c, 0, 5.0);
  bw.set_demand(c, 1, 7.0);
  bw.clear_demand(c);
  EXPECT_DOUBLE_EQ(bw.total_demand(0), 0.0);
  EXPECT_DOUBLE_EQ(bw.total_demand(1), 0.0);
}

TEST(Bandwidth, ZonesAreIndependent) {
  BandwidthModel bw(2, 5.0);
  auto c = bw.register_consumer();
  bw.set_demand(c, 0, 50.0);
  EXPECT_GT(bw.contention_factor(0), 1.0);
  EXPECT_DOUBLE_EQ(bw.contention_factor(1), 1.0);
}

} // namespace
} // namespace hpmmap::hw
