// Unit tests: page cache, watermarks, reclaim, and honest compaction.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "hw/bandwidth.hpp"
#include "hw/phys_mem.hpp"
#include "linux_mm/memory_system.hpp"

namespace hpmmap::mm {
namespace {

struct Fixture {
  hw::PhysicalMemory phys{2 * GiB, 2}; // 1 GiB per zone
  hw::BandwidthModel bw{2, 5.6};
  CostModel costs{};
  MemorySystem ms{phys, bw, Rng(77), costs};
};

TEST(PageCache, GrowAndShrinkBalance) {
  Fixture f;
  PageCache& cache = f.ms.cache(0);
  const std::uint64_t before = f.ms.free_bytes(0);
  const std::uint64_t got = cache.grow(64 * MiB, 2, false);
  EXPECT_EQ(got, 64 * MiB);
  EXPECT_EQ(f.ms.free_bytes(0), before - 64 * MiB);
  const auto shrink = cache.shrink(64 * MiB);
  EXPECT_EQ(shrink.bytes_freed, 64 * MiB);
  EXPECT_EQ(f.ms.free_bytes(0), before);
  EXPECT_EQ(cache.cached_bytes(), 0u);
}

TEST(PageCache, DirtyFractionTracksWriteback) {
  Fixture f;
  PageCache& cache = f.ms.cache(0);
  cache.set_dirty_fraction(0.5);
  cache.grow(16 * MiB, 0, false);
  const auto shrink = cache.shrink(16 * MiB);
  const double dirty_share =
      static_cast<double>(shrink.writeback_blocks) /
      static_cast<double>(shrink.writeback_blocks + shrink.clean_blocks);
  EXPECT_NEAR(dirty_share, 0.5, 0.05);
}

TEST(PageCache, ForcedDirtyAlwaysWritesBack) {
  Fixture f;
  PageCache& cache = f.ms.cache(0);
  cache.grow(4 * MiB, 0, /*dirty=*/true);
  const auto shrink = cache.shrink(4 * MiB);
  EXPECT_EQ(shrink.clean_blocks, 0u);
  EXPECT_GT(shrink.writeback_blocks, 0u);
}

TEST(PageCache, RespectsFreeFloor) {
  Fixture f;
  PageCache& cache = f.ms.cache(0);
  cache.set_free_floor(512 * MiB);
  cache.grow(2 * GiB, 2, false); // wants more than allowed
  EXPECT_GE(f.ms.free_bytes(0), 512 * MiB - 256 * KiB);
}

TEST(PageCache, BlockContainingAndRelocate) {
  Fixture f;
  PageCache& cache = f.ms.cache(0);
  cache.grow(BuddyAllocator::order_bytes(3), 3, false);
  // Find the block it allocated.
  bool found = false;
  for (Addr probe = 0; probe < 64 * MiB && !found; probe += 4 * KiB) {
    if (auto blk = cache.block_containing(probe)) {
      found = true;
      EXPECT_EQ(blk->second, 3u);
      // Relocate it and verify the index moved.
      cache.relocate(blk->first, blk->first + 32 * MiB);
      EXPECT_FALSE(cache.block_containing(blk->first).has_value());
      EXPECT_TRUE(cache.block_containing(blk->first + 32 * MiB).has_value());
    }
  }
  EXPECT_TRUE(found);
}

TEST(PageCache, ClearReturnsEverything) {
  Fixture f;
  PageCache& cache = f.ms.cache(1);
  const std::uint64_t before = f.ms.free_bytes(1);
  cache.grow(32 * MiB, 1, false);
  cache.clear();
  EXPECT_EQ(f.ms.free_bytes(1), before);
}

TEST(MemorySystem, FastPathAllocSucceeds) {
  Fixture f;
  const AllocOutcome out = f.ms.alloc_pages(0, 0);
  EXPECT_TRUE(out.ok);
  EXPECT_FALSE(out.entered_reclaim);
  f.ms.free_pages(0, out.addr, 0);
}

TEST(MemorySystem, WatermarksComputedFromOnlineBytes) {
  Fixture f;
  EXPECT_FALSE(f.ms.below_low_watermark(0));
  // Eat nearly everything: 1 GiB zone, low watermark 4% = ~41 MiB.
  std::vector<Addr> blocks;
  while (f.ms.free_bytes(0) > 30 * MiB) {
    auto a = f.ms.buddy(0).alloc(10);
    if (!a.has_value()) {
      break;
    }
    blocks.push_back(a->addr);
  }
  EXPECT_TRUE(f.ms.below_low_watermark(0));
  for (Addr a : blocks) {
    f.ms.free_pages(0, a, 10);
  }
  EXPECT_FALSE(f.ms.below_low_watermark(0));
}

TEST(MemorySystem, ReclaimShrinksCacheWhenLow) {
  Fixture f;
  // Fill most of zone 0 with cache, then allocate to the watermark.
  f.ms.cache(0).grow(900 * MiB, 3, false);
  std::vector<Addr> anon;
  while (!f.ms.below_low_watermark(0)) {
    auto a = f.ms.buddy(0).alloc(8);
    if (!a.has_value()) {
      break;
    }
    anon.push_back(a->addr);
  }
  const std::uint64_t cache_before = f.ms.cache(0).cached_bytes();
  const AllocOutcome out = f.ms.alloc_pages(0, 0, /*allow_reclaim=*/true);
  EXPECT_TRUE(out.ok);
  EXPECT_TRUE(out.entered_reclaim);
  EXPECT_LT(f.ms.cache(0).cached_bytes(), cache_before);
}

TEST(MemorySystem, OpportunisticPathRefusesSlowWork) {
  Fixture f;
  f.ms.cache(0).grow(2 * GiB, 3, false); // cache takes everything above floor
  // Now grab the remaining free memory so we are below the low watermark.
  std::vector<Addr> anon;
  while (!f.ms.below_low_watermark(0)) {
    auto a = f.ms.buddy(0).alloc(8);
    if (!a.has_value()) {
      break;
    }
    anon.push_back(a->addr);
  }
  const AllocOutcome out = f.ms.alloc_pages(0, 0, /*allow_reclaim=*/false);
  EXPECT_FALSE(out.ok);
  EXPECT_FALSE(out.entered_reclaim);
}

TEST(MemorySystem, KswapdBalancesTowardHighWatermark) {
  Fixture f;
  f.ms.cache(0).grow(900 * MiB, 3, false);
  std::vector<Addr> anon;
  while (!f.ms.below_low_watermark(0)) {
    auto a = f.ms.buddy(0).alloc(8);
    if (!a.has_value()) {
      break;
    }
    anon.push_back(a->addr);
  }
  const std::uint64_t freed = f.ms.kswapd_balance(0);
  EXPECT_GT(freed, 0u);
  EXPECT_FALSE(f.ms.below_low_watermark(0));
  EXPECT_EQ(f.ms.kswapd_balance(0), 0u); // already balanced
}

TEST(MemorySystem, CompactionAssemblesContiguous2M) {
  Fixture f;
  // Build the canonical compaction scenario: every 2M window holds
  // movable cache blocks plus a small free hole — nothing contiguous,
  // nothing unmovable.
  PageCache& cache = f.ms.cache(0);
  cache.set_free_floor(0);
  BuddyAllocator& buddy = f.ms.buddy(0);
  std::vector<Addr> pages;
  while (auto a = buddy.alloc(0)) {
    pages.push_back(a->addr);
  }
  // Shuffle so the cache LRU order is scattered: reclaim then frees
  // non-contiguous pages and cannot substitute for compaction.
  Rng shuffler(123);
  std::shuffle(pages.begin(), pages.end(), shuffler);
  for (Addr p : pages) {
    // Free one 64K-aligned hole per 2M window; adopt the rest as cache.
    if ((p % kLargePageSize) < 64 * KiB) {
      buddy.free(p, 0);
    } else {
      cache.adopt(p, 0, false);
    }
  }
  EXPECT_FALSE(buddy.can_alloc(kLargePageOrder));
  const AllocOutcome out = f.ms.alloc_pages(0, kLargePageOrder, /*allow_reclaim=*/true);
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(out.entered_compaction);
  EXPECT_GT(out.compaction_migrated_bytes, 0u);
  EXPECT_TRUE(is_aligned(out.addr, kLargePageSize));
  // The block is genuinely ours: freeing it round-trips cleanly.
  f.ms.free_pages(0, out.addr, kLargePageOrder);
  EXPECT_TRUE(f.ms.buddy(0).check_consistency());
}

TEST(MemorySystem, CompactionFailsAgainstUnmovablePages) {
  Fixture f;
  // Shatter zone 0 with *unmovable* allocations: every 2M window is
  // polluted, so compaction cannot assemble anything.
  std::vector<Addr> pins;
  const Range zr = f.ms.buddy(0).range();
  for (Addr w = zr.begin; w + kLargePageSize <= zr.end; w += kLargePageSize) {
    auto a = f.ms.buddy(0).alloc(0);
    if (!a.has_value()) {
      break;
    }
    pins.push_back(a->addr); // buddy pops lowest-first: pollutes windows in order
  }
  // pins now occupy the first pages of the zone contiguously; spread is
  // imperfect, but the prefix windows are definitely polluted. Ask only
  // whether a successful alloc, if any, is properly aligned and never
  // overlaps a pinned page.
  const AllocOutcome out = f.ms.alloc_pages(0, kLargePageOrder, /*allow_reclaim=*/true);
  if (out.ok) {
    const Range got{out.addr, out.addr + kLargePageSize};
    for (Addr p : pins) {
      EXPECT_FALSE(got.contains(p));
    }
  }
}

TEST(MemorySystem, CompactionDefersAfterFailure) {
  Fixture f;
  // Make compaction impossible: pin unmovable pages everywhere.
  while (f.ms.buddy(0).alloc(0).has_value()) {
  }
  AllocOutcome first = f.ms.alloc_pages(0, kLargePageOrder, /*allow_reclaim=*/true);
  EXPECT_FALSE(first.ok);
  AllocOutcome second = f.ms.alloc_pages(0, kLargePageOrder, /*allow_reclaim=*/true);
  EXPECT_FALSE(second.ok);
  EXPECT_TRUE(second.compaction_deferred); // fail-fast after a failed attempt
}

TEST(MemorySystem, AllocCyclesScaleWithWork) {
  Fixture f;
  AllocOutcome fast;
  fast.ok = true;
  const Cycles fast_cost = f.ms.alloc_cycles(fast, 0);
  AllocOutcome reclaim = fast;
  reclaim.entered_reclaim = true;
  reclaim.reclaim_clean_blocks = 64;
  const Cycles reclaim_cost = f.ms.alloc_cycles(reclaim, 0);
  EXPECT_GT(reclaim_cost, fast_cost + f.ms.costs().reclaim_batch_base);
  AllocOutcome writeback = reclaim;
  writeback.reclaim_writeback_blocks = 8;
  const Cycles wb_cost = f.ms.alloc_cycles(writeback, 0);
  EXPECT_GT(wb_cost, reclaim_cost + f.ms.costs().reclaim_writeback / 2);
}

TEST(MemorySystem, ZeroCostDegradesUnderContention) {
  Fixture f;
  const Cycles idle = f.ms.zero_cost(0, 2 * MiB, 6.0);
  auto c = f.bw.register_consumer();
  f.bw.set_demand(c, 0, 20.0); // saturate the channel
  const Cycles loaded = f.ms.zero_cost(0, 2 * MiB, 6.0);
  EXPECT_GT(loaded, idle * 2);
}

TEST(MemorySystem, FallbackZonePicksMostFree) {
  Fixture f;
  // Drain zone 0.
  while (f.ms.buddy(0).alloc(10).has_value()) {
  }
  EXPECT_EQ(f.ms.fallback_zone(0), 1u);
}

TEST(MemorySystem, RebuildAfterOffline) {
  hw::PhysicalMemory phys(2 * GiB, 2);
  hw::BandwidthModel bw(2, 5.6);
  CostModel costs;
  (void)phys.offline_bytes(0, 512 * MiB);
  MemorySystem ms(phys, bw, Rng(5), costs);
  EXPECT_EQ(ms.buddy(0).total_bytes(), 512 * MiB);
  EXPECT_EQ(ms.buddy(1).total_bytes(), 1 * GiB);
}

} // namespace
} // namespace hpmmap::mm
