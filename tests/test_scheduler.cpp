// Unit tests: the water-filling CPU contention model.
#include <gtest/gtest.h>

#include <vector>

#include "os/scheduler.hpp"

namespace hpmmap::os {
namespace {

TEST(Scheduler, IdleMachineHasUnitDilation) {
  Scheduler s(12);
  EXPECT_DOUBLE_EQ(s.dilation(0), 1.0);
  EXPECT_DOUBLE_EQ(s.dilation(-1), 1.0);
  EXPECT_DOUBLE_EQ(s.oversubscription(), 1.0);
}

TEST(Scheduler, SinglePinnedThreadNoDilation) {
  Scheduler s(12);
  s.add_thread(0, 1.0);
  EXPECT_DOUBLE_EQ(s.dilation(0), 1.0);
  EXPECT_DOUBLE_EQ(s.dilation(1), 1.0);
}

TEST(Scheduler, TwoPinnedOnSameCoreShare) {
  Scheduler s(12);
  s.add_thread(3, 1.0);
  s.add_thread(3, 1.0);
  EXPECT_DOUBLE_EQ(s.dilation(3), 2.0);
  EXPECT_DOUBLE_EQ(s.dilation(0), 1.0);
}

TEST(Scheduler, UnpinnedLoadFillsIdleCoresFirst) {
  // Profile A at 8 app cores: 8 pinned + 4 build jobs (duty 0.6) on 12
  // cores. The builds fit on the 4 idle cores: the app sees no dilation.
  Scheduler s(12);
  for (int c = 0; c < 8; ++c) {
    s.add_thread(c, 1.0);
  }
  for (int j = 0; j < 4; ++j) {
    s.add_thread(-1, 0.6);
  }
  EXPECT_DOUBLE_EQ(s.dilation(0), 1.0);
  EXPECT_DOUBLE_EQ(s.dilation(-1), 1.0); // water level 0.6 < 1
}

TEST(Scheduler, OvercommitDilatesEveryone) {
  // Profile B at 8 app cores: 8 pinned + 16 build jobs on 12 cores.
  Scheduler s(12);
  for (int c = 0; c < 8; ++c) {
    s.add_thread(c, 1.0);
  }
  for (int j = 0; j < 16; ++j) {
    s.add_thread(-1, 0.6);
  }
  // Water level L solves 4L + 8(L-1) = 9.6 -> L = 17.6/12 ~= 1.467:
  // the builds spill past the idle cores and dilate the app too.
  EXPECT_NEAR(s.dilation(-1), 17.6 / 12.0, 1e-9);
  EXPECT_NEAR(s.dilation(0), 17.6 / 12.0, 1e-9);
  EXPECT_GT(s.oversubscription(), 1.0);
}

TEST(Scheduler, WaterLevelMatchesClosedForm) {
  // 4 cores, 2 pinned (1.0 each), unpinned demand 4.0:
  // level L solves 2*(L-0) + 2*(L-1) = 4 -> L = 1.5.
  Scheduler s(4);
  s.add_thread(0, 1.0);
  s.add_thread(1, 1.0);
  for (int i = 0; i < 4; ++i) {
    s.add_thread(-1, 1.0);
  }
  EXPECT_NEAR(s.dilation(-1), 1.5, 1e-9);
  EXPECT_NEAR(s.dilation(0), 1.5, 1e-9);
}

TEST(Scheduler, RemoveThreadRestoresState) {
  Scheduler s(4);
  const auto id = s.add_thread(0, 1.0);
  const auto id2 = s.add_thread(0, 1.0);
  EXPECT_DOUBLE_EQ(s.dilation(0), 2.0);
  s.remove_thread(id2);
  EXPECT_DOUBLE_EQ(s.dilation(0), 1.0);
  s.remove_thread(id);
  EXPECT_DOUBLE_EQ(s.total_weight(), 0.0);
}

TEST(Scheduler, SetWeightAdjustsLoad) {
  Scheduler s(2);
  const auto id = s.add_thread(-1, 1.0);
  s.add_thread(0, 1.0);
  s.add_thread(1, 1.0);
  EXPECT_DOUBLE_EQ(s.dilation(0), 1.5); // 3 demand on 2 cores
  s.set_weight(id, 0.0);
  EXPECT_DOUBLE_EQ(s.dilation(0), 1.0);
}

TEST(Scheduler, OversubscriptionFloorsAtOne) {
  Scheduler s(8);
  s.add_thread(0, 1.0);
  EXPECT_DOUBLE_EQ(s.oversubscription(), 1.0);
}

TEST(Scheduler, DutyCycleWeightsCount) {
  Scheduler s(2);
  for (int i = 0; i < 10; ++i) {
    s.add_thread(-1, 0.1); // ten 10%-duty jobs = 1 core of demand
  }
  EXPECT_DOUBLE_EQ(s.dilation(-1), 1.0);
  EXPECT_DOUBLE_EQ(s.total_weight(), 1.0);
}

TEST(SchedulerDeath, BadCoreAborts) {
  Scheduler s(4);
  EXPECT_DEATH((void)s.add_thread(4, 1.0), "core out of range");
}

TEST(SchedulerDeath, DoubleRemoveAborts) {
  Scheduler s(4);
  const auto id = s.add_thread(0, 1.0);
  s.remove_thread(id);
  // The generation check catches the stale handle even though the slot
  // still exists (it was recycled into the free list).
  EXPECT_DEATH(s.remove_thread(id), "stale thread id");
}

TEST(Scheduler, SlotTableBoundedUnderChurn) {
  // Kernel-build churn: thousands of short-lived jobs, never more than 8
  // alive. The slot table must track peak concurrency, not lifetime count.
  Scheduler s(12);
  std::vector<Scheduler::ThreadId> live;
  for (int i = 0; i < 10000; ++i) {
    live.push_back(s.add_thread(-1, 0.6));
    if (live.size() > 8) {
      s.remove_thread(live.front());
      live.erase(live.begin());
    }
  }
  EXPECT_EQ(s.live_threads(), 8u);
  EXPECT_LE(s.thread_slots(), 16u); // bounded by peak, not by 10000
  for (const auto& id : live) {
    s.remove_thread(id);
  }
  EXPECT_EQ(s.live_threads(), 0u);
  // 10k adds/removes of 0.6 accumulate float dust, not real weight.
  EXPECT_NEAR(s.total_weight(), 0.0, 1e-9);
}

TEST(Scheduler, RecycledSlotKeepsAccountingExact) {
  Scheduler s(4);
  const auto a = s.add_thread(2, 1.0);
  s.remove_thread(a);
  const auto b = s.add_thread(2, 0.5); // reuses a's slot, new generation
  EXPECT_EQ(b.id, a.id);
  EXPECT_NE(b.gen, a.gen);
  EXPECT_DOUBLE_EQ(s.total_weight(), 0.5);
  s.set_weight(b, 1.0);
  EXPECT_DOUBLE_EQ(s.dilation(2), 1.0);
  s.remove_thread(b);
  EXPECT_DOUBLE_EQ(s.total_weight(), 0.0);
}

} // namespace
} // namespace hpmmap::os
