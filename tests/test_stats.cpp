// Unit tests: statistics utilities.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace hpmmap {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stdev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, MinMaxSum) {
  RunningStats s;
  s.add(3.0);
  s.add(-1.0);
  s.add(10.0);
  EXPECT_EQ(s.min(), -1.0);
  EXPECT_EQ(s.max(), 10.0);
  EXPECT_EQ(s.sum(), 12.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 3.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.mean(), mean);
  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.mean(), mean);
}

TEST(RunningStats, NumericallyStableForLargeCycleCounts) {
  RunningStats s;
  // Cycle counts around 1e13 with small relative spread.
  for (int i = 0; i < 1000; ++i) {
    s.add(1e13 + i);
  }
  EXPECT_NEAR(s.mean(), 1e13 + 499.5, 1.0);
  EXPECT_GT(s.variance(), 0.0);
}

TEST(Samples, PercentileSingle) {
  Samples s;
  s.add(42.0);
  EXPECT_EQ(s.percentile(0), 42.0);
  EXPECT_EQ(s.percentile(50), 42.0);
  EXPECT_EQ(s.percentile(100), 42.0);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
}

TEST(Samples, PercentileAfterMoreAdds) {
  Samples s;
  s.add(1.0);
  EXPECT_EQ(s.percentile(50), 1.0);
  s.add(3.0); // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(s.percentile(50), 2.0);
}

TEST(Samples, MeanStdev) {
  Samples s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stdev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Samples, EmptySafe) {
  Samples s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stdev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
}

// Deterministic LCG (MMIX constants) so the P² accuracy checks are
// reproducible without seeding std::mt19937 differently per platform.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  double uniform01() noexcept {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state_ >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

TEST(P2Quantile, EmptyIsZero) {
  P2Quantile q(0.5);
  EXPECT_EQ(q.count(), 0u);
  EXPECT_EQ(q.value(), 0.0);
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  // With fewer than five samples P² stores them and interpolates the
  // sorted set directly, so small streams stay exact.
  P2Quantile median(0.5);
  median.add(30.0);
  median.add(10.0);
  median.add(20.0);
  EXPECT_DOUBLE_EQ(median.value(), 20.0);

  P2Quantile q95(0.95);
  q95.add(1.0);
  q95.add(2.0);
  EXPECT_NEAR(q95.value(), 1.95, 1e-12);
}

TEST(P2Quantile, MedianOfUniformStream) {
  P2Quantile median(0.5);
  Lcg rng(7);
  for (int i = 0; i < 20000; ++i) {
    median.add(rng.uniform01());
  }
  EXPECT_EQ(median.count(), 20000u);
  EXPECT_NEAR(median.value(), 0.5, 0.02);
}

TEST(P2Quantile, TailQuantilesOfUniformStream) {
  P2Quantile q95(0.95);
  P2Quantile q99(0.99);
  Lcg rng(42);
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.uniform01();
    q95.add(x);
    q99.add(x);
  }
  EXPECT_NEAR(q95.value(), 0.95, 0.01);
  EXPECT_NEAR(q99.value(), 0.99, 0.01);
}

TEST(P2Quantile, TracksExactPercentileOnSkewedData) {
  // Exponential-ish heavy tail (inverse-CDF of uniform), the shape of
  // fault-cost distributions. Compare against the exact batch percentile.
  P2Quantile q95(0.95);
  Samples exact;
  Lcg rng(1234);
  for (int i = 0; i < 30000; ++i) {
    const double u = rng.uniform01();
    const double x = -std::log(1.0 - u); // Exp(1)
    q95.add(x);
    exact.add(x);
  }
  const double truth = exact.percentile(95.0);
  EXPECT_NEAR(q95.value(), truth, 0.05 * truth);
}

TEST(P2Quantile, ConstantStream) {
  P2Quantile q(0.9);
  for (int i = 0; i < 100; ++i) {
    q.add(7.5);
  }
  EXPECT_DOUBLE_EQ(q.value(), 7.5);
}

TEST(P2Quantile, SortedAndReversedInputAgree) {
  // Marker adjustment must not depend on arrival order for a stable
  // distribution: ascending and descending streams of the same values
  // land near the same estimate.
  P2Quantile up(0.5);
  P2Quantile down(0.5);
  for (int i = 0; i < 10001; ++i) {
    up.add(static_cast<double>(i));
    down.add(static_cast<double>(10000 - i));
  }
  EXPECT_NEAR(up.value(), 5000.0, 150.0);
  EXPECT_NEAR(down.value(), 5000.0, 150.0);
}

TEST(TailQuantiles, DifferentialAgainstExactSortedLognormal) {
  // The serving figures report p50/p95/p99/p99.9 from four P² markers;
  // this differential test bounds each against the exact sorted-sample
  // quantile on a lognormal latency stream (the shape request latencies
  // take: a tight body with a multiplicative tail). The far tail is the
  // loosest — P²'s p99.9 markers see only ~30 over-quantile samples
  // here — so the bound widens with q.
  TailQuantiles tails;
  std::vector<double> all;
  Lcg rng(20240);
  for (int i = 0; i < 30000; ++i) {
    // Box-Muller from two uniforms; lognormal with sigma 0.8.
    const double u1 = std::max(rng.uniform01(), 1e-12);
    const double u2 = rng.uniform01();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979 * u2);
    const double x = std::exp(0.8 * z);
    tails.add(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  const auto exact = [&](double q) {
    const auto rank = static_cast<std::size_t>(q * static_cast<double>(all.size() - 1));
    return all[rank];
  };
  constexpr double kTolerance[TailQuantiles::kCount] = {0.05, 0.05, 0.10, 0.25};
  for (std::size_t i = 0; i < TailQuantiles::kCount; ++i) {
    const double truth = exact(TailQuantiles::kQuantiles[i]);
    EXPECT_NEAR(tails.value(i), truth, kTolerance[i] * truth)
        << TailQuantiles::kLabels[i] << " drifted from the exact sorted quantile";
  }
  EXPECT_EQ(tails.count(), 30000u);
  EXPECT_DOUBLE_EQ(tails.max(), all.back());
  EXPECT_DOUBLE_EQ(tails.min(), all.front());
  // Monotone in q when read from the same stream's exact values.
  EXPECT_LT(tails.p50(), tails.p999());
}

TEST(Log2Histogram, BucketsByPowerOfTwo) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.bucket_count(0), 2u); // 0 and 1
  EXPECT_EQ(h.bucket_count(1), 2u); // 2 and 3
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Log2Histogram, LargeValuesClampToLastBucket) {
  Log2Histogram h;
  h.add(~0ull);
  EXPECT_EQ(h.bucket_count(63), 1u);
}

} // namespace
} // namespace hpmmap
