// Unit tests: statistics utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace hpmmap {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stdev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, MinMaxSum) {
  RunningStats s;
  s.add(3.0);
  s.add(-1.0);
  s.add(10.0);
  EXPECT_EQ(s.min(), -1.0);
  EXPECT_EQ(s.max(), 10.0);
  EXPECT_EQ(s.sum(), 12.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 3.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.mean(), mean);
  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.mean(), mean);
}

TEST(RunningStats, NumericallyStableForLargeCycleCounts) {
  RunningStats s;
  // Cycle counts around 1e13 with small relative spread.
  for (int i = 0; i < 1000; ++i) {
    s.add(1e13 + i);
  }
  EXPECT_NEAR(s.mean(), 1e13 + 499.5, 1.0);
  EXPECT_GT(s.variance(), 0.0);
}

TEST(Samples, PercentileSingle) {
  Samples s;
  s.add(42.0);
  EXPECT_EQ(s.percentile(0), 42.0);
  EXPECT_EQ(s.percentile(50), 42.0);
  EXPECT_EQ(s.percentile(100), 42.0);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
}

TEST(Samples, PercentileAfterMoreAdds) {
  Samples s;
  s.add(1.0);
  EXPECT_EQ(s.percentile(50), 1.0);
  s.add(3.0); // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(s.percentile(50), 2.0);
}

TEST(Samples, MeanStdev) {
  Samples s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stdev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Samples, EmptySafe) {
  Samples s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stdev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
}

TEST(Log2Histogram, BucketsByPowerOfTwo) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.bucket_count(0), 2u); // 0 and 1
  EXPECT_EQ(h.bucket_count(1), 2u); // 2 and 3
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Log2Histogram, LargeValuesClampToLastBucket) {
  Log2Histogram h;
  h.add(~0ull);
  EXPECT_EQ(h.bucket_count(63), 1u);
}

} // namespace
} // namespace hpmmap
