// Unit tests: discrete-event engine.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "sim/engine.hpp"

namespace hpmmap::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(30, [&] { order.push_back(3); });
  e.schedule(10, [&] { order.push_back(1); });
  e.schedule(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, TieBreakIsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule(100, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Engine, NowAdvancesToEventTime) {
  Engine e;
  Cycles seen = 0;
  e.schedule(123, [&] { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen, 123u);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  int fired = 0;
  e.schedule(10, [&] {
    ++fired;
    e.schedule(10, [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 20u);
}

TEST(Engine, CancelPreventsFiring) {
  Engine e;
  int fired = 0;
  const EventId id = e.schedule(10, [&] { ++fired; });
  e.cancel(id);
  e.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, CancelInvalidIsNoop) {
  Engine e;
  e.cancel(EventId{});
  e.cancel(EventId{9999});
  int fired = 0;
  e.schedule(1, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, RunUntilStopsAtLimit) {
  Engine e;
  int fired = 0;
  e.schedule(10, [&] { ++fired; });
  e.schedule(100, [&] { ++fired; });
  e.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 50u);
  EXPECT_EQ(e.pending_events(), 1u);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilAdvancesTimeWithNoEvents) {
  Engine e;
  e.run_until(777);
  EXPECT_EQ(e.now(), 777u);
}

TEST(Engine, EventAtLimitFires) {
  Engine e;
  int fired = 0;
  e.schedule(50, [&] { ++fired; });
  e.run_until(50);
  EXPECT_EQ(fired, 1);
}

TEST(Engine, StopHaltsRun) {
  Engine e;
  int fired = 0;
  e.schedule(1, [&] {
    ++fired;
    e.stop();
  });
  e.schedule(2, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.pending_events(), 1u);
}

TEST(Engine, RunResumesAfterStop) {
  Engine e;
  int fired = 0;
  e.schedule(1, [&] { e.stop(); });
  e.schedule(2, [&] { ++fired; });
  e.run();
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, EventsFiredCountsOnlyExecuted) {
  Engine e;
  const EventId id = e.schedule(5, [] {});
  e.schedule(6, [] {});
  e.cancel(id);
  e.run();
  EXPECT_EQ(e.events_fired(), 1u);
}

TEST(Engine, CancelAfterFireIsNoopAndPendingStaysExact) {
  Engine e;
  int fired = 0;
  const EventId id = e.schedule(5, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.pending_events(), 0u);
  e.cancel(id); // stale handle: the event already fired
  EXPECT_EQ(e.events_cancelled(), 0u);
  EXPECT_EQ(e.pending_events(), 0u);
  int later = 0;
  e.schedule(1, [&] { ++later; });
  EXPECT_EQ(e.pending_events(), 1u);
  e.run();
  EXPECT_EQ(later, 1);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, DoubleCancelCountsOnce) {
  Engine e;
  const EventId id = e.schedule(5, [] {});
  e.cancel(id);
  e.cancel(id);
  EXPECT_EQ(e.events_cancelled(), 1u);
  EXPECT_EQ(e.pending_events(), 0u);
  e.run();
  EXPECT_EQ(e.events_fired(), 0u);
}

TEST(Engine, StaleCancelCannotHitRecycledSlot) {
  Engine e;
  const EventId id1 = e.schedule(5, [] {});
  e.run(); // id1 fires; its slot returns to the free list
  int victim = 0;
  const EventId id2 = e.schedule(5, [&] { ++victim; });
  ASSERT_EQ(id2.slot, id1.slot); // the slot was recycled...
  e.cancel(id1);                 // ...but the stale handle must miss id2
  e.run();
  EXPECT_EQ(victim, 1);
  EXPECT_EQ(e.events_cancelled(), 0u);
}

TEST(Engine, PendingEventsExactUnderCancelChurn) {
  Engine e;
  std::uint64_t want_fired = 0, want_cancelled = 0;
  for (int round = 0; round < 200; ++round) {
    EventId ids[10];
    for (int i = 0; i < 10; ++i) {
      ids[i] = e.schedule(static_cast<Cycles>(1 + i), [] {});
    }
    EXPECT_EQ(e.pending_events(), 10u);
    for (int i = 0; i < 10; i += 2) {
      e.cancel(ids[i]);
    }
    want_cancelled += 5;
    EXPECT_EQ(e.pending_events(), 5u);
    e.run();
    want_fired += 5;
    EXPECT_EQ(e.pending_events(), 0u);
  }
  EXPECT_EQ(e.events_fired(), want_fired);
  EXPECT_EQ(e.events_cancelled(), want_cancelled);
}

TEST(Engine, LargeCaptureSpillsToArenaAndFires) {
  Engine e;
  std::array<std::uint64_t, 32> payload{}; // 256 bytes: outgrows the inline buffer
  payload.front() = 7;
  payload.back() = 9;
  std::uint64_t sum = 0;
  e.schedule(1, [payload, &sum] { sum = payload.front() + payload.back(); });
  EXPECT_EQ(e.arena().live_blocks(), 1u);
  e.run();
  EXPECT_EQ(sum, 16u);
  EXPECT_EQ(e.arena().live_blocks(), 0u); // freed back to the arena on destroy
  EXPECT_EQ(e.arena().oversize_allocs(), 0u);
}

TEST(Engine, SmallCaptureStaysInline) {
  Engine::Callback cb([] {});
  EXPECT_FALSE(cb.out_of_line());
}

TEST(Engine, ScheduleAtAbsoluteTime) {
  Engine e;
  Cycles seen = 0;
  e.schedule(10, [&] { e.schedule_at(40, [&] { seen = e.now(); }); });
  e.run();
  EXPECT_EQ(seen, 40u);
}

TEST(EngineDaemon, DaemonAloneNeverKeepsRunAlive) {
  Engine e;
  int fired = 0;
  (void)e.schedule_daemon(10, [&] { ++fired; });
  e.run(); // only daemon work pending: the queue counts as drained
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(e.now(), 0u);
  EXPECT_EQ(e.pending_daemons(), 1u);
}

TEST(EngineDaemon, DaemonFiresBetweenRealEvents) {
  Engine e;
  std::vector<Cycles> ticks;
  // Self-rescheduling daemon every 10 cycles; one real event at 35.
  // The daemon fires at 10/20/30 (before the event) but cannot extend
  // the run past 35.
  struct Ticker {
    Engine& e;
    std::vector<Cycles>& ticks;
    void tick() {
      ticks.push_back(e.now());
      (void)e.schedule_daemon(10, [this] { tick(); });
    }
  } ticker{e, ticks};
  (void)e.schedule_daemon(10, [&ticker] { ticker.tick(); });
  bool ran = false;
  e.schedule(35, [&] { ran = true; });
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(e.now(), 35u);
  EXPECT_EQ(ticks, (std::vector<Cycles>{10, 20, 30}));
  EXPECT_EQ(e.pending_daemons(), 1u); // the 40-tick stays parked
}

TEST(EngineDaemon, CancelClearsDaemonAccounting) {
  Engine e;
  const EventId id = e.schedule_daemon(10, [] {});
  EXPECT_EQ(e.pending_daemons(), 1u);
  e.cancel(id);
  EXPECT_EQ(e.pending_daemons(), 0u);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(EngineDaemon, StaleDaemonDoesNotRewindClock) {
  Engine e;
  // Daemon parked at t=10; run_until(100) must not fire it after
  // jumping the clock forward, and a later real event keeps time
  // monotonic.
  int fired = 0;
  (void)e.schedule_daemon(10, [&] { ++fired; });
  e.run_until(100);
  EXPECT_EQ(e.now(), 100u);
  bool ran = false;
  e.schedule(5, [&] { ran = true; }); // relative: fires at 105
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(fired, 1); // stale daemon drains before the event...
  EXPECT_EQ(e.now(), 105u); // ...without rewinding now()
}

TEST(EngineDaemon, MixedDrainStopsWhenOnlyDaemonsRemain) {
  Engine e;
  int daemon_fires = 0;
  struct Resampler {
    Engine& e;
    int& fires;
    void tick() {
      ++fires;
      (void)e.schedule_daemon(1, [this] { tick(); });
    }
  } r{e, daemon_fires};
  (void)e.schedule_daemon(1, [&r] { r.tick(); });
  for (Cycles t = 1; t <= 5; ++t) {
    e.schedule(t * 100, [] {});
  }
  e.run();
  EXPECT_EQ(e.now(), 500u);
  // One fire per cycle 1..499; at t=500 the real event (earlier seq)
  // fires first, after which only daemon work remains and the run ends.
  EXPECT_EQ(daemon_fires, 499);
}

TEST(EngineDeath, SchedulingInPastAborts) {
  Engine e;
  e.schedule(100, [&] {
    EXPECT_DEATH((void)e.schedule_at(50, [] {}), "past");
  });
  e.run();
}

TEST(EngineDeath, NullCallbackAborts) {
  Engine e;
  EXPECT_DEATH((void)e.schedule(1, Engine::Callback{}), "callable");
}

} // namespace
} // namespace hpmmap::sim
