// Serving subsystem: open-loop arrival schedules, the slab arena,
// SLO accounting, admission control, and the determinism contracts the
// harness promises for server runs (identical results across repeat
// runs, --jobs values, and telemetry on/off).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "harness/batch.hpp"
#include "harness/experiment.hpp"
#include "hw/machine.hpp"
#include "os/node.hpp"
#include "serving/arrival.hpp"
#include "serving/slab.hpp"
#include "serving/slo.hpp"

namespace hpmmap::serving {
namespace {

constexpr double kClockHz = 2.3e9;

ArrivalConfig tiny_arrival(ArrivalShape shape) {
  ArrivalConfig cfg;
  cfg.shape = shape;
  cfg.mean_rps = 5000.0;
  cfg.duration_seconds = 0.2;
  return cfg;
}

TEST(Arrival, ScheduleIsDeterministic) {
  for (const ArrivalShape shape :
       {ArrivalShape::kPoisson, ArrivalShape::kBursty, ArrivalShape::kDiurnal}) {
    const ArrivalConfig cfg = tiny_arrival(shape);
    const auto a = generate_schedule(cfg, kClockHz, Rng(7));
    const auto b = generate_schedule(cfg, kClockHz, Rng(7));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].arrival, b[i].arrival);
      EXPECT_EQ(a[i].object_key, b[i].object_key);
      EXPECT_EQ(a[i].size_quantile, b[i].size_quantile);
      EXPECT_EQ(a[i].work_jitter, b[i].work_jitter);
    }
  }
}

TEST(Arrival, NonDecreasingAndInsideWindow) {
  for (const ArrivalShape shape :
       {ArrivalShape::kPoisson, ArrivalShape::kBursty, ArrivalShape::kDiurnal}) {
    const ArrivalConfig cfg = tiny_arrival(shape);
    const auto sched = generate_schedule(cfg, kClockHz, Rng(11));
    ASSERT_FALSE(sched.empty());
    const auto window =
        static_cast<Cycles>(kClockHz * cfg.duration_seconds);
    Cycles prev = 0;
    for (const ScheduledRequest& r : sched) {
      EXPECT_GE(r.arrival, prev);
      EXPECT_LT(r.arrival, window);
      EXPECT_GE(r.size_quantile, 0.0);
      EXPECT_LT(r.size_quantile, 1.0);
      EXPECT_GT(r.work_jitter, 0.0);
      prev = r.arrival;
    }
  }
}

TEST(Arrival, MeanRateIsRespected) {
  ArrivalConfig cfg = tiny_arrival(ArrivalShape::kPoisson);
  cfg.mean_rps = 20'000.0;
  cfg.duration_seconds = 1.0;
  const auto sched = generate_schedule(cfg, kClockHz, Rng(3));
  const auto n = static_cast<double>(sched.size());
  EXPECT_NEAR(n, cfg.mean_rps * cfg.duration_seconds, 5.0 * std::sqrt(n));
}

TEST(Arrival, BurstyHasHigherGapVarianceThanPoisson) {
  ArrivalConfig cfg = tiny_arrival(ArrivalShape::kPoisson);
  cfg.mean_rps = 20'000.0;
  cfg.duration_seconds = 1.0;
  const auto dispersion = [](const std::vector<ScheduledRequest>& sched) {
    RunningStats gaps;
    for (std::size_t i = 1; i < sched.size(); ++i) {
      gaps.add(static_cast<double>(sched[i].arrival - sched[i - 1].arrival));
    }
    return gaps.stdev() / gaps.mean();
  };
  const double poisson_cv = dispersion(generate_schedule(cfg, kClockHz, Rng(5)));
  cfg.shape = ArrivalShape::kBursty;
  const double bursty_cv = dispersion(generate_schedule(cfg, kClockHz, Rng(5)));
  EXPECT_GT(bursty_cv, poisson_cv);
}

TEST(Arrival, ParseShapeRejectsUnknown) {
  ArrivalShape shape{};
  EXPECT_TRUE(parse_shape("diurnal", shape));
  EXPECT_EQ(shape, ArrivalShape::kDiurnal);
  EXPECT_FALSE(parse_shape("weekly", shape));
}

// --- slab arena -----------------------------------------------------------

struct SlabFixture {
  sim::Engine engine;
  os::Node node;
  os::Process* proc;

  SlabFixture()
      : node(engine,
             [] {
               os::NodeConfig cfg;
               cfg.machine = hw::dell_r415();
               cfg.machine.ram_bytes = 4 * GiB;
               cfg.seed = 17;
               return cfg;
             }()),
        proc(&node.spawn("slab-test", os::MmPolicy::kLinuxThp, 0, 1.0,
                         mm::AddressSpace::ZonePolicy::kSingle, 0)) {}
};

TEST(SlabArena, RecyclesFreedObjects) {
  SlabFixture f;
  SlabArena arena(f.node, *f.proc);
  const SlabArena::Alloc a = arena.allocate(4096);
  ASSERT_NE(a.addr, 0u);
  EXPECT_FALSE(a.large);
  EXPECT_GT(a.cost, 0u); // chunk mmap + first touch
  arena.free(a.addr, 4096);
  const SlabArena::Alloc b = arena.allocate(4096);
  EXPECT_EQ(b.addr, a.addr); // freelist hands the same object back
  EXPECT_EQ(b.cost, 0u);     // no syscall, no fault
  EXPECT_EQ(arena.stats().objects_recycled, 1u);
  EXPECT_EQ(arena.stats().chunks_mapped, 1u);
}

TEST(SlabArena, ClassesShareChunksButNotObjects) {
  SlabFixture f;
  SlabArena arena(f.node, *f.proc);
  const SlabArena::Alloc small = arena.allocate(256);
  const SlabArena::Alloc big = arena.allocate(64 * KiB);
  EXPECT_NE(small.addr, big.addr);
  arena.free(small.addr, 256);
  const SlabArena::Alloc small2 = arena.allocate(300); // same 512-byte... same class as 256
  EXPECT_EQ(arena.stats().objects_recycled, 0u); // 300 rounds to 512, not 256
  EXPECT_NE(small2.addr, 0u);
}

TEST(SlabArena, OverThresholdTakesDirectMmap) {
  SlabFixture f;
  SlabArena arena(f.node, *f.proc);
  const SlabArena::Alloc big = arena.allocate(SlabArena::kMaxClassBytes + 1);
  ASSERT_NE(big.addr, 0u);
  EXPECT_TRUE(big.large);
  EXPECT_EQ(arena.stats().large_allocs, 1u);
  EXPECT_EQ(arena.stats().chunks_mapped, 0u);
  const Cycles unmap_cost = arena.free(big.addr, SlabArena::kMaxClassBytes + 1);
  EXPECT_GT(unmap_cost, 0u); // munmap is a real syscall
}

TEST(SlabArena, ReleaseAllReturnsMappedBytes) {
  SlabFixture f;
  SlabArena arena(f.node, *f.proc);
  (void)arena.allocate(4096);
  (void)arena.allocate(128 * KiB);
  EXPECT_GT(arena.mapped_bytes(), 0u);
  arena.release_all();
  EXPECT_EQ(arena.mapped_bytes(), 0u);
}

// --- SLO accounting -------------------------------------------------------

TEST(SloAccountant, CountsPerBudgetExceedances) {
  SloAccountant slo({SloBudget{"fast", 100}, SloBudget{"slow", 1000}});
  slo.on_complete(50);    // under both
  slo.on_complete(500);   // over fast only
  slo.on_complete(5000);  // over both
  EXPECT_EQ(slo.completed(), 3u);
  EXPECT_EQ(slo.violations(0), 2u);
  EXPECT_EQ(slo.violations(1), 1u);
  EXPECT_EQ(slo.total_violations(), 3u);
}

TEST(SloAccountant, ShedViolatesEveryBudget) {
  SloAccountant slo({SloBudget{"fast", 100}, SloBudget{"slow", 1000}});
  slo.on_shed();
  EXPECT_EQ(slo.shed(), 1u);
  EXPECT_EQ(slo.violations(0), 1u);
  EXPECT_EQ(slo.violations(1), 1u);
}

TEST(ReservoirSample, ExactWhenUnderCapacity) {
  ReservoirSample res(128, Rng(9));
  for (int i = 100; i >= 1; --i) {
    res.add(static_cast<double>(i));
  }
  EXPECT_EQ(res.size(), 100u);
  EXPECT_DOUBLE_EQ(res.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(res.quantile(1.0), 100.0);
  EXPECT_NEAR(res.quantile(0.5), 50.0, 1.0);
}

TEST(ReservoirSample, SubsamplesLargeStreams) {
  ReservoirSample res(256, Rng(13));
  for (int i = 0; i < 100'000; ++i) {
    res.add(static_cast<double>(i % 1000));
  }
  EXPECT_EQ(res.size(), 256u);
  EXPECT_EQ(res.seen(), 100'000u);
  // Uniform over [0, 1000): the reservoir median should land near 500.
  EXPECT_NEAR(res.quantile(0.5), 500.0, 120.0);
}

// --- full server runs: determinism contracts ------------------------------

harness::ServerRunConfig tiny_server(harness::Manager manager) {
  harness::ServerRunConfig cfg;
  cfg.manager = manager;
  cfg.seed = 77;
  cfg.arrival.mean_rps = 4000.0;
  cfg.arrival.duration_seconds = 0.1;
  cfg.service.workers = 2;
  cfg.service.session_table_bytes = 64 * MiB;
  cfg.service.object_count = 64;
  cfg.commodity = workloads::no_competition();
  return cfg;
}

void expect_identical(const harness::ServerRunResult& a, const harness::ServerRunResult& b) {
  EXPECT_EQ(a.server.completed, b.server.completed);
  EXPECT_EQ(a.server.offered, b.server.offered);
  EXPECT_EQ(a.server.shed_queue, b.server.shed_queue);
  EXPECT_EQ(a.server.shed_timeout, b.server.shed_timeout);
  EXPECT_EQ(a.server.cache_hits, b.server.cache_hits);
  EXPECT_EQ(a.slo_total, b.slo_total);
  EXPECT_EQ(a.tail.samples, b.tail.samples);
  EXPECT_EQ(a.tail.p50_us, b.tail.p50_us);
  EXPECT_EQ(a.tail.p95_us, b.tail.p95_us);
  EXPECT_EQ(a.tail.p999_us, b.tail.p999_us);
  EXPECT_EQ(a.tail.exact_p99_us, b.tail.exact_p99_us);
  EXPECT_EQ(a.runtime_seconds, b.runtime_seconds);
  // events_fired deliberately excluded: sampler daemon ticks are engine
  // events, so it moves with telemetry on/off while results must not.
}

TEST(ServerRun, RepeatRunsAreIdentical) {
  const harness::ServerRunConfig cfg = tiny_server(harness::Manager::kHpmmap);
  const harness::ServerRunResult a = harness::run_server(cfg);
  const harness::ServerRunResult b = harness::run_server(cfg);
  expect_identical(a, b);
  EXPECT_EQ(a.events_fired, b.events_fired);
}

TEST(ServerRun, TrialLoopIsJobsInvariant) {
  const harness::ServerRunConfig cfg = tiny_server(harness::Manager::kThp);
  const auto serial = harness::run_server_trials(cfg, 3, /*jobs=*/1);
  const auto parallel = harness::run_server_trials(cfg, 3, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(ServerRun, SnapshotResumedTrialsAreByteIdenticalForAnyJobs) {
  // An aged serving node — commodity build churning through warmup —
  // captured at the quiesce point and resumed for measurement must
  // reproduce the straight trial loop byte for byte, at any --jobs.
  harness::ServerRunConfig cfg = tiny_server(harness::Manager::kHpmmap);
  cfg.commodity = workloads::profile_a(2);
  const auto straight = harness::run_server_trials(cfg, 2, /*jobs=*/1);
  for (const unsigned jobs : {1u, 4u}) {
    const auto resumed = harness::run_server_trials_resumed(cfg, 2, jobs);
    ASSERT_EQ(resumed.size(), straight.size());
    for (std::size_t i = 0; i < straight.size(); ++i) {
      expect_identical(straight[i], resumed[i]);
      EXPECT_EQ(straight[i].events_fired, resumed[i].events_fired);
      EXPECT_EQ(straight[i].server.slab.bytes_mapped, resumed[i].server.slab.bytes_mapped);
    }
  }
}

TEST(ServerRun, TelemetrySamplingIsPureObservation) {
  harness::ServerRunConfig cfg = tiny_server(harness::Manager::kHpmmap);
  const harness::ServerRunResult off = harness::run_server(cfg);
  cfg.introspect.sample_interval = 10'000'000;
  const harness::ServerRunResult on = harness::run_server(cfg);
  expect_identical(off, on);
  EXPECT_TRUE(off.telemetry.empty());
  EXPECT_FALSE(on.telemetry.empty());
}

TEST(ServerRun, ServesEveryRequestWhenUnloaded) {
  const harness::ServerRunResult r = harness::run_server(tiny_server(harness::Manager::kThp));
  EXPECT_GT(r.server.completed, 0u);
  EXPECT_EQ(r.server.offered, r.server.completed + r.server.shed_queue + r.server.shed_timeout);
  EXPECT_EQ(r.tail.samples, r.server.completed);
  ASSERT_EQ(r.slo.size(), 2u); // default budgets installed
  EXPECT_GT(r.runtime_seconds, 0.0);
}

TEST(ServerRun, ShallowQueueShedsUnderBurst) {
  harness::ServerRunConfig cfg = tiny_server(harness::Manager::kThp);
  cfg.arrival.shape = ArrivalShape::kBursty;
  cfg.arrival.mean_rps = 60'000.0;
  cfg.arrival.burst_factor = 8.0;
  cfg.service.queue_depth = 4;
  const harness::ServerRunResult r = harness::run_server(cfg);
  EXPECT_GT(r.server.shed_queue, 0u);
  EXPECT_EQ(r.slo_total >= r.server.shed_queue * 2, true)
      << "sheds must violate every budget";
}

TEST(ServerRun, QueueTimeoutShedsStaleRequests) {
  harness::ServerRunConfig cfg = tiny_server(harness::Manager::kThp);
  cfg.arrival.mean_rps = 80'000.0;
  cfg.service.workers = 1;
  cfg.service.queue_depth = 512;
  cfg.service.queue_timeout_seconds = 0.0005;
  const harness::ServerRunResult r = harness::run_server(cfg);
  EXPECT_GT(r.server.shed_timeout, 0u);
}

} // namespace
} // namespace hpmmap::serving
