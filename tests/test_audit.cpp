// The invariant auditor: silent on healthy state (fresh nodes, every
// seed experiment configuration, post-workload machines) and precise on
// deliberately corrupted state — a leaked frame, a split buddy pair, a
// PTE outside any VMA each produce their named violation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "harness/experiment.hpp"
#include "hw/mem_map.hpp"
#include "linux_mm/buddy_allocator.hpp"
#include "linux_mm/page_cache.hpp"
#include "linux_mm/smp.hpp"
#include "os/node.hpp"
#include "sim/engine.hpp"
#include "snapshot/snapshot.hpp"
#include "verify/audit.hpp"

namespace hpmmap {
namespace {

os::NodeConfig small_config() {
  os::NodeConfig cfg;
  cfg.machine = hw::dell_r415();
  cfg.machine.ram_bytes = 4 * GiB;
  cfg.seed = 5;
  cfg.aged_boot = false;
  return cfg;
}

os::Process& spawn_app(os::Node& node, os::MmPolicy policy) {
  return node.spawn("app", policy, 0, 1.0, mm::AddressSpace::ZonePolicy::kSingle, 0);
}

bool has_violation(const verify::AuditReport& r, std::string_view check) {
  return std::any_of(r.violations.begin(), r.violations.end(),
                     [&](const verify::Violation& v) { return v.check == check; });
}

harness::SingleNodeRunConfig quick(harness::Manager mgr) {
  harness::SingleNodeRunConfig cfg;
  cfg.app = "HPCCG";
  cfg.manager = mgr;
  cfg.commodity = workloads::profile_a(2);
  cfg.app_cores = 2;
  cfg.seed = 7;
  cfg.footprint_scale = 0.08;
  cfg.duration_scale = 0.05;
  cfg.verify.audit = true;
  return cfg;
}

// --- healthy state -------------------------------------------------------

TEST(Audit, FreshNodeIsClean) {
  sim::Engine engine;
  os::Node node(engine, small_config());
  verify::MmAuditor auditor(node);
  const verify::AuditReport r = auditor.run();
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_GT(r.checks, 0u);
}

TEST(Audit, AgedBootIsClean) {
  sim::Engine engine;
  os::NodeConfig cfg = small_config();
  cfg.aged_boot = true;
  os::Node node(engine, cfg);
  verify::MmAuditor auditor(node);
  EXPECT_TRUE(auditor.run().ok());
}

TEST(Audit, WorkloadedNodeIsClean) {
  // Exercise every policy plus exits, then audit the whole machine.
  sim::Engine engine;
  os::NodeConfig cfg = small_config();
  core::ModuleConfig mod;
  mod.offline_bytes_per_zone = 512 * MiB;
  cfg.hpmmap = mod;
  cfg.hugetlb_pool_per_zone = 256 * MiB;
  os::Node node(engine, cfg);
  for (const os::MmPolicy policy : {os::MmPolicy::kLinuxThp, os::MmPolicy::kLinuxPlain,
                                    os::MmPolicy::kHugetlbfs, os::MmPolicy::kHpmmap}) {
    os::Process& p = spawn_app(node, policy);
    const auto out = node.sys_mmap(p, 16 * MiB, kProtRW, os::Node::Segment::kHeapData);
    ASSERT_EQ(out.err, Errno::kOk);
    (void)node.touch_range(p, Range{out.addr, out.addr + 16 * MiB});
    (void)node.sys_munmap(p, out.addr + 4 * MiB, 2 * MiB);
  }
  verify::MmAuditor auditor(node);
  const verify::AuditReport r = auditor.run();
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Audit, SeedExperimentConfigsAreClean) {
  for (const harness::Manager mgr : {harness::Manager::kThp, harness::Manager::kHugetlbfs,
                                     harness::Manager::kHpmmap}) {
    const harness::RunResult r = harness::run_single_node(quick(mgr));
    EXPECT_EQ(r.audit_violations, 0u) << r.audit_report;
    EXPECT_GT(r.audit_checks, 0u);
  }
}

TEST(Audit, ScalingRunIsClean) {
  harness::ScalingRunConfig cfg;
  cfg.app = "HPCCG";
  cfg.manager = harness::Manager::kHpmmap;
  cfg.commodity = workloads::profile_c();
  cfg.nodes = 2;
  cfg.seed = 11;
  cfg.footprint_scale = 0.08;
  cfg.duration_scale = 0.05;
  cfg.verify.audit = true;
  const harness::RunResult r = harness::run_scaling(cfg);
  EXPECT_EQ(r.audit_violations, 0u) << r.audit_report;
  EXPECT_GT(r.audit_checks, 0u);
}

// --- corrupted state -----------------------------------------------------

TEST(Audit, DetectsLeakedFrameMappedWhileFree) {
  // A frame simultaneously mapped by a process and sitting on a buddy
  // freelist: the use-after-free shape of a real leak.
  sim::Engine engine;
  os::Node node(engine, small_config());
  os::Process& p = spawn_app(node, os::MmPolicy::kLinuxPlain);
  const auto out = node.sys_mmap(p, 1 * MiB, kProtRW, os::Node::Segment::kHeapData);
  ASSERT_EQ(out.err, Errno::kOk);
  const mm::AllocOutcome frame = node.memory().alloc_pages(0, 0, /*allow_reclaim=*/false);
  ASSERT_TRUE(frame.ok);
  ASSERT_EQ(p.address_space().page_table().map(out.addr, frame.addr, PageSize::k4K, kProtRW),
            Errno::kOk);
  node.memory().free_pages(0, frame.addr, 0); // the "double free"
  verify::MmAuditor auditor(node);
  const verify::AuditReport r = auditor.run();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_violation(r, "frame.double_owner")) << r.summary();
}

TEST(Audit, DetectsDoubleMappedFrameAcrossProcesses) {
  sim::Engine engine;
  os::Node node(engine, small_config());
  os::Process& a = spawn_app(node, os::MmPolicy::kLinuxPlain);
  os::Process& b = node.spawn("app2", os::MmPolicy::kLinuxPlain, 1, 1.0,
                              mm::AddressSpace::ZonePolicy::kSingle, 0);
  const auto va = node.sys_mmap(a, 1 * MiB, kProtRW, os::Node::Segment::kHeapData);
  const auto vb = node.sys_mmap(b, 1 * MiB, kProtRW, os::Node::Segment::kHeapData);
  const mm::AllocOutcome frame = node.memory().alloc_pages(0, 0, /*allow_reclaim=*/false);
  ASSERT_TRUE(frame.ok);
  ASSERT_EQ(a.address_space().page_table().map(va.addr, frame.addr, PageSize::k4K, kProtRW),
            Errno::kOk);
  ASSERT_EQ(b.address_space().page_table().map(vb.addr, frame.addr, PageSize::k4K, kProtRW),
            Errno::kOk);
  verify::MmAuditor auditor(node);
  const verify::AuditReport r = auditor.run();
  EXPECT_TRUE(has_violation(r, "frame.double_owner")) << r.summary();
}

TEST(Audit, DetectsSplitBuddyPair) {
  // Two free order-0 blocks that are each other's buddy must have been
  // coalesced; seeding them via the corruption hook trips the check.
  mm::BuddyAllocator buddy(Range{0, 1 * MiB}, 8);
  const auto block = buddy.alloc(1);
  ASSERT_TRUE(block.has_value());
  buddy.corrupt_insert_free_block(block->addr, 0);
  buddy.corrupt_insert_free_block(block->addr + 4 * KiB, 0);
  verify::AuditReport r;
  verify::audit_buddy(buddy, "test", r);
  EXPECT_TRUE(has_violation(r, "buddy.uncoalesced")) << r.summary();
}

TEST(Audit, DetectsDuplicateFreeBlockAsAccountingDrift) {
  // The freelists are sets, so a same-order duplicate collapses to one
  // entry — but the double-counted bytes leave the books off by a block.
  mm::BuddyAllocator buddy(Range{0, 1 * MiB}, 8);
  const auto block = buddy.alloc(2);
  ASSERT_TRUE(block.has_value());
  buddy.corrupt_insert_free_block(block->addr, 2);
  buddy.corrupt_insert_free_block(block->addr, 2);
  verify::AuditReport r;
  verify::audit_buddy(buddy, "test", r);
  EXPECT_TRUE(has_violation(r, "buddy.accounting")) << r.summary();
}

TEST(Audit, DetectsOverlappingFreeBlocks) {
  // The same frame free at two different orders: two freelist entries
  // covering overlapping physical ranges.
  mm::BuddyAllocator buddy(Range{0, 1 * MiB}, 8);
  const auto block = buddy.alloc(1);
  ASSERT_TRUE(block.has_value());
  buddy.corrupt_insert_free_block(block->addr, 0);
  buddy.corrupt_insert_free_block(block->addr, 1);
  verify::AuditReport r;
  verify::audit_buddy(buddy, "test", r);
  EXPECT_TRUE(has_violation(r, "buddy.overlap")) << r.summary();
}

TEST(Audit, DetectsOutOfRangeAndMisalignedBlocks) {
  mm::BuddyAllocator buddy(Range{0, 1 * MiB}, 8);
  buddy.corrupt_insert_free_block(2 * MiB, 0); // beyond the managed range
  const auto block = buddy.alloc(2);           // 16K hole to corrupt inside
  ASSERT_TRUE(block.has_value());
  buddy.corrupt_insert_free_block(block->addr + 4 * KiB, 1); // 8K block, 4K-aligned
  verify::AuditReport r;
  verify::audit_buddy(buddy, "test", r);
  EXPECT_TRUE(has_violation(r, "buddy.out_of_range")) << r.summary();
  EXPECT_TRUE(has_violation(r, "buddy.misaligned")) << r.summary();
}

TEST(Audit, DetectsPteOutsideAnyVma) {
  sim::Engine engine;
  os::Node node(engine, small_config());
  os::Process& p = spawn_app(node, os::MmPolicy::kLinuxPlain);
  const mm::AllocOutcome frame = node.memory().alloc_pages(0, 0, /*allow_reclaim=*/false);
  ASSERT_TRUE(frame.ok);
  const Addr stray = 0x123456000; // no VMA anywhere near
  ASSERT_EQ(p.address_space().vmas().find(stray), nullptr);
  ASSERT_EQ(p.address_space().page_table().map(stray, frame.addr, PageSize::k4K, kProtRW),
            Errno::kOk);
  verify::MmAuditor auditor(node);
  const verify::AuditReport r = auditor.run();
  EXPECT_TRUE(has_violation(r, "pte.outside_vma")) << r.summary();
}

TEST(Audit, DetectsProtMismatch) {
  sim::Engine engine;
  os::Node node(engine, small_config());
  os::Process& p = spawn_app(node, os::MmPolicy::kLinuxPlain);
  const auto out = node.sys_mmap(p, 1 * MiB, kProtRW, os::Node::Segment::kHeapData);
  ASSERT_EQ(out.err, Errno::kOk);
  const mm::AllocOutcome frame = node.memory().alloc_pages(0, 0, /*allow_reclaim=*/false);
  ASSERT_TRUE(frame.ok);
  // RW VMA, read-only leaf: a protection the VMA never granted.
  ASSERT_EQ(p.address_space().page_table().map(out.addr, frame.addr, PageSize::k4K, Prot::kRead),
            Errno::kOk);
  verify::MmAuditor auditor(node);
  const verify::AuditReport r = auditor.run();
  EXPECT_TRUE(has_violation(r, "pte.prot_mismatch")) << r.summary();
}

TEST(Audit, DetectsHugetlbPoolLeak) {
  sim::Engine engine;
  os::NodeConfig cfg = small_config();
  cfg.thp_enabled = false;
  cfg.hugetlb_pool_per_zone = 256 * MiB;
  cfg.hugetlbfs_small_spill = 0.0;
  os::Node node(engine, cfg);
  os::Process& p = spawn_app(node, os::MmPolicy::kHugetlbfs);
  const auto out = node.sys_mmap(p, 8 * MiB, kProtRW, os::Node::Segment::kHeapData);
  ASSERT_EQ(out.err, Errno::kOk);
  (void)node.touch_range(p, Range{out.addr, out.addr + 8 * MiB});
  const auto t = p.address_space().page_table().walk(out.addr);
  ASSERT_TRUE(t.has_value());
  ASSERT_EQ(t->size, PageSize::k2M);
  // Return a page to the pool while it is still mapped: the pool now
  // accounts one page twice (free + in use exceeds the reservation).
  node.hugetlb()->free_page(0, t->phys);
  verify::MmAuditor auditor(node);
  const verify::AuditReport r = auditor.run();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_violation(r, "hugetlb.conservation") || has_violation(r, "frame.double_owner"))
      << r.summary();
}

// --- mem_map cross-check corruption ---------------------------------------
//
// The intrusive rework gave every owner (buddy freelists, cache LRU,
// hugetlb stacks) a second, independent record of ownership in the
// zone's mem_map; each case below desynchronizes one direction of that
// agreement and expects the named violation.

TEST(Audit, DetectsFreeBlockMissingFromMemMap) {
  mm::BuddyAllocator buddy(Range{0, 1 * MiB}, 8);
  // The freelist says the max-order block is free; wipe its mem_map head
  // so the metadata array disagrees.
  buddy.mem_map().clear_head(0);
  verify::AuditReport r;
  verify::audit_buddy(buddy, "test", r);
  EXPECT_TRUE(has_violation(r, "buddy.memmap_state")) << r.summary();
}

TEST(Audit, DetectsForgedBuddyFreeMark) {
  mm::BuddyAllocator buddy(Range{0, 1 * MiB}, 8);
  const auto block = buddy.alloc(2);
  ASSERT_TRUE(block.has_value());
  // The block is allocated, but something re-marks it free in the
  // mem_map (a lost clear, a stray write): the reverse sweep must catch
  // the orphan mark with no matching freelist entry.
  buddy.mem_map().set_head(buddy.mem_map().index_of(block->addr), hw::FrameState::kBuddyFree, 2);
  verify::AuditReport r;
  verify::audit_buddy(buddy, "test", r);
  EXPECT_TRUE(has_violation(r, "buddy.memmap_orphan")) << r.summary();
}

TEST(Audit, DetectsCacheBlockStateDrift) {
  mm::BuddyAllocator buddy(Range{0, 4 * MiB}, 8);
  mm::PageCache cache(buddy);
  ASSERT_GT(cache.grow(64 * KiB, 0, false), 0u);
  Addr first = 0;
  bool got = false;
  cache.for_each_block([&](Addr a, unsigned, bool) {
    if (!got) {
      first = a;
      got = true;
    }
  });
  ASSERT_TRUE(got);
  // Flip a cached block's mem_map entry to a non-cache state: the LRU
  // walk sees the bad state, and the reverse head-count no longer
  // matches the cache's block count.
  buddy.mem_map().set_head(buddy.mem_map().index_of(first), hw::FrameState::kBuddyFree, 0);
  verify::AuditReport r;
  verify::audit_page_cache(buddy, cache, "test", r);
  EXPECT_TRUE(has_violation(r, "cache.memmap_state")) << r.summary();
  EXPECT_TRUE(has_violation(r, "cache.memmap_orphan")) << r.summary();
}

TEST(Audit, DetectsBrokenLruChain) {
  mm::BuddyAllocator buddy(Range{0, 4 * MiB}, 8);
  mm::PageCache cache(buddy);
  ASSERT_GT(cache.grow(64 * KiB, 0, false), 0u);
  std::vector<Addr> blocks;
  cache.for_each_block([&](Addr a, unsigned, bool) { blocks.push_back(a); });
  ASSERT_GE(blocks.size(), 3u);
  // Truncate the chain mid-way: the walk visits fewer blocks than the
  // cache accounts for, and the byte totals drift with it.
  buddy.mem_map().set_next(buddy.mem_map().index_of(blocks[1]), hw::MemMap::kNil);
  verify::AuditReport r;
  verify::audit_page_cache(buddy, cache, "test", r);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_violation(r, "cache.lru_broken") || has_violation(r, "cache.accounting"))
      << r.summary();
}

TEST(Audit, DetectsHugetlbPoolPageStateDrift) {
  sim::Engine engine;
  os::NodeConfig cfg = small_config();
  cfg.hugetlb_pool_per_zone = 64 * MiB;
  os::Node node(engine, cfg);
  Addr pooled = 0;
  bool got = false;
  node.hugetlb()->for_each_pool_page(0, [&](Addr a) {
    if (!got) {
      pooled = a;
      got = true;
    }
  });
  ASSERT_TRUE(got);
  // A pool page whose mem_map entry was wiped: the stack walk must flag
  // the state mismatch.
  node.memory().buddy(0).mem_map().clear_head(node.memory().buddy(0).mem_map().index_of(pooled));
  verify::MmAuditor auditor(node);
  const verify::AuditReport r = auditor.run();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_violation(r, "hugetlb.memmap_state")) << r.summary();
}

// --- per-CPU page-frame caches ---------------------------------------------
//
// An SmpDomain parks order-0 frames on per-CPU lists; the pcp audit
// family holds them to the same two-direction mem_map agreement as the
// buddy freelists, plus exactly-one-CPU ownership. Warm the lists the
// way a real core does: fault a slab (the refill path stocks the list)
// and munmap half of it (the free path stacks more until the drain
// watermark).

/// A 2-core SMP node with cpu 0's zone-0 pcp list warmed and non-empty.
std::unique_ptr<os::Node> warm_smp_node(sim::Engine& engine) {
  os::NodeConfig cfg = small_config();
  cfg.thp_enabled = false;
  mm::SmpConfig smp;
  smp.cores = 2;
  cfg.smp = smp;
  auto node = std::make_unique<os::Node>(engine, cfg);
  os::Process& p = spawn_app(*node, os::MmPolicy::kLinuxPlain);
  const auto out = node->sys_mmap(p, 1 * MiB, kProtRW, os::Node::Segment::kHeapData);
  EXPECT_EQ(out.err, Errno::kOk);
  (void)node->touch_range(p, Range{out.addr, out.addr + 1 * MiB}, 0);
  (void)node->sys_munmap(p, out.addr, 512 * KiB);
  EXPECT_NE(node->smp(), nullptr);
  EXPECT_GT(node->smp()->pcp_cached_bytes(0), 0u);
  return node;
}

TEST(Audit, SmpNodeWithWarmPcpListsIsClean) {
  sim::Engine engine;
  const std::unique_ptr<os::Node> node = warm_smp_node(engine);
  verify::MmAuditor auditor(*node);
  const verify::AuditReport r = auditor.run();
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Audit, DetectsPcpFrameOnTwoCpuLists) {
  // The same frame on two CPUs' lists: both cores will hand it out, the
  // double-alloc shape of pcp corruption. Ownership, conservation and
  // the global frame sweep must all name it.
  sim::Engine engine;
  const std::unique_ptr<os::Node> node = warm_smp_node(engine);
  node->smp()->corrupt_clone_pcp_frame(0, 1, 0);
  const verify::AuditReport r = verify::MmAuditor(*node).run();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_violation(r, "pcp.duplicate")) << r.summary();
  EXPECT_TRUE(has_violation(r, "pcp.conservation")) << r.summary();
  EXPECT_TRUE(has_violation(r, "frame.double_owner")) << r.summary();
}

TEST(Audit, DetectsPcpMemMapStateDrift) {
  // A cached frame whose mem_map head was wiped: the list walk must flag
  // the state mismatch (and the head count drifts with it).
  sim::Engine engine;
  const std::unique_ptr<os::Node> node = warm_smp_node(engine);
  Addr cached = 0;
  bool got = false;
  node->smp()->for_each_pcp_frame([&](std::uint32_t, ZoneId z, Addr a) {
    if (!got && z == 0) {
      cached = a;
      got = true;
    }
  });
  ASSERT_TRUE(got);
  hw::MemMap& map = node->memory().buddy(0).mem_map();
  map.clear_head(map.index_of(cached));
  const verify::AuditReport r = verify::MmAuditor(*node).run();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_violation(r, "pcp.memmap_state")) << r.summary();
  EXPECT_TRUE(has_violation(r, "pcp.conservation")) << r.summary();
}

TEST(Audit, DetectsForgedPcpMark) {
  // An allocated frame re-marked kPcpCache with no list holding it: the
  // reverse sweep must catch the orphan — such a frame is invisible to
  // every allocator forever.
  sim::Engine engine;
  const std::unique_ptr<os::Node> node = warm_smp_node(engine);
  const mm::AllocOutcome frame = node->memory().alloc_pages(0, 0, /*allow_reclaim=*/false);
  ASSERT_TRUE(frame.ok);
  hw::MemMap& map = node->memory().buddy(0).mem_map();
  map.set_head(map.index_of(frame.addr), hw::FrameState::kPcpCache, 0);
  const verify::AuditReport r = verify::MmAuditor(*node).run();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_violation(r, "pcp.memmap_orphan")) << r.summary();
  EXPECT_TRUE(has_violation(r, "pcp.conservation")) << r.summary();
}

// --- corruption on a restored image ----------------------------------------
//
// Structural restore equality from the other side: a snapshot round-trip
// produces a world the auditor accepts wholesale, and skewing any ONE
// structure of the restored image — a freelist bit, an LRU link, a PTE —
// is named by its exact invariant. If restore ever reconstructed these
// structures loosely, the clean-before/dirty-after pair would not hold.

/// Age and workload a node, capture it, and restore the image into a
/// fresh non-aged boot on `engine`. The caller corrupts the result.
std::unique_ptr<os::Node> restore_aged_world(sim::Engine& engine) {
  os::NodeConfig cfg = small_config();
  cfg.aged_boot = true;
  cfg.hugetlb_pool_per_zone = 64 * MiB;
  snapshot::WorldImage image;
  {
    sim::Engine capture_engine;
    os::Node node(capture_engine, cfg);
    os::Process& p = node.spawn("app", os::MmPolicy::kLinuxThp, 0, 1.0,
                                mm::AddressSpace::ZonePolicy::kSingle, 0);
    const auto out = node.sys_mmap(p, 16 * MiB, kProtRW, os::Node::Segment::kHeapData);
    EXPECT_EQ(out.err, Errno::kOk);
    (void)node.touch_range(p, Range{out.addr, out.addr + 16 * MiB});
    image = snapshot::capture_world(capture_engine, {&node});
  }
  cfg.aged_boot = false; // state arrives from the image
  auto node = std::make_unique<os::Node>(engine, cfg);
  snapshot::restore_world(image, engine, {node.get()});
  return node;
}

TEST(AuditRestored, SkewedFreelistBitIsNamedExactly) {
  sim::Engine engine;
  const std::unique_ptr<os::Node> node = restore_aged_world(engine);
  ASSERT_TRUE(verify::MmAuditor(*node).run().ok());
  // Wipe the mem_map head of one genuinely free block: the freelist
  // entry loses its metadata mirror.
  mm::BuddyAllocator& buddy = node->memory().buddy(0);
  Addr block = 0;
  bool got = false;
  buddy.for_each_free_block([&](Addr a, unsigned) {
    if (!got) {
      block = a;
      got = true;
    }
  });
  ASSERT_TRUE(got);
  buddy.mem_map().clear_head(buddy.mem_map().index_of(block));
  const verify::AuditReport r = verify::MmAuditor(*node).run();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_violation(r, "buddy.memmap_state")) << r.summary();
}

TEST(AuditRestored, BrokenLruLinkIsNamedExactly) {
  sim::Engine engine;
  const std::unique_ptr<os::Node> node = restore_aged_world(engine);
  ASSERT_TRUE(verify::MmAuditor(*node).run().ok());
  // Truncate the restored page-cache LRU chain mid-way (the aged boot
  // leaves the cache warm, so the chain is long).
  mm::BuddyAllocator& buddy = node->memory().buddy(0);
  std::vector<Addr> blocks;
  node->memory().cache(0).for_each_block(
      [&](Addr a, unsigned, bool) { blocks.push_back(a); });
  ASSERT_GE(blocks.size(), 3u);
  buddy.mem_map().set_next(buddy.mem_map().index_of(blocks[1]), hw::MemMap::kNil);
  const verify::AuditReport r = verify::MmAuditor(*node).run();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_violation(r, "cache.lru_broken") || has_violation(r, "cache.accounting"))
      << r.summary();
}

TEST(AuditRestored, StrayPteIsNamedExactly) {
  sim::Engine engine;
  const std::unique_ptr<os::Node> node = restore_aged_world(engine);
  ASSERT_TRUE(verify::MmAuditor(*node).run().ok());
  // Plant a leaf outside every VMA of the *restored* process image.
  os::Process* app = nullptr;
  node->for_each_process([&](const os::Process& q) {
    if (q.alive()) {
      app = const_cast<os::Process*>(&q);
    }
  });
  ASSERT_NE(app, nullptr);
  const mm::AllocOutcome frame = node->memory().alloc_pages(0, 0, /*allow_reclaim=*/false);
  ASSERT_TRUE(frame.ok);
  const Addr stray = 0x123456000;
  ASSERT_EQ(app->address_space().vmas().find(stray), nullptr);
  ASSERT_EQ(app->address_space().page_table().map(stray, frame.addr, PageSize::k4K, kProtRW),
            Errno::kOk);
  const verify::AuditReport r = verify::MmAuditor(*node).run();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_violation(r, "pte.outside_vma")) << r.summary();
}

TEST(Audit, ViolationDiagnosticsNameTheScene) {
  // The detail string must carry enough to act on: addresses and pid.
  sim::Engine engine;
  os::Node node(engine, small_config());
  os::Process& p = spawn_app(node, os::MmPolicy::kLinuxPlain);
  const mm::AllocOutcome frame = node.memory().alloc_pages(0, 0, /*allow_reclaim=*/false);
  ASSERT_TRUE(frame.ok);
  ASSERT_EQ(p.address_space().page_table().map(0x123456000, frame.addr, PageSize::k4K, kProtRW),
            Errno::kOk);
  verify::MmAuditor auditor(node);
  const verify::AuditReport r = auditor.run();
  ASSERT_FALSE(r.ok());
  const auto hit = std::find_if(r.violations.begin(), r.violations.end(),
                                [](const verify::Violation& v) {
                                  return v.check == "pte.outside_vma";
                                });
  ASSERT_NE(hit, r.violations.end());
  EXPECT_NE(hit->detail.find("0x123456000"), std::string::npos) << hit->detail;
  EXPECT_NE(hit->detail.find("pid"), std::string::npos) << hit->detail;
  EXPECT_NE(r.summary().find("pte.outside_vma"), std::string::npos);
}

} // namespace
} // namespace hpmmap
