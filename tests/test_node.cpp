// Integration tests: the Node's syscall dispatch, fault accounting,
// memory conservation, mlock, swapping, and process lifecycle.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "os/node.hpp"
#include "sim/engine.hpp"

namespace hpmmap::os {
namespace {

NodeConfig small_config() {
  NodeConfig cfg;
  cfg.machine = hw::dell_r415();
  cfg.machine.ram_bytes = 4 * GiB; // keep tests fast
  cfg.seed = 5;
  cfg.aged_boot = false; // deterministic clean-slate tests
  return cfg;
}

Process& spawn_app(Node& node, MmPolicy policy) {
  return node.spawn("app", policy, 0, 1.0, mm::AddressSpace::ZonePolicy::kSingle, 0);
}

TEST(Node, SpawnCreatesCanonicalLayout) {
  sim::Engine engine;
  Node node(engine, small_config());
  Process& p = spawn_app(node, MmPolicy::kLinuxThp);
  const mm::VmaTree& vmas = p.address_space().vmas();
  EXPECT_NE(vmas.find(mm::AddressLayout::kTextBase), nullptr);
  EXPECT_NE(vmas.find(mm::AddressLayout::kStackTop - 4096), nullptr);
  EXPECT_GT(p.address_space().heap_base(), mm::AddressLayout::kTextBase);
}

TEST(Node, LinuxMmapCreatesVmaWithoutBacking) {
  sim::Engine engine;
  Node node(engine, small_config());
  Process& p = spawn_app(node, MmPolicy::kLinuxThp);
  const auto out = node.sys_mmap(p, 8 * MiB, kProtRW, Node::Segment::kHeapData);
  ASSERT_EQ(out.err, Errno::kOk);
  EXPECT_NE(p.address_space().vmas().find(out.addr), nullptr);
  // Demand paging: nothing mapped until touched (§II-A).
  EXPECT_FALSE(p.address_space().page_table().walk(out.addr).has_value());
}

TEST(Node, TouchRangeFaultsEveryPageOnce) {
  sim::Engine engine;
  Node node(engine, small_config());
  Process& p = spawn_app(node, MmPolicy::kLinuxPlain);
  const auto out = node.sys_mmap(p, 1 * MiB, kProtRW, Node::Segment::kHeapData);
  ASSERT_EQ(out.err, Errno::kOk);
  const Cycles c1 = node.touch_range(p, Range{out.addr, out.addr + 1 * MiB});
  EXPECT_EQ(p.fault_stats().count[0], 256u); // 1 MiB / 4K, THP off
  EXPECT_GT(c1, 0u);
  // Second touch: all mapped, no new faults.
  (void)node.touch_range(p, Range{out.addr, out.addr + 1 * MiB});
  EXPECT_EQ(p.fault_stats().count[0], 256u);
}

TEST(Node, ThpPolicyUsesLargePages) {
  sim::Engine engine;
  Node node(engine, small_config());
  Process& p = spawn_app(node, MmPolicy::kLinuxThp);
  const auto out = node.sys_mmap(p, 16 * MiB, kProtRW, Node::Segment::kHeapData);
  ASSERT_EQ(out.err, Errno::kOk);
  (void)node.touch_range(p, Range{out.addr, out.addr + 16 * MiB});
  const auto mix = p.address_space().mapping_mix();
  EXPECT_GT(mix.bytes_2m, 8 * MiB); // mostly large on a pristine node
}

TEST(Node, PlainPolicyNeverGetsLargePages) {
  sim::Engine engine;
  Node node(engine, small_config());
  Process& p = spawn_app(node, MmPolicy::kLinuxPlain);
  const auto out = node.sys_mmap(p, 16 * MiB, kProtRW, Node::Segment::kHeapData);
  (void)node.touch_range(p, Range{out.addr, out.addr + 16 * MiB});
  EXPECT_EQ(p.address_space().mapping_mix().bytes_2m, 0u);
}

TEST(Node, MunmapReturnsFramesToBuddy) {
  sim::Engine engine;
  Node node(engine, small_config());
  Process& p = spawn_app(node, MmPolicy::kLinuxThp);
  const std::uint64_t free_before = node.memory().free_bytes(0) + node.memory().free_bytes(1);
  const auto out = node.sys_mmap(p, 8 * MiB, kProtRW, Node::Segment::kHeapData);
  (void)node.touch_range(p, Range{out.addr, out.addr + 8 * MiB});
  EXPECT_LT(node.memory().free_bytes(0) + node.memory().free_bytes(1), free_before);
  (void)node.sys_munmap(p, out.addr, 8 * MiB);
  EXPECT_EQ(node.memory().free_bytes(0) + node.memory().free_bytes(1), free_before);
  EXPECT_TRUE(node.memory().buddy(0).check_consistency());
}

TEST(Node, BrkGrowsHeapDemandPaged) {
  sim::Engine engine;
  Node node(engine, small_config());
  Process& p = spawn_app(node, MmPolicy::kLinuxThp);
  const auto base = node.sys_brk(p, 0);
  const auto grown = node.sys_brk(p, base.addr + 4 * MiB);
  ASSERT_EQ(grown.err, Errno::kOk);
  EXPECT_NE(p.address_space().vmas().find(base.addr), nullptr);
  EXPECT_FALSE(p.address_space().page_table().walk(base.addr).has_value());
  (void)node.touch_range(p, Range{base.addr, base.addr + 4 * MiB});
  EXPECT_GT(p.address_space().rss_bytes(), 0u);
}

TEST(Node, HpmmapPolicyRoutesThroughModule) {
  sim::Engine engine;
  NodeConfig cfg = small_config();
  core::ModuleConfig mod;
  mod.offline_bytes_per_zone = 512 * MiB;
  cfg.hpmmap = mod;
  Node node(engine, cfg);
  Process& p = spawn_app(node, MmPolicy::kHpmmap);
  const auto out = node.sys_mmap(p, 8 * MiB, kProtRW, Node::Segment::kHeapData);
  ASSERT_EQ(out.err, Errno::kOk);
  EXPECT_TRUE(core::HpmmapModule::in_window(out.addr));
  // Immediately backed: zero faults on touch.
  (void)node.touch_range(p, Range{out.addr, out.addr + 8 * MiB});
  EXPECT_EQ(p.fault_stats().count[0], 0u);
  EXPECT_EQ(p.fault_stats().count[1], 0u);
}

TEST(Node, HpmmapStackStaysWithLinux) {
  sim::Engine engine;
  NodeConfig cfg = small_config();
  core::ModuleConfig mod;
  mod.offline_bytes_per_zone = 512 * MiB;
  cfg.hpmmap = mod;
  Node node(engine, cfg);
  Process& p = spawn_app(node, MmPolicy::kHpmmap);
  const Addr stack_page = mm::AddressLayout::kStackTop - 8 * KiB;
  (void)node.touch_range(p, Range{stack_page, stack_page + 8 * KiB});
  // Stack faults went through Linux (HPMMAP interposes only the
  // address-space syscalls; the stack was created by exec).
  EXPECT_EQ(p.fault_stats().count[0], 2u);
}

TEST(Node, HugetlbfsPolicyBacksDataWithPool) {
  sim::Engine engine;
  NodeConfig cfg = small_config();
  cfg.thp_enabled = false;
  cfg.hugetlb_pool_per_zone = 512 * MiB;
  cfg.hugetlbfs_small_spill = 0.0; // deterministic for this test
  Node node(engine, cfg);
  Process& p = spawn_app(node, MmPolicy::kHugetlbfs);
  const auto out = node.sys_mmap(p, 8 * MiB, kProtRW, Node::Segment::kHeapData);
  ASSERT_EQ(out.err, Errno::kOk);
  const mm::Vma* vma = p.address_space().vmas().find(out.addr);
  ASSERT_NE(vma, nullptr);
  EXPECT_EQ(vma->kind, mm::VmaKind::kHugetlb);
  const std::uint64_t pool_before = node.hugetlb()->free_pages(0);
  (void)node.touch_range(p, Range{out.addr, out.addr + 8 * MiB});
  EXPECT_EQ(node.hugetlb()->free_pages(0), pool_before - 4);
  EXPECT_EQ(p.fault_stats().count[1], 4u); // 4 large faults
}

TEST(Node, HugetlbfsStackNeverPoolBacked) {
  sim::Engine engine;
  NodeConfig cfg = small_config();
  cfg.thp_enabled = false;
  cfg.hugetlb_pool_per_zone = 512 * MiB;
  Node node(engine, cfg);
  Process& p = spawn_app(node, MmPolicy::kHugetlbfs);
  const auto out = node.sys_mmap(p, 8 * MiB, kProtRW, Node::Segment::kStack);
  ASSERT_EQ(out.err, Errno::kOk);
  EXPECT_NE(p.address_space().vmas().find(out.addr)->kind, mm::VmaKind::kHugetlb);
}

TEST(Node, MprotectSplitsVmaAndDefeatsThp) {
  sim::Engine engine;
  Node node(engine, small_config());
  Process& p = spawn_app(node, MmPolicy::kLinuxThp);
  const auto out = node.sys_mmap(p, 8 * MiB, kProtRW, Node::Segment::kHeapData);
  // Change permissions on an interior 4K page: the VMA splits into
  // three, and the aligned 2M region around the split can no longer be
  // huge-mapped (§II-A permission conflicts).
  const Addr mid = out.addr + 4 * MiB + 4 * KiB;
  const auto prot = node.sys_mprotect(p, mid, 4 * KiB, Prot::kRead);
  ASSERT_EQ(prot.err, Errno::kOk);
  (void)node.touch_range(p, Range{out.addr, out.addr + 8 * MiB});
  const auto t = p.address_space().page_table().walk(align_down(mid, kLargePageSize));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->size, PageSize::k4K);
}

TEST(Node, MlockPopulatesSplitsAndPins) {
  sim::Engine engine;
  Node node(engine, small_config());
  Process& p = spawn_app(node, MmPolicy::kLinuxThp);
  const auto out = node.sys_mmap(p, 4 * MiB, kProtRW, Node::Segment::kHeapData);
  (void)node.touch_range(p, Range{out.addr, out.addr + 4 * MiB});
  ASSERT_GT(p.address_space().mapping_mix().bytes_2m, 0u);
  const auto lock = node.sys_mlock(p, out.addr, 4 * MiB);
  ASSERT_EQ(lock.err, Errno::kOk);
  // §II-B: pinning splits every large page.
  EXPECT_EQ(p.address_space().mapping_mix().bytes_2m, 0u);
  const mm::Vma* vma = p.address_space().vmas().find(out.addr);
  ASSERT_NE(vma, nullptr);
  EXPECT_TRUE(vma->locked);
}

TEST(Node, ExitProcessReleasesEverything) {
  sim::Engine engine;
  Node node(engine, small_config());
  const std::uint64_t free_before = node.memory().free_bytes(0) + node.memory().free_bytes(1);
  Process& p = spawn_app(node, MmPolicy::kLinuxThp);
  const auto out = node.sys_mmap(p, 16 * MiB, kProtRW, Node::Segment::kHeapData);
  (void)node.touch_range(p, Range{out.addr, out.addr + 16 * MiB});
  node.exit_process(p);
  EXPECT_FALSE(p.alive());
  EXPECT_EQ(node.memory().free_bytes(0) + node.memory().free_bytes(1), free_before);
}

TEST(Node, HpmmapExitUnregistersFromModule) {
  sim::Engine engine;
  NodeConfig cfg = small_config();
  core::ModuleConfig mod;
  mod.offline_bytes_per_zone = 512 * MiB;
  cfg.hpmmap = mod;
  Node node(engine, cfg);
  Process& p = spawn_app(node, MmPolicy::kHpmmap);
  (void)node.sys_mmap(p, 32 * MiB, kProtRW, Node::Segment::kHeapData);
  node.exit_process(p);
  EXPECT_FALSE(node.hpmmap_module()->handles(p.pid()));
  EXPECT_TRUE(node.hpmmap_module()->allocator().all_free());
}

TEST(Node, KernelAllocFreeRoundTrip) {
  sim::Engine engine;
  Node node(engine, small_config());
  const std::uint64_t free_before = node.memory().free_bytes(0);
  const auto addr = node.kernel_alloc(0, 4);
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(node.memory().free_bytes(0), free_before - 64 * KiB);
  node.kernel_free(0, *addr, 4);
  EXPECT_EQ(node.memory().free_bytes(0), free_before);
}

TEST(Node, ComputeBurstDilatesUnderOvercommit) {
  sim::Engine engine;
  Node node(engine, small_config());
  Process& p = spawn_app(node, MmPolicy::kLinuxThp);
  const Cycles idle = node.compute_burst(p, 10'000'000, 0, 0.95);
  // Pile unpinned demand onto every core.
  std::vector<Scheduler::ThreadId> jobs;
  for (int i = 0; i < 40; ++i) {
    jobs.push_back(node.scheduler().add_thread(-1, 1.0));
  }
  const Cycles loaded = node.compute_burst(p, 10'000'000, 0, 0.95);
  EXPECT_GT(loaded, idle * 2);
  for (auto id : jobs) {
    node.scheduler().remove_thread(id);
  }
}

TEST(Node, ComputeBurstChargesTranslationCosts) {
  sim::Engine engine;
  Node node(engine, small_config());
  // Same working-set size, different mapping mixes.
  Process& small_proc = spawn_app(node, MmPolicy::kLinuxPlain);
  Process& large_proc = node.spawn("app2", MmPolicy::kLinuxThp, 1, 1.0,
                                   mm::AddressSpace::ZonePolicy::kSingle, 0);
  const auto a = node.sys_mmap(small_proc, 256 * MiB, kProtRW, Node::Segment::kHeapData);
  const auto b = node.sys_mmap(large_proc, 256 * MiB, kProtRW, Node::Segment::kHeapData);
  (void)node.touch_range(small_proc, Range{a.addr, a.addr + 256 * MiB});
  (void)node.touch_range(large_proc, Range{b.addr, b.addr + 256 * MiB});
  const Cycles c_small = node.compute_burst(small_proc, 10'000'000, 3'000'000, 0.95);
  const Cycles c_large = node.compute_burst(large_proc, 10'000'000, 3'000'000, 0.95);
  EXPECT_GT(c_small, c_large); // 4K translation costs more (§II)
}

TEST(Node, SwapNeverTouchesOfflinedFrames) {
  // HPMMAP memory is invisible to reclaim: even under brutal pressure,
  // offlined frames are never evicted (§III-A isolation).
  sim::Engine engine;
  NodeConfig cfg = small_config();
  core::ModuleConfig mod;
  mod.offline_bytes_per_zone = 1 * GiB; // leave Linux 1 GiB per zone
  cfg.hpmmap = mod;
  Node node(engine, cfg);
  Process& hpc = spawn_app(node, MmPolicy::kHpmmap);
  const auto region = node.sys_mmap(hpc, 256 * MiB, kProtRW, Node::Segment::kHeapData);
  ASSERT_EQ(region.err, Errno::kOk);

  // Linux-side process creates pressure: fill the rest with anon pages.
  Process& hog = node.spawn("hog", MmPolicy::kLinuxPlain, 1, 1.0,
                            mm::AddressSpace::ZonePolicy::kSingle, 0);
  const auto hog_mem = node.sys_mmap(hog, 800 * MiB, kProtRW, Node::Segment::kHeapData);
  (void)node.touch_range(hog, Range{hog_mem.addr, hog_mem.addr + 800 * MiB});

  // Whatever swapping occurred, HPMMAP mappings are intact.
  for (Addr va = region.addr; va < region.addr + 256 * MiB; va += kLargePageSize) {
    EXPECT_TRUE(hpc.address_space().page_table().walk(va).has_value());
  }
  EXPECT_EQ(hpc.address_space().swapped_pages(), 0u);
}

TEST(Node, AgedBootFragmentsAndFillsCache) {
  sim::Engine engine;
  NodeConfig cfg = small_config();
  cfg.aged_boot = true;
  Node node(engine, cfg);
  EXPECT_GT(node.memory().cache(0).cached_bytes(), 100 * MiB);
  EXPECT_GT(node.memory().buddy(0).fragmentation(), 0.01);
  // Slab stays allocated: free + cache < online.
  EXPECT_LT(node.memory().free_bytes(0) + node.memory().cache(0).cached_bytes(),
            node.memory().buddy(0).total_bytes());
}

} // namespace
} // namespace hpmmap::os
