// Property-based stress: drive a Node through tens of thousands of
// random address-space operations across every memory policy, mirror the
// expected state in a flat reference model, and differentially check the
// two at every step boundary while the invariant auditor sweeps the whole
// machine at checkpoints. Identical seeds must reproduce identical final
// machine state, bit for bit.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "harness/batch.hpp"
#include "linux_mm/buddy_allocator.hpp"
#include "os/node.hpp"
#include "sim/engine.hpp"
#include "snapshot/snapshot.hpp"
#include "verify/audit.hpp"

namespace hpmmap {
namespace {

constexpr std::size_t kOps = 10'000;
constexpr std::size_t kAuditEvery = 2'000;
constexpr std::size_t kMaxProcs = 6;

os::NodeConfig stress_config(std::uint64_t seed) {
  os::NodeConfig cfg;
  cfg.machine = hw::dell_r415();
  cfg.machine.ram_bytes = 4 * GiB;
  cfg.seed = seed;
  cfg.aged_boot = false;
  core::ModuleConfig mod;
  mod.offline_bytes_per_zone = 512 * MiB;
  cfg.hpmmap = mod;
  cfg.hugetlb_pool_per_zone = 128 * MiB;
  cfg.hugetlbfs_small_spill = 0.0;
  return cfg;
}

/// Flat reference model of one process: what the simulation's VMA tree
/// and page table must agree with, maintained by replaying the same
/// syscall results the Node reported.
struct RefProcess {
  os::Process* proc = nullptr;
  Pid pid = 0; // survives snapshot/restore; proc is rebound from it
  os::MmPolicy policy{};
  std::map<Addr, Addr> mapped;   // begin -> end, disjoint, maximal info
  std::set<Addr> touched;        // 4K page addresses we demanded
  Addr heap_base = 0, heap_end = 0;

  void add(Addr begin, Addr end) { mapped[begin] = end; }
  void remove(Addr begin, Addr end) {
    // Split/trim every interval intersecting [begin, end).
    auto it = mapped.lower_bound(begin);
    if (it != mapped.begin()) {
      --it;
    }
    std::vector<std::pair<Addr, Addr>> pieces;
    while (it != mapped.end() && it->first < end) {
      const Addr b = it->first, e = it->second;
      if (e <= begin) {
        ++it;
        continue;
      }
      it = mapped.erase(it);
      if (b < begin) {
        pieces.emplace_back(b, begin);
      }
      if (e > end) {
        pieces.emplace_back(end, e);
      }
    }
    for (const auto& [b, e] : pieces) {
      mapped[b] = e;
    }
    for (auto t = touched.lower_bound(begin); t != touched.end() && *t < end;) {
      t = touched.erase(t);
    }
  }
  [[nodiscard]] bool covers(Addr page) const {
    auto it = mapped.upper_bound(page);
    if (it == mapped.begin()) {
      return false;
    }
    --it;
    return page >= it->first && page + 4 * KiB <= it->second;
  }
  [[nodiscard]] std::uint64_t mapped_bytes() const {
    std::uint64_t total = 0;
    for (const auto& [b, e] : mapped) {
      total += e - b;
    }
    return total;
  }
};

/// FNV-1a over the machine's observable final state: every process's
/// leaves and VMAs plus the allocator totals. Equal digests == equal
/// state for determinism purposes.
class Digest {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ull;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

std::uint64_t machine_digest(os::Node& node) {
  Digest d;
  node.for_each_process([&](const os::Process& p) {
    if (!p.alive()) {
      return;
    }
    d.mix(p.pid());
    p.address_space().page_table().for_each_leaf([&](Addr va, mm::Translation t) {
      d.mix(va);
      d.mix(t.phys);
      d.mix(static_cast<std::uint64_t>(t.size));
      d.mix(static_cast<std::uint64_t>(t.prot));
    });
    p.address_space().vmas().for_each([&](const mm::Vma& v) {
      d.mix(v.range.begin);
      d.mix(v.range.end);
      d.mix(static_cast<std::uint64_t>(v.kind));
    });
    d.mix(p.address_space().rss_bytes());
  });
  for (ZoneId z = 0; z < node.memory().zone_count(); ++z) {
    d.mix(node.memory().free_bytes(z));
  }
  return d.value();
}

/// One full random walk; returns the final-state digest. `check` enables
/// the differential/audit assertions (off for the pure-determinism
/// replay, which only needs the digest). `snapshots` mixes capture/
/// teardown/restore cycles into the drain ops — the restored world must
/// carry the op stream forward bit-identically, so the returned digest
/// must equal the uninterrupted walk's.
std::uint64_t run_walk(std::uint64_t seed, bool check, std::size_t ops = kOps,
                       bool snapshots = false) {
  auto engine = std::make_unique<sim::Engine>();
  auto node = std::make_unique<os::Node>(*engine, stress_config(seed));
  Rng rng = Rng(seed).fork("stress");

  std::vector<RefProcess> procs;
  std::uint64_t spawned = 0;
  const auto spawn_one = [&]() {
    static constexpr os::MmPolicy kPolicies[] = {
        os::MmPolicy::kLinuxThp, os::MmPolicy::kLinuxPlain, os::MmPolicy::kHugetlbfs,
        os::MmPolicy::kHpmmap};
    RefProcess ref;
    ref.policy = kPolicies[rng.uniform(4)];
    ref.proc = &node->spawn("stress" + std::to_string(spawned++), ref.policy,
                            static_cast<std::int32_t>(rng.uniform(8)), 1.0,
                            mm::AddressSpace::ZonePolicy::kSingle, 0);
    ref.pid = ref.proc->pid();
    const auto brk = node->sys_brk(*ref.proc, 0);
    ref.heap_base = brk.addr;
    ref.heap_end = brk.addr;
    procs.push_back(std::move(ref));
  };
  spawn_one();

  const auto differential_check = [&](const RefProcess& ref) {
    // Every leaf the page table holds lies inside a reference interval
    // (the brk heap counts), and every page we touched is still mapped
    // or was swapped out — never silently lost.
    const mm::AddressSpace& as = ref.proc->address_space();
    as.page_table().for_each_leaf([&](Addr va, mm::Translation t) {
      const Addr end = va + static_cast<Addr>(t.size);
      // khugepaged merges map the whole 2M window, which may run past
      // the exact brk point while staying inside the heap VMA.
      const bool in_heap = va >= ref.heap_base &&
                           end <= align_up(ref.heap_end, kLargePageSize);
      const bool in_map = ref.covers(va) && ref.covers(end - 4 * KiB);
      const bool in_exec = va < ref.heap_base || va >= mm::AddressLayout::kStackTop - 64 * MiB;
      ASSERT_TRUE(in_heap || in_map || in_exec)
          << "leaf outside reference state at 0x" << std::hex << va;
    });
    for (const Addr page : ref.touched) {
      const bool present = as.page_table().walk(page).has_value();
      ASSERT_TRUE(present || as.is_swapped(page))
          << "touched page lost at 0x" << std::hex << page;
    }
    std::uint64_t vma_bytes = 0;
    as.vmas().for_each([&](const mm::Vma& v) { vma_bytes += v.range.size(); });
    ASSERT_GE(vma_bytes, ref.mapped_bytes());
  };

  std::uint64_t snapshot_points = 0;
  for (std::size_t op = 0; op < ops; ++op) {
    RefProcess& ref = procs[rng.uniform(procs.size())];
    const std::uint64_t draw = rng.uniform(100);
    if (draw < 25) { // mmap
      std::uint64_t len = rng.uniform(1, 512) * 4 * KiB;
      if (ref.policy == os::MmPolicy::kHugetlbfs || ref.policy == os::MmPolicy::kHpmmap) {
        // Pool regions are 2M-grained; HPMMAP rounds and eagerly backs
        // the whole rounded region, so the reference must match.
        len = align_up(len, kLargePageSize);
      }
      const auto out = node->sys_mmap(*ref.proc, len, kProtRW, os::Node::Segment::kHeapData);
      if (out.err == Errno::kOk) {
        ref.add(out.addr, out.addr + len);
      }
    } else if (draw < 40) { // munmap
      if (!ref.mapped.empty()) {
        auto it = ref.mapped.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(rng.uniform(ref.mapped.size())));
        Addr begin = it->first, end = it->second;
        if (ref.policy == os::MmPolicy::kLinuxThp || ref.policy == os::MmPolicy::kLinuxPlain) {
          // Linux policies handle partial unmaps; carve a random page-
          // aligned subrange. Pool/window policies release whole regions.
          const std::uint64_t pages = (end - begin) / (4 * KiB);
          const std::uint64_t skip = rng.uniform(pages);
          begin += skip * 4 * KiB;
          end = begin + rng.uniform(1, pages - skip) * 4 * KiB;
        }
        const auto out = node->sys_munmap(*ref.proc, begin, end - begin);
        if (out.err == Errno::kOk) {
          ref.remove(begin, end);
        }
      }
    } else if (draw < 75) { // touch a random mapped window
      if (!ref.mapped.empty()) {
        auto it = ref.mapped.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(rng.uniform(ref.mapped.size())));
        const Addr begin = it->first;
        const std::uint64_t span = it->second - begin;
        const std::uint64_t len = std::min<std::uint64_t>(span, rng.uniform(1, 128) * 4 * KiB);
        (void)node->touch_range(*ref.proc, Range{begin, begin + len});
        for (Addr page = begin; page < begin + len; page += 4 * KiB) {
          ref.touched.insert(page);
        }
      }
    } else if (draw < 85) { // brk grow (and touch the fresh heap tail)
      const std::uint64_t grow = rng.uniform(1, 64) * 4 * KiB;
      const auto out = node->sys_brk(*ref.proc, ref.heap_end + grow);
      if (out.err == Errno::kOk) {
        const Addr old_end = ref.heap_end;
        ref.heap_end += grow;
        (void)node->touch_range(*ref.proc, Range{old_end, ref.heap_end});
        for (Addr page = old_end; page < ref.heap_end; page += 4 * KiB) {
          ref.touched.insert(page);
        }
      }
    } else if (draw < 92) { // spawn
      if (procs.size() < kMaxProcs) {
        spawn_one();
      }
    } else if (draw < 96) { // exit
      if (procs.size() > 1) {
        const std::size_t victim = rng.uniform(procs.size());
        node->exit_process(*procs[victim].proc);
        procs.erase(procs.begin() + static_cast<std::ptrdiff_t>(victim));
      }
    } else { // let scheduled work (khugepaged merges) land
      engine->run_until(engine->now() + 50'000'000);
      // Snapshot points (draws 96–97) ride the quiesced instant the
      // drain just produced: capture the world, tear it down, restore
      // into a fresh boot and keep walking. Nothing here consumes walk
      // rng, so the op stream with snapshots on is bit-identical to the
      // uninterrupted walk — which is exactly what the digest asserts.
      // Every 64th trigger restores (~7 times over 10k ops) to keep the
      // suite fast while still crossing many machine states.
      if (snapshots && draw < 98 && snapshot_points++ % 64 == 0) {
        const snapshot::WorldImage image =
            snapshot::capture_world(*engine, {node.get()});
        node.reset();
        engine = std::make_unique<sim::Engine>();
        node = std::make_unique<os::Node>(*engine, stress_config(seed));
        snapshot::restore_world(image, *engine, {node.get()});
        // The reference model survives by pid; rebind the process
        // handles into the restored registry.
        for (RefProcess& p : procs) {
          p.proc = nullptr;
          node->for_each_process([&](const os::Process& q) {
            if (q.pid() == p.pid) {
              p.proc = const_cast<os::Process*>(&q);
            }
          });
          EXPECT_NE(p.proc, nullptr)
              << "pid " << p.pid << " missing after restore at op " << op;
          if (p.proc == nullptr) {
            return 0;
          }
        }
      }
    }

    if (check && (op + 1) % kAuditEvery == 0) {
      for (const RefProcess& p : procs) {
        differential_check(p);
        if (::testing::Test::HasFatalFailure()) {
          return 0;
        }
      }
      verify::MmAuditor auditor(*node);
      const verify::AuditReport rep = auditor.run();
      EXPECT_TRUE(rep.ok()) << "op " << op << ": " << rep.summary();
    }
  }

  engine->run_until(engine->now() + 1'000'000'000); // drain scheduled merges
  if (check) {
    for (const RefProcess& p : procs) {
      differential_check(p);
    }
    verify::MmAuditor auditor(*node);
    const verify::AuditReport rep = auditor.run();
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_GT(rep.checks, 0u);
  }
  return machine_digest(*node);
}

class StressRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressRandomOps, TenThousandOpsStayConsistent) {
  const std::uint64_t digest = run_walk(GetParam(), /*check=*/true);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  // Determinism: an identical replay reaches the identical final state.
  EXPECT_EQ(run_walk(GetParam(), /*check=*/false), digest);
}

TEST_P(StressRandomOps, SnapshotRestoreCyclesKeepTheWalkBitIdentical) {
  // The same walk with capture/teardown/restore cycles mixed into the
  // drain ops must land on the same final digest as the uninterrupted
  // walk — snapshot/restore is invisible to the op stream. The full
  // differential checks stay on so the restored worlds are also audited
  // against the reference model at every checkpoint.
  const std::uint64_t plain = run_walk(GetParam(), /*check=*/false);
  const std::uint64_t restored =
      run_walk(GetParam(), /*check=*/true, kOps, /*snapshots=*/true);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  EXPECT_EQ(restored, plain);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressRandomOps, ::testing::Values(101u, 202u, 303u));

/// The digests of the three stress seeds for a given batch-runner width.
/// Each walk builds its own engine/node and binds the worker thread's
/// run context, so walks are free to land on any thread.
std::vector<std::uint64_t> walk_digests(unsigned jobs, std::size_t ops) {
  const std::uint64_t seeds[] = {101u, 202u, 303u};
  std::vector<std::function<std::uint64_t()>> tasks;
  for (const std::uint64_t seed : seeds) {
    tasks.emplace_back([seed, ops] { return run_walk(seed, /*check=*/false, ops); });
  }
  return harness::BatchRunner(jobs).map(std::move(tasks));
}

/// Differential buddy stress: the bitmap-freelist allocator against an
/// ordered-set reference model (the pre-rework data structure) through a
/// long random walk of alloc/free/take/probe ops across multiple seeds.
/// Both models pop the lowest-addressed block, so every returned address
/// — not just the aggregate accounting — must match.
TEST(StressBuddy, DifferentialVsSetModel) {
  constexpr unsigned kMaxOrd = 10;
  constexpr std::uint64_t kBytes = 128 * MiB;
  for (const std::uint64_t seed : {0xA110Cull, 0xB0DDull, 0xF4EEull}) {
    const Range range{8 * MiB, 8 * MiB + kBytes};
    mm::BuddyAllocator buddy(range, kMaxOrd);
    // Reference freelists with the same seeding/pop/coalesce policy.
    std::vector<std::set<Addr>> ref(kMaxOrd + 1);
    std::uint64_t ref_free = kBytes;
    ref[kMaxOrd].clear();
    for (Addr c = range.begin; c < range.end; c += mm::BuddyAllocator::order_bytes(kMaxOrd)) {
      ref[kMaxOrd].insert(c);
    }
    const auto ref_alloc = [&](unsigned order) -> std::optional<Addr> {
      unsigned found = order;
      while (found <= kMaxOrd && ref[found].empty()) {
        ++found;
      }
      if (found > kMaxOrd) {
        return std::nullopt;
      }
      Addr block = *ref[found].begin();
      ref[found].erase(ref[found].begin());
      for (unsigned o = found; o > order; --o) {
        ref[o - 1].insert(block + mm::BuddyAllocator::order_bytes(o - 1));
      }
      ref_free -= mm::BuddyAllocator::order_bytes(order);
      return block;
    };
    const auto ref_release = [&](Addr addr, unsigned order) {
      ref_free += mm::BuddyAllocator::order_bytes(order);
      Addr block = addr;
      unsigned o = order;
      while (o < kMaxOrd) {
        const Addr buddy_addr =
            range.begin + ((block - range.begin) ^ mm::BuddyAllocator::order_bytes(o));
        if (!ref[o].contains(buddy_addr)) {
          break;
        }
        ref[o].erase(buddy_addr);
        block = std::min(block, buddy_addr);
        ++o;
      }
      ref[o].insert(block);
    };

    Rng rng(seed);
    std::vector<std::pair<Addr, unsigned>> held;
    for (std::size_t i = 0; i < 50'000; ++i) {
      const std::uint64_t roll = rng.uniform(100);
      if (roll < 50) {
        const unsigned order = static_cast<unsigned>(rng.uniform(kMaxOrd + 1));
        const auto a = buddy.alloc(order);
        const auto r = ref_alloc(order);
        ASSERT_EQ(a.has_value(), r.has_value()) << "seed " << seed << " op " << i;
        if (a.has_value()) {
          ASSERT_EQ(a->addr, *r) << "seed " << seed << " op " << i;
          held.emplace_back(a->addr, order);
        }
      } else if (roll < 88 && !held.empty()) {
        const std::size_t k = rng.uniform(held.size());
        buddy.free(held[k].first, held[k].second);
        ref_release(held[k].first, held[k].second);
        held[k] = held.back();
        held.pop_back();
      } else {
        // Probe a random address: free_block_containing must agree with
        // an exhaustive scan of the reference freelists.
        const Addr probe = range.begin + align_down(rng.uniform(kBytes), kSmallPageSize);
        const auto got = buddy.free_block_containing(probe);
        std::optional<std::pair<Addr, unsigned>> want;
        for (unsigned o = 0; o <= kMaxOrd && !want.has_value(); ++o) {
          const Addr base =
              range.begin + align_down(probe - range.begin, mm::BuddyAllocator::order_bytes(o));
          if (ref[o].contains(base)) {
            want = std::make_pair(base, o);
          }
        }
        ASSERT_EQ(got, want) << "seed " << seed << " op " << i;
      }
      if (i % 10'000 == 0) {
        ASSERT_EQ(buddy.free_bytes(), ref_free) << "seed " << seed << " op " << i;
        ASSERT_TRUE(buddy.check_consistency()) << "seed " << seed << " op " << i;
        verify::AuditReport rep;
        verify::audit_buddy(buddy, "stress", rep);
        ASSERT_TRUE(rep.ok()) << rep.summary();
      }
    }
    // Final state: per-order populations identical, enumeration identical.
    for (unsigned o = 0; o <= kMaxOrd; ++o) {
      ASSERT_EQ(buddy.free_blocks(o), ref[o].size()) << "seed " << seed << " order " << o;
    }
    std::vector<std::pair<Addr, unsigned>> got_blocks;
    buddy.for_each_free_block([&](Addr a, unsigned o) { got_blocks.emplace_back(a, o); });
    std::vector<std::pair<Addr, unsigned>> want_blocks;
    for (unsigned o = 0; o <= kMaxOrd; ++o) {
      for (const Addr a : ref[o]) {
        want_blocks.emplace_back(a, o);
      }
    }
    ASSERT_EQ(got_blocks, want_blocks) << "seed " << seed;
  }
}

TEST(StressBatch, ParallelReplayIsByteIdenticalToSerial) {
  // The whole determinism story in one assertion: the three-seed suite
  // run serially and on four workers must produce identical digests in
  // identical order. Shorter walks than the main suite keep this fast
  // enough for the TSan job, which runs it to prove the per-run contexts
  // really are thread-confined.
  constexpr std::size_t kBatchOps = 3'000;
  const std::vector<std::uint64_t> serial = walk_digests(1, kBatchOps);
  const std::vector<std::uint64_t> parallel = walk_digests(4, kBatchOps);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial.size(), 3u);
}

} // namespace
} // namespace hpmmap
