// Unit tests: core vocabulary types, alignment helpers, the address
// space wrapper, and logging plumbing.
#include <gtest/gtest.h>

#include "common/log.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "linux_mm/address_space.hpp"

namespace hpmmap {
namespace {

// --- Range ----------------------------------------------------------------

TEST(Range, SizeAndEmpty) {
  EXPECT_EQ((Range{0, 0}).size(), 0u);
  EXPECT_TRUE((Range{5, 5}).empty());
  EXPECT_TRUE((Range{7, 5}).empty());
  EXPECT_EQ((Range{4 * KiB, 12 * KiB}).size(), 8 * KiB);
  EXPECT_FALSE((Range{0, 1}).empty());
}

TEST(Range, ContainsAddress) {
  const Range r{100, 200};
  EXPECT_TRUE(r.contains(Addr{100}));
  EXPECT_TRUE(r.contains(Addr{199}));
  EXPECT_FALSE(r.contains(Addr{200})); // half-open
  EXPECT_FALSE(r.contains(Addr{99}));
}

TEST(Range, ContainsRange) {
  const Range r{100, 200};
  EXPECT_TRUE(r.contains(Range{100, 200}));
  EXPECT_TRUE(r.contains(Range{150, 160}));
  EXPECT_FALSE(r.contains(Range{90, 110}));
  EXPECT_FALSE(r.contains(Range{150, 201}));
}

TEST(Range, Overlaps) {
  const Range r{100, 200};
  EXPECT_TRUE(r.overlaps(Range{150, 250}));
  EXPECT_TRUE(r.overlaps(Range{50, 101}));
  EXPECT_FALSE(r.overlaps(Range{200, 300})); // touching, half-open
  EXPECT_FALSE(r.overlaps(Range{0, 100}));
}

TEST(Range, Ordering) {
  EXPECT_LT((Range{0, 10}), (Range{1, 5}));
  EXPECT_EQ((Range{3, 9}), (Range{3, 9}));
}

// --- alignment ----------------------------------------------------------------

TEST(Alignment, AlignDown) {
  EXPECT_EQ(align_down(0, 4 * KiB), 0u);
  EXPECT_EQ(align_down(4095, 4 * KiB), 0u);
  EXPECT_EQ(align_down(4096, 4 * KiB), 4096u);
  EXPECT_EQ(align_down(3 * MiB, 2 * MiB), 2 * MiB);
}

TEST(Alignment, AlignUp) {
  EXPECT_EQ(align_up(0, 4 * KiB), 0u);
  EXPECT_EQ(align_up(1, 4 * KiB), 4096u);
  EXPECT_EQ(align_up(4096, 4 * KiB), 4096u);
  EXPECT_EQ(align_up(2 * MiB + 1, 2 * MiB), 4 * MiB);
}

TEST(Alignment, IsAligned) {
  EXPECT_TRUE(is_aligned(0, 2 * MiB));
  EXPECT_TRUE(is_aligned(4 * MiB, 2 * MiB));
  EXPECT_FALSE(is_aligned(2 * MiB + 4 * KiB, 2 * MiB));
}

// --- enums & names -----------------------------------------------------------------

TEST(Names, PageSizes) {
  EXPECT_EQ(bytes(PageSize::k4K), 4 * KiB);
  EXPECT_EQ(bytes(PageSize::k2M), 2 * MiB);
  EXPECT_EQ(bytes(PageSize::k1G), 1 * GiB);
  EXPECT_EQ(name(PageSize::k4K), "4K");
  EXPECT_EQ(name(PageSize::k2M), "2M");
  EXPECT_EQ(name(PageSize::k1G), "1G");
}

TEST(Names, Errno) {
  EXPECT_EQ(name(Errno::kOk), "OK");
  EXPECT_EQ(name(Errno::kNoMem), "ENOMEM");
  EXPECT_EQ(name(Errno::kFault), "EFAULT");
}

TEST(Prot, FlagAlgebra) {
  EXPECT_TRUE(has(kProtRW, Prot::kRead));
  EXPECT_TRUE(has(kProtRW, Prot::kWrite));
  EXPECT_FALSE(has(kProtRW, Prot::kExec));
  EXPECT_TRUE(has(kProtRX | Prot::kWrite, Prot::kExec));
  EXPECT_EQ(kProtRW & Prot::kExec, Prot::kNone);
}

TEST(Units, Constants) {
  EXPECT_EQ(kSmallPagesPerLarge, 512u);
  EXPECT_EQ(kLargePagesPerHuge, 512u);
  EXPECT_EQ(kMemorySectionSize, 128 * MiB);
}

// --- AddressSpace ----------------------------------------------------------------

TEST(AddressSpace, LockWaitSemantics) {
  mm::AddressSpace as(1);
  EXPECT_EQ(as.lock_wait(100), 0u);
  as.lock_until(1000);
  EXPECT_EQ(as.lock_wait(100), 900u);
  EXPECT_EQ(as.lock_wait(1000), 0u);
  EXPECT_TRUE(as.locked_at(999));
  EXPECT_FALSE(as.locked_at(1000));
  // Extending only ever grows the hold.
  as.lock_until(500);
  EXPECT_EQ(as.lock_wait(100), 900u);
  as.lock_until(2000);
  EXPECT_EQ(as.lock_wait(100), 1900u);
}

TEST(AddressSpace, SingleZonePolicy) {
  mm::AddressSpace as(1);
  as.set_zone_policy(mm::AddressSpace::ZonePolicy::kSingle, 1, 2);
  EXPECT_EQ(as.zone_for(0), 1u);
  EXPECT_EQ(as.zone_for(123 * GiB), 1u);
}

TEST(AddressSpace, InterleavePolicyStripesBy2M) {
  mm::AddressSpace as(1);
  as.set_zone_policy(mm::AddressSpace::ZonePolicy::kInterleave, 0, 2);
  EXPECT_EQ(as.zone_for(0), 0u);
  EXPECT_EQ(as.zone_for(2 * MiB), 1u);
  EXPECT_EQ(as.zone_for(4 * MiB), 0u);
  EXPECT_EQ(as.zone_for(2 * MiB + 17), 1u); // same chunk, same zone
}

TEST(AddressSpace, InterleaveSplitsEvenly) {
  mm::AddressSpace as(1);
  as.set_zone_policy(mm::AddressSpace::ZonePolicy::kInterleave, 0, 2);
  int zone0 = 0;
  for (Addr chunk = 0; chunk < 100; ++chunk) {
    zone0 += as.zone_for(chunk * 2 * MiB) == 0 ? 1 : 0;
  }
  EXPECT_EQ(zone0, 50); // §IV: "exactly half its memory ... from each zone"
}

TEST(AddressSpace, HeapBookkeeping) {
  mm::AddressSpace as(1);
  as.set_heap_base(0x2000000);
  EXPECT_EQ(as.heap_base(), 0x2000000u);
  EXPECT_EQ(as.heap_end(), 0x2000000u);
  as.set_heap_end(0x2400000);
  EXPECT_EQ(as.heap_end(), 0x2400000u);
}

TEST(AddressSpace, SwapMarks) {
  mm::AddressSpace as(1);
  EXPECT_FALSE(as.take_swapped(0x1000));
  as.mark_swapped(0x1000);
  as.mark_swapped(0x2000);
  EXPECT_EQ(as.swapped_pages(), 2u);
  EXPECT_TRUE(as.take_swapped(0x1000));
  EXPECT_FALSE(as.take_swapped(0x1000)); // one-shot
  EXPECT_EQ(as.swapped_pages(), 1u);
}

TEST(AddressSpace, RssTracksPageTable) {
  mm::AddressSpace as(1);
  EXPECT_EQ(as.rss_bytes(), 0u);
  ASSERT_EQ(as.page_table().map(0x200000, 0x400000, PageSize::k2M, kProtRW), Errno::kOk);
  EXPECT_EQ(as.rss_bytes(), 2 * MiB);
}

// --- logging ----------------------------------------------------------------------

TEST(Log, LevelGate) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // These must not crash regardless of gating.
  log_debug("test", "dropped %d", 1);
  log_error("test", "emitted %s", "fine");
  set_log_level(before);
}

TEST(Log, FormatsSafely) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  log_warn("test", "%s %llu %.2f", "str", 123ull, 3.14);
  set_log_level(before);
}

} // namespace
} // namespace hpmmap
