// Unit tests: the HPMMAP module itself — offlining lifecycle, the Kitten
// allocator, interposed syscalls, and the paper's §III invariants.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/kitten_allocator.hpp"
#include "core/module.hpp"
#include "hw/bandwidth.hpp"
#include "hw/phys_mem.hpp"
#include "linux_mm/address_space.hpp"
#include "linux_mm/cost_model.hpp"

namespace hpmmap::core {
namespace {

struct Fixture {
  hw::PhysicalMemory phys{4 * GiB, 2}; // 2 GiB per zone
  hw::BandwidthModel bw{2, 5.6};
  mm::CostModel costs{};
  ModuleConfig config{};

  Fixture() { config.offline_bytes_per_zone = 1 * GiB; }

  std::unique_ptr<HpmmapModule> load() {
    return std::make_unique<HpmmapModule>(phys, bw, costs, Rng(1), config);
  }
};

// --- Kitten allocator -------------------------------------------------------

TEST(Kitten, AllocatesLargePagesWithoutCompaction) {
  std::vector<std::vector<Range>> ranges{{Range{0, 512 * MiB}}};
  KittenAllocator k(std::move(ranges));
  EXPECT_EQ(k.total_bytes(0), 512 * MiB);
  const auto a = k.alloc(0, kLargePageSize);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(is_aligned(*a, kLargePageSize));
  EXPECT_EQ(k.free_bytes(0), 512 * MiB - 2 * MiB);
}

TEST(Kitten, Allocates1GPages) {
  std::vector<std::vector<Range>> ranges{{Range{0, 2 * GiB}}};
  KittenAllocator k(std::move(ranges));
  const auto a = k.alloc(0, kHugePageSize);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(is_aligned(*a, kHugePageSize));
}

TEST(Kitten, FailsFastWhenExhausted) {
  std::vector<std::vector<Range>> ranges{{Range{0, 4 * MiB}}};
  KittenAllocator k(std::move(ranges));
  ASSERT_TRUE(k.alloc(0, 2 * MiB).has_value());
  ASSERT_TRUE(k.alloc(0, 2 * MiB).has_value());
  EXPECT_FALSE(k.alloc(0, 2 * MiB).has_value());
  EXPECT_EQ(k.stats().failed, 1u);
}

TEST(Kitten, FreeRestoresAndCoalesces) {
  std::vector<std::vector<Range>> ranges{{Range{0, 16 * MiB}}};
  KittenAllocator k(std::move(ranges));
  std::vector<Addr> blocks;
  while (auto a = k.alloc(0, 2 * MiB)) {
    blocks.push_back(*a);
  }
  EXPECT_FALSE(k.all_free());
  for (Addr b : blocks) {
    k.free(0, b, 2 * MiB);
  }
  EXPECT_TRUE(k.all_free());
  // And a full-size block is again allocatable (coalesced).
  EXPECT_TRUE(k.alloc(0, 16 * MiB).has_value());
}

TEST(Kitten, MultipleRangesPerZone) {
  std::vector<std::vector<Range>> ranges{
      {Range{0, kMemorySectionSize}, Range{1 * GiB, 1 * GiB + kMemorySectionSize}}};
  KittenAllocator k(std::move(ranges));
  EXPECT_EQ(k.total_bytes(0), 2 * kMemorySectionSize);
  // Exhaust the first range; allocation spills into the second.
  std::size_t got = 0;
  while (k.alloc(0, kMemorySectionSize / 2).has_value()) {
    ++got;
  }
  EXPECT_EQ(got, 4u);
}

TEST(KittenDeath, ForeignFreeAborts) {
  std::vector<std::vector<Range>> ranges{{Range{0, 16 * MiB}}};
  KittenAllocator k(std::move(ranges));
  EXPECT_DEATH(k.free(0, 64 * MiB, 2 * MiB), "no Kitten range owns");
}

// --- module lifecycle ----------------------------------------------------------

TEST(Module, LoadOfflinesConfiguredMemory) {
  Fixture f;
  auto module = f.load();
  EXPECT_EQ(f.phys.offlined_bytes(0), 1 * GiB);
  EXPECT_EQ(f.phys.offlined_bytes(1), 1 * GiB);
  EXPECT_EQ(module->allocator().total_bytes(0), 1 * GiB);
}

TEST(Module, UnloadReturnsMemoryToLinux) {
  Fixture f;
  {
    auto module = f.load();
    EXPECT_EQ(f.phys.online_bytes(0), 1 * GiB);
  }
  EXPECT_EQ(f.phys.online_bytes(0), 2 * GiB);
  EXPECT_EQ(f.phys.offlined_bytes(0), 0u);
}

TEST(Module, RegistrationLifecycle) {
  Fixture f;
  mm::AddressSpace as(100);
  auto module = f.load();
  EXPECT_FALSE(module->handles(100));
  EXPECT_EQ(module->register_process(100, as), Errno::kOk);
  EXPECT_TRUE(module->handles(100));
  EXPECT_EQ(module->register_process(100, as), Errno::kExist);
  EXPECT_EQ(module->unregister_process(100), Errno::kOk);
  EXPECT_FALSE(module->handles(100));
  EXPECT_EQ(module->unregister_process(100), Errno::kNoEnt);
}

TEST(Module, MmapBacksImmediatelyWithLargePages) {
  Fixture f;
  mm::AddressSpace as(100);
  auto module = f.load();
  as.set_zone_policy(mm::AddressSpace::ZonePolicy::kSingle, 0, 2);
  ASSERT_EQ(module->register_process(100, as), Errno::kOk);

  const SyscallResult r = module->mmap(100, 10 * MiB, kProtRW);
  ASSERT_EQ(r.err, Errno::kOk);
  EXPECT_TRUE(HpmmapModule::in_window(r.addr));
  // On-request backing: every byte of the (2M-rounded) region is mapped
  // by a 2M leaf before the call returns — the zero-fault invariant.
  for (Addr va = r.addr; va < r.addr + 10 * MiB; va += kSmallPageSize) {
    const auto t = as.page_table().walk(va);
    ASSERT_TRUE(t.has_value()) << va - r.addr;
    EXPECT_EQ(t->size, PageSize::k2M);
  }
  EXPECT_EQ(module->stats().map_2m, 5u);
  EXPECT_EQ(module->stats().bytes_mapped, 10 * MiB);
}

TEST(Module, MmapRoundsToLargePage) {
  Fixture f;
  mm::AddressSpace as(100);
  auto module = f.load();
  ASSERT_EQ(module->register_process(100, as), Errno::kOk);
  const SyscallResult r = module->mmap(100, 5 * KiB, kProtRW);
  ASSERT_EQ(r.err, Errno::kOk);
  EXPECT_EQ(module->stats().bytes_mapped, kLargePageSize);
}

TEST(Module, MmapChargesZeroingUpFront) {
  Fixture f;
  mm::AddressSpace as(100);
  auto module = f.load();
  ASSERT_EQ(module->register_process(100, as), Errno::kOk);
  const SyscallResult r = module->mmap(100, 64 * MiB, kProtRW);
  // 64 MiB at ~6 B/cycle -> ~11M cycles charged to the syscall, not to
  // faults ("on-request" moves the cost off the fault path).
  EXPECT_GT(r.cost, 5'000'000u);
}

TEST(Module, MunmapReleasesBacking) {
  Fixture f;
  mm::AddressSpace as(100);
  auto module = f.load();
  ASSERT_EQ(module->register_process(100, as), Errno::kOk);
  const std::uint64_t free_before = module->allocator().free_bytes(0) +
                                    module->allocator().free_bytes(1);
  const SyscallResult r = module->mmap(100, 10 * MiB, kProtRW);
  ASSERT_EQ(r.err, Errno::kOk);
  const SyscallResult u = module->munmap(100, r.addr, 10 * MiB);
  ASSERT_EQ(u.err, Errno::kOk);
  EXPECT_EQ(module->allocator().free_bytes(0) + module->allocator().free_bytes(1),
            free_before);
  EXPECT_FALSE(as.page_table().walk(r.addr).has_value());
  EXPECT_EQ(module->stats().bytes_mapped, 0u);
}

TEST(Module, BrkGrowsAndShrinksHeap) {
  Fixture f;
  mm::AddressSpace as(100);
  auto module = f.load();
  ASSERT_EQ(module->register_process(100, as), Errno::kOk);
  const SyscallResult base = module->brk(100, 0);
  ASSERT_EQ(base.err, Errno::kOk);
  const SyscallResult grown = module->brk(100, base.addr + 5 * MiB);
  ASSERT_EQ(grown.err, Errno::kOk);
  // 5 MiB rounds to 6 MiB of 2M pages, all mapped.
  EXPECT_TRUE(as.page_table().walk(base.addr + 5 * MiB - 1).has_value());
  const SyscallResult shrunk = module->brk(100, base.addr + 1 * MiB);
  ASSERT_EQ(shrunk.err, Errno::kOk);
  EXPECT_TRUE(as.page_table().walk(base.addr).has_value());
  EXPECT_FALSE(as.page_table().walk(base.addr + 4 * MiB).has_value());
  const SyscallResult query = module->brk(100, 0);
  EXPECT_EQ(query.addr, base.addr + 1 * MiB);
}

TEST(Module, BrkBelowBaseIsEinval) {
  Fixture f;
  mm::AddressSpace as(100);
  auto module = f.load();
  ASSERT_EQ(module->register_process(100, as), Errno::kOk);
  const SyscallResult base = module->brk(100, 0);
  EXPECT_EQ(module->brk(100, base.addr - 1).err, Errno::kInval);
}

TEST(Module, MprotectUpdatesLeaves) {
  Fixture f;
  mm::AddressSpace as(100);
  auto module = f.load();
  ASSERT_EQ(module->register_process(100, as), Errno::kOk);
  const SyscallResult r = module->mmap(100, 4 * MiB, kProtRW);
  ASSERT_EQ(r.err, Errno::kOk);
  const SyscallResult p = module->mprotect(100, r.addr, 4 * MiB, Prot::kRead);
  ASSERT_EQ(p.err, Errno::kOk);
  EXPECT_EQ(as.page_table().walk(r.addr)->prot, Prot::kRead);
}

TEST(Module, SyscallsFromUnregisteredPidAreRejected) {
  Fixture f;
  auto module = f.load();
  EXPECT_EQ(module->mmap(999, 2 * MiB, kProtRW).err, Errno::kNoEnt);
  EXPECT_EQ(module->brk(999, 0).err, Errno::kNoEnt);
  EXPECT_EQ(module->munmap(999, mm::AddressLayout::kHpmmapBase, 2 * MiB).err, Errno::kNoEnt);
}

TEST(Module, ZeroFaultInvariant) {
  // The paper's core claim (§III-A): valid accesses to HPMMAP memory
  // generate no page faults. A fault on a mapped page is spurious and
  // must not reach any allocation path.
  Fixture f;
  mm::AddressSpace as(100);
  auto module = f.load();
  ASSERT_EQ(module->register_process(100, as), Errno::kOk);
  const SyscallResult r = module->mmap(100, 8 * MiB, kProtRW);
  ASSERT_EQ(r.err, Errno::kOk);
  const mm::FaultResult fr = module->fault(100, r.addr + 3 * MiB, 0);
  EXPECT_EQ(fr.err, Errno::kOk);
  EXPECT_EQ(module->stats().spurious_faults, 1u);
  EXPECT_EQ(module->stats().demand_faults, 0u);
}

TEST(Module, FaultOutsideRegionsIsEfault) {
  Fixture f;
  mm::AddressSpace as(100);
  auto module = f.load();
  ASSERT_EQ(module->register_process(100, as), Errno::kOk);
  const mm::FaultResult fr = module->fault(100, mm::AddressLayout::kHpmmapBase + 512 * GiB, 0);
  EXPECT_EQ(fr.err, Errno::kFault);
}

TEST(Module, DemandPagingAblationFaultsPerChunk) {
  Fixture f;
  f.config.on_request = false; // the A2 ablation
  mm::AddressSpace as(100);
  auto module = f.load();
  ASSERT_EQ(module->register_process(100, as), Errno::kOk);
  const SyscallResult r = module->mmap(100, 6 * MiB, kProtRW);
  ASSERT_EQ(r.err, Errno::kOk);
  EXPECT_FALSE(as.page_table().walk(r.addr).has_value()); // not yet backed
  const mm::FaultResult fr = module->fault(100, r.addr + 2 * MiB + 5, 0);
  EXPECT_EQ(fr.err, Errno::kOk);
  EXPECT_EQ(fr.used, PageSize::k2M);
  EXPECT_EQ(module->stats().demand_faults, 1u);
  EXPECT_TRUE(as.page_table().walk(r.addr + 2 * MiB).has_value());
  EXPECT_FALSE(as.page_table().walk(r.addr + 4 * MiB).has_value());
}

TEST(Module, OneGigPagesWhenEnabled) {
  Fixture f;
  f.config.use_1g_pages = true;
  mm::AddressSpace as(100);
  auto module = f.load();
  as.set_zone_policy(mm::AddressSpace::ZonePolicy::kSingle, 0, 2);
  ASSERT_EQ(module->register_process(100, as), Errno::kOk);
  // The mmap cursor is 1G-aligned at module scale; a 1 GiB request maps
  // with a single huge leaf when alignment and pool allow.
  const SyscallResult r = module->mmap(100, 1 * GiB, kProtRW);
  ASSERT_EQ(r.err, Errno::kOk);
  EXPECT_GE(module->stats().map_1g, 1u);
}

TEST(Module, ExhaustionRollsBackCleanly) {
  Fixture f;
  f.config.offline_bytes_per_zone = kMemorySectionSize; // tiny: 128 MiB/zone
  mm::AddressSpace as(100);
  auto module = f.load();
  ASSERT_EQ(module->register_process(100, as), Errno::kOk);
  const std::uint64_t free_before = module->allocator().free_bytes(0) +
                                    module->allocator().free_bytes(1);
  const SyscallResult r = module->mmap(100, 1 * GiB, kProtRW); // cannot fit
  EXPECT_EQ(r.err, Errno::kNoMem);
  EXPECT_EQ(module->allocator().free_bytes(0) + module->allocator().free_bytes(1),
            free_before);
  EXPECT_EQ(module->stats().bytes_mapped, 0u);
}

TEST(Module, UnregisterFreesEverything) {
  Fixture f;
  mm::AddressSpace as(100);
  auto module = f.load();
  ASSERT_EQ(module->register_process(100, as), Errno::kOk);
  (void)module->mmap(100, 32 * MiB, kProtRW);
  const SyscallResult base = module->brk(100, 0);
  (void)module->brk(100, base.addr + 16 * MiB);
  ASSERT_EQ(module->unregister_process(100), Errno::kOk);
  EXPECT_TRUE(module->allocator().all_free());
}

TEST(Module, NumaInterleaveSplitsAcrossZones) {
  Fixture f;
  mm::AddressSpace as(100);
  auto module = f.load();
  as.set_zone_policy(mm::AddressSpace::ZonePolicy::kInterleave, 0, 2);
  ASSERT_EQ(module->register_process(100, as), Errno::kOk);
  const SyscallResult r = module->mmap(100, 64 * MiB, kProtRW);
  ASSERT_EQ(r.err, Errno::kOk);
  const std::uint64_t used0 = module->allocator().total_bytes(0) -
                              module->allocator().free_bytes(0);
  const std::uint64_t used1 = module->allocator().total_bytes(1) -
                              module->allocator().free_bytes(1);
  // §IV: "exactly half its memory was allocated from each NUMA zone".
  EXPECT_EQ(used0, 32 * MiB);
  EXPECT_EQ(used1, 32 * MiB);
}

TEST(Module, InWindowClassifier) {
  EXPECT_TRUE(HpmmapModule::in_window(mm::AddressLayout::kHpmmapBase));
  EXPECT_TRUE(HpmmapModule::in_window(mm::AddressLayout::kHpmmapTop - 1));
  EXPECT_FALSE(HpmmapModule::in_window(mm::AddressLayout::kHpmmapTop));
  EXPECT_FALSE(HpmmapModule::in_window(0x400000));
}

TEST(Module, ForceUnloadReleasesLiveProcesses) {
  // Unloading with a live registration force-releases it: the offlined
  // memory is whole again and goes back online.
  Fixture f;
  mm::AddressSpace as(100);
  {
    auto module = f.load();
    ASSERT_EQ(module->register_process(100, as), Errno::kOk);
    ASSERT_EQ(module->mmap(100, 16 * MiB, kProtRW).err, Errno::kOk);
  }
  EXPECT_EQ(f.phys.offlined_bytes(0), 0u);
  EXPECT_EQ(f.phys.online_bytes(0), 2 * GiB);
}

} // namespace
} // namespace hpmmap::core
