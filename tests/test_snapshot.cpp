// Snapshot/restore correctness (DESIGN.md §12): a restored world is the
// captured world. The headline checks: MmAuditor structural equality on
// restore, byte-identical procfs renderings across a capture/restore
// round-trip, straight runs vs snapshot-resumed runs byte-identical for
// all three managers (trace streams included), save/load file
// round-trips, the amortized-aging sweep matching the plain batch bit
// for bit, and deterministic time-travel: restore the capture preceding
// a flight-recorder anomaly and single-step back to the exact event.
#include <gtest/gtest.h>

#include <cstdio>
#include <deque>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "harness/batch.hpp"
#include "harness/experiment.hpp"
#include "introspect/procfs.hpp"
#include "linux_mm/smp.hpp"
#include "os/node.hpp"
#include "sim/engine.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "verify/audit.hpp"

namespace hpmmap {
namespace {

harness::SingleNodeRunConfig quick(const std::string& app, harness::Manager mgr,
                                   workloads::CommodityProfile commodity,
                                   std::uint32_t cores) {
  harness::SingleNodeRunConfig cfg;
  cfg.app = app;
  cfg.manager = mgr;
  cfg.commodity = commodity;
  cfg.app_cores = cores;
  cfg.seed = 7;
  cfg.footprint_scale = 0.08;
  cfg.duration_scale = 0.05;
  return cfg;
}

void expect_args_equal(const trace::Event& a, const trace::Event& b, std::size_t i) {
  ASSERT_EQ(a.arg_count, b.arg_count) << "event " << i;
  for (std::uint8_t k = 0; k < a.arg_count; ++k) {
    const trace::Arg& x = a.args[k];
    const trace::Arg& y = b.args[k];
    ASSERT_STREQ(x.name, y.name) << "event " << i << " arg " << int{k};
    ASSERT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind)) << "event " << i;
    switch (x.kind) {
      case trace::Arg::Kind::kNone: break;
      case trace::Arg::Kind::kU64:
        EXPECT_EQ(x.value.u64, y.value.u64) << "event " << i << " arg " << int{k};
        break;
      case trace::Arg::Kind::kF64:
        EXPECT_EQ(x.value.f64, y.value.f64) << "event " << i << " arg " << int{k};
        break;
      case trace::Arg::Kind::kStr:
        EXPECT_STREQ(x.value.str, y.value.str) << "event " << i << " arg " << int{k};
        break;
    }
  }
}

void expect_events_equal(const std::vector<trace::Event>& a,
                         const std::vector<trace::Event>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts, b[i].ts) << "event " << i;
    EXPECT_EQ(a[i].dur, b[i].dur) << "event " << i;
    EXPECT_EQ(a[i].name(), b[i].name()) << "event " << i;
    EXPECT_EQ(static_cast<std::uint32_t>(a[i].cat), static_cast<std::uint32_t>(b[i].cat));
    EXPECT_EQ(static_cast<char>(a[i].phase), static_cast<char>(b[i].phase));
    EXPECT_EQ(a[i].pid, b[i].pid) << "event " << i;
    EXPECT_EQ(a[i].core, b[i].core) << "event " << i;
    expect_args_equal(a[i], b[i], i);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

/// Full-result equality: every field exact, doubles compared with ==.
/// The resumed run must replay the straight run's event stream, so
/// nothing — not even a stdev in the last ulp — may differ.
void expect_run_equal(const harness::RunResult& a, const harness::RunResult& b) {
  EXPECT_EQ(a.runtime_seconds, b.runtime_seconds);
  EXPECT_EQ(a.clock_hz, b.clock_hz);
  for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
    EXPECT_EQ(a.faults.count[k], b.faults.count[k]) << "kind " << k;
    EXPECT_EQ(a.faults.total_cycles[k], b.faults.total_cycles[k]) << "kind " << k;
    EXPECT_EQ(a.by_kind_summaries[k].total_faults, b.by_kind_summaries[k].total_faults);
    EXPECT_EQ(a.by_kind_summaries[k].avg_cycles, b.by_kind_summaries[k].avg_cycles);
    EXPECT_EQ(a.by_kind_summaries[k].stdev_cycles, b.by_kind_summaries[k].stdev_cycles);
  }
  EXPECT_EQ(a.trace_dropped, b.trace_dropped);
  EXPECT_EQ(a.app_pids, b.app_pids);
  EXPECT_EQ(a.trace_t0, b.trace_t0);
  EXPECT_EQ(a.thp_merges, b.thp_merges);
  EXPECT_EQ(a.hpmmap_spurious_faults, b.hpmmap_spurious_faults);
  EXPECT_EQ(a.events_fired, b.events_fired);
  for (std::size_t i = 0; i < verify::kInjectPointCount; ++i) {
    EXPECT_EQ(a.injected[i].calls, b.injected[i].calls) << "point " << i;
    EXPECT_EQ(a.injected[i].fired, b.injected[i].fired) << "point " << i;
  }
  EXPECT_EQ(a.audit_checks, b.audit_checks);
  EXPECT_EQ(a.audit_violations, b.audit_violations);
  EXPECT_EQ(a.audit_report, b.audit_report);
  EXPECT_EQ(a.thp_fault_fallbacks, b.thp_fault_fallbacks);
  EXPECT_EQ(a.thp_merges_aborted, b.thp_merges_aborted);
  EXPECT_EQ(a.hugetlb_pool_exhausted, b.hugetlb_pool_exhausted);
  EXPECT_EQ(a.procfs_text, b.procfs_text);
  expect_events_equal(a.events, b.events);
}

void expect_points_equal(const std::vector<harness::SeriesPoint>& a,
                         const std::vector<harness::SeriesPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mean_seconds, b[i].mean_seconds) << "point " << i;
    EXPECT_EQ(a[i].stdev_seconds, b[i].stdev_seconds) << "point " << i;
    EXPECT_EQ(a[i].trials, b[i].trials) << "point " << i;
    EXPECT_EQ(a[i].events, b[i].events) << "point " << i;
    EXPECT_EQ(a[i].fault_counts, b[i].fault_counts) << "point " << i;
    EXPECT_EQ(a[i].fault_cycles, b[i].fault_cycles) << "point " << i;
  }
}

// --- straight run vs snapshot-resumed run, all three managers -------------

class SnapshotManagers : public ::testing::TestWithParam<harness::Manager> {};

TEST_P(SnapshotManagers, ResumedRunIsByteIdenticalToStraightRun) {
  const harness::SingleNodeRunConfig cfg =
      quick("miniMD", GetParam(), workloads::profile_a(2), 2);
  const harness::RunResult straight = harness::run_single_node(cfg);
  const snapshot::WorldImage image = harness::capture_single_node(cfg);
  const harness::RunResult resumed = harness::run_single_node(cfg, image);
  expect_run_equal(straight, resumed);
}

INSTANTIATE_TEST_SUITE_P(Managers, SnapshotManagers,
                         ::testing::Values(harness::Manager::kThp,
                                           harness::Manager::kHugetlbfs,
                                           harness::Manager::kHpmmap));

TEST(SnapshotResume, TracedRunReplaysTheExactEventStream) {
  harness::SingleNodeRunConfig cfg =
      quick("HPCCG", harness::Manager::kThp, workloads::profile_a(2), 2);
  cfg.trace.categories = static_cast<std::uint32_t>(trace::Category::kFault) |
                         static_cast<std::uint32_t>(trace::Category::kThp);
  cfg.introspect.procfs_dump = true;
  const harness::RunResult straight = harness::run_single_node(cfg);
  const snapshot::WorldImage image = harness::capture_single_node(cfg);
  const harness::RunResult resumed = harness::run_single_node(cfg, image);
  ASSERT_FALSE(straight.events.empty());
  expect_run_equal(straight, resumed);
}

TEST(SnapshotResume, OneCaptureFansOutToDifferentMeasurementConfigs) {
  // The amortization contract: app, app_cores and duration_scale may
  // differ between capture and resume; each resumed run still matches
  // its own straight run exactly.
  harness::SingleNodeRunConfig base =
      quick("miniMD", harness::Manager::kHpmmap, workloads::profile_a(2), 2);
  const snapshot::WorldImage image = harness::capture_single_node(base);
  harness::SingleNodeRunConfig other = base;
  other.app = "HPCCG";
  other.app_cores = 4;
  other.duration_scale = 0.03;
  expect_run_equal(harness::run_single_node(base), harness::run_single_node(base, image));
  expect_run_equal(harness::run_single_node(other),
                   harness::run_single_node(other, image));
}

TEST(SnapshotResume, ScalingRunResumesExactly) {
  harness::ScalingRunConfig cfg;
  cfg.app = "HPCCG";
  cfg.manager = harness::Manager::kThp;
  cfg.commodity = workloads::profile_c();
  cfg.nodes = 2;
  cfg.ranks_per_node = 2;
  cfg.seed = 3;
  cfg.footprint_scale = 0.08;
  cfg.duration_scale = 0.05;
  const harness::RunResult straight = harness::run_scaling(cfg);
  const snapshot::WorldImage image = harness::capture_scaling(cfg);
  const harness::RunResult resumed = harness::run_scaling(cfg, image);
  expect_run_equal(straight, resumed);
}

// --- node-level structural equality ---------------------------------------

os::NodeConfig node_config(std::uint64_t seed, bool aged) {
  os::NodeConfig cfg;
  cfg.machine = hw::dell_r415();
  cfg.machine.ram_bytes = 4 * GiB;
  cfg.seed = seed;
  cfg.aged_boot = aged;
  core::ModuleConfig mod;
  mod.offline_bytes_per_zone = 512 * MiB;
  cfg.hpmmap = mod;
  cfg.hugetlb_pool_per_zone = 128 * MiB;
  return cfg;
}

/// Boot an aged node, churn it through a few processes of every policy,
/// and let the daemons run — the state a capture should preserve.
void churn(sim::Engine& engine, os::Node& node) {
  static constexpr os::MmPolicy kPolicies[] = {
      os::MmPolicy::kLinuxThp, os::MmPolicy::kLinuxPlain, os::MmPolicy::kHugetlbfs,
      os::MmPolicy::kHpmmap};
  Rng rng(99);
  std::vector<os::Process*> procs;
  for (int i = 0; i < 4; ++i) {
    procs.push_back(&node.spawn("churn" + std::to_string(i), kPolicies[i],
                                static_cast<std::int32_t>(i % 8), 1.0,
                                mm::AddressSpace::ZonePolicy::kSingle, 0));
  }
  for (int round = 0; round < 12; ++round) {
    for (os::Process* p : procs) {
      const std::uint64_t len = align_up(rng.uniform(1, 16) * 512 * KiB, kLargePageSize);
      const auto out = node.sys_mmap(*p, len, kProtRW, os::Node::Segment::kHeapData);
      if (out.err == Errno::kOk) {
        (void)node.touch_range(*p, Range{out.addr, out.addr + len});
      }
    }
    engine.run_until(engine.now() + 20'000'000);
  }
  node.exit_process(*procs[1]); // leave a dead pid behind
  engine.run_until(engine.now() + 200'000'000);
}

TEST(SnapshotNode, RestoredNodePassesAuditAndRendersIdenticalProcfs) {
  sim::Engine engine;
  os::Node node(engine, node_config(11, /*aged=*/true));
  churn(engine, node);

  const std::string before = introspect::procfs_dump(node);
  const snapshot::WorldImage image = snapshot::capture_world(engine, {&node});
  // Capture reads only: the live node renders the same bytes afterwards.
  EXPECT_EQ(introspect::procfs_dump(node), before);
  verify::MmAuditor source_auditor(node);
  const verify::AuditReport source_report = source_auditor.run();
  ASSERT_TRUE(source_report.ok()) << source_report.summary();

  // Restore into a fresh, *non-aged* boot — the harness resume path.
  sim::Engine engine2;
  os::Node node2(engine2, node_config(11, /*aged=*/false));
  snapshot::restore_world(image, engine2, {&node2});

  EXPECT_EQ(engine2.now(), engine.now());
  EXPECT_EQ(introspect::procfs_dump(node2), before);
  verify::MmAuditor auditor(node2);
  const verify::AuditReport report = auditor.run();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.checks, source_report.checks);
}

TEST(SnapshotNode, SaveLoadRoundTripsTheImageFile) {
  sim::Engine engine;
  os::Node node(engine, node_config(23, /*aged=*/true));
  churn(engine, node);
  const std::string before = introspect::procfs_dump(node);
  const snapshot::WorldImage image = snapshot::capture_world(engine, {&node});

  const std::string path = "/tmp/hpmmap_test_snapshot.img";
  snapshot::save(image, path);
  const snapshot::WorldImage loaded = snapshot::load(path);
  std::remove(path.c_str());

  sim::Engine engine2;
  os::Node node2(engine2, node_config(23, /*aged=*/false));
  snapshot::restore_world(loaded, engine2, {&node2});
  EXPECT_EQ(introspect::procfs_dump(node2), before);
  verify::MmAuditor auditor(node2);
  const verify::AuditReport report = auditor.run();
  EXPECT_TRUE(report.ok()) << report.summary();

  // The restored world keeps evolving identically: run both engines
  // forward and compare the rendering again.
  engine.run_until(engine.now() + 500'000'000);
  engine2.run_until(engine2.now() + 500'000'000);
  EXPECT_EQ(introspect::procfs_dump(node2), introspect::procfs_dump(node));
}

// --- per-CPU SMP state ------------------------------------------------------
//
// An SmpDomain's state is all release stamps and per-CPU frame lists; a
// capture taken mid-contention (locks held into the future, pcp lists
// warm, shootdown IPIs deferred) must round-trip exactly, or the resumed
// run's waits diverge from the uninterrupted run's. Byte-identity of the
// serialized images is the strongest equality the format offers, so the
// checks below compare save() output bit for bit.

os::NodeConfig smp_node_config(std::uint64_t seed) {
  os::NodeConfig cfg;
  cfg.machine = hw::dell_r415();
  cfg.machine.ram_bytes = 4 * GiB;
  cfg.seed = seed;
  cfg.aged_boot = false;
  cfg.thp_enabled = false;
  mm::SmpConfig smp;
  smp.cores = 4;
  cfg.smp = smp;
  return cfg;
}

/// One round of four-thread churn on a shared process: each core faults
/// its own quarter of a fresh slab (alloc_small refills the pcp lists),
/// then the previous round's slab is unmapped (free_small drains the
/// lists through their watermark, note_unmap leaves deferred shootdown
/// pages pending). Pure syscalls, no armed events — the same sequence
/// applies identically to an original and a restored world.
void smp_churn_round(os::Node& node, os::Process& p, std::vector<Addr>& slabs, int round) {
  const auto out = node.sys_mmap(p, 4 * MiB, kProtRW, os::Node::Segment::kHeapData,
                                 round % 4);
  ASSERT_EQ(out.err, Errno::kOk);
  for (std::int32_t c = 0; c < 4; ++c) {
    const Addr begin = out.addr + static_cast<Addr>(c) * MiB;
    (void)node.touch_range(p, Range{begin, begin + 1 * MiB}, c);
  }
  slabs.push_back(out.addr);
  if (slabs.size() >= 2) {
    const Addr victim = slabs[slabs.size() - 2];
    (void)node.sys_munmap(p, victim, 4 * MiB, (round + 1) % 4);
    slabs.erase(slabs.end() - 2);
  }
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(SnapshotSmp, MidContentionCaptureRoundTripsByteIdentical) {
  sim::Engine engine;
  os::Node node(engine, smp_node_config(41));
  os::Process& p = node.spawn("smp", os::MmPolicy::kLinuxPlain, 0, 1.0,
                              mm::AddressSpace::ZonePolicy::kSingle, 0);
  std::vector<Addr> slabs;
  for (int round = 0; round < 6; ++round) {
    smp_churn_round(node, p, slabs, round);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  // The capture must land mid-contention: locks were fought over, frames
  // are parked per-CPU, and a shootdown batch is still deferred.
  const mm::SmpDomain& smp = *node.smp();
  ASSERT_GT(smp.stats().total_lock_wait(), 0u);
  ASSERT_GT(smp.pcp_cached_bytes(0), 0u);

  const snapshot::WorldImage image = snapshot::capture_world(engine, {&node});
  const std::string path_a = "/tmp/hpmmap_test_smp_a.img";
  const std::string path_b = "/tmp/hpmmap_test_smp_b.img";
  snapshot::save(image, path_a);
  const snapshot::WorldImage loaded = snapshot::load(path_a);

  sim::Engine engine2;
  os::Node node2(engine2, smp_node_config(41));
  snapshot::restore_world(loaded, engine2, {&node2});

  // Re-capturing the restored world serializes to the same bytes: every
  // release stamp, list entry and counter survived the round trip. (The
  // audit comes after the save — it bumps telemetry counters that the
  // snapshot captures.)
  snapshot::save(snapshot::capture_world(engine2, {&node2}), path_b);
  EXPECT_EQ(file_bytes(path_a), file_bytes(path_b));
  const verify::AuditReport report = verify::MmAuditor(node2).run();
  EXPECT_TRUE(report.ok()) << report.summary();
  if (!::testing::Test::HasFailure()) {
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
  }
}

TEST(SnapshotSmp, CaptureCyclesInterleavedWithPcpChurnStayExact) {
  // Stress walk: capture between every churn round (each round refills
  // and drains pcp lists and moves the shootdown backlog), restore each
  // capture into a fresh world, and drive BOTH worlds through the next
  // round. The restored world must keep producing the original's exact
  // bytes — proving the captured SMP state actually steers future
  // behavior rather than merely surviving serialization.
  sim::Engine engine;
  os::Node node(engine, smp_node_config(43));
  os::Process& p = node.spawn("smp", os::MmPolicy::kLinuxPlain, 0, 1.0,
                              mm::AddressSpace::ZonePolicy::kSingle, 0);
  std::vector<Addr> slabs;
  const std::string path_a = "/tmp/hpmmap_test_smp_walk_a.img";
  const std::string path_b = "/tmp/hpmmap_test_smp_walk_b.img";
  for (int round = 0; round < 5; ++round) {
    smp_churn_round(node, p, slabs, round);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    const snapshot::WorldImage image = snapshot::capture_world(engine, {&node});

    sim::Engine engine2;
    os::Node node2(engine2, smp_node_config(43));
    snapshot::restore_world(image, engine2, {&node2});
    os::Process* p2 = nullptr;
    node2.for_each_process([&](const os::Process& q) {
      if (q.pid() == p.pid()) {
        p2 = const_cast<os::Process*>(&q);
      }
    });
    ASSERT_NE(p2, nullptr);

    // Same next round on both worlds, then compare their captures.
    std::vector<Addr> slabs2 = slabs;
    smp_churn_round(node, p, slabs, round + 1);
    smp_churn_round(node2, *p2, slabs2, round + 1);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    snapshot::save(snapshot::capture_world(engine, {&node}), path_a);
    snapshot::save(snapshot::capture_world(engine2, {&node2}), path_b);
    ASSERT_EQ(file_bytes(path_a), file_bytes(path_b)) << "diverged after round " << round;

    // The walk continues on the original only; restored worlds are
    // discarded, so the original now leads by one round.
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// --- causal spans ----------------------------------------------------------

// Snapshot format v3: the flight-recorder image carries each event's
// causal span, so a capture taken mid-request restores with attribution
// intact (a span-free ring still loads byte-identically to v2 content).
TEST(SnapshotTrace, SpanCarryingEventsRoundTripThroughSaveLoad) {
  trace::recorder().set_capacity(1024);
  trace::enable(static_cast<std::uint32_t>(trace::Category::kHarness));
  trace::enable_spans(true);
  {
    trace::SpanScope outer(41);
    trace::instant(trace::Category::kHarness, "span.outer", 7, 2,
                   {trace::Arg::u64("k", 1)});
    {
      trace::SpanScope inner(42);
      trace::complete(trace::Category::kHarness, "span.inner", 100, 50, 7, 2,
                      {trace::Arg::str("who", "inner")});
    }
  }
  trace::instant(trace::Category::kHarness, "span.none", 7, 2);
  trace::enable_spans(false);
  trace::disable_all();

  sim::Engine engine;
  os::Node node(engine, node_config(5, /*aged=*/false));
  const snapshot::WorldImage image = snapshot::capture_world(engine, {&node});
  const std::string path = "/tmp/hpmmap_test_span_snapshot.img";
  snapshot::save(image, path);
  const snapshot::WorldImage loaded = snapshot::load(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.trace.ring.size(), image.trace.ring.size());
  std::uint32_t outer_span = 0, inner_span = 0, none_span = 99;
  for (std::size_t i = 0; i < loaded.trace.ring.size(); ++i) {
    const trace::Event& got = loaded.trace.ring[i];
    const trace::Event& want = image.trace.ring[i];
    EXPECT_EQ(got.span, want.span) << trace::describe(want);
    EXPECT_EQ(got.ts, want.ts);
    EXPECT_EQ(got.name(), want.name());
    if (got.name() == "span.outer") {
      outer_span = got.span;
    } else if (got.name() == "span.inner") {
      inner_span = got.span;
    } else if (got.name() == "span.none") {
      none_span = got.span;
    }
  }
  EXPECT_EQ(outer_span, 41u);
  EXPECT_EQ(inner_span, 42u); // the nested scope won while it was live
  EXPECT_EQ(none_span, 0u);   // emitted outside any scope
}

// --- amortized-aging sweep -------------------------------------------------

TEST(SnapshotSweep, SnapshottedTrialsMatchPlainBatchBitForBit) {
  std::vector<harness::SingleNodeRunConfig> configs;
  // Three members sharing one world (app / app_cores / duration differ)…
  configs.push_back(quick("miniMD", harness::Manager::kThp, workloads::profile_a(2), 2));
  configs.push_back(quick("HPCCG", harness::Manager::kThp, workloads::profile_a(2), 2));
  configs.push_back(quick("miniFE", harness::Manager::kThp, workloads::profile_a(2), 4));
  configs.back().duration_scale = 0.03;
  // …and a singleton (different manager) that must run straight.
  configs.push_back(quick("miniMD", harness::Manager::kHpmmap, workloads::profile_a(2), 2));
  const std::vector<harness::SeriesPoint> plain =
      harness::run_trials_batch(configs, /*trials=*/2, /*jobs=*/1);
  const std::vector<harness::SeriesPoint> snap =
      harness::run_trials_snapshotted(configs, /*trials=*/2, /*jobs=*/1);
  expect_points_equal(plain, snap);
  // Parallel fan-out folds identically too (the BatchRunner contract).
  expect_points_equal(plain, harness::run_trials_snapshotted(configs, 2, /*jobs=*/4));
}

// --- time travel -----------------------------------------------------------

/// Replay-to-anomaly: run a traced world while taking periodic captures,
/// pick an "anomaly" off the flight recorder (a khugepaged merge
/// completing — preferring the rarer abort if one happened), restore the
/// latest capture preceding it and single-step the engine until the
/// anomaly's timestamp. The restored world must re-emit the identical
/// event — pid, timestamp and arguments — proving a capture is a usable
/// debugging time machine, not just a warm-start cache.
TEST(SnapshotTimeTravel, SingleSteppingFromRestoreReproducesTheAnomalyEvent) {
  const std::uint32_t thp_mask = static_cast<std::uint32_t>(trace::Category::kThp);
  trace::recorder().set_capacity(std::size_t{1} << 16);
  trace::enable(thp_mask);

  // An aged machine short on order-9 blocks: THP first touches fall back
  // to 4K, khugepaged merges them later — scheduled engine work we can
  // replay without re-running any syscall. (khugepaged's scan period is
  // 10 s of virtual time, so the anomaly lands tens of slices in.)
  os::NodeConfig cfg;
  cfg.machine = hw::dell_r415();
  cfg.machine.ram_bytes = 2 * GiB;
  cfg.seed = 31;
  cfg.aged_boot = true;
  cfg.boot_cache_fraction = 0.70;
  cfg.boot_slab_fraction = 0.12;
  sim::Engine engine;
  os::Node node(engine, cfg);
  std::vector<os::Process*> procs;
  for (int i = 0; i < 3; ++i) {
    procs.push_back(&node.spawn("tt" + std::to_string(i), os::MmPolicy::kLinuxThp, i, 1.0,
                                mm::AddressSpace::ZonePolicy::kSingle, 0));
  }
  for (os::Process* p : procs) {
    const auto out = node.sys_mmap(*p, 64 * MiB, kProtRW, os::Node::Segment::kHeapData);
    ASSERT_EQ(out.err, Errno::kOk);
    (void)node.touch_range(*p, Range{out.addr, out.addr + 64 * MiB});
  }
  ASSERT_GT(node.thp()->stats().fault_huge_fallback, 0u);

  // From here the timeline is purely engine-driven. Interleave captures
  // with one-second slices, keeping a short ring of recent images (how a
  // flight-recorder debugger would bound its history), and stop once a
  // merge lands past the oldest retained capture.
  struct Capture {
    Cycles now = 0;
    snapshot::WorldImage image;
  };
  std::deque<Capture> ring;
  const auto slice = static_cast<Cycles>(1.0 * cfg.machine.clock_hz);
  const auto find_anomaly = [&]() -> const trace::Event* {
    const trace::Event* best = nullptr;
    // Static storage so the returned pointer outlives the call: the ring
    // buffer itself stays alive, but snapshot() copies.
    static std::vector<trace::Event> events;
    events = trace::recorder().snapshot();
    for (const trace::Event& e : events) {
      if (ring.empty() || e.ts <= ring.front().now) {
        continue;
      }
      if (e.name() == "khugepaged.merge_abort") {
        best = &e; // the rarer event wins when both happened
      } else if ((best == nullptr || best->name() != "khugepaged.merge_abort") &&
                 e.name() == "khugepaged.merge_done") {
        best = &e;
      }
    }
    return best;
  };
  const trace::Event* anomaly = nullptr;
  for (int i = 0; i < 80 && anomaly == nullptr; ++i) {
    ring.push_back({engine.now(), snapshot::capture_world(engine, {&node})});
    if (ring.size() > 4) {
      ring.pop_front();
    }
    engine.run_until(engine.now() + slice);
    anomaly = find_anomaly();
  }
  trace::disable_all();
  ASSERT_NE(anomaly, nullptr) << "no khugepaged merge landed in the window";
  const trace::Event want = *anomaly;

  const Capture* from = nullptr;
  for (const Capture& c : ring) {
    if (c.now < want.ts) {
      from = &c;
    }
  }
  ASSERT_NE(from, nullptr);

  // Time-travel: fresh boot, restore, single-step to the anomaly.
  sim::Engine engine2;
  cfg.aged_boot = false;
  os::Node node2(engine2, cfg);
  snapshot::restore_world(from->image, engine2, {&node2});
  EXPECT_EQ(engine2.now(), from->now);
  const std::size_t replay_start = trace::recorder().size();
  trace::enable(thp_mask);
  bool replayed = false;
  std::uint64_t steps = 0;
  while (!replayed && engine2.now() <= want.ts && snapshot::step_one(engine2)) {
    ++steps;
    const std::vector<trace::Event> replay = trace::recorder().snapshot();
    for (std::size_t i = replay_start; i < replay.size(); ++i) {
      const trace::Event& e = replay[i];
      if (e.ts == want.ts && e.name() == want.name() && e.pid == want.pid) {
        expect_args_equal(e, want, i);
        // Causal context must replay too: the restored world re-emits
        // the event under the same span (or span-free, like here).
        EXPECT_EQ(e.span, want.span) << trace::describe(e);
        replayed = true;
      }
    }
  }
  trace::disable_all();
  // describe() renders the span id when the anomaly carries one, so the
  // dump names the victim request/actor, not just the raw tracepoint.
  EXPECT_TRUE(replayed) << "anomaly not re-emitted after " << steps << " steps from ts "
                        << from->now << ": " << trace::describe(want);
  EXPECT_GT(steps, 0u);
}

} // namespace
} // namespace hpmmap
