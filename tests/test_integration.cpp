// End-to-end integration tests: the experiment harness reproduces the
// paper's qualitative claims at reduced scale, the cluster comm model
// behaves, and the table/CSV output works.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cluster/network.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace hpmmap {
namespace {

harness::SingleNodeRunConfig quick(const std::string& app, harness::Manager mgr,
                                   workloads::CommodityProfile commodity,
                                   std::uint32_t cores) {
  harness::SingleNodeRunConfig cfg;
  cfg.app = app;
  cfg.manager = mgr;
  cfg.commodity = commodity;
  cfg.app_cores = cores;
  cfg.seed = 7;
  cfg.footprint_scale = 0.08;
  cfg.duration_scale = 0.05;
  return cfg;
}

TEST(Integration, SingleNodeRunProducesSaneResult) {
  const harness::RunResult r = harness::run_single_node(
      quick("HPCCG", harness::Manager::kThp, workloads::no_competition(), 2));
  EXPECT_GT(r.runtime_seconds, 0.1);
  EXPECT_LT(r.runtime_seconds, 60.0);
  EXPECT_GT(r.faults.count[0] + r.faults.count[1], 100u);
}

TEST(Integration, HpmmapTakesFarFewerFaultsThanLinux) {
  const harness::RunResult thp = harness::run_single_node(
      quick("miniMD", harness::Manager::kThp, workloads::profile_a(2), 2));
  const harness::RunResult hpm = harness::run_single_node(
      quick("miniMD", harness::Manager::kHpmmap, workloads::profile_a(2), 2));
  const std::uint64_t thp_faults = thp.faults.count[0] + thp.faults.count[1];
  const std::uint64_t hpm_faults = hpm.faults.count[0] + hpm.faults.count[1];
  EXPECT_LT(hpm_faults * 10, thp_faults); // §III: near-zero faults
  EXPECT_EQ(hpm.hpmmap_spurious_faults, 0u);
}

TEST(Integration, HpmmapIsNotSlowerUnderLoad) {
  // At reduced scale the gaps are small, but HPMMAP must never lose to
  // THP under competing load (the paper's universal result).
  const harness::RunResult thp = harness::run_single_node(
      quick("HPCCG", harness::Manager::kThp, workloads::profile_b(4), 4));
  const harness::RunResult hpm = harness::run_single_node(
      quick("HPCCG", harness::Manager::kHpmmap, workloads::profile_b(4), 4));
  EXPECT_LE(hpm.runtime_seconds, thp.runtime_seconds * 1.02);
}

TEST(Integration, TraceRecordsFaultTimeline) {
  harness::SingleNodeRunConfig cfg =
      quick("miniMD", harness::Manager::kThp, workloads::profile_a(2), 2);
  cfg.trace.categories = static_cast<std::uint32_t>(trace::Category::kFault);
  const harness::RunResult r = harness::run_single_node(cfg);
  ASSERT_FALSE(r.events.empty());
  const std::vector<harness::FaultSample> samples = harness::app_fault_samples(r);
  ASSERT_FALSE(samples.empty());
  // Samples come back time-sorted, all at/after job start (the warmup's
  // kernel-build faults belong to other pids and are filtered out).
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].when, samples[i - 1].when);
  }
  EXPECT_GE(samples.front().when, r.trace_t0);
  // The reconstructed per-kind totals match the kernel's own counters.
  std::uint64_t sampled = 0;
  for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
    sampled += r.by_kind(static_cast<mm::FaultKind>(k)).total_faults;
  }
  EXPECT_EQ(sampled, samples.size());
}

TEST(Integration, RunTrialsAggregatesSeeds) {
  harness::SingleNodeRunConfig cfg =
      quick("HPCCG", harness::Manager::kThp, workloads::no_competition(), 2);
  const harness::SeriesPoint p = harness::run_trials(cfg, 3);
  EXPECT_EQ(p.trials, 3u);
  EXPECT_GT(p.mean_seconds, 0.0);
  EXPECT_GE(p.stdev_seconds, 0.0);
}

TEST(Integration, ScalingRunCompletesOnMultipleNodes) {
  harness::ScalingRunConfig cfg;
  cfg.app = "HPCCG";
  cfg.manager = harness::Manager::kThp;
  cfg.commodity = workloads::profile_c();
  cfg.nodes = 2;
  cfg.ranks_per_node = 2;
  cfg.seed = 3;
  cfg.footprint_scale = 0.08;
  cfg.duration_scale = 0.05;
  const harness::RunResult r = harness::run_scaling(cfg);
  EXPECT_GT(r.runtime_seconds, 0.0);
}

TEST(Integration, ScalingHpmmapCompletesWithNearZeroFaults) {
  harness::ScalingRunConfig cfg;
  cfg.app = "LAMMPS";
  cfg.manager = harness::Manager::kHpmmap;
  cfg.commodity = workloads::profile_c();
  cfg.nodes = 2;
  cfg.ranks_per_node = 2;
  cfg.seed = 3;
  cfg.footprint_scale = 0.08;
  cfg.duration_scale = 0.05;
  const harness::RunResult r = harness::run_scaling(cfg);
  EXPECT_EQ(r.faults.count[1], 0u);
  EXPECT_LT(r.faults.count[0], 8192u);
}

TEST(Integration, DeterministicGivenSeed) {
  const harness::RunResult a = harness::run_single_node(
      quick("miniFE", harness::Manager::kThp, workloads::profile_a(2), 2));
  const harness::RunResult b = harness::run_single_node(
      quick("miniFE", harness::Manager::kThp, workloads::profile_a(2), 2));
  EXPECT_DOUBLE_EQ(a.runtime_seconds, b.runtime_seconds);
  EXPECT_EQ(a.faults.count[0], b.faults.count[0]);
}

TEST(Integration, DifferentSeedsDiffer) {
  harness::SingleNodeRunConfig cfg =
      quick("miniFE", harness::Manager::kThp, workloads::profile_a(2), 2);
  const harness::RunResult a = harness::run_single_node(cfg);
  cfg.seed = 8;
  const harness::RunResult b = harness::run_single_node(cfg);
  EXPECT_NE(a.runtime_seconds, b.runtime_seconds);
}

// --- cluster network ---------------------------------------------------------------

TEST(Cluster, P2pCostHasLatencyAndBandwidthTerms) {
  cluster::EthernetSpec eth;
  const double small = cluster::p2p_seconds(eth, 64);
  const double large = cluster::p2p_seconds(eth, 10 * 1024 * 1024);
  EXPECT_NEAR(small, eth.latency_seconds, 1e-5);
  EXPECT_GT(large, 10 * 1024 * 1024 / eth.bandwidth_bytes_per_sec);
}

TEST(Cluster, CommCostGrowsWithNodeCount) {
  cluster::EthernetSpec eth;
  eth.jitter_cv = 0.0; // deterministic comparison
  const workloads::AppProfile app = workloads::hpccg(2.93e9);
  auto one = cluster::ethernet_comm(eth, 2.93e9, 1, Rng(1));
  auto four = cluster::ethernet_comm(eth, 2.93e9, 4, Rng(1));
  auto eight = cluster::ethernet_comm(eth, 2.93e9, 8, Rng(1));
  EXPECT_LT(one(app, 4), four(app, 16));
  EXPECT_LT(four(app, 16), eight(app, 32));
}

TEST(Cluster, SingleNodeSkipsNetwork) {
  cluster::EthernetSpec eth;
  eth.jitter_cv = 0.0;
  const workloads::AppProfile app = workloads::hpccg(2.93e9);
  auto one = cluster::ethernet_comm(eth, 2.93e9, 1, Rng(1));
  // Intra-node only: microseconds, not the 100us+ network scale.
  EXPECT_LT(one(app, 4), static_cast<Cycles>(50e-6 * 2.93e9));
}

// --- table output ---------------------------------------------------------------------

TEST(Table, FormatsAlignedAscii) {
  harness::Table t({"App", "Runtime"});
  t.add_row({"HPCCG", "65.2"});
  t.add_row({"miniMD", "372.9"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| App    |"), std::string::npos);
  EXPECT_NE(s.find("| miniMD | 372.9   |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvRoundTrip) {
  harness::Table t({"a", "b"});
  t.add_row({"1", "with,comma"});
  t.add_row({"2", "with\"quote"});
  const std::string path = "/tmp/hpmmap_test_table.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,\"with,comma\"");
  std::getline(f, line);
  EXPECT_EQ(line, "2,\"with\"\"quote\"");
  std::remove(path.c_str());
}

TEST(Table, WithCommas) {
  EXPECT_EQ(harness::with_commas(0), "0");
  EXPECT_EQ(harness::with_commas(999), "999");
  EXPECT_EQ(harness::with_commas(1768), "1,768");
  EXPECT_EQ(harness::with_commas(3360292), "3,360,292");
}

TEST(Table, FixedFormatting) {
  EXPECT_EQ(harness::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(harness::fixed(10.0, 0), "10");
}

TEST(TableDeath, MismatchedRowAborts) {
  harness::Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

} // namespace
} // namespace hpmmap
