// Unit tests: deterministic RNG streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace hpmmap {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng parent(7);
  Rng c1 = parent.fork(1);
  Rng c2 = Rng(7).fork(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(c1.next_u64(), c2.next_u64());
  }
}

TEST(Rng, ForkSiblingsIndependent) {
  Rng parent(7);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += c1.next_u64() == c2.next_u64() ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, StringForkMatchesRepeatable) {
  Rng parent(9);
  Rng a = parent.fork("mm");
  Rng b = Rng(9).fork("mm");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StringForksDifferByName) {
  Rng parent(9);
  Rng a = parent.fork("mm");
  Rng b = parent.fork("net");
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(5);
  Rng b(5);
  (void)a.fork("x");
  (void)a.fork(77);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformBoundZeroReturnsZero) {
  Rng r(3);
  EXPECT_EQ(r.uniform(0), 0u);
}

TEST(Rng, UniformStaysInBound) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniform(17), 17u);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng r(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = r.uniform(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u); // all values hit
}

TEST(Rng, UniformCoversSmallRangeEvenly) {
  Rng r(11);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) {
    ++counts[r.uniform(8)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 80); // within 10%
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(6);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng r(6);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += r.normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalFromMomentsMatchesTarget) {
  Rng r(8);
  const double mean = 1768.0, stdev = 993.0; // Figure 2's small-fault row
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = r.lognormal_from_moments(mean, stdev);
    EXPECT_GT(v, 0.0);
    sum += v;
    sum2 += v * v;
  }
  const double m = sum / n;
  const double s = std::sqrt(sum2 / n - m * m);
  EXPECT_NEAR(m, mean, mean * 0.02);
  EXPECT_NEAR(s, stdev, stdev * 0.05);
}

TEST(Rng, LognormalZeroMeanIsZero) {
  Rng r(8);
  EXPECT_EQ(r.lognormal_from_moments(0.0, 1.0), 0.0);
}

TEST(Rng, ExponentialMean) {
  Rng r(12);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += r.exponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(r.pareto(100.0, 1.6), 100.0);
  }
}

TEST(Rng, ParetoIsHeavyTailed) {
  Rng r(13);
  double max_v = 0.0;
  for (int i = 0; i < 100000; ++i) {
    max_v = std::max(max_v, r.pareto(1.0, 1.5));
  }
  EXPECT_GT(max_v, 100.0); // tail reaches far past the minimum
}

TEST(Rng, ChanceEdges) {
  Rng r(14);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
  EXPECT_FALSE(r.chance(-0.5));
  EXPECT_TRUE(r.chance(2.0));
}

TEST(Rng, ChanceFrequency) {
  Rng r(15);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += r.chance(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, WorksWithStdShuffle) {
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  Rng r(20);
  std::shuffle(v.begin(), v.end(), r);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

} // namespace
} // namespace hpmmap
