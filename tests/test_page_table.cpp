// Unit + property tests: 4-level page tables.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "linux_mm/page_table.hpp"

namespace hpmmap::mm {
namespace {

constexpr Addr kVa = 0x7f00'0000'0000ull;
constexpr Addr kPa = 0x1'0000'0000ull;

TEST(PageTable, FreshTableTranslatesNothing) {
  PageTable pt;
  EXPECT_FALSE(pt.walk(0).has_value());
  EXPECT_FALSE(pt.walk(kVa).has_value());
  EXPECT_EQ(pt.mapping_mix().total(), 0u);
  EXPECT_EQ(pt.table_pages(), 1u);
}

TEST(PageTable, Map4kRoundTrip) {
  PageTable pt;
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k4K, kProtRW), Errno::kOk);
  const auto t = pt.walk(kVa + 123);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->phys, kPa + 123);
  EXPECT_EQ(t->size, PageSize::k4K);
  EXPECT_EQ(t->prot, kProtRW);
}

TEST(PageTable, Map2mRoundTripWithOffset) {
  PageTable pt;
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k2M, kProtRW), Errno::kOk);
  const auto t = pt.walk(kVa + 1 * MiB + 17);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->phys, kPa + 1 * MiB + 17);
  EXPECT_EQ(t->size, PageSize::k2M);
}

TEST(PageTable, Map1gRoundTrip) {
  PageTable pt;
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k1G, kProtRW), Errno::kOk);
  const auto t = pt.walk(kVa + 700 * MiB);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->size, PageSize::k1G);
  EXPECT_EQ(t->phys, kPa + 700 * MiB);
}

TEST(PageTable, MisalignedMapRejected) {
  PageTable pt;
  EXPECT_EQ(pt.map(kVa + 1, kPa, PageSize::k4K, kProtRW), Errno::kInval);
  EXPECT_EQ(pt.map(kVa + 4 * KiB, kPa, PageSize::k2M, kProtRW), Errno::kInval);
  EXPECT_EQ(pt.map(kVa, kPa + 4 * KiB, PageSize::k2M, kProtRW), Errno::kInval);
}

TEST(PageTable, DoubleMapRejected) {
  PageTable pt;
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k4K, kProtRW), Errno::kOk);
  EXPECT_EQ(pt.map(kVa, kPa, PageSize::k4K, kProtRW), Errno::kExist);
}

TEST(PageTable, SmallUnderLargeRejected) {
  PageTable pt;
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k2M, kProtRW), Errno::kOk);
  EXPECT_EQ(pt.map(kVa + 4 * KiB, kPa, PageSize::k4K, kProtRW), Errno::kExist);
}

TEST(PageTable, LargeOverPopulatedSmallRejected) {
  PageTable pt;
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k4K, kProtRW), Errno::kOk);
  EXPECT_EQ(pt.map(kVa, kPa, PageSize::k2M, kProtRW), Errno::kExist);
}

TEST(PageTable, LargeMapReclaimsEmptyChildTable) {
  // The khugepaged collapse path: map smalls, unmap them all, then the
  // 2M leaf must install (freeing the empty PT page).
  PageTable pt;
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k4K, kProtRW), Errno::kOk);
  const std::uint64_t pages_with_child = pt.table_pages();
  ASSERT_EQ(pt.unmap(kVa, PageSize::k4K), Errno::kOk);
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k2M, kProtRW), Errno::kOk);
  EXPECT_EQ(pt.table_pages(), pages_with_child - 1);
  const auto t = pt.walk(kVa);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->size, PageSize::k2M);
}

TEST(PageTable, UnmapMissingIsNoEnt) {
  PageTable pt;
  EXPECT_EQ(pt.unmap(kVa, PageSize::k4K), Errno::kNoEnt);
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k4K, kProtRW), Errno::kOk);
  EXPECT_EQ(pt.unmap(kVa + 4 * KiB, PageSize::k4K), Errno::kNoEnt);
}

TEST(PageTable, UnmapRemovesTranslation) {
  PageTable pt;
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k4K, kProtRW), Errno::kOk);
  ASSERT_EQ(pt.unmap(kVa, PageSize::k4K), Errno::kOk);
  EXPECT_FALSE(pt.walk(kVa).has_value());
}

TEST(PageTable, ProtectChangesLeaf) {
  PageTable pt;
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k4K, kProtRW), Errno::kOk);
  ASSERT_EQ(pt.protect(kVa, PageSize::k4K, Prot::kRead), Errno::kOk);
  EXPECT_EQ(pt.walk(kVa)->prot, Prot::kRead);
  EXPECT_EQ(pt.protect(kVa + 4 * KiB, PageSize::k4K, Prot::kRead), Errno::kNoEnt);
}

TEST(PageTable, MappingMixAccounting) {
  PageTable pt;
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k4K, kProtRW), Errno::kOk);
  ASSERT_EQ(pt.map(kVa + 2 * MiB, kPa + 2 * MiB, PageSize::k2M, kProtRW), Errno::kOk);
  const auto mix = pt.mapping_mix();
  EXPECT_EQ(mix.bytes_4k, 4 * KiB);
  EXPECT_EQ(mix.bytes_2m, 2 * MiB);
  ASSERT_EQ(pt.unmap(kVa + 2 * MiB, PageSize::k2M), Errno::kOk);
  EXPECT_EQ(pt.mapping_mix().bytes_2m, 0u);
}

TEST(PageTable, SplitLargePreservesTranslationAndProt) {
  PageTable pt;
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k2M, kProtRX), Errno::kOk);
  PtOpStats stats;
  ASSERT_EQ(pt.split_large(kVa + 300 * KiB, &stats), Errno::kOk);
  EXPECT_EQ(stats.entries_written, 512u);
  for (Addr off : {Addr{0}, Addr{4 * KiB}, Addr{2 * MiB - 4 * KiB}}) {
    const auto t = pt.walk(kVa + off + 5);
    ASSERT_TRUE(t.has_value()) << off;
    EXPECT_EQ(t->size, PageSize::k4K);
    EXPECT_EQ(t->phys, kPa + off + 5);
    EXPECT_EQ(t->prot, kProtRX);
  }
  const auto mix = pt.mapping_mix();
  EXPECT_EQ(mix.bytes_2m, 0u);
  EXPECT_EQ(mix.bytes_4k, 2 * MiB);
}

TEST(PageTable, SplitLargeOnSmallIsNoEnt) {
  PageTable pt;
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k4K, kProtRW), Errno::kOk);
  EXPECT_EQ(pt.split_large(kVa), Errno::kNoEnt);
  EXPECT_EQ(pt.split_large(kVa + 32 * MiB), Errno::kNoEnt);
}

TEST(PageTable, SmallCountIn2m) {
  PageTable pt;
  EXPECT_EQ(pt.small_count_in_2m(kVa), 0u);
  for (unsigned i = 0; i < 10; ++i) {
    ASSERT_EQ(pt.map(kVa + i * 4 * KiB, kPa + i * 4 * KiB, PageSize::k4K, kProtRW), Errno::kOk);
  }
  EXPECT_EQ(pt.small_count_in_2m(kVa), 10u);
  EXPECT_EQ(pt.small_count_in_2m(kVa + 1 * MiB), 10u); // same 2M region
  EXPECT_EQ(pt.small_count_in_2m(kVa + 2 * MiB), 0u);
  ASSERT_EQ(pt.unmap(kVa, PageSize::k4K), Errno::kOk);
  EXPECT_EQ(pt.small_count_in_2m(kVa), 9u);
}

TEST(PageTable, LargeLeafAt) {
  PageTable pt;
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k2M, kProtRW), Errno::kOk);
  EXPECT_TRUE(pt.large_leaf_at(kVa + 1 * MiB));
  EXPECT_FALSE(pt.large_leaf_at(kVa + 2 * MiB));
}

TEST(PageTable, MappedBytesInRange) {
  PageTable pt;
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k4K, kProtRW), Errno::kOk);
  ASSERT_EQ(pt.map(kVa + 2 * MiB, kPa + 2 * MiB, PageSize::k2M, kProtRW), Errno::kOk);
  EXPECT_EQ(pt.mapped_bytes(Range{kVa, kVa + 4 * MiB}), 4 * KiB + 2 * MiB);
  // Partial overlap with the large leaf counts partially.
  EXPECT_EQ(pt.mapped_bytes(Range{kVa + 2 * MiB, kVa + 3 * MiB}), 1 * MiB);
}

TEST(PageTable, ForEachLeafVisitsAll) {
  PageTable pt;
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k4K, kProtRW), Errno::kOk);
  ASSERT_EQ(pt.map(kVa + 2 * MiB, kPa + 2 * MiB, PageSize::k2M, kProtRW), Errno::kOk);
  std::vector<std::pair<Addr, PageSize>> leaves;
  pt.for_each_leaf([&](Addr va, const Translation& t) { leaves.emplace_back(va, t.size); });
  ASSERT_EQ(leaves.size(), 2u);
  EXPECT_EQ(leaves[0], (std::pair<Addr, PageSize>{kVa, PageSize::k4K}));
  EXPECT_EQ(leaves[1], (std::pair<Addr, PageSize>{kVa + 2 * MiB, PageSize::k2M}));
}

TEST(PageTable, OpStatsReportTableAllocations) {
  PageTable pt;
  PtOpStats stats;
  ASSERT_EQ(pt.map(kVa, kPa, PageSize::k4K, kProtRW, &stats), Errno::kOk);
  EXPECT_EQ(stats.levels, 4u);
  EXPECT_EQ(stats.tables_allocated, 3u); // PDPT, PD, PT under a fresh root
  PtOpStats stats2;
  ASSERT_EQ(pt.map(kVa + 4 * KiB, kPa + 4 * KiB, PageSize::k4K, kProtRW, &stats2), Errno::kOk);
  EXPECT_EQ(stats2.tables_allocated, 0u); // same PT
}

// --- property test --------------------------------------------------------------

class PageTableProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PageTableProperty, RandomMapUnmapConsistent) {
  PageTable pt;
  Rng rng(GetParam());
  std::map<Addr, std::pair<Addr, PageSize>> shadow; // va -> (pa, size)

  for (int step = 0; step < 2000; ++step) {
    const bool large = rng.chance(0.3);
    const PageSize size = large ? PageSize::k2M : PageSize::k4K;
    const Addr va = align_down(kVa + rng.uniform(512 * MiB), bytes(size));
    if (rng.chance(0.6)) {
      const Addr pa = align_down(rng.uniform(64 * GiB), bytes(size));
      const Errno err = pt.map(va, pa, size, kProtRW);
      // Shadow-check: map succeeds iff nothing overlaps in the shadow.
      bool overlap = false;
      const Range want{va, va + bytes(size)};
      for (const auto& [sva, entry] : shadow) {
        if (want.overlaps(Range{sva, sva + bytes(entry.second)})) {
          overlap = true;
          break;
        }
      }
      ASSERT_EQ(err == Errno::kOk, !overlap) << "va=" << va;
      if (err == Errno::kOk) {
        shadow[va] = {pa, size};
      }
    } else if (!shadow.empty()) {
      auto it = shadow.begin();
      std::advance(it, static_cast<long>(rng.uniform(shadow.size())));
      ASSERT_EQ(pt.unmap(it->first, it->second.second), Errno::kOk);
      shadow.erase(it);
    }
  }
  // Every shadow entry translates exactly; mix matches byte totals.
  std::uint64_t b4k = 0, b2m = 0;
  for (const auto& [va, entry] : shadow) {
    const auto t = pt.walk(va);
    ASSERT_TRUE(t.has_value());
    ASSERT_EQ(t->phys, entry.first);
    ASSERT_EQ(t->size, entry.second);
    (entry.second == PageSize::k4K ? b4k : b2m) += bytes(entry.second);
  }
  EXPECT_EQ(pt.mapping_mix().bytes_4k, b4k);
  EXPECT_EQ(pt.mapping_mix().bytes_2m, b2m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTableProperty, ::testing::Values(1, 2, 3, 4, 5));

} // namespace
} // namespace hpmmap::mm
