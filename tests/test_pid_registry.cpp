// Unit + property tests: the PID hash table at the front of every
// interposed syscall (Figure 6).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "core/pid_registry.hpp"

namespace hpmmap::core {
namespace {

TEST(PidRegistry, EmptyFindsNothing) {
  PidRegistry r;
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.find(42).has_value());
  EXPECT_FALSE(r.erase(42));
}

TEST(PidRegistry, InsertThenFind) {
  PidRegistry r;
  EXPECT_TRUE(r.insert(42, 7));
  const auto hit = r.find(42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->context, 7u);
  EXPECT_GE(hit->probes, 1u);
  EXPECT_EQ(r.size(), 1u);
}

TEST(PidRegistry, DuplicateInsertRejected) {
  PidRegistry r;
  EXPECT_TRUE(r.insert(42, 1));
  EXPECT_FALSE(r.insert(42, 2));
  EXPECT_EQ(r.find(42)->context, 1u);
}

TEST(PidRegistry, EraseMakesPidInvisible) {
  PidRegistry r;
  EXPECT_TRUE(r.insert(42, 1));
  EXPECT_TRUE(r.erase(42));
  EXPECT_FALSE(r.find(42).has_value());
  EXPECT_FALSE(r.erase(42));
  EXPECT_TRUE(r.empty());
}

TEST(PidRegistry, TombstoneSlotIsReused) {
  PidRegistry r(8);
  EXPECT_TRUE(r.insert(1, 10));
  EXPECT_TRUE(r.insert(2, 20));
  EXPECT_TRUE(r.erase(1));
  EXPECT_TRUE(r.insert(3, 30));
  EXPECT_EQ(r.find(3)->context, 30u);
  EXPECT_EQ(r.find(2)->context, 20u);
}

TEST(PidRegistry, LookupBehindTombstoneStillWorks) {
  // Force a probe chain, delete the middle, verify the tail is found.
  PidRegistry r(8);
  // With 8 buckets and Fibonacci hashing we cannot easily force chains,
  // so fill heavily instead (load rises, chains form, growth kicks in).
  for (Pid p = 1; p <= 6; ++p) {
    EXPECT_TRUE(r.insert(p, p * 10));
  }
  EXPECT_TRUE(r.erase(3));
  for (Pid p : {1u, 2u, 4u, 5u, 6u}) {
    ASSERT_TRUE(r.find(p).has_value()) << p;
    EXPECT_EQ(r.find(p)->context, p * 10);
  }
}

TEST(PidRegistry, GrowsUnderLoad) {
  PidRegistry r(8);
  const std::size_t initial = r.buckets();
  for (Pid p = 1; p <= 100; ++p) {
    EXPECT_TRUE(r.insert(p, p));
  }
  EXPECT_GT(r.buckets(), initial);
  for (Pid p = 1; p <= 100; ++p) {
    ASSERT_TRUE(r.find(p).has_value());
    EXPECT_EQ(r.find(p)->context, p);
  }
}

TEST(PidRegistry, ManyInsertEraseCyclesStayHealthy) {
  // Tombstone accumulation must not degrade or break lookups (the
  // registry lives for the node's lifetime while processes churn).
  PidRegistry r(16);
  for (int cycle = 0; cycle < 200; ++cycle) {
    const Pid base = static_cast<Pid>(cycle * 10 + 1);
    for (Pid p = base; p < base + 8; ++p) {
      ASSERT_TRUE(r.insert(p, p));
    }
    for (Pid p = base; p < base + 8; ++p) {
      ASSERT_TRUE(r.erase(p));
    }
  }
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.insert(99999, 5));
  EXPECT_EQ(r.find(99999)->context, 5u);
}

class PidRegistryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PidRegistryProperty, MatchesReferenceSet) {
  PidRegistry r(8);
  std::set<Pid> reference;
  Rng rng(GetParam());
  for (int step = 0; step < 5000; ++step) {
    const Pid pid = static_cast<Pid>(rng.uniform(1, 300));
    if (rng.chance(0.6)) {
      const bool inserted = r.insert(pid, pid * 2);
      EXPECT_EQ(inserted, !reference.contains(pid));
      reference.insert(pid);
    } else {
      const bool erased = r.erase(pid);
      EXPECT_EQ(erased, reference.contains(pid));
      reference.erase(pid);
    }
    ASSERT_EQ(r.size(), reference.size());
  }
  for (Pid pid = 1; pid <= 300; ++pid) {
    const auto hit = r.find(pid);
    ASSERT_EQ(hit.has_value(), reference.contains(pid)) << pid;
    if (hit.has_value()) {
      EXPECT_EQ(hit->context, pid * 2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PidRegistryProperty, ::testing::Values(1, 2, 3, 4, 5, 6));

} // namespace
} // namespace hpmmap::core
