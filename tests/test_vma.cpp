// Unit + property tests: VMA tree semantics (merging, splitting,
// permission conflicts, gap search).
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "linux_mm/vma.hpp"

namespace hpmmap::mm {
namespace {

Vma anon(Addr begin, Addr end, Prot prot = kProtRW) {
  Vma v;
  v.range = Range{begin, end};
  v.prot = prot;
  v.kind = VmaKind::kAnon;
  return v;
}

TEST(VmaTree, InsertAndFind) {
  VmaTree t;
  ASSERT_EQ(t.insert(anon(0x1000, 0x3000)), Errno::kOk);
  EXPECT_NE(t.find(0x1000), nullptr);
  EXPECT_NE(t.find(0x2fff), nullptr);
  EXPECT_EQ(t.find(0x3000), nullptr);
  EXPECT_EQ(t.find(0x0fff), nullptr);
}

TEST(VmaTree, RejectsOverlap) {
  VmaTree t;
  ASSERT_EQ(t.insert(anon(0x1000, 0x3000)), Errno::kOk);
  EXPECT_EQ(t.insert(anon(0x2000, 0x4000)), Errno::kExist);
  EXPECT_EQ(t.insert(anon(0x0000, 0x2000)), Errno::kExist);
  EXPECT_EQ(t.insert(anon(0x1000, 0x3000)), Errno::kExist);
  EXPECT_EQ(t.count(), 1u);
}

TEST(VmaTree, RejectsEmptyAndMisaligned) {
  VmaTree t;
  EXPECT_EQ(t.insert(anon(0x1000, 0x1000)), Errno::kInval);
  EXPECT_EQ(t.insert(anon(0x1001, 0x2000)), Errno::kInval);
}

TEST(VmaTree, MergesAdjacentCompatible) {
  VmaTree t;
  ASSERT_EQ(t.insert(anon(0x1000, 0x2000)), Errno::kOk);
  ASSERT_EQ(t.insert(anon(0x2000, 0x3000)), Errno::kOk);
  EXPECT_EQ(t.count(), 1u);
  EXPECT_EQ(t.find(0x1000)->range, (Range{0x1000, 0x3000}));
}

TEST(VmaTree, MergesBothSides) {
  VmaTree t;
  ASSERT_EQ(t.insert(anon(0x1000, 0x2000)), Errno::kOk);
  ASSERT_EQ(t.insert(anon(0x3000, 0x4000)), Errno::kOk);
  ASSERT_EQ(t.insert(anon(0x2000, 0x3000)), Errno::kOk); // bridges the gap
  EXPECT_EQ(t.count(), 1u);
}

TEST(VmaTree, PermissionConflictPreventsMerge) {
  // The §II-A problem: differing prot flags keep VMAs separate.
  VmaTree t;
  ASSERT_EQ(t.insert(anon(0x1000, 0x2000, kProtRW)), Errno::kOk);
  ASSERT_EQ(t.insert(anon(0x2000, 0x3000, kProtRX)), Errno::kOk);
  EXPECT_EQ(t.count(), 2u);
}

TEST(VmaTree, KindDifferencePreventsMerge) {
  VmaTree t;
  Vma heap = anon(0x1000, 0x2000);
  heap.kind = VmaKind::kHeap;
  ASSERT_EQ(t.insert(heap), Errno::kOk);
  ASSERT_EQ(t.insert(anon(0x2000, 0x3000)), Errno::kOk);
  EXPECT_EQ(t.count(), 2u);
}

TEST(VmaTree, RemoveWholeVma) {
  VmaTree t;
  ASSERT_EQ(t.insert(anon(0x1000, 0x3000)), Errno::kOk);
  const auto removed = t.remove(Range{0x1000, 0x3000});
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].range, (Range{0x1000, 0x3000}));
  EXPECT_TRUE(t.empty());
}

TEST(VmaTree, RemoveMiddleSplits) {
  VmaTree t;
  ASSERT_EQ(t.insert(anon(0x1000, 0x5000)), Errno::kOk);
  const auto removed = t.remove(Range{0x2000, 0x3000});
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].range, (Range{0x2000, 0x3000}));
  EXPECT_EQ(t.count(), 2u);
  EXPECT_NE(t.find(0x1000), nullptr);
  EXPECT_EQ(t.find(0x2000), nullptr);
  EXPECT_NE(t.find(0x3000), nullptr);
  EXPECT_TRUE(t.check_consistency());
}

TEST(VmaTree, RemoveSpanningMultipleVmas) {
  VmaTree t;
  ASSERT_EQ(t.insert(anon(0x1000, 0x2000, kProtRW)), Errno::kOk);
  ASSERT_EQ(t.insert(anon(0x2000, 0x3000, kProtRX)), Errno::kOk);
  ASSERT_EQ(t.insert(anon(0x3000, 0x4000, kProtRW)), Errno::kOk);
  const auto removed = t.remove(Range{0x1800, 0x3800});
  EXPECT_EQ(removed.size(), 3u);
  EXPECT_EQ(t.count(), 2u); // head of first, tail of last
  EXPECT_TRUE(t.check_consistency());
}

TEST(VmaTree, RemoveUncoveredRangeIsEmpty) {
  VmaTree t;
  ASSERT_EQ(t.insert(anon(0x1000, 0x2000)), Errno::kOk);
  EXPECT_TRUE(t.remove(Range{0x5000, 0x6000}).empty());
  EXPECT_EQ(t.count(), 1u);
}

TEST(VmaTree, ProtectSplitsAndSets) {
  VmaTree t;
  ASSERT_EQ(t.insert(anon(0x1000, 0x5000, kProtRW)), Errno::kOk);
  ASSERT_EQ(t.protect(Range{0x2000, 0x3000}, Prot::kRead), Errno::kOk);
  EXPECT_EQ(t.count(), 3u);
  EXPECT_EQ(t.find(0x1000)->prot, kProtRW);
  EXPECT_EQ(t.find(0x2000)->prot, Prot::kRead);
  EXPECT_EQ(t.find(0x3000)->prot, kProtRW);
  EXPECT_TRUE(t.check_consistency());
}

TEST(VmaTree, ProtectBackMergesAgain) {
  VmaTree t;
  ASSERT_EQ(t.insert(anon(0x1000, 0x5000, kProtRW)), Errno::kOk);
  ASSERT_EQ(t.protect(Range{0x2000, 0x3000}, Prot::kRead), Errno::kOk);
  ASSERT_EQ(t.protect(Range{0x2000, 0x3000}, kProtRW), Errno::kOk);
  EXPECT_EQ(t.count(), 1u);
}

TEST(VmaTree, ProtectOverHoleFails) {
  VmaTree t;
  ASSERT_EQ(t.insert(anon(0x1000, 0x2000)), Errno::kOk);
  ASSERT_EQ(t.insert(anon(0x3000, 0x4000)), Errno::kOk);
  EXPECT_EQ(t.protect(Range{0x1000, 0x4000}, Prot::kRead), Errno::kNoEnt);
}

TEST(VmaTree, FindFreeTopdownPrefersHighAddresses) {
  VmaTree t;
  const Range window{0x10000, 0x100000};
  const auto a = t.find_free_topdown(0x1000, kSmallPageSize, window);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 0xff000u); // top of window minus len
}

TEST(VmaTree, FindFreeTopdownSkipsOccupied) {
  VmaTree t;
  const Range window{0x10000, 0x100000};
  ASSERT_EQ(t.insert(anon(0xff000, 0x100000)), Errno::kOk);
  const auto a = t.find_free_topdown(0x1000, kSmallPageSize, window);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 0xfe000u);
}

TEST(VmaTree, FindFreeTopdownHonorsAlignment) {
  VmaTree t;
  const Range window{0x10000, 0x300000 + 0x7000};
  const auto a = t.find_free_topdown(0x1000, kLargePageSize, window);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(is_aligned(*a, kLargePageSize));
}

TEST(VmaTree, FindFreeTopdownFindsInteriorGap) {
  VmaTree t;
  const Range window{0x10000, 0x20000};
  ASSERT_EQ(t.insert(anon(0x14000, 0x20000)), Errno::kOk); // blocks the top
  const auto a = t.find_free_topdown(0x2000, kSmallPageSize, window);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 0x12000u);
}

TEST(VmaTree, FindFreeTopdownFailsWhenFull) {
  VmaTree t;
  const Range window{0x10000, 0x20000};
  ASSERT_EQ(t.insert(anon(0x10000, 0x20000)), Errno::kOk);
  EXPECT_FALSE(t.find_free_topdown(0x1000, kSmallPageSize, window).has_value());
}

TEST(VmaTree, MappedBytesSumsVmas) {
  VmaTree t;
  ASSERT_EQ(t.insert(anon(0x1000, 0x3000)), Errno::kOk);
  ASSERT_EQ(t.insert(anon(0x5000, 0x6000)), Errno::kOk);
  EXPECT_EQ(t.mapped_bytes(), 0x3000u);
}

// --- property test ----------------------------------------------------------------

class VmaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VmaProperty, RandomOpsKeepTreeConsistent) {
  VmaTree t;
  Rng rng(GetParam());
  const Addr base = 0x100000;
  const std::uint64_t span = 4 * MiB;
  for (int step = 0; step < 2000; ++step) {
    const Addr begin = base + align_down(rng.uniform(span), kSmallPageSize);
    const std::uint64_t len = (1 + rng.uniform(32)) * kSmallPageSize;
    const double dice = rng.uniform_double();
    if (dice < 0.45) {
      Vma v = anon(begin, begin + len, rng.chance(0.5) ? kProtRW : kProtRX);
      (void)t.insert(v); // may fail on overlap; that's fine
    } else if (dice < 0.8) {
      (void)t.remove(Range{begin, begin + len});
    } else {
      (void)t.protect(Range{begin, begin + len},
                      rng.chance(0.5) ? Prot::kRead : kProtRW);
    }
    ASSERT_TRUE(t.check_consistency()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmaProperty, ::testing::Values(11, 12, 13, 14));

} // namespace
} // namespace hpmmap::mm
