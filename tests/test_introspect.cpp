// Introspection-layer tests: golden procfs text against a scripted
// fault sequence, buddyinfo/mem_map/auditor reconciliation, the sampler
// determinism contract (sampling on == sampling off, byte for byte, in
// every other output), --jobs byte-identity of the exported telemetry,
// the exporters, and the bench_diff verdict logic.
//
// Refresh the procfs goldens after an intentional behaviour change with:
//   HPMMAP_UPDATE_GOLDEN=1 ./test_introspect
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "harness/batch.hpp"
#include "harness/experiment.hpp"
#include "hw/mem_map.hpp"
#include "introspect/bench_diff.hpp"
#include "introspect/export.hpp"
#include "introspect/procfs.hpp"
#include "introspect/sampler.hpp"
#include "introspect/snapshot.hpp"
#include "linux_mm/buddy_allocator.hpp"
#include "linux_mm/memory_system.hpp"
#include "os/node.hpp"
#include "os/process.hpp"
#include "sim/engine.hpp"
#include "trace/export.hpp"
#include "verify/audit.hpp"

namespace hpmmap {
namespace {

// --- golden-file plumbing (same contract as test_golden_tables) --------

std::string golden_path(const std::string& name) {
  return std::string(HPMMAP_GOLDEN_DIR) + "/" + name;
}

bool update_mode() { return std::getenv("HPMMAP_UPDATE_GOLDEN") != nullptr; }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return in ? ss.str() : std::string{};
}

void check_golden(const std::string& name, const std::string& produced) {
  const std::string path = golden_path(name);
  if (update_mode()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << produced;
    return;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << path << " missing — regenerate with HPMMAP_UPDATE_GOLDEN=1";
  EXPECT_EQ(expected, produced)
      << "procfs text drifted from golden " << path
      << " (HPMMAP_UPDATE_GOLDEN=1 refreshes it if the change is intended)";
}

// --- scripted fault sequence -------------------------------------------
// A deterministic little machine: clean boot, HPMMAP module loaded, one
// THP process and one HPMMAP process run a fixed mmap/touch/mlock/free
// script. Everything the procfs goldens and the reconciliation checks
// look at derives from this state.

os::NodeConfig script_config() {
  os::NodeConfig cfg;
  cfg.machine = hw::dell_r415();
  cfg.machine.ram_bytes = 4 * GiB;
  cfg.seed = 7;
  cfg.aged_boot = false; // clean slate: the script is the whole history
  cfg.thp_enabled = true;
  core::ModuleConfig mod;
  mod.offline_bytes_per_zone = 512 * MiB;
  cfg.hpmmap = mod;
  return cfg;
}

struct ScriptedNode {
  sim::Engine engine;
  os::Node node;
  os::Process* thp_proc = nullptr;
  os::Process* hpmmap_proc = nullptr;

  ScriptedNode() : node(engine, script_config()) {
    thp_proc = &node.spawn("mdapp", os::MmPolicy::kLinuxThp, 0, 1.0,
                           mm::AddressSpace::ZonePolicy::kSingle, 0);
    hpmmap_proc = &node.spawn("hpcapp", os::MmPolicy::kHpmmap, 1, 1.0,
                              mm::AddressSpace::ZonePolicy::kSingle, 1);

    // THP side: a 2M-eligible heap, fully touched (huge faults), plus a
    // small misc mapping partially locked (forces a split).
    auto heap = node.sys_mmap(*thp_proc, 8 * MiB, kProtRW, os::Node::Segment::kHeapData);
    EXPECT_EQ(heap.err, Errno::kOk);
    (void)node.touch_range(*thp_proc, Range{heap.addr, heap.addr + 8 * MiB});
    auto misc = node.sys_mmap(*thp_proc, 4 * MiB, kProtRW, os::Node::Segment::kHeapData);
    EXPECT_EQ(misc.err, Errno::kOk);
    (void)node.touch_range(*thp_proc, Range{misc.addr, misc.addr + 4 * MiB});
    EXPECT_EQ(node.sys_mlock(*thp_proc, misc.addr, 64 * KiB).err, Errno::kOk);

    // HPMMAP side: a data region faulted through the module window.
    auto data =
        node.sys_mmap(*hpmmap_proc, 16 * MiB, kProtRW, os::Node::Segment::kHeapData);
    EXPECT_EQ(data.err, Errno::kOk);
    (void)node.touch_range(*hpmmap_proc, Range{data.addr, data.addr + 16 * MiB});

    // Kernel churn: a handful of allocations, one freed again.
    const auto k0 = node.kernel_alloc(0, 0);
    const auto k1 = node.kernel_alloc(0, 3);
    EXPECT_TRUE(k0 && k1);
    node.kernel_free(0, *k1, 3);
  }
};

TEST(ProcfsGolden, Buddyinfo) {
  ScriptedNode s;
  check_golden("procfs_buddyinfo.txt", introspect::buddyinfo_text(s.node));
}

TEST(ProcfsGolden, Meminfo) {
  ScriptedNode s;
  check_golden("procfs_meminfo.txt", introspect::meminfo_text(s.node));
}

TEST(ProcfsGolden, Smaps) {
  ScriptedNode s;
  check_golden("procfs_smaps.txt", introspect::smaps_text(s.node, *s.thp_proc) +
                                       introspect::smaps_text(s.node, *s.hpmmap_proc));
}

TEST(ProcfsGolden, VmstatAndPagetypeinfo) {
  ScriptedNode s;
  check_golden("procfs_vmstat.txt",
               introspect::vmstat_text(s.node) + introspect::pagetypeinfo_text(s.node));
}

// --- reconciliation: buddyinfo <-> mem_map <-> auditor ------------------

TEST(ProcfsReconcile, BuddyinfoMatchesMemMapOwnership) {
  ScriptedNode s;
  std::vector<introspect::BuddyinfoZone> zones;
  introspect::capture_buddyinfo(s.node, zones);
  mm::MemorySystem& mem = s.node.memory();
  ASSERT_GE(zones.size(), mem.zone_count());
  for (ZoneId z = 0; z < mem.zone_count(); ++z) {
    const introspect::BuddyinfoZone& row = zones[z];
    ASSERT_STREQ(row.zone_name, "Normal");
    const mm::BuddyAllocator& buddy = mem.buddy(z);
    // Independent recount from the frame-metadata array: every
    // buddy-free block head, bucketed by order.
    std::vector<std::uint64_t> from_mem_map(buddy.max_order() + 1, 0);
    std::uint64_t free_bytes = 0;
    buddy.mem_map().for_each_head([&](Addr, hw::FrameState state, unsigned order) {
      if (state == hw::FrameState::kBuddyFree) {
        ASSERT_LT(order, from_mem_map.size());
        ++from_mem_map[order];
        free_bytes += kSmallPageSize << order;
      }
    });
    EXPECT_EQ(row.free_counts, from_mem_map) << "zone " << z;
    EXPECT_EQ(free_bytes, buddy.free_bytes()) << "zone " << z;
  }
}

TEST(ProcfsReconcile, AuditorAgreesWithSnapshotState) {
  ScriptedNode s;
  verify::MmAuditor auditor(s.node);
  const verify::AuditReport report = auditor.run();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.checks, 0u);
}

// --- sampler determinism contract --------------------------------------

harness::SingleNodeRunConfig fig4_style_config() {
  harness::SingleNodeRunConfig cfg;
  cfg.app = "miniMD";
  cfg.manager = harness::Manager::kThp;
  cfg.commodity = workloads::no_competition();
  cfg.app_cores = 8;
  cfg.seed = 41;
  cfg.trace.categories = static_cast<std::uint32_t>(trace::Category::kFault);
  cfg.footprint_scale = 0.25;
  cfg.duration_scale = 0.15;
  return cfg;
}

TEST(SamplerDeterminism, SamplingLeavesTraceAndTablesUnchanged) {
  harness::SingleNodeRunConfig off = fig4_style_config();
  harness::SingleNodeRunConfig on = fig4_style_config();
  on.introspect.sample_interval = 10'000'000;

  const harness::RunResult r_off = harness::run_single_node(off);
  const harness::RunResult r_on = harness::run_single_node(on);

  EXPECT_TRUE(r_off.telemetry.empty());
  EXPECT_FALSE(r_on.telemetry.empty());

  // Same simulation: runtime, fault accounting, golden-table inputs.
  EXPECT_EQ(r_off.runtime_seconds, r_on.runtime_seconds);
  for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
    EXPECT_EQ(r_off.faults.count[k], r_on.faults.count[k]);
    EXPECT_EQ(r_off.faults.total_cycles[k], r_on.faults.total_cycles[k]);
    EXPECT_EQ(r_off.by_kind_summaries[k].total_faults,
              r_on.by_kind_summaries[k].total_faults);
    EXPECT_EQ(r_off.by_kind_summaries[k].avg_cycles, r_on.by_kind_summaries[k].avg_cycles);
  }

  // Byte-identical trace streams (the fig4/fig5 scatter source).
  trace::ExportOptions eopt;
  eopt.clock_hz = r_off.clock_hz;
  eopt.t0 = r_off.trace_t0;
  EXPECT_EQ(r_off.trace_t0, r_on.trace_t0);
  EXPECT_EQ(trace::chrome_json(r_off.events, eopt), trace::chrome_json(r_on.events, eopt));
  EXPECT_EQ(trace::csv(r_off.events), trace::csv(r_on.events));
}

TEST(SamplerDeterminism, MetricsExportByteIdenticalAcrossJobs) {
  harness::SingleNodeRunConfig base;
  base.app = "miniMD";
  base.manager = harness::Manager::kHpmmap;
  base.commodity = workloads::no_competition();
  base.seed = 97;
  base.footprint_scale = 0.1;
  base.duration_scale = 0.05;
  base.introspect.sample_interval = 10'000'000;

  std::vector<harness::SingleNodeRunConfig> cfgs;
  for (const std::uint64_t s : harness::trial_seeds(base.seed, 3)) {
    cfgs.push_back(base);
    cfgs.back().seed = s;
  }
  const std::vector<harness::RunResult> serial = harness::run_batch(cfgs, 1);
  const std::vector<harness::RunResult> parallel = harness::run_batch(cfgs, 4);
  ASSERT_EQ(serial.size(), parallel.size());

  trace::ExportOptions eopt;
  eopt.clock_hz = serial.front().clock_hz;
  eopt.t0 = serial.front().trace_t0;
  const auto om1 = introspect::openmetrics(harness::merged_telemetry(serial), eopt);
  const auto om4 = introspect::openmetrics(harness::merged_telemetry(parallel), eopt);
  EXPECT_EQ(om1, om4);
  EXPECT_NE(om1.find("hpmmap_zone_free_bytes"), std::string::npos);
  EXPECT_NE(om1.find("trial=\"2\""), std::string::npos);
  const auto csv1 = introspect::telemetry_csv(harness::merged_telemetry(serial), eopt);
  const auto csv4 = introspect::telemetry_csv(harness::merged_telemetry(parallel), eopt);
  EXPECT_EQ(csv1, csv4);
}

TEST(Sampler, RingBoundsAndCadence) {
  sim::Engine engine;
  os::NodeConfig cfg = script_config();
  cfg.hpmmap.reset(); // plain node: fixed series set
  os::Node node(engine, cfg);
  introspect::SamplerConfig scfg;
  scfg.interval = 100;
  scfg.max_samples = 8;
  introspect::TelemetrySampler sampler(engine, scfg);
  sampler.add_node(node);
  sampler.start();
  // A bare Node keeps kswapd rescheduled forever, so run() alone never
  // drains — stop just after the tick at t=2000 like the harness does.
  engine.schedule(2'001, [&engine] { engine.stop(); });
  engine.run();
  EXPECT_EQ(sampler.samples_taken(), 21u); // t=0,100,...,2000
  const std::vector<introspect::TimeSeries> series = sampler.take();
  ASSERT_FALSE(series.empty());
  for (const introspect::TimeSeries& s : series) {
    EXPECT_LE(s.points.size(), 8u);
    EXPECT_EQ(s.dropped, 13u); // 21 - 8
    const std::vector<introspect::TimePoint> pts = s.ordered();
    for (std::size_t i = 1; i < pts.size(); ++i) {
      EXPECT_EQ(pts[i].ts - pts[i - 1].ts, 100u); // chronological ring unwind
    }
    EXPECT_EQ(pts.back().ts, 2'000u);
  }
}

// --- exporters ----------------------------------------------------------

std::vector<introspect::TimeSeries> tiny_series() {
  introspect::TimeSeries gauge;
  gauge.metric = "hpmmap_zone_free_bytes";
  gauge.labels = "node=\"n0\",zone=\"0\"";
  gauge.type = "gauge";
  gauge.capacity = 4;
  gauge.append(0, 4096.0);
  gauge.append(1000, 2048.0);
  introspect::TimeSeries counter;
  counter.metric = "hpmmap_pgfault_total";
  counter.labels = "node=\"n0\"";
  counter.type = "counter";
  counter.capacity = 4;
  counter.append(1000, 17.0);
  return {gauge, counter};
}

TEST(Exporters, OpenMetricsShape) {
  trace::ExportOptions eopt;
  eopt.clock_hz = 1000.0; // 1 cycle = 1 ms
  const std::string out = introspect::openmetrics(tiny_series(), eopt);
  EXPECT_NE(out.find("# TYPE hpmmap_zone_free_bytes gauge\n"), std::string::npos);
  // Counter family drops the _total suffix; the sample keeps it.
  EXPECT_NE(out.find("# TYPE hpmmap_pgfault counter\n"), std::string::npos);
  EXPECT_NE(out.find("hpmmap_pgfault_total{node=\"n0\"} 17 1.000000000\n"),
            std::string::npos);
  EXPECT_NE(out.find("hpmmap_zone_free_bytes{node=\"n0\",zone=\"0\"} 4096 0.000000000\n"),
            std::string::npos);
  EXPECT_TRUE(out.ends_with("# EOF\n"));
}

TEST(Exporters, CsvShape) {
  trace::ExportOptions eopt;
  eopt.clock_hz = 1000.0;
  const std::string out = introspect::telemetry_csv(tiny_series(), eopt);
  EXPECT_TRUE(out.starts_with("metric,labels,ts_cycles,t_seconds,value\n"));
  // Labels flatten comma->semicolon so the CSV field stays unquoted.
  EXPECT_NE(out.find("hpmmap_zone_free_bytes,node=n0;zone=0,1000,1.000000000,2048\n"),
            std::string::npos);
}

TEST(Exporters, ChromeCountersSpliceIntoValidJson) {
  trace::ExportOptions eopt;
  eopt.clock_hz = 1'000'000.0; // 1 cycle = 1 us
  // No events at all: the counter objects must still form a valid array.
  const std::string out =
      introspect::chrome_json_with_counters({}, tiny_series(), eopt);
  EXPECT_TRUE(out.starts_with("["));
  EXPECT_TRUE(out.ends_with("\n]\n"));
  EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"hpmmap_zone_free_bytes{node=n0;zone=0}\""),
            std::string::npos);
  EXPECT_NE(out.find("\"args\":{\"value\":2048}"), std::string::npos);
  // Empty series: byte-identical to the plain exporter.
  EXPECT_EQ(introspect::chrome_json_with_counters({}, {}, eopt),
            trace::chrome_json({}, eopt));
}

// --- bench_diff ---------------------------------------------------------

constexpr std::string_view kBenchJson = R"({
  "bench": "mm_hotpath",
  "faults": 1000000,
  "faults_per_sec": 9.5e6,
  "baseline": { "faults_per_sec": 3.1e6 },
  "improvement_ratio": 3.0,
  "deterministic_match": true
})";

TEST(BenchDiff, ParsesFlattenedKeys) {
  const auto doc = introspect::parse_bench_json(kBenchJson);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->strings.at("bench"), "mm_hotpath");
  EXPECT_EQ(doc->numbers.at("faults"), 1e6);
  EXPECT_EQ(doc->numbers.at("baseline.faults_per_sec"), 3.1e6);
  EXPECT_TRUE(doc->bools.at("deterministic_match"));
  EXPECT_FALSE(introspect::parse_bench_json("{ not json").has_value());
}

TEST(BenchDiff, PassesWithinThreshold) {
  const auto base = introspect::parse_bench_json(kBenchJson);
  auto cur = base;
  cur->numbers["improvement_ratio"] = 2.8; // -6.7%, inside 10%
  cur->numbers["faults_per_sec"] = 1.0;    // absolute throughput: not gated
  const auto r = introspect::diff_bench(*base, *cur, 0.10);
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.regressions(), 0u);
}

TEST(BenchDiff, FailsBeyondThreshold) {
  const auto base = introspect::parse_bench_json(kBenchJson);
  auto cur = base;
  cur->numbers["improvement_ratio"] = 2.0; // -33%
  const auto r = introspect::diff_bench(*base, *cur, 0.10);
  EXPECT_FALSE(r.pass);
  EXPECT_EQ(r.regressions(), 1u);
  const std::string report = introspect::format_diff(r, "mm");
  EXPECT_NE(report.find("REGRESSED"), std::string::npos);
  EXPECT_NE(report.find("FAIL"), std::string::npos);
}

TEST(BenchDiff, MissingGatedMetricFails) {
  const auto base = introspect::parse_bench_json(kBenchJson);
  auto cur = base;
  cur->numbers.erase("improvement_ratio");
  const auto r = introspect::diff_bench(*base, *cur, 0.10);
  EXPECT_FALSE(r.pass);
}

TEST(BenchDiff, FalseDeterminismFlagFails) {
  const auto base = introspect::parse_bench_json(kBenchJson);
  auto cur = base;
  cur->bools["deterministic_match"] = false;
  const auto r = introspect::diff_bench(*base, *cur, 0.10);
  EXPECT_FALSE(r.pass);
}

TEST(BenchDiff, ExplicitGateKeysOverrideDefaults) {
  const auto base = introspect::parse_bench_json(kBenchJson);
  auto cur = base;
  cur->numbers["improvement_ratio"] = 1.0; // huge drop, but not gated below
  cur->numbers["faults"] = 1.0;            // gated explicitly, -100%
  const auto r = introspect::diff_bench(*base, *cur, 0.10, {"faults"});
  EXPECT_FALSE(r.pass);
  EXPECT_EQ(r.regressions(), 1u);
  for (const introspect::MetricDelta& d : r.deltas) {
    EXPECT_EQ(d.gated, d.key == "faults") << d.key;
  }
}

} // namespace
} // namespace hpmmap
