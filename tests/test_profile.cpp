// Causal attribution (DESIGN.md §15): the latency-decomposition
// accounting (sum of buckets == measured latency, exact on the virtual
// clock), the contention profiler's folded-stack writer, and the
// pure-observer contract — span stamping and attribution on/off leave
// every other output byte-identical, at any --jobs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.hpp"
#include "harness/batch.hpp"
#include "harness/experiment.hpp"
#include "profile/attribution.hpp"
#include "profile/contention.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "workloads/profiles.hpp"

namespace hpmmap {
namespace {

// --- latency decomposition --------------------------------------------------

TEST(Attribution, BucketsSumToLatencyExactly) {
  profile::RequestProfiler p;
  profile::LockWaits locks;
  locks.mmap_sem = 100;
  locks.pt = 40;
  locks.zone = 10;
  locks.ipi_stall = 25;
  // queue 500, slab 50+20, fault 1000-175, locks 175, dilation 30+15,
  // miss 2000, compute 700, stretch 300 => latency 4615.
  p.on_dispatch(/*index=*/3, /*arrival=*/1'000'000, /*queue_wait=*/500,
                /*slab_alloc=*/50, /*touch_cost=*/1000, locks, /*dilation=*/30);
  p.on_serve(3, /*miss_wait=*/2000, /*work=*/700, /*stretch=*/300, /*slab_free=*/20,
             /*dilation=*/15);
  p.on_finish(3, /*latency=*/4615);

  const profile::TrialAttribution& t = p.trial();
  ASSERT_EQ(t.completed, 1u);
  EXPECT_EQ(t.residual_errors, 0u);
  const profile::RequestRecord& r = t.requests.front();
  EXPECT_EQ(r.span, 4u); // index + 1
  EXPECT_EQ(r.queue, 500);
  EXPECT_EQ(r.slab, 70);
  EXPECT_EQ(r.fault, 825); // touch cycles net of lock wait
  EXPECT_EQ(r.lock_mmap_sem, 100);
  EXPECT_EQ(r.lock_pt, 40);
  EXPECT_EQ(r.lock_zone, 10);
  EXPECT_EQ(r.ipi_stall, 25);
  EXPECT_EQ(r.miss_disk, 2000);
  EXPECT_EQ(r.compute, 700);
  EXPECT_EQ(r.mem_stretch, 300);
  EXPECT_EQ(r.sched_dilation, 45);
  EXPECT_EQ(r.sum(), static_cast<std::int64_t>(r.latency));
}

TEST(Attribution, ResidualIsCountedNotHidden) {
  profile::RequestProfiler p;
  p.on_dispatch(0, 0, 100, 0, 0, {}, 0);
  p.on_finish(0, /*latency=*/101); // one cycle unaccounted for
  EXPECT_EQ(p.trial().residual_errors, 1u);
  // The report renders "!=" rather than silently normalizing.
  const std::string report = profile::render_report(p.trial(), 2.3e9);
  EXPECT_NE(report.find("1 residual errors"), std::string::npos);
  EXPECT_NE(report.find("sum != latency"), std::string::npos);
}

TEST(Attribution, PercentileRecordUsesNearestRank) {
  std::vector<profile::RequestRecord> records;
  for (std::uint64_t i = 0; i < 100; ++i) {
    profile::RequestRecord r;
    r.index = i;
    r.latency = 10 * (i + 1); // 10, 20, ..., 1000
    records.push_back(r);
  }
  EXPECT_EQ(profile::percentile_record(records, 0.50)->latency, 500u);
  EXPECT_EQ(profile::percentile_record(records, 0.99)->latency, 990u);
  EXPECT_EQ(profile::percentile_record(records, 1.00)->latency, 1000u);
  EXPECT_EQ(profile::percentile_record(records, 0.0)->latency, 10u);
  EXPECT_EQ(profile::percentile_record({}, 0.5), nullptr);
}

TEST(Attribution, CsvRoundTripsAndFromRecordsRebuildsTotals) {
  profile::RequestProfiler p;
  profile::LockWaits locks;
  locks.pt = 7;
  p.on_dispatch(0, 10, 5, 3, 12, locks, 1);
  p.on_serve(0, 0, 40, 8, 2, 0);
  p.on_finish(0, 71);
  p.on_dispatch(1, 20, 9, 0, 0, {}, 0);
  p.on_serve(1, 100, 30, 6, 0, 2);
  p.on_finish(1, 147);
  const profile::TrialAttribution t = p.take();
  ASSERT_EQ(t.completed, 2u);
  ASSERT_EQ(t.residual_errors, 0u);

  const std::string csv = profile::attr_csv(t.requests);
  const profile::TrialAttribution back =
      profile::from_records(profile::parse_attr_csv(csv));
  ASSERT_EQ(back.completed, t.completed);
  EXPECT_EQ(back.residual_errors, 0u);
  EXPECT_EQ(back.totals.sum(), t.totals.sum());
  for (std::size_t i = 0; i < t.requests.size(); ++i) {
    const profile::RequestRecord& a = t.requests[i];
    const profile::RequestRecord& b = back.requests[i];
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.span, b.span);
    EXPECT_EQ(a.arrival, b.arrival);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.sum(), b.sum());
    EXPECT_EQ(a.lock_pt, b.lock_pt);
    EXPECT_EQ(a.miss_disk, b.miss_disk);
  }
  // Fixpoint: re-serializing the parsed records reproduces the bytes.
  EXPECT_EQ(profile::attr_csv(back.requests), csv);
}

// --- contention folding -----------------------------------------------------

trace::Event lock_event(const char* name, Cycles ts, Cycles wait, Pid pid,
                        std::int32_t core, std::uint32_t span) {
  trace::Event e;
  e.ts = ts;
  e.dur = wait;
  e.event_name = name;
  e.cat = trace::Category::kLock;
  e.phase = trace::Phase::kComplete;
  e.pid = pid;
  e.core = core;
  e.span = span;
  return e;
}

TEST(Contention, ClassifiesLockTracepointNames) {
  using profile::LockClass;
  EXPECT_EQ(profile::classify("lock.mmap_sem.read"), LockClass::kMmapSem);
  EXPECT_EQ(profile::classify("lock.mmap_sem.write"), LockClass::kMmapSem);
  EXPECT_EQ(profile::classify("lock.pt"), LockClass::kPt);
  EXPECT_EQ(profile::classify("lock.zone"), LockClass::kZone);
  EXPECT_EQ(profile::classify("lock.ipi_drain"), LockClass::kIpiDrain);
  EXPECT_EQ(profile::classify("smp.shootdown"), LockClass::kShootdown);
  EXPECT_EQ(profile::classify("fault"), LockClass::kCount);
}

TEST(Contention, FoldsWaitsIntoClassesBlockedByAndStacks) {
  std::vector<trace::Event> events;
  events.push_back(lock_event("lock.mmap_sem.read", 100, 1 << 10, 7, 0, 1));
  events.push_back(lock_event("lock.mmap_sem.write", 200, 1 << 12, 7, 0, 2));
  events.push_back(lock_event("lock.mmap_sem.read", 300, 1 << 10, 8, 1, 2));
  events.push_back(lock_event("lock.pt", 400, 1 << 5, 0, 1, 3));
  // Not kLock / not complete: must be ignored by the fold.
  trace::Event other = lock_event("fault", 500, 999, 7, 0, 1);
  other.cat = trace::Category::kFault;
  events.push_back(other);

  const profile::ContentionProfile p = profile::fold(events, /*top_n=*/2);
  const auto& mmap_sem =
      p.classes[static_cast<std::size_t>(profile::LockClass::kMmapSem)];
  EXPECT_EQ(mmap_sem.events, 3u);
  EXPECT_EQ(mmap_sem.total_wait, (1 << 10) + (1 << 12) + (1 << 10));
  EXPECT_EQ(mmap_sem.max_wait, 1u << 12);
  EXPECT_EQ(mmap_sem.hist[10], 2u); // two waits in [2^10, 2^11)
  EXPECT_EQ(mmap_sem.hist[12], 1u);

  // Blocked-by: span 2 lost the most (2^12 + 2^10), then span 1; top_n=2
  // drops span 3.
  ASSERT_EQ(p.top_blocked.size(), 2u);
  EXPECT_EQ(p.top_blocked[0].span, 2u);
  EXPECT_EQ(p.top_blocked[0].wait, (1 << 12) + (1 << 10));
  EXPECT_EQ(p.top_blocked[0].events, 2u);
  EXPECT_EQ(p.top_blocked[1].span, 1u);

  // Folded stacks: class;lock;site with pid preferred over core.
  const std::string stacks = profile::folded_stacks(p);
  EXPECT_NE(stacks.find("mmap_sem;lock.mmap_sem.read;pid7 1024\n"), std::string::npos);
  EXPECT_NE(stacks.find("mmap_sem;lock.mmap_sem.write;pid7 4096\n"), std::string::npos);
  EXPECT_NE(stacks.find("pt;lock.pt;core1 32\n"), std::string::npos);
  EXPECT_EQ(stacks.find("fault"), std::string::npos);
}

TEST(Contention, CsvEventFoldMatchesEventFold) {
  std::vector<trace::Event> events;
  events.push_back(lock_event("lock.zone", 10, 300, 4, 2, 9));
  events.push_back(lock_event("lock.ipi_drain", 20, 4000, 0, 3, 0));
  events.push_back(lock_event("lock.mmap_sem.read", 30, 77, 5, 0, 9));

  const profile::ContentionProfile direct = profile::fold(events, 10);
  const profile::ContentionProfile via_csv =
      profile::fold(trace::parse_csv(trace::csv(events)), 10);

  EXPECT_EQ(profile::folded_stacks(via_csv), profile::folded_stacks(direct));
  EXPECT_EQ(profile::render_contention(via_csv), profile::render_contention(direct));
  for (std::size_t c = 0; c < direct.classes.size(); ++c) {
    EXPECT_EQ(via_csv.classes[c].events, direct.classes[c].events);
    EXPECT_EQ(via_csv.classes[c].total_wait, direct.classes[c].total_wait);
  }
}

// --- pure-observer contract -------------------------------------------------

harness::ServerRunConfig tiny_server(harness::Manager manager) {
  harness::ServerRunConfig cfg;
  cfg.manager = manager;
  cfg.seed = 77;
  cfg.arrival.mean_rps = 4000.0;
  cfg.arrival.duration_seconds = 0.1;
  cfg.service.workers = 2;
  cfg.service.session_table_bytes = 64 * MiB;
  cfg.service.object_count = 64;
  cfg.commodity = workloads::no_competition();
  return cfg;
}

void expect_same_fingerprint(const harness::ServerRunResult& a,
                             const harness::ServerRunResult& b) {
  EXPECT_EQ(a.server.completed, b.server.completed);
  EXPECT_EQ(a.server.shed_queue, b.server.shed_queue);
  EXPECT_EQ(a.server.shed_timeout, b.server.shed_timeout);
  EXPECT_EQ(a.slo_total, b.slo_total);
  EXPECT_EQ(a.tail.p50_us, b.tail.p50_us);
  EXPECT_EQ(a.tail.p99_us, b.tail.p99_us);
  EXPECT_EQ(a.tail.exact_p99_us, b.tail.exact_p99_us);
  EXPECT_EQ(a.runtime_seconds, b.runtime_seconds);
  EXPECT_EQ(a.events_fired, b.events_fired);
}

TEST(PureObserver, ServerRunDecomposesEveryRequestExactly) {
  harness::ServerRunConfig cfg = tiny_server(harness::Manager::kThp);
  cfg.attribution = true;
  const harness::ServerRunResult r = harness::run_server(cfg);
  const profile::TrialAttribution& t = r.attribution;
  ASSERT_GT(t.completed, 0u);
  EXPECT_EQ(t.completed, r.server.completed);
  EXPECT_EQ(t.residual_errors, 0u);
  std::int64_t lat_sum = 0;
  for (const profile::RequestRecord& rec : t.requests) {
    EXPECT_EQ(rec.sum(), static_cast<std::int64_t>(rec.latency))
        << "request " << rec.index;
    lat_sum += static_cast<std::int64_t>(rec.latency);
  }
  EXPECT_EQ(t.totals.sum(), lat_sum);
  EXPECT_NE(profile::percentile_record(t.requests, 0.99), nullptr);
}

TEST(PureObserver, AttributionOnOffLeavesResultsIdentical) {
  harness::ServerRunConfig off = tiny_server(harness::Manager::kHpmmap);
  harness::ServerRunConfig on = off;
  on.attribution = true;
  const harness::ServerRunResult a = harness::run_server(off);
  const harness::ServerRunResult b = harness::run_server(on);
  expect_same_fingerprint(a, b);
  EXPECT_TRUE(a.attribution.requests.empty());
  EXPECT_EQ(b.attribution.completed, b.server.completed);
}

/// Strip the trailing `span:u=N` CSV token (always appended last) so a
/// spans-on export can be compared against the spans-off byte stream.
std::string strip_span_tokens(const std::string& csv) {
  std::string out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t nl = csv.find('\n', start);
    if (nl == std::string::npos) {
      nl = csv.size();
    }
    std::string line = csv.substr(start, nl - start);
    const std::size_t tok = line.rfind("span:u=");
    if (tok != std::string::npos && line.find(',', tok) == std::string::npos) {
      line.erase(tok > 0 && line[tok - 1] == '|' ? tok - 1 : tok);
    }
    out += line;
    if (nl < csv.size()) {
      out += '\n';
    }
    start = nl + 1;
  }
  return out;
}

TEST(PureObserver, SpansOnOffIsByteIdenticalUpToSpanTokens) {
  harness::ServerRunConfig off = tiny_server(harness::Manager::kThp);
  off.trace.categories = static_cast<std::uint32_t>(trace::Category::kServer);
  harness::ServerRunConfig on = off;
  on.trace.spans = true;

  const harness::ServerRunResult a = harness::run_server(off);
  const harness::ServerRunResult b = harness::run_server(on);
  expect_same_fingerprint(a, b);
  ASSERT_EQ(a.events.size(), b.events.size());

  const std::string csv_off = trace::csv(a.events);
  const std::string csv_on = trace::csv(b.events);
  // Spans off: no span token anywhere — the pre-span byte stream.
  EXPECT_EQ(csv_off.find("span:u="), std::string::npos);
  // Spans on: request-lifecycle events carry their span...
  EXPECT_NE(csv_on.find("span:u="), std::string::npos);
  // ...and that is the ONLY difference between the two exports.
  EXPECT_EQ(strip_span_tokens(csv_on), csv_off);
}

TEST(PureObserver, SpannedTrialLoopIsJobsInvariant) {
  harness::ServerRunConfig cfg = tiny_server(harness::Manager::kThp);
  cfg.trace.categories = static_cast<std::uint32_t>(trace::Category::kServer);
  cfg.trace.spans = true;
  cfg.attribution = true;
  const auto serial = harness::run_server_trials(cfg, 3, /*jobs=*/1);
  const auto parallel = harness::run_server_trials(cfg, 3, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_same_fingerprint(serial[i], parallel[i]);
    // Trace streams (spans included) and attribution merge identically.
    EXPECT_EQ(trace::csv(parallel[i].events), trace::csv(serial[i].events));
    EXPECT_EQ(profile::attr_csv(parallel[i].attribution.requests),
              profile::attr_csv(serial[i].attribution.requests));
  }
}

} // namespace
} // namespace hpmmap
