// Binary save/load for WorldImage (--snapshot-out / --snapshot-in).
//
// Little-endian, length-prefixed, versioned. Plain-old-data stats
// structs are written as raw object bytes (same-architecture contract —
// a snapshot file is a local artifact for resuming sweeps, not an
// interchange format). Trace events are the one pointer-bearing type:
// their name/argument strings are written out as strings and interned
// into a process-lifetime pool on load, preserving the recorder's
// "names outlive the recorder" contract.

#include "snapshot/snapshot.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <mutex>
#include <set>
#include <type_traits>

#include "common/assert.hpp"

namespace hpmmap::snapshot {
namespace {

constexpr std::uint32_t kMagic = 0x4e535048; // "HPSN"
constexpr std::uint32_t kVersion = 3; // v3: trace::Event carries a causal span id

/// Loaded trace strings live until process exit; std::set node stability
/// keeps every handed-out c_str() valid as the pool grows.
const char* intern(const std::string& s) {
  if (s.empty()) {
    return nullptr;
  }
  static std::mutex mu;
  static auto* pool = new std::set<std::string>();
  const std::lock_guard<std::mutex> lock(mu);
  return pool->insert(s).first->c_str();
}

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    buf_.append(s);
  }
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const char*>(&v);
    buf_.append(p, sizeof(T));
  }
  [[nodiscard]] const std::string& data() const noexcept { return buf_; }

 private:
  void le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  std::string buf_;
};

class Reader {
 public:
  explicit Reader(std::string data) : buf_(std::move(data)) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  bool b() { return u8() != 0; }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint64_t n = u64();
    const char* p = take(n);
    return std::string(p, static_cast<std::size_t>(n));
  }
  template <typename T>
  void pod(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(&v, take(sizeof(T)), sizeof(T));
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == buf_.size(); }

 private:
  const char* take(std::uint64_t n) {
    HPMMAP_ASSERT(pos_ + n <= buf_.size(), "snapshot: truncated image file");
    const char* p = buf_.data() + pos_;
    pos_ += static_cast<std::size_t>(n);
    return p;
  }
  std::uint64_t le(int n) {
    const char* p = take(static_cast<std::uint64_t>(n));
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
    }
    return v;
  }
  std::string buf_;
  std::size_t pos_ = 0;
};

// --- hw / linux_mm ----------------------------------------------------------

void put(Writer& w, const MemMapImage& m) {
  w.pod(m.range);
  w.u64(m.meta.size());
  for (std::uint8_t v : m.meta) w.u8(v);
  w.u64(m.slot_key.size());
  for (std::uint32_t v : m.slot_key) w.u32(v);
  for (std::uint32_t v : m.slot_next) w.u32(v);
  for (std::uint32_t v : m.slot_prev) w.u32(v);
  w.u64(m.link_count);
}

MemMapImage get_mem_map(Reader& r) {
  MemMapImage m;
  r.pod(m.range);
  m.meta.resize(r.u64());
  for (std::uint8_t& v : m.meta) v = r.u8();
  const std::uint64_t slots = r.u64();
  m.slot_key.resize(slots);
  m.slot_next.resize(slots);
  m.slot_prev.resize(slots);
  for (std::uint32_t& v : m.slot_key) v = r.u32();
  for (std::uint32_t& v : m.slot_next) v = r.u32();
  for (std::uint32_t& v : m.slot_prev) v = r.u32();
  m.link_count = r.u64();
  return m;
}

void put(Writer& w, const BuddyImage& b) {
  w.pod(b.range);
  w.u32(b.max_order);
  w.u64(b.free_bytes);
  w.u64(b.lists.size());
  for (const OrderListImage& l : b.lists) {
    w.u64(l.bits.size());
    for (std::uint64_t v : l.bits) w.u64(v);
    w.u64(l.summary.size());
    for (std::uint64_t v : l.summary) w.u64(v);
    w.u64(l.count);
    w.u64(l.scan_hint);
  }
  put(w, b.map);
  w.u64(b.corrupt_blocks.size());
  for (const CorruptBlockImage& c : b.corrupt_blocks) {
    w.u64(c.addr);
    w.u32(c.order);
  }
  w.pod(b.stats);
}

BuddyImage get_buddy(Reader& r) {
  BuddyImage b;
  r.pod(b.range);
  b.max_order = r.u32();
  b.free_bytes = r.u64();
  b.lists.resize(r.u64());
  for (OrderListImage& l : b.lists) {
    l.bits.resize(r.u64());
    for (std::uint64_t& v : l.bits) v = r.u64();
    l.summary.resize(r.u64());
    for (std::uint64_t& v : l.summary) v = r.u64();
    l.count = r.u64();
    l.scan_hint = r.u64();
  }
  b.map = get_mem_map(r);
  b.corrupt_blocks.resize(r.u64());
  for (CorruptBlockImage& c : b.corrupt_blocks) {
    c.addr = r.u64();
    c.order = r.u32();
  }
  r.pod(b.stats);
  return b;
}

void put(Writer& w, const std::array<std::uint64_t, 4>& rng) {
  for (std::uint64_t v : rng) w.u64(v);
}

std::array<std::uint64_t, 4> get_rng(Reader& r) {
  std::array<std::uint64_t, 4> rng{};
  for (std::uint64_t& v : rng) v = r.u64();
  return rng;
}

void put(Writer& w, const MemoryImage& m) {
  put(w, m.rng);
  w.u64(m.zones.size());
  for (const ZoneImage& z : m.zones) {
    put(w, z.buddy);
    w.u32(z.cache.head);
    w.u32(z.cache.tail);
    w.u64(z.cache.count);
    w.u64(z.cache.cached_bytes);
    w.u64(z.cache.free_floor);
    w.f64(z.cache.dirty_fraction);
    w.u64(z.cache.grow_count);
    w.u64(z.online_bytes);
    w.u64(z.compact_cursor);
    w.u32(z.compact_defer);
  }
}

MemoryImage get_memory(Reader& r) {
  MemoryImage m;
  m.rng = get_rng(r);
  m.zones.resize(r.u64());
  for (ZoneImage& z : m.zones) {
    z.buddy = get_buddy(r);
    z.cache.head = r.u32();
    z.cache.tail = r.u32();
    z.cache.count = r.u64();
    z.cache.cached_bytes = r.u64();
    z.cache.free_floor = r.u64();
    z.cache.dirty_fraction = r.f64();
    z.cache.grow_count = r.u64();
    z.online_bytes = r.u64();
    z.compact_cursor = r.u64();
    z.compact_defer = r.u32();
  }
  return m;
}

void put(Writer& w, const std::vector<mm::Vma>& vmas) {
  w.u64(vmas.size());
  for (const mm::Vma& v : vmas) w.pod(v);
}

std::vector<mm::Vma> get_vmas(Reader& r) {
  std::vector<mm::Vma> vmas(r.u64());
  for (mm::Vma& v : vmas) r.pod(v);
  return vmas;
}

void put(Writer& w, const PidAddr& pa) {
  w.u32(pa.pid);
  w.u64(pa.addr);
}

PidAddr get_pid_addr(Reader& r) {
  PidAddr pa;
  pa.pid = r.u32();
  pa.addr = r.u64();
  return pa;
}

void put(Writer& w, const AddressSpaceImage& a) {
  w.u32(a.pid);
  put(w, a.vmas);
  w.u64(a.pt.slots.size());
  for (std::uint64_t v : a.pt.slots) w.u64(v);
  w.u64(a.pt.used.size());
  for (std::uint16_t v : a.pt.used) w.u16(v);
  w.u64(a.pt.free_nodes.size());
  for (std::uint32_t v : a.pt.free_nodes) w.u32(v);
  w.pod(a.pt.mix);
  w.u64(a.pt.table_pages);
  w.u64(a.heap_base);
  w.u64(a.heap_end);
  w.u64(a.locked_until);
  w.u64(a.swapped.size());
  for (Addr v : a.swapped) w.u64(v);
  w.u8(a.zone_policy);
  w.u32(a.home_zone);
  w.u32(a.zone_count);
}

AddressSpaceImage get_address_space(Reader& r) {
  AddressSpaceImage a;
  a.pid = r.u32();
  a.vmas = get_vmas(r);
  a.pt.slots.resize(r.u64());
  for (std::uint64_t& v : a.pt.slots) v = r.u64();
  a.pt.used.resize(r.u64());
  for (std::uint16_t& v : a.pt.used) v = r.u16();
  a.pt.free_nodes.resize(r.u64());
  for (std::uint32_t& v : a.pt.free_nodes) v = r.u32();
  r.pod(a.pt.mix);
  a.pt.table_pages = r.u64();
  a.heap_base = r.u64();
  a.heap_end = r.u64();
  a.locked_until = r.u64();
  a.swapped.resize(r.u64());
  for (Addr& v : a.swapped) v = r.u64();
  a.zone_policy = r.u8();
  a.home_zone = r.u32();
  a.zone_count = r.u32();
  return a;
}

void put(Writer& w, const ThpImage& t) {
  w.u64(t.processes.size());
  for (Pid p : t.processes) w.u32(p);
  w.u64(t.enter_queue.size());
  for (const PidAddr& pa : t.enter_queue) put(w, pa);
  w.u64(t.inflight.size());
  for (const PidAddr& pa : t.inflight) put(w, pa);
  w.u64(t.scan_rr);
  w.u64(t.scan_cursor);
  w.u64(t.scan_period);
  w.u64(t.last_scan);
  w.b(t.running);
  w.u64(t.pending_collapses.size());
  for (const ThpCollapseImage& c : t.pending_collapses) {
    w.u64(c.token);
    w.u32(c.pid);
    w.u64(c.region);
    w.u32(c.mapped_small);
  }
  w.u64(t.pending_merges.size());
  for (const ThpMergeImage& m : t.pending_merges) {
    w.u64(m.token);
    w.u32(m.pid);
    w.u64(m.region);
    w.u64(m.huge_phys);
  }
  w.u64(t.next_token);
  w.pod(t.stats);
}

ThpImage get_thp(Reader& r) {
  ThpImage t;
  t.processes.resize(r.u64());
  for (Pid& p : t.processes) p = r.u32();
  t.enter_queue.resize(r.u64());
  for (PidAddr& pa : t.enter_queue) pa = get_pid_addr(r);
  t.inflight.resize(r.u64());
  for (PidAddr& pa : t.inflight) pa = get_pid_addr(r);
  t.scan_rr = r.u64();
  t.scan_cursor = r.u64();
  t.scan_period = r.u64();
  t.last_scan = r.u64();
  t.running = r.b();
  t.pending_collapses.resize(r.u64());
  for (ThpCollapseImage& c : t.pending_collapses) {
    c.token = r.u64();
    c.pid = r.u32();
    c.region = r.u64();
    c.mapped_small = r.u32();
  }
  t.pending_merges.resize(r.u64());
  for (ThpMergeImage& m : t.pending_merges) {
    m.token = r.u64();
    m.pid = r.u32();
    m.region = r.u64();
    m.huge_phys = r.u64();
  }
  t.next_token = r.u64();
  r.pod(t.stats);
  return t;
}

void put(Writer& w, const ModuleImage& m) {
  put(w, m.rng);
  w.u64(m.offlined.size());
  for (const std::vector<Range>& zone : m.offlined) {
    w.u64(zone.size());
    for (const Range& rr : zone) w.pod(rr);
  }
  w.u64(m.kitten_zones.size());
  for (const std::vector<BuddyImage>& zone : m.kitten_zones) {
    w.u64(zone.size());
    for (const BuddyImage& b : zone) put(w, b);
  }
  w.pod(m.kitten_stats);
  w.u64(m.registry_slots.size());
  for (const RegistrySlotImage& s : m.registry_slots) {
    w.u8(s.state);
    w.u32(s.pid);
    w.u32(s.context);
  }
  w.u64(m.registry_size);
  w.u64(m.registry_tombstones);
  w.u64(m.contexts.size());
  for (const ModuleContextImage& c : m.contexts) {
    w.u32(c.pid);
    put(w, c.vmas);
    w.u64(c.mmap_cursor);
    w.u64(c.heap_base);
    w.u64(c.heap_break);
    w.b(c.live);
  }
  w.pod(m.stats);
}

ModuleImage get_module(Reader& r) {
  ModuleImage m;
  m.rng = get_rng(r);
  m.offlined.resize(r.u64());
  for (std::vector<Range>& zone : m.offlined) {
    zone.resize(r.u64());
    for (Range& rr : zone) r.pod(rr);
  }
  m.kitten_zones.resize(r.u64());
  for (std::vector<BuddyImage>& zone : m.kitten_zones) {
    zone.resize(r.u64());
    for (BuddyImage& b : zone) b = get_buddy(r);
  }
  r.pod(m.kitten_stats);
  m.registry_slots.resize(r.u64());
  for (RegistrySlotImage& s : m.registry_slots) {
    s.state = r.u8();
    s.pid = r.u32();
    s.context = r.u32();
  }
  m.registry_size = r.u64();
  m.registry_tombstones = r.u64();
  m.contexts.resize(r.u64());
  for (ModuleContextImage& c : m.contexts) {
    c.pid = r.u32();
    c.vmas = get_vmas(r);
    c.mmap_cursor = r.u64();
    c.heap_base = r.u64();
    c.heap_break = r.u64();
    c.live = r.b();
  }
  r.pod(m.stats);
  return m;
}

void put(Writer& w, const NodeImage& n) {
  put(w, n.rng);
  w.u64(n.scheduler.threads.size());
  for (const SchedulerThreadImage& t : n.scheduler.threads) {
    w.i32(t.core);
    w.f64(t.weight);
    w.u32(t.gen);
    w.b(t.live);
  }
  w.u64(n.scheduler.free_slots.size());
  for (std::uint32_t v : n.scheduler.free_slots) w.u32(v);
  w.u64(n.scheduler.live_count);
  w.u64(n.scheduler.pinned_weight.size());
  for (double v : n.scheduler.pinned_weight) w.f64(v);
  w.f64(n.scheduler.unpinned_weight);
  w.u64(n.bw.entries.size());
  for (const BandwidthEntryImage& e : n.bw.entries) {
    w.u32(e.consumer);
    w.u32(e.zone);
    w.f64(e.demand);
  }
  w.u64(n.bw.zone_demand.size());
  for (double v : n.bw.zone_demand) w.f64(v);
  w.f64(n.bw.capacity);
  w.u32(n.bw.next_id);
  put(w, n.memory);
  w.b(n.has_hugetlb);
  if (n.has_hugetlb) {
    w.u64(n.hugetlb.pool.size());
    for (const HugetlbZonePoolImage& zp : n.hugetlb.pool) {
      w.u32(zp.head);
      w.u64(zp.count);
    }
    w.u64(n.hugetlb.total.size());
    for (std::uint64_t v : n.hugetlb.total) w.u64(v);
    w.pod(n.hugetlb.stats);
  }
  w.u64(n.processes.size());
  for (const ProcessImage& p : n.processes) {
    w.u32(p.pid);
    w.str(p.name);
    w.u8(p.policy);
    put(w, p.as);
    w.i32(p.core);
    w.u32(p.sched_id);
    w.u32(p.sched_gen);
    w.pod(p.fault_stats);
    w.b(p.alive);
  }
  w.b(n.has_module);
  if (n.has_module) {
    put(w, n.module);
  }
  w.b(n.has_thp);
  if (n.has_thp) {
    put(w, n.thp);
  }
  w.b(n.has_smp);
  if (n.has_smp) {
    w.u64(n.smp.zone_lock_free_at.size());
    for (Cycles v : n.smp.zone_lock_free_at) w.u64(v);
    w.u64(n.smp.cpu_stall.size());
    for (Cycles v : n.smp.cpu_stall) w.u64(v);
    w.u64(n.smp.mms.size());
    for (const SmpMmImage& m : n.smp.mms) {
      w.u32(m.pid);
      w.u64(m.writer_free_at);
      w.u64(m.readers_free_at);
      w.u64(m.pt_shard_free_at.size());
      for (Cycles v : m.pt_shard_free_at) w.u64(v);
      w.u64(m.pending_shootdown_pages);
    }
    w.u64(n.smp.pcp.size());
    for (const std::vector<Addr>& list : n.smp.pcp) {
      w.u64(list.size());
      for (Addr a : list) w.u64(a);
    }
    w.pod(n.smp.stats);
  }
  w.u32(n.next_pid);
  w.u64(n.anon_lru.size());
  for (const PidAddr& pa : n.anon_lru) put(w, pa);
  w.u64(n.swapped_out_total);
}

NodeImage get_node(Reader& r) {
  NodeImage n;
  n.rng = get_rng(r);
  n.scheduler.threads.resize(r.u64());
  for (SchedulerThreadImage& t : n.scheduler.threads) {
    t.core = r.i32();
    t.weight = r.f64();
    t.gen = r.u32();
    t.live = r.b();
  }
  n.scheduler.free_slots.resize(r.u64());
  for (std::uint32_t& v : n.scheduler.free_slots) v = r.u32();
  n.scheduler.live_count = r.u64();
  n.scheduler.pinned_weight.resize(r.u64());
  for (double& v : n.scheduler.pinned_weight) v = r.f64();
  n.scheduler.unpinned_weight = r.f64();
  n.bw.entries.resize(r.u64());
  for (BandwidthEntryImage& e : n.bw.entries) {
    e.consumer = r.u32();
    e.zone = r.u32();
    e.demand = r.f64();
  }
  n.bw.zone_demand.resize(r.u64());
  for (double& v : n.bw.zone_demand) v = r.f64();
  n.bw.capacity = r.f64();
  n.bw.next_id = r.u32();
  n.memory = get_memory(r);
  n.has_hugetlb = r.b();
  if (n.has_hugetlb) {
    n.hugetlb.pool.resize(r.u64());
    for (HugetlbZonePoolImage& zp : n.hugetlb.pool) {
      zp.head = r.u32();
      zp.count = r.u64();
    }
    n.hugetlb.total.resize(r.u64());
    for (std::uint64_t& v : n.hugetlb.total) v = r.u64();
    r.pod(n.hugetlb.stats);
  }
  n.processes.resize(r.u64());
  for (ProcessImage& p : n.processes) {
    p.pid = r.u32();
    p.name = r.str();
    p.policy = r.u8();
    p.as = get_address_space(r);
    p.core = r.i32();
    p.sched_id = r.u32();
    p.sched_gen = r.u32();
    r.pod(p.fault_stats);
    p.alive = r.b();
  }
  n.has_module = r.b();
  if (n.has_module) {
    n.module = get_module(r);
  }
  n.has_thp = r.b();
  if (n.has_thp) {
    n.thp = get_thp(r);
  }
  n.has_smp = r.b();
  if (n.has_smp) {
    n.smp.zone_lock_free_at.resize(r.u64());
    for (Cycles& v : n.smp.zone_lock_free_at) v = r.u64();
    n.smp.cpu_stall.resize(r.u64());
    for (Cycles& v : n.smp.cpu_stall) v = r.u64();
    n.smp.mms.resize(r.u64());
    for (SmpMmImage& m : n.smp.mms) {
      m.pid = r.u32();
      m.writer_free_at = r.u64();
      m.readers_free_at = r.u64();
      m.pt_shard_free_at.resize(r.u64());
      for (Cycles& v : m.pt_shard_free_at) v = r.u64();
      m.pending_shootdown_pages = r.u64();
    }
    n.smp.pcp.resize(r.u64());
    for (std::vector<Addr>& list : n.smp.pcp) {
      list.resize(r.u64());
      for (Addr& a : list) a = r.u64();
    }
    r.pod(n.smp.stats);
  }
  n.next_pid = r.u32();
  n.anon_lru.resize(r.u64());
  for (PidAddr& pa : n.anon_lru) pa = get_pid_addr(r);
  n.swapped_out_total = r.u64();
  return n;
}

void put(Writer& w, const BuildImage& b) {
  w.u32(b.node_index);
  put(w, b.rng);
  w.u64(b.jobs.size());
  for (const BuildJobImage& j : b.jobs) {
    w.u64(j.blocks.size());
    for (const BuildBlockImage& blk : j.blocks) {
      w.u32(blk.zone);
      w.u64(blk.addr);
      w.u32(blk.order);
    }
    w.u32(j.sched_id);
    w.u32(j.sched_gen);
    w.u32(j.bw_id);
    w.u32(j.home);
    w.u32(j.phase);
    w.b(j.live);
  }
  w.pod(b.stats);
  w.b(b.running);
}

BuildImage get_build(Reader& r) {
  BuildImage b;
  b.node_index = r.u32();
  b.rng = get_rng(r);
  b.jobs.resize(r.u64());
  for (BuildJobImage& j : b.jobs) {
    j.blocks.resize(r.u64());
    for (BuildBlockImage& blk : j.blocks) {
      blk.zone = r.u32();
      blk.addr = r.u64();
      blk.order = r.u32();
    }
    j.sched_id = r.u32();
    j.sched_gen = r.u32();
    j.bw_id = r.u32();
    j.home = r.u32();
    j.phase = r.u32();
    j.live = r.b();
  }
  r.pod(b.stats);
  b.running = r.b();
  return b;
}

void put(Writer& w, const trace::Event& e) {
  w.u64(e.ts);
  w.u64(e.dur);
  w.str(e.event_name != nullptr ? std::string(e.event_name) : std::string());
  w.u32(static_cast<std::uint32_t>(e.cat));
  w.u8(static_cast<std::uint8_t>(e.phase));
  w.u32(e.pid);
  w.i32(e.core);
  w.u32(e.span);
  w.u8(e.arg_count);
  for (const trace::Arg& a : e.args) {
    w.str(a.name != nullptr ? std::string(a.name) : std::string());
    w.u8(static_cast<std::uint8_t>(a.kind));
    switch (a.kind) {
      case trace::Arg::Kind::kNone:
        break;
      case trace::Arg::Kind::kU64:
        w.u64(a.value.u64);
        break;
      case trace::Arg::Kind::kF64:
        w.f64(a.value.f64);
        break;
      case trace::Arg::Kind::kStr:
        w.str(a.value.str != nullptr ? std::string(a.value.str) : std::string());
        break;
    }
  }
}

trace::Event get_event(Reader& r) {
  trace::Event e;
  e.ts = r.u64();
  e.dur = r.u64();
  e.event_name = intern(r.str());
  e.cat = static_cast<trace::Category>(r.u32());
  e.phase = static_cast<trace::Phase>(r.u8());
  e.pid = r.u32();
  e.core = r.i32();
  e.span = r.u32();
  e.arg_count = r.u8();
  for (trace::Arg& a : e.args) {
    a.name = intern(r.str());
    a.kind = static_cast<trace::Arg::Kind>(r.u8());
    switch (a.kind) {
      case trace::Arg::Kind::kNone:
        break;
      case trace::Arg::Kind::kU64:
        a.value.u64 = r.u64();
        break;
      case trace::Arg::Kind::kF64:
        a.value.f64 = r.f64();
        break;
      case trace::Arg::Kind::kStr:
        a.value.str = intern(r.str());
        break;
    }
  }
  return e;
}

void put(Writer& w, const P2QuantileImage& p) {
  w.f64(p.q);
  w.u64(p.n);
  for (double v : p.heights) w.f64(v);
  for (double v : p.positions) w.f64(v);
  for (double v : p.desired) w.f64(v);
  for (double v : p.increments) w.f64(v);
}

P2QuantileImage get_p2(Reader& r) {
  P2QuantileImage p;
  p.q = r.f64();
  p.n = r.u64();
  for (double& v : p.heights) v = r.f64();
  for (double& v : p.positions) v = r.f64();
  for (double& v : p.desired) v = r.f64();
  for (double& v : p.increments) v = r.f64();
  return p;
}

void put(Writer& w, const RunningStatsImage& s) {
  w.u64(s.n);
  w.f64(s.mean);
  w.f64(s.m2);
  w.f64(s.min);
  w.f64(s.max);
  w.f64(s.sum);
}

RunningStatsImage get_running_stats(Reader& r) {
  RunningStatsImage s;
  s.n = r.u64();
  s.mean = r.f64();
  s.m2 = r.f64();
  s.min = r.f64();
  s.max = r.f64();
  s.sum = r.f64();
  return s;
}

} // namespace

void save(const WorldImage& image, const std::string& path) {
  Writer w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.u64(image.fingerprint.size());
  for (const auto& [key, value] : image.fingerprint) {
    w.str(key);
    w.u64(value);
  }
  w.u64(image.engine.now);
  w.u64(image.engine.next_seq);
  w.u64(image.engine.fired);
  w.u64(image.engine.cancelled);
  w.b(image.engine.stopped);
  w.u64(image.nodes.size());
  for (const NodeImage& n : image.nodes) put(w, n);
  w.u64(image.builds.size());
  for (const BuildImage& b : image.builds) put(w, b);
  w.u64(image.events.size());
  for (const EventRecord& e : image.events) {
    w.u64(e.when);
    w.u64(e.seq);
    w.b(e.daemon);
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.u32(e.node_index);
    w.u32(e.build_index);
    w.u64(e.aux);
  }
  w.u64(image.trace.ring.size());
  for (const trace::Event& e : image.trace.ring) put(w, e);
  w.u64(image.trace.capacity);
  w.u64(image.trace.head);
  w.u64(image.trace.dropped);
  w.u64(image.trace.recorded);
  w.u64(image.metrics.counters.size());
  for (const auto& [name, value] : image.metrics.counters) {
    w.str(name);
    w.u64(value);
  }
  w.u64(image.metrics.histograms.size());
  for (const auto& [name, h] : image.metrics.histograms) {
    w.str(name);
    put(w, h.stats);
    put(w, h.p50);
    put(w, h.p95);
    put(w, h.p99);
  }
  w.pod(image.injector.plan);
  for (const verify::PointStats& s : image.injector.stats) {
    w.u64(s.calls);
    w.u64(s.fired);
  }
  put(w, image.injector.rng);
  w.b(image.injector.armed);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  HPMMAP_ASSERT(out.good(), "snapshot: cannot open output file");
  out.write(w.data().data(), static_cast<std::streamsize>(w.data().size()));
  HPMMAP_ASSERT(out.good(), "snapshot: write failed");
}

WorldImage load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HPMMAP_ASSERT(in.good(), "snapshot: cannot open image file");
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  Reader r(std::move(data));
  HPMMAP_ASSERT(r.u32() == kMagic, "snapshot: not a snapshot image");
  HPMMAP_ASSERT(r.u32() == kVersion, "snapshot: unsupported image version");

  WorldImage image;
  image.fingerprint.resize(r.u64());
  for (auto& [key, value] : image.fingerprint) {
    key = r.str();
    value = r.u64();
  }
  image.engine.now = r.u64();
  image.engine.next_seq = r.u64();
  image.engine.fired = r.u64();
  image.engine.cancelled = r.u64();
  image.engine.stopped = r.b();
  image.nodes.resize(r.u64());
  for (NodeImage& n : image.nodes) n = get_node(r);
  image.builds.resize(r.u64());
  for (BuildImage& b : image.builds) b = get_build(r);
  image.events.resize(r.u64());
  for (EventRecord& e : image.events) {
    e.when = r.u64();
    e.seq = r.u64();
    e.daemon = r.b();
    e.kind = static_cast<EventKind>(r.u8());
    e.node_index = r.u32();
    e.build_index = r.u32();
    e.aux = r.u64();
  }
  image.trace.ring.resize(r.u64());
  for (trace::Event& e : image.trace.ring) e = get_event(r);
  image.trace.capacity = r.u64();
  image.trace.head = r.u64();
  image.trace.dropped = r.u64();
  image.trace.recorded = r.u64();
  image.metrics.counters.resize(r.u64());
  for (auto& [name, value] : image.metrics.counters) {
    name = r.str();
    value = r.u64();
  }
  image.metrics.histograms.resize(r.u64());
  for (auto& [name, h] : image.metrics.histograms) {
    name = r.str();
    h.stats = get_running_stats(r);
    h.p50 = get_p2(r);
    h.p95 = get_p2(r);
    h.p99 = get_p2(r);
  }
  r.pod(image.injector.plan);
  for (verify::PointStats& s : image.injector.stats) {
    s.calls = r.u64();
    s.fired = r.u64();
  }
  image.injector.rng = get_rng(r);
  image.injector.armed = r.b();
  HPMMAP_ASSERT(r.done(), "snapshot: trailing bytes in image file");
  return image;
}

} // namespace hpmmap::snapshot
