// Snapshot images: plain value-type mirrors of every piece of node state
// the simulation can hold at a quiesced instant (see DESIGN.md §12).
//
// The contract is verbatim capture: each image field is a bit-for-bit
// copy of the live structure's field, with exactly two translations —
// raw pointers (AddressSpace*/Process*) become pids, and armed engine
// events become EventRecords naming their owner, firing time and
// sequence number so restore can re-arm the identical callback. Restore
// overwrites a freshly booted world with these images; nothing is
// re-derived, so a resumed run replays the exact event stream the
// uninterrupted run would have produced.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "hw/tlb.hpp"
#include "linux_mm/buddy_allocator.hpp"
#include "linux_mm/fault.hpp"
#include "linux_mm/hugetlbfs.hpp"
#include "linux_mm/smp.hpp"
#include "linux_mm/thp.hpp"
#include "linux_mm/vma.hpp"
#include "core/kitten_allocator.hpp"
#include "core/module.hpp"
#include "os/process.hpp"
#include "trace/trace.hpp"
#include "verify/fault_inject.hpp"
#include "workloads/kernel_build.hpp"

namespace hpmmap::snapshot {

/// (pid, virtual address) — the pointer-free spelling of the
/// (AddressSpace*/Process*, Addr) pairs the mm layer queues.
struct PidAddr {
  Pid pid = 0;
  Addr addr = 0;
};

// --- engine ---------------------------------------------------------------

struct EngineImage {
  Cycles now = 0;
  std::uint64_t next_seq = 1;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  bool stopped = false;
};

/// Every armed event belongs to a known owner; the kind names the member
/// function the original lambda called, so restore re-arms a callback
/// with identical behavior.
enum class EventKind : std::uint8_t {
  kKswapd,      // Node::kswapd_tick
  kThpScan,     // ThpService::scan_tick
  kThpWake,     // ThpService::wake_tick
  kThpCollapse, // ThpService::collapse_tick(token)
  kThpMerge,    // ThpService::finish_merge(token)
  kBuildSpawn,  // KernelBuild::spawn_job(slot)
  kBuildStep,   // KernelBuild::job_step(slot)
};

struct EventRecord {
  Cycles when = 0;
  std::uint64_t seq = 0;
  bool daemon = false;
  EventKind kind = EventKind::kKswapd;
  std::uint32_t node_index = 0;
  std::uint32_t build_index = 0;
  std::uint64_t aux = 0; // THP token or build job slot
};

// --- hw / linux_mm --------------------------------------------------------

struct MemMapImage {
  Range range{};
  std::vector<std::uint8_t> meta;
  // The open-addressing link table verbatim (including empty slots), so
  // probe chains restore bit-identically.
  std::vector<std::uint32_t> slot_key;
  std::vector<std::uint32_t> slot_next;
  std::vector<std::uint32_t> slot_prev;
  std::uint64_t link_count = 0;
};

struct OrderListImage {
  std::vector<std::uint64_t> bits;
  std::vector<std::uint64_t> summary;
  std::uint64_t count = 0;
  std::uint64_t scan_hint = 0;
};

struct CorruptBlockImage {
  Addr addr = 0;
  std::uint32_t order = 0;
};

struct BuddyImage {
  Range range{};
  std::uint32_t max_order = 0;
  std::uint64_t free_bytes = 0;
  std::vector<OrderListImage> lists;
  MemMapImage map;
  std::vector<CorruptBlockImage> corrupt_blocks;
  mm::BuddyStats stats{};
};

struct CacheImage {
  std::uint32_t head = 0;
  std::uint32_t tail = 0;
  std::uint64_t count = 0;
  std::uint64_t cached_bytes = 0;
  std::uint64_t free_floor = 0;
  double dirty_fraction = 0.0;
  std::uint64_t grow_count = 0;
};

struct ZoneImage {
  BuddyImage buddy;
  CacheImage cache;
  std::uint64_t online_bytes = 0;
  Addr compact_cursor = 0;
  std::uint32_t compact_defer = 0;
};

struct MemoryImage {
  std::array<std::uint64_t, 4> rng{};
  std::vector<ZoneImage> zones;
};

struct HugetlbZonePoolImage {
  std::uint32_t head = 0;
  std::uint64_t count = 0;
};

struct HugetlbImage {
  std::vector<HugetlbZonePoolImage> pool;
  std::vector<std::uint64_t> total;
  mm::HugetlbStats stats{};
};

/// One mm's SMP lock state: the release points every lock holds on the
/// virtual clock, plus the deferred-shootdown backlog.
struct SmpMmImage {
  Pid pid = 0;
  Cycles writer_free_at = 0;
  Cycles readers_free_at = 0;
  std::vector<Cycles> pt_shard_free_at; // size 1 when sharding is off
  std::uint64_t pending_shootdown_pages = 0;
};

/// SmpDomain verbatim: zone-lock and per-CPU IPI-backlog release points,
/// per-mm lock state, every pcp list's frames in LIFO order, and the
/// aggregate contention counters. A capture taken mid-storm carries
/// future release stamps; restore must reproduce them exactly or the
/// resumed run's waits diverge from the uninterrupted run's.
struct SmpImage {
  std::vector<Cycles> zone_lock_free_at;
  std::vector<Cycles> cpu_stall;
  std::vector<SmpMmImage> mms; // sorted by pid, the live container's order
  std::vector<std::vector<Addr>> pcp; // [cpu * zones + zone], list order
  mm::SmpStats stats{};
};

struct PageTableImage {
  // nodes_ flattened: node i occupies slots [512*i, 512*(i+1)).
  std::vector<std::uint64_t> slots;
  std::vector<std::uint16_t> used;
  std::vector<std::uint32_t> free_nodes;
  hw::MappingMix mix{};
  std::uint64_t table_pages = 1;
};

struct AddressSpaceImage {
  Pid pid = 0;
  std::vector<mm::Vma> vmas; // tree order; re-inserting reproduces the map
  PageTableImage pt;
  Addr heap_base = 0;
  Addr heap_end = 0;
  Cycles locked_until = 0;
  std::vector<Addr> swapped; // membership-only set, captured iteration order
  std::uint8_t zone_policy = 0;
  ZoneId home_zone = 0;
  std::uint32_t zone_count = 1;
};

struct ThpCollapseImage {
  std::uint64_t token = 0;
  Pid pid = 0;
  Addr region = 0;
  std::uint32_t mapped_small = 0;
};

struct ThpMergeImage {
  std::uint64_t token = 0;
  Pid pid = 0;
  Addr region = 0;
  Addr huge_phys = 0;
};

struct ThpImage {
  std::vector<Pid> processes;
  std::vector<PidAddr> enter_queue;
  std::vector<PidAddr> inflight; // membership-only
  std::uint64_t scan_rr = 0;
  Addr scan_cursor = 0;
  Cycles scan_period = 0;
  Cycles last_scan = 0;
  bool running = false;
  std::vector<ThpCollapseImage> pending_collapses;
  std::vector<ThpMergeImage> pending_merges;
  std::uint64_t next_token = 1;
  mm::ThpStats stats{};
};

struct RegistrySlotImage {
  std::uint8_t state = 0;
  Pid pid = 0;
  std::uint32_t context = 0;
};

struct ModuleContextImage {
  Pid pid = 0; // 0 when the context is dead (as == nullptr after restore)
  std::vector<mm::Vma> vmas;
  Addr mmap_cursor = 0;
  Addr heap_base = 0;
  Addr heap_break = 0;
  bool live = false;
};

struct ModuleImage {
  std::array<std::uint64_t, 4> rng{};
  std::vector<std::vector<Range>> offlined;
  std::vector<std::vector<BuddyImage>> kitten_zones;
  core::KittenStats kitten_stats{};
  std::vector<RegistrySlotImage> registry_slots;
  std::uint64_t registry_size = 0;
  std::uint64_t registry_tombstones = 0;
  std::vector<ModuleContextImage> contexts;
  core::ModuleStats stats{};
};

// --- os -------------------------------------------------------------------

struct SchedulerThreadImage {
  std::int32_t core = -1;
  double weight = 0.0;
  std::uint32_t gen = 0;
  bool live = false;
};

struct SchedulerImage {
  std::vector<SchedulerThreadImage> threads;
  std::vector<std::uint32_t> free_slots;
  std::uint64_t live_count = 0;
  std::vector<double> pinned_weight;
  double unpinned_weight = 0.0;
};

struct BandwidthEntryImage {
  std::uint32_t consumer = 0;
  ZoneId zone = 0;
  double demand = 0.0;
};

struct BandwidthImage {
  std::vector<BandwidthEntryImage> entries;
  std::vector<double> zone_demand;
  double capacity = 0.0;
  std::uint32_t next_id = 1;
};

struct ProcessImage {
  Pid pid = 0;
  std::string name;
  std::uint8_t policy = 0; // os::MmPolicy
  AddressSpaceImage as;
  std::int32_t core = -1;
  std::uint32_t sched_id = 0;
  std::uint32_t sched_gen = 0;
  mm::FaultStats fault_stats{};
  bool alive = true;
};

struct NodeImage {
  std::array<std::uint64_t, 4> rng{};
  SchedulerImage scheduler;
  BandwidthImage bw;
  MemoryImage memory;
  bool has_hugetlb = false;
  HugetlbImage hugetlb;
  bool has_module = false;
  ModuleImage module;
  bool has_thp = false;
  ThpImage thp;
  bool has_smp = false;
  SmpImage smp;
  std::vector<ProcessImage> processes;
  Pid next_pid = 1000;
  std::vector<PidAddr> anon_lru;
  std::uint64_t swapped_out_total = 0;
};

// --- workloads ------------------------------------------------------------

struct BuildBlockImage {
  ZoneId zone = 0;
  Addr addr = 0;
  std::uint32_t order = 0;
};

struct BuildJobImage {
  std::vector<BuildBlockImage> blocks;
  std::uint32_t sched_id = 0;
  std::uint32_t sched_gen = 0;
  std::uint32_t bw_id = 0;
  ZoneId home = 0;
  std::uint32_t phase = 0;
  bool live = false;
};

struct BuildImage {
  std::uint32_t node_index = 0;
  std::array<std::uint64_t, 4> rng{};
  std::vector<BuildJobImage> jobs;
  workloads::KernelBuildStats stats{};
  bool running = false;
};

// --- per-run context (trace / metrics / injector) --------------------------

struct TraceImage {
  std::vector<trace::Event> ring; // raw storage order, not rotated
  std::uint64_t capacity = 0;
  std::uint64_t head = 0;
  std::uint64_t dropped = 0;
  std::uint64_t recorded = 0;
};

struct RunningStatsImage {
  std::uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

struct P2QuantileImage {
  double q = 0.0;
  std::uint64_t n = 0;
  std::array<double, 5> heights{};
  std::array<double, 5> positions{};
  std::array<double, 5> desired{};
  std::array<double, 5> increments{};
};

struct HistogramImage {
  RunningStatsImage stats;
  P2QuantileImage p50;
  P2QuantileImage p95;
  P2QuantileImage p99;
};

struct MetricsImage {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, HistogramImage>> histograms;
};

struct InjectorImage {
  verify::InjectionPlan plan{};
  std::array<verify::PointStats, verify::kInjectPointCount> stats{};
  std::array<std::uint64_t, 4> rng{};
  bool armed = false;
};

// --- the world ------------------------------------------------------------

/// Full quiesced-instant state of an engine plus its nodes and builds.
/// Copyable: the amortized-aging sweep captures once and restores the
/// same image into many worlds.
struct WorldImage {
  /// Structural identity of the world this image came from; restore
  /// asserts the target world matches before overwriting anything.
  std::vector<std::pair<std::string, std::uint64_t>> fingerprint;
  EngineImage engine;
  std::vector<NodeImage> nodes;
  std::vector<BuildImage> builds;
  std::vector<EventRecord> events;
  TraceImage trace;
  MetricsImage metrics;
  InjectorImage injector;
};

} // namespace hpmmap::snapshot
