// Node snapshot/restore (DESIGN.md §12).
//
// capture_world() deep-copies every structure of a quiesced simulation —
// engine clock and pending events, buddy bitmaps, the mem_map link
// table, page-cache LRU chains, packed page tables, hugetlb pool
// stacks, VMA trees, the PID registry, module state, the flight
// recorder, metrics and the fault injector — into a WorldImage.
// restore_world() overwrites a freshly booted world (same configuration,
// aging skipped) with the image and re-arms the captured events, after
// which the resumed run is event-for-event identical to the run that
// never stopped. The harness uses this to age a node once and fan many
// measurement configurations out from the same aged state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/image.hpp"

namespace hpmmap::os {
class Node;
}
namespace hpmmap::sim {
class Engine;
}
namespace hpmmap::workloads {
class KernelBuild;
}

namespace hpmmap::snapshot {

/// A kernel build participating in the world, tagged with the node it
/// churns (scaling worlds run one or more builds per node).
struct BuildRef {
  workloads::KernelBuild* build = nullptr;
  std::uint32_t node_index = 0;
};

/// Capture the complete state of `engine` plus `nodes` and `builds`.
/// Every pending engine event must belong to one of the passed owners
/// (asserted); capture at a quiesced instant — after run_until(), never
/// from inside a callback.
[[nodiscard]] WorldImage capture_world(sim::Engine& engine,
                                       const std::vector<os::Node*>& nodes,
                                       const std::vector<BuildRef>& builds = {});

/// Overwrite a freshly constructed world with `image`. The target must
/// be structurally identical to the captured one (same node/zone layout,
/// same builds constructed but not started); the fingerprint is asserted.
/// Also restores this thread's flight recorder, metrics and injector
/// counters (the injector's on_fire hook is left untouched).
void restore_world(const WorldImage& image, sim::Engine& engine,
                   const std::vector<os::Node*>& nodes,
                   const std::vector<BuildRef>& builds = {});

/// Fire exactly the next pending event (time-travel single-stepping for
/// the replay-to-anomaly harness). Returns false when nothing fired.
bool step_one(sim::Engine& engine);

/// Binary serialization for --snapshot-out / --snapshot-in. Trace
/// strings are interned into a process-lifetime pool on load.
void save(const WorldImage& image, const std::string& path);
[[nodiscard]] WorldImage load(const std::string& path);

} // namespace hpmmap::snapshot
