// Capture/restore implementation. snapshot::Access is the single friend
// every mm/os/sim class grants; all private-state traffic lives here.
//
// Restore runs against a freshly booted world (same config, aged_boot
// off, builds constructed but not started) and overwrites it: the only
// state *not* overwritten is what boot derives deterministically from
// the configuration (PhysicalMemory section ownership, cost model, TLB
// geometry) — the module's offlined ranges are asserted equal rather
// than copied, which is the cheap cross-check that the fresh boot really
// did reproduce the captured topology.

#include "snapshot/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <optional>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "hw/bandwidth.hpp"
#include "hw/mem_map.hpp"
#include "linux_mm/address_space.hpp"
#include "linux_mm/buddy_allocator.hpp"
#include "linux_mm/hugetlbfs.hpp"
#include "linux_mm/memory_system.hpp"
#include "linux_mm/page_cache.hpp"
#include "linux_mm/page_table.hpp"
#include "linux_mm/smp.hpp"
#include "linux_mm/thp.hpp"
#include "core/kitten_allocator.hpp"
#include "core/module.hpp"
#include "core/pid_registry.hpp"
#include "os/node.hpp"
#include "os/process.hpp"
#include "os/scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/event_callback.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "verify/fault_inject.hpp"
#include "workloads/kernel_build.hpp"

namespace hpmmap::snapshot {

struct Access {
  // --- engine primitives -------------------------------------------------

  struct EventInfo {
    Cycles when = 0;
    std::uint64_t seq = 0;
    bool daemon = false;
  };

  /// (when, seq, daemon) of a live armed event, or nullopt for a stale
  /// handle (fired or cancelled since it was stored).
  static std::optional<EventInfo> event_info(const sim::Engine& e, sim::EventId id) {
    if (!id.valid()) {
      return std::nullopt;
    }
    const std::uint32_t slot = id.slot - 1;
    if (slot >= e.slots_.size() || e.slots_[slot].gen != id.gen) {
      return std::nullopt;
    }
    for (const sim::Engine::Entry& entry : e.heap_) {
      if (entry.slot == slot && entry.gen == id.gen) {
        return EventInfo{entry.when, entry.seq, e.slots_[slot].daemon};
      }
    }
    return std::nullopt;
  }

  static void clear_events(sim::Engine& e) {
    e.heap_.clear();
    e.slots_.clear(); // EventCallback dtors release their arena blocks
    e.free_slots_.clear();
    e.live_ = 0;
    e.daemon_live_ = 0;
  }

  /// schedule_entry() with an explicit sequence number and without
  /// advancing next_seq_: re-arms a captured event so it fires at its
  /// original position in the global order.
  template <typename F>
  static sim::EventId schedule_raw(sim::Engine& e, Cycles when, std::uint64_t seq,
                                   bool daemon, F&& fn) {
    std::uint32_t slot;
    if (e.free_slots_.empty()) {
      slot = static_cast<std::uint32_t>(e.slots_.size());
      e.slots_.emplace_back();
    } else {
      slot = e.free_slots_.back();
      e.free_slots_.pop_back();
    }
    sim::Engine::Slot& s = e.slots_[slot];
    s.fn = sim::EventCallback(std::forward<F>(fn), &e.arena_);
    s.daemon = daemon;
    e.heap_.push_back(sim::Engine::Entry{when, seq, slot, s.gen});
    e.sift_up(e.heap_.size() - 1);
    ++e.live_;
    if (daemon) {
      ++e.daemon_live_;
    }
    return sim::EventId{slot + 1, s.gen};
  }

  static bool step(sim::Engine& e) { return e.fire_next(~Cycles{0}); }

  // --- fingerprint --------------------------------------------------------

  static std::vector<std::pair<std::string, std::uint64_t>>
  fingerprint(const std::vector<os::Node*>& nodes, const std::vector<BuildRef>& builds) {
    std::vector<std::pair<std::string, std::uint64_t>> fp;
    fp.emplace_back("nodes", nodes.size());
    fp.emplace_back("builds", builds.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      os::Node& n = *nodes[i];
      const std::string p = "node" + std::to_string(i);
      fp.emplace_back(p + ".zones", n.memory_->zone_count());
      fp.emplace_back(p + ".cores", n.config_.machine.total_cores());
      fp.emplace_back(p + ".ram", n.config_.machine.ram_bytes);
      fp.emplace_back(p + ".clock_khz",
                      static_cast<std::uint64_t>(n.config_.machine.clock_hz / 1000.0));
      fp.emplace_back(p + ".module", n.module_ ? 1 : 0);
      fp.emplace_back(p + ".hugetlb", n.hugetlb_ ? 1 : 0);
      fp.emplace_back(p + ".thp", n.thp_ ? 1 : 0);
      fp.emplace_back(p + ".smp_cores", n.smp_ ? n.smp_->config().cores : 0);
      for (ZoneId z = 0; z < n.memory_->zone_count(); ++z) {
        const Range r = n.memory_->buddy(z).range();
        fp.emplace_back(p + ".zone" + std::to_string(z) + ".begin", r.begin);
        fp.emplace_back(p + ".zone" + std::to_string(z) + ".end", r.end);
      }
    }
    for (std::size_t b = 0; b < builds.size(); ++b) {
      const std::string p = "build" + std::to_string(b);
      fp.emplace_back(p + ".node", builds[b].node_index);
      fp.emplace_back(p + ".jobs", builds[b].build->config_.jobs);
    }
    return fp;
  }

  // --- capture: hw / linux_mm ---------------------------------------------

  static MemMapImage capture_mem_map(const hw::MemMap& m) {
    MemMapImage img;
    img.range = m.range_;
    img.meta = m.meta_;
    img.slot_key.reserve(m.slots_.size());
    img.slot_next.reserve(m.slots_.size());
    img.slot_prev.reserve(m.slots_.size());
    for (const hw::MemMap::Slot& s : m.slots_) {
      img.slot_key.push_back(s.key);
      img.slot_next.push_back(s.link.next);
      img.slot_prev.push_back(s.link.prev);
    }
    img.link_count = m.link_count_;
    return img;
  }

  static void restore_mem_map(const MemMapImage& img, hw::MemMap& m) {
    HPMMAP_ASSERT(m.range_ == img.range, "snapshot: mem_map range mismatch");
    m.meta_ = img.meta;
    m.slots_.assign(img.slot_key.size(), hw::MemMap::Slot{});
    for (std::size_t i = 0; i < img.slot_key.size(); ++i) {
      m.slots_[i].key = img.slot_key[i];
      m.slots_[i].link.next = img.slot_next[i];
      m.slots_[i].link.prev = img.slot_prev[i];
    }
    m.link_count_ = img.link_count;
  }

  static BuddyImage capture_buddy(const mm::BuddyAllocator& b) {
    BuddyImage img;
    img.range = b.range_;
    img.max_order = b.max_order_;
    img.free_bytes = b.free_bytes_;
    img.lists.reserve(b.lists_.size());
    for (const mm::BuddyAllocator::OrderList& l : b.lists_) {
      img.lists.push_back(OrderListImage{l.bits, l.summary, l.count, l.scan_hint});
    }
    img.map = capture_mem_map(b.map_);
    for (const auto& [addr, order] : b.corrupt_blocks_) {
      img.corrupt_blocks.push_back(CorruptBlockImage{addr, order});
    }
    img.stats = b.stats_;
    return img;
  }

  static void restore_buddy(const BuddyImage& img, mm::BuddyAllocator& b) {
    HPMMAP_ASSERT(b.range_ == img.range && b.max_order_ == img.max_order,
                  "snapshot: buddy layout mismatch");
    b.free_bytes_ = img.free_bytes;
    HPMMAP_ASSERT(b.lists_.size() == img.lists.size(), "snapshot: buddy order count mismatch");
    for (std::size_t o = 0; o < img.lists.size(); ++o) {
      b.lists_[o].bits = img.lists[o].bits;
      b.lists_[o].summary = img.lists[o].summary;
      b.lists_[o].count = img.lists[o].count;
      b.lists_[o].scan_hint = static_cast<std::size_t>(img.lists[o].scan_hint);
    }
    restore_mem_map(img.map, b.map_);
    b.corrupt_blocks_.clear();
    for (const CorruptBlockImage& c : img.corrupt_blocks) {
      b.corrupt_blocks_.emplace_back(c.addr, c.order);
    }
    b.stats_ = img.stats;
  }

  static CacheImage capture_cache(const mm::PageCache& c) {
    return CacheImage{c.head_, c.tail_, c.count_, c.cached_bytes_,
                      c.free_floor_, c.dirty_fraction_, c.grow_count_};
  }

  static void restore_cache(const CacheImage& img, mm::PageCache& c) {
    c.head_ = img.head;
    c.tail_ = img.tail;
    c.count_ = static_cast<std::size_t>(img.count);
    c.cached_bytes_ = img.cached_bytes;
    c.free_floor_ = img.free_floor;
    c.dirty_fraction_ = img.dirty_fraction;
    c.grow_count_ = img.grow_count;
  }

  static MemoryImage capture_memory(const mm::MemorySystem& ms) {
    MemoryImage img;
    img.rng = std::bit_cast<std::array<std::uint64_t, 4>>(ms.rng_);
    for (const mm::MemorySystem::ZoneState& z : ms.zones_) {
      ZoneImage zi;
      zi.buddy = capture_buddy(z.buddy);
      zi.cache = capture_cache(z.cache);
      zi.online_bytes = z.online_bytes;
      zi.compact_cursor = z.compact_cursor;
      zi.compact_defer = z.compact_defer;
      img.zones.push_back(std::move(zi));
    }
    return img;
  }

  static void restore_memory(const MemoryImage& img, mm::MemorySystem& ms) {
    ms.rng_ = std::bit_cast<Rng>(img.rng);
    HPMMAP_ASSERT(ms.zones_.size() == img.zones.size(), "snapshot: zone count mismatch");
    std::size_t zi = 0;
    for (mm::MemorySystem::ZoneState& z : ms.zones_) {
      const ZoneImage& img_z = img.zones[zi++];
      restore_buddy(img_z.buddy, z.buddy);
      restore_cache(img_z.cache, z.cache);
      z.online_bytes = img_z.online_bytes;
      z.compact_cursor = img_z.compact_cursor;
      z.compact_defer = img_z.compact_defer;
    }
  }

  static HugetlbImage capture_hugetlb(const mm::HugetlbPool& h) {
    HugetlbImage img;
    for (const mm::HugetlbPool::ZonePool& zp : h.pool_) {
      img.pool.push_back(HugetlbZonePoolImage{zp.head, zp.count});
    }
    img.total = h.total_;
    img.stats = h.stats_;
    return img;
  }

  static void restore_hugetlb(const HugetlbImage& img, mm::HugetlbPool& h) {
    HPMMAP_ASSERT(h.pool_.size() == img.pool.size(), "snapshot: hugetlb zone count mismatch");
    for (std::size_t z = 0; z < img.pool.size(); ++z) {
      h.pool_[z].head = img.pool[z].head;
      h.pool_[z].count = img.pool[z].count;
    }
    h.total_ = img.total;
    h.stats_ = img.stats;
  }

  // --- capture: address spaces ---------------------------------------------

  static PageTableImage capture_page_table(const mm::PageTable& pt) {
    PageTableImage img;
    img.slots.reserve(pt.nodes_.size() * mm::PageTable::kFanout);
    for (const mm::PageTable::Node& n : pt.nodes_) {
      img.slots.insert(img.slots.end(), n.slots.begin(), n.slots.end());
    }
    img.used = pt.used_;
    img.free_nodes = pt.free_nodes_;
    img.mix = pt.mix_;
    img.table_pages = pt.table_pages_;
    return img;
  }

  static void restore_page_table(const PageTableImage& img, mm::PageTable& pt) {
    HPMMAP_ASSERT(img.slots.size() % mm::PageTable::kFanout == 0,
                  "snapshot: page-table image not node-aligned");
    pt.nodes_.clear();
    const std::size_t node_count = img.slots.size() / mm::PageTable::kFanout;
    for (std::size_t i = 0; i < node_count; ++i) {
      mm::PageTable::Node n;
      std::memcpy(n.slots.data(), img.slots.data() + i * mm::PageTable::kFanout,
                  sizeof(n.slots));
      pt.nodes_.push_back(n);
    }
    pt.used_ = img.used;
    pt.free_nodes_ = img.free_nodes;
    pt.mix_ = img.mix;
    pt.table_pages_ = img.table_pages;
  }

  static std::vector<mm::Vma> capture_vmas(const mm::VmaTree& tree) {
    std::vector<mm::Vma> out;
    tree.for_each([&](const mm::Vma& v) { out.push_back(v); });
    return out;
  }

  /// Re-inserting the captured (maximally merged, disjoint) VMAs in
  /// ascending order reproduces the tree byte-identically: insert() only
  /// merges adjacent *compatible* VMAs, and a consistent tree has none.
  static void restore_vmas(const std::vector<mm::Vma>& vmas, mm::VmaTree& tree) {
    tree.remove(Range{0, ~Addr{0}});
    for (const mm::Vma& v : vmas) {
      const Errno err = tree.insert(v);
      HPMMAP_ASSERT(err == Errno::kOk, "snapshot: VMA re-insert failed");
    }
  }

  static AddressSpaceImage capture_address_space(const mm::AddressSpace& as) {
    AddressSpaceImage img;
    img.pid = as.pid_;
    img.vmas = capture_vmas(as.vmas_);
    img.pt = capture_page_table(as.pt_);
    img.heap_base = as.heap_base_;
    img.heap_end = as.heap_end_;
    img.locked_until = as.locked_until_;
    img.swapped.assign(as.swapped_out_.begin(), as.swapped_out_.end());
    img.zone_policy = static_cast<std::uint8_t>(as.zone_policy_);
    img.home_zone = as.home_zone_;
    img.zone_count = as.zone_count_;
    return img;
  }

  static void restore_address_space(const AddressSpaceImage& img, mm::AddressSpace& as) {
    HPMMAP_ASSERT(as.pid_ == img.pid, "snapshot: address-space pid mismatch");
    restore_vmas(img.vmas, as.vmas_);
    restore_page_table(img.pt, as.pt_);
    as.heap_base_ = img.heap_base;
    as.heap_end_ = img.heap_end;
    as.locked_until_ = img.locked_until;
    as.swapped_out_.clear();
    for (Addr a : img.swapped) {
      as.swapped_out_.insert(a);
    }
    as.zone_policy_ = static_cast<mm::AddressSpace::ZonePolicy>(img.zone_policy);
    as.home_zone_ = img.home_zone;
    as.zone_count_ = img.zone_count;
  }

  // --- capture: THP / module ------------------------------------------------

  static ThpImage capture_thp(const mm::ThpService& t) {
    ThpImage img;
    for (const mm::AddressSpace* as : t.processes_) {
      img.processes.push_back(as->pid());
    }
    for (const auto& [as, addr] : t.enter_queue_) {
      img.enter_queue.push_back(PidAddr{as->pid(), addr});
    }
    for (const auto& [as, addr] : t.inflight_) {
      img.inflight.push_back(PidAddr{as->pid(), addr});
    }
    // inflight_ is keyed by pointer, so its iteration order is not
    // stable across processes; it is membership-only, so sort for a
    // deterministic image.
    std::sort(img.inflight.begin(), img.inflight.end(), [](const PidAddr& a, const PidAddr& b) {
      return a.pid != b.pid ? a.pid < b.pid : a.addr < b.addr;
    });
    img.scan_rr = t.scan_rr_;
    img.scan_cursor = t.scan_cursor_;
    img.scan_period = t.scan_period_;
    img.last_scan = t.last_scan_;
    img.running = t.running_;
    for (const mm::ThpService::PendingCollapse& pc : t.pending_collapses_) {
      img.pending_collapses.push_back(
          ThpCollapseImage{pc.token, pc.as->pid(), pc.region, pc.mapped_small});
    }
    for (const mm::ThpService::PendingMerge& pm : t.pending_merges_) {
      img.pending_merges.push_back(
          ThpMergeImage{pm.token, pm.as->pid(), pm.region, pm.huge_phys});
    }
    img.next_token = t.next_token_;
    img.stats = t.stats_;
    return img;
  }

  static void restore_thp(const ThpImage& img, mm::ThpService& t, os::Node& node) {
    t.processes_.clear();
    for (Pid pid : img.processes) {
      t.processes_.push_back(&find_process(node, pid)->as_);
    }
    t.enter_queue_.clear();
    for (const PidAddr& pa : img.enter_queue) {
      t.enter_queue_.emplace_back(&find_process(node, pa.pid)->as_, pa.addr);
    }
    t.inflight_.clear();
    for (const PidAddr& pa : img.inflight) {
      t.inflight_.emplace(&find_process(node, pa.pid)->as_, pa.addr);
    }
    t.scan_rr_ = static_cast<std::size_t>(img.scan_rr);
    t.scan_cursor_ = img.scan_cursor;
    t.scan_period_ = img.scan_period;
    t.last_scan_ = img.last_scan;
    t.running_ = img.running;
    t.pending_scan_ = sim::EventId{};
    t.wake_pending_ = sim::EventId{};
    t.pending_collapses_.clear();
    for (const ThpCollapseImage& pc : img.pending_collapses) {
      t.pending_collapses_.push_back(mm::ThpService::PendingCollapse{
          pc.token, &find_process(node, pc.pid)->as_, pc.region, pc.mapped_small,
          sim::EventId{}});
    }
    t.pending_merges_.clear();
    for (const ThpMergeImage& pm : img.pending_merges) {
      t.pending_merges_.push_back(mm::ThpService::PendingMerge{
          pm.token, &find_process(node, pm.pid)->as_, pm.region, pm.huge_phys,
          sim::EventId{}});
    }
    t.next_token_ = img.next_token;
    t.stats_ = img.stats;
  }

  static ModuleImage capture_module(const core::HpmmapModule& m) {
    ModuleImage img;
    img.rng = std::bit_cast<std::array<std::uint64_t, 4>>(m.rng_);
    img.offlined = m.offlined_;
    for (const core::KittenAllocator::ZoneHeap& zh : m.kitten_.zones_) {
      std::vector<BuddyImage> buddies;
      for (const mm::BuddyAllocator& b : zh.buddies) {
        buddies.push_back(capture_buddy(b));
      }
      img.kitten_zones.push_back(std::move(buddies));
    }
    img.kitten_stats = m.kitten_.stats_;
    for (const core::PidRegistry::Slot& s : m.registry_.slots_) {
      img.registry_slots.push_back(
          RegistrySlotImage{static_cast<std::uint8_t>(s.state), s.pid, s.context});
    }
    img.registry_size = m.registry_.size_;
    img.registry_tombstones = m.registry_.tombstones_;
    for (const core::HpmmapModule::ProcessContext& c : m.contexts_) {
      ModuleContextImage ci;
      ci.pid = (c.live && c.as != nullptr) ? c.as->pid() : 0;
      ci.vmas = capture_vmas(c.vmas);
      ci.mmap_cursor = c.mmap_cursor;
      ci.heap_base = c.heap_base;
      ci.heap_break = c.heap_break;
      ci.live = c.live;
      img.contexts.push_back(std::move(ci));
    }
    img.stats = m.stats_;
    return img;
  }

  static void restore_module(const ModuleImage& img, core::HpmmapModule& m, os::Node& node) {
    m.rng_ = std::bit_cast<Rng>(img.rng);
    // A fresh boot with the same config offlines the same ranges from
    // the same forked rng stream; verify instead of trusting.
    HPMMAP_ASSERT(m.offlined_ == img.offlined,
                  "snapshot: fresh boot offlined different ranges than the image");
    HPMMAP_ASSERT(m.kitten_.zones_.size() == img.kitten_zones.size(),
                  "snapshot: kitten zone count mismatch");
    for (std::size_t z = 0; z < img.kitten_zones.size(); ++z) {
      core::KittenAllocator::ZoneHeap& zh = m.kitten_.zones_[z];
      HPMMAP_ASSERT(zh.buddies.size() == img.kitten_zones[z].size(),
                    "snapshot: kitten heap count mismatch");
      for (std::size_t i = 0; i < zh.buddies.size(); ++i) {
        restore_buddy(img.kitten_zones[z][i], zh.buddies[i]);
      }
    }
    m.kitten_.stats_ = img.kitten_stats;
    m.registry_.slots_.assign(img.registry_slots.size(), core::PidRegistry::Slot{});
    for (std::size_t i = 0; i < img.registry_slots.size(); ++i) {
      m.registry_.slots_[i].state =
          static_cast<core::PidRegistry::State>(img.registry_slots[i].state);
      m.registry_.slots_[i].pid = img.registry_slots[i].pid;
      m.registry_.slots_[i].context = img.registry_slots[i].context;
    }
    m.registry_.size_ = static_cast<std::size_t>(img.registry_size);
    m.registry_.tombstones_ = static_cast<std::size_t>(img.registry_tombstones);
    m.contexts_.clear();
    for (const ModuleContextImage& ci : img.contexts) {
      core::HpmmapModule::ProcessContext c;
      c.as = ci.pid != 0 ? &find_process(node, ci.pid)->as_ : nullptr;
      restore_vmas(ci.vmas, c.vmas);
      c.mmap_cursor = ci.mmap_cursor;
      c.heap_base = ci.heap_base;
      c.heap_break = ci.heap_break;
      c.live = ci.live;
      m.contexts_.push_back(std::move(c));
    }
    m.stats_ = img.stats;
  }

  // --- capture: SMP domain ---------------------------------------------------

  static SmpImage capture_smp(const mm::SmpDomain& s) {
    SmpImage img;
    for (const mm::SimLock& l : s.zone_locks_) {
      img.zone_lock_free_at.push_back(l.free_at);
    }
    img.cpu_stall = s.cpu_stall_;
    for (const mm::SmpDomain::MmState& m : s.mms_) {
      SmpMmImage mi;
      mi.pid = m.pid;
      mi.writer_free_at = m.mmap_sem.writer_free_at;
      mi.readers_free_at = m.mmap_sem.readers_free_at;
      for (const mm::SimLock& l : m.pt_shards) {
        mi.pt_shard_free_at.push_back(l.free_at);
      }
      mi.pending_shootdown_pages = m.pending_shootdown_pages;
      img.mms.push_back(std::move(mi));
    }
    for (const mm::SmpDomain::PcpList& l : s.pcp_) {
      img.pcp.push_back(l.frames);
    }
    img.stats = s.stats_;
    return img;
  }

  static void restore_smp(const SmpImage& img, mm::SmpDomain& s) {
    HPMMAP_ASSERT(s.zone_locks_.size() == img.zone_lock_free_at.size(),
                  "snapshot: smp zone count mismatch");
    for (std::size_t z = 0; z < img.zone_lock_free_at.size(); ++z) {
      s.zone_locks_[z].free_at = img.zone_lock_free_at[z];
    }
    HPMMAP_ASSERT(s.cpu_stall_.size() == img.cpu_stall.size(),
                  "snapshot: smp core count mismatch");
    s.cpu_stall_ = img.cpu_stall;
    s.mms_.clear();
    for (const SmpMmImage& mi : img.mms) {
      mm::SmpDomain::MmState m;
      m.pid = mi.pid;
      m.mmap_sem.writer_free_at = mi.writer_free_at;
      m.mmap_sem.readers_free_at = mi.readers_free_at;
      for (const Cycles c : mi.pt_shard_free_at) {
        m.pt_shards.push_back(mm::SimLock{c});
      }
      m.pending_shootdown_pages = mi.pending_shootdown_pages;
      s.mms_.push_back(std::move(m));
    }
    HPMMAP_ASSERT(s.pcp_.size() == img.pcp.size(), "snapshot: smp pcp list count mismatch");
    for (std::size_t i = 0; i < img.pcp.size(); ++i) {
      s.pcp_[i].frames = img.pcp[i];
    }
    s.stats_ = img.stats;
  }

  // --- capture: os ---------------------------------------------------------

  static SchedulerImage capture_scheduler(const os::Scheduler& s) {
    SchedulerImage img;
    for (const os::Scheduler::Thread& t : s.threads_) {
      img.threads.push_back(SchedulerThreadImage{t.core, t.weight, t.gen, t.live});
    }
    img.free_slots = s.free_slots_;
    img.live_count = s.live_count_;
    img.pinned_weight = s.pinned_weight_;
    img.unpinned_weight = s.unpinned_weight_;
    return img;
  }

  static void restore_scheduler(const SchedulerImage& img, os::Scheduler& s) {
    s.threads_.clear();
    for (const SchedulerThreadImage& t : img.threads) {
      s.threads_.push_back(os::Scheduler::Thread{t.core, t.weight, t.gen, t.live});
    }
    s.free_slots_ = img.free_slots;
    s.live_count_ = static_cast<std::size_t>(img.live_count);
    s.pinned_weight_ = img.pinned_weight;
    s.unpinned_weight_ = img.unpinned_weight;
    s.dirty_ = true; // mutable caches recompute lazily
  }

  static BandwidthImage capture_bandwidth(const hw::BandwidthModel& bw) {
    BandwidthImage img;
    for (const hw::BandwidthModel::Entry& e : bw.entries_) {
      img.entries.push_back(BandwidthEntryImage{e.consumer, e.zone, e.demand});
    }
    img.zone_demand = bw.zone_demand_;
    img.capacity = bw.capacity_;
    img.next_id = bw.next_id_;
    return img;
  }

  static void restore_bandwidth(const BandwidthImage& img, hw::BandwidthModel& bw) {
    bw.entries_.clear();
    for (const BandwidthEntryImage& e : img.entries) {
      bw.entries_.push_back(hw::BandwidthModel::Entry{e.consumer, e.zone, e.demand});
    }
    bw.zone_demand_ = img.zone_demand;
    bw.capacity_ = img.capacity;
    bw.next_id_ = img.next_id;
  }

  static os::Process* find_process(os::Node& node, Pid pid) {
    for (const auto& p : node.processes_) {
      if (p->pid_ == pid) {
        return p.get();
      }
    }
    HPMMAP_ASSERT(false, "snapshot: image references a pid the world does not hold");
    return nullptr;
  }

  static NodeImage capture_node(os::Node& n) {
    NodeImage img;
    img.rng = std::bit_cast<std::array<std::uint64_t, 4>>(n.rng_);
    img.scheduler = capture_scheduler(n.scheduler_);
    img.bw = capture_bandwidth(n.bw_);
    img.memory = capture_memory(*n.memory_);
    if (n.hugetlb_) {
      img.has_hugetlb = true;
      img.hugetlb = capture_hugetlb(*n.hugetlb_);
    }
    for (const auto& p : n.processes_) {
      ProcessImage pi;
      pi.pid = p->pid_;
      pi.name = p->name_;
      pi.policy = static_cast<std::uint8_t>(p->policy_);
      pi.as = capture_address_space(p->as_);
      pi.core = p->core_;
      pi.sched_id = p->sched_.id;
      pi.sched_gen = p->sched_.gen;
      pi.fault_stats = p->fault_stats_;
      pi.alive = p->alive_;
      img.processes.push_back(std::move(pi));
    }
    if (n.module_) {
      img.has_module = true;
      img.module = capture_module(*n.module_);
    }
    if (n.thp_) {
      img.has_thp = true;
      img.thp = capture_thp(*n.thp_);
    }
    if (n.smp_) {
      img.has_smp = true;
      img.smp = capture_smp(*n.smp_);
    }
    img.next_pid = n.next_pid_;
    for (const auto& [proc, addr] : n.anon_lru_) {
      img.anon_lru.push_back(PidAddr{proc->pid_, addr});
    }
    img.swapped_out_total = n.swapped_out_total_;
    return img;
  }

  static void restore_node(const NodeImage& img, os::Node& n) {
    n.rng_ = std::bit_cast<Rng>(img.rng);
    restore_scheduler(img.scheduler, n.scheduler_);
    restore_bandwidth(img.bw, n.bw_);
    restore_memory(img.memory, *n.memory_);
    HPMMAP_ASSERT(img.has_hugetlb == (n.hugetlb_ != nullptr),
                  "snapshot: hugetlb presence mismatch");
    if (img.has_hugetlb) {
      restore_hugetlb(img.hugetlb, *n.hugetlb_);
    }
    // Processes before module/THP: both rebind AddressSpace pointers by pid.
    n.processes_.clear();
    for (const ProcessImage& pi : img.processes) {
      auto p = std::make_unique<os::Process>(pi.pid, pi.name,
                                             static_cast<os::MmPolicy>(pi.policy));
      restore_address_space(pi.as, p->as_);
      p->core_ = pi.core;
      p->sched_ = os::Scheduler::ThreadId{pi.sched_id, pi.sched_gen};
      p->fault_stats_ = pi.fault_stats;
      p->alive_ = pi.alive;
      n.processes_.push_back(std::move(p));
    }
    HPMMAP_ASSERT(img.has_module == (n.module_ != nullptr),
                  "snapshot: module presence mismatch");
    if (img.has_module) {
      restore_module(img.module, *n.module_, n);
    }
    HPMMAP_ASSERT(img.has_thp == (n.thp_ != nullptr), "snapshot: thp presence mismatch");
    if (img.has_thp) {
      restore_thp(img.thp, *n.thp_, n);
    }
    HPMMAP_ASSERT(img.has_smp == (n.smp_ != nullptr), "snapshot: smp presence mismatch");
    if (img.has_smp) {
      restore_smp(img.smp, *n.smp_);
    }
    n.next_pid_ = img.next_pid;
    n.anon_lru_.clear();
    for (const PidAddr& pa : img.anon_lru) {
      n.anon_lru_.emplace_back(find_process(n, pa.pid), pa.addr);
    }
    n.swapped_out_total_ = img.swapped_out_total;
    n.kswapd_event_ = sim::EventId{}; // re-armed from the event records
  }

  // --- capture: builds ------------------------------------------------------

  static BuildImage capture_build(const workloads::KernelBuild& kb, std::uint32_t node_index) {
    BuildImage img;
    img.node_index = node_index;
    img.rng = std::bit_cast<std::array<std::uint64_t, 4>>(kb.rng_);
    for (const workloads::KernelBuild::Job& j : kb.jobs_) {
      BuildJobImage ji;
      for (const workloads::KernelBuild::Block& blk : j.blocks) {
        ji.blocks.push_back(BuildBlockImage{blk.zone, blk.addr, blk.order});
      }
      ji.sched_id = j.sched.id;
      ji.sched_gen = j.sched.gen;
      ji.bw_id = j.bw.id;
      ji.home = j.home;
      ji.phase = j.phase;
      ji.live = j.live;
      img.jobs.push_back(std::move(ji));
    }
    img.stats = kb.stats_;
    img.running = kb.running_;
    return img;
  }

  static void restore_build(const BuildImage& img, workloads::KernelBuild& kb) {
    kb.rng_ = std::bit_cast<Rng>(img.rng);
    kb.jobs_.clear();
    kb.jobs_.resize(img.jobs.size());
    for (std::size_t i = 0; i < img.jobs.size(); ++i) {
      const BuildJobImage& ji = img.jobs[i];
      workloads::KernelBuild::Job& j = kb.jobs_[i];
      for (const BuildBlockImage& blk : ji.blocks) {
        j.blocks.push_back(workloads::KernelBuild::Block{blk.zone, blk.addr, blk.order});
      }
      j.sched = os::Scheduler::ThreadId{ji.sched_id, ji.sched_gen};
      j.bw = hw::BandwidthModel::Consumer{ji.bw_id};
      j.home = ji.home;
      j.phase = ji.phase;
      j.live = ji.live;
      j.pending = sim::EventId{}; // re-armed from the event records
    }
    kb.stats_ = img.stats;
    kb.running_ = img.running;
  }

  // --- events ---------------------------------------------------------------

  static void capture_events(WorldImage& img, const sim::Engine& e,
                             const std::vector<os::Node*>& nodes,
                             const std::vector<BuildRef>& builds) {
    auto record = [&](sim::EventId id, EventKind kind, std::uint32_t node_index,
                      std::uint32_t build_index, std::uint64_t aux) {
      const std::optional<EventInfo> info = event_info(e, id);
      if (!info) {
        return; // stale handle: fired or cancelled, nothing pending
      }
      img.events.push_back(EventRecord{info->when, info->seq, info->daemon, kind,
                                       node_index, build_index, aux});
    };
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto ni = static_cast<std::uint32_t>(i);
      os::Node& n = *nodes[i];
      record(n.kswapd_event_, EventKind::kKswapd, ni, 0, 0);
      if (n.thp_) {
        record(n.thp_->pending_scan_, EventKind::kThpScan, ni, 0, 0);
        record(n.thp_->wake_pending_, EventKind::kThpWake, ni, 0, 0);
        for (const mm::ThpService::PendingCollapse& pc : n.thp_->pending_collapses_) {
          record(pc.event, EventKind::kThpCollapse, ni, 0, pc.token);
        }
        for (const mm::ThpService::PendingMerge& pm : n.thp_->pending_merges_) {
          record(pm.event, EventKind::kThpMerge, ni, 0, pm.token);
        }
      }
    }
    for (std::size_t b = 0; b < builds.size(); ++b) {
      const workloads::KernelBuild& kb = *builds[b].build;
      for (std::size_t slot = 0; slot < kb.jobs_.size(); ++slot) {
        const workloads::KernelBuild::Job& j = kb.jobs_[slot];
        record(j.pending, j.live ? EventKind::kBuildStep : EventKind::kBuildSpawn,
               builds[b].node_index, static_cast<std::uint32_t>(b), slot);
      }
    }
    // Every live engine event must have been claimed by an owner above;
    // an unclaimed event would silently vanish from the resumed run.
    HPMMAP_ASSERT(img.events.size() == e.live_,
                  "snapshot: engine holds events no owner accounted for");
  }

  static void rearm_events(const WorldImage& img, sim::Engine& e,
                           const std::vector<os::Node*>& nodes,
                           const std::vector<BuildRef>& builds) {
    for (const EventRecord& r : img.events) {
      switch (r.kind) {
        case EventKind::kKswapd: {
          os::Node* n = nodes[r.node_index];
          n->kswapd_event_ =
              schedule_raw(e, r.when, r.seq, r.daemon, [n] { n->kswapd_tick(); });
          break;
        }
        case EventKind::kThpScan: {
          mm::ThpService* t = nodes[r.node_index]->thp_.get();
          t->pending_scan_ =
              schedule_raw(e, r.when, r.seq, r.daemon, [t] { t->scan_tick(); });
          break;
        }
        case EventKind::kThpWake: {
          mm::ThpService* t = nodes[r.node_index]->thp_.get();
          t->wake_pending_ =
              schedule_raw(e, r.when, r.seq, r.daemon, [t] { t->wake_tick(); });
          break;
        }
        case EventKind::kThpCollapse: {
          mm::ThpService* t = nodes[r.node_index]->thp_.get();
          const std::uint64_t token = r.aux;
          auto it = std::find_if(
              t->pending_collapses_.begin(), t->pending_collapses_.end(),
              [token](const mm::ThpService::PendingCollapse& pc) { return pc.token == token; });
          HPMMAP_ASSERT(it != t->pending_collapses_.end(),
                        "snapshot: collapse event without a registry entry");
          it->event = schedule_raw(e, r.when, r.seq, r.daemon,
                                   [t, token] { t->collapse_tick(token); });
          break;
        }
        case EventKind::kThpMerge: {
          mm::ThpService* t = nodes[r.node_index]->thp_.get();
          const std::uint64_t token = r.aux;
          auto it = std::find_if(
              t->pending_merges_.begin(), t->pending_merges_.end(),
              [token](const mm::ThpService::PendingMerge& pm) { return pm.token == token; });
          HPMMAP_ASSERT(it != t->pending_merges_.end(),
                        "snapshot: merge event without a registry entry");
          it->event = schedule_raw(e, r.when, r.seq, r.daemon,
                                   [t, token] { t->finish_merge(token); });
          break;
        }
        case EventKind::kBuildSpawn: {
          workloads::KernelBuild* kb = builds[r.build_index].build;
          const auto slot = static_cast<std::size_t>(r.aux);
          kb->jobs_[slot].pending =
              schedule_raw(e, r.when, r.seq, r.daemon, [kb, slot] { kb->spawn_job(slot); });
          break;
        }
        case EventKind::kBuildStep: {
          workloads::KernelBuild* kb = builds[r.build_index].build;
          const auto slot = static_cast<std::size_t>(r.aux);
          kb->jobs_[slot].pending =
              schedule_raw(e, r.when, r.seq, r.daemon, [kb, slot] { kb->job_step(slot); });
          break;
        }
      }
    }
    HPMMAP_ASSERT(e.live_ == img.events.size(), "snapshot: re-arm count mismatch");
  }

  // --- per-run context -----------------------------------------------------

  static TraceImage capture_trace() {
    const trace::FlightRecorder& rec = trace::recorder();
    TraceImage img;
    img.ring = rec.ring_;
    img.capacity = rec.capacity_;
    img.head = rec.head_;
    img.dropped = rec.dropped_;
    img.recorded = rec.recorded_;
    return img;
  }

  static void restore_trace(const TraceImage& img) {
    trace::FlightRecorder& rec = trace::recorder();
    rec.ring_ = img.ring;
    rec.capacity_ = static_cast<std::size_t>(img.capacity);
    rec.head_ = static_cast<std::size_t>(img.head);
    rec.dropped_ = img.dropped;
    rec.recorded_ = img.recorded;
  }

  static RunningStatsImage capture_running_stats(const RunningStats& s) {
    return RunningStatsImage{s.n_, s.mean_, s.m2_, s.min_, s.max_, s.sum_};
  }

  static void restore_running_stats(const RunningStatsImage& img, RunningStats& s) {
    s.n_ = img.n;
    s.mean_ = img.mean;
    s.m2_ = img.m2;
    s.min_ = img.min;
    s.max_ = img.max;
    s.sum_ = img.sum;
  }

  static P2QuantileImage capture_p2(const P2Quantile& p) {
    P2QuantileImage img;
    img.q = p.q_;
    img.n = p.n_;
    for (int i = 0; i < 5; ++i) {
      img.heights[static_cast<std::size_t>(i)] = p.heights_[i];
      img.positions[static_cast<std::size_t>(i)] = p.positions_[i];
      img.desired[static_cast<std::size_t>(i)] = p.desired_[i];
      img.increments[static_cast<std::size_t>(i)] = p.increments_[i];
    }
    return img;
  }

  static void restore_p2(const P2QuantileImage& img, P2Quantile& p) {
    p.q_ = img.q;
    p.n_ = img.n;
    for (int i = 0; i < 5; ++i) {
      p.heights_[i] = img.heights[static_cast<std::size_t>(i)];
      p.positions_[i] = img.positions[static_cast<std::size_t>(i)];
      p.desired_[i] = img.desired[static_cast<std::size_t>(i)];
      p.increments_[i] = img.increments[static_cast<std::size_t>(i)];
    }
  }

  static MetricsImage capture_metrics() {
    const trace::MetricRegistry& reg = trace::metrics();
    MetricsImage img;
    for (const auto& [name, value] : reg.counters_) {
      img.counters.emplace_back(name, value);
    }
    for (const auto& [name, hist] : reg.histograms_) {
      HistogramImage hi;
      hi.stats = capture_running_stats(hist.stats_);
      hi.p50 = capture_p2(hist.p50_);
      hi.p95 = capture_p2(hist.p95_);
      hi.p99 = capture_p2(hist.p99_);
      img.histograms.emplace_back(name, hi);
    }
    return img;
  }

  static void restore_metrics(const MetricsImage& img) {
    trace::MetricRegistry& reg = trace::metrics();
    reg.counters_.clear();
    reg.histograms_.clear();
    for (const auto& [name, value] : img.counters) {
      reg.counters_[name] = value;
    }
    for (const auto& [name, hi] : img.histograms) {
      trace::Histogram& h = reg.histograms_[name];
      restore_running_stats(hi.stats, h.stats_);
      restore_p2(hi.p50, h.p50_);
      restore_p2(hi.p95, h.p95_);
      restore_p2(hi.p99, h.p99_);
    }
  }

  static InjectorImage capture_injector() {
    const verify::FaultInjector& inj = verify::injector();
    InjectorImage img;
    img.plan = inj.plan_;
    img.stats = inj.stats_;
    img.rng = std::bit_cast<std::array<std::uint64_t, 4>>(inj.rng_);
    img.armed = inj.armed_;
    return img;
  }

  /// on_fire_ is deliberately untouched: the resumed harness installs
  /// its own audit hook before restore.
  static void restore_injector(const InjectorImage& img) {
    verify::FaultInjector& inj = verify::injector();
    inj.plan_ = img.plan;
    inj.stats_ = img.stats;
    inj.rng_ = std::bit_cast<Rng>(img.rng);
    inj.armed_ = img.armed;
  }

  // --- top level ------------------------------------------------------------

  static WorldImage capture(sim::Engine& e, const std::vector<os::Node*>& nodes,
                            const std::vector<BuildRef>& builds) {
    WorldImage img;
    img.fingerprint = fingerprint(nodes, builds);
    img.engine = EngineImage{e.now_, e.next_seq_, e.fired_, e.cancelled_, e.stopped_};
    for (os::Node* n : nodes) {
      img.nodes.push_back(capture_node(*n));
    }
    for (const BuildRef& b : builds) {
      img.builds.push_back(capture_build(*b.build, b.node_index));
    }
    capture_events(img, e, nodes, builds);
    img.trace = capture_trace();
    img.metrics = capture_metrics();
    img.injector = capture_injector();
    return img;
  }

  static void restore(const WorldImage& img, sim::Engine& e,
                      const std::vector<os::Node*>& nodes,
                      const std::vector<BuildRef>& builds) {
    HPMMAP_ASSERT(img.fingerprint == fingerprint(nodes, builds),
                  "snapshot: image does not match the target world's layout");
    clear_events(e);
    HPMMAP_ASSERT(img.nodes.size() == nodes.size(), "snapshot: node count mismatch");
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      restore_node(img.nodes[i], *nodes[i]);
    }
    HPMMAP_ASSERT(img.builds.size() == builds.size(), "snapshot: build count mismatch");
    for (std::size_t b = 0; b < builds.size(); ++b) {
      restore_build(img.builds[b], *builds[b].build);
    }
    rearm_events(img, e, nodes, builds);
    e.now_ = img.engine.now;
    e.next_seq_ = img.engine.next_seq;
    e.fired_ = img.engine.fired;
    e.cancelled_ = img.engine.cancelled;
    e.stopped_ = img.engine.stopped;
    restore_trace(img.trace);
    restore_metrics(img.metrics);
    restore_injector(img.injector);
  }
};

WorldImage capture_world(sim::Engine& engine, const std::vector<os::Node*>& nodes,
                         const std::vector<BuildRef>& builds) {
  return Access::capture(engine, nodes, builds);
}

void restore_world(const WorldImage& image, sim::Engine& engine,
                   const std::vector<os::Node*>& nodes,
                   const std::vector<BuildRef>& builds) {
  Access::restore(image, engine, nodes, builds);
}

bool step_one(sim::Engine& engine) { return Access::step(engine); }

} // namespace hpmmap::snapshot
