#include "core/kitten_allocator.hpp"

#include <bit>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace hpmmap::core {
namespace {

/// Max order per range: cover the whole range (so a 6 GiB offlined block
/// coalesces into a handful of giant blocks) but cap at 1 GiB past which
/// no page size exists.
unsigned range_max_order(const Range& r) {
  const std::uint64_t pages = r.size() / kSmallPageSize;
  unsigned order = static_cast<unsigned>(std::bit_width(pages)) - 1;
  const unsigned cap = mm::BuddyAllocator::order_for_bytes(kHugePageSize);
  return order > cap ? cap : order;
}

} // namespace

KittenAllocator::KittenAllocator(std::vector<std::vector<Range>> ranges_per_zone) {
  zones_.resize(ranges_per_zone.size());
  for (std::size_t z = 0; z < ranges_per_zone.size(); ++z) {
    for (const Range& r : ranges_per_zone[z]) {
      HPMMAP_ASSERT(is_aligned(r.begin, kMemorySectionSize),
                    "offlined ranges are section-aligned");
      zones_[z].buddies.emplace_back(r, range_max_order(r));
    }
  }
}

std::optional<Addr> KittenAllocator::alloc(ZoneId zone, std::uint64_t bytes) {
  HPMMAP_ASSERT(zone < zones_.size(), "zone out of range");
  HPMMAP_ASSERT(std::has_single_bit(bytes / kSmallPageSize), "block size must be a power of two");
  const unsigned order = mm::BuddyAllocator::order_for_bytes(bytes);
  for (mm::BuddyAllocator& buddy : zones_[zone].buddies) {
    if (order > buddy.max_order()) {
      continue;
    }
    if (auto a = buddy.alloc(order); a.has_value()) {
      ++stats_.allocs;
      return a->addr;
    }
  }
  ++stats_.failed;
  return std::nullopt;
}

void KittenAllocator::free(ZoneId zone, Addr addr, std::uint64_t bytes) {
  HPMMAP_ASSERT(zone < zones_.size(), "zone out of range");
  const unsigned order = mm::BuddyAllocator::order_for_bytes(bytes);
  for (mm::BuddyAllocator& buddy : zones_[zone].buddies) {
    if (buddy.range().contains(addr)) {
      buddy.free(addr, order);
      ++stats_.frees;
      return;
    }
  }
  HPMMAP_ASSERT(false, "free of a block no Kitten range owns");
}

std::uint64_t KittenAllocator::free_bytes(ZoneId zone) const {
  HPMMAP_ASSERT(zone < zones_.size(), "zone out of range");
  std::uint64_t total = 0;
  for (const mm::BuddyAllocator& buddy : zones_[zone].buddies) {
    total += buddy.free_bytes();
  }
  return total;
}

std::uint64_t KittenAllocator::total_bytes(ZoneId zone) const {
  HPMMAP_ASSERT(zone < zones_.size(), "zone out of range");
  std::uint64_t total = 0;
  for (const mm::BuddyAllocator& buddy : zones_[zone].buddies) {
    total += buddy.total_bytes();
  }
  return total;
}

bool KittenAllocator::frame_is_free(ZoneId zone, Addr addr) const {
  HPMMAP_ASSERT(zone < zones_.size(), "zone out of range");
  for (const mm::BuddyAllocator& buddy : zones_[zone].buddies) {
    if (buddy.range().contains(addr)) {
      return buddy.free_block_containing(addr).has_value();
    }
  }
  return false;
}

bool KittenAllocator::check_consistency() const {
  for (const ZoneHeap& zh : zones_) {
    for (const mm::BuddyAllocator& buddy : zh.buddies) {
      if (!buddy.check_consistency()) {
        return false;
      }
    }
  }
  return true;
}

bool KittenAllocator::all_free() const {
  for (const ZoneHeap& zh : zones_) {
    for (const mm::BuddyAllocator& buddy : zh.buddies) {
      if (buddy.free_bytes() != buddy.total_bytes()) {
        return false;
      }
    }
  }
  return true;
}

} // namespace hpmmap::core
