// The PID hash table at the front of every interposed system call
// (Figure 6): insert at application launch, search on every
// address-space syscall, delete at exit.
//
// Implemented as open-addressing with linear probing and tombstones —
// the probe count is what the syscall layer charges cycles for, so the
// structure is real rather than a std::unordered_map facade.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::core {

class PidRegistry {
 public:
  explicit PidRegistry(std::size_t initial_buckets = 64);

  /// Register `pid` with an opaque per-process context index.
  /// Returns false if already present.
  bool insert(Pid pid, std::uint32_t context);

  /// Lookup; also reports probes for the cost model.
  struct Hit {
    std::uint32_t context;
    unsigned probes;
  };
  [[nodiscard]] std::optional<Hit> find(Pid pid) const;

  /// Remove at process exit. Returns false if absent.
  bool erase(Pid pid);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t buckets() const noexcept { return slots_.size(); }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

 private:
  friend struct hpmmap::snapshot::Access;

  enum class State : std::uint8_t { kEmpty, kUsed, kTombstone };
  struct Slot {
    State state = State::kEmpty;
    Pid pid = 0;
    std::uint32_t context = 0;
  };

  [[nodiscard]] static std::size_t hash(Pid pid, std::size_t buckets) noexcept;
  void grow();

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

} // namespace hpmmap::core
