#include "core/pid_registry.hpp"

#include <bit>

#include "common/assert.hpp"

namespace hpmmap::core {

PidRegistry::PidRegistry(std::size_t initial_buckets) {
  HPMMAP_ASSERT(initial_buckets >= 2, "registry needs at least two buckets");
  slots_.resize(std::bit_ceil(initial_buckets));
}

std::size_t PidRegistry::hash(Pid pid, std::size_t buckets) noexcept {
  // Fibonacci hashing; buckets is always a power of two.
  const std::uint64_t h = static_cast<std::uint64_t>(pid) * 0x9e3779b97f4a7c15ull;
  return static_cast<std::size_t>(h >> (64 - std::bit_width(buckets - 1)));
}

void PidRegistry::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  size_ = 0;
  tombstones_ = 0;
  for (const Slot& s : old) {
    if (s.state == State::kUsed) {
      insert(s.pid, s.context);
    }
  }
}

bool PidRegistry::insert(Pid pid, std::uint32_t context) {
  if ((size_ + tombstones_ + 1) * 4 >= slots_.size() * 3) {
    grow(); // keep load factor under 3/4 including tombstones
  }
  std::size_t idx = hash(pid, slots_.size());
  std::size_t first_tombstone = slots_.size();
  for (std::size_t probe = 0; probe < slots_.size(); ++probe) {
    Slot& s = slots_[(idx + probe) & (slots_.size() - 1)];
    if (s.state == State::kUsed && s.pid == pid) {
      return false;
    }
    if (s.state == State::kTombstone && first_tombstone == slots_.size()) {
      first_tombstone = (idx + probe) & (slots_.size() - 1);
      continue;
    }
    if (s.state == State::kEmpty) {
      Slot& target = first_tombstone != slots_.size() ? slots_[first_tombstone] : s;
      if (target.state == State::kTombstone) {
        --tombstones_;
      }
      target = Slot{State::kUsed, pid, context};
      ++size_;
      return true;
    }
  }
  HPMMAP_ASSERT(false, "registry full despite load-factor guard");
  return false;
}

std::optional<PidRegistry::Hit> PidRegistry::find(Pid pid) const {
  const std::size_t idx = hash(pid, slots_.size());
  for (std::size_t probe = 0; probe < slots_.size(); ++probe) {
    const Slot& s = slots_[(idx + probe) & (slots_.size() - 1)];
    if (s.state == State::kEmpty) {
      return std::nullopt;
    }
    if (s.state == State::kUsed && s.pid == pid) {
      return Hit{s.context, static_cast<unsigned>(probe + 1)};
    }
  }
  return std::nullopt;
}

bool PidRegistry::erase(Pid pid) {
  const std::size_t idx = hash(pid, slots_.size());
  for (std::size_t probe = 0; probe < slots_.size(); ++probe) {
    Slot& s = slots_[(idx + probe) & (slots_.size() - 1)];
    if (s.state == State::kEmpty) {
      return false;
    }
    if (s.state == State::kUsed && s.pid == pid) {
      s.state = State::kTombstone;
      --size_;
      ++tombstones_;
      return true;
    }
  }
  return false;
}

} // namespace hpmmap::core
