#include "core/module.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace hpmmap::core {
namespace {

std::vector<std::vector<Range>> offline_all(hw::PhysicalMemory& phys,
                                            const ModuleConfig& config) {
  std::vector<std::vector<Range>> per_zone;
  per_zone.reserve(phys.zones().size());
  for (const hw::Zone& z : phys.zones()) {
    std::vector<Range> taken = phys.offline_bytes(z.id, config.offline_bytes_per_zone);
    HPMMAP_ASSERT(!taken.empty() || config.offline_bytes_per_zone == 0,
                  "memory offlining failed: zone has too little online memory");
    per_zone.push_back(std::move(taken));
  }
  return per_zone;
}

} // namespace

HpmmapModule::HpmmapModule(hw::PhysicalMemory& phys, hw::BandwidthModel& bw,
                           const mm::CostModel& costs, Rng rng, ModuleConfig config)
    : phys_(phys),
      bw_(bw),
      costs_(costs),
      rng_(rng),
      config_(config),
      offlined_(offline_all(phys, config)),
      kitten_(offlined_) {
  log_info("hpmmap", "module loaded: %llu MiB offlined per zone",
           static_cast<unsigned long long>(config.offline_bytes_per_zone / MiB));
  trace::instant(trace::Category::kModule, "hpmmap.load", 0, -1,
                 {trace::Arg::u64("offline_bytes_per_zone", config.offline_bytes_per_zone),
                  trace::Arg::u64("zones", offlined_.size()),
                  trace::Arg::u64("use_1g", config.use_1g_pages ? 1 : 0),
                  trace::Arg::u64("on_request", config.on_request ? 1 : 0)});
}

HpmmapModule::~HpmmapModule() {
  // Force-unload semantics: release any processes still registered (the
  // Node normally unregisters them at exit, but a direct user of the
  // module may drop it first). Offlined memory must come back whole.
  if (!registry_.empty()) {
    log_warn("hpmmap", "module unloading with %zu registered processes", registry_.size());
    for (ProcessContext& ctx : contexts_) {
      if (ctx.live) {
        release_process(ctx);
      }
    }
  }
  HPMMAP_ASSERT(kitten_.all_free(), "module unload leaked offlined memory");
  for (const auto& ranges : offlined_) {
    phys_.online_ranges(ranges);
  }
}

Errno HpmmapModule::register_process(Pid pid, mm::AddressSpace& as) {
  if (registry_.find(pid).has_value()) {
    return Errno::kExist;
  }
  // Reuse a dead context slot if one exists.
  std::uint32_t slot = static_cast<std::uint32_t>(contexts_.size());
  for (std::uint32_t i = 0; i < contexts_.size(); ++i) {
    if (!contexts_[i].live) {
      slot = i;
      break;
    }
  }
  if (slot == contexts_.size()) {
    contexts_.emplace_back();
  }
  ProcessContext& ctx = contexts_[slot];
  ctx = ProcessContext{};
  ctx.as = &as;
  ctx.live = true;
  // Carve the process's window: heap at the base, mmap bump allocator
  // above it. Address spaces are per-process so windows can be identical
  // across processes.
  ctx.heap_base = mm::AddressLayout::kHpmmapBase;
  ctx.heap_break = ctx.heap_base;
  ctx.mmap_cursor = mm::AddressLayout::kHpmmapBase + (mm::AddressLayout::kHpmmapTop -
                                                      mm::AddressLayout::kHpmmapBase) /
                                                         2;
  const bool ok = registry_.insert(pid, slot);
  HPMMAP_ASSERT(ok, "registry insert after negative find cannot fail");
  ++stats_.registered;
  trace::instant(trace::Category::kModule, "hpmmap.register", pid, -1,
                 {trace::Arg::u64("slot", slot)});
  return Errno::kOk;
}

const mm::VmaTree* HpmmapModule::regions_for(Pid pid) const {
  const auto hit = registry_.find(pid);
  if (!hit.has_value()) {
    return nullptr;
  }
  const ProcessContext& ctx = contexts_[hit->context];
  return ctx.live ? &ctx.vmas : nullptr;
}

Errno HpmmapModule::unregister_process(Pid pid) {
  const auto hit = registry_.find(pid);
  if (!hit.has_value()) {
    return Errno::kNoEnt;
  }
  release_process(contexts_[hit->context]);
  registry_.erase(pid);
  trace::instant(trace::Category::kModule, "hpmmap.unregister", pid, -1);
  return Errno::kOk;
}

void HpmmapModule::release_process(ProcessContext& ctx) {
  // Free every HPMMAP mapping this process still holds.
  std::vector<Range> regions;
  ctx.vmas.for_each([&](const mm::Vma& vma) { regions.push_back(vma.range); });
  for (const Range& r : regions) {
    unback_region(ctx, r);
    ctx.vmas.remove(r);
  }
  ctx.live = false;
  ctx.as = nullptr;
}

HpmmapModule::ProcessContext* HpmmapModule::context_for(Pid pid, Cycles* probe_cost) {
  const auto hit = registry_.find(pid);
  if (!hit.has_value()) {
    return nullptr;
  }
  if (probe_cost != nullptr) {
    *probe_cost = hit->probes * costs_.hpmmap_hash_lookup;
  }
  return &contexts_[hit->context];
}

Errno HpmmapModule::back_region(ProcessContext& ctx, Range range, Prot prot, Cycles& cost) {
  HPMMAP_ASSERT(is_aligned(range.begin, kLargePageSize) && is_aligned(range.end, kLargePageSize),
                "HPMMAP regions are large-page granular");
  struct Chunk {
    Addr vaddr;
    Addr phys;
    std::uint64_t size;
    ZoneId zone;
  };
  std::vector<Chunk> mapped;
  mm::AddressSpace& as = *ctx.as;

  Addr va = range.begin;
  while (va < range.end) {
    // Prefer 1G chunks when enabled, aligned, and fitting.
    std::uint64_t chunk = kLargePageSize;
    if (config_.use_1g_pages && is_aligned(va, kHugePageSize) &&
        range.end - va >= kHugePageSize) {
      chunk = kHugePageSize;
    }
    const ZoneId want = as.zone_for(va);
    ZoneId zone = want;
    std::optional<Addr> phys = kitten_.alloc(zone, chunk);
    if (!phys.has_value()) {
      // Spill across zones, then shrink 1G -> 2M, before failing.
      for (ZoneId z = 0; z < kitten_.zone_count() && !phys.has_value(); ++z) {
        if (z == want) {
          continue;
        }
        phys = kitten_.alloc(z, chunk);
        zone = z;
      }
      if (!phys.has_value() && chunk == kHugePageSize) {
        chunk = kLargePageSize;
        zone = want;
        phys = kitten_.alloc(zone, chunk);
      }
    }
    if (!phys.has_value()) {
      for (const Chunk& c : mapped) { // rollback, including accounting
        as.page_table().unmap(c.vaddr, c.size == kHugePageSize ? PageSize::k1G : PageSize::k2M);
        kitten_.free(c.zone, c.phys, c.size);
        stats_.bytes_mapped -= c.size;
        if (c.size == kHugePageSize) {
          --stats_.map_1g;
        } else {
          --stats_.map_2m;
        }
      }
      return Errno::kNoMem;
    }
    const PageSize ps = chunk == kHugePageSize ? PageSize::k1G : PageSize::k2M;
    mm::PtOpStats pt_stats;
    const Errno err = as.page_table().map(va, *phys, ps, prot, &pt_stats);
    HPMMAP_ASSERT(err == Errno::kOk, "HPMMAP window collision in the page table");
    mapped.push_back(Chunk{va, *phys, chunk, zone});

    // On-request backing zeroes the chunk now, at the current channel
    // contention; lightweight tables skip rmap/LRU entirely.
    cost += costs_.hpmmap_alloc_base + costs_.hpmmap_pte_install +
            pt_stats.tables_allocated * costs_.pt_alloc_table;
    if (config_.on_request) {
      const double rate = bw_.effective_rate(zone, costs_.zero_bytes_per_cycle);
      cost += mm::stream_cycles(chunk, rate);
    }
    if (ps == PageSize::k1G) {
      ++stats_.map_1g;
    } else {
      ++stats_.map_2m;
    }
    stats_.bytes_mapped += chunk;
    va += chunk;
  }
  if (trace::on(trace::Category::kModule)) {
    trace::instant(trace::Category::kModule, "hpmmap.back_region",
                   ctx.as != nullptr ? ctx.as->pid() : 0, -1,
                   {trace::Arg::u64("bytes", range.size()),
                    trace::Arg::u64("chunks", mapped.size())});
    trace::metrics().counter("hpmmap.bytes_backed") += range.size();
  }
  return Errno::kOk;
}

Cycles HpmmapModule::unback_region(ProcessContext& ctx, Range range) {
  Cycles cost = 0;
  mm::AddressSpace& as = *ctx.as;
  Addr va = range.begin;
  while (va < range.end) {
    const auto t = as.page_table().walk(va);
    if (!t.has_value()) {
      va += kLargePageSize; // demand-mode region never touched
      continue;
    }
    const std::uint64_t chunk = bytes(t->size);
    const Addr phys = align_down(t->phys, chunk);
    as.page_table().unmap(va, t->size);
    kitten_.free(phys_.zone_of(phys), phys, chunk);
    stats_.bytes_mapped -= chunk;
    cost += costs_.hpmmap_pte_install + costs_.tlb_flush_page;
    va += chunk;
  }
  return cost;
}

SyscallResult HpmmapModule::mmap(Pid pid, std::uint64_t len, Prot prot) {
  ++stats_.syscalls_interposed;
  SyscallResult result;
  result.cost = costs_.syscall_entry;
  Cycles probe = 0;
  ProcessContext* ctx = context_for(pid, &probe);
  result.cost += probe;
  if (ctx == nullptr) {
    result.err = Errno::kNoEnt;
    return result;
  }
  if (len == 0) {
    result.err = Errno::kInval;
    return result;
  }
  const std::uint64_t aligned = align_up(len, kLargePageSize);
  const Addr va = ctx->mmap_cursor;
  const Range region{va, va + aligned};
  mm::Vma vma;
  vma.range = region;
  vma.prot = prot;
  vma.kind = mm::VmaKind::kAnon;
  const Errno ins = ctx->vmas.insert(vma);
  HPMMAP_ASSERT(ins == Errno::kOk, "bump cursor cannot collide");
  result.cost += 350; // HPMMAP region-list insert: no rb-tree rebalance storm

  if (config_.on_request) {
    const Errno err = back_region(*ctx, region, prot, result.cost);
    if (err != Errno::kOk) {
      ctx->vmas.remove(region);
      result.err = err;
      return result;
    }
  }
  ctx->mmap_cursor = region.end + kLargePageSize; // guard gap keeps VMAs unmerged
  result.addr = va;
  return result;
}

SyscallResult HpmmapModule::munmap(Pid pid, Addr addr, std::uint64_t len) {
  ++stats_.syscalls_interposed;
  SyscallResult result;
  result.cost = costs_.syscall_entry;
  Cycles probe = 0;
  ProcessContext* ctx = context_for(pid, &probe);
  result.cost += probe;
  if (ctx == nullptr) {
    result.err = Errno::kNoEnt;
    return result;
  }
  if (!is_aligned(addr, kLargePageSize)) {
    result.err = Errno::kInval;
    return result;
  }
  const Range region{addr, addr + align_up(len, kLargePageSize)};
  result.cost += unback_region(*ctx, region) + 350;
  ctx->vmas.remove(region);
  return result;
}

SyscallResult HpmmapModule::brk(Pid pid, Addr new_break) {
  ++stats_.syscalls_interposed;
  SyscallResult result;
  result.cost = costs_.syscall_entry;
  Cycles probe = 0;
  ProcessContext* ctx = context_for(pid, &probe);
  result.cost += probe;
  if (ctx == nullptr) {
    result.err = Errno::kNoEnt;
    return result;
  }
  if (new_break == 0) { // query, like sbrk(0)
    result.addr = ctx->heap_break;
    return result;
  }
  if (new_break < ctx->heap_base) {
    result.err = Errno::kInval;
    return result;
  }
  const Addr old_top = align_up(ctx->heap_break, kLargePageSize);
  const Addr new_top = align_up(new_break, kLargePageSize);
  if (new_top > old_top) {
    const Range grow{old_top, new_top};
    mm::Vma vma;
    vma.range = grow;
    vma.prot = kProtRW;
    vma.kind = mm::VmaKind::kHeap;
    const Errno ins = ctx->vmas.insert(vma);
    HPMMAP_ASSERT(ins == Errno::kOk, "heap growth collided in HPMMAP window");
    if (config_.on_request) {
      const Errno err = back_region(*ctx, grow, kProtRW, result.cost);
      if (err != Errno::kOk) {
        ctx->vmas.remove(grow);
        result.err = err;
        return result;
      }
    }
  } else if (new_top < old_top) {
    const Range shrink{new_top, old_top};
    result.cost += unback_region(*ctx, shrink);
    ctx->vmas.remove(shrink);
  }
  ctx->heap_break = new_break;
  result.addr = new_break;
  return result;
}

SyscallResult HpmmapModule::mprotect(Pid pid, Addr addr, std::uint64_t len, Prot prot) {
  ++stats_.syscalls_interposed;
  SyscallResult result;
  result.cost = costs_.syscall_entry;
  Cycles probe = 0;
  ProcessContext* ctx = context_for(pid, &probe);
  result.cost += probe;
  if (ctx == nullptr) {
    result.err = Errno::kNoEnt;
    return result;
  }
  const Range region{align_down(addr, kLargePageSize), align_up(addr + len, kLargePageSize)};
  const Errno err = ctx->vmas.protect(region, prot);
  if (err != Errno::kOk) {
    result.err = err;
    return result;
  }
  // Update installed leaves.
  mm::AddressSpace& as = *ctx->as;
  for (Addr va = region.begin; va < region.end;) {
    const auto t = as.page_table().walk(va);
    if (t.has_value()) {
      as.page_table().protect(align_down(va, bytes(t->size)), t->size, prot);
      result.cost += costs_.hpmmap_pte_install;
      va += bytes(t->size);
    } else {
      va += kLargePageSize;
    }
  }
  result.cost += costs_.tlb_flush_full;
  return result;
}

mm::FaultResult HpmmapModule::fault(Pid pid, Addr vaddr, Cycles now, std::int32_t core) {
  const auto emit = [&](mm::FaultResult r) {
    if (trace::on(trace::Category::kFault)) {
      trace::complete(trace::Category::kFault, "fault", now, r.cost, pid, core,
                      {trace::Arg::str("kind", mm::name(r.kind).data()),
                       trace::Arg::str("page", name(r.used).data()),
                       trace::Arg::u64("lock_wait", r.lock_wait),
                       trace::Arg::str("manager", "hpmmap")});
      trace::metrics().histogram("fault.cycles.hpmmap").add(static_cast<double>(r.cost));
      ++trace::metrics().counter("fault.count");
    }
    return r;
  };
  mm::FaultResult result;
  Cycles probe = 0;
  ProcessContext* ctx = context_for(pid, &probe);
  result.cost = costs_.fault_entry + probe;
  if (ctx == nullptr) {
    result.err = Errno::kFault;
    result.kind = mm::FaultKind::kInvalid;
    return emit(result);
  }
  const mm::Vma* vma = ctx->vmas.find(vaddr);
  if (vma == nullptr) {
    result.err = Errno::kFault;
    result.kind = mm::FaultKind::kInvalid;
    return emit(result);
  }
  if (const auto t = ctx->as->page_table().walk(vaddr); t.has_value()) {
    // On-request backing means this is a spurious fault (TLB refill
    // race); it must never happen for correctness-visible reasons.
    ++stats_.spurious_faults;
    result.kind = mm::FaultKind::kLarge;
    result.used = t->size;
    result.cost += costs_.hpmmap_pte_install;
    return emit(result);
  }
  HPMMAP_ASSERT(!config_.on_request,
                "on-request HPMMAP region had an unbacked valid page — invariant broken");
  // Demand-paging ablation: back exactly one large chunk.
  const Addr base = align_down(vaddr, kLargePageSize);
  const Range chunk{base, base + kLargePageSize};
  const Errno err = back_region(*ctx, chunk, vma->prot, result.cost);
  if (err != Errno::kOk) {
    result.err = Errno::kNoMem;
    result.kind = mm::FaultKind::kInvalid;
    return emit(result);
  }
  ++stats_.demand_faults;
  result.kind = mm::FaultKind::kLarge;
  result.used = PageSize::k2M;
  return emit(result);
}

} // namespace hpmmap::core
