// The Kitten-style block allocator HPMMAP imposes over offlined memory
// (§III-A: "HPMMAP again borrows from Kitten by using Kitten's buddy
// allocator to manage offlined memory").
//
// Structurally it is a buddy allocator like the Linux zone allocator,
// but with the LWK policy differences that matter:
//   - the max order spans whole offlined blocks (>= 128 MiB), so large
//     pages can *always* be carved without compaction;
//   - no watermarks, no reclaim, no page cache: allocation either
//     succeeds in O(log) or fails immediately;
//   - per-zone instances mirror the offlined split across NUMA zones.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "linux_mm/buddy_allocator.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::core {

struct KittenStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t failed = 0;
};

class KittenAllocator {
 public:
  /// Adopt a set of offlined physical ranges for `zone_count` zones;
  /// `ranges_per_zone[z]` are the hot-removed ranges of zone z.
  explicit KittenAllocator(std::vector<std::vector<Range>> ranges_per_zone);

  /// Allocate a naturally-aligned block of exactly `bytes`
  /// (power-of-two multiple of 4K; 2M and 1G are the callers' sizes).
  [[nodiscard]] std::optional<Addr> alloc(ZoneId zone, std::uint64_t bytes);

  void free(ZoneId zone, Addr addr, std::uint64_t bytes);

  [[nodiscard]] std::uint64_t free_bytes(ZoneId zone) const;
  [[nodiscard]] std::uint64_t total_bytes(ZoneId zone) const;
  [[nodiscard]] std::uint32_t zone_count() const noexcept {
    return static_cast<std::uint32_t>(zones_.size());
  }
  [[nodiscard]] const KittenStats& stats() const noexcept { return stats_; }

  /// True if every byte ever allocated has been freed (module unload
  /// sanity check).
  [[nodiscard]] bool all_free() const;

  /// True if the 4K frame at `addr` sits inside a free block of the
  /// zone's heaps (the invariant auditor asks this about mapped frames).
  [[nodiscard]] bool frame_is_free(ZoneId zone, Addr addr) const;

  /// Every underlying buddy passes its own consistency check.
  [[nodiscard]] bool check_consistency() const;

  /// Visit each underlying buddy allocator as (zone, buddy).
  template <typename Fn>
  void for_each_buddy(Fn&& fn) const {
    for (std::size_t z = 0; z < zones_.size(); ++z) {
      for (const mm::BuddyAllocator& buddy : zones_[z].buddies) {
        fn(static_cast<ZoneId>(z), buddy);
      }
    }
  }

 private:
  friend struct hpmmap::snapshot::Access;

  struct ZoneHeap {
    std::vector<mm::BuddyAllocator> buddies; // one per offlined range
  };
  std::vector<ZoneHeap> zones_;
  KittenStats stats_;
};

} // namespace hpmmap::core
