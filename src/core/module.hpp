// The HPMMAP kernel module (§III).
//
// Lifecycle mirrors the real module: at load it hot-removes a configured
// amount of memory per NUMA zone from Linux and adopts it with a
// Kitten-style allocator; a user-level launch tool registers PIDs; every
// interposed address-space syscall (mmap, munmap, brk, mprotect — the
// set the paper names) checks the PID hash and, on a hit, is served from
// HPMMAP's own state:
//
//   - on-request allocation: virtual regions are backed *immediately*,
//     so valid accesses never fault (§III-A);
//   - large pages (2M default, 1G where enabled) are the fundamental
//     allocation unit;
//   - mappings are installed directly in the process page table, inside
//     a region of the 48-bit space Linux never uses (§III-B), tracked by
//     HPMMAP's own VMA list, fully independent of Linux's.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/kitten_allocator.hpp"
#include "core/pid_registry.hpp"
#include "hw/bandwidth.hpp"
#include "hw/phys_mem.hpp"
#include "linux_mm/address_space.hpp"
#include "linux_mm/cost_model.hpp"
#include "linux_mm/fault.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::core {

struct ModuleConfig {
  /// Memory hot-removed from each zone at module load (§IV: 12 of 16 GB
  /// on the single-node testbed, split evenly across two zones).
  std::uint64_t offline_bytes_per_zone = 6 * GiB;
  /// Fundamental allocation unit (§III-A: 2M default, up to 1G).
  bool use_1g_pages = false;
  /// On-request backing (the paper's policy). False switches HPMMAP to
  /// demand paging over large pages — the A2 ablation.
  bool on_request = true;
};

struct ModuleStats {
  std::uint64_t syscalls_interposed = 0;
  std::uint64_t registered = 0;
  std::uint64_t bytes_mapped = 0;
  std::uint64_t map_2m = 0;
  std::uint64_t map_1g = 0;
  std::uint64_t demand_faults = 0; // only in the A2 ablation
  std::uint64_t spurious_faults = 0;
};

struct SyscallResult {
  Errno err = Errno::kOk;
  Addr addr = 0;
  Cycles cost = 0;
};

class HpmmapModule {
 public:
  /// Module load: offline memory from every zone. The caller must
  /// (re)build its Linux MemorySystem afterwards, as the kernel would
  /// rebuild zone freelists after hot-remove.
  HpmmapModule(hw::PhysicalMemory& phys, hw::BandwidthModel& bw, const mm::CostModel& costs,
               Rng rng, ModuleConfig config);

  /// Module unload: every process must be unregistered; returns the
  /// offlined memory to Linux ownership.
  ~HpmmapModule();

  HpmmapModule(const HpmmapModule&) = delete;
  HpmmapModule& operator=(const HpmmapModule&) = delete;

  // --- registration (the user-level launch tool, Figure 6) --------------
  Errno register_process(Pid pid, mm::AddressSpace& as);
  Errno unregister_process(Pid pid);
  [[nodiscard]] bool handles(Pid pid) const { return registry_.find(pid).has_value(); }

  // --- interposed syscalls -----------------------------------------------
  SyscallResult mmap(Pid pid, std::uint64_t len, Prot prot);
  SyscallResult munmap(Pid pid, Addr addr, std::uint64_t len);
  /// brk with an absolute program break, like the real syscall.
  SyscallResult brk(Pid pid, Addr new_break);
  SyscallResult mprotect(Pid pid, Addr addr, std::uint64_t len, Prot prot);

  /// Fault on an HPMMAP-managed address. With on-request allocation this
  /// only happens for invalid accesses; in the demand-paging ablation it
  /// backs one large chunk. `core` only tags trace events.
  mm::FaultResult fault(Pid pid, Addr vaddr, Cycles now, std::int32_t core = -1);

  /// Does `vaddr` fall in the HPMMAP-managed window?
  [[nodiscard]] static bool in_window(Addr vaddr) noexcept {
    return vaddr >= mm::AddressLayout::kHpmmapBase && vaddr < mm::AddressLayout::kHpmmapTop;
  }

  [[nodiscard]] const ModuleStats& stats() const noexcept { return stats_; }
  /// HPMMAP's own region list for a registered pid (nullptr if the pid
  /// is not registered or its context is dead). The invariant auditor
  /// checks window-resident page-table leaves against these regions.
  [[nodiscard]] const mm::VmaTree* regions_for(Pid pid) const;
  [[nodiscard]] const KittenAllocator& allocator() const noexcept { return kitten_; }
  /// Mutable allocator access for diagnostics/benchmarks (the real
  /// module exposes its pool state through debugfs similarly).
  [[nodiscard]] KittenAllocator& allocator_mut() noexcept { return kitten_; }
  [[nodiscard]] const ModuleConfig& config() const noexcept { return config_; }

 private:
  friend struct hpmmap::snapshot::Access;

  struct ProcessContext {
    mm::AddressSpace* as = nullptr;
    mm::VmaTree vmas;      // HPMMAP's own region list, independent of Linux's
    Addr mmap_cursor = 0;  // bump pointer inside the window
    Addr heap_base = 0;
    Addr heap_break = 0;
    bool live = false;
  };

  [[nodiscard]] ProcessContext* context_for(Pid pid, Cycles* probe_cost);
  /// Back [vaddr, vaddr+len) with large pages; returns cycles or ENOMEM
  /// (with full rollback).
  Errno back_region(ProcessContext& ctx, Range range, Prot prot, Cycles& cost);
  /// Remove backing and mappings for [vaddr, vaddr+len).
  Cycles unback_region(ProcessContext& ctx, Range range);
  void release_process(ProcessContext& ctx);

  hw::PhysicalMemory& phys_;
  hw::BandwidthModel& bw_;
  mm::CostModel costs_;
  Rng rng_;
  ModuleConfig config_;
  std::vector<std::vector<Range>> offlined_;
  KittenAllocator kitten_;
  PidRegistry registry_;
  std::vector<ProcessContext> contexts_;
  ModuleStats stats_;
};

} // namespace hpmmap::core
