// Gigabit Ethernet interconnect model for the scaling study (§IV-C).
//
// The testbed's 1 GbE is slow enough that the paper limits ranks to 4
// per node "to reduce the effects that limited network bandwidth would
// have". Collectives are modelled with standard log-tree cost formulas;
// per-iteration jitter reflects switch contention. The absolute numbers
// matter less than the property that cross-node synchronization makes
// iteration time the max over all ranks — that is what amplifies
// single-node memory-management noise at scale.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "workloads/mpi_app.hpp"

namespace hpmmap::cluster {

struct EthernetSpec {
  double latency_seconds = 55e-6;            // per message, kernel TCP stack
  double bandwidth_bytes_per_sec = 112e6;    // ~90% of line rate
  double jitter_cv = 0.12;                   // switch/stack variance
};

/// Communication model for a job spanning `node_count` nodes:
/// allreduce = 2 ceil(log2 nodes) rounds of (latency + msg/bw) plus the
/// intra-node shared-memory part; halo exchange pays bytes/bw once.
[[nodiscard]] workloads::CommModel ethernet_comm(const EthernetSpec& spec, double clock_hz,
                                                 std::uint32_t node_count, Rng rng);

/// Time to ship `bytes` point-to-point (used by tests/benches).
[[nodiscard]] double p2p_seconds(const EthernetSpec& spec, std::uint64_t bytes);

} // namespace hpmmap::cluster
