// Gigabit Ethernet interconnect model for the scaling study (§IV-C).
//
// The testbed's 1 GbE is slow enough that the paper limits ranks to 4
// per node "to reduce the effects that limited network bandwidth would
// have". Collectives are modelled with standard log-tree cost formulas;
// per-iteration jitter reflects switch contention. The absolute numbers
// matter less than the property that cross-node synchronization makes
// iteration time the max over all ranks — that is what amplifies
// single-node memory-management noise at scale.
//
// Beyond the paper's 8 nodes the single-switch assumption stops being
// honest, so the model is topology-aware:
//   - flat:     one switch; past its radix, uplink contention stretches
//               every round linearly (N <= radix reproduces the paper's
//               2*ceil(log2 N) formula exactly).
//   - tree:     binomial doubling over disjoint switch ports — the
//               textbook allreduce; requires a power-of-two node count.
//   - fat-tree: multi-stage Clos with full bisection bandwidth; rounds
//               pay extra per-stage hop latency but never contend.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "common/rng.hpp"
#include "workloads/mpi_app.hpp"

namespace hpmmap::cluster {

struct EthernetSpec {
  double latency_seconds = 55e-6;            // per message, kernel TCP stack
  double bandwidth_bytes_per_sec = 112e6;    // ~90% of line rate
  double jitter_cv = 0.12;                   // switch/stack variance
};

enum class Topology : std::uint8_t { kFlat, kTree, kFatTree };

[[nodiscard]] constexpr std::string_view name(Topology t) noexcept {
  switch (t) {
    case Topology::kFlat:    return "flat";
    case Topology::kTree:    return "tree";
    case Topology::kFatTree: return "fat-tree";
  }
  return "?";
}

/// Parse "flat" / "tree" / "fat-tree"; nullopt on anything else.
[[nodiscard]] std::optional<Topology> topology_from_name(std::string_view s) noexcept;

/// Ports on the modelled edge switch: a flat network keeps the paper's
/// contention-free cost up to this node count, then degrades linearly.
inline constexpr std::uint32_t kSwitchRadix = 32;

/// Tree collectives need node counts that fill the doubling schedule.
[[nodiscard]] constexpr bool topology_supports(Topology t, std::uint32_t nodes) noexcept {
  return t != Topology::kTree || (nodes & (nodes - 1)) == 0;
}

/// Time to ship `bytes` point-to-point (used by tests/benches).
[[nodiscard]] double p2p_seconds(const EthernetSpec& spec, std::uint64_t bytes);

/// One allreduce over `node_count` nodes with an 8 KiB payload per
/// round, under `topology` — the deterministic core the comm model
/// jitters. Exposed for tests and the scaling analysis.
[[nodiscard]] double allreduce_seconds(const EthernetSpec& spec, Topology topology,
                                       std::uint32_t node_count);

/// The smallest cross-node interaction delay the model can produce: the
/// wire latency of one message. This is the PDES lookahead — no event
/// on node A can affect node B sooner than this.
[[nodiscard]] Cycles min_cross_node_latency(const EthernetSpec& spec, double clock_hz);

/// Communication model for a job spanning `node_count` nodes:
/// allreduce rounds per the topology (see allreduce_seconds) plus the
/// intra-node shared-memory part; halo exchange pays bytes/bw once.
/// kFlat at <= kSwitchRadix nodes is byte-identical to the pre-topology
/// model (the paper's 2*ceil(log2 N) constant).
[[nodiscard]] workloads::CommModel ethernet_comm(const EthernetSpec& spec, double clock_hz,
                                                 std::uint32_t node_count, Rng rng,
                                                 Topology topology = Topology::kFlat);

} // namespace hpmmap::cluster
