#include "cluster/network.hpp"

#include <bit>
#include <cmath>

#include "common/assert.hpp"
#include "trace/trace.hpp"
#include "verify/fault_inject.hpp"

namespace hpmmap::cluster {

std::optional<Topology> topology_from_name(std::string_view s) noexcept {
  if (s == "flat") {
    return Topology::kFlat;
  }
  if (s == "tree") {
    return Topology::kTree;
  }
  if (s == "fat-tree") {
    return Topology::kFatTree;
  }
  return std::nullopt;
}

double p2p_seconds(const EthernetSpec& spec, std::uint64_t bytes) {
  return spec.latency_seconds + static_cast<double>(bytes) / spec.bandwidth_bytes_per_sec;
}

double allreduce_seconds(const EthernetSpec& spec, Topology topology,
                         std::uint32_t node_count) {
  if (node_count <= 1) {
    return 0.0;
  }
  HPMMAP_ASSERT(topology_supports(topology, node_count),
                "tree collectives need a power-of-two node count");
  const auto rounds = static_cast<double>(std::bit_width(node_count - 1)); // ceil(log2)
  const double hop = p2p_seconds(spec, 8 * 1024); // small payload: latency dominated
  switch (topology) {
    case Topology::kFlat: {
      // Reduce + broadcast up/down a log tree through one switch. Past
      // the switch radix every round queues behind N/radix flows on the
      // uplink — the linear stretch that motivates real topologies.
      const double contention =
          node_count <= kSwitchRadix
              ? 1.0
              : static_cast<double>(node_count) / static_cast<double>(kSwitchRadix);
      return 2.0 * rounds * hop * contention;
    }
    case Topology::kTree:
      // Binomial doubling: every round pairs disjoint port sets, so the
      // paper's contention-free cost holds at any power-of-two size.
      return 2.0 * rounds * hop;
    case Topology::kFatTree: {
      // Clos with full bisection bandwidth: no queueing, but each extra
      // stage (radix-16 aggregation) adds per-hop latency to each round.
      const auto levels = static_cast<double>(
          1 + std::bit_width((node_count - 1) / 16)); // ceil(log16)
      const double staged_hop = spec.latency_seconds * (1.0 + 0.1 * (levels - 1.0)) +
                                (8.0 * 1024.0) / spec.bandwidth_bytes_per_sec;
      return 2.0 * rounds * staged_hop;
    }
  }
  return 0.0;
}

Cycles min_cross_node_latency(const EthernetSpec& spec, double clock_hz) {
  const auto cycles = static_cast<Cycles>(spec.latency_seconds * clock_hz);
  return cycles > 0 ? cycles : 1;
}

workloads::CommModel ethernet_comm(const EthernetSpec& spec, double clock_hz,
                                   std::uint32_t node_count, Rng rng,
                                   Topology topology) {
  auto rng_ptr = std::make_shared<Rng>(rng);
  return [spec, clock_hz, node_count, rng_ptr, topology](
             const workloads::AppProfile& app, std::uint64_t ranks) -> Cycles {
    double secs = 0.0;
    if (node_count > 1) {
      secs += static_cast<double>(app.allreduces_per_iter) *
              allreduce_seconds(spec, topology, node_count);
      // Halo exchange with off-node neighbours.
      secs += p2p_seconds(spec, app.halo_bytes_per_iter);
    }
    // Intra-node shared-memory share.
    secs += static_cast<double>(app.allreduces_per_iter) *
            (3e-6 + 0.4e-6 * static_cast<double>(ranks));
    double jittered = rng_ptr->lognormal_from_moments(secs, spec.jitter_cv * secs);
    // Injected delay spike: one collective stretched by the plan's
    // magnitude (a congested switch / a retransmit storm). The job just
    // runs longer — BSP absorbs the straggler at the next barrier.
    if (verify::injector().should_fail(verify::InjectPoint::kNetDelay)) {
      jittered *= verify::injector().magnitude(verify::InjectPoint::kNetDelay);
    }
    const auto cycles = static_cast<Cycles>(jittered * clock_hz);
    if (trace::on(trace::Category::kNet)) {
      trace::instant(trace::Category::kNet, "net.collective", 0, -1,
                     {trace::Arg::u64("cycles", cycles), trace::Arg::u64("ranks", ranks),
                      trace::Arg::u64("nodes", node_count),
                      trace::Arg::u64("halo_bytes", app.halo_bytes_per_iter)});
    }
    return cycles;
  };
}

} // namespace hpmmap::cluster
