#include "cluster/network.hpp"

#include <bit>
#include <cmath>

#include "trace/trace.hpp"
#include "verify/fault_inject.hpp"

namespace hpmmap::cluster {

double p2p_seconds(const EthernetSpec& spec, std::uint64_t bytes) {
  return spec.latency_seconds + static_cast<double>(bytes) / spec.bandwidth_bytes_per_sec;
}

workloads::CommModel ethernet_comm(const EthernetSpec& spec, double clock_hz,
                                   std::uint32_t node_count, Rng rng) {
  auto rng_ptr = std::make_shared<Rng>(rng);
  return [spec, clock_hz, node_count, rng_ptr](const workloads::AppProfile& app,
                                               std::uint64_t ranks) -> Cycles {
    double secs = 0.0;
    if (node_count > 1) {
      const auto rounds = static_cast<double>(std::bit_width(node_count - 1)); // ceil(log2)
      // Small allreduce payloads: latency dominated.
      secs += static_cast<double>(app.allreduces_per_iter) * 2.0 * rounds *
              p2p_seconds(spec, 8 * 1024);
      // Halo exchange with off-node neighbours.
      secs += p2p_seconds(spec, app.halo_bytes_per_iter);
    }
    // Intra-node shared-memory share.
    secs += static_cast<double>(app.allreduces_per_iter) *
            (3e-6 + 0.4e-6 * static_cast<double>(ranks));
    double jittered = rng_ptr->lognormal_from_moments(secs, spec.jitter_cv * secs);
    // Injected delay spike: one collective stretched by the plan's
    // magnitude (a congested switch / a retransmit storm). The job just
    // runs longer — BSP absorbs the straggler at the next barrier.
    if (verify::injector().should_fail(verify::InjectPoint::kNetDelay)) {
      jittered *= verify::injector().magnitude(verify::InjectPoint::kNetDelay);
    }
    const auto cycles = static_cast<Cycles>(jittered * clock_hz);
    if (trace::on(trace::Category::kNet)) {
      trace::instant(trace::Category::kNet, "net.collective", 0, -1,
                     {trace::Arg::u64("cycles", cycles), trace::Arg::u64("ranks", ranks),
                      trace::Arg::u64("nodes", node_count),
                      trace::Arg::u64("halo_bytes", app.halo_bytes_per_iter)});
    }
    return cycles;
  };
}

} // namespace hpmmap::cluster
