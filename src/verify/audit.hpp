// Cross-structure invariant audit over the live mm state.
//
// The simulation argues from structures that are real (buddy freelists,
// four-level page tables, VMA trees, per-zone pools), so their joint
// consistency is checkable — and checking it is how we notice the
// simulation drifting from kernel semantics (the imitation-model failure
// Virtuoso warns about). The auditor walks a Node and asserts:
//
//   buddy      free blocks in-range, aligned, non-overlapping, no
//              duplicates; every mergeable buddy pair coalesced;
//              accounted free_bytes equals the sum over the freelists;
//              freelist and mem_map agree in both directions (every
//              free block heads a kBuddyFree mem_map entry, every
//              kBuddyFree entry is on the freelist bitmap)
//              (same checks for the Kitten heaps over offlined memory);
//   cache      the intrusive LRU chain is sound: walking the links
//              visits exactly block_count() blocks whose byte total is
//              cached_bytes, every visited head carries a cache state
//              in the mem_map, and the mem_map holds no cache-state
//              head the LRU does not reach;
//   vma        every per-process VMA tree (Linux and HPMMAP's own
//              region lists) passes its structural invariants;
//   pte        every mapped leaf falls wholly inside exactly one VMA of
//              its owning process with matching protections; leaves in
//              the HPMMAP window belong to registered pids and sit on
//              offlined frames, all other leaves on online frames;
//              swapped-out pages are never simultaneously mapped; the
//              stored MappingMix (what the TLB model consumes — the
//              analogue of "no TLB entry points at an unmapped frame"
//              for an analytic TLB) equals a recount over the leaves;
//   frames     one global sweep: mapped frames, buddy free blocks, page
//              cache blocks, hugetlb pool pages, per-CPU pcp frames and
//              Kitten free blocks are pairwise disjoint — no frame is
//              leaked into two owners or double-mapped across
//              processes, and every frame lies inside physical RAM;
//   pcp        when the node runs an SmpDomain, every frame parked on a
//              per-CPU page-frame cache is an in-range order-0 head
//              marked kPcpCache in its zone's mem_map, owned by exactly
//              one CPU's list (a frame on two lists is the double-free
//              shape pcp corruption takes), and conservation holds per
//              zone: the mem_map's kPcpCache heads are exactly the
//              frames the lists carry;
//   hugetlb    pool pages are conserved: free + mapped-as-hugetlb
//              equals the boot reservation; each zone's intrusive pool
//              stack walks to exactly free_pages() entries, all marked
//              kHugetlbPool in the mem_map.
//
// The auditor only reads; it reports violations instead of asserting so
// tests can drive it over deliberately corrupted state.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hpmmap::mm {
class BuddyAllocator;
class PageCache;
}
namespace hpmmap::os {
class Node;
}

namespace hpmmap::verify {

struct Violation {
  std::string check;  // dotted id, e.g. "buddy.uncoalesced"
  std::string detail; // precise diagnostic (addresses, zone, pid)
};

struct AuditReport {
  /// Retained-violation cap: corrupt state can trip thousands of checks;
  /// keep the first few precisely and count the rest.
  static constexpr std::size_t kMaxViolations = 64;

  std::uint64_t checks = 0;
  std::vector<Violation> violations;
  std::uint64_t dropped = 0;

  void add(std::string check, std::string detail);
  [[nodiscard]] std::uint64_t violation_count() const noexcept {
    return violations.size() + dropped;
  }
  [[nodiscard]] bool ok() const noexcept { return violations.empty() && dropped == 0; }
  /// Human-readable multi-line report ("audit: N checks, M violations" +
  /// one line per retained violation).
  [[nodiscard]] std::string summary() const;
};

/// Audit one buddy allocator in isolation (no Node needed): blocks
/// in-range, aligned, non-overlapping, no duplicates, no uncoalesced
/// buddy pairs, free_bytes consistent, mem_map ownership coherent in
/// both directions. `label` prefixes diagnostics.
void audit_buddy(const mm::BuddyAllocator& buddy, std::string_view label, AuditReport& report);

/// Audit one page cache in isolation: LRU linkage, byte accounting and
/// mem_map cache-state agreement (see the `cache` block above).
void audit_page_cache(const mm::BuddyAllocator& buddy, const mm::PageCache& cache,
                      std::string_view label, AuditReport& report);

class MmAuditor {
 public:
  explicit MmAuditor(os::Node& node) noexcept : node_(node) {}

  /// Run every check; also bumps the audit.runs / audit.checks /
  /// audit.violations metrics and emits a kVerify trace event.
  [[nodiscard]] AuditReport run();

 private:
  void audit_buddies(AuditReport& report);
  void audit_caches(AuditReport& report);
  void audit_vmas(AuditReport& report);
  void audit_page_tables(AuditReport& report);
  void audit_frames(AuditReport& report);
  void audit_hugetlb(AuditReport& report);
  void audit_pcp(AuditReport& report);

  os::Node& node_;
};

} // namespace hpmmap::verify
