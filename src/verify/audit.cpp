#include "verify/audit.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "core/module.hpp"
#include "hw/phys_mem.hpp"
#include "linux_mm/address_space.hpp"
#include "linux_mm/buddy_allocator.hpp"
#include "linux_mm/hugetlbfs.hpp"
#include "linux_mm/memory_system.hpp"
#include "linux_mm/smp.hpp"
#include "linux_mm/vma.hpp"
#include "os/node.hpp"
#include "os/process.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace hpmmap::verify {
namespace {

std::string hex(Addr a) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(a));
  return std::string{buf};
}

std::string num(std::uint64_t v) { return std::to_string(v); }

} // namespace

void AuditReport::add(std::string check, std::string detail) {
  if (violations.size() >= kMaxViolations) {
    ++dropped;
    return;
  }
  violations.push_back(Violation{std::move(check), std::move(detail)});
}

std::string AuditReport::summary() const {
  std::string out = "audit: " + num(checks) + " checks, " + num(violation_count()) +
                    " violations";
  for (const Violation& v : violations) {
    out += "\n  [" + v.check + "] " + v.detail;
  }
  if (dropped > 0) {
    out += "\n  (+" + num(dropped) + " more)";
  }
  return out;
}

void audit_buddy(const mm::BuddyAllocator& buddy, std::string_view label, AuditReport& report) {
  const std::string who{label};
  const Range range = buddy.range();
  const hw::MemMap& map = buddy.mem_map();
  struct Block {
    Addr addr;
    unsigned order;
  };
  std::vector<Block> blocks;
  std::uint64_t sum = 0;
  buddy.for_each_free_block([&](Addr a, unsigned o) {
    const std::uint64_t size = mm::BuddyAllocator::order_bytes(o);
    ++report.checks;
    if (!range.contains(a) || a + size > range.end) {
      report.add("buddy.out_of_range",
                 who + ": free block " + hex(a) + " order " + num(o) + " outside " +
                     hex(range.begin) + "-" + hex(range.end));
    }
    ++report.checks;
    if (!is_aligned(a - range.begin, size)) {
      report.add("buddy.misaligned",
                 who + ": free block " + hex(a) + " misaligned for order " + num(o));
    }
    // The mem_map must mark this frame as the head of a free block of
    // exactly this order (freelist -> mem_map direction).
    if (range.contains(a)) {
      const std::uint32_t frame = map.index_of(a);
      ++report.checks;
      if (map.state(frame) != hw::FrameState::kBuddyFree || map.order(frame) != o) {
        report.add("buddy.memmap_state",
                   who + ": free block " + hex(a) + " order " + num(o) +
                       " has mem_map state " +
                       num(static_cast<std::uint64_t>(map.state(frame))) + " order " +
                       num(map.order(frame)));
      }
    }
    // Uncoalesced pair: this block's buddy is free at the same order, so
    // free() should have merged them. Report each pair once (a < buddy).
    const Addr buddy_addr = range.begin + ((a - range.begin) ^ size);
    ++report.checks;
    if (o < buddy.max_order() && a < buddy_addr && buddy_addr + size <= range.end &&
        buddy.free_block_containing(buddy_addr) ==
            std::make_optional(std::make_pair(buddy_addr, o))) {
      report.add("buddy.uncoalesced",
                 who + ": blocks " + hex(a) + " and " + hex(buddy_addr) + " at order " +
                     num(o) + " are mergeable buddies");
    }
    blocks.push_back(Block{a, o});
    sum += size;
  });
  ++report.checks;
  if (sum != buddy.free_bytes()) {
    report.add("buddy.accounting",
               who + ": free list sum " + num(sum) + " != accounted free_bytes " +
                   num(buddy.free_bytes()));
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const Block& x, const Block& y) { return x.addr < y.addr; });
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    const Block& prev = blocks[i - 1];
    const Block& cur = blocks[i];
    ++report.checks;
    if (prev.addr + mm::BuddyAllocator::order_bytes(prev.order) > cur.addr) {
      report.add("buddy.overlap",
                 who + ": free block " + hex(prev.addr) + " order " + num(prev.order) +
                     " overlaps " + hex(cur.addr) + " order " + num(cur.order));
    }
  }
  // mem_map -> freelist direction: every kBuddyFree head must be an
  // actual freelist entry (an orphan means a stale or forged mem_map
  // annotation).
  map.for_each_head([&](Addr a, hw::FrameState st, unsigned o) {
    if (st != hw::FrameState::kBuddyFree) {
      return;
    }
    ++report.checks;
    if (!buddy.is_free_block(a, o)) {
      report.add("buddy.memmap_orphan",
                 who + ": mem_map marks " + hex(a) + " order " + num(o) +
                     " buddy-free but the freelist bitmap disagrees");
    }
  });
}

void audit_page_cache(const mm::BuddyAllocator& buddy, const mm::PageCache& cache,
                      std::string_view label, AuditReport& report) {
  const std::string who{label};
  const hw::MemMap& map = buddy.mem_map();
  std::uint64_t walked = 0;
  std::uint64_t bytes = 0;
  cache.for_each_lru([&](Addr a, unsigned o, bool dirty) {
    (void)dirty;
    ++walked;
    bytes += mm::BuddyAllocator::order_bytes(o);
    const hw::FrameState st = map.state(map.index_of(a));
    ++report.checks;
    if (st != hw::FrameState::kCacheClean && st != hw::FrameState::kCacheDirty) {
      report.add("cache.memmap_state",
                 who + ": LRU block " + hex(a) + " order " + num(o) +
                     " has non-cache mem_map state " +
                     num(static_cast<std::uint64_t>(st)));
    }
  });
  ++report.checks;
  if (walked != cache.block_count()) {
    report.add("cache.lru_broken",
               who + ": LRU walk reaches " + num(walked) + " blocks, cache counts " +
                   num(cache.block_count()));
  }
  ++report.checks;
  if (bytes != cache.cached_bytes()) {
    report.add("cache.accounting",
               who + ": LRU byte total " + num(bytes) + " != accounted cached_bytes " +
                   num(cache.cached_bytes()));
  }
  // mem_map -> LRU direction: the meta sweep must find exactly the
  // cache's blocks (an extra cache-state head is unreachable by
  // reclaim; a missing one hides a block from compaction).
  std::uint64_t heads = 0;
  cache.for_each_block([&](Addr a, unsigned o, bool dirty) {
    (void)a;
    (void)o;
    (void)dirty;
    ++heads;
  });
  ++report.checks;
  if (heads != cache.block_count()) {
    report.add("cache.memmap_orphan",
               who + ": mem_map holds " + num(heads) + " cache heads, cache counts " +
                   num(cache.block_count()));
  }
}

AuditReport MmAuditor::run() {
  AuditReport report;
  audit_buddies(report);
  audit_caches(report);
  audit_vmas(report);
  audit_page_tables(report);
  audit_frames(report);
  audit_hugetlb(report);
  audit_pcp(report);
  ++trace::metrics().counter("audit.runs");
  trace::metrics().counter("audit.checks") += report.checks;
  trace::metrics().counter("audit.violations") += report.violation_count();
  if (trace::on(trace::Category::kVerify)) {
    trace::instant(trace::Category::kVerify, "audit.run", 0, -1,
                   {trace::Arg::u64("checks", report.checks),
                    trace::Arg::u64("violations", report.violation_count())});
  }
  return report;
}

void MmAuditor::audit_buddies(AuditReport& report) {
  mm::MemorySystem& memory = node_.memory();
  for (ZoneId z = 0; z < memory.zone_count(); ++z) {
    audit_buddy(memory.buddy(z), "zone " + num(z), report);
  }
  if (const core::HpmmapModule* module = node_.hpmmap_module(); module != nullptr) {
    module->allocator().for_each_buddy([&](ZoneId z, const mm::BuddyAllocator& buddy) {
      audit_buddy(buddy, "kitten zone " + num(z) + " @" + hex(buddy.range().begin), report);
    });
  }
}

void MmAuditor::audit_caches(AuditReport& report) {
  mm::MemorySystem& memory = node_.memory();
  for (ZoneId z = 0; z < memory.zone_count(); ++z) {
    audit_page_cache(memory.buddy(z), memory.cache(z), "zone " + num(z), report);
  }
}

void MmAuditor::audit_vmas(AuditReport& report) {
  const core::HpmmapModule* module = node_.hpmmap_module();
  node_.for_each_process([&](const os::Process& proc) {
    if (!proc.alive()) {
      return;
    }
    ++report.checks;
    if (!proc.address_space().vmas().check_consistency()) {
      report.add("vma.inconsistent", "pid " + num(proc.pid()) + ": Linux VMA tree");
    }
    if (module != nullptr) {
      if (const mm::VmaTree* regions = module->regions_for(proc.pid()); regions != nullptr) {
        ++report.checks;
        if (!regions->check_consistency()) {
          report.add("vma.inconsistent", "pid " + num(proc.pid()) + ": HPMMAP region list");
        }
      }
    }
  });
}

void MmAuditor::audit_page_tables(AuditReport& report) {
  const hw::PhysicalMemory& phys = node_.phys();
  const core::HpmmapModule* module = node_.hpmmap_module();
  node_.for_each_process([&](const os::Process& proc) {
    if (!proc.alive()) {
      return;
    }
    const Pid pid = proc.pid();
    const mm::AddressSpace& as = proc.address_space();
    hw::MappingMix recount;
    as.page_table().for_each_leaf([&](Addr va, mm::Translation t) {
      const std::uint64_t size = bytes(t.size);
      switch (t.size) {
        case PageSize::k4K: recount.bytes_4k += size; break;
        case PageSize::k2M: recount.bytes_2m += size; break;
        case PageSize::k1G: recount.bytes_1g += size; break;
      }
      // Which manager's region list should contain this leaf?
      const bool window = core::HpmmapModule::in_window(va);
      const mm::VmaTree* tree = nullptr;
      if (window) {
        tree = module != nullptr ? module->regions_for(pid) : nullptr;
        ++report.checks;
        if (tree == nullptr) {
          report.add("pte.window_unregistered",
                     "pid " + num(pid) + ": leaf " + hex(va) +
                         " in HPMMAP window but pid not registered");
          return;
        }
      } else {
        tree = &as.vmas();
      }
      const mm::Vma* vma = tree->find(va);
      ++report.checks;
      if (vma == nullptr || !vma->range.contains(Range{va, va + size})) {
        report.add("pte.outside_vma",
                   "pid " + num(pid) + ": leaf " + hex(va) + " size " + num(size) +
                       (vma == nullptr ? " inside no VMA"
                                       : " straddles VMA " + hex(vma->range.begin) + "-" +
                                             hex(vma->range.end)));
        return;
      }
      ++report.checks;
      if (t.prot != vma->prot) {
        report.add("pte.prot_mismatch",
                   "pid " + num(pid) + ": leaf " + hex(va) + " prot " +
                       num(static_cast<std::uint32_t>(t.prot)) + " != VMA prot " +
                       num(static_cast<std::uint32_t>(vma->prot)));
      }
      // Isolation (§III-A): window mappings live on offlined frames,
      // Linux mappings on online frames — the managers never cross.
      ++report.checks;
      if (phys.valid(t.phys) && phys.is_offline(t.phys) != window) {
        report.add("pte.isolation",
                   "pid " + num(pid) + ": leaf " + hex(va) + " -> frame " + hex(t.phys) +
                       (window ? " (window leaf on online frame)"
                               : " (Linux leaf on offlined frame)"));
      }
    });
    const hw::MappingMix stored = as.mapping_mix();
    ++report.checks;
    if (stored.bytes_4k != recount.bytes_4k || stored.bytes_2m != recount.bytes_2m ||
        stored.bytes_1g != recount.bytes_1g) {
      report.add("pte.mix_drift",
                 "pid " + num(pid) + ": stored mix 4k/2m/1g " + num(stored.bytes_4k) + "/" +
                     num(stored.bytes_2m) + "/" + num(stored.bytes_1g) + " != recount " +
                     num(recount.bytes_4k) + "/" + num(recount.bytes_2m) + "/" +
                     num(recount.bytes_1g));
    }
    // A page sits in swap or in the page table, never both (the TLB/mix
    // consuming only mapped leaves depends on this).
    for (Addr page : as.swapped_set()) {
      ++report.checks;
      if (as.page_table().walk(page).has_value()) {
        report.add("pte.swapped_mapped",
                   "pid " + num(pid) + ": page " + hex(page) + " both swapped-out and mapped");
      }
    }
  });
}

void MmAuditor::audit_frames(AuditReport& report) {
  struct Interval {
    Addr begin;
    Addr end;
    const char* owner;
    Pid pid; // 0 for non-process owners
  };
  std::vector<Interval> frames;
  const hw::PhysicalMemory& phys = node_.phys();
  node_.for_each_process([&](const os::Process& proc) {
    if (!proc.alive()) {
      return;
    }
    proc.address_space().page_table().for_each_leaf([&](Addr va, mm::Translation t) {
      (void)va;
      frames.push_back(Interval{t.phys, t.phys + bytes(t.size), "mapped", proc.pid()});
    });
  });
  mm::MemorySystem& memory = node_.memory();
  for (ZoneId z = 0; z < memory.zone_count(); ++z) {
    memory.buddy(z).for_each_free_block([&](Addr a, unsigned o) {
      frames.push_back(Interval{a, a + mm::BuddyAllocator::order_bytes(o), "buddy_free", 0});
    });
    memory.cache(z).for_each_block([&](Addr a, unsigned o, bool dirty) {
      (void)dirty;
      frames.push_back(Interval{a, a + mm::BuddyAllocator::order_bytes(o), "page_cache", 0});
    });
  }
  if (const mm::HugetlbPool* pool = node_.hugetlb(); pool != nullptr) {
    for (ZoneId z = 0; z < memory.zone_count(); ++z) {
      pool->for_each_pool_page(z, [&](Addr a) {
        frames.push_back(Interval{a, a + kLargePageSize, "hugetlb_pool", 0});
      });
    }
  }
  if (const mm::SmpDomain* smp = node_.smp(); smp != nullptr) {
    smp->for_each_pcp_frame([&](std::uint32_t cpu, ZoneId z, Addr a) {
      (void)cpu;
      (void)z;
      frames.push_back(Interval{a, a + kSmallPageSize, "pcp_cache", 0});
    });
  }
  if (const core::HpmmapModule* module = node_.hpmmap_module(); module != nullptr) {
    ++report.checks;
    if (!module->allocator().check_consistency()) {
      report.add("kitten.inconsistent", "a Kitten heap failed its structural check");
    }
    module->allocator().for_each_buddy([&](ZoneId z, const mm::BuddyAllocator& buddy) {
      (void)z;
      buddy.for_each_free_block([&](Addr a, unsigned o) {
        frames.push_back(Interval{a, a + mm::BuddyAllocator::order_bytes(o), "kitten_free", 0});
      });
    });
  }
  for (const Interval& iv : frames) {
    ++report.checks;
    if (!phys.valid(iv.begin) || !phys.valid(iv.end - 1)) {
      report.add("frame.invalid",
                 std::string{iv.owner} + " frames " + hex(iv.begin) + "-" + hex(iv.end) +
                     " outside physical RAM");
    }
  }
  // Every frame has at most one owner: a frame simultaneously mapped and
  // free (a leak into the freelists), mapped by two processes (a
  // double-map), or cached and pooled is exactly one overlap here.
  std::sort(frames.begin(), frames.end(), [](const Interval& x, const Interval& y) {
    return x.begin != y.begin ? x.begin < y.begin : x.end < y.end;
  });
  Addr watermark = 0;
  const Interval* holder = nullptr;
  for (const Interval& iv : frames) {
    ++report.checks;
    if (holder != nullptr && iv.begin < watermark) {
      report.add("frame.double_owner",
                 "frames " + hex(iv.begin) + "-" + hex(std::min(iv.end, watermark)) +
                     " owned by both " + holder->owner +
                     (holder->pid != 0 ? " (pid " + num(holder->pid) + ")" : "") + " and " +
                     iv.owner + (iv.pid != 0 ? " (pid " + num(iv.pid) + ")" : ""));
    }
    if (iv.end > watermark) {
      watermark = iv.end;
      holder = &iv;
    }
  }
}

void MmAuditor::audit_hugetlb(AuditReport& report) {
  const mm::HugetlbPool* pool = node_.hugetlb();
  if (pool == nullptr) {
    return;
  }
  mm::MemorySystem& memory = node_.memory();
  std::uint64_t total = 0;
  std::uint64_t free = 0;
  for (ZoneId z = 0; z < memory.zone_count(); ++z) {
    total += pool->total_pages(z);
    free += pool->free_pages(z);
    // The intrusive stack must walk to exactly the counted pages, each
    // marked kHugetlbPool in its zone's mem_map.
    const hw::MemMap& map = memory.buddy(z).mem_map();
    std::uint64_t walked = 0;
    pool->for_each_pool_page(z, [&](Addr a) {
      ++walked;
      const std::uint32_t frame = map.index_of(a);
      ++report.checks;
      if (map.state(frame) != hw::FrameState::kHugetlbPool ||
          map.order(frame) != mm::kLargePageOrder) {
        report.add("hugetlb.memmap_state",
                   "zone " + num(z) + ": pooled page " + hex(a) +
                       " has mem_map state " +
                       num(static_cast<std::uint64_t>(map.state(frame))) + " order " +
                       num(map.order(frame)));
      }
    });
    ++report.checks;
    if (walked != pool->free_pages(z)) {
      report.add("hugetlb.stack",
                 "zone " + num(z) + ": pool stack walks to " + num(walked) +
                     " pages, counter says " + num(pool->free_pages(z)));
    }
  }
  // Pages leave the pool only by being mapped into a hugetlb VMA; count
  // those leaves and demand conservation (global, because alloc_page
  // spills across zones under pressure).
  std::uint64_t used = 0;
  node_.for_each_process([&](const os::Process& proc) {
    if (!proc.alive()) {
      return;
    }
    const mm::AddressSpace& as = proc.address_space();
    as.page_table().for_each_leaf([&](Addr va, mm::Translation t) {
      if (t.size != PageSize::k2M) {
        return;
      }
      const mm::Vma* vma = as.vmas().find(va);
      if (vma != nullptr && vma->kind == mm::VmaKind::kHugetlb) {
        ++used;
      }
    });
  });
  ++report.checks;
  if (free + used != total) {
    report.add("hugetlb.conservation",
               "pool free " + num(free) + " + mapped " + num(used) + " != reserved " +
                   num(total));
  }
}

void MmAuditor::audit_pcp(AuditReport& report) {
  const mm::SmpDomain* smp = node_.smp();
  if (smp == nullptr) {
    return;
  }
  mm::MemorySystem& memory = node_.memory();
  // list -> mem_map direction: every cached frame is an in-range order-0
  // kPcpCache head, and no frame sits on two CPUs' lists (a frame popped
  // by two cores at once is the double-alloc waiting to happen).
  std::map<Addr, std::uint32_t> owner; // frame -> first owning cpu
  std::vector<std::uint64_t> listed(memory.zone_count(), 0);
  smp->for_each_pcp_frame([&](std::uint32_t cpu, ZoneId z, Addr a) {
    ++report.checks;
    if (z >= memory.zone_count()) {
      report.add("pcp.out_of_range",
                 "cpu " + num(cpu) + ": cached frame " + hex(a) + " names zone " + num(z) +
                     " beyond the machine's " + num(memory.zone_count()));
      return;
    }
    ++listed[z];
    const mm::BuddyAllocator& buddy = memory.buddy(z);
    ++report.checks;
    if (!buddy.range().contains(a)) {
      report.add("pcp.out_of_range",
                 "cpu " + num(cpu) + ": cached frame " + hex(a) + " outside zone " + num(z));
    } else {
      const hw::MemMap& map = buddy.mem_map();
      const std::uint32_t frame = map.index_of(a);
      ++report.checks;
      if (map.state(frame) != hw::FrameState::kPcpCache || map.order(frame) != 0) {
        report.add("pcp.memmap_state",
                   "cpu " + num(cpu) + " zone " + num(z) + ": cached frame " + hex(a) +
                       " has mem_map state " +
                       num(static_cast<std::uint64_t>(map.state(frame))) + " order " +
                       num(map.order(frame)));
      }
    }
    ++report.checks;
    const auto [it, fresh] = owner.emplace(a, cpu);
    if (!fresh) {
      report.add("pcp.duplicate",
                 "zone " + num(z) + ": frame " + hex(a) + " cached by both cpu " +
                     num(it->second) + " and cpu " + num(cpu));
    }
  });
  // mem_map -> list direction plus per-zone conservation: the kPcpCache
  // heads the metadata sweep finds are exactly the frames the lists
  // carry (an orphan mark hides a frame from every allocator forever; a
  // count drift means a mark was lost or a frame double-listed).
  for (ZoneId z = 0; z < memory.zone_count(); ++z) {
    const hw::MemMap& map = memory.buddy(z).mem_map();
    std::uint64_t heads = 0;
    map.for_each_head([&](Addr a, hw::FrameState st, unsigned o) {
      if (st != hw::FrameState::kPcpCache) {
        return;
      }
      (void)o;
      ++heads;
      ++report.checks;
      if (owner.find(a) == owner.end()) {
        report.add("pcp.memmap_orphan",
                   "zone " + num(z) + ": mem_map marks " + hex(a) +
                       " pcp-cached but no CPU list holds it");
      }
    });
    ++report.checks;
    if (heads != listed[z]) {
      report.add("pcp.conservation",
                 "zone " + num(z) + ": mem_map holds " + num(heads) +
                     " pcp heads, the CPU lists carry " + num(listed[z]) + " frames");
    }
  }
}

} // namespace hpmmap::verify
