// Deterministic fault injection for the memory-management stack.
//
// The paper's overheads live on the *error paths* — reclaim entered
// because a buddy allocation failed, THP falling back to 4K, khugepaged
// aborting a merge, a hugetlb pool running dry — yet ordinary runs only
// exercise those paths when organic pressure happens to produce them.
// The injector forces them on demand: named injection points throughout
// linux_mm and cluster ask `injector().should_fail(point)` at the top of
// the operation (before any state mutation, so an audit may run at the
// exact fire instant), and a per-point plan decides deterministically —
// by call index or by seeded coin — whether this call fails.
//
// Design mirrors the kernel's CONFIG_FAULT_INJECTION + the trace
// registry's per-run-context idiom: one injector per thread, disarmed
// by default (boot paths that HPMMAP_ASSERT on success never see it);
// the harness arms it after node construction and disarms at collect,
// and concurrent batch runs on worker threads never share a plan.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>

#include "common/rng.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::verify {

/// Every named injection point in the tree. The registration site is
/// listed with each point; all sites fail *before* mutating any state.
enum class InjectPoint : std::uint8_t {
  kBuddyAlloc,    // MemorySystem::alloc_pages: fast path refused -> slow path/ENOMEM
  kDirectReclaim, // MemorySystem::alloc_pages: direct reclaim yields zero frames
  kThpHugeAlloc,  // ThpService::try_fault_huge: order-9 alloc fails -> 4K fallback
  kThpMergeAbort, // ThpService::perform_merge: khugepaged abandons the candidate
  kHugetlbAlloc,  // HugetlbPool::alloc_page: pool behaves as exhausted
  kNetDelay,      // cluster::ethernet_comm: collective hit by a delay spike
};

inline constexpr std::size_t kInjectPointCount = 6;

[[nodiscard]] constexpr std::string_view name(InjectPoint p) noexcept {
  switch (p) {
    case InjectPoint::kBuddyAlloc:    return "buddy_alloc";
    case InjectPoint::kDirectReclaim: return "direct_reclaim";
    case InjectPoint::kThpHugeAlloc:  return "thp_huge_alloc";
    case InjectPoint::kThpMergeAbort: return "thp_merge_abort";
    case InjectPoint::kHugetlbAlloc:  return "hugetlb_alloc";
    case InjectPoint::kNetDelay:      return "net_delay";
  }
  return "?";
}

[[nodiscard]] std::optional<InjectPoint> point_from_name(std::string_view s) noexcept;

/// Schedule for one injection point. Two mutually exclusive modes:
///  - deterministic (`first` > 0): fire at the `first`-th call since
///    arming (1-based), then every `period` calls, up to `count` fires;
///  - probabilistic (`first` == 0, `probability` > 0): every call fires
///    with `probability`, drawn from the injector's own seeded stream
///    (never perturbing the simulation's randomness), up to `count`.
struct PointPlan {
  std::uint64_t first = 0;
  std::uint64_t period = 0; // 0 = fire once at `first`, no repeats
  std::uint64_t count = 1;  // max fires
  double probability = 0.0;
  /// kNetDelay only: the delay multiplier applied when the point fires.
  double magnitude = 8.0;

  [[nodiscard]] bool enabled() const noexcept { return first > 0 || probability > 0.0; }
};

struct InjectionPlan {
  std::array<PointPlan, kInjectPointCount> points{};

  [[nodiscard]] PointPlan& operator[](InjectPoint p) noexcept {
    return points[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const PointPlan& operator[](InjectPoint p) const noexcept {
    return points[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] bool any() const noexcept {
    for (const PointPlan& p : points) {
      if (p.enabled()) {
        return true;
      }
    }
    return false;
  }
};

/// Per-point outcome counters, snapshot into RunResult by the harness.
struct PointStats {
  std::uint64_t calls = 0; // should_fail() invocations while armed
  std::uint64_t fired = 0; // injected failures
};

class FaultInjector {
 public:
  /// Arm with a plan; resets all counters. `seed` feeds the injector's
  /// private RNG stream for probabilistic points.
  void arm(const InjectionPlan& plan, std::uint64_t seed);
  /// Disarm; counters and the plan stay readable until the next arm().
  void disarm() noexcept { armed_ = false; }
  [[nodiscard]] bool armed() const noexcept { return armed_; }

  /// The injection point: counts the call and returns true when the plan
  /// schedules a failure here. The disarmed fast path is one branch.
  [[nodiscard]] bool should_fail(InjectPoint p) {
    if (!armed_) {
      return false;
    }
    return roll(p);
  }

  /// Plan magnitude for `p` (the kNetDelay multiplier).
  [[nodiscard]] double magnitude(InjectPoint p) const noexcept {
    return plan_[p].magnitude;
  }

  [[nodiscard]] const PointStats& stats(InjectPoint p) const noexcept {
    return stats_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const std::array<PointStats, kInjectPointCount>& all_stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::uint64_t total_fired() const noexcept;

  /// Debug hook: invoked on every fire, after counting, with consistent
  /// mm state (all points fail pre-mutation). The harness's
  /// audit-on-injection mode runs the auditor from here.
  void set_on_fire(std::function<void(InjectPoint)> cb) { on_fire_ = std::move(cb); }

 private:
  friend struct hpmmap::snapshot::Access;

  [[nodiscard]] bool roll(InjectPoint p);

  InjectionPlan plan_{};
  std::array<PointStats, kInjectPointCount> stats_{};
  Rng rng_{0};
  bool armed_ = false;
  std::function<void(InjectPoint)> on_fire_;
};

/// This thread's injector (the metrics()/recorder() per-run-context
/// idiom): call sites in linux_mm/cluster need no plumbing, boot-time
/// construction runs against a disarmed instance, and batch-runner
/// worker threads each arm their own run's injector independently.
[[nodiscard]] FaultInjector& injector() noexcept;

/// Redirect this thread's injector() to an external instance (per-node
/// cluster contexts; see trace::set_recorder_override). nullptr restores
/// the thread's own injector.
void set_injector_override(FaultInjector* f) noexcept;

/// Parse a --inject plan: comma-separated entries, each a point name
/// with modifiers in any order:
///   @N  first fire at the Nth call (default 1 if no ~)
///   +P  repeat every P calls after `first` (unlimited unless xC given)
///   xC  at most C fires
///   ~F  probabilistic mode with probability F per call
///   *M  magnitude (net_delay multiplier)
/// e.g. "thp_huge_alloc@100+50x20,net_delay~0.02*16". nullopt on error.
[[nodiscard]] std::optional<InjectionPlan> parse_inject_spec(std::string_view spec);

} // namespace hpmmap::verify
