#include "verify/fault_inject.hpp"

#include <cstdlib>
#include <string>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace hpmmap::verify {
namespace {

/// Stable metric names ("inject.<point>.fired"); must be literals for
/// the registry's lifetime rules.
const char* fired_counter_name(InjectPoint p) noexcept {
  switch (p) {
    case InjectPoint::kBuddyAlloc:    return "inject.buddy_alloc.fired";
    case InjectPoint::kDirectReclaim: return "inject.direct_reclaim.fired";
    case InjectPoint::kThpHugeAlloc:  return "inject.thp_huge_alloc.fired";
    case InjectPoint::kThpMergeAbort: return "inject.thp_merge_abort.fired";
    case InjectPoint::kHugetlbAlloc:  return "inject.hugetlb_alloc.fired";
    case InjectPoint::kNetDelay:      return "inject.net_delay.fired";
  }
  return "inject.unknown.fired";
}

} // namespace

std::optional<InjectPoint> point_from_name(std::string_view s) noexcept {
  for (std::size_t i = 0; i < kInjectPointCount; ++i) {
    const auto p = static_cast<InjectPoint>(i);
    if (s == name(p)) {
      return p;
    }
  }
  return std::nullopt;
}

void FaultInjector::arm(const InjectionPlan& plan, std::uint64_t seed) {
  plan_ = plan;
  stats_ = {};
  rng_ = Rng(seed).fork("fault_inject");
  armed_ = true;
}

std::uint64_t FaultInjector::total_fired() const noexcept {
  std::uint64_t total = 0;
  for (const PointStats& s : stats_) {
    total += s.fired;
  }
  return total;
}

bool FaultInjector::roll(InjectPoint p) {
  const PointPlan& plan = plan_[p];
  PointStats& st = stats_[static_cast<std::size_t>(p)];
  ++st.calls;
  if (!plan.enabled() || st.fired >= plan.count) {
    return false;
  }
  bool hit = false;
  if (plan.first > 0) {
    if (st.calls == plan.first) {
      hit = true;
    } else if (st.calls > plan.first && plan.period > 0) {
      hit = (st.calls - plan.first) % plan.period == 0;
    }
  } else {
    hit = rng_.chance(plan.probability);
  }
  if (!hit) {
    return false;
  }
  ++st.fired;
  ++trace::metrics().counter(fired_counter_name(p));
  if (trace::on(trace::Category::kVerify)) {
    trace::instant(trace::Category::kVerify, "inject.fire", 0, -1,
                   {trace::Arg::str("point", name(p).data()),
                    trace::Arg::u64("call", st.calls),
                    trace::Arg::u64("fired", st.fired)});
  }
  if (on_fire_) {
    on_fire_(p);
  }
  return true;
}

namespace {
thread_local FaultInjector* g_injector_override = nullptr;
} // namespace

FaultInjector& injector() noexcept {
  static thread_local FaultInjector instance;
  return g_injector_override != nullptr ? *g_injector_override : instance;
}

void set_injector_override(FaultInjector* f) noexcept { g_injector_override = f; }

std::optional<InjectionPlan> parse_inject_spec(std::string_view spec) {
  InjectionPlan plan;
  if (spec.empty()) {
    return std::nullopt; // an explicitly empty plan is a mistake, not a no-op
  }
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view entry = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{} : spec.substr(comma + 1);
    if (entry.empty()) {
      continue;
    }
    const std::size_t mod = entry.find_first_of("@+x~*");
    const std::string_view point_name = entry.substr(0, mod);
    const auto point = point_from_name(point_name);
    if (!point.has_value()) {
      return std::nullopt;
    }
    PointPlan& pp = plan[*point];
    pp.first = 1; // deterministic single-shot unless modifiers say otherwise
    bool explicit_count = false;
    std::string_view rest = mod == std::string_view::npos ? std::string_view{} : entry.substr(mod);
    while (!rest.empty()) {
      const char op = rest.front();
      rest.remove_prefix(1);
      const std::size_t next = rest.find_first_of("@+x~*");
      const std::string value{rest.substr(0, next)};
      rest = next == std::string_view::npos ? std::string_view{} : rest.substr(next);
      if (value.empty()) {
        return std::nullopt;
      }
      char* end = nullptr;
      switch (op) {
        case '@':
          pp.first = std::strtoull(value.c_str(), &end, 10);
          if (*end != '\0' || pp.first == 0) {
            return std::nullopt;
          }
          break;
        case '+':
          pp.period = std::strtoull(value.c_str(), &end, 10);
          if (*end != '\0' || pp.period == 0) {
            return std::nullopt;
          }
          break;
        case 'x':
          pp.count = std::strtoull(value.c_str(), &end, 10);
          if (*end != '\0' || pp.count == 0) {
            return std::nullopt;
          }
          explicit_count = true;
          break;
        case '~':
          pp.probability = std::strtod(value.c_str(), &end);
          if (*end != '\0' || pp.probability <= 0.0 || pp.probability > 1.0) {
            return std::nullopt;
          }
          pp.first = 0; // probabilistic mode
          break;
        case '*':
          pp.magnitude = std::strtod(value.c_str(), &end);
          if (*end != '\0' || pp.magnitude <= 0.0) {
            return std::nullopt;
          }
          break;
        default:
          return std::nullopt;
      }
    }
    // Repeating or probabilistic entries default to unlimited fires.
    if (!explicit_count && (pp.period > 0 || pp.probability > 0.0)) {
      pp.count = ~0ull;
    }
  }
  return plan;
}

} // namespace hpmmap::verify
