// Monotonic bump arena with size-class recycling for short-lived event
// payloads.
//
// The event engine schedules millions of callbacks per run; paying a
// malloc/free round trip per event is exactly the kind of generality tax
// the paper's thesis says to strip from hot paths. The arena bump-
// allocates large chunks once and hands out small blocks from them;
// freed blocks go onto per-size-class free lists and are reused by the
// next allocation, so steady-state scheduling performs no heap calls at
// all. Memory is only returned to the OS at destruction (or an explicit
// release() when no blocks are live) — the flight-recorder ring's
// "reserve once, reuse forever" discipline applied to event storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/assert.hpp"

namespace hpmmap::sim {

class BumpArena {
 public:
  /// Largest block served from the arena; bigger requests fall back to
  /// operator new (they are rare by construction — an event callback
  /// that large is a design smell).
  static constexpr std::size_t kMaxBlock = 1024;
  static constexpr std::size_t kMinBlock = 32;
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{64} * 1024;

  explicit BumpArena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < kMaxBlock ? kMaxBlock : chunk_bytes) {}

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  ~BumpArena() = default;

  [[nodiscard]] void* alloc(std::size_t size) {
    if (size > kMaxBlock) {
      ++oversize_allocs_;
      return ::operator new(size);
    }
    const std::size_t cls = size_class(size);
    ++live_blocks_;
    if (free_lists_[cls] != nullptr) {
      FreeBlock* block = free_lists_[cls];
      free_lists_[cls] = block->next;
      return block;
    }
    return bump(class_bytes(cls));
  }

  /// Return a block obtained from alloc(size) with the same size.
  void free(void* p, std::size_t size) noexcept {
    if (p == nullptr) {
      return;
    }
    if (size > kMaxBlock) {
      ::operator delete(p);
      return;
    }
    HPMMAP_ASSERT(live_blocks_ > 0, "arena free without a live block");
    --live_blocks_;
    const std::size_t cls = size_class(size);
    auto* block = static_cast<FreeBlock*>(p);
    block->next = free_lists_[cls];
    free_lists_[cls] = block;
  }

  /// Drop every chunk. Only legal when no blocks are outstanding — the
  /// engine calls this between runs, at quiescence.
  void release() noexcept {
    HPMMAP_ASSERT(live_blocks_ == 0, "arena release with live blocks");
    chunks_.clear();
    for (FreeBlock*& head : free_lists_) {
      head = nullptr;
    }
    bump_ptr_ = nullptr;
    bump_end_ = nullptr;
  }

  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    return chunks_.size() * chunk_bytes_;
  }
  [[nodiscard]] std::size_t live_blocks() const noexcept { return live_blocks_; }
  [[nodiscard]] std::uint64_t oversize_allocs() const noexcept { return oversize_allocs_; }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };
  static constexpr std::size_t kClassCount = 6; // 32, 64, 128, 256, 512, 1024

  [[nodiscard]] static constexpr std::size_t size_class(std::size_t size) noexcept {
    std::size_t cls = 0;
    std::size_t bytes = kMinBlock;
    while (bytes < size) {
      bytes <<= 1;
      ++cls;
    }
    return cls;
  }
  [[nodiscard]] static constexpr std::size_t class_bytes(std::size_t cls) noexcept {
    return kMinBlock << cls;
  }

  [[nodiscard]] void* bump(std::size_t bytes) {
    if (bump_ptr_ == nullptr ||
        static_cast<std::size_t>(bump_end_ - bump_ptr_) < bytes) {
      chunks_.push_back(std::make_unique<unsigned char[]>(chunk_bytes_));
      bump_ptr_ = chunks_.back().get();
      bump_end_ = bump_ptr_ + chunk_bytes_;
      // Chunks come from operator new[], aligned for max_align_t; block
      // sizes are powers of two >= 32, so every bump stays aligned.
    }
    unsigned char* out = bump_ptr_;
    bump_ptr_ += bytes;
    return out;
  }

  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  unsigned char* bump_ptr_ = nullptr;
  unsigned char* bump_end_ = nullptr;
  FreeBlock* free_lists_[kClassCount] = {};
  std::size_t live_blocks_ = 0;
  std::uint64_t oversize_allocs_ = 0;
};

} // namespace hpmmap::sim
