#include "sim/engine.hpp"

#include <utility>

#include "common/assert.hpp"
#include "trace/trace.hpp"

namespace hpmmap::sim {

Engine::Engine() {
  trace::set_clock(
      [](const void* ctx) { return static_cast<const Engine*>(ctx)->now(); }, this);
}

Engine::~Engine() { trace::clear_clock(this); }

EventId Engine::schedule(Cycles delay, Callback fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Engine::schedule_at(Cycles when, Callback fn) {
  HPMMAP_ASSERT(when >= now_, "cannot schedule an event in the past");
  HPMMAP_ASSERT(fn != nullptr, "event callback must be callable");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq, std::move(fn)});
  return EventId{seq};
}

void Engine::cancel(EventId id) {
  if (id.valid()) {
    cancelled_.insert(id.seq);
  }
}

bool Engine::fire_next(Cycles limit) {
  while (!heap_.empty()) {
    if (heap_.top().when > limit) {
      return false;
    }
    // priority_queue::top() is const; the callback is moved out via the
    // pop-copy below. Entries are small (one std::function).
    Entry e = heap_.top();
    heap_.pop();
    if (auto it = cancelled_.find(e.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = e.when;
    ++fired_;
    e.fn();
    return true;
  }
  return false;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && fire_next(~Cycles{0})) {
  }
}

void Engine::run_until(Cycles until) {
  stopped_ = false;
  while (!stopped_ && fire_next(until)) {
  }
  if (!stopped_ && now_ < until) {
    now_ = until;
  }
}

} // namespace hpmmap::sim
