#include "sim/engine.hpp"

#include <utility>

#include "common/assert.hpp"
#include "trace/trace.hpp"

namespace hpmmap::sim {

Engine::Engine() {
  trace::set_clock(
      [](const void* ctx) { return static_cast<const Engine*>(ctx)->now(); }, this);
}

Engine::~Engine() { trace::clear_clock(this); }

EventId Engine::schedule_entry(Cycles when, EventCallback fn, bool daemon) {
  HPMMAP_ASSERT(when >= now_, "cannot schedule an event in the past");
  HPMMAP_ASSERT(fn != nullptr, "event callback must be callable");
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.daemon = daemon;
  heap_.push_back(Entry{when, next_seq_++, slot, s.gen});
  sift_up(heap_.size() - 1);
  ++live_;
  if (daemon) {
    ++daemon_live_;
  }
  return EventId{slot + 1, s.gen};
}

void Engine::cancel(EventId id) {
  if (!id.valid()) {
    return;
  }
  const std::uint32_t slot = id.slot - 1;
  if (slot >= slots_.size() || slots_[slot].gen != id.gen) {
    return; // already fired, already cancelled, or never armed here
  }
  // Invalidate by bumping the generation; the heap entry becomes stale
  // and is discarded (and its slot recycled) when it reaches the top.
  // Drop the callback now so captured resources (and any arena block)
  // are released at cancel time, not when the stale entry drains.
  ++slots_[slot].gen;
  slots_[slot].fn = EventCallback{};
  if (slots_[slot].daemon) {
    slots_[slot].daemon = false;
    HPMMAP_ASSERT(daemon_live_ > 0, "cancel with no live daemons");
    --daemon_live_;
  }
  ++cancelled_;
  HPMMAP_ASSERT(live_ > 0, "cancel with no live events");
  --live_;
}

// Hole-percolation sifts: the displaced entry is held in a register-
// friendly 24-byte temporary and written exactly once, instead of three
// writes per level with std::swap.
void Engine::sift_up(std::size_t i) noexcept {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(e, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Engine::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  while (true) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) {
      break;
    }
    std::size_t best = left;
    const std::size_t right = left + 1;
    if (right < n && before(heap_[right], heap_[left])) {
      best = right;
    }
    if (!before(heap_[best], e)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Engine::pop_min() noexcept {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    sift_down(0);
  }
}

bool Engine::fire_next(Cycles limit) {
  while (!heap_.empty()) {
    // A queue holding only daemon events is drained: background
    // observers (sampler ticks) must not keep the simulation alive or
    // advance time past the last piece of real work.
    if (live_ == daemon_live_) {
      return false;
    }
    const Entry e = heap_.front();
    if (e.when > limit) {
      return false;
    }
    pop_min();
    Slot& s = slots_[e.slot];
    if (s.gen != e.gen) {
      // Cancelled while queued: the generation moved on. The slot leaves
      // the heap exactly once per armed event, so recycling it here
      // cannot double-free.
      free_slots_.push_back(e.slot);
      continue;
    }
    ++s.gen;
    const bool was_daemon = s.daemon;
    if (s.daemon) {
      s.daemon = false;
      HPMMAP_ASSERT(daemon_live_ > 0, "firing with no live daemons");
      --daemon_live_;
    }
#ifndef NDEBUG
    // Ordering audit (debug builds): delivery across any boundary —
    // including events posted onto this engine by the parallel
    // coordinator — must keep non-daemon (when, seq) strictly
    // increasing, or the PDES byte-identity contract is already broken.
    if (!was_daemon) {
      HPMMAP_ASSERT(e.when > audit_last_when_ ||
                        (e.when == audit_last_when_ && e.seq > audit_last_seq_),
                    "event delivery violated monotonic (when, seq) order");
      audit_last_when_ = e.when;
      audit_last_seq_ = e.seq;
    }
#else
    (void)was_daemon;
#endif
    // Move the callback out before invoking: the callback may schedule,
    // growing slots_ and invalidating s — and may immediately reuse this
    // very slot, which is released below.
    EventCallback fn = std::move(s.fn);
    free_slots_.push_back(e.slot);
    HPMMAP_ASSERT(live_ > 0, "firing with no live events");
    --live_;
    // max(): a daemon entry can sit below now_ if a run_until() window
    // ended while only daemons remained; time never moves backward.
    now_ = e.when > now_ ? e.when : now_;
    ++fired_;
    fn();
    return true;
  }
  return false;
}

Cycles Engine::next_event_time() const noexcept {
  Cycles min = kNoEvent;
  for (const Entry& e : heap_) {
    const Slot& s = slots_[e.slot];
    if (s.gen == e.gen && !s.daemon && e.when < min) {
      min = e.when;
    }
  }
  return min;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && fire_next(~Cycles{0})) {
  }
}

void Engine::run_until(Cycles until) {
  stopped_ = false;
  while (!stopped_ && fire_next(until)) {
  }
  if (!stopped_ && now_ < until) {
    now_ = until;
  }
}

} // namespace hpmmap::sim
