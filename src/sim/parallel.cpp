#include "sim/parallel.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hpmmap::sim {

namespace {
constexpr std::size_t kController = ~std::size_t{0};
} // namespace

thread_local std::size_t ParallelCoordinator::t_current_group_ = kController;

ParallelCoordinator::ParallelCoordinator(unsigned workers)
    : workers_(workers == 0
                   ? std::max(1u, std::thread::hardware_concurrency())
                   : workers) {}

ParallelCoordinator::~ParallelCoordinator() {
  if (!pool_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : pool_) {
      t.join();
    }
  }
}

std::size_t ParallelCoordinator::add_group(Engine& engine, GroupHooks hooks) {
  Group g;
  g.engine = &engine;
  g.hooks = std::move(hooks);
  groups_.push_back(std::move(g));
  return groups_.size() - 1;
}

void ParallelCoordinator::post_message(std::size_t dst, Cycles when, EventCallback fn) {
  HPMMAP_ASSERT(dst < groups_.size(), "post to unknown group");
  Message m;
  m.when = when;
  m.dst = dst;
  m.fn = std::move(fn);
  if (t_current_group_ == kController) {
    // Between phases: single-threaded controller context.
    m.src = groups_.size();
    m.order = controller_posted_++;
    queued_.push_back(std::move(m));
  } else {
    Group& sender = groups_[t_current_group_];
    m.src = t_current_group_;
    m.order = sender.posted++;
    sender.outbox.push_back(std::move(m));
  }
}

void ParallelCoordinator::deliver_queued() {
  // Collect every pending message (controller queue + group outboxes)
  // and deliver in (when, sender, post-order) order: the destination
  // engine's own (when, seq) tie-break then reproduces the same firing
  // order no matter which thread produced the message or when.
  std::vector<Message> batch;
  batch.swap(queued_);
  for (Group& g : groups_) {
    std::move(g.outbox.begin(), g.outbox.end(), std::back_inserter(batch));
    g.outbox.clear();
  }
  if (batch.empty()) {
    return;
  }
  std::stable_sort(batch.begin(), batch.end(), [](const Message& a, const Message& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.src != b.src ? a.src < b.src : a.order < b.order;
  });
  for (Message& m : batch) {
    Engine& dst = *groups_[m.dst].engine;
    // Lookahead soundness: a conservative window (or rendezvous release)
    // must never produce a message in the destination's past.
    HPMMAP_ASSERT(m.when >= dst.now(),
                  "cross-engine message behind the destination clock");
    dst.schedule_at(m.when, std::move(m.fn));
  }
}

void ParallelCoordinator::for_each_group(const std::function<void(Group&)>& body) {
  const auto slice = [this, &body](std::size_t g) {
    Group& group = groups_[g];
    t_current_group_ = g;
    if (group.hooks.enter) {
      group.hooks.enter();
    }
    body(group);
    if (group.hooks.leave) {
      group.hooks.leave();
    }
    t_current_group_ = kController;
  };
  const std::size_t n = groups_.size();
  if (workers_ <= 1 || n <= 1) {
    for (std::size_t g = 0; g < n; ++g) {
      slice(g);
    }
    return;
  }
  if (pool_.empty()) {
    const unsigned spawned = static_cast<unsigned>(
        std::min<std::size_t>(workers_, n)) - 1; // controller participates
    pool_.reserve(spawned);
    for (unsigned w = 0; w < spawned; ++w) {
      pool_.emplace_back([this] { worker_loop(); });
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    phase_body_ = &body;
    phase_next_ = 0;
    phase_done_ = 0;
    ++phase_gen_;
  }
  start_cv_.notify_all();
  // The controller drains alongside the pool.
  while (true) {
    std::size_t g;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (phase_next_ >= n) {
        break;
      }
      g = phase_next_++;
    }
    slice(g);
    std::lock_guard<std::mutex> lock(mu_);
    ++phase_done_;
    if (phase_done_ == n) {
      done_cv_.notify_all();
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this, n] { return phase_done_ == n; });
  phase_body_ = nullptr;
}

void ParallelCoordinator::worker_loop() {
  std::uint64_t seen_gen = 0;
  while (true) {
    const std::function<void(Group&)>* body;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [this, seen_gen] {
        return shutdown_ || (phase_gen_ != seen_gen && phase_body_ != nullptr);
      });
      if (shutdown_) {
        return;
      }
      seen_gen = phase_gen_;
      body = phase_body_;
    }
    while (true) {
      std::size_t g;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (phase_gen_ != seen_gen || phase_next_ >= groups_.size()) {
          break;
        }
        g = phase_next_++;
      }
      Group& group = groups_[g];
      t_current_group_ = g;
      if (group.hooks.enter) {
        group.hooks.enter();
      }
      (*body)(group);
      if (group.hooks.leave) {
        group.hooks.leave();
      }
      t_current_group_ = kController;
      std::lock_guard<std::mutex> lock(mu_);
      ++phase_done_;
      if (phase_done_ == groups_.size()) {
        done_cv_.notify_all();
      }
    }
  }
}

void ParallelCoordinator::run_phase() {
  deliver_queued();
  for_each_group([](Group& g) { g.engine->run(); });
  deliver_queued();
}

void ParallelCoordinator::run_phase_until(Cycles until) {
  deliver_queued();
  for_each_group([until](Group& g) { g.engine->run_until(until); });
  deliver_queued();
}

void ParallelCoordinator::run_lookahead(Cycles lookahead, Cycles until) {
  HPMMAP_ASSERT(lookahead > 0, "conservative windows need positive lookahead");
  while (true) {
    deliver_queued();
    Cycles horizon = Engine::kNoEvent;
    for (Group& g : groups_) {
      horizon = std::min(horizon, g.engine->next_event_time());
    }
    if (horizon == Engine::kNoEvent || horizon > until) {
      break;
    }
    // Window end is inclusive: an event exactly at horizon + lookahead
    // is still safe to fire, because any message produced inside the
    // window carries when >= send time + lookahead >= horizon + lookahead
    // and is delivered at the barrier before the next window runs.
    const Cycles window_end =
        until - horizon > lookahead ? horizon + lookahead : until;
    for_each_group([window_end](Group& g) { g.engine->run_until(window_end); });
  }
  deliver_queued();
}

} // namespace hpmmap::sim
