// Parallel discrete-event simulation (PDES) coordinator.
//
// A cluster run gives every node its own Engine; the coordinator runs
// the engines on a worker pool and synchronizes them conservatively.
// Two synchronization shapes share the machinery:
//
//   - run_lookahead(): the classic conservative window loop. Horizon =
//     min next event time across all engines and queued messages; every
//     engine advances to horizon + lookahead, queued cross-engine
//     messages are delivered at the barrier, repeat. Sound as long as a
//     message sent during a window carries a timestamp at least
//     `lookahead` past the window start — which the cluster network
//     model guarantees, because no cross-node interaction is cheaper
//     than the wire's minimum latency.
//
//   - run_phase(): rendezvous mode, used by the cluster harness. A BSP
//     job's per-iteration barrier is the *only* cross-node coupling, so
//     between barriers the effective lookahead is infinite: each engine
//     runs freely until its local actors stop it (or it drains), the
//     controller resolves the barrier single-threaded, and the next
//     phase begins. The soundness condition — every cross-engine event
//     lands at or after the destination's clock — is asserted on every
//     delivery.
//
// Determinism: each group's engine, together with its run context
// (flight recorder, metrics, injector, trace clock — installed by the
// enter/leave hooks), is touched by exactly one thread at a time; the
// controller's inter-phase work is single-threaded; and cross-engine
// messages are delivered in (when, src-order, post-order) sorted order.
// The result is byte-identical for any worker count, including 1.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"

namespace hpmmap::sim {

class ParallelCoordinator {
 public:
  /// Installed around every execution slice of a group: `enter` binds
  /// the group's run context to the current thread (recorder, metrics,
  /// injector, trace clock, category mask), `leave` unbinds it.
  struct GroupHooks {
    std::function<void()> enter;
    std::function<void()> leave;
  };

  /// `workers` == 0 selects max(1, hardware_concurrency). One worker
  /// runs everything inline on the calling thread — the deterministic
  /// reference any other worker count must match byte-for-byte.
  explicit ParallelCoordinator(unsigned workers = 1);
  ~ParallelCoordinator();
  ParallelCoordinator(const ParallelCoordinator&) = delete;
  ParallelCoordinator& operator=(const ParallelCoordinator&) = delete;

  /// Register an engine (one per node/group). Call before the first
  /// run_*; returns the group id.
  std::size_t add_group(Engine& engine, GroupHooks hooks = {});

  [[nodiscard]] std::size_t group_count() const noexcept { return groups_.size(); }
  [[nodiscard]] unsigned workers() const noexcept { return workers_; }
  [[nodiscard]] Engine& engine(std::size_t g) { return *groups_[g].engine; }

  /// Cross-engine message: run `fn` on group `dst`'s engine at absolute
  /// time `when`. Callable from inside a running group (the message is
  /// buffered in the sender's outbox — no locks; a group runs on one
  /// thread at a time) or from the controller between phases. Delivery
  /// happens at the next synchronization point, sorted by
  /// (when, sender, post order); the coordinator asserts `when` has not
  /// fallen behind the destination's clock — the lookahead soundness
  /// condition.
  template <typename F>
  void post(std::size_t dst, Cycles when, F&& fn) {
    post_message(dst, when, EventCallback(std::forward<F>(fn), nullptr));
  }

  /// Conservative window loop: repeatedly advance every engine to
  /// horizon + `lookahead` (horizon = min pending event/message time),
  /// delivering queued messages between windows, until every engine is
  /// drained or the horizon passes `until`. Engine clocks never advance
  /// past a window's end, so a message posted during a window with
  /// when >= send time + lookahead can never arrive in an engine's past.
  void run_lookahead(Cycles lookahead, Cycles until = Engine::kNoEvent);

  /// Rendezvous mode: deliver queued messages, then run every engine
  /// until it stops or drains. The caller's actors are responsible for
  /// stopping each engine at the rendezvous point (e.g. a BSP barrier).
  void run_phase();

  /// Deliver queued messages, then run every engine with
  /// run_until(until) semantics.
  void run_phase_until(Cycles until);

 private:
  struct Message {
    Cycles when = 0;
    std::size_t src = 0;     // sender group (controller = group_count())
    std::uint64_t order = 0; // post index within the sender
    std::size_t dst = 0;
    EventCallback fn;
  };

  struct Group {
    Engine* engine = nullptr;
    GroupHooks hooks;
    // Filled only while this group's slice runs (single thread), drained
    // single-threaded by the controller between slices.
    std::vector<Message> outbox;
    std::uint64_t posted = 0;
  };

  void post_message(std::size_t dst, Cycles when, EventCallback fn);
  void deliver_queued();
  /// Run `body(group)` for every group across the pool; blocks until
  /// all finish. Hooks bracket every slice.
  void for_each_group(const std::function<void(Group&)>& body);
  void worker_loop();

  std::vector<Group> groups_;
  std::vector<Message> queued_; // controller-side, between phases
  std::uint64_t controller_posted_ = 0;
  unsigned workers_ = 1;

  // Persistent pool (created lazily on the first parallel phase).
  std::vector<std::thread> pool_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(Group&)>* phase_body_ = nullptr;
  std::uint64_t phase_gen_ = 0;
  std::size_t phase_next_ = 0;
  std::size_t phase_done_ = 0;
  bool shutdown_ = false;
  // Set while a group slice runs on this thread: sender id for post().
  static thread_local std::size_t t_current_group_;
};

} // namespace hpmmap::sim
