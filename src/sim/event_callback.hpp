// Small-buffer-optimized, move-only callable for engine events.
//
// std::function heap-allocates for any capture larger than two pointers
// and drags in RTTI plus copy machinery the engine never uses. Every
// callback in this tree is a tiny lambda ([this], [this, slot], ...),
// so EventCallback stores callables up to kInlineBytes directly inside
// the heap entry — scheduling an event performs zero allocations. The
// rare larger callable spills into the engine's BumpArena (recycled
// blocks, still no malloc in steady state) or, with no arena, the heap.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/arena.hpp"

namespace hpmmap::sim {

class EventCallback {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  explicit EventCallback(F&& fn, BumpArena* arena = nullptr) {
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      void* block = arena != nullptr ? arena->alloc(sizeof(Fn))
                                     : ::operator new(sizeof(Fn));
      ::new (block) Fn(std::forward<F>(fn));
      auto* out = ::new (static_cast<void*>(storage_)) Outline;
      out->block = block;
      out->arena = arena;
      out->size = sizeof(Fn);
      ops_ = &outline_ops<Fn>;
    }
  }

  EventCallback(EventCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }
  [[nodiscard]] bool operator==(std::nullptr_t) const noexcept { return ops_ == nullptr; }
  [[nodiscard]] bool operator!=(std::nullptr_t) const noexcept { return ops_ != nullptr; }

  /// True when the callable spilled out of the inline buffer (bench/test
  /// visibility into the allocation behavior).
  [[nodiscard]] bool out_of_line() const noexcept {
    return ops_ != nullptr && ops_->outline;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move the callable between storage slots; sources must be nothrow-
    // movable or out-of-line (where relocation is a pointer copy).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool outline;
  };

  struct Outline {
    void* block;
    BumpArena* arena;
    std::size_t size;
  };
  static_assert(sizeof(Outline) <= kInlineBytes);

  template <typename Fn>
  [[nodiscard]] static constexpr bool fits_inline() noexcept {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](void* storage) { (*std::launder(reinterpret_cast<Fn*>(storage)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* storage) noexcept { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); },
      /*outline=*/false,
  };

  template <typename Fn>
  static constexpr Ops outline_ops{
      [](void* storage) {
        auto* out = std::launder(reinterpret_cast<Outline*>(storage));
        (*static_cast<Fn*>(out->block))();
      },
      [](void* dst, void* src) noexcept {
        auto* from = std::launder(reinterpret_cast<Outline*>(src));
        ::new (dst) Outline(*from);
        from->~Outline();
      },
      [](void* storage) noexcept {
        auto* out = std::launder(reinterpret_cast<Outline*>(storage));
        static_cast<Fn*>(out->block)->~Fn();
        if (out->arena != nullptr) {
          out->arena->free(out->block, out->size);
        } else {
          ::operator delete(out->block);
        }
        out->~Outline();
      },
      /*outline=*/true,
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

} // namespace hpmmap::sim
