// Discrete-event simulation engine.
//
// Everything in the simulated node — application compute bursts, page
// faults, khugepaged scans, kernel-build process churn — is an event on a
// single virtual clock measured in CPU cycles. Determinism is guaranteed
// by (time, sequence) ordering: two events at the same cycle fire in
// scheduling order, never in container-iteration order.
//
// The hot path is allocation-free: callbacks live inline in the heap
// entries (EventCallback's small-buffer optimization; rare large
// captures spill into a recycling bump arena), and cancellation is a
// generation check against a reusable slot table rather than a tombstone
// set — cancel() is O(1), fired and cancelled events release their slots
// immediately, and pending_events() is exact on arbitrarily long runs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "sim/arena.hpp"
#include "sim/event_callback.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::sim {

/// Handle for cancelling a scheduled event: a slot index plus the
/// generation the slot had when the event was armed. A fired or
/// cancelled event bumps the generation, so stale handles (including
/// handles for a slot that has since been reused) can never hit a
/// successor event.
struct EventId {
  std::uint32_t slot = 0; // 1-based; 0 = invalid
  std::uint32_t gen = 0;
  [[nodiscard]] bool valid() const noexcept { return slot != 0; }
};

class Engine {
 public:
  using Callback = EventCallback;

  /// Registers this engine as the tracing clock, so tracepoints in
  /// components without an engine reference can stamp virtual time.
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Cycles now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` cycles from now.
  template <typename F>
  EventId schedule(Cycles delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule `fn` at absolute time `when` (>= now()).
  template <typename F>
  EventId schedule_at(Cycles when, F&& fn) {
    if constexpr (std::is_same_v<std::decay_t<F>, EventCallback>) {
      return schedule_entry(when, std::move(fn));
    } else {
      return schedule_entry(when, EventCallback(std::forward<F>(fn), &arena_));
    }
  }

  /// Schedule `fn` as a *daemon* event `delay` cycles from now. Daemon
  /// events fire like any other while real work is pending, but they do
  /// not keep the engine alive: run() treats a queue holding only daemon
  /// events as drained. This is what periodic background activity (the
  /// telemetry sampler) needs — a self-rescheduling observer must never
  /// turn a terminating simulation into an infinite one.
  template <typename F>
  EventId schedule_daemon(Cycles delay, F&& fn) {
    return schedule_daemon_at(now_ + delay, std::forward<F>(fn));
  }

  /// Daemon variant of schedule_at (see schedule_daemon).
  template <typename F>
  EventId schedule_daemon_at(Cycles when, F&& fn) {
    if constexpr (std::is_same_v<std::decay_t<F>, EventCallback>) {
      return schedule_entry(when, std::move(fn), /*daemon=*/true);
    } else {
      return schedule_entry(when, EventCallback(std::forward<F>(fn), &arena_),
                            /*daemon=*/true);
    }
  }

  /// Cancel a pending event. Cancelling an already-fired or invalid id is
  /// a harmless no-op (mirrors timer APIs the actors expect).
  void cancel(EventId id);

  /// Run until the queue drains or `stop()` is called.
  void run();

  /// Run events with time <= `until`; afterwards now() == max(now, until)
  /// unless stopped earlier.
  void run_until(Cycles until);

  /// Stop after the currently executing event returns.
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  /// Earliest pending non-daemon event time, or kNoEvent when only
  /// daemons (or nothing) remain. The parallel coordinator's horizon
  /// computation reads this between windows; a linear scan over the
  /// heap is fine at that cadence (never on the event hot path).
  static constexpr Cycles kNoEvent = ~Cycles{0};
  [[nodiscard]] Cycles next_event_time() const noexcept;

  /// True when run() would return immediately: nothing pending but
  /// daemon events (which never keep a run alive).
  [[nodiscard]] bool drained() const noexcept { return live_ == daemon_live_; }

  /// Exact count of events armed but neither fired nor cancelled.
  [[nodiscard]] std::size_t pending_events() const noexcept { return live_; }
  /// How many of those are daemon events (they never keep run() alive).
  [[nodiscard]] std::size_t pending_daemons() const noexcept { return daemon_live_; }
  [[nodiscard]] std::uint64_t events_fired() const noexcept { return fired_; }
  [[nodiscard]] std::uint64_t events_cancelled() const noexcept { return cancelled_; }

  /// Arena backing out-of-line callbacks and other short-lived event
  /// payloads; reset at quiescence, never mid-run.
  [[nodiscard]] BumpArena& arena() noexcept { return arena_; }

 private:
  // Snapshot/restore reaches the queue internals (src/snapshot/): all
  // capture/restore logic is centralized there rather than widening the
  // public API with serialization accessors.
  friend struct hpmmap::snapshot::Access;

  /// Heap node: ordering key + slot handle only, 24 trivially copyable
  /// bytes. The callable itself is parked in slots_ and never moves
  /// during sifts — the single biggest cost of keeping callbacks inside
  /// heap entries is the relocation storm on every sift.
  struct Entry {
    Cycles when;
    std::uint64_t seq;
    std::uint32_t slot; // 0-based index into slots_
    std::uint32_t gen;
  };
  /// One armed (or recyclable) event: the callback and the slot's
  /// current generation. A heap entry is live iff its stored generation
  /// matches. Slots are recycled through free_slots_ once their entry
  /// leaves the heap, so the table stays bounded by peak concurrency.
  struct Slot {
    EventCallback fn;
    std::uint32_t gen = 1;
    bool daemon = false;
  };

  EventId schedule_entry(Cycles when, EventCallback fn, bool daemon = false);
  /// True iff a comes strictly before b in firing order.
  [[nodiscard]] static bool before(const Entry& a, const Entry& b) noexcept {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  void pop_min() noexcept;
  bool fire_next(Cycles limit);

  // Declared before the callback stores: outline callbacks free their
  // blocks back into the arena on destruction, so the arena must be
  // destroyed after them.
  BumpArena arena_;
  // Binary min-heap of PODs ordered by (when, seq).
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  Cycles now_ = 0;
  std::uint64_t next_seq_ = 1;
#ifndef NDEBUG
  // Debug ordering audit: non-daemon events must fire in strictly
  // increasing (when, seq) order — the invariant the PDES byte-identity
  // gate rests on. Daemon events are exempt: one parked below now_
  // across a run_until() window legitimately replays an old timestamp.
  Cycles audit_last_when_ = 0;
  std::uint64_t audit_last_seq_ = 0;
#endif
  std::uint64_t fired_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t live_ = 0;
  std::size_t daemon_live_ = 0;
  bool stopped_ = false;
};

} // namespace hpmmap::sim
