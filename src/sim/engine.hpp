// Discrete-event simulation engine.
//
// Everything in the simulated node — application compute bursts, page
// faults, khugepaged scans, kernel-build process churn — is an event on a
// single virtual clock measured in CPU cycles. Determinism is guaranteed
// by (time, sequence) ordering: two events at the same cycle fire in
// scheduling order, never in container-iteration order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace hpmmap::sim {

/// Handle for cancelling a scheduled event.
struct EventId {
  std::uint64_t seq = 0;
  [[nodiscard]] bool valid() const noexcept { return seq != 0; }
};

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Registers this engine as the tracing clock, so tracepoints in
  /// components without an engine reference can stamp virtual time.
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Cycles now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` cycles from now.
  EventId schedule(Cycles delay, Callback fn);

  /// Schedule `fn` at absolute time `when` (>= now()).
  EventId schedule_at(Cycles when, Callback fn);

  /// Cancel a pending event. Cancelling an already-fired or invalid id is
  /// a harmless no-op (mirrors timer APIs the actors expect).
  void cancel(EventId id);

  /// Run until the queue drains or `stop()` is called.
  void run();

  /// Run events with time <= `until`; afterwards now() == max(now, until)
  /// unless stopped earlier.
  void run_until(Cycles until);

  /// Stop after the currently executing event returns.
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return heap_.size() - cancelled_.size();
  }
  [[nodiscard]] std::uint64_t events_fired() const noexcept { return fired_; }

 private:
  struct Entry {
    Cycles when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  bool fire_next(Cycles limit);

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  Cycles now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  bool stopped_ = false;
};

} // namespace hpmmap::sim
