// Multithreaded fault-storm driver for the SMP contention study
// (DESIGN.md §14).
//
// One worker actor per core runs rounds of the anonymous-memory churn
// every threaded allocator-heavy app performs: mmap a slab, first-touch
// it page by page (one fault per engine event, so every lock acquire
// lands at its true virtual time and the cores genuinely interleave),
// munmap it, repeat. In Linux mode every worker is a *thread*
// of one process — all cores fault one address space, so they meet on
// the real serialization points: mmap_sem, the PT locks, the zone
// locks, and each other's TLB shootdown IPIs. In HPMMAP mode each core
// runs its own module-managed process and touches no shared Linux lock
// (§III-A), which is the scalability claim the bench curves quantify.
//
// Throughput is virtual-time: pages faulted / seconds(last worker's
// finish). Per-page app work is a fixed cycle count, never a random
// draw, so a run is a pure function of (config, seed) and the
// three-manager comparison runs common random numbers.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "common/units.hpp"
#include "os/node.hpp"

namespace hpmmap::workloads {

struct SmpStormConfig {
  std::uint32_t cores = 4;
  /// One shared Process faulted by all cores (threads); false = one
  /// process per core (the HPMMAP shape — per-process isolation).
  bool shared_process = true;
  os::MmPolicy policy = os::MmPolicy::kLinuxPlain;
  std::uint64_t rounds = 6;            // mmap→touch→munmap rounds per core
  std::uint64_t slab_bytes = 2 * MiB;  // per-round mapping per core
  /// Pages faulted per engine event. Keep at 1: with multiple faults
  /// per event, re-entries of mmap_sem inside one slice are stamped
  /// before a writer's release and re-pay the same wait (smp.hpp's
  /// stamping discipline bounds the error but can't remove it).
  std::uint64_t touch_slice_pages = 1;
  /// Fixed user-mode cycles per touched page (the app consuming it).
  Cycles app_work_per_page = 600;
};

class SmpStorm {
 public:
  SmpStorm(sim::Engine& engine, os::Node& node, SmpStormConfig config);

  /// Launch every worker; `on_complete` fires once when the last one
  /// finishes its rounds (processes stay alive for stats collection).
  void start(std::function<void()> on_complete = {});

  [[nodiscard]] bool done() const noexcept { return finished_ == workers_.size(); }
  /// Pages demand-faulted across all workers.
  [[nodiscard]] std::uint64_t pages_touched() const noexcept { return pages_touched_; }
  /// start() to the last worker's finish, in cycles.
  [[nodiscard]] Cycles span_cycles() const noexcept { return last_finish_ - start_time_; }
  /// Sum of all workers' processes' fault statistics (deduplicated: the
  /// shared process counts once).
  [[nodiscard]] mm::FaultStats aggregate_faults() const;

 private:
  struct Worker {
    os::Process* proc = nullptr;
    std::int32_t core = 0;
    std::uint64_t round = 0;
    Addr slab = 0;
    Addr pos = 0;
  };

  void begin_round(std::size_t i);
  void touch_step(std::size_t i);
  void end_round(std::size_t i);
  void finish_worker(std::size_t i);

  sim::Engine& engine_;
  os::Node& node_;
  SmpStormConfig config_;
  std::vector<Worker> workers_;
  std::function<void()> on_complete_;
  std::uint64_t pages_touched_ = 0;
  std::size_t finished_ = 0;
  Cycles start_time_ = 0;
  Cycles last_finish_ = 0;
};

} // namespace hpmmap::workloads
