#include "workloads/kernel_build.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace hpmmap::workloads {

KernelBuild::KernelBuild(os::Node& node, KernelBuildConfig config, Rng rng)
    : node_(node), config_(config), rng_(rng) {
  jobs_.resize(config_.jobs);
}

KernelBuild::~KernelBuild() { stop(); }

void KernelBuild::start() {
  HPMMAP_ASSERT(!running_, "build started twice");
  running_ = true;
  for (std::size_t slot = 0; slot < jobs_.size(); ++slot) {
    // Stagger job starts like a make ramping up.
    const Cycles stagger = node_.spec().cycles(0.02 * static_cast<double>(slot));
    jobs_[slot].pending = node_.engine().schedule(stagger, [this, slot] { spawn_job(slot); });
  }
}

void KernelBuild::stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  for (Job& job : jobs_) {
    node_.engine().cancel(job.pending);
    if (job.live) {
      free_blocks(job, 1.0);
      node_.scheduler().remove_thread(job.sched);
      node_.bandwidth().clear_demand(job.bw);
      job.live = false;
    }
  }
}

unsigned KernelBuild::sample_order() {
  // Compiler memory: mostly small slabs with occasional larger arenas.
  const double u = rng_.uniform_double();
  if (u < 0.45) {
    return 0;
  }
  if (u < 0.65) {
    return 1;
  }
  if (u < 0.80) {
    return 2;
  }
  if (u < 0.92) {
    return 3;
  }
  return 4;
}

void KernelBuild::allocate_working_set(Job& job, std::uint64_t bytes) {
  std::uint64_t got = 0;
  while (got < bytes) {
    // Back off under memory pressure: a real compiler's anonymous pages
    // would be swapped or its job OOM-killed before it drained every
    // zone; either way the build does not get to push the system past
    // its watermarks and starve the co-tenant outright.
    if (node_.memory().below_low_watermark(job.home)) {
      const ZoneId other = (job.home + 1) % node_.spec().numa_zones;
      if (node_.memory().below_low_watermark(other)) {
        ++stats_.alloc_failures;
        return;
      }
      job.home = other;
    }
    const unsigned order = sample_order();
    auto addr = node_.kernel_alloc(job.home, order);
    if (!addr.has_value()) {
      // Zone exhausted: try the other zone, then give up (the compiler
      // would be OOM-killed; we just cap its working set).
      const ZoneId other = (job.home + 1) % node_.spec().numa_zones;
      addr = node_.kernel_alloc(other, order);
      if (!addr.has_value()) {
        ++stats_.alloc_failures;
        return;
      }
      job.blocks.push_back(Block{other, *addr, order});
    } else {
      job.blocks.push_back(Block{job.home, *addr, order});
    }
    got += mm::BuddyAllocator::order_bytes(order);
  }
  stats_.bytes_churned += got;
}

void KernelBuild::free_blocks(Job& job, double fraction) {
  if (job.blocks.empty()) {
    return;
  }
  if (fraction >= 1.0) {
    for (const Block& b : job.blocks) {
      node_.kernel_free(b.zone, b.addr, b.order);
    }
    job.blocks.clear();
    return;
  }
  // Free a deterministic-random subset, leaving holes behind — this is
  // the fragmentation generator.
  const auto keep_target =
      static_cast<std::size_t>(static_cast<double>(job.blocks.size()) * (1.0 - fraction));
  std::vector<Block> keep;
  keep.reserve(keep_target);
  for (const Block& b : job.blocks) {
    if (keep.size() < keep_target && rng_.chance(1.0 - fraction)) {
      keep.push_back(b);
    } else {
      node_.kernel_free(b.zone, b.addr, b.order);
    }
  }
  job.blocks = std::move(keep);
}

void KernelBuild::spawn_job(std::size_t slot) {
  if (!running_) {
    return;
  }
  Job& job = jobs_[slot];
  job.live = true;
  job.phase = 0;
  job.home = static_cast<ZoneId>(rng_.uniform(node_.spec().numa_zones));
  job.sched = node_.scheduler().add_thread(/*core=*/-1, config_.duty_cycle);
  job.bw = node_.bandwidth().register_consumer();
  node_.bandwidth().set_demand(job.bw, job.home, config_.bw_demand_per_job);
  job_step(slot);
}

void KernelBuild::job_step(std::size_t slot) {
  if (!running_) {
    return;
  }
  Job& job = jobs_[slot];
  const double dilation = node_.scheduler().dilation(-1);
  const auto chunk = [&](double frac) {
    const double cpu = config_.mean_job_seconds * frac;
    const double wall = cpu / config_.duty_cycle * dilation;
    return node_.spec().cycles(rng_.lognormal_from_moments(wall, 0.3 * wall));
  };

  switch (job.phase) {
    case 0: { // read sources into the page cache, allocate arenas
      const std::uint64_t ws = static_cast<std::uint64_t>(
          rng_.lognormal_from_moments(static_cast<double>(config_.mean_job_bytes),
                                      0.5 * static_cast<double>(config_.mean_job_bytes)));
      allocate_working_set(job, std::clamp<std::uint64_t>(ws, 16 * MiB, 512 * MiB));
      node_.memory().cache(job.home).set_dirty_fraction(config_.cache_dirty_fraction);
      node_.memory().cache(job.home).grow(config_.cache_bytes_per_job / 2, sample_order(),
                                          /*dirty=*/false);
      break;
    }
    case 1: // front-end + middle-end
      break;
    case 2: // back-end: object output dirties the cache, frees AST arenas
      node_.memory().cache(job.home).grow(config_.cache_bytes_per_job / 2, sample_order(),
                                          /*dirty=*/true);
      free_blocks(job, 0.6);
      break;
    case 3: { // job exit: free the rest, account, respawn
      free_blocks(job, 1.0);
      node_.scheduler().remove_thread(job.sched);
      node_.bandwidth().clear_demand(job.bw);
      job.live = false;
      ++stats_.jobs_completed;
      const Cycles gap = node_.spec().cycles(0.01 + 0.02 * rng_.uniform_double());
      job.pending = node_.engine().schedule(gap, [this, slot] { spawn_job(slot); });
      return;
    }
    default:
      HPMMAP_ASSERT(false, "unreachable build phase");
  }
  ++job.phase;
  job.pending = node_.engine().schedule(chunk(1.0 / 3.0), [this, slot] { job_step(slot); });
}

} // namespace hpmmap::workloads
