#include "workloads/smp_storm.hpp"

#include <algorithm>
#include <string>

#include "common/assert.hpp"
#include "trace/trace.hpp"

namespace hpmmap::workloads {

SmpStorm::SmpStorm(sim::Engine& engine, os::Node& node, SmpStormConfig config)
    : engine_(engine), node_(node), config_(config) {
  HPMMAP_ASSERT(config_.cores > 0, "storm needs at least one core");
  HPMMAP_ASSERT(config_.slab_bytes >= kSmallPageSize, "slab below one page");
  workers_.resize(config_.cores);
  const std::uint32_t zones = node_.spec().numa_zones;
  if (config_.shared_process) {
    // A threaded app: one address space, one mm, faulted from every
    // core. Interleaved zone placement spreads the allocations over
    // both zone locks, the way a NUMA-oblivious allocator behaves.
    os::Process& proc =
        node_.spawn("smp_storm", config_.policy, /*core=*/-1, /*duty=*/1.0,
                    mm::AddressSpace::ZonePolicy::kInterleave, /*home_zone=*/0);
    for (std::uint32_t c = 0; c < config_.cores; ++c) {
      workers_[c].proc = &proc;
      workers_[c].core = static_cast<std::int32_t>(c);
    }
  } else {
    for (std::uint32_t c = 0; c < config_.cores; ++c) {
      os::Process& proc =
          node_.spawn("smp_storm" + std::to_string(c), config_.policy,
                      static_cast<std::int32_t>(c), /*duty=*/1.0,
                      mm::AddressSpace::ZonePolicy::kSingle, /*home_zone=*/c % zones);
      workers_[c].proc = &proc;
      workers_[c].core = static_cast<std::int32_t>(c);
    }
  }
}

void SmpStorm::start(std::function<void()> on_complete) {
  on_complete_ = std::move(on_complete);
  start_time_ = engine_.now();
  last_finish_ = start_time_;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    engine_.schedule(0, [this, i] { begin_round(i); });
  }
}

void SmpStorm::begin_round(std::size_t i) {
  Worker& w = workers_[i];
  if (w.round == config_.rounds) {
    finish_worker(i);
    return;
  }
  // Each storm worker is a causal actor: the lock waits and shootdowns
  // its fault path suffers are attributed to span = worker index + 1.
  trace::SpanScope span(static_cast<std::uint32_t>(i + 1));
  const os::Node::SysOut out =
      node_.sys_mmap(*w.proc, config_.slab_bytes, kProtRW, os::Node::Segment::kHeapData, w.core);
  HPMMAP_ASSERT(out.err == Errno::kOk, "storm slab mmap failed");
  w.slab = out.addr;
  w.pos = out.addr;
  engine_.schedule(std::max<Cycles>(out.cost, 1), [this, i] { touch_step(i); });
}

void SmpStorm::touch_step(std::size_t i) {
  Worker& w = workers_[i];
  trace::SpanScope span(static_cast<std::uint32_t>(i + 1));
  const Addr slab_end = w.slab + config_.slab_bytes;
  const Addr end =
      std::min<Addr>(slab_end, w.pos + config_.touch_slice_pages * kSmallPageSize);
  const std::uint64_t pages = (end - w.pos) / kSmallPageSize;
  Cycles cost = node_.touch_range(*w.proc, Range{w.pos, end}, w.core);
  cost += pages * config_.app_work_per_page;
  pages_touched_ += pages;
  w.pos = end;
  if (w.pos < slab_end) {
    engine_.schedule(std::max<Cycles>(cost, 1), [this, i] { touch_step(i); });
  } else {
    engine_.schedule(std::max<Cycles>(cost, 1), [this, i] { end_round(i); });
  }
}

void SmpStorm::end_round(std::size_t i) {
  Worker& w = workers_[i];
  trace::SpanScope span(static_cast<std::uint32_t>(i + 1));
  const os::Node::SysOut out = node_.sys_munmap(*w.proc, w.slab, config_.slab_bytes, w.core);
  HPMMAP_ASSERT(out.err == Errno::kOk, "storm slab munmap failed");
  ++w.round;
  engine_.schedule(std::max<Cycles>(out.cost, 1), [this, i] { begin_round(i); });
}

void SmpStorm::finish_worker(std::size_t i) {
  (void)i;
  last_finish_ = std::max(last_finish_, engine_.now());
  ++finished_;
  if (finished_ == workers_.size() && on_complete_) {
    on_complete_();
  }
}

mm::FaultStats SmpStorm::aggregate_faults() const {
  mm::FaultStats total;
  const os::Process* last = nullptr;
  for (const Worker& w : workers_) {
    if (w.proc == last) {
      continue; // shared process: count once
    }
    last = w.proc;
    const mm::FaultStats& s = w.proc->fault_stats();
    for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
      total.count[k] += s.count[k];
      total.total_cycles[k] += s.total_cycles[k];
    }
  }
  return total;
}

} // namespace hpmmap::workloads
