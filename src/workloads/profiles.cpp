#include "workloads/profiles.hpp"

#include <stdexcept>
#include <utility>

#include "common/units.hpp"

namespace hpmmap::workloads {
namespace {

/// Seconds of on-core work per iteration -> cycles at the node clock.
Cycles per_iter(double clock_hz, double seconds) {
  return static_cast<Cycles>(clock_hz * seconds);
}

} // namespace

AppProfile hpccg(double clock_hz) {
  AppProfile p;
  p.name = "HPCCG";
  p.bytes_per_rank = 1392 * MiB; // weak scaling: 8 ranks + misc ~= 11.5 GB (fits the 12 GB pools)
  p.misc_bytes = 48 * MiB;
  p.stack_bytes = 1 * MiB;
  p.iter_alloc_bytes = 2 * MiB; // MPI exchange buffers
  p.setup_brk_fraction = 0.8;   // matrix + vectors on the heap
  p.iterations = 149;           // CG iterations to convergence
  p.cpu_per_iter = per_iter(clock_hz, 0.28);
  p.access_rate = 0.20;  // SpMV: memory bound
  p.locality = 0.975;
  p.stream_bytes_per_cycle = 1.3;
  p.allreduces_per_iter = 2; // two dot products per CG step
  p.halo_bytes_per_iter = 256 * KiB;
  return p;
}

AppProfile comd(double clock_hz) {
  AppProfile p;
  p.name = "CoMD";
  p.bytes_per_rank = 1376 * MiB;
  p.misc_bytes = 64 * MiB;
  p.stack_bytes = 1 * MiB;
  p.iter_alloc_bytes = 6 * MiB; // neighbor-list rebuilds
  p.setup_brk_fraction = 0.6;
  p.iterations = 220;
  p.cpu_per_iter = per_iter(clock_hz, 0.95);
  p.access_rate = 0.12; // force kernels reuse cache well
  p.locality = 0.982;
  p.stream_bytes_per_cycle = 0.8;
  p.allreduces_per_iter = 1;
  p.halo_bytes_per_iter = 512 * KiB;
  return p;
}

AppProfile minimd(double clock_hz) {
  AppProfile p;
  p.name = "miniMD";
  p.bytes_per_rank = 1344 * MiB;
  p.misc_bytes = 56 * MiB;
  p.stack_bytes = 1 * MiB;
  p.iter_alloc_bytes = 3 * MiB;
  p.setup_brk_fraction = 0.55; // large mmap'd neighbor structures
  p.iterations = 340;
  p.cpu_per_iter = per_iter(clock_hz, 1.05);
  p.access_rate = 0.11;
  p.locality = 0.98;
  p.stream_bytes_per_cycle = 0.7;
  p.allreduces_per_iter = 1;
  p.halo_bytes_per_iter = 384 * KiB;
  return p;
}

AppProfile minife(double clock_hz) {
  AppProfile p;
  p.name = "miniFE";
  p.bytes_per_rank = 1392 * MiB;
  p.misc_bytes = 64 * MiB;
  p.stack_bytes = 1 * MiB;
  p.iter_alloc_bytes = 8 * MiB; // assembly scratch per solve step
  p.setup_brk_fraction = 0.7;
  p.iterations = 180;
  p.cpu_per_iter = per_iter(clock_hz, 0.24);
  p.access_rate = 0.19; // CG solve phase, memory bound
  p.locality = 0.975;
  p.stream_bytes_per_cycle = 1.2;
  p.allreduces_per_iter = 2;
  p.halo_bytes_per_iter = 256 * KiB;
  return p;
}

AppProfile lammps(double clock_hz) {
  AppProfile p;
  p.name = "LAMMPS";
  p.bytes_per_rank = 1280 * MiB;
  p.misc_bytes = 96 * MiB;
  p.stack_bytes = 2 * MiB;
  p.iter_alloc_bytes = 4 * MiB;
  p.setup_brk_fraction = 0.6;
  p.iterations = 200;
  p.cpu_per_iter = per_iter(clock_hz, 0.6);
  p.access_rate = 0.09; // compute bound relative to the mini-apps
  p.locality = 0.985;
  p.stream_bytes_per_cycle = 0.6;
  p.allreduces_per_iter = 1;
  p.halo_bytes_per_iter = 768 * KiB;
  return p;
}

std::string_view known_profile_names() noexcept {
  return "HPCCG, CoMD, miniMD, miniFE, LAMMPS";
}

std::optional<AppProfile> try_profile_by_name(const std::string& app_name, double clock_hz) {
  if (app_name == "HPCCG") {
    return hpccg(clock_hz);
  }
  if (app_name == "CoMD") {
    return comd(clock_hz);
  }
  if (app_name == "miniMD") {
    return minimd(clock_hz);
  }
  if (app_name == "miniFE") {
    return minife(clock_hz);
  }
  if (app_name == "LAMMPS") {
    return lammps(clock_hz);
  }
  return std::nullopt;
}

AppProfile profile_by_name(const std::string& app_name, double clock_hz) {
  std::optional<AppProfile> prof = try_profile_by_name(app_name, clock_hz);
  if (!prof.has_value()) {
    throw std::invalid_argument("unknown application profile '" + app_name +
                                "' (known: " + std::string(known_profile_names()) + ")");
  }
  return *std::move(prof);
}

CommodityProfile profile_a(std::uint32_t app_cores) {
  // §IV-B: one parallel kernel build on 8 cores, limited to 4 when the
  // app itself uses 8 "so as to not overcommit the cores".
  CommodityProfile c;
  c.name = "A";
  c.builds = 1;
  c.jobs_per_build = app_cores >= 8 ? 4 : 8;
  return c;
}

CommodityProfile profile_b(std::uint32_t app_cores) {
  // §IV-B: profile A plus a duplicate build — this one *does* overcommit.
  CommodityProfile c;
  c.name = "B";
  c.builds = 2;
  c.jobs_per_build = app_cores >= 8 ? 4 : 8;
  return c;
}

CommodityProfile profile_c() {
  // §IV-C: one build consuming the remaining 4 cores of each node.
  CommodityProfile c;
  c.name = "C";
  c.builds = 1;
  c.jobs_per_build = 4;
  return c;
}

CommodityProfile profile_d() {
  CommodityProfile c;
  c.name = "D";
  c.builds = 2;
  c.jobs_per_build = 4;
  return c;
}

CommodityProfile no_competition() {
  CommodityProfile c;
  c.name = "none";
  c.builds = 0;
  c.jobs_per_build = 0;
  return c;
}

} // namespace hpmmap::workloads
