// Datacenter request/response service on the simulated node.
//
// The HPC workloads in this repo stress the managers with one giant
// fault storm followed by steady iteration. A serving workload stresses
// them the way a datacenter does: a continuous stream of small requests,
// each of which (a) churns short-lived allocations through a slab arena,
// (b) serves a Zipf-popular object out of the page cache (evicted
// objects pay a disk read and re-enter the cache), and (c) touches a
// long-lived session table that reclaim may have swapped out under
// memory pressure. Latency is measured per request, end to end, against
// an open-loop arrival schedule (serving/arrival.hpp) — so queueing
// delay and shedding show up in the tail instead of being absorbed by a
// slower request issue rate.
//
// Workers are separate simulated processes pinned to cores, backed by
// whichever MmPolicy is under test; all manager-dependent cost flows
// through the existing fault/syscall path (SlabArena, touch_range,
// compute_burst). The actor itself is deterministic given (config,
// schedule, rng): requests are dispatched in arrival order, per-request
// randomness is precomputed in the schedule, and session-table probe
// addresses derive from the request's own key, so every manager under
// comparison sees identical work (common random numbers).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "os/node.hpp"
#include "profile/attribution.hpp"
#include "serving/arrival.hpp"
#include "serving/slab.hpp"
#include "serving/slo.hpp"

namespace hpmmap::workloads {

struct ServerConfig {
  os::MmPolicy policy = os::MmPolicy::kLinuxThp;
  /// Worker processes, pinned to cores 0..workers-1.
  std::uint32_t workers = 4;
  /// Admission queue capacity; arrivals beyond it are shed immediately.
  std::uint32_t queue_depth = 64;
  /// Requests older than this at dispatch time are shed (their user
  /// already gave up); 0 disables timeout shedding.
  double queue_timeout_seconds = 0.02;

  // --- served object set (page cache) --------------------------------------
  std::uint64_t object_count = 512;
  /// Buddy order per cached object (4 => 16 pages = 64 KiB).
  unsigned object_order = 4;
  /// Zipf popularity exponent over the object set.
  double zipf_s = 0.99;

  // --- per-request work ----------------------------------------------------
  /// On-core compute per request (scaled by the schedule's work_jitter).
  double hit_work_seconds = 25e-6;
  /// Extra charge when the object was evicted from the page cache — the
  /// synchronous disk read the cache exists to avoid.
  double miss_extra_seconds = 150e-6;
  /// Request buffer size: size_quantile maps log-uniformly across
  /// [min, max]. A max above SlabArena::kMaxClassBytes makes the biggest
  /// requests take the direct-mmap path.
  std::uint64_t request_alloc_min = 512;
  std::uint64_t request_alloc_max = 256 * KiB;
  /// Long-lived per-worker region (connection/session state), touched a
  /// few pages per request — the anonymous memory reclaim can swap out
  /// under pressure (never for HPMMAP: offlined frames are invisible).
  /// The default fills the §IV reservation like the HPC apps do: 4
  /// workers x 2.75 GiB = 11 GiB, so under plain Linux the service
  /// competes with the commodity side for the whole machine.
  std::uint64_t session_table_bytes = 2816 * MiB;
  std::uint32_t session_probes = 4;

  /// Zone for the served object set (worker processes themselves are
  /// split across sockets/zones like the HPC ranks).
  ZoneId zone = 0;
  /// Latency budgets the SLO accountant scores against.
  std::vector<serving::SloBudget> budgets;
};

struct ServerStats {
  std::uint64_t offered = 0;    // schedule entries replayed
  std::uint64_t admitted = 0;   // entered the queue
  std::uint64_t shed_queue = 0; // rejected: queue full
  std::uint64_t shed_timeout = 0; // rejected: waited too long
  std::uint64_t completed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  serving::SlabStats slab; // summed over workers
};

/// The service actor. One instance per simulated node + manager config.
class ServerApp {
 public:
  ServerApp(sim::Engine& engine, os::Node& node, ServerConfig config,
            std::vector<serving::ScheduledRequest> schedule, Rng rng);
  ~ServerApp();
  ServerApp(const ServerApp&) = delete;
  ServerApp& operator=(const ServerApp&) = delete;

  /// Spawn workers, build their address spaces, populate the object
  /// cache, then replay the arrival schedule. `on_complete` fires after
  /// the last request drains and workers exit.
  void start(std::function<void()> on_complete = {});

  [[nodiscard]] bool done() const noexcept { return completed_; }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const serving::SloAccountant& slo() const noexcept { return slo_; }
  [[nodiscard]] const serving::LatencyRecorder& latency() const noexcept { return latency_; }
  /// Sum of all workers' fault statistics.
  [[nodiscard]] mm::FaultStats aggregate_faults() const;

  // --- pure observers (telemetry probes; consume no randomness) ----------
  [[nodiscard]] double queue_depth_now() const noexcept {
    return static_cast<double>(queue_.size());
  }
  [[nodiscard]] double in_flight_now() const noexcept { return static_cast<double>(in_flight_); }
  [[nodiscard]] double shed_total() const noexcept {
    return static_cast<double>(stats_.shed_queue + stats_.shed_timeout);
  }
  [[nodiscard]] double completed_total() const noexcept {
    return static_cast<double>(stats_.completed);
  }

  /// Attach a latency-attribution profiler (nullptr detaches). A pure
  /// observer: the actor feeds it the integer cycle terms it already
  /// charges, so attaching one changes no simulated outcome.
  void set_profiler(profile::RequestProfiler* p) noexcept { profiler_ = p; }

 private:
  struct Worker {
    os::Process* proc = nullptr;
    std::unique_ptr<serving::SlabArena> slab;
    Range session_table{};
    Addr setup_pos = 0; // sliced first-touch cursor
    bool ready = false;
    bool busy = false;
  };

  struct QueuedRequest {
    std::size_t index = 0; // into schedule_
    Cycles arrival = 0;    // absolute engine time
  };

  void start_worker(std::size_t w);
  void worker_setup_step(std::size_t w);
  void on_workers_ready();
  void pump_arrivals();
  void dispatch(std::size_t w);
  /// Lock-wait counters right now (zeros without an SMP domain), read
  /// as deltas around synchronous blocks for per-request attribution.
  [[nodiscard]] profile::LockWaits lock_waits_now() const noexcept;
  void serve_phase(std::size_t w, QueuedRequest req, std::uint64_t buf_bytes, Addr buf_addr,
                   bool buf_large);
  void finish_request(std::size_t w, QueuedRequest req);
  void maybe_finish();
  [[nodiscard]] Cycles dilated(const Worker& w, Cycles kernel_cycles) const;
  /// Map a schedule entry's uniform object_key onto a Zipf-ranked object.
  [[nodiscard]] std::size_t zipf_object(std::uint64_t key) const;
  /// Request buffer size for a size_quantile draw (log-uniform).
  [[nodiscard]] std::uint64_t request_bytes(double quantile) const;
  /// Ensure object `idx` is cache-resident; returns true on a hit.
  bool object_resident(std::size_t idx);

  sim::Engine& engine_;
  os::Node& node_;
  ServerConfig config_;
  std::vector<serving::ScheduledRequest> schedule_;
  std::vector<Worker> workers_;
  std::vector<Addr> objects_;     // cached block base per object, 0 = never adopted
  std::vector<double> zipf_cdf_;  // cumulative popularity by rank
  std::deque<QueuedRequest> queue_;
  std::size_t next_arrival_ = 0;  // schedule cursor
  Cycles epoch_ = 0;              // engine time the schedule replays against
  std::uint32_t in_flight_ = 0;
  std::size_t workers_ready_ = 0;
  Cycles timeout_cycles_ = 0;
  ServerStats stats_;
  serving::SloAccountant slo_;
  serving::LatencyRecorder latency_;
  std::function<void()> on_complete_;
  profile::RequestProfiler* profiler_ = nullptr;
  bool started_ = false;
  bool completed_ = false;
};

} // namespace hpmmap::workloads
