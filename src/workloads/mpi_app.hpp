// MPI-style parallel application driver.
//
// Each rank is an actor on the shared event engine: it builds its
// address space through the node's syscall layer (so every allocation
// policy difference between Linux and HPMMAP is exercised for real),
// first-touches its data in slices (so khugepaged, kswapd and the
// kernel-build churn interleave with the fault storm), then runs a
// BSP iteration loop: churn temp buffers -> compute -> barrier.
//
// The barrier is where OS noise amplifies: iteration time is the *max*
// across ranks, so one rank stalled behind a merge or a reclaim delays
// everyone (§II-B, Figure 8).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "os/node.hpp"
#include "workloads/profiles.hpp"

namespace hpmmap::workloads {

/// Cycles a full-rank barrier + communication step costs, given the app
/// and total rank count. Provided by the single-node or cluster comm
/// models.
using CommModel = std::function<Cycles(const AppProfile&, std::uint64_t ranks)>;

/// Default intra-node (shared memory) communication cost.
[[nodiscard]] CommModel shared_memory_comm(double clock_hz);

struct RankPlacement {
  os::Node* node = nullptr;
  std::int32_t core = -1;
  ZoneId home_zone = 0;
  mm::AddressSpace::ZonePolicy zone_policy = mm::AddressSpace::ZonePolicy::kInterleave;
};

struct MpiJobConfig {
  AppProfile app;
  os::MmPolicy policy = os::MmPolicy::kLinuxThp;
  std::vector<RankPlacement> ranks;
  CommModel comm; // defaults to shared_memory_comm of rank 0's node
  // Distributed-barrier mode (cluster PDES): when set, a full house of
  // *local* ranks calls this hook with the arrival time instead of
  // releasing the barrier. The cluster controller resolves the global
  // barrier across all per-node jobs and re-enters via
  // external_release() / external_finish(); `comm` is unused.
  std::function<void(Cycles)> barrier_hook;
};

class MpiJob {
 public:
  MpiJob(sim::Engine& engine, MpiJobConfig config);

  /// Launch all ranks. `on_complete` fires once after teardown.
  void start(std::function<void()> on_complete = {});

  /// Distributed-barrier mode only (see MpiJobConfig::barrier_hook).
  /// Release every waiting local rank at absolute time `release_time`
  /// (= global barrier arrival + the controller's single comm draw).
  /// Returns true when every local rank has finished its iterations —
  /// the controller then calls external_finish() once all jobs agree.
  /// Must be called with this job's run context (trace clock fixed at
  /// the global barrier time) installed, between engine phases.
  bool external_release(Cycles release_time);

  /// Distributed-barrier mode only: schedule the finish/teardown event
  /// at absolute time `finish_time` (mirrors the finish_job event the
  /// shared-engine release schedules).
  void external_finish(Cycles finish_time);

  [[nodiscard]] bool done() const noexcept { return completed_; }
  [[nodiscard]] Cycles runtime_cycles() const noexcept { return runtime_; }
  [[nodiscard]] double runtime_seconds() const;

  /// Sum of all ranks' fault statistics.
  [[nodiscard]] mm::FaultStats aggregate_faults() const;

  /// Rank 0's mapping mix, captured at the moment the job finished
  /// (teardown unmaps everything, so live queries see nothing).
  [[nodiscard]] hw::MappingMix final_mapping_mix() const noexcept { return final_mix_; }
  [[nodiscard]] const os::Process& rank_process(std::size_t i) const;
  [[nodiscard]] std::size_t rank_count() const noexcept { return ranks_.size(); }

 private:
  struct Rank {
    os::Process* proc = nullptr;
    RankPlacement place;
    hw::BandwidthModel::Consumer bw{};
    // setup touch queue
    std::vector<Range> touch_queue;
    std::size_t tq_index = 0;
    Addr tq_pos = 0;
    // main data regions, re-referenced every iteration (swap-in probes)
    Range heap_range{};
    Range data_range{};
    // iteration state
    std::uint64_t iteration = 0;
    Addr temp_addr = 0;      // this iteration's churned buffer
    std::uint64_t substep = 0;
    std::uint64_t substeps = 1;
    Cycles finish_time = 0;
    bool finished = false;
  };

  void start_rank(std::size_t i);
  void setup_step(std::size_t i);
  void iterate_step(std::size_t i);
  void iterate_substep(std::size_t i);
  void arrive_barrier(std::size_t i);
  void release_barrier();
  void finish_job();
  [[nodiscard]] Cycles dilated(const Rank& r, Cycles kernel_cycles) const;

  sim::Engine& engine_;
  MpiJobConfig config_;
  std::vector<Rank> ranks_;
  std::function<void()> on_complete_;
  // barrier state
  std::uint64_t arrived_ = 0;
  std::vector<std::size_t> waiting_;
  Cycles job_start_ = 0;
  Cycles runtime_ = 0;
  hw::MappingMix final_mix_{};
  bool started_ = false;
  bool completed_ = false;
};

} // namespace hpmmap::workloads
