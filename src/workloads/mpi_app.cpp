#include "workloads/mpi_app.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "trace/trace.hpp"

namespace hpmmap::workloads {
namespace {

/// Slice size for first-touch so daemons and competing workloads
/// interleave with the fault storm.
constexpr std::uint64_t kTouchSlice = 1 * MiB;

} // namespace

CommModel shared_memory_comm(double clock_hz) {
  // OpenMPI shared-memory collectives: ~3 us per allreduce across a
  // node's ranks plus a per-rank linear term.
  return [clock_hz](const AppProfile& app, std::uint64_t ranks) -> Cycles {
    const double per_allreduce = 3e-6 + 0.4e-6 * static_cast<double>(ranks);
    const double secs = static_cast<double>(app.allreduces_per_iter) * per_allreduce +
                        static_cast<double>(app.halo_bytes_per_iter) / 4.0e9; // shm copy
    return static_cast<Cycles>(secs * clock_hz);
  };
}

MpiJob::MpiJob(sim::Engine& engine, MpiJobConfig config)
    : engine_(engine), config_(std::move(config)) {
  HPMMAP_ASSERT(!config_.ranks.empty(), "job needs at least one rank");
  if (!config_.comm) {
    config_.comm = shared_memory_comm(config_.ranks.front().node->spec().clock_hz);
  }
  ranks_.resize(config_.ranks.size());
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    ranks_[i].place = config_.ranks[i];
  }
}

double MpiJob::runtime_seconds() const {
  return config_.ranks.front().node->seconds(runtime_);
}

void MpiJob::start(std::function<void()> on_complete) {
  HPMMAP_ASSERT(!started_, "job started twice");
  started_ = true;
  on_complete_ = std::move(on_complete);
  job_start_ = engine_.now();
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    start_rank(i);
  }
}

Cycles MpiJob::dilated(const Rank& r, Cycles kernel_cycles) const {
  const double d = r.place.node->scheduler().dilation(r.place.core);
  return static_cast<Cycles>(static_cast<double>(kernel_cycles) * d);
}

void MpiJob::start_rank(std::size_t i) {
  Rank& r = ranks_[i];
  os::Node& node = *r.place.node;
  r.proc = &node.spawn(config_.app.name + "-r" + std::to_string(i), config_.policy,
                       r.place.core, /*duty=*/1.0, r.place.zone_policy, r.place.home_zone);
  if (trace::on(trace::Category::kApp)) {
    trace::instant(trace::Category::kApp, "rank.start", r.proc->pid(), r.place.core,
                   {trace::Arg::u64("rank", i),
                    trace::Arg::u64("bytes", config_.app.bytes_per_rank)});
  }

  // Register the rank's streaming DRAM demand, split across the zones it
  // allocates from.
  r.bw = node.bandwidth().register_consumer();
  const double demand = config_.app.stream_bytes_per_cycle;
  if (r.place.zone_policy == mm::AddressSpace::ZonePolicy::kInterleave &&
      node.spec().numa_zones > 1) {
    for (ZoneId z = 0; z < node.spec().numa_zones; ++z) {
      node.bandwidth().set_demand(r.bw, z, demand / node.spec().numa_zones);
    }
  } else {
    node.bandwidth().set_demand(r.bw, r.place.home_zone, demand);
  }

  // Build the address space: heap (brk), main mmap region, misc pools.
  Cycles setup_cost = 0;
  const AppProfile& app = config_.app;
  const auto brk_bytes =
      static_cast<std::uint64_t>(app.setup_brk_fraction * static_cast<double>(app.bytes_per_rank));
  const std::uint64_t mmap_bytes = app.bytes_per_rank - brk_bytes;

  os::Node::SysOut cur = node.sys_brk(*r.proc, 0);
  setup_cost += cur.cost;
  os::Node::SysOut heap = node.sys_brk(*r.proc, cur.addr + brk_bytes);
  HPMMAP_ASSERT(heap.err == Errno::kOk, "heap growth failed at setup");
  setup_cost += heap.cost;
  const Range heap_range{cur.addr, cur.addr + brk_bytes};

  // Arrays are allocated individually (64 MiB chunks), as real codes do;
  // under libhugetlbfs each allocation independently lands in the pool
  // or spills to small pages.
  std::vector<Range> data_chunks;
  std::uint64_t remaining = mmap_bytes;
  while (remaining > 0) {
    const std::uint64_t chunk = std::min<std::uint64_t>(remaining, app.data_chunk_bytes);
    os::Node::SysOut data = node.sys_mmap(*r.proc, chunk, kProtRW,
                                          os::Node::Segment::kHeapData);
    HPMMAP_ASSERT(data.err == Errno::kOk, "data mmap failed at setup");
    setup_cost += data.cost;
    data_chunks.push_back(Range{data.addr, data.addr + chunk});
    remaining -= chunk;
  }
  // For the re-reference probes, use the largest chunk (HPMMAP chunks
  // are separated by guard gaps, so the union is not probe-safe).
  Range data_range{0, 0};
  for (const Range& c : data_chunks) {
    if (c.size() > data_range.size()) {
      data_range = c;
    }
  }

  os::Node::SysOut misc = node.sys_mmap(*r.proc, app.misc_bytes, kProtRW,
                                        os::Node::Segment::kMisc);
  HPMMAP_ASSERT(misc.err == Errno::kOk, "misc mmap failed at setup");
  setup_cost += misc.cost;
  const Range misc_range{misc.addr, misc.addr + app.misc_bytes};

  const Range stack_range{mm::AddressLayout::kStackTop - app.stack_bytes,
                          mm::AddressLayout::kStackTop};

  r.heap_range = heap_range;
  r.data_range = data_range;
  r.touch_queue = {stack_range, misc_range, heap_range};
  r.touch_queue.insert(r.touch_queue.end(), data_chunks.begin(), data_chunks.end());
  r.tq_index = 0;
  r.tq_pos = r.touch_queue.front().begin;

  engine_.schedule(dilated(r, setup_cost), [this, i] { setup_step(i); });
}

void MpiJob::setup_step(std::size_t i) {
  Rank& r = ranks_[i];
  os::Node& node = *r.place.node;
  Cycles cost = 0;
  // Touch up to one slice, then yield so other actors interleave — the
  // quantum is small enough that a khugepaged merge started mid-storm
  // still holds the lock when the next slice faults (the concurrency a
  // real machine has between the daemon and the app).
  while (r.tq_index < r.touch_queue.size() && cost < node.spec().cycles(0.0002)) {
    const Range& region = r.touch_queue[r.tq_index];
    const Addr end = std::min(region.end, r.tq_pos + kTouchSlice);
    cost += node.touch_range(*r.proc, Range{r.tq_pos, end});
    r.tq_pos = end;
    if (r.tq_pos >= region.end) {
      ++r.tq_index;
      if (r.tq_index < r.touch_queue.size()) {
        r.tq_pos = r.touch_queue[r.tq_index].begin;
      }
    }
  }
  if (r.tq_index < r.touch_queue.size()) {
    engine_.schedule(dilated(r, cost), [this, i] { setup_step(i); });
    return;
  }
  // Setup done; enter the iteration loop via the first barrier so ranks
  // start iterating together (MPI_Init + first barrier semantics).
  engine_.schedule(dilated(r, cost), [this, i] { arrive_barrier(i); });
}

void MpiJob::iterate_step(std::size_t i) {
  Rank& r = ranks_[i];
  os::Node& node = *r.place.node;
  const AppProfile& app = config_.app;
  Cycles kernel_cost = 0;

  // Per-iteration temp churn: a fresh buffer is allocated up front, then
  // first-touched *throughout* the compute phase — real codes allocate
  // and write scratch as they go, which is why their fault activity is a
  // steady trickle rather than a per-iteration spike. That steadiness is
  // what lets khugepaged merges collide with faults (Figure 4).
  r.temp_addr = 0;
  r.substep = 0;
  r.substeps = 1;
  if (app.iter_alloc_bytes > 0) {
    os::Node::SysOut tmp =
        node.sys_mmap(*r.proc, app.iter_alloc_bytes, kProtRW, os::Node::Segment::kHeapData);
    if (tmp.err == Errno::kOk) {
      r.temp_addr = tmp.addr;
      kernel_cost += tmp.cost;
      // One substep per ~2 touched pages keeps fault gaps at the few-ms
      // scale the paper's fault traces show.
      const std::uint64_t pages = app.iter_alloc_bytes / kSmallPageSize;
      r.substeps = std::clamp<std::uint64_t>(pages / 2, 1, 512);
    }
  }
  engine_.schedule(dilated(r, kernel_cost), [this, i] { iterate_substep(i); });
}

void MpiJob::iterate_substep(std::size_t i) {
  Rank& r = ranks_[i];
  os::Node& node = *r.place.node;
  const AppProfile& app = config_.app;

  if (r.substep < r.substeps) {
    // One slice of compute plus one slice of scratch first-touch.
    const Cycles cpu_slice = app.cpu_per_iter / r.substeps;
    const auto access_slice =
        static_cast<std::uint64_t>(app.access_rate * static_cast<double>(cpu_slice));
    const Cycles compute = node.compute_burst(*r.proc, cpu_slice, access_slice, app.locality);
    Cycles kernel_cost = 0;
    if (r.temp_addr != 0) {
      const std::uint64_t slice_bytes = app.iter_alloc_bytes / r.substeps;
      const Addr begin = r.temp_addr + r.substep * slice_bytes;
      const Addr end = r.substep + 1 == r.substeps ? r.temp_addr + app.iter_alloc_bytes
                                                   : begin + slice_bytes;
      kernel_cost = node.touch_range(*r.proc, Range{begin, end});
    }
    ++r.substep;
    engine_.schedule(compute + dilated(r, kernel_cost), [this, i] { iterate_substep(i); });
    return;
  }

  Cycles kernel_cost = 0;
  if (r.temp_addr != 0) {
    os::Node::SysOut un = node.sys_munmap(*r.proc, r.temp_addr, app.iter_alloc_bytes);
    kernel_cost += un.cost;
    r.temp_addr = 0;
  }
  // Working-set re-reference: the solver sweeps its arrays every
  // iteration, so any page reclaim swapped out comes back as a major
  // fault now. A resident page probes for free; an evicted one pays the
  // disk read. (HPMMAP memory is never evicted — offlined frames are
  // invisible to reclaim.)
  for (int probe = 0; probe < 64; ++probe) {
    const Range& region = (probe % 2 == 0 && !r.data_range.empty()) ? r.data_range
                                                                    : r.heap_range;
    if (region.empty()) {
      break;
    }
    const Addr va = align_down(
        region.begin + node.rng().uniform(region.size()), kSmallPageSize);
    kernel_cost += node.touch_range(*r.proc, Range{va, va + kSmallPageSize});
  }
  engine_.schedule(dilated(r, kernel_cost), [this, i] { arrive_barrier(i); });
}

void MpiJob::arrive_barrier(std::size_t i) {
  waiting_.push_back(i);
  ++arrived_;
  if (arrived_ == ranks_.size()) {
    if (config_.barrier_hook) {
      config_.barrier_hook(engine_.now());
    } else {
      release_barrier();
    }
  }
}

void MpiJob::release_barrier() {
  const Cycles comm = config_.comm(config_.app, ranks_.size());
  if (external_release(engine_.now() + comm)) {
    engine_.schedule(comm, [this] { finish_job(); });
  }
}

bool MpiJob::external_release(Cycles release_time) {
  arrived_ = 0;
  std::vector<std::size_t> woken;
  woken.swap(waiting_);
  bool all_done = true;
  for (std::size_t i : woken) {
    Rank& r = ranks_[i];
    if (r.iteration < config_.app.iterations) {
      ++r.iteration;
      all_done = false;
      engine_.schedule_at(release_time, [this, i] { iterate_step(i); });
    } else if (!r.finished) {
      r.finished = true;
      r.finish_time = release_time;
      if (trace::on(trace::Category::kApp)) {
        trace::instant(trace::Category::kApp, "rank.finish", r.proc->pid(), r.place.core,
                       {trace::Arg::u64("rank", i),
                        trace::Arg::u64("iterations", r.iteration)});
      }
    }
  }
  return all_done;
}

void MpiJob::external_finish(Cycles finish_time) {
  engine_.schedule_at(finish_time, [this] { finish_job(); });
}

void MpiJob::finish_job() {
  Cycles last = job_start_;
  for (const Rank& r : ranks_) {
    last = std::max(last, r.finish_time);
  }
  runtime_ = last - job_start_;
  final_mix_ = ranks_.front().proc->address_space().mapping_mix();
  // Teardown: processes exit and release their memory (not charged to
  // the reported runtime, matching how the benchmarks time their solve).
  for (Rank& r : ranks_) {
    r.place.node->bandwidth().clear_demand(r.bw);
    r.place.node->exit_process(*r.proc);
  }
  completed_ = true;
  if (on_complete_) {
    on_complete_();
  }
}

mm::FaultStats MpiJob::aggregate_faults() const {
  mm::FaultStats total;
  for (const Rank& r : ranks_) {
    const mm::FaultStats& fs = r.proc->fault_stats();
    for (std::size_t k = 0; k < 4; ++k) {
      total.count[k] += fs.count[k];
      total.total_cycles[k] += fs.total_cycles[k];
    }
  }
  return total;
}

const os::Process& MpiJob::rank_process(std::size_t i) const {
  HPMMAP_ASSERT(i < ranks_.size(), "rank index out of range");
  return *ranks_[i].proc;
}

} // namespace hpmmap::workloads
