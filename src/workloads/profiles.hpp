// Memory/compute/communication profiles of the evaluation's
// applications (§IV-A).
//
// The paper uses the Mantevo mini-apps and LAMMPS as *memory-behaviour
// generators*: what matters to the experiments is each app's footprint
// (weak-scaled so 8 ranks allocate ~12 GB), its allocation pattern
// (one-shot setup vs per-iteration churn), its access locality, and its
// per-iteration synchronization. These profiles encode those traits;
// the numbers are calibrated against the paper's single-node runtimes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace hpmmap::workloads {

struct AppProfile {
  std::string name;

  // --- memory ------------------------------------------------------------
  std::uint64_t bytes_per_rank = 0;    // main arrays, allocated at setup
  std::uint64_t misc_bytes = 0;        // libc/MPI pools (mmap, setup)
  std::uint64_t stack_bytes = 0;       // stack actually touched
  std::uint64_t iter_alloc_bytes = 0;  // temp buffers churned per iteration
  double setup_brk_fraction = 0.7;     // share of main data via brk vs mmap
  std::uint64_t data_chunk_bytes = 64 * 1024 * 1024ull; // per-array mmap granularity

  // --- compute -------------------------------------------------------------
  std::uint64_t iterations = 100;
  Cycles cpu_per_iter = 0;           // on-core work per rank-iteration
  double access_rate = 0.15;         // memory references per cpu cycle
  double locality = 0.95;            // hot-set fraction for the TLB model
  double stream_bytes_per_cycle = 1.0; // DRAM demand per rank during compute

  // --- communication -------------------------------------------------------
  std::uint64_t allreduces_per_iter = 1;
  std::uint64_t halo_bytes_per_iter = 0;
};

/// Conjugate gradient solver; memory-bandwidth bound, tight allreduce
/// every iteration (dot products).
[[nodiscard]] AppProfile hpccg(double clock_hz);
/// Classical molecular dynamics (materials science).
[[nodiscard]] AppProfile comd(double clock_hz);
/// MD force-computation proxy; the paper's Figure 2-4 subject.
[[nodiscard]] AppProfile minimd(double clock_hz);
/// Unstructured implicit finite elements; assembly allocates heavily.
[[nodiscard]] AppProfile minife(double clock_hz);
/// LAMMPS (ASC Sequoia); scaling study only.
[[nodiscard]] AppProfile lammps(double clock_hz);

/// The names profile_by_name accepts, comma-separated (usage strings,
/// error messages).
[[nodiscard]] std::string_view known_profile_names() noexcept;

/// Look up an app profile; nullopt for an unknown name.
[[nodiscard]] std::optional<AppProfile> try_profile_by_name(const std::string& app_name,
                                                            double clock_hz);

/// Look up an app profile. Throws std::invalid_argument naming the
/// unknown app and the known set — callers that can't validate up front
/// (the harness's scaled_profile) get a diagnosable failure instead of a
/// silent fall-through.
[[nodiscard]] AppProfile profile_by_name(const std::string& app_name, double clock_hz);

/// Commodity competition profiles (§IV-B/C). A: one parallel kernel
/// build (8 jobs, throttled to 4 when the app uses 8 cores); B: two
/// builds; C: one 4-job build per node; D: two 4-job builds per node.
struct CommodityProfile {
  std::string name;
  std::uint32_t builds = 1;
  std::uint32_t jobs_per_build = 8;
};

[[nodiscard]] CommodityProfile profile_a(std::uint32_t app_cores);
[[nodiscard]] CommodityProfile profile_b(std::uint32_t app_cores);
[[nodiscard]] CommodityProfile profile_c();
[[nodiscard]] CommodityProfile profile_d();
[[nodiscard]] CommodityProfile no_competition();

} // namespace hpmmap::workloads
