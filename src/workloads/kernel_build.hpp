// The competing commodity workload: a parallel kernel build (§IV-B).
//
// What the experiments need from it is its *interference signature*:
//   - CPU demand from unpinned jobs (the scheduler water-fills it);
//   - free-memory drawdown and buddy fragmentation from short-lived
//     compiler processes that allocate mixed-order blocks and free them
//     in two bursts (working set at job end, leaked holes mid-life);
//   - page-cache growth (sources read, objects written) that keeps every
//     zone hovering at its watermark and gives reclaim dirty blocks;
//   - DRAM bandwidth demand.
//
// Each job slot is an actor: spawn -> allocate -> compute (several
// chunks) -> free a random subset -> compute -> free the rest -> respawn.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "os/node.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::workloads {

struct KernelBuildConfig {
  std::uint32_t jobs = 8;            // parallel make -jN
  double duty_cycle = 0.6;           // CPU share while runnable (I/O waits)
  std::uint64_t mean_job_bytes = 120 * 1024 * 1024ull; // compiler working set
  std::uint64_t cache_bytes_per_job = 96 * 1024 * 1024ull; // page cache growth
  double cache_dirty_fraction = 0.4; // object output needing writeback
  double mean_job_seconds = 1.4;     // one translation unit
  double bw_demand_per_job = 0.5;    // bytes/cycle of DRAM traffic
};

struct KernelBuildStats {
  std::uint64_t jobs_completed = 0;
  std::uint64_t alloc_failures = 0;
  std::uint64_t bytes_churned = 0;
};

class KernelBuild {
 public:
  KernelBuild(os::Node& node, KernelBuildConfig config, Rng rng);
  ~KernelBuild();
  KernelBuild(const KernelBuild&) = delete;
  KernelBuild& operator=(const KernelBuild&) = delete;

  /// Begin the build; runs until stop() (or node teardown).
  void start();
  void stop();

  [[nodiscard]] const KernelBuildStats& stats() const noexcept { return stats_; }

 private:
  friend struct hpmmap::snapshot::Access;

  struct Block {
    ZoneId zone;
    Addr addr;
    unsigned order;
  };
  struct Job {
    std::vector<Block> blocks;
    os::Scheduler::ThreadId sched{};
    hw::BandwidthModel::Consumer bw{};
    ZoneId home = 0;
    unsigned phase = 0;
    sim::EventId pending{};
    bool live = false;
  };

  void spawn_job(std::size_t slot);
  void job_step(std::size_t slot);
  void allocate_working_set(Job& job, std::uint64_t bytes);
  void free_blocks(Job& job, double fraction);
  [[nodiscard]] unsigned sample_order();

  os::Node& node_;
  KernelBuildConfig config_;
  Rng rng_;
  std::vector<Job> jobs_;
  KernelBuildStats stats_;
  bool running_ = false;
};

} // namespace hpmmap::workloads
