#include "workloads/server_app.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "trace/trace.hpp"

namespace hpmmap::workloads {
namespace {

/// Setup first-touch slice (same interleaving rationale as MpiJob).
constexpr std::uint64_t kTouchSlice = 1 * MiB;

/// Deterministic per-request hash for session-probe addresses: derived
/// from the request's own key so every manager probes the same pages
/// (common random numbers), with no RNG state consumed at serve time.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

} // namespace

ServerApp::ServerApp(sim::Engine& engine, os::Node& node, ServerConfig config,
                     std::vector<serving::ScheduledRequest> schedule, Rng rng)
    : engine_(engine),
      node_(node),
      config_(std::move(config)),
      schedule_(std::move(schedule)),
      slo_(config_.budgets),
      latency_(rng.fork("latency")) {
  HPMMAP_ASSERT(config_.workers > 0, "service needs at least one worker");
  HPMMAP_ASSERT(config_.object_count > 0, "service needs an object set");
  workers_.resize(config_.workers);
  objects_.assign(config_.object_count, 0);
  timeout_cycles_ = node_.spec().cycles(config_.queue_timeout_seconds);

  // Zipf popularity: weight 1/rank^s, cumulative and normalized so a
  // uniform draw maps to a rank by binary search.
  zipf_cdf_.resize(config_.object_count);
  double total = 0.0;
  for (std::size_t r = 0; r < config_.object_count; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), config_.zipf_s);
    zipf_cdf_[r] = total;
  }
  for (double& c : zipf_cdf_) {
    c /= total;
  }
}

ServerApp::~ServerApp() = default;

Cycles ServerApp::dilated(const Worker& w, Cycles kernel_cycles) const {
  const double d = node_.scheduler().dilation(w.proc->core());
  return static_cast<Cycles>(static_cast<double>(kernel_cycles) * d);
}

profile::LockWaits ServerApp::lock_waits_now() const noexcept {
  profile::LockWaits lw;
  if (const mm::SmpDomain* smp = node_.smp()) {
    const mm::SmpStats& s = smp->stats();
    lw.mmap_sem = static_cast<std::int64_t>(s.mmap_sem_wait);
    lw.pt = static_cast<std::int64_t>(s.pt_lock_wait);
    lw.zone = static_cast<std::int64_t>(s.zone_lock_wait);
    lw.ipi_stall = static_cast<std::int64_t>(s.ipi_stall);
  }
  return lw;
}

std::size_t ServerApp::zipf_object(std::uint64_t key) const {
  const double u =
      static_cast<double>(key >> 11) * 0x1.0p-53; // top 53 bits -> uniform [0,1)
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  const auto rank = static_cast<std::size_t>(it - zipf_cdf_.begin());
  return std::min(rank, objects_.size() - 1);
}

std::uint64_t ServerApp::request_bytes(double quantile) const {
  const double lo = std::log(static_cast<double>(std::max<std::uint64_t>(config_.request_alloc_min, 1)));
  const double hi = std::log(static_cast<double>(
      std::max(config_.request_alloc_max, config_.request_alloc_min)));
  return static_cast<std::uint64_t>(std::exp(lo + quantile * (hi - lo)));
}

void ServerApp::start(std::function<void()> on_complete) {
  HPMMAP_ASSERT(!started_, "service started twice");
  started_ = true;
  on_complete_ = std::move(on_complete);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    start_worker(w);
  }
}

void ServerApp::start_worker(std::size_t w) {
  Worker& wk = workers_[w];
  // Same split as the HPC rank placement: half the workers on each
  // socket, memory from the local zone.
  const std::uint32_t per_socket = node_.spec().cores_per_socket;
  const std::size_t half = (workers_.size() + 1) / 2;
  const bool second_socket = w >= half && node_.spec().numa_zones > 1;
  const std::size_t idx = second_socket ? w - half : w;
  HPMMAP_ASSERT(idx < per_socket, "more workers than cores per socket half");
  const auto core = static_cast<std::int32_t>(second_socket ? per_socket + idx : idx);
  const ZoneId home = second_socket ? 1 : 0;
  wk.proc = &node_.spawn("srv-w" + std::to_string(w), config_.policy, core,
                         /*duty=*/1.0, mm::AddressSpace::ZonePolicy::kSingle, home);
  wk.slab = std::make_unique<serving::SlabArena>(node_, *wk.proc);

  // The session table: long-lived anonymous memory the worker touches a
  // few pages of per request. Under reclaim pressure the Linux managers
  // can swap parts of it; those probes then pay major faults.
  Cycles cost = 0;
  os::Node::SysOut table = node_.sys_mmap(*wk.proc, config_.session_table_bytes, kProtRW,
                                          os::Node::Segment::kHeapData);
  HPMMAP_ASSERT(table.err == Errno::kOk, "session table mmap failed");
  cost += table.cost;
  wk.session_table = Range{table.addr, table.addr + config_.session_table_bytes};
  wk.setup_pos = wk.session_table.begin;
  engine_.schedule(dilated(wk, cost), [this, w] { worker_setup_step(w); });
}

void ServerApp::worker_setup_step(std::size_t w) {
  Worker& wk = workers_[w];
  Cycles cost = 0;
  while (wk.setup_pos < wk.session_table.end && cost < node_.spec().cycles(0.0002)) {
    const Addr end = std::min(wk.session_table.end, wk.setup_pos + kTouchSlice);
    cost += node_.touch_range(*wk.proc, Range{wk.setup_pos, end});
    wk.setup_pos = end;
  }
  if (wk.setup_pos < wk.session_table.end) {
    engine_.schedule(dilated(wk, cost), [this, w] { worker_setup_step(w); });
    return;
  }
  wk.ready = true;
  ++workers_ready_;
  if (trace::on(trace::Category::kServer)) {
    trace::instant(trace::Category::kServer, "worker.ready", wk.proc->pid(),
                   wk.proc->core(), {trace::Arg::u64("worker", w)});
  }
  if (workers_ready_ == workers_.size()) {
    engine_.schedule(dilated(wk, cost), [this] { on_workers_ready(); });
  }
}

void ServerApp::on_workers_ready() {
  // Populate the served object set in the page cache (a warm content
  // cache at service start). Objects evicted later by kswapd re-enter on
  // their first miss.
  mm::PageCache& cache = node_.memory().cache(config_.zone);
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    if (std::optional<Addr> blk = node_.kernel_alloc(config_.zone, config_.object_order)) {
      cache.adopt(*blk, config_.object_order, /*dirty=*/false);
      objects_[i] = *blk;
    }
  }
  // The schedule replays relative to now: warmup/setup never sheds.
  epoch_ = engine_.now();
  pump_arrivals();
}

void ServerApp::pump_arrivals() {
  if (next_arrival_ >= schedule_.size()) {
    maybe_finish();
    return;
  }
  const std::size_t i = next_arrival_;
  engine_.schedule_at(epoch_ + schedule_[i].arrival, [this, i] {
    ++stats_.offered;
    if (queue_.size() >= config_.queue_depth) {
      ++stats_.shed_queue;
      slo_.on_shed();
      if (trace::on(trace::Category::kServer)) {
        trace::instant(trace::Category::kServer, "req.shed", 0, -1,
                       {trace::Arg::str("reason", "queue_full"),
                        trace::Arg::u64("req", i)});
      }
    } else {
      ++stats_.admitted;
      queue_.push_back(QueuedRequest{i, engine_.now()});
      for (std::size_t w = 0; w < workers_.size(); ++w) {
        if (workers_[w].ready && !workers_[w].busy) {
          workers_[w].busy = true;
          dispatch(w);
          break;
        }
      }
    }
    ++next_arrival_;
    pump_arrivals();
  });
}

void ServerApp::dispatch(std::size_t w) {
  Worker& wk = workers_[w];
  while (!queue_.empty()) {
    QueuedRequest req = queue_.front();
    queue_.pop_front();
    if (timeout_cycles_ > 0 && engine_.now() - req.arrival > timeout_cycles_) {
      // The client gave up while the request sat in the queue; doing the
      // work now would be wasted. Shed and take the next one.
      ++stats_.shed_timeout;
      slo_.on_shed();
      if (trace::on(trace::Category::kServer)) {
        trace::instant(trace::Category::kServer, "req.shed", wk.proc->pid(), wk.proc->core(),
                       {trace::Arg::str("reason", "timeout"),
                        trace::Arg::u64("req", req.index)});
      }
      continue;
    }

    // Phase 1: request parse/build — allocation churn through the slab
    // arena plus session-state touches. The SpanScope stamps every
    // tracepoint fired underneath (slab mmaps, faults, lock waits)
    // with this request's causal span.
    ++in_flight_;
    trace::SpanScope span(static_cast<std::uint32_t>(req.index + 1));
    const serving::ScheduledRequest& sr = schedule_[req.index];
    const std::uint64_t bytes = request_bytes(sr.size_quantile);
    const profile::LockWaits locks_before = profiler_ != nullptr ? lock_waits_now()
                                                                 : profile::LockWaits{};
    serving::SlabArena::Alloc buf = wk.slab->allocate(bytes);
    Cycles cost = buf.cost;
    const std::uint64_t pages = wk.session_table.size() / kSmallPageSize;
    for (std::uint32_t p = 0; p < config_.session_probes && pages > 0; ++p) {
      const std::uint64_t h = splitmix64(sr.object_key ^ (0x100000001b3ull * (p + 1)));
      const Addr va = wk.session_table.begin + (h % pages) * kSmallPageSize;
      cost += node_.touch_range(*wk.proc, Range{va, va + kSmallPageSize});
    }
    const Cycles delay = dilated(wk, cost);
    if (profiler_ != nullptr) {
      const profile::LockWaits after = lock_waits_now();
      profile::LockWaits delta;
      delta.mmap_sem = after.mmap_sem - locks_before.mmap_sem;
      delta.pt = after.pt - locks_before.pt;
      delta.zone = after.zone - locks_before.zone;
      delta.ipi_stall = after.ipi_stall - locks_before.ipi_stall;
      profiler_->on_dispatch(req.index, req.arrival,
                             static_cast<std::int64_t>(engine_.now() - req.arrival),
                             static_cast<std::int64_t>(buf.cost),
                             static_cast<std::int64_t>(cost - buf.cost), delta,
                             static_cast<std::int64_t>(delay) - static_cast<std::int64_t>(cost));
    }
    engine_.schedule(delay, [this, w, req, bytes, buf] {
      serve_phase(w, req, bytes, buf.addr, buf.large);
    });
    return;
  }
  wk.busy = false;
  maybe_finish();
}

bool ServerApp::object_resident(std::size_t idx) {
  mm::PageCache& cache = node_.memory().cache(config_.zone);
  const Addr addr = objects_[idx];
  if (addr != 0) {
    if (std::optional<std::pair<Addr, unsigned>> blk = cache.block_containing(addr)) {
      if (blk->first == addr) {
        return true;
      }
    }
  }
  // Evicted (or never cached): the miss path re-reads it from "disk"
  // into the cache so later requests hit again.
  if (std::optional<Addr> blk = node_.kernel_alloc(config_.zone, config_.object_order)) {
    cache.adopt(*blk, config_.object_order, /*dirty=*/false);
    objects_[idx] = *blk;
  } else {
    objects_[idx] = 0;
  }
  return false;
}

void ServerApp::serve_phase(std::size_t w, QueuedRequest req, std::uint64_t buf_bytes,
                            Addr buf_addr, bool buf_large) {
  Worker& wk = workers_[w];
  const serving::ScheduledRequest& sr = schedule_[req.index];

  // Phase 2: serve the object. Residency decides hit vs miss; the
  // compute burst pays TLB and bandwidth costs under the worker's
  // current mapping mix.
  trace::SpanScope span(static_cast<std::uint32_t>(req.index + 1));
  const std::size_t obj = zipf_object(sr.object_key);
  Cycles wait = 0;
  if (object_resident(obj)) {
    ++stats_.cache_hits;
  } else {
    ++stats_.cache_misses;
    wait += node_.spec().cycles(config_.miss_extra_seconds);
  }
  const auto work =
      static_cast<Cycles>(node_.spec().clock_hz * config_.hit_work_seconds * sr.work_jitter);
  const auto accesses = static_cast<std::uint64_t>(static_cast<double>(work) * 0.15);
  const Cycles compute = node_.compute_burst(*wk.proc, work, accesses, /*locality=*/0.96);

  Cycles kernel_cost = 0;
  if (buf_addr != 0) {
    kernel_cost += wk.slab->free(buf_addr, buf_bytes);
  }
  (void)buf_large;
  const Cycles kernel_delay = dilated(wk, kernel_cost);
  if (profiler_ != nullptr) {
    profiler_->on_serve(req.index, static_cast<std::int64_t>(wait),
                        static_cast<std::int64_t>(work),
                        static_cast<std::int64_t>(compute) - static_cast<std::int64_t>(work),
                        static_cast<std::int64_t>(kernel_cost),
                        static_cast<std::int64_t>(kernel_delay) -
                            static_cast<std::int64_t>(kernel_cost));
  }
  engine_.schedule(wait + compute + kernel_delay, [this, w, req] { finish_request(w, req); });
}

void ServerApp::finish_request(std::size_t w, QueuedRequest req) {
  Worker& wk = workers_[w];
  trace::SpanScope span(static_cast<std::uint32_t>(req.index + 1));
  const Cycles lat = engine_.now() - req.arrival;
  ++stats_.completed;
  --in_flight_;
  slo_.on_complete(lat);
  latency_.add(node_.seconds(lat) * 1e6); // microseconds
  if (profiler_ != nullptr) {
    profiler_->on_finish(req.index, lat);
  }
  if (trace::on(trace::Category::kServer)) {
    trace::complete(trace::Category::kServer, "req", req.arrival, lat, wk.proc->pid(),
                    wk.proc->core(), {trace::Arg::u64("req", req.index)});
  }
  dispatch(w);
}

void ServerApp::maybe_finish() {
  if (completed_ || next_arrival_ < schedule_.size() || !queue_.empty() || in_flight_ > 0) {
    return;
  }
  for (const Worker& wk : workers_) {
    if (wk.busy) {
      return;
    }
  }
  completed_ = true;
  for (Worker& wk : workers_) {
    const serving::SlabStats& s = wk.slab->stats();
    stats_.slab.objects_allocated += s.objects_allocated;
    stats_.slab.objects_recycled += s.objects_recycled;
    stats_.slab.chunks_mapped += s.chunks_mapped;
    stats_.slab.large_allocs += s.large_allocs;
    stats_.slab.bytes_mapped += s.bytes_mapped;
    stats_.slab.alloc_failures += s.alloc_failures;
    wk.slab->release_all();
    node_.exit_process(*wk.proc);
  }
  if (on_complete_) {
    on_complete_();
  }
}

mm::FaultStats ServerApp::aggregate_faults() const {
  mm::FaultStats total;
  for (const Worker& wk : workers_) {
    const mm::FaultStats& fs = wk.proc->fault_stats();
    for (std::size_t k = 0; k < 4; ++k) {
      total.count[k] += fs.count[k];
      total.total_cycles[k] += fs.total_cycles[k];
    }
  }
  return total;
}

} // namespace hpmmap::workloads
