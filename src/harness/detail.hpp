// Shared internals of the experiment harness run shapes.
//
// Everything here used to live in experiment.cpp's anonymous namespace;
// the PDES cluster harness (harness/cluster.cpp) builds per-node worlds
// out of the same pieces — node configuration, §IV rank pinning, profile
// scaling, trace bracketing, result collection, verification session —
// so they moved behind this internal header. Not part of the public
// harness API; include from harness/*.cpp only.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "harness/experiment.hpp"
#include "os/node.hpp"
#include "verify/audit.hpp"
#include "workloads/mpi_app.hpp"

namespace hpmmap::harness::detail {

[[nodiscard]] os::NodeConfig node_config_for(Manager manager, const hw::MachineSpec& machine,
                                             std::uint64_t offline_per_zone,
                                             std::uint64_t seed,
                                             const std::string& node_name);

[[nodiscard]] os::MmPolicy policy_for(Manager manager);

/// §IV pinning: half the ranks on each socket's cores; rank 0 alone
/// takes all memory from one zone.
[[nodiscard]] std::vector<workloads::RankPlacement> placements(os::Node& node,
                                                               std::uint32_t ranks);

[[nodiscard]] workloads::AppProfile scaled_profile(const std::string& app, double clock_hz,
                                                   double footprint_scale,
                                                   double duration_scale);

/// Size and arm this thread's flight recorder for one run. Tracing is
/// per-run-context state; runs bracket it, so this is enough.
void begin_tracing(const TraceConfig& cfg, std::uint64_t seed);

/// Fault kinds round-trip through event args as their display names.
[[nodiscard]] std::optional<mm::FaultKind> kind_from_label(std::string_view label);

/// Per-kind fault distributions from the trace stream when the fault
/// category was recorded (result.events/app_pids must be filled), else
/// from the aggregate counters.
void fill_by_kind(RunResult& result, const TraceConfig& trace_cfg);

/// THP/hugetlb/HPMMAP service counters from the run's first node.
void fill_node_stats(RunResult& result, os::Node& first_node);

/// Full collection for the shared-engine shapes: runtime, faults, pids,
/// run.end + trace snapshot, by-kind summaries, first-node stats.
[[nodiscard]] RunResult collect(workloads::MpiJob& job, os::Node& first_node,
                                const TraceConfig& trace_cfg, Cycles job_start,
                                double clock_hz);

/// Arms a fault injector for one run; the destructor guarantees the next
/// run's node boots against a disarmed injector even if the run throws.
/// The injector is resolved through the thread-local accessor at
/// construction time, so a per-group override installed by the cluster
/// harness makes the session own that group's injector for its lifetime.
class VerifySession {
 public:
  VerifySession(const VerifyConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), inj_(&verify::injector()) {
    if (cfg_.inject.any()) {
      inj_->arm(cfg_.inject, seed);
    }
  }
  ~VerifySession() {
    inj_->set_on_fire(nullptr);
    inj_->disarm();
  }
  VerifySession(const VerifySession&) = delete;
  VerifySession& operator=(const VerifySession&) = delete;

  /// Install the debug-mode hook: audit `node` at every injection
  /// instant (every point fires before mutating state, so the sweep is
  /// over a consistent snapshot).
  void audit_on_fire(os::Node& node) {
    if (!cfg_.audit_on_injection || !cfg_.inject.any()) {
      return;
    }
    inj_->set_on_fire([this, &node](verify::InjectPoint) {
      verify::MmAuditor auditor(node);
      absorb(auditor.run());
    });
  }

  /// The end-of-run audit sweep over `nodes` (when configured), absorbed
  /// into this session's accounting.
  void run_final_audits(const std::vector<os::Node*>& nodes) {
    if (!cfg_.audit) {
      return;
    }
    for (os::Node* node : nodes) {
      verify::MmAuditor auditor(*node);
      absorb(auditor.run());
    }
  }

  [[nodiscard]] bool injecting() const noexcept { return cfg_.inject.any(); }
  [[nodiscard]] const std::array<verify::PointStats, verify::kInjectPointCount>&
  injected_stats() const noexcept {
    return inj_->all_stats();
  }
  [[nodiscard]] std::uint64_t checks() const noexcept { return checks_; }
  [[nodiscard]] std::uint64_t violations() const noexcept { return violations_; }
  [[nodiscard]] const std::string& report() const noexcept { return report_; }
  [[nodiscard]] bool clean() const noexcept { return clean_; }

  /// End-of-run accounting into `result`: injector counters, the final
  /// audit over every node, and whatever the on-fire audits saw.
  /// Templated over the result shape — RunResult and ServerRunResult
  /// share the verification fields.
  template <typename R>
  void finish(R& result, const std::vector<os::Node*>& nodes) {
    if (cfg_.inject.any()) {
      result.injected = inj_->all_stats();
    }
    run_final_audits(nodes);
    result.audit_checks = checks_;
    result.audit_violations = violations_;
    result.audit_report = std::move(report_);
  }

 private:
  void absorb(const verify::AuditReport& rep) {
    checks_ += rep.checks;
    violations_ += rep.violation_count();
    // Keep the first failing summary (a transient mid-run violation must
    // not be hidden by a clean final audit), else the latest clean one.
    if (report_.empty() || (!rep.ok() && clean_)) {
      report_ = rep.summary();
      clean_ = rep.ok();
    }
  }

  const VerifyConfig& cfg_;
  verify::FaultInjector* inj_;
  std::uint64_t checks_ = 0;
  std::uint64_t violations_ = 0;
  std::string report_;
  bool clean_ = true;
};

} // namespace hpmmap::harness::detail
