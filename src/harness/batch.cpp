#include "harness/batch.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace hpmmap::harness {

namespace {

std::atomic<unsigned> g_default_jobs{1};

/// What a trial task returns: enough to fold the SeriesPoint and the
/// perf summary in deterministic t order on the calling thread.
struct TrialOutcome {
  double runtime_seconds = 0.0;
  std::uint64_t events_fired = 0;
  mm::FaultStats faults{};
};

template <typename Config>
RunResult dispatch(const Config& cfg) {
  if constexpr (std::is_same_v<Config, SingleNodeRunConfig>) {
    return run_single_node(cfg);
  } else {
    return run_scaling(cfg);
  }
}

template <typename Config>
std::vector<SeriesPoint> trials_batch(const std::vector<Config>& configs,
                                      std::uint32_t trials, unsigned jobs) {
  std::vector<std::function<TrialOutcome()>> tasks;
  tasks.reserve(configs.size() * trials);
  for (const Config& cfg : configs) {
    for (const std::uint64_t seed : trial_seeds(cfg.seed, trials)) {
      Config trial_cfg = cfg;
      trial_cfg.seed = seed;
      tasks.push_back([trial_cfg]() -> TrialOutcome {
        const RunResult r = dispatch(trial_cfg);
        return TrialOutcome{r.runtime_seconds, r.events_fired, r.faults};
      });
    }
  }
  const std::vector<TrialOutcome> outcomes = BatchRunner(jobs).map(std::move(tasks));
  std::vector<SeriesPoint> points;
  points.reserve(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    RunningStats stats;
    std::uint64_t events = 0;
    SeriesPoint point;
    for (std::uint32_t t = 0; t < trials; ++t) {
      const TrialOutcome& o = outcomes[c * trials + t];
      stats.add(o.runtime_seconds);
      events += o.events_fired;
      for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
        point.fault_counts[k] += o.faults.count[k];
        point.fault_cycles[k] += o.faults.total_cycles[k];
      }
    }
    point.mean_seconds = stats.mean();
    point.stdev_seconds = stats.stdev();
    point.trials = trials;
    point.events = events;
    points.push_back(point);
  }
  return points;
}

template <typename Config>
std::vector<RunResult> batch(const std::vector<Config>& configs, unsigned jobs) {
  std::vector<std::function<RunResult()>> tasks;
  tasks.reserve(configs.size());
  for (const Config& cfg : configs) {
    tasks.push_back([cfg] { return dispatch(cfg); });
  }
  return BatchRunner(jobs).map(std::move(tasks));
}

} // namespace

unsigned hardware_jobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void set_default_jobs(unsigned jobs) noexcept {
  g_default_jobs.store(jobs == 0 ? hardware_jobs() : jobs, std::memory_order_relaxed);
}

unsigned default_jobs() noexcept {
  return g_default_jobs.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t> trial_seeds(std::uint64_t base, std::uint32_t trials) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(trials);
  std::uint64_t s = base;
  for (std::uint32_t t = 0; t < trials; ++t) {
    s = s * 2654435761ull + t + 1;
    seeds.push_back(s);
  }
  return seeds;
}

SeriesPoint run_trials(SingleNodeRunConfig config, std::uint32_t trials, unsigned jobs) {
  return trials_batch(std::vector<SingleNodeRunConfig>{std::move(config)}, trials,
                      jobs)[0];
}

SeriesPoint run_trials(ScalingRunConfig config, std::uint32_t trials, unsigned jobs) {
  return trials_batch(std::vector<ScalingRunConfig>{std::move(config)}, trials, jobs)[0];
}

std::vector<SeriesPoint> run_trials_batch(const std::vector<SingleNodeRunConfig>& configs,
                                          std::uint32_t trials, unsigned jobs) {
  return trials_batch(configs, trials, jobs);
}

std::vector<SeriesPoint> run_trials_batch(const std::vector<ScalingRunConfig>& configs,
                                          std::uint32_t trials, unsigned jobs) {
  return trials_batch(configs, trials, jobs);
}

std::vector<RunResult> run_batch(const std::vector<SingleNodeRunConfig>& configs,
                                 unsigned jobs) {
  return batch(configs, jobs);
}

std::vector<RunResult> run_batch(const std::vector<ScalingRunConfig>& configs,
                                 unsigned jobs) {
  return batch(configs, jobs);
}

std::vector<ServerRunResult> run_server_trials(const ServerRunConfig& config,
                                               std::uint32_t trials, unsigned jobs) {
  std::vector<std::function<ServerRunResult()>> tasks;
  tasks.reserve(trials);
  for (const std::uint64_t seed : trial_seeds(config.seed, trials)) {
    ServerRunConfig trial_cfg = config;
    trial_cfg.seed = seed;
    tasks.push_back([trial_cfg] { return run_server(trial_cfg); });
  }
  return BatchRunner(jobs).map(std::move(tasks));
}

std::vector<ServerRunResult> run_server_batch(const std::vector<ServerRunConfig>& configs,
                                              unsigned jobs) {
  std::vector<std::function<ServerRunResult()>> tasks;
  tasks.reserve(configs.size());
  for (const ServerRunConfig& cfg : configs) {
    tasks.push_back([cfg] { return run_server(cfg); });
  }
  return BatchRunner(jobs).map(std::move(tasks));
}

} // namespace hpmmap::harness
