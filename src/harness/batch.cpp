#include "harness/batch.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace hpmmap::harness {

namespace {

std::atomic<unsigned> g_default_jobs{1};

/// What a trial task returns: enough to fold the SeriesPoint and the
/// perf summary in deterministic t order on the calling thread.
struct TrialOutcome {
  double runtime_seconds = 0.0;
  std::uint64_t events_fired = 0;
  mm::FaultStats faults{};
};

template <typename Config>
RunResult dispatch(const Config& cfg) {
  if constexpr (std::is_same_v<Config, SingleNodeRunConfig>) {
    return run_single_node(cfg);
  } else {
    return run_scaling(cfg);
  }
}

template <typename Config>
std::vector<SeriesPoint> trials_batch(const std::vector<Config>& configs,
                                      std::uint32_t trials, unsigned jobs) {
  std::vector<std::function<TrialOutcome()>> tasks;
  tasks.reserve(configs.size() * trials);
  for (const Config& cfg : configs) {
    for (const std::uint64_t seed : trial_seeds(cfg.seed, trials)) {
      Config trial_cfg = cfg;
      trial_cfg.seed = seed;
      tasks.push_back([trial_cfg]() -> TrialOutcome {
        const RunResult r = dispatch(trial_cfg);
        return TrialOutcome{r.runtime_seconds, r.events_fired, r.faults};
      });
    }
  }
  const std::vector<TrialOutcome> outcomes = BatchRunner(jobs).map(std::move(tasks));
  std::vector<SeriesPoint> points;
  points.reserve(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    RunningStats stats;
    std::uint64_t events = 0;
    SeriesPoint point;
    for (std::uint32_t t = 0; t < trials; ++t) {
      const TrialOutcome& o = outcomes[c * trials + t];
      stats.add(o.runtime_seconds);
      events += o.events_fired;
      for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
        point.fault_counts[k] += o.faults.count[k];
        point.fault_cycles[k] += o.faults.total_cycles[k];
      }
    }
    point.mean_seconds = stats.mean();
    point.stdev_seconds = stats.stdev();
    point.trials = trials;
    point.events = events;
    points.push_back(point);
  }
  return points;
}

bool same_verify(const VerifyConfig& a, const VerifyConfig& b) {
  for (std::size_t i = 0; i < verify::kInjectPointCount; ++i) {
    const verify::PointPlan& p = a.inject.points[i];
    const verify::PointPlan& q = b.inject.points[i];
    if (p.first != q.first || p.period != q.period || p.count != q.count ||
        p.probability != q.probability || p.magnitude != q.magnitude) {
      return false;
    }
  }
  return a.audit == b.audit && a.audit_on_injection == b.audit_on_injection;
}

/// Two single-node configs shape the same pre-measurement world iff
/// every field that acts before the job launches matches (the snapshot
/// contract in experiment.hpp); app, app_cores, duration_scale and
/// introspect only matter after the warmup capture point.
bool same_world(const SingleNodeRunConfig& a, const SingleNodeRunConfig& b) {
  return a.manager == b.manager && a.commodity.builds == b.commodity.builds &&
         a.commodity.jobs_per_build == b.commodity.jobs_per_build &&
         a.seed == b.seed && a.footprint_scale == b.footprint_scale &&
         a.warmup_seconds == b.warmup_seconds &&
         a.trace.categories == b.trace.categories &&
         a.trace.capacity == b.trace.capacity && same_verify(a.verify, b.verify);
}

/// Scaling runs additionally pin the cluster shape; only app and
/// duration_scale act after the capture point (the ranks launch into an
/// already-aged cluster), so those are the free measurement knobs.
bool same_world(const ScalingRunConfig& a, const ScalingRunConfig& b) {
  return a.manager == b.manager && a.commodity.builds == b.commodity.builds &&
         a.commodity.jobs_per_build == b.commodity.jobs_per_build &&
         a.nodes == b.nodes && a.ranks_per_node == b.ranks_per_node &&
         a.seed == b.seed && a.footprint_scale == b.footprint_scale &&
         a.warmup_seconds == b.warmup_seconds &&
         a.trace.categories == b.trace.categories &&
         a.trace.capacity == b.trace.capacity && same_verify(a.verify, b.verify);
}

template <typename Config>
snapshot::WorldImage capture_dispatch(const Config& cfg) {
  if constexpr (std::is_same_v<Config, SingleNodeRunConfig>) {
    return capture_single_node(cfg);
  } else {
    return capture_scaling(cfg);
  }
}

template <typename Config>
RunResult dispatch(const Config& cfg, const snapshot::WorldImage& image) {
  if constexpr (std::is_same_v<Config, SingleNodeRunConfig>) {
    return run_single_node(cfg, image);
  } else {
    return run_scaling(cfg, image);
  }
}

template <typename Config>
std::vector<SeriesPoint> trials_snapshotted(const std::vector<Config>& configs,
                                            std::uint32_t trials, unsigned jobs) {
  // Group configs sharing a pre-measurement world, first-appearance order.
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    bool placed = false;
    for (std::vector<std::size_t>& g : groups) {
      if (same_world(configs[g.front()], configs[i])) {
        g.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) {
      groups.push_back({i});
    }
  }
  // One task per (group, trial): age once, capture, resume every member.
  // Singleton groups run straight — identical output by the resumed-run
  // equality contract, without paying for capture + restore.
  std::vector<std::function<std::vector<TrialOutcome>()>> tasks;
  tasks.reserve(groups.size() * trials);
  for (const std::vector<std::size_t>& g : groups) {
    for (std::uint32_t t = 0; t < trials; ++t) {
      std::vector<Config> members;
      members.reserve(g.size());
      for (const std::size_t idx : g) {
        Config cfg = configs[idx];
        cfg.seed = trial_seeds(cfg.seed, trials)[t];
        members.push_back(std::move(cfg));
      }
      tasks.push_back([members]() {
        std::vector<TrialOutcome> out;
        out.reserve(members.size());
        if (members.size() == 1) {
          const RunResult r = dispatch(members.front());
          out.push_back(TrialOutcome{r.runtime_seconds, r.events_fired, r.faults});
        } else {
          const snapshot::WorldImage image = capture_dispatch(members.front());
          for (const Config& cfg : members) {
            const RunResult r = dispatch(cfg, image);
            out.push_back(TrialOutcome{r.runtime_seconds, r.events_fired, r.faults});
          }
        }
        return out;
      });
    }
  }
  const std::vector<std::vector<TrialOutcome>> outcomes =
      BatchRunner(jobs).map(std::move(tasks));
  // Fold per config with trials in t order — the same accumulation order
  // as run_trials_batch, so the points match bit for bit.
  std::vector<RunningStats> stats(configs.size());
  std::vector<SeriesPoint> points(configs.size());
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    for (std::uint32_t t = 0; t < trials; ++t) {
      const std::vector<TrialOutcome>& row = outcomes[gi * trials + t];
      for (std::size_t m = 0; m < groups[gi].size(); ++m) {
        const std::size_t c = groups[gi][m];
        const TrialOutcome& o = row[m];
        stats[c].add(o.runtime_seconds);
        points[c].events += o.events_fired;
        for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
          points[c].fault_counts[k] += o.faults.count[k];
          points[c].fault_cycles[k] += o.faults.total_cycles[k];
        }
      }
    }
  }
  for (std::size_t c = 0; c < configs.size(); ++c) {
    points[c].mean_seconds = stats[c].mean();
    points[c].stdev_seconds = stats[c].stdev();
    points[c].trials = trials;
  }
  return points;
}

template <typename Config>
std::vector<RunResult> batch(const std::vector<Config>& configs, unsigned jobs) {
  std::vector<std::function<RunResult()>> tasks;
  tasks.reserve(configs.size());
  for (const Config& cfg : configs) {
    tasks.push_back([cfg] { return dispatch(cfg); });
  }
  return BatchRunner(jobs).map(std::move(tasks));
}

} // namespace

unsigned hardware_jobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void set_default_jobs(unsigned jobs) noexcept {
  g_default_jobs.store(jobs == 0 ? hardware_jobs() : jobs, std::memory_order_relaxed);
}

unsigned default_jobs() noexcept {
  return g_default_jobs.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t> trial_seeds(std::uint64_t base, std::uint32_t trials) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(trials);
  std::uint64_t s = base;
  for (std::uint32_t t = 0; t < trials; ++t) {
    s = s * 2654435761ull + t + 1;
    seeds.push_back(s);
  }
  return seeds;
}

SeriesPoint run_trials(SingleNodeRunConfig config, std::uint32_t trials, unsigned jobs) {
  return trials_batch(std::vector<SingleNodeRunConfig>{std::move(config)}, trials,
                      jobs)[0];
}

SeriesPoint run_trials(ScalingRunConfig config, std::uint32_t trials, unsigned jobs) {
  return trials_batch(std::vector<ScalingRunConfig>{std::move(config)}, trials, jobs)[0];
}

std::vector<SeriesPoint> run_trials_batch(const std::vector<SingleNodeRunConfig>& configs,
                                          std::uint32_t trials, unsigned jobs) {
  return trials_batch(configs, trials, jobs);
}

std::vector<SeriesPoint> run_trials_batch(const std::vector<ScalingRunConfig>& configs,
                                          std::uint32_t trials, unsigned jobs) {
  return trials_batch(configs, trials, jobs);
}

std::vector<RunResult> run_batch(const std::vector<SingleNodeRunConfig>& configs,
                                 unsigned jobs) {
  return batch(configs, jobs);
}

std::vector<RunResult> run_batch(const std::vector<ScalingRunConfig>& configs,
                                 unsigned jobs) {
  return batch(configs, jobs);
}

std::vector<ServerRunResult> run_server_trials(const ServerRunConfig& config,
                                               std::uint32_t trials, unsigned jobs) {
  std::vector<std::function<ServerRunResult()>> tasks;
  tasks.reserve(trials);
  for (const std::uint64_t seed : trial_seeds(config.seed, trials)) {
    ServerRunConfig trial_cfg = config;
    trial_cfg.seed = seed;
    tasks.push_back([trial_cfg] { return run_server(trial_cfg); });
  }
  return BatchRunner(jobs).map(std::move(tasks));
}

std::vector<SeriesPoint> run_trials_snapshotted(
    const std::vector<SingleNodeRunConfig>& configs, std::uint32_t trials,
    unsigned jobs) {
  return trials_snapshotted(configs, trials, jobs);
}

std::vector<SeriesPoint> run_trials_snapshotted(
    const std::vector<ScalingRunConfig>& configs, std::uint32_t trials,
    unsigned jobs) {
  return trials_snapshotted(configs, trials, jobs);
}

std::vector<ServerRunResult> run_server_trials_resumed(const ServerRunConfig& config,
                                                       std::uint32_t trials,
                                                       unsigned jobs) {
  std::vector<std::function<ServerRunResult()>> tasks;
  tasks.reserve(trials);
  for (const std::uint64_t seed : trial_seeds(config.seed, trials)) {
    ServerRunConfig trial_cfg = config;
    trial_cfg.seed = seed;
    tasks.push_back([trial_cfg] {
      const snapshot::WorldImage image = capture_server(trial_cfg);
      return run_server(trial_cfg, image);
    });
  }
  return BatchRunner(jobs).map(std::move(tasks));
}

std::vector<ServerRunResult> run_server_batch(const std::vector<ServerRunConfig>& configs,
                                              unsigned jobs) {
  std::vector<std::function<ServerRunResult()>> tasks;
  tasks.reserve(configs.size());
  for (const ServerRunConfig& cfg : configs) {
    tasks.push_back([cfg] { return run_server(cfg); });
  }
  return BatchRunner(jobs).map(std::move(tasks));
}

} // namespace hpmmap::harness
