// Parallel cluster runs: the scaling experiment on per-node engines.
//
// run_scaling() simulates every node of the cluster on one shared event
// engine; fine at the paper's 8 nodes, but a 256-node (1024-rank) run
// serializes hundreds of millions of independent events through a single
// queue. run_cluster() gives every node its own sim::Engine and drives
// them from a sim::ParallelCoordinator worker pool, synchronizing
// conservatively: the BSP job's barrier is the only cross-node coupling,
// so engines run freely between barriers (the rendezvous specialization
// of conservative lookahead — see DESIGN.md §13) and the controller
// resolves each barrier with a single topology-aware collective draw.
//
// Determinism contract:
//   - any --cluster-jobs value (including 1) produces byte-identical
//     RunResults: each node's run context (flight recorder, metrics,
//     fault injector, trace clock) travels with its engine slice, and
//     all inter-phase work is single-threaded on the controller;
//   - at nodes=1 the result is byte-identical to run_scaling() — full
//     bridge to the shared-engine path (trace stream included);
//   - at any node count, runtime/fault tables match run_scaling()
//     exactly under the flat topology at <= 32 nodes: between barriers
//     the per-node event trajectories are independent, so splitting the
//     shared engine per node preserves them.
// One documented divergence: injection call indices count per node
// rather than globally (each group arms its own injector), so injection
// runs are compared per path, not across paths.
#pragma once

#include <cstdint>

#include "cluster/network.hpp"
#include "harness/experiment.hpp"

namespace hpmmap::harness {

struct ClusterRunConfig {
  /// The experiment shape, identical to run_scaling's knobs.
  ScalingRunConfig scaling{};
  /// Interconnect topology for the collectives (kFlat reproduces the
  /// paper's single-switch model; kTree needs power-of-two nodes).
  cluster::Topology topology = cluster::Topology::kFlat;
  /// Worker threads driving the per-node engines; 0 = hardware
  /// concurrency, 1 = the inline deterministic reference.
  unsigned cluster_jobs = 1;
};

/// Run one cluster trial on per-node engines. See the determinism
/// contract above.
[[nodiscard]] RunResult run_cluster(const ClusterRunConfig& config);

/// Trial loop over trial_seeds(scaling.seed, trials), folded exactly like
/// run_trials (mean/stdev of runtime, events and faults summed in trial
/// order). Trials run serially — each trial already spreads its nodes
/// over the cluster_jobs worker pool.
[[nodiscard]] SeriesPoint run_cluster_trials(ClusterRunConfig config, std::uint32_t trials);

} // namespace hpmmap::harness
