#include "harness/table.hpp"

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <fstream>

#include "common/assert.hpp"

namespace hpmmap::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  HPMMAP_ASSERT(cells.size() == headers_.size(), "row width must match headers");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto fmt_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (std::size_t w : widths) {
    sep += std::string(w + 2, '-') + "+";
  }
  sep += "\n";

  std::string out = sep + fmt_row(headers_) + sep;
  for (const auto& row : rows_) {
    out += fmt_row(row);
  }
  out += sep;
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  const auto write_row = [&f](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        f << ',';
      }
      const bool quote = row[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        f << '"';
        for (char ch : row[c]) {
          if (ch == '"') {
            f << '"';
          }
          f << ch;
        }
        f << '"';
      } else {
        f << row[c];
      }
    }
    f << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) {
    write_row(row);
  }
  return static_cast<bool>(f);
}

std::string with_commas(std::uint64_t value) {
  char raw[32];
  std::snprintf(raw, sizeof raw, "%" PRIu64, value);
  std::string s(raw);
  std::string out;
  const std::size_t n = s.size();
  for (std::size_t i = 0; i < n; ++i) {
    out += s[i];
    const std::size_t remaining = n - i - 1;
    if (remaining > 0 && remaining % 3 == 0) {
      out += ',';
    }
  }
  return out;
}

std::string fixed(double value, int decimals) {
  char raw[64];
  std::snprintf(raw, sizeof raw, "%.*f", decimals, value);
  return std::string(raw);
}

} // namespace hpmmap::harness
