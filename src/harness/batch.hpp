// Parallel batch execution for independent simulation runs.
//
// The paper's evaluation is a pile of embarrassingly parallel sweeps —
// Figure 7's co-location grid, Figure 8's 8-node scaling runs, the
// ablation matrices, multi-seed trial loops — yet each simulation is
// strictly single-threaded. BatchRunner fans independent RunConfigs out
// across a fixed worker pool; every run binds the thread-local run
// context (trace registry, metric registry, fault injector, engine
// clock) of the worker it lands on, so runs never share mutable state.
//
// Determinism contract: results are merged in task-submission (seed)
// order, and every task derives its RNG stream from its own config —
// the merged output is byte-identical for any --jobs value, including 1.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"

namespace hpmmap::harness {

/// max(1, std::thread::hardware_concurrency).
[[nodiscard]] unsigned hardware_jobs() noexcept;

/// Process-wide default parallelism used by run_trials(config, trials)
/// and everything layered on it. 0 = hardware_jobs(). The library
/// default is 1 (serial) so embedders opt in; the CLI tools set it from
/// --jobs (whose own default is the hardware concurrency).
void set_default_jobs(unsigned jobs) noexcept;
[[nodiscard]] unsigned default_jobs() noexcept;

class BatchRunner {
 public:
  /// `jobs` == 0 selects hardware_jobs().
  explicit BatchRunner(unsigned jobs = 0)
      : jobs_(jobs == 0 ? hardware_jobs() : jobs) {}

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Run every task on the pool and return the results in task order
  /// (never completion order). The calling thread participates as a
  /// worker. The first task exception (lowest task index) is rethrown
  /// after the pool drains.
  template <typename R>
  std::vector<R> map(std::vector<std::function<R()>> tasks) {
    std::vector<R> results(tasks.size());
    if (tasks.empty()) {
      return results;
    }
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, tasks.size()));
    std::vector<std::exception_ptr> errors(tasks.size());
    if (workers <= 1) {
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        run_one(tasks, results, errors, i);
      }
    } else {
      std::atomic<std::size_t> next{0};
      const auto drain = [&]() noexcept {
        for (std::size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) <
                            tasks.size();) {
          run_one(tasks, results, errors, i);
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(workers - 1);
      for (unsigned w = 1; w < workers; ++w) {
        pool.emplace_back(drain);
      }
      drain();
      for (std::thread& t : pool) {
        t.join();
      }
    }
    for (std::exception_ptr& err : errors) {
      if (err) {
        std::rethrow_exception(err);
      }
    }
    return results;
  }

 private:
  template <typename R>
  static void run_one(std::vector<std::function<R()>>& tasks, std::vector<R>& results,
                      std::vector<std::exception_ptr>& errors, std::size_t i) {
    try {
      results[i] = tasks[i]();
    } catch (...) {
      errors[i] = std::current_exception();
    }
  }

  unsigned jobs_;
};

/// The seed sequence run_trials feeds trial t — the serial recurrence
/// s_{t+1} = s_t * 2654435761 + t + 1, precomputed so trials can run on
/// any thread and still merge byte-identically in t order.
[[nodiscard]] std::vector<std::uint64_t> trial_seeds(std::uint64_t base,
                                                     std::uint32_t trials);

/// Parallel trial loops: identical results to the serial run_trials for
/// every jobs value (0 = hardware).
[[nodiscard]] SeriesPoint run_trials(SingleNodeRunConfig config, std::uint32_t trials,
                                     unsigned jobs);
[[nodiscard]] SeriesPoint run_trials(ScalingRunConfig config, std::uint32_t trials,
                                     unsigned jobs);

/// Whole-sweep fan-out: one SeriesPoint per config, parallelized at
/// (config, trial) granularity so a figure sweep keeps every worker busy
/// even with few trials per point. Output order == input order.
[[nodiscard]] std::vector<SeriesPoint> run_trials_batch(
    const std::vector<SingleNodeRunConfig>& configs, std::uint32_t trials,
    unsigned jobs = 0);
[[nodiscard]] std::vector<SeriesPoint> run_trials_batch(
    const std::vector<ScalingRunConfig>& configs, std::uint32_t trials,
    unsigned jobs = 0);

/// Fan a heterogeneous config list out one-run-per-task; full RunResults
/// (trace buffers included) in input order.
[[nodiscard]] std::vector<RunResult> run_batch(
    const std::vector<SingleNodeRunConfig>& configs, unsigned jobs = 0);
[[nodiscard]] std::vector<RunResult> run_batch(
    const std::vector<ScalingRunConfig>& configs, unsigned jobs = 0);

/// Serving runs fan out the same way: full per-trial results in
/// (config, trial-seed) submission order, byte-identical for any jobs
/// value. Trial t of config c uses trial_seeds(c.seed, trials)[t].
[[nodiscard]] std::vector<ServerRunResult> run_server_trials(
    const ServerRunConfig& config, std::uint32_t trials, unsigned jobs = 0);

/// Amortized-aging sweep (DESIGN.md §12): configs that shape the same
/// pre-measurement world — everything matching except app, app_cores,
/// duration_scale and introspect — are grouped, each group's world is
/// aged ONCE per trial seed and captured, and every member resumes from
/// the captured image for its measurement phase. Singleton groups run
/// straight. Byte-identical SeriesPoints to run_trials_batch for any
/// jobs value; an N-member group pays for aging once instead of N times.
[[nodiscard]] std::vector<SeriesPoint> run_trials_snapshotted(
    const std::vector<SingleNodeRunConfig>& configs, std::uint32_t trials,
    unsigned jobs = 0);
/// Scaling flavour: configs matching in everything but app and
/// duration_scale share one aged cluster per trial (nodes, ranks_per_node
/// and the cluster seed pin the world shape).
[[nodiscard]] std::vector<SeriesPoint> run_trials_snapshotted(
    const std::vector<ScalingRunConfig>& configs, std::uint32_t trials,
    unsigned jobs = 0);

/// run_server_trials through the snapshot path: each trial captures its
/// world at the warmup point and resumes it for measurement. Results are
/// byte-identical to run_server_trials — the equality the serving
/// snapshot test pins.
[[nodiscard]] std::vector<ServerRunResult> run_server_trials_resumed(
    const ServerRunConfig& config, std::uint32_t trials, unsigned jobs = 0);
[[nodiscard]] std::vector<ServerRunResult> run_server_batch(
    const std::vector<ServerRunConfig>& configs, unsigned jobs = 0);

} // namespace hpmmap::harness
