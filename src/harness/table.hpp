// ASCII table / CSV output for the figure-regeneration benchmarks.
#pragma once

#include <string>
#include <vector>

namespace hpmmap::harness {

/// Fixed-width table: set headers, add rows, print. Cells are strings;
/// numeric helpers format the way the paper's tables do.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string to_string() const;
  void print() const;

  /// Write rows as CSV (for replotting) to `path`; returns success.
  bool write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "1,768" style thousands separation (Figure 2/3 use it).
[[nodiscard]] std::string with_commas(std::uint64_t value);
/// Fixed-point with n decimals.
[[nodiscard]] std::string fixed(double value, int decimals);

} // namespace hpmmap::harness
