#include "harness/experiment.hpp"

#include <algorithm>
#include <memory>

#include "cluster/network.hpp"
#include "common/assert.hpp"
#include "common/units.hpp"
#include "os/node.hpp"
#include "sim/engine.hpp"
#include "workloads/kernel_build.hpp"
#include "workloads/mpi_app.hpp"

namespace hpmmap::harness {
namespace {

os::NodeConfig node_config_for(Manager manager, const hw::MachineSpec& machine,
                               std::uint64_t offline_per_zone, std::uint64_t seed,
                               const std::string& node_name) {
  os::NodeConfig cfg;
  cfg.machine = machine;
  cfg.seed = seed;
  cfg.name = node_name;
  switch (manager) {
    case Manager::kThp:
      cfg.thp_enabled = true;
      break;
    case Manager::kHugetlbfs:
      // §IV: "THP was disabled and Linux had no large page support for
      // the commodity workload".
      cfg.thp_enabled = false;
      cfg.hugetlb_pool_per_zone = offline_per_zone;
      break;
    case Manager::kHpmmap: {
      // §IV: "HPMMAP managed the HPC workload while THP managed the
      // commodity workload".
      cfg.thp_enabled = true;
      core::ModuleConfig mod;
      mod.offline_bytes_per_zone = offline_per_zone;
      cfg.hpmmap = mod;
      break;
    }
  }
  return cfg;
}

os::MmPolicy policy_for(Manager manager) {
  switch (manager) {
    case Manager::kThp:       return os::MmPolicy::kLinuxThp;
    case Manager::kHugetlbfs: return os::MmPolicy::kHugetlbfs;
    case Manager::kHpmmap:    return os::MmPolicy::kHpmmap;
  }
  return os::MmPolicy::kLinuxThp;
}

/// §IV pinning: half the ranks on each socket's cores; rank 0 alone
/// takes all memory from one zone.
std::vector<workloads::RankPlacement> placements(os::Node& node, std::uint32_t ranks) {
  std::vector<workloads::RankPlacement> out;
  const std::uint32_t per_socket = node.spec().cores_per_socket;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    workloads::RankPlacement p;
    p.node = &node;
    const bool second_socket = r >= (ranks + 1) / 2;
    const std::uint32_t idx = second_socket ? r - (ranks + 1) / 2 : r;
    HPMMAP_ASSERT(idx < per_socket, "more ranks than cores per socket half");
    p.core = static_cast<std::int32_t>(second_socket ? per_socket + idx : idx);
    p.home_zone = second_socket ? 1 : 0;
    p.zone_policy = ranks == 1 ? mm::AddressSpace::ZonePolicy::kSingle
                               : mm::AddressSpace::ZonePolicy::kInterleave;
    out.push_back(p);
  }
  return out;
}

workloads::AppProfile scaled_profile(const std::string& app, double clock_hz,
                                     double footprint_scale, double duration_scale) {
  workloads::AppProfile prof = workloads::profile_by_name(app, clock_hz);
  prof.bytes_per_rank = align_up(
      static_cast<std::uint64_t>(static_cast<double>(prof.bytes_per_rank) * footprint_scale),
      kLargePageSize);
  prof.misc_bytes = align_up(
      static_cast<std::uint64_t>(static_cast<double>(prof.misc_bytes) * footprint_scale),
      kSmallPageSize);
  prof.iterations = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(prof.iterations) * duration_scale));
  return prof;
}

RunResult collect(workloads::MpiJob& job, os::Node& first_node, bool record_trace,
                  Cycles job_start) {
  RunResult result;
  result.runtime_seconds = job.runtime_seconds();
  result.faults = job.aggregate_faults();
  result.trace_t0 = job_start;

  // Per-kind distributions need per-fault samples: pull them from the
  // rank traces when recording was on.
  if (record_trace) {
    RunningStats stats[4];
    for (std::size_t r = 0; r < job.rank_count(); ++r) {
      for (const os::FaultRecord& rec : job.rank_process(r).trace()) {
        stats[static_cast<std::size_t>(rec.kind)].add(static_cast<double>(rec.cost));
        result.trace.push_back(rec);
      }
    }
    std::sort(result.trace.begin(), result.trace.end(),
              [](const os::FaultRecord& a, const os::FaultRecord& b) { return a.when < b.when; });
    for (std::size_t k = 0; k < 4; ++k) {
      result.by_kind[k].total_faults = stats[k].count();
      result.by_kind[k].avg_cycles = stats[k].mean();
      result.by_kind[k].stdev_cycles = stats[k].stdev();
    }
  } else {
    for (std::size_t k = 0; k < 4; ++k) {
      result.by_kind[k].total_faults = result.faults.count[k];
      result.by_kind[k].avg_cycles =
          result.faults.count[k] > 0
              ? static_cast<double>(result.faults.total_cycles[k]) /
                    static_cast<double>(result.faults.count[k])
              : 0.0;
    }
  }
  if (first_node.thp() != nullptr) {
    result.thp_merges = first_node.thp()->stats().merges_completed;
  }
  if (first_node.hpmmap_module() != nullptr) {
    result.hpmmap_spurious_faults = first_node.hpmmap_module()->stats().spurious_faults;
  }
  return result;
}

} // namespace

RunResult run_single_node(const SingleNodeRunConfig& config) {
  sim::Engine engine;
  const hw::MachineSpec machine = hw::dell_r415();
  // §IV: 12 of 16 GB reserved/offlined, split across the two zones.
  // Scaled-down runs (tests) reserve proportionally less so the Linux
  // side keeps its 4 GB.
  const std::uint64_t pool = std::min<std::uint64_t>(
      align_up(static_cast<std::uint64_t>(static_cast<double>(6 * GiB) *
                                          config.footprint_scale),
               kMemorySectionSize),
      6 * GiB);

  os::Node node(engine,
                node_config_for(config.manager, machine, pool, config.seed, "r415"));

  // Commodity competition.
  std::vector<std::unique_ptr<workloads::KernelBuild>> builds;
  Rng rng(config.seed);
  for (std::uint32_t b = 0; b < config.commodity.builds; ++b) {
    workloads::KernelBuildConfig bc;
    bc.jobs = config.commodity.jobs_per_build;
    builds.push_back(std::make_unique<workloads::KernelBuild>(
        node, bc, rng.fork("build").fork(b)));
    builds.back()->start();
  }
  // Let the builds reach steady state (page cache warm, fragmentation
  // developing) before the benchmark launches.
  const double warmup = config.commodity.builds > 0 ? 1.5 : 0.1;
  engine.run_until(machine.cycles(warmup));

  workloads::MpiJobConfig jc;
  jc.app = scaled_profile(config.app, machine.clock_hz, config.footprint_scale,
                          config.duration_scale);
  jc.policy = policy_for(config.manager);
  jc.ranks = placements(node, config.app_cores);
  jc.record_trace = config.record_trace;
  workloads::MpiJob job(engine, jc);
  const Cycles job_start = engine.now();
  job.start([&engine] { engine.stop(); });
  engine.run();
  HPMMAP_ASSERT(job.done(), "engine drained before the job completed");

  for (auto& build : builds) {
    build->stop();
  }
  return collect(job, node, config.record_trace, job_start);
}

RunResult run_scaling(const ScalingRunConfig& config) {
  sim::Engine engine;
  const hw::MachineSpec machine = hw::sandia_xeon_node();
  // §IV: 20 of 24 GB offlined per node, split across the two zones.
  const std::uint64_t pool = 10 * GiB;

  std::vector<std::unique_ptr<os::Node>> nodes;
  for (std::uint32_t n = 0; n < config.nodes; ++n) {
    nodes.push_back(std::make_unique<os::Node>(
        engine, node_config_for(config.manager, machine, pool,
                                config.seed + 7919ull * n, "xeon" + std::to_string(n))));
  }

  std::vector<std::unique_ptr<workloads::KernelBuild>> builds;
  Rng rng(config.seed);
  for (std::uint32_t n = 0; n < config.nodes; ++n) {
    for (std::uint32_t b = 0; b < config.commodity.builds; ++b) {
      workloads::KernelBuildConfig bc;
      bc.jobs = config.commodity.jobs_per_build;
      builds.push_back(std::make_unique<workloads::KernelBuild>(
          *nodes[n], bc, rng.fork("build").fork(n * 16 + b)));
      builds.back()->start();
    }
  }
  const double warmup = config.commodity.builds > 0 ? 1.5 : 0.1;
  engine.run_until(machine.cycles(warmup));

  workloads::MpiJobConfig jc;
  jc.app = scaled_profile(config.app, machine.clock_hz, config.footprint_scale,
                          config.duration_scale);
  // §IV-C: inputs chosen "to maximize the memory utilization" — on the
  // 24 GB nodes, 4 ranks split the 20 GB reservation, not the single-node
  // footprint.
  const std::uint64_t budget_per_rank =
      (2 * pool * 92 / 100) / config.ranks_per_node - jc.app.misc_bytes;
  jc.app.bytes_per_rank = align_up(
      static_cast<std::uint64_t>(static_cast<double>(budget_per_rank) *
                                 config.footprint_scale),
      kLargePageSize);
  jc.policy = policy_for(config.manager);
  for (std::uint32_t n = 0; n < config.nodes; ++n) {
    for (const workloads::RankPlacement& p : placements(*nodes[n], config.ranks_per_node)) {
      jc.ranks.push_back(p);
    }
  }
  cluster::EthernetSpec eth;
  jc.comm = cluster::ethernet_comm(eth, machine.clock_hz, config.nodes, rng.fork("net"));

  workloads::MpiJob job(engine, jc);
  const Cycles job_start = engine.now();
  job.start([&engine] { engine.stop(); });
  engine.run();
  HPMMAP_ASSERT(job.done(), "engine drained before the job completed");

  for (auto& build : builds) {
    build->stop();
  }
  return collect(job, *nodes.front(), /*record_trace=*/false, job_start);
}

SeriesPoint run_trials(SingleNodeRunConfig config, std::uint32_t trials) {
  RunningStats stats;
  for (std::uint32_t t = 0; t < trials; ++t) {
    config.seed = config.seed * 2654435761ull + t + 1;
    stats.add(run_single_node(config).runtime_seconds);
  }
  return SeriesPoint{stats.mean(), stats.stdev(), trials};
}

SeriesPoint run_trials(ScalingRunConfig config, std::uint32_t trials) {
  RunningStats stats;
  for (std::uint32_t t = 0; t < trials; ++t) {
    config.seed = config.seed * 2654435761ull + t + 1;
    stats.add(run_scaling(config).runtime_seconds);
  }
  return SeriesPoint{stats.mean(), stats.stdev(), trials};
}

} // namespace hpmmap::harness
