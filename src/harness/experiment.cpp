#include "harness/experiment.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "cluster/network.hpp"
#include "harness/batch.hpp"
#include "harness/detail.hpp"
#include "common/assert.hpp"
#include "common/units.hpp"
#include "introspect/procfs.hpp"
#include "os/node.hpp"
#include "sim/engine.hpp"
#include "trace/metrics.hpp"
#include "verify/audit.hpp"
#include "workloads/kernel_build.hpp"
#include "workloads/mpi_app.hpp"
#include "workloads/smp_storm.hpp"

namespace hpmmap::harness {
namespace {

// --- prepared worlds --------------------------------------------------------
//
// Each run shape splits into "prepare" (boot the machine, arm
// verification, construct the commodity builds) and "measure" (launch
// the benchmark and collect). The straight path ages the world to the
// warmup point between the two; the snapshot path either captures at
// that point or skips aging entirely and overwrites the fresh world
// with a captured image. Constructing every build before starting any
// (instead of the old start-in-the-loop) is order-identical on the
// engine: the constructor schedules nothing.

struct SingleNodeWorld {
  SingleNodeRunConfig config;
  hw::MachineSpec machine = hw::dell_r415();
  sim::Engine engine;
  std::optional<os::Node> node;
  std::optional<detail::VerifySession> verify;
  std::vector<std::unique_ptr<workloads::KernelBuild>> builds;

  SingleNodeWorld(const SingleNodeRunConfig& cfg, bool aged) : config(cfg) {
    detail::begin_tracing(config.trace, config.seed);
    // §IV: 12 of 16 GB reserved/offlined, split across the two zones.
    // Scaled-down runs (tests) reserve proportionally less so the Linux
    // side keeps its 4 GB.
    const std::uint64_t pool = std::min<std::uint64_t>(
        align_up(static_cast<std::uint64_t>(static_cast<double>(6 * GiB) *
                                            config.footprint_scale),
                 kMemorySectionSize),
        6 * GiB);
    os::NodeConfig nc =
        detail::node_config_for(config.manager, machine, pool, config.seed, "r415");
    nc.aged_boot = aged; // a restore target skips aging — it gets overwritten
    node.emplace(engine, std::move(nc));
    // Arm only after boot: the hugetlb reservation and module load assert
    // on allocation success and must never see injected failures.
    verify.emplace(config.verify, config.seed);
    verify->audit_on_fire(*node);

    Rng rng(config.seed);
    for (std::uint32_t b = 0; b < config.commodity.builds; ++b) {
      workloads::KernelBuildConfig bc;
      bc.jobs = config.commodity.jobs_per_build;
      builds.push_back(std::make_unique<workloads::KernelBuild>(
          *node, bc, rng.fork("build").fork(b)));
    }
  }

  /// Let the builds reach steady state (page cache warm, fragmentation
  /// developing) before the benchmark launches.
  void age_to_warmup() {
    for (auto& build : builds) {
      build->start();
    }
    const double warmup = config.commodity.builds > 0 ? config.warmup_seconds : 0.1;
    engine.run_until(machine.cycles(warmup));
  }

  [[nodiscard]] std::vector<snapshot::BuildRef> build_refs() {
    std::vector<snapshot::BuildRef> refs;
    for (auto& build : builds) {
      refs.push_back(snapshot::BuildRef{build.get(), 0});
    }
    return refs;
  }
};

RunResult measure_single_node(SingleNodeWorld& w) {
  const SingleNodeRunConfig& config = w.config;
  sim::Engine& engine = w.engine;
  os::Node& node = *w.node;

  workloads::MpiJobConfig jc;
  jc.app = detail::scaled_profile(config.app, w.machine.clock_hz, config.footprint_scale,
                          config.duration_scale);
  jc.policy = detail::policy_for(config.manager);
  jc.ranks = detail::placements(node, config.app_cores);
  workloads::MpiJob job(engine, jc);
  const Cycles job_start = engine.now();
  // Sampling brackets the job: the first sample lands at job_start
  // (= trace_t0), and daemon scheduling means the sampler never extends
  // the run past job completion.
  introspect::TelemetrySampler sampler(
      engine, {config.introspect.sample_interval, config.introspect.max_samples});
  sampler.add_node(node);
  if (config.introspect.sampling()) {
    sampler.start();
  }
  job.start([&engine] { engine.stop(); });
  engine.run();
  HPMMAP_ASSERT(job.done(), "engine drained before the job completed");

  for (auto& build : w.builds) {
    build->stop();
  }
  RunResult result = detail::collect(job, node, config.trace, job_start, w.machine.clock_hz);
  result.events_fired = engine.events_fired();
  result.telemetry = sampler.take();
  if (config.introspect.procfs_dump) {
    result.procfs_text = introspect::procfs_dump(node);
  }
  w.verify->finish(result, {&node});
  return result;
}

struct ScalingWorld {
  ScalingRunConfig config;
  hw::MachineSpec machine = hw::sandia_xeon_node();
  // §IV: 20 of 24 GB offlined per node, split across the two zones.
  std::uint64_t pool = 10 * GiB;
  sim::Engine engine;
  std::vector<std::unique_ptr<os::Node>> nodes;
  std::optional<detail::VerifySession> verify;
  std::vector<std::unique_ptr<workloads::KernelBuild>> builds;
  std::vector<std::uint32_t> build_nodes;

  ScalingWorld(const ScalingRunConfig& cfg, bool aged) : config(cfg) {
    detail::begin_tracing(config.trace, config.seed);
    for (std::uint32_t n = 0; n < config.nodes; ++n) {
      os::NodeConfig nc =
          detail::node_config_for(config.manager, machine, pool, config.seed + 7919ull * n,
                          "xeon" + std::to_string(n));
      nc.aged_boot = aged;
      nodes.push_back(std::make_unique<os::Node>(engine, std::move(nc)));
    }
    verify.emplace(config.verify, config.seed);
    // Debug-mode audits cover the first node (injections are global; the
    // end-of-run audit walks every node).
    verify->audit_on_fire(*nodes.front());

    Rng rng(config.seed);
    for (std::uint32_t n = 0; n < config.nodes; ++n) {
      for (std::uint32_t b = 0; b < config.commodity.builds; ++b) {
        workloads::KernelBuildConfig bc;
        bc.jobs = config.commodity.jobs_per_build;
        builds.push_back(std::make_unique<workloads::KernelBuild>(
            *nodes[n], bc, rng.fork("build").fork(n * 16 + b)));
        build_nodes.push_back(n);
      }
    }
  }

  void age_to_warmup() {
    for (auto& build : builds) {
      build->start();
    }
    const double warmup = config.commodity.builds > 0 ? config.warmup_seconds : 0.1;
    engine.run_until(machine.cycles(warmup));
  }

  [[nodiscard]] std::vector<os::Node*> node_ptrs() {
    std::vector<os::Node*> out;
    for (auto& n : nodes) {
      out.push_back(n.get());
    }
    return out;
  }

  [[nodiscard]] std::vector<snapshot::BuildRef> build_refs() {
    std::vector<snapshot::BuildRef> refs;
    for (std::size_t b = 0; b < builds.size(); ++b) {
      refs.push_back(snapshot::BuildRef{builds[b].get(), build_nodes[b]});
    }
    return refs;
  }
};

RunResult measure_scaling(ScalingWorld& w) {
  const ScalingRunConfig& config = w.config;
  sim::Engine& engine = w.engine;
  Rng rng(config.seed);

  workloads::MpiJobConfig jc;
  jc.app = detail::scaled_profile(config.app, w.machine.clock_hz, config.footprint_scale,
                          config.duration_scale);
  // §IV-C: inputs chosen "to maximize the memory utilization" — on the
  // 24 GB nodes, 4 ranks split the 20 GB reservation, not the single-node
  // footprint.
  const std::uint64_t budget_per_rank =
      (2 * w.pool * 92 / 100) / config.ranks_per_node - jc.app.misc_bytes;
  jc.app.bytes_per_rank = align_up(
      static_cast<std::uint64_t>(static_cast<double>(budget_per_rank) *
                                 config.footprint_scale),
      kLargePageSize);
  jc.policy = detail::policy_for(config.manager);
  for (std::uint32_t n = 0; n < config.nodes; ++n) {
    for (const workloads::RankPlacement& p :
         detail::placements(*w.nodes[n], config.ranks_per_node)) {
      jc.ranks.push_back(p);
    }
  }
  cluster::EthernetSpec eth;
  jc.comm = cluster::ethernet_comm(eth, w.machine.clock_hz, config.nodes, rng.fork("net"));

  workloads::MpiJob job(engine, jc);
  const Cycles job_start = engine.now();
  introspect::TelemetrySampler sampler(
      engine, {config.introspect.sample_interval, config.introspect.max_samples});
  for (auto& n : w.nodes) {
    sampler.add_node(*n);
  }
  if (config.introspect.sampling()) {
    sampler.start();
  }
  job.start([&engine] { engine.stop(); });
  engine.run();
  HPMMAP_ASSERT(job.done(), "engine drained before the job completed");

  for (auto& build : w.builds) {
    build->stop();
  }
  RunResult result =
      detail::collect(job, *w.nodes.front(), config.trace, job_start, w.machine.clock_hz);
  result.events_fired = engine.events_fired();
  result.telemetry = sampler.take();
  if (config.introspect.procfs_dump) {
    for (auto& n : w.nodes) {
      result.procfs_text += introspect::procfs_dump(*n);
    }
  }
  w.verify->finish(result, w.node_ptrs());
  return result;
}

struct ServerWorld {
  ServerRunConfig config;
  hw::MachineSpec machine = hw::dell_r415();
  sim::Engine engine;
  std::optional<os::Node> node;
  std::optional<detail::VerifySession> verify;
  std::vector<std::unique_ptr<workloads::KernelBuild>> builds;

  ServerWorld(const ServerRunConfig& cfg, bool aged) : config(cfg) {
    detail::begin_tracing(config.trace, config.seed);
    // Same reservation split as the single-node runs: the serving side
    // gets the 12 GB pool/offline region, the commodity side keeps 4 GB.
    const std::uint64_t pool = 6 * GiB;
    os::NodeConfig nc =
        detail::node_config_for(config.manager, machine, pool, config.seed, "r415");
    nc.aged_boot = aged;
    node.emplace(engine, std::move(nc));
    verify.emplace(config.verify, config.seed);
    verify->audit_on_fire(*node);

    Rng rng(config.seed);
    for (std::uint32_t b = 0; b < config.commodity.builds; ++b) {
      workloads::KernelBuildConfig bc;
      bc.jobs = config.commodity.jobs_per_build;
      builds.push_back(std::make_unique<workloads::KernelBuild>(
          *node, bc, rng.fork("build").fork(b)));
    }
  }

  void age_to_warmup() {
    for (auto& build : builds) {
      build->start();
    }
    const double warmup = config.commodity.builds > 0 ? config.warmup_seconds : 0.1;
    engine.run_until(machine.cycles(warmup));
  }

  [[nodiscard]] std::vector<snapshot::BuildRef> build_refs() {
    std::vector<snapshot::BuildRef> refs;
    for (auto& build : builds) {
      refs.push_back(snapshot::BuildRef{build.get(), 0});
    }
    return refs;
  }
};

ServerRunResult measure_server(ServerWorld& w) {
  const ServerRunConfig& config = w.config;
  sim::Engine& engine = w.engine;
  os::Node& node = *w.node;
  Rng rng(config.seed);

  // The schedule is generated before anything serves: a pure function of
  // (arrival config, clock, seed), so every manager replays the same one.
  serving::ArrivalConfig arrival = config.arrival;
  arrival.duration_seconds *= config.duration_scale;
  std::vector<serving::ScheduledRequest> schedule =
      serving::generate_schedule(arrival, w.machine.clock_hz, rng.fork("arrival"));

  workloads::ServerConfig service = config.service;
  service.policy = detail::policy_for(config.manager);
  service.zone = 0;
  if (service.budgets.empty()) {
    service.budgets = {
        {"lat<2ms", w.machine.cycles(0.002)},
        {"lat<10ms", w.machine.cycles(0.010)},
    };
  }
  workloads::ServerApp server(engine, node, std::move(service), std::move(schedule),
                              rng.fork("server"));
  profile::RequestProfiler profiler;
  if (config.attribution) {
    server.set_profiler(&profiler);
  }

  const Cycles t0 = engine.now();
  introspect::TelemetrySampler sampler(
      engine, {config.introspect.sample_interval, config.introspect.max_samples});
  sampler.add_node(node);
  // Service-side probes: pure observers on the actor, so sampling stays
  // byte-identical-off-vs-on like every other telemetry source.
  const std::string labels = "node=\"" + node.config().name + "\"";
  sampler.add_probe("hpmmap_server_queue_depth", labels, "gauge",
                    [&server] { return server.queue_depth_now(); });
  sampler.add_probe("hpmmap_server_in_flight", labels, "gauge",
                    [&server] { return server.in_flight_now(); });
  sampler.add_probe("hpmmap_server_shed_total", labels, "counter",
                    [&server] { return server.shed_total(); });
  sampler.add_probe("hpmmap_server_completed_total", labels, "counter",
                    [&server] { return server.completed_total(); });
  if (config.introspect.sampling()) {
    sampler.start();
  }
  server.start([&engine] { engine.stop(); });
  engine.run();
  HPMMAP_ASSERT(server.done(), "engine drained before the service completed");

  for (auto& build : w.builds) {
    build->stop();
  }

  ServerRunResult result;
  result.runtime_seconds = w.machine.seconds(engine.now() - t0);
  result.clock_hz = w.machine.clock_hz;
  result.server = server.stats();
  result.faults = server.aggregate_faults();
  result.trace_t0 = t0;
  result.events_fired = engine.events_fired();

  const serving::LatencyRecorder& lat = server.latency();
  result.tail.p50_us = lat.tails().p50();
  result.tail.p95_us = lat.tails().p95();
  result.tail.p99_us = lat.tails().p99();
  result.tail.p999_us = lat.tails().p999();
  result.tail.exact_p50_us = lat.reservoir().quantile(0.50);
  result.tail.exact_p99_us = lat.reservoir().quantile(0.99);
  result.tail.exact_p999_us = lat.reservoir().quantile(0.999);
  result.tail.mean_us = lat.tails().mean();
  result.tail.max_us = lat.tails().max();
  result.tail.samples = lat.tails().count();

  const serving::SloAccountant& slo = server.slo();
  for (std::size_t i = 0; i < slo.budget_count(); ++i) {
    SloOutcome o;
    o.label = slo.budget(i).label;
    o.budget_us = w.machine.seconds(slo.budget(i).budget) * 1e6;
    o.violations = slo.violations(i);
    result.slo.push_back(std::move(o));
  }
  result.slo_total = slo.total_violations();

  if (config.trace.on()) {
    trace::instant(trace::Category::kHarness, "run.end", 0, -1,
                   {trace::Arg::u64("completed", result.server.completed)});
    trace::disable_all();
    result.events = trace::recorder().snapshot();
    result.trace_dropped = trace::recorder().dropped();
  }
  if (config.attribution) {
    result.attribution = profiler.take();
  }
  result.telemetry = sampler.take();
  if (config.introspect.procfs_dump) {
    result.procfs_text = introspect::procfs_dump(node);
  }
  w.verify->finish(result, {&node});
  return result;
}

} // namespace

std::vector<FaultSample> app_fault_samples(const RunResult& r) {
  std::vector<FaultSample> out;
  for (const trace::Event& e : r.events) {
    if (e.cat != trace::Category::kFault || e.phase != trace::Phase::kComplete ||
        e.name() != "fault") {
      continue;
    }
    if (std::find(r.app_pids.begin(), r.app_pids.end(), e.pid) == r.app_pids.end()) {
      continue;
    }
    FaultSample s;
    s.when = e.ts;
    s.cost = e.dur;
    s.pid = e.pid;
    bool have_kind = false;
    for (std::uint8_t a = 0; a < e.arg_count; ++a) {
      const trace::Arg& arg = e.args[a];
      if (arg.kind == trace::Arg::Kind::kStr && std::string_view{arg.name} == "kind") {
        if (const auto kind = detail::kind_from_label(arg.value.str)) {
          s.kind = *kind;
          have_kind = true;
        }
      }
    }
    if (have_kind) {
      out.push_back(s);
    }
  }
  // The ring holds push order; merges scheduled on the engine interleave,
  // so impose time order (pid breaks ties deterministically).
  std::sort(out.begin(), out.end(), [](const FaultSample& a, const FaultSample& b) {
    return a.when != b.when ? a.when < b.when : a.pid < b.pid;
  });
  return out;
}

RunResult run_single_node(const SingleNodeRunConfig& config) {
  SingleNodeWorld world(config, /*aged=*/true);
  world.age_to_warmup();
  return measure_single_node(world);
}

snapshot::WorldImage capture_single_node(const SingleNodeRunConfig& config) {
  SingleNodeWorld world(config, /*aged=*/true);
  world.age_to_warmup();
  return snapshot::capture_world(world.engine, {&*world.node}, world.build_refs());
}

RunResult run_single_node(const SingleNodeRunConfig& config,
                          const snapshot::WorldImage& image) {
  SingleNodeWorld world(config, /*aged=*/false);
  snapshot::restore_world(image, world.engine, {&*world.node}, world.build_refs());
  return measure_single_node(world);
}

RunResult run_scaling(const ScalingRunConfig& config) {
  ScalingWorld world(config, /*aged=*/true);
  world.age_to_warmup();
  return measure_scaling(world);
}

snapshot::WorldImage capture_scaling(const ScalingRunConfig& config) {
  ScalingWorld world(config, /*aged=*/true);
  world.age_to_warmup();
  return snapshot::capture_world(world.engine, world.node_ptrs(), world.build_refs());
}

RunResult run_scaling(const ScalingRunConfig& config, const snapshot::WorldImage& image) {
  ScalingWorld world(config, /*aged=*/false);
  snapshot::restore_world(image, world.engine, world.node_ptrs(), world.build_refs());
  return measure_scaling(world);
}

ServerRunResult run_server(const ServerRunConfig& config) {
  ServerWorld world(config, /*aged=*/true);
  world.age_to_warmup();
  return measure_server(world);
}

snapshot::WorldImage capture_server(const ServerRunConfig& config) {
  ServerWorld world(config, /*aged=*/true);
  world.age_to_warmup();
  return snapshot::capture_world(world.engine, {&*world.node}, world.build_refs());
}

ServerRunResult run_server(const ServerRunConfig& config,
                           const snapshot::WorldImage& image) {
  ServerWorld world(config, /*aged=*/false);
  snapshot::restore_world(image, world.engine, {&*world.node}, world.build_refs());
  return measure_server(world);
}

std::vector<introspect::TimeSeries> merged_telemetry(const std::vector<RunResult>& runs) {
  std::vector<introspect::TimeSeries> out;
  for (std::size_t t = 0; t < runs.size(); ++t) {
    const std::string trial = "trial=\"" + std::to_string(t) + "\"";
    for (const introspect::TimeSeries& s : runs[t].telemetry) {
      introspect::TimeSeries copy = s;
      copy.labels = s.labels.empty() ? trial : s.labels + "," + trial;
      out.push_back(std::move(copy));
    }
  }
  return out;
}

SmpRunResult run_smp(const SmpRunConfig& config) {
  detail::begin_tracing(config.trace, config.seed);

  hw::MachineSpec machine = hw::dell_r415();
  // Widen the socket grid to the requested core count; the R415's two
  // NUMA zones, clock and bandwidth model stay.
  machine.cores_per_socket = (config.cores + machine.sockets - 1) / machine.sockets;
  if (machine.total_cores() < config.cores) {
    machine.cores_per_socket = config.cores;
    machine.sockets = 1;
  }

  os::NodeConfig nc;
  nc.machine = machine;
  nc.thp_enabled = false; // the storm is a 4K study; THP is PR-orthogonal
  nc.aged_boot = false;   // pristine freelists: contention, not fragmentation
  nc.seed = config.seed;
  nc.name = "smp0";
  if (config.variant == SmpVariant::kHpmmap) {
    nc.hpmmap = core::ModuleConfig{};
  } else {
    mm::SmpConfig sc;
    sc.cores = config.cores;
    const bool modern = config.variant == SmpVariant::kLinuxToday;
    sc.pcp = config.pcp.value_or(modern);
    sc.sharded_pt_locks = config.sharded_pt_locks.value_or(modern);
    sc.batched_shootdowns = config.batched_shootdowns.value_or(modern);
    nc.smp = sc;
  }

  sim::Engine engine;
  os::Node node(engine, std::move(nc));
  detail::VerifySession verify(config.verify, config.seed);
  verify.audit_on_fire(node);

  workloads::SmpStormConfig sc;
  sc.cores = config.cores;
  sc.shared_process = config.variant != SmpVariant::kHpmmap;
  sc.policy = config.variant == SmpVariant::kHpmmap ? os::MmPolicy::kHpmmap
                                                    : os::MmPolicy::kLinuxPlain;
  sc.rounds = config.rounds;
  sc.slab_bytes = config.slab_bytes;
  workloads::SmpStorm storm(engine, node, sc);
  const Cycles t0 = engine.now();
  storm.start([&engine] { engine.stop(); });
  engine.run();
  HPMMAP_ASSERT(storm.done(), "engine drained before the storm completed");

  SmpRunResult result;
  result.cores = config.cores;
  result.pages_touched = storm.pages_touched();
  result.seconds = machine.seconds(storm.span_cycles());
  result.faults_per_sec =
      result.seconds > 0.0 ? static_cast<double>(result.pages_touched) / result.seconds : 0.0;
  result.clock_hz = machine.clock_hz;
  if (node.smp() != nullptr) {
    result.smp = node.smp()->stats();
  }
  result.faults = storm.aggregate_faults();
  result.events_fired = engine.events_fired();
  result.trace_t0 = t0;
  if (config.trace.on()) {
    trace::instant(trace::Category::kHarness, "run.end", 0, -1,
                   {trace::Arg::u64("runtime_cycles", storm.span_cycles())});
    trace::disable_all();
    result.events = trace::recorder().snapshot();
    result.trace_dropped = trace::recorder().dropped();
  }
  verify.finish(result, {&node});
  return result;
}

std::vector<SmpRunResult> run_smp_batch(const std::vector<SmpRunConfig>& configs) {
  BatchRunner runner(default_jobs());
  std::vector<std::function<SmpRunResult()>> tasks;
  tasks.reserve(configs.size());
  for (const SmpRunConfig& c : configs) {
    tasks.push_back([c] { return run_smp(c); });
  }
  return runner.map(std::move(tasks));
}

SeriesPoint run_trials(SingleNodeRunConfig config, std::uint32_t trials) {
  return run_trials(std::move(config), trials, default_jobs());
}

SeriesPoint run_trials(ScalingRunConfig config, std::uint32_t trials) {
  return run_trials(std::move(config), trials, default_jobs());
}

} // namespace hpmmap::harness
