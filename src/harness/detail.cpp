#include "harness/detail.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace hpmmap::harness::detail {

os::NodeConfig node_config_for(Manager manager, const hw::MachineSpec& machine,
                               std::uint64_t offline_per_zone, std::uint64_t seed,
                               const std::string& node_name) {
  os::NodeConfig cfg;
  cfg.machine = machine;
  cfg.seed = seed;
  cfg.name = node_name;
  switch (manager) {
    case Manager::kThp:
      cfg.thp_enabled = true;
      break;
    case Manager::kHugetlbfs:
      // §IV: "THP was disabled and Linux had no large page support for
      // the commodity workload".
      cfg.thp_enabled = false;
      cfg.hugetlb_pool_per_zone = offline_per_zone;
      break;
    case Manager::kHpmmap: {
      // §IV: "HPMMAP managed the HPC workload while THP managed the
      // commodity workload".
      cfg.thp_enabled = true;
      core::ModuleConfig mod;
      mod.offline_bytes_per_zone = offline_per_zone;
      cfg.hpmmap = mod;
      break;
    }
  }
  return cfg;
}

os::MmPolicy policy_for(Manager manager) {
  switch (manager) {
    case Manager::kThp:       return os::MmPolicy::kLinuxThp;
    case Manager::kHugetlbfs: return os::MmPolicy::kHugetlbfs;
    case Manager::kHpmmap:    return os::MmPolicy::kHpmmap;
  }
  return os::MmPolicy::kLinuxThp;
}

std::vector<workloads::RankPlacement> placements(os::Node& node, std::uint32_t ranks) {
  std::vector<workloads::RankPlacement> out;
  const std::uint32_t per_socket = node.spec().cores_per_socket;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    workloads::RankPlacement p;
    p.node = &node;
    const bool second_socket = r >= (ranks + 1) / 2;
    const std::uint32_t idx = second_socket ? r - (ranks + 1) / 2 : r;
    HPMMAP_ASSERT(idx < per_socket, "more ranks than cores per socket half");
    p.core = static_cast<std::int32_t>(second_socket ? per_socket + idx : idx);
    p.home_zone = second_socket ? 1 : 0;
    p.zone_policy = ranks == 1 ? mm::AddressSpace::ZonePolicy::kSingle
                               : mm::AddressSpace::ZonePolicy::kInterleave;
    out.push_back(p);
  }
  return out;
}

workloads::AppProfile scaled_profile(const std::string& app, double clock_hz,
                                     double footprint_scale, double duration_scale) {
  workloads::AppProfile prof = workloads::profile_by_name(app, clock_hz);
  prof.bytes_per_rank = align_up(
      static_cast<std::uint64_t>(static_cast<double>(prof.bytes_per_rank) * footprint_scale),
      kLargePageSize);
  prof.misc_bytes = align_up(
      static_cast<std::uint64_t>(static_cast<double>(prof.misc_bytes) * footprint_scale),
      kSmallPageSize);
  prof.iterations = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(prof.iterations) * duration_scale));
  return prof;
}

void begin_tracing(const TraceConfig& cfg, std::uint64_t seed) {
  // Span stamping is (re)set even when tracing is off so a previous
  // run's flag never leaks into this run context.
  trace::enable_spans(cfg.on() && cfg.spans);
  if (!cfg.on()) {
    return;
  }
  trace::recorder().set_capacity(cfg.capacity);
  trace::metrics().reset();
  trace::enable(cfg.categories);
  trace::instant(trace::Category::kHarness, "run.start", 0, -1,
                 {trace::Arg::u64("seed", seed)});
}

std::optional<mm::FaultKind> kind_from_label(std::string_view label) {
  for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
    const auto kind = static_cast<mm::FaultKind>(k);
    if (label == mm::name(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

void fill_by_kind(RunResult& result, const TraceConfig& trace_cfg) {
  // Per-kind distributions need per-fault samples: reconstruct them from
  // the trace stream when the fault category was recorded.
  const bool fault_traced =
      (trace_cfg.categories & static_cast<std::uint32_t>(trace::Category::kFault)) != 0;
  if (fault_traced) {
    std::array<RunningStats, mm::kFaultKindCount> stats;
    for (const FaultSample& s : app_fault_samples(result)) {
      stats[static_cast<std::size_t>(s.kind)].add(static_cast<double>(s.cost));
    }
    for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
      result.by_kind_summaries[k].total_faults = stats[k].count();
      result.by_kind_summaries[k].avg_cycles = stats[k].mean();
      result.by_kind_summaries[k].stdev_cycles = stats[k].stdev();
    }
  } else {
    for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
      result.by_kind_summaries[k].total_faults = result.faults.count[k];
      result.by_kind_summaries[k].avg_cycles =
          result.faults.count[k] > 0
              ? static_cast<double>(result.faults.total_cycles[k]) /
                    static_cast<double>(result.faults.count[k])
              : 0.0;
    }
  }
}

void fill_node_stats(RunResult& result, os::Node& first_node) {
  if (first_node.thp() != nullptr) {
    result.thp_merges = first_node.thp()->stats().merges_completed;
    result.thp_fault_fallbacks = first_node.thp()->stats().fault_huge_fallback;
    result.thp_merges_aborted = first_node.thp()->stats().merges_aborted;
  }
  if (first_node.hugetlb() != nullptr) {
    result.hugetlb_pool_exhausted = first_node.hugetlb()->stats().pool_exhausted;
  }
  if (first_node.hpmmap_module() != nullptr) {
    result.hpmmap_spurious_faults = first_node.hpmmap_module()->stats().spurious_faults;
  }
}

RunResult collect(workloads::MpiJob& job, os::Node& first_node, const TraceConfig& trace_cfg,
                  Cycles job_start, double clock_hz) {
  RunResult result;
  result.runtime_seconds = job.runtime_seconds();
  result.clock_hz = clock_hz;
  result.faults = job.aggregate_faults();
  result.trace_t0 = job_start;
  for (std::size_t r = 0; r < job.rank_count(); ++r) {
    result.app_pids.push_back(job.rank_process(r).pid());
  }

  if (trace_cfg.on()) {
    trace::instant(trace::Category::kHarness, "run.end", 0, -1,
                   {trace::Arg::u64("runtime_cycles", job.runtime_cycles())});
    trace::disable_all();
    result.events = trace::recorder().snapshot();
    result.trace_dropped = trace::recorder().dropped();
  }

  fill_by_kind(result, trace_cfg);
  fill_node_stats(result, first_node);
  return result;
}

} // namespace hpmmap::harness::detail
