#include "harness/cluster.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "harness/batch.hpp"
#include "harness/detail.hpp"
#include "introspect/procfs.hpp"
#include "introspect/sampler.hpp"
#include "os/node.hpp"
#include "sim/parallel.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "verify/fault_inject.hpp"
#include "workloads/kernel_build.hpp"
#include "workloads/mpi_app.hpp"

namespace hpmmap::harness {
namespace {

/// One node's slice of the distributed world: its engine plus the full
/// per-run context — flight recorder, metric registry, fault injector,
/// trace clock — that enter()/leave() bind to whichever thread executes
/// the slice. The coordinator guarantees a group runs on one thread at a
/// time, so the context needs no locks; binding it per slice is what
/// makes the output independent of --cluster-jobs.
struct NodeGroup {
  sim::Engine engine;
  trace::FlightRecorder recorder{0};
  trace::MetricRegistry metrics;
  verify::FaultInjector injector;
  std::uint32_t trace_mask = 0;
  /// Barrier resolution stamps trace events at the *global* arrival time
  /// while each engine's clock still shows its local arrival; pin_clock
  /// overrides the thread's trace clock with this value.
  Cycles pinned_time = 0;

  std::optional<os::Node> node;
  std::vector<std::unique_ptr<workloads::KernelBuild>> builds;
  std::optional<detail::VerifySession> verify;
  std::optional<workloads::MpiJob> job;
  std::optional<introspect::TelemetrySampler> sampler;

  void enter() {
    trace::set_clock(&NodeGroup::engine_now, &engine);
    trace::set_recorder_override(&recorder);
    trace::set_metrics_override(&metrics);
    verify::set_injector_override(&injector);
    trace::enable(trace_mask);
  }
  void leave() {
    trace::disable_all();
    verify::set_injector_override(nullptr);
    trace::set_metrics_override(nullptr);
    trace::set_recorder_override(nullptr);
    trace::clear_clock(&engine);
    trace::clear_clock(this); // pinned-clock bracket, if one was installed
  }
  void pin_clock(Cycles t) {
    pinned_time = t;
    trace::set_clock(&NodeGroup::pinned, this);
  }

 private:
  static Cycles engine_now(const void* ctx) {
    return static_cast<const sim::Engine*>(ctx)->now();
  }
  static Cycles pinned(const void* ctx) {
    return static_cast<const NodeGroup*>(ctx)->pinned_time;
  }
};

/// RAII context bracket for controller-side work on a group (boot,
/// barrier resolution, collection). Engine slices get the same bracket
/// through the coordinator's GroupHooks instead.
class Bound {
 public:
  explicit Bound(NodeGroup& g) : g_(g) { g_.enter(); }
  Bound(NodeGroup& g, Cycles pinned) : g_(g) {
    g_.enter();
    g_.pin_clock(pinned);
  }
  ~Bound() { g_.leave(); }
  Bound(const Bound&) = delete;
  Bound& operator=(const Bound&) = delete;

 private:
  NodeGroup& g_;
};

struct ClusterWorld {
  ClusterRunConfig config;
  hw::MachineSpec machine = hw::sandia_xeon_node();
  // §IV: 20 of 24 GB offlined per node, split across the two zones.
  std::uint64_t pool = 10 * GiB;
  std::vector<std::unique_ptr<NodeGroup>> groups;
  sim::ParallelCoordinator coord;

  explicit ClusterWorld(const ClusterRunConfig& cfg)
      : config(cfg), coord(cfg.cluster_jobs) {
    const ScalingRunConfig& sc = config.scaling;
    HPMMAP_ASSERT(sc.nodes >= 1, "cluster needs at least one node");
    HPMMAP_ASSERT(cluster::topology_supports(config.topology, sc.nodes),
                  "tree collectives need a power-of-two node count");
    groups.reserve(sc.nodes);
    for (std::uint32_t n = 0; n < sc.nodes; ++n) {
      groups.push_back(std::make_unique<NodeGroup>());
      NodeGroup* g = groups.back().get();
      g->trace_mask = sc.trace.categories;
      coord.add_group(g->engine, {[g] { g->enter(); }, [g] { g->leave(); }});
    }

    // Mirrors detail::begin_tracing: one ring per group, the single
    // run.start instant on node 0's stream (per-group registries are
    // freshly constructed, so no reset is needed).
    if (sc.trace.on()) {
      for (auto& g : groups) {
        g->recorder.set_capacity(sc.trace.capacity);
      }
      Bound b(*groups.front());
      trace::instant(trace::Category::kHarness, "run.start", 0, -1,
                     {trace::Arg::u64("seed", sc.seed)});
    }

    // Boot each node under its own context: boot trace/metrics land in
    // that group, and the group's injector (armed only after boot — boot
    // paths assert on allocation success) is the one its mm stack sees.
    for (std::uint32_t n = 0; n < sc.nodes; ++n) {
      NodeGroup& g = *groups[n];
      Bound b(g);
      os::NodeConfig nc = detail::node_config_for(
          sc.manager, machine, pool, sc.seed + 7919ull * n, "xeon" + std::to_string(n));
      nc.aged_boot = true;
      g.node.emplace(g.engine, std::move(nc));
      g.verify.emplace(sc.verify, sc.seed);
    }
    // Debug-mode audits cover the first node, as in run_scaling.
    groups.front()->verify->audit_on_fire(*groups.front()->node);

    Rng rng(sc.seed);
    for (std::uint32_t n = 0; n < sc.nodes; ++n) {
      NodeGroup& g = *groups[n];
      Bound b(g);
      for (std::uint32_t bld = 0; bld < sc.commodity.builds; ++bld) {
        workloads::KernelBuildConfig bc;
        bc.jobs = sc.commodity.jobs_per_build;
        g.builds.push_back(std::make_unique<workloads::KernelBuild>(
            *g.node, bc, rng.fork("build").fork(n * 16 + bld)));
      }
    }
  }

  void age_to_warmup() {
    for (auto& g : groups) {
      Bound b(*g);
      for (auto& build : g->builds) {
        build->start();
      }
    }
    const double warmup =
        config.scaling.commodity.builds > 0 ? config.scaling.warmup_seconds : 0.1;
    coord.run_phase_until(machine.cycles(warmup));
  }
};

RunResult measure_cluster(ClusterWorld& w) {
  const ScalingRunConfig& sc = w.config.scaling;
  const std::uint32_t nodes = sc.nodes;
  const std::uint64_t total_ranks =
      static_cast<std::uint64_t>(nodes) * sc.ranks_per_node;
  Rng rng(sc.seed);

  // Identical profile arithmetic to measure_scaling (§IV-C rank budget).
  workloads::AppProfile app = detail::scaled_profile(
      sc.app, w.machine.clock_hz, sc.footprint_scale, sc.duration_scale);
  const std::uint64_t budget_per_rank =
      (2 * w.pool * 92 / 100) / sc.ranks_per_node - app.misc_bytes;
  app.bytes_per_rank = align_up(
      static_cast<std::uint64_t>(static_cast<double>(budget_per_rank) *
                                 sc.footprint_scale),
      kLargePageSize);

  cluster::EthernetSpec eth;
  // One comm stream for the whole job, as on the shared engine: the
  // controller draws each barrier's collective cost exactly once.
  workloads::CommModel comm_model = cluster::ethernet_comm(
      eth, w.machine.clock_hz, nodes, rng.fork("net"), w.config.topology);

  // Local barrier arrivals, one slot per group. Each group's hook writes
  // only its own slot from inside its engine slice; the coordinator's
  // phase join publishes the writes to the controller.
  std::vector<Cycles> arrivals(nodes, sim::Engine::kNoEvent);

  const Cycles job_start = w.groups.front()->engine.now();
  for (std::uint32_t n = 0; n < nodes; ++n) {
    NodeGroup& g = *w.groups[n];
    Bound b(g);
    workloads::MpiJobConfig jc;
    jc.app = app;
    jc.policy = detail::policy_for(sc.manager);
    jc.ranks = detail::placements(*g.node, sc.ranks_per_node);
    NodeGroup* gp = &g;
    Cycles* slot = &arrivals[n];
    jc.barrier_hook = [gp, slot](Cycles t) {
      *slot = t;
      gp->engine.stop();
    };
    g.job.emplace(g.engine, std::move(jc));
    g.sampler.emplace(g.engine, introspect::SamplerConfig{sc.introspect.sample_interval,
                                                          sc.introspect.max_samples});
    g.sampler->add_node(*g.node);
    if (sc.introspect.sampling()) {
      g.sampler->start();
    }
    g.job->start([gp] { gp->engine.stop(); });
  }

  // Rendezvous loop: run every engine to its local barrier arrival (the
  // hook stops it), resolve the global barrier single-threaded, repeat.
  // No cross-engine message ever lands behind a destination clock: the
  // release time T + comm is >= the max arrival T >= every local clock
  // (the coordinator asserts this on each delivery regardless).
  while (true) {
    w.coord.run_phase();
    bool all_arrived = true;
    for (const Cycles a : arrivals) {
      if (a == sim::Engine::kNoEvent) {
        all_arrived = false;
        break;
      }
    }
    if (!all_arrived) {
      // No full house: the finish events ran and stopped the engines.
      break;
    }
    Cycles barrier_time = 0;
    for (const Cycles a : arrivals) {
      barrier_time = std::max(barrier_time, a);
    }
    std::fill(arrivals.begin(), arrivals.end(), sim::Engine::kNoEvent);
    // The collective draw runs in node 0's context with the trace clock
    // pinned to the global arrival: net.collective (and the rank.finish
    // instants below) stamp the same timestamp the shared engine would.
    Cycles comm = 0;
    {
      Bound b(*w.groups.front(), barrier_time);
      comm = comm_model(app, total_ranks);
    }
    const Cycles release = barrier_time + comm;
    bool all_done = true;
    for (std::uint32_t n = 0; n < nodes; ++n) {
      Bound b(*w.groups[n], barrier_time);
      if (!w.groups[n]->job->external_release(release)) {
        all_done = false;
      }
    }
    if (all_done) {
      for (std::uint32_t n = 0; n < nodes; ++n) {
        Bound b(*w.groups[n], barrier_time);
        w.groups[n]->job->external_finish(release);
      }
    }
  }
  for (auto& g : w.groups) {
    HPMMAP_ASSERT(g->job->done(), "engines stopped before the job completed");
  }

  for (auto& g : w.groups) {
    Bound b(*g);
    for (auto& build : g->builds) {
      build->stop();
    }
  }

  // Collection: group-order merges everywhere, so the result is one
  // deterministic function of the per-node streams.
  NodeGroup& g0 = *w.groups.front();
  RunResult result;
  result.runtime_seconds = g0.job->runtime_seconds();
  result.clock_hz = w.machine.clock_hz;
  for (auto& g : w.groups) {
    const mm::FaultStats fs = g->job->aggregate_faults();
    for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
      result.faults.count[k] += fs.count[k];
      result.faults.total_cycles[k] += fs.total_cycles[k];
    }
  }
  result.trace_t0 = job_start;
  for (auto& g : w.groups) {
    for (std::size_t r = 0; r < g->job->rank_count(); ++r) {
      result.app_pids.push_back(g->job->rank_process(r).pid());
    }
  }

  if (sc.trace.on()) {
    {
      Bound b(g0);
      trace::instant(trace::Category::kHarness, "run.end", 0, -1,
                     {trace::Arg::u64("runtime_cycles", g0.job->runtime_cycles())});
    }
    for (auto& g : w.groups) {
      const std::vector<trace::Event> events = g->recorder.snapshot();
      result.events.insert(result.events.end(), events.begin(), events.end());
      result.trace_dropped += g->recorder.dropped();
    }
  }
  detail::fill_by_kind(result, sc.trace);
  detail::fill_node_stats(result, *g0.node);
  for (auto& g : w.groups) {
    result.events_fired += g->engine.events_fired();
  }
  for (auto& g : w.groups) {
    std::vector<introspect::TimeSeries> series = g->sampler->take();
    for (introspect::TimeSeries& s : series) {
      result.telemetry.push_back(std::move(s));
    }
  }
  if (sc.introspect.procfs_dump) {
    for (auto& g : w.groups) {
      result.procfs_text += introspect::procfs_dump(*g->node);
    }
  }

  // Verification accounting, merged with run_scaling's first-failure
  // rule applied across groups in node order.
  if (sc.verify.inject.any()) {
    for (auto& g : w.groups) {
      const auto& stats = g->verify->injected_stats();
      for (std::size_t i = 0; i < verify::kInjectPointCount; ++i) {
        result.injected[i].calls += stats[i].calls;
        result.injected[i].fired += stats[i].fired;
      }
    }
  }
  bool clean = true;
  for (auto& g : w.groups) {
    {
      Bound b(*g);
      g->verify->run_final_audits({&*g->node});
    }
    result.audit_checks += g->verify->checks();
    result.audit_violations += g->verify->violations();
    if (result.audit_report.empty() || (!g->verify->clean() && clean)) {
      result.audit_report = g->verify->report();
      clean = g->verify->clean();
    }
  }
  return result;
}

} // namespace

RunResult run_cluster(const ClusterRunConfig& config) {
  ClusterWorld world(config);
  world.age_to_warmup();
  return measure_cluster(world);
}

SeriesPoint run_cluster_trials(ClusterRunConfig config, std::uint32_t trials) {
  RunningStats stats;
  SeriesPoint point;
  for (const std::uint64_t seed : trial_seeds(config.scaling.seed, trials)) {
    ClusterRunConfig trial = config;
    trial.scaling.seed = seed;
    const RunResult r = run_cluster(trial);
    stats.add(r.runtime_seconds);
    point.events += r.events_fired;
    for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
      point.fault_counts[k] += r.faults.count[k];
      point.fault_cycles[k] += r.faults.total_cycles[k];
    }
  }
  point.mean_seconds = stats.mean();
  point.stdev_seconds = stats.stdev();
  point.trials = trials;
  return point;
}

} // namespace hpmmap::harness
