// Experiment harness: builds a configured machine, co-locates an HPC job
// with a commodity profile, runs it to completion on the event engine,
// and reports what the paper's figures report (runtime mean/stdev over
// trials, per-kind fault statistics, fault traces).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "linux_mm/fault.hpp"
#include "os/process.hpp"
#include "workloads/profiles.hpp"

namespace hpmmap::harness {

/// The three memory-manager configurations of §IV: for THP, THP manages
/// both workloads; for HugeTLBfs, pools back the app and THP is off; for
/// HPMMAP, the module backs the app and THP manages the commodity side.
enum class Manager : std::uint8_t { kThp, kHugetlbfs, kHpmmap };

[[nodiscard]] constexpr std::string_view name(Manager m) noexcept {
  switch (m) {
    case Manager::kThp:       return "Linux (THP)";
    case Manager::kHugetlbfs: return "Linux (HugeTLBfs)";
    case Manager::kHpmmap:    return "HPMMAP";
  }
  return "?";
}

struct SingleNodeRunConfig {
  std::string app = "miniMD";
  Manager manager = Manager::kThp;
  workloads::CommodityProfile commodity{};
  std::uint32_t app_cores = 8;
  std::uint64_t seed = 1;
  bool record_trace = false;
  /// Scale the app footprint/iterations (quick modes for tests).
  double footprint_scale = 1.0;
  double duration_scale = 1.0;
};

/// Per-kind fault-cost distribution, as Figure 2/3 tabulates.
struct FaultKindSummary {
  std::uint64_t total_faults = 0;
  double avg_cycles = 0.0;
  double stdev_cycles = 0.0;
};

struct RunResult {
  double runtime_seconds = 0.0;
  mm::FaultStats faults;
  FaultKindSummary by_kind[4]; // indexed by mm::FaultKind
  std::vector<os::FaultRecord> trace; // merged, time-sorted (if recorded)
  Cycles trace_t0 = 0;                // job start, for normalizing trace time
  std::uint64_t thp_merges = 0;
  std::uint64_t hpmmap_spurious_faults = 0;
};

/// Run one single-node trial (Dell R415 model).
[[nodiscard]] RunResult run_single_node(const SingleNodeRunConfig& config);

struct ScalingRunConfig {
  std::string app = "HPCCG";
  Manager manager = Manager::kThp; // HugeTLBfs omitted at scale (§IV-C)
  workloads::CommodityProfile commodity{};
  std::uint32_t nodes = 1;
  std::uint32_t ranks_per_node = 4;
  std::uint64_t seed = 1;
  double footprint_scale = 1.0;
  double duration_scale = 1.0;
};

/// Run one multi-node trial (Sandia Xeon cluster model, 1 GbE).
[[nodiscard]] RunResult run_scaling(const ScalingRunConfig& config);

/// Mean/stdev of runtime over `trials` seeds — one point of Figure 7/8.
struct SeriesPoint {
  double mean_seconds = 0.0;
  double stdev_seconds = 0.0;
  std::uint32_t trials = 0;
};

[[nodiscard]] SeriesPoint run_trials(SingleNodeRunConfig config, std::uint32_t trials);
[[nodiscard]] SeriesPoint run_trials(ScalingRunConfig config, std::uint32_t trials);

} // namespace hpmmap::harness
