// Experiment harness: builds a configured machine, co-locates an HPC job
// with a commodity profile, runs it to completion on the event engine,
// and reports what the paper's figures report (runtime mean/stdev over
// trials, per-kind fault statistics, trace-event streams).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "introspect/sampler.hpp"
#include "linux_mm/fault.hpp"
#include "profile/attribution.hpp"
#include "linux_mm/smp.hpp"
#include "serving/arrival.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/trace.hpp"
#include "verify/fault_inject.hpp"
#include "workloads/profiles.hpp"
#include "workloads/server_app.hpp"

namespace hpmmap::harness {

/// The three memory-manager configurations of §IV: for THP, THP manages
/// both workloads; for HugeTLBfs, pools back the app and THP is off; for
/// HPMMAP, the module backs the app and THP manages the commodity side.
enum class Manager : std::uint8_t { kThp, kHugetlbfs, kHpmmap };

[[nodiscard]] constexpr std::string_view name(Manager m) noexcept {
  switch (m) {
    case Manager::kThp:       return "Linux (THP)";
    case Manager::kHugetlbfs: return "Linux (HugeTLBfs)";
    case Manager::kHpmmap:    return "HPMMAP";
  }
  return "?";
}

/// Tracing setup for a run. The harness owns the global flight recorder
/// for the duration of the run: it sizes and clears the ring, enables the
/// requested categories, and snapshots the buffer into the RunResult
/// before disabling tracing again. Tracing never perturbs results — the
/// instrumentation consumes no randomness and charges no cycles.
struct TraceConfig {
  /// Bitwise OR of trace::Category values; 0 = tracing off.
  std::uint32_t categories = 0;
  /// Flight-recorder ring capacity in events (oldest overwritten beyond).
  std::size_t capacity = std::size_t{1} << 20;
  /// Stamp causal spans (request/actor ids) on emitted events. A pure
  /// observer: off (the default) keeps every export byte-identical to
  /// pre-span builds (DESIGN.md §15).
  bool spans = false;

  [[nodiscard]] bool on() const noexcept { return categories != 0; }
};

/// Verification knobs shared by both run shapes. The harness arms the
/// process-global fault injector after the node(s) boot (boot paths
/// assert on allocation success and must never see injected failures)
/// and disarms it before returning; audits walk every node's mm state.
struct VerifyConfig {
  /// Injection plan for the run; an all-disabled plan leaves the
  /// injector disarmed.
  verify::InjectionPlan inject{};
  /// Run the MmAuditor over every node when the run completes.
  bool audit = false;
  /// Debug mode: additionally audit at the instant of every injected
  /// fault (all injection points fire before mutating state, so the
  /// sweep sees a consistent snapshot).
  bool audit_on_injection = false;
};

/// Introspection knobs shared by both run shapes. Sampling starts at
/// job launch (trace_t0) and reads pure observers only — a sampled run
/// is byte-identical to an unsampled one in every other output (the
/// contract tests/test_introspect.cpp pins). Telemetry rides per-run
/// state, so BatchRunner's submission-order merge keeps `--jobs N`
/// byte-identical too.
struct IntrospectConfig {
  /// Virtual cycles between telemetry samples; 0 = sampling off.
  Cycles sample_interval = 0;
  /// Ring capacity per series (oldest samples overwritten beyond).
  std::size_t max_samples = 4096;
  /// Capture the full procfs view (RunResult::procfs_text) at run end,
  /// before the node is torn down.
  bool procfs_dump = false;

  [[nodiscard]] bool sampling() const noexcept { return sample_interval > 0; }
};

struct SingleNodeRunConfig {
  std::string app = "miniMD";
  Manager manager = Manager::kThp;
  workloads::CommodityProfile commodity{};
  std::uint32_t app_cores = 8;
  std::uint64_t seed = 1;
  TraceConfig trace{};
  /// Scale the app footprint/iterations (quick modes for tests).
  double footprint_scale = 1.0;
  double duration_scale = 1.0;
  /// How long the commodity builds churn before measurement — how deeply
  /// aged the world is at the capture point. Pre-capture state, so the
  /// snapshot contract requires it to match between capture and resume.
  double warmup_seconds = 1.5;
  VerifyConfig verify{};
  IntrospectConfig introspect{};
};

/// Per-kind fault-cost distribution, as Figure 2/3 tabulates.
struct FaultKindSummary {
  std::uint64_t total_faults = 0;
  double avg_cycles = 0.0;
  double stdev_cycles = 0.0;
};

struct RunResult {
  double runtime_seconds = 0.0;
  /// Clock of the simulated machine — converts trace cycles to seconds.
  double clock_hz = 0.0;
  mm::FaultStats faults;
  /// Flight-recorder snapshot for the whole run (warmup included) when
  /// tracing was enabled. Not globally time-sorted: scheduled completions
  /// (khugepaged merges) interleave — sort by ts before plotting.
  std::vector<trace::Event> events;
  std::uint64_t trace_dropped = 0;
  /// Pids of the job's ranks, for filtering app events out of `events`.
  std::vector<Pid> app_pids;
  Cycles trace_t0 = 0; // job start, for normalizing trace time
  std::uint64_t thp_merges = 0;
  std::uint64_t hpmmap_spurious_faults = 0;
  /// Engine events executed over the whole run (warmup included) — the
  /// denominator of the events/sec perf summary.
  std::uint64_t events_fired = 0;

  // --- verification (populated when VerifyConfig enabled any of it) ---
  /// Per-point injector counters for the run (calls seen, faults fired).
  std::array<verify::PointStats, verify::kInjectPointCount> injected{};
  /// Audit totals across the end-of-run audit and any on-injection
  /// audits; `audit_report` is the human-readable summary (the first
  /// failing audit wins so a transient violation is never papered over).
  std::uint64_t audit_checks = 0;
  std::uint64_t audit_violations = 0;
  std::string audit_report;
  /// Fallback/retry counters proving injected failures degraded
  /// gracefully rather than crashing.
  std::uint64_t thp_fault_fallbacks = 0;
  std::uint64_t thp_merges_aborted = 0;
  std::uint64_t hugetlb_pool_exhausted = 0;

  // --- introspection (populated when IntrospectConfig enabled any of it) ---
  /// Telemetry time series sampled over the job (t0 = trace_t0), one
  /// fixed-order block per node. Empty unless sampling was on.
  std::vector<introspect::TimeSeries> telemetry;
  /// Full procfs rendering of every node at run end (before teardown).
  std::string procfs_text;

  [[nodiscard]] std::uint64_t injected_total() const noexcept {
    std::uint64_t total = 0;
    for (const verify::PointStats& s : injected) {
      total += s.fired;
    }
    return total;
  }

  [[nodiscard]] FaultKindSummary& by_kind(mm::FaultKind k) noexcept {
    const auto i = static_cast<std::size_t>(k);
    HPMMAP_ASSERT(i < mm::kFaultKindCount, "fault kind out of range");
    return by_kind_summaries[i];
  }
  [[nodiscard]] const FaultKindSummary& by_kind(mm::FaultKind k) const noexcept {
    const auto i = static_cast<std::size_t>(k);
    HPMMAP_ASSERT(i < mm::kFaultKindCount, "fault kind out of range");
    return by_kind_summaries[i];
  }

  std::array<FaultKindSummary, mm::kFaultKindCount> by_kind_summaries{};
};

/// One app-rank page fault, reconstructed from the trace stream. This is
/// what the Figure 4/5 scatter plots draw.
struct FaultSample {
  Cycles when = 0; // absolute virtual time (subtract RunResult::trace_t0)
  mm::FaultKind kind = mm::FaultKind::kSmall;
  Cycles cost = 0;
  Pid pid = 0;
};

/// Extract the job ranks' "fault" complete-events from `r.events`, sorted
/// by time. Empty unless the run traced Category::kFault.
[[nodiscard]] std::vector<FaultSample> app_fault_samples(const RunResult& r);

/// Run one single-node trial (Dell R415 model).
[[nodiscard]] RunResult run_single_node(const SingleNodeRunConfig& config);

struct ScalingRunConfig {
  std::string app = "HPCCG";
  Manager manager = Manager::kThp; // HugeTLBfs omitted at scale (§IV-C)
  workloads::CommodityProfile commodity{};
  std::uint32_t nodes = 1;
  std::uint32_t ranks_per_node = 4;
  std::uint64_t seed = 1;
  TraceConfig trace{};
  double footprint_scale = 1.0;
  double duration_scale = 1.0;
  /// Build-churn warmup before measurement (pre-capture state; see
  /// SingleNodeRunConfig::warmup_seconds).
  double warmup_seconds = 1.5;
  VerifyConfig verify{};
  IntrospectConfig introspect{};
};

/// Run one multi-node trial (Sandia Xeon cluster model, 1 GbE).
[[nodiscard]] RunResult run_scaling(const ScalingRunConfig& config);

// --- snapshot/resume (DESIGN.md §12) ---------------------------------------
//
// capture_*() boots the configured world, ages it to the warmup quiesce
// point (builds at steady state, page cache warm, freelists fragmented)
// and deep-copies everything into a WorldImage. run_*(config, image)
// boots a structurally identical world with aging skipped, overwrites it
// with the image, and runs the measurement phase — producing a result
// byte-identical to the straight run of the same config.
//
// The resumed config must match the captured one in every field that
// shapes the world before the job launches (manager, commodity profile,
// seed, footprint_scale, warmup_seconds, trace, verify); only the
// measurement-phase fields — app, app_cores, duration_scale, introspect
// — may differ.
// That is what makes aging amortizable: one capture fans out to every
// member of a sweep row (see run_trials_snapshotted in batch.hpp).

[[nodiscard]] snapshot::WorldImage capture_single_node(const SingleNodeRunConfig& config);
[[nodiscard]] RunResult run_single_node(const SingleNodeRunConfig& config,
                                        const snapshot::WorldImage& image);
[[nodiscard]] snapshot::WorldImage capture_scaling(const ScalingRunConfig& config);
[[nodiscard]] RunResult run_scaling(const ScalingRunConfig& config,
                                    const snapshot::WorldImage& image);

/// Mean/stdev of runtime over `trials` seeds — one point of Figure 7/8.
struct SeriesPoint {
  double mean_seconds = 0.0;
  double stdev_seconds = 0.0;
  std::uint32_t trials = 0;
  /// Total engine events executed across the trials (perf summaries).
  std::uint64_t events = 0;
  /// App faults handled across the trials, by kind, with the simulated
  /// mm cycles charged per kind — the per-subsystem cost accounting the
  /// --perf-summary report breaks down.
  std::array<std::uint64_t, mm::kFaultKindCount> fault_counts{};
  std::array<std::uint64_t, mm::kFaultKindCount> fault_cycles{};

  [[nodiscard]] std::uint64_t total_faults() const noexcept {
    std::uint64_t total = 0;
    for (const std::uint64_t n : fault_counts) {
      total += n;
    }
    return total;
  }
};

// --- serving runs ----------------------------------------------------------

/// One serving trial: the request/response service co-located with the
/// commodity profile, driven by an open-loop arrival schedule. The same
/// schedule (seed-determined) replays against every manager — common
/// random numbers, so SLO deltas are manager effects, not luck.
struct ServerRunConfig {
  Manager manager = Manager::kThp;
  workloads::ServerConfig service{}; // policy/zone overwritten from `manager`
  serving::ArrivalConfig arrival{};
  workloads::CommodityProfile commodity{};
  std::uint64_t seed = 1;
  TraceConfig trace{};
  /// Scales the arrival window (quick modes for tests).
  double duration_scale = 1.0;
  /// Build-churn warmup before the open-loop window starts (pre-capture
  /// state; see SingleNodeRunConfig::warmup_seconds).
  double warmup_seconds = 1.5;
  VerifyConfig verify{};
  IntrospectConfig introspect{};
  /// Record the per-request latency decomposition (pure observer; the
  /// result lands in ServerRunResult::attribution).
  bool attribution = false;
};

/// Latency tails in microseconds: streaming P² estimates plus the exact
/// reservoir cross-check (serving/slo.hpp).
struct ServerTailSummary {
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double exact_p50_us = 0.0;
  double exact_p99_us = 0.0;
  double exact_p999_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
  std::uint64_t samples = 0;
};

struct SloOutcome {
  std::string label;
  double budget_us = 0.0;
  std::uint64_t violations = 0;
};

struct ServerRunResult {
  /// Serving window wall time (arrival epoch to last drain).
  double runtime_seconds = 0.0;
  double clock_hz = 0.0;
  workloads::ServerStats server;
  ServerTailSummary tail;
  std::vector<SloOutcome> slo;
  std::uint64_t slo_total = 0; // violations summed over budgets
  mm::FaultStats faults;

  std::vector<trace::Event> events;
  std::uint64_t trace_dropped = 0;
  Cycles trace_t0 = 0;
  std::uint64_t events_fired = 0;

  std::array<verify::PointStats, verify::kInjectPointCount> injected{};
  std::uint64_t audit_checks = 0;
  std::uint64_t audit_violations = 0;
  std::string audit_report;

  std::vector<introspect::TimeSeries> telemetry;
  std::string procfs_text;

  /// Per-request latency decomposition (empty unless
  /// ServerRunConfig::attribution was set).
  profile::TrialAttribution attribution;
};

/// Run one serving trial (Dell R415 model). Budgets default to 2 ms and
/// 10 ms when `config.service.budgets` is empty.
[[nodiscard]] ServerRunResult run_server(const ServerRunConfig& config);

/// Snapshot/resume for serving runs: capture at the warmup quiesce point
/// (before the arrival schedule is generated), resume for measurement.
/// Same matching contract as the single-node pair above.
[[nodiscard]] snapshot::WorldImage capture_server(const ServerRunConfig& config);
[[nodiscard]] ServerRunResult run_server(const ServerRunConfig& config,
                                         const snapshot::WorldImage& image);

// --- SMP contention runs (DESIGN.md §14) ------------------------------------

/// The three fault-path generations the SMP contention bench sweeps:
/// every zone/PT lock mm-wide and every shootdown immediate (the 1999
/// kernel); per-CPU page-frame caches + sharded PT locks + batched
/// shootdowns (today's kernel); and HPMMAP, where per-process
/// management touches no shared Linux lock at all (§III-A).
enum class SmpVariant : std::uint8_t { kLinux1999, kLinuxToday, kHpmmap };

[[nodiscard]] constexpr std::string_view name(SmpVariant v) noexcept {
  switch (v) {
    case SmpVariant::kLinux1999: return "Linux-1999";
    case SmpVariant::kLinuxToday: return "Linux-today";
    case SmpVariant::kHpmmap:    return "HPMMAP";
  }
  return "?";
}

struct SmpRunConfig {
  SmpVariant variant = SmpVariant::kLinuxToday;
  std::uint32_t cores = 4;
  std::uint64_t rounds = 6;
  std::uint64_t slab_bytes = 2 * 1024 * 1024;
  std::uint64_t seed = 1;
  /// Ablation overrides on top of the variant's generation defaults
  /// (ignored for kHpmmap, which runs no SmpDomain).
  std::optional<bool> pcp{};
  std::optional<bool> sharded_pt_locks{};
  std::optional<bool> batched_shootdowns{};
  TraceConfig trace{};
  VerifyConfig verify{};
};

struct SmpRunResult {
  std::uint32_t cores = 0;
  std::uint64_t pages_touched = 0;
  /// Virtual time from storm start to the last worker's finish.
  double seconds = 0.0;
  /// Aggregate demand-fault throughput: pages_touched / seconds.
  double faults_per_sec = 0.0;
  double clock_hz = 0.0;
  /// Lock-wait/pcp/shootdown counters (all zero for kHpmmap).
  mm::SmpStats smp{};
  mm::FaultStats faults;
  std::uint64_t events_fired = 0;

  std::vector<trace::Event> events;
  std::uint64_t trace_dropped = 0;
  Cycles trace_t0 = 0;

  std::array<verify::PointStats, verify::kInjectPointCount> injected{};
  std::uint64_t audit_checks = 0;
  std::uint64_t audit_violations = 0;
  std::string audit_report;
};

/// One SMP fault-storm trial: `cores` worker actors hammer one node's
/// fault path concurrently (Dell R415 model, socket grid widened to
/// `cores`, THP off, pristine boot).
[[nodiscard]] SmpRunResult run_smp(const SmpRunConfig& config);

/// Run a (cores x variant) grid on the batch runner at
/// harness::default_jobs() parallelism. Results come back in config
/// order — byte-identical for any jobs value.
[[nodiscard]] std::vector<SmpRunResult> run_smp_batch(const std::vector<SmpRunConfig>& configs);

/// Trial loops run on the batch runner at harness::default_jobs()
/// parallelism (see harness/batch.hpp; 1 = serial, and any jobs value
/// produces byte-identical points). Explicit-jobs overloads and
/// whole-sweep batch fan-out live in batch.hpp.
[[nodiscard]] SeriesPoint run_trials(SingleNodeRunConfig config, std::uint32_t trials);
[[nodiscard]] SeriesPoint run_trials(ScalingRunConfig config, std::uint32_t trials);

/// Flatten per-trial telemetry into one export-ready stream: each trial's
/// series gain a `trial="N"` label (N = submission index), concatenated in
/// trial order. Because batch trials merge in submission order, the result
/// is byte-identical for any --jobs value once exported.
[[nodiscard]] std::vector<introspect::TimeSeries> merged_telemetry(
    const std::vector<RunResult>& runs);

} // namespace hpmmap::harness
