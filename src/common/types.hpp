// Core vocabulary types: addresses, cycles, ids, page sizes.
#pragma once

#include <compare>
#include <cstdint>
#include <string_view>

#include "common/units.hpp"

namespace hpmmap {

/// Virtual or physical address, always byte-granular.
using Addr = std::uint64_t;

/// Simulated time, in CPU cycles of the node's reference clock.
using Cycles = std::uint64_t;

/// Process identifier within a simulated node.
using Pid = std::uint32_t;

/// NUMA zone index.
using ZoneId = std::uint32_t;

/// Physical frame number (frame = kSmallPageSize bytes).
using Pfn = std::uint64_t;

/// Page sizes a mapping can use. Values are the byte sizes so that
/// `bytes(PageSize)` is a total function and switch statements stay honest.
enum class PageSize : std::uint64_t {
  k4K = kSmallPageSize,
  k2M = kLargePageSize,
  k1G = kHugePageSize,
};

[[nodiscard]] constexpr std::uint64_t bytes(PageSize ps) noexcept {
  return static_cast<std::uint64_t>(ps);
}

[[nodiscard]] constexpr std::string_view name(PageSize ps) noexcept {
  switch (ps) {
    case PageSize::k4K: return "4K";
    case PageSize::k2M: return "2M";
    case PageSize::k1G: return "1G";
  }
  return "?";
}

/// mmap-style protection flags.
enum class Prot : std::uint32_t {
  kNone  = 0,
  kRead  = 1u << 0,
  kWrite = 1u << 1,
  kExec  = 1u << 2,
};

[[nodiscard]] constexpr Prot operator|(Prot a, Prot b) noexcept {
  return static_cast<Prot>(static_cast<std::uint32_t>(a) | static_cast<std::uint32_t>(b));
}
[[nodiscard]] constexpr Prot operator&(Prot a, Prot b) noexcept {
  return static_cast<Prot>(static_cast<std::uint32_t>(a) & static_cast<std::uint32_t>(b));
}
[[nodiscard]] constexpr bool has(Prot flags, Prot bit) noexcept {
  return (flags & bit) != Prot::kNone;
}

inline constexpr Prot kProtRW  = Prot::kRead | Prot::kWrite;
inline constexpr Prot kProtRX  = Prot::kRead | Prot::kExec;
inline constexpr Prot kProtRWX = Prot::kRead | Prot::kWrite | Prot::kExec;

/// Error codes used across the simulated kernel. Mirrors the errno values
/// the real syscalls return so tests can assert on familiar semantics.
enum class Errno : std::int32_t {
  kOk = 0,
  kNoMem,    // ENOMEM
  kInval,    // EINVAL
  kNoEnt,    // ENOENT
  kExist,    // EEXIST
  kFault,    // EFAULT (access to unmapped address)
  kAgain,    // EAGAIN
  kBusy,     // EBUSY
  kPerm,     // EPERM
};

[[nodiscard]] constexpr std::string_view name(Errno e) noexcept {
  switch (e) {
    case Errno::kOk:    return "OK";
    case Errno::kNoMem: return "ENOMEM";
    case Errno::kInval: return "EINVAL";
    case Errno::kNoEnt: return "ENOENT";
    case Errno::kExist: return "EEXIST";
    case Errno::kFault: return "EFAULT";
    case Errno::kAgain: return "EAGAIN";
    case Errno::kBusy:  return "EBUSY";
    case Errno::kPerm:  return "EPERM";
  }
  return "?";
}

/// Half-open byte range [begin, end). The basic currency of VMAs, zones,
/// offlined regions and workload segments.
struct Range {
  Addr begin = 0;
  Addr end = 0;

  [[nodiscard]] constexpr std::uint64_t size() const noexcept { return end - begin; }
  [[nodiscard]] constexpr bool empty() const noexcept { return end <= begin; }
  [[nodiscard]] constexpr bool contains(Addr a) const noexcept { return a >= begin && a < end; }
  [[nodiscard]] constexpr bool contains(const Range& r) const noexcept {
    return r.begin >= begin && r.end <= end;
  }
  [[nodiscard]] constexpr bool overlaps(const Range& r) const noexcept {
    return begin < r.end && r.begin < end;
  }
  constexpr auto operator<=>(const Range&) const = default;
};

[[nodiscard]] constexpr Addr align_down(Addr a, std::uint64_t alignment) noexcept {
  return a & ~(alignment - 1);
}
[[nodiscard]] constexpr Addr align_up(Addr a, std::uint64_t alignment) noexcept {
  return (a + alignment - 1) & ~(alignment - 1);
}
[[nodiscard]] constexpr bool is_aligned(Addr a, std::uint64_t alignment) noexcept {
  return (a & (alignment - 1)) == 0;
}

} // namespace hpmmap
