// Streaming and batch statistics used by the fault traces and the
// experiment harness (every paper figure reports mean and stdev).
#pragma once

#include <cstdint>
#include <vector>

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap {

/// Welford's online mean/variance. Numerically stable for the cycle-count
/// magnitudes involved (up to ~1e13).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator), 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stdev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  friend struct hpmmap::snapshot::Access;

  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch sample set with percentile queries. Used where the figures need
/// distribution shape (fault scatter plots) rather than just moments.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  void reserve(std::size_t n) { xs_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return xs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return xs_.empty(); }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double stdev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double p50() const { return percentile(50.0); }
  [[nodiscard]] double p95() const { return percentile(95.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return xs_; }

 private:
  std::vector<double> xs_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  void ensure_sorted() const;
};

/// Streaming quantile estimate via the P² algorithm (Jain & Chlamtac
/// 1985): five markers, O(1) memory and update. Exact until five samples
/// have been seen; after that the markers track the target quantile with
/// parabolic interpolation. Used by the trace histogram registry, where
/// event volume rules out retaining samples.
class P2Quantile {
 public:
  /// q in (0, 1), e.g. 0.95 for p95.
  explicit P2Quantile(double q);

  void add(double x) noexcept;
  [[nodiscard]] double value() const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }

 private:
  friend struct hpmmap::snapshot::Access;

  double q_;
  std::uint64_t n_ = 0;
  double heights_[5] = {};       // marker heights
  double positions_[5] = {};     // actual marker positions (1-based)
  double desired_[5] = {};       // desired marker positions
  double increments_[5] = {};    // desired-position increments per sample
};

/// The tail-latency quantile set every serving figure reports: p50, p95,
/// p99 and p99.9 tracked by four P² estimators plus exact min/max/mean.
/// O(1) memory, so the request path can afford one per latency stream.
/// The p99.9 marker needs ~5k samples before its P² markers settle;
/// below that the estimate degrades toward the sample max, which is the
/// conservative direction for an SLO report. tests/test_stats.cpp bounds
/// the error against exact sorted samples on heavy-tailed (lognormal)
/// latency distributions.
class TailQuantiles {
 public:
  static constexpr std::size_t kCount = 4;
  /// The tracked quantiles, in reporting order.
  static constexpr double kQuantiles[kCount] = {0.50, 0.95, 0.99, 0.999};
  static constexpr const char* kLabels[kCount] = {"p50", "p95", "p99", "p99.9"};

  TailQuantiles();

  void add(double x) noexcept;
  /// Estimate for kQuantiles[i].
  [[nodiscard]] double value(std::size_t i) const noexcept;
  [[nodiscard]] double p50() const noexcept { return value(0); }
  [[nodiscard]] double p95() const noexcept { return value(1); }
  [[nodiscard]] double p99() const noexcept { return value(2); }
  [[nodiscard]] double p999() const noexcept { return value(3); }
  [[nodiscard]] std::uint64_t count() const noexcept { return stats_.count(); }
  [[nodiscard]] double mean() const noexcept { return stats_.mean(); }
  [[nodiscard]] double min() const noexcept { return stats_.min(); }
  [[nodiscard]] double max() const noexcept { return stats_.max(); }

 private:
  P2Quantile q_[kCount];
  RunningStats stats_;
};

/// Fixed-bucket histogram (log2 buckets) for cheap shape summaries in logs.
class Log2Histogram {
 public:
  void add(std::uint64_t x) noexcept;
  [[nodiscard]] std::uint64_t bucket_count(unsigned bucket) const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  static constexpr unsigned kBuckets = 64;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

} // namespace hpmmap
