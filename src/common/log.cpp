#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace hpmmap {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

constexpr std::string_view level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DBG";
    case LogLevel::kInfo:  return "INF";
    case LogLevel::kWarn:  return "WRN";
    case LogLevel::kError: return "ERR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

} // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

namespace detail {

void vlog_line(LogLevel level, std::string_view subsystem, const char* fmt, std::va_list args) {
  if (level < log_level()) {
    return;
  }
  char message[1024];
  std::vsnprintf(message, sizeof message, fmt, args);
  std::fprintf(stderr, "[%.*s] %.*s: %s\n", static_cast<int>(level_tag(level).size()),
               level_tag(level).data(), static_cast<int>(subsystem.size()), subsystem.data(),
               message);
}

} // namespace detail

#define HPMMAP_DEFINE_LOG_FN(fn_name, level)                                   \
  void fn_name(std::string_view subsystem, const char* fmt, ...) {            \
    std::va_list args;                                                         \
    va_start(args, fmt);                                                       \
    detail::vlog_line((level), subsystem, fmt, args);                          \
    va_end(args);                                                              \
  }

HPMMAP_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
HPMMAP_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
HPMMAP_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
HPMMAP_DEFINE_LOG_FN(log_error, LogLevel::kError)

#undef HPMMAP_DEFINE_LOG_FN

void log(LogLevel level, std::string_view subsystem, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  detail::vlog_line(level, subsystem, fmt, args);
  va_end(args);
}

} // namespace hpmmap
