#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace hpmmap {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// SplitMix64: seed expander recommended by the xoshiro authors.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// FNV-1a for string salts.
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  return h;
}

} // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

Rng Rng::fork(std::uint64_t salt) const noexcept {
  // Mix the full parent state with the salt so sibling forks are
  // decorrelated even for adjacent salts.
  std::uint64_t mixed = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 47);
  std::uint64_t sm = mixed ^ (salt * 0x9e3779b97f4a7c15ull);
  return Rng(splitmix64(sm));
}

Rng Rng::fork(std::string_view salt) const noexcept { return fork(fnv1a(salt)); }

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  if (bound == 0) {
    return 0;
  }
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + uniform(hi - lo + 1);
}

double Rng::uniform_double() noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::normal() noexcept {
  // Box-Muller; guard against log(0).
  double u1 = uniform_double();
  while (u1 <= 0.0) {
    u1 = uniform_double();
  }
  const double u2 = uniform_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stdev) noexcept { return mean + stdev * normal(); }

double Rng::lognormal_from_moments(double mean, double stdev) noexcept {
  if (mean <= 0.0) {
    return 0.0;
  }
  const double cv2 = (stdev / mean) * (stdev / mean);
  const double sigma2 = std::log1p(cv2);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(mu + std::sqrt(sigma2) * normal());
}

double Rng::exponential(double mean) noexcept {
  double u = uniform_double();
  while (u <= 0.0) {
    u = uniform_double();
  }
  return -mean * std::log(u);
}

double Rng::pareto(double minimum, double alpha) noexcept {
  double u = uniform_double();
  while (u <= 0.0) {
    u = uniform_double();
  }
  return minimum / std::pow(u, 1.0 / alpha);
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform_double() < p;
}

} // namespace hpmmap
