// Deterministic random number generation.
//
// Every experiment derives all of its randomness from a single seed via
// independent named streams, so a run is reproducible bit-for-bit and two
// configurations under comparison see the *same* workload randomness
// (common random numbers — the variance reduction used throughout the
// benchmark harness).
#pragma once

#include <cstdint>
#include <string_view>

namespace hpmmap {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded through SplitMix64.
/// Chosen over std::mt19937_64 for speed and a guaranteed stable stream
/// across standard libraries (libstdc++ vs libc++ agree on nothing here).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Derive an independent child stream; `salt` names the consumer
  /// (e.g. per-rank, per-subsystem) so adding a consumer does not perturb
  /// the draws seen by existing ones.
  [[nodiscard]] Rng fork(std::uint64_t salt) const noexcept;
  [[nodiscard]] Rng fork(std::string_view salt) const noexcept;

  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform_double() noexcept;

  /// Standard normal via Box-Muller (no cached spare: keeps the state
  /// a pure function of draw count).
  [[nodiscard]] double normal() noexcept;
  [[nodiscard]] double normal(double mean, double stdev) noexcept;

  /// Lognormal given the mean/stdev of the *resulting* distribution —
  /// the natural parameterization for latency components where the paper
  /// reports sample mean and stdev.
  [[nodiscard]] double lognormal_from_moments(double mean, double stdev) noexcept;

  /// Exponential with the given mean.
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Pareto (heavy tail) with given minimum and shape alpha > 0.
  [[nodiscard]] double pareto(double minimum, double alpha) noexcept;

  /// Bernoulli draw.
  [[nodiscard]] bool chance(double p) noexcept;

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }
  result_type operator()() noexcept { return next_u64(); }

 private:
  std::uint64_t s_[4];
};

} // namespace hpmmap
