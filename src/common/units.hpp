// Size and time unit helpers shared by every module.
#pragma once

#include <cstdint>

namespace hpmmap {

/// Byte-size literals. `4 * MiB` reads better than `4ull << 20`.
inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;

/// x86-64 page sizes. The paper treats 2 MiB as the fundamental HPMMAP
/// allocation unit, with 1 GiB "where supported by hardware" (§III-A).
inline constexpr std::uint64_t kSmallPageSize = 4 * KiB;
inline constexpr std::uint64_t kLargePageSize = 2 * MiB;
inline constexpr std::uint64_t kHugePageSize  = 1 * GiB;

/// Linux memory hot-remove operates on sections of at least 128 MiB
/// (§III-A: "no less than 128MB, and generally much more").
inline constexpr std::uint64_t kMemorySectionSize = 128 * MiB;

inline constexpr std::uint64_t kSmallPagesPerLarge = kLargePageSize / kSmallPageSize; // 512
inline constexpr std::uint64_t kLargePagesPerHuge  = kHugePageSize / kLargePageSize;  // 512

} // namespace hpmmap
