// Minimal leveled logging. The simulated kernel logs like a kernel:
// terse, prefixed, printf-formatted, and off by default except warnings.
#pragma once

#include <cstdarg>
#include <string_view>

namespace hpmmap {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide threshold; benchmarks keep it at kWarn so figure output
/// stays clean, tests may lower it when debugging.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void vlog_line(LogLevel level, std::string_view subsystem, const char* fmt, std::va_list args);
}

#if defined(__GNUC__)
#define HPMMAP_PRINTF(fmt_idx, args_idx) __attribute__((format(printf, fmt_idx, args_idx)))
#else
#define HPMMAP_PRINTF(fmt_idx, args_idx)
#endif

void log(LogLevel level, std::string_view subsystem, const char* fmt, ...) HPMMAP_PRINTF(3, 4);
void log_debug(std::string_view subsystem, const char* fmt, ...) HPMMAP_PRINTF(2, 3);
void log_info(std::string_view subsystem, const char* fmt, ...) HPMMAP_PRINTF(2, 3);
void log_warn(std::string_view subsystem, const char* fmt, ...) HPMMAP_PRINTF(2, 3);
void log_error(std::string_view subsystem, const char* fmt, ...) HPMMAP_PRINTF(2, 3);

} // namespace hpmmap
