// Minimal leveled logging. The simulated kernel logs like a kernel:
// terse, prefixed, printf-formatted, and off by default except warnings.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <string_view>

namespace hpmmap {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide threshold; benchmarks keep it at kWarn so figure output
/// stays clean, tests may lower it when debugging.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void vlog_line(LogLevel level, std::string_view subsystem, const char* fmt, std::va_list args);
}

#if defined(__GNUC__)
#define HPMMAP_PRINTF(fmt_idx, args_idx) __attribute__((format(printf, fmt_idx, args_idx)))
#else
#define HPMMAP_PRINTF(fmt_idx, args_idx)
#endif

void log(LogLevel level, std::string_view subsystem, const char* fmt, ...) HPMMAP_PRINTF(3, 4);
void log_debug(std::string_view subsystem, const char* fmt, ...) HPMMAP_PRINTF(2, 3);
void log_info(std::string_view subsystem, const char* fmt, ...) HPMMAP_PRINTF(2, 3);
void log_warn(std::string_view subsystem, const char* fmt, ...) HPMMAP_PRINTF(2, 3);
void log_error(std::string_view subsystem, const char* fmt, ...) HPMMAP_PRINTF(2, 3);

/// Budget for repetitive warnings (kernel printk_ratelimit idiom): a
/// per-site counter that allows the first `limit` messages and counts
/// the rest, so per-fault warnings cannot flood benchmark output under
/// pathological configs.
class LogLimiter {
 public:
  explicit constexpr LogLimiter(std::uint64_t limit) noexcept : limit_(limit) {}

  /// Counts the call; true while the budget lasts.
  bool allow() noexcept {
    ++calls_;
    return calls_ <= limit_;
  }
  /// True exactly on the first suppressed call — the moment to log a
  /// final "further warnings suppressed" marker.
  [[nodiscard]] bool just_saturated() const noexcept { return calls_ == limit_ + 1; }
  [[nodiscard]] std::uint64_t suppressed() const noexcept {
    return calls_ > limit_ ? calls_ - limit_ : 0;
  }
  [[nodiscard]] std::uint64_t calls() const noexcept { return calls_; }
  void reset() noexcept { calls_ = 0; }

 private:
  std::uint64_t limit_;
  std::uint64_t calls_ = 0;
};

/// Warn through `limiter`; after the budget runs out, logs one
/// suppression marker and then nothing.
#define HPMMAP_LOG_WARN_LIMITED(limiter, subsystem, ...)                          \
  do {                                                                            \
    if ((limiter).allow()) {                                                      \
      ::hpmmap::log_warn(subsystem, __VA_ARGS__);                                 \
    } else if ((limiter).just_saturated()) {                                      \
      ::hpmmap::log_warn(subsystem, "(further warnings from this site suppressed)"); \
    }                                                                             \
  } while (0)

/// Warn at most once per call site for the process lifetime. Atomic so
/// batch-runner worker threads hitting the same site race benignly (at
/// most one wins the exchange and logs).
#define HPMMAP_LOG_WARN_ONCE(subsystem, ...)                                  \
  do {                                                                        \
    static ::std::atomic<bool> hpmmap_warned_once{false};                     \
    if (!hpmmap_warned_once.exchange(true, ::std::memory_order_relaxed)) {    \
      ::hpmmap::log_warn(subsystem, __VA_ARGS__);                             \
    }                                                                         \
  } while (0)

} // namespace hpmmap
