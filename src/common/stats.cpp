#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/assert.hpp"

namespace hpmmap {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stdev() const noexcept { return std::sqrt(variance()); }

void Samples::ensure_sorted() const {
  if (!sorted_valid_ || sorted_.size() != xs_.size()) {
    sorted_ = xs_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::mean() const noexcept {
  if (xs_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double x : xs_) {
    s += x;
  }
  return s / static_cast<double>(xs_.size());
}

double Samples::stdev() const noexcept {
  if (xs_.size() < 2) {
    return 0.0;
  }
  const double m = mean();
  double s2 = 0.0;
  for (double x : xs_) {
    s2 += (x - m) * (x - m);
  }
  return std::sqrt(s2 / static_cast<double>(xs_.size() - 1));
}

double Samples::min() const noexcept {
  return xs_.empty() ? 0.0 : *std::min_element(xs_.begin(), xs_.end());
}

double Samples::max() const noexcept {
  return xs_.empty() ? 0.0 : *std::max_element(xs_.begin(), xs_.end());
}

double Samples::percentile(double p) const {
  HPMMAP_ASSERT(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  if (xs_.empty()) {
    return 0.0;
  }
  ensure_sorted();
  if (sorted_.size() == 1) {
    return sorted_[0];
  }
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) {
    return sorted_.back();
  }
  return sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
}

void Log2Histogram::add(std::uint64_t x) noexcept {
  const unsigned bucket = x == 0 ? 0 : static_cast<unsigned>(std::bit_width(x) - 1);
  ++buckets_[bucket < kBuckets ? bucket : kBuckets - 1];
  ++total_;
}

std::uint64_t Log2Histogram::bucket_count(unsigned bucket) const noexcept {
  return bucket < kBuckets ? buckets_[bucket] : 0;
}

} // namespace hpmmap
