#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/assert.hpp"

namespace hpmmap {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stdev() const noexcept { return std::sqrt(variance()); }

void Samples::ensure_sorted() const {
  if (!sorted_valid_ || sorted_.size() != xs_.size()) {
    sorted_ = xs_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::mean() const noexcept {
  if (xs_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double x : xs_) {
    s += x;
  }
  return s / static_cast<double>(xs_.size());
}

double Samples::stdev() const noexcept {
  if (xs_.size() < 2) {
    return 0.0;
  }
  const double m = mean();
  double s2 = 0.0;
  for (double x : xs_) {
    s2 += (x - m) * (x - m);
  }
  return std::sqrt(s2 / static_cast<double>(xs_.size() - 1));
}

double Samples::min() const noexcept {
  return xs_.empty() ? 0.0 : *std::min_element(xs_.begin(), xs_.end());
}

double Samples::max() const noexcept {
  return xs_.empty() ? 0.0 : *std::max_element(xs_.begin(), xs_.end());
}

double Samples::percentile(double p) const {
  HPMMAP_ASSERT(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  if (xs_.empty()) {
    return 0.0;
  }
  ensure_sorted();
  if (sorted_.size() == 1) {
    return sorted_[0];
  }
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) {
    return sorted_.back();
  }
  return sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
}

P2Quantile::P2Quantile(double q) : q_(q) {
  HPMMAP_ASSERT(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q;
  desired_[2] = 1.0 + 4.0 * q;
  desired_[3] = 3.0 + 2.0 * q;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q / 2.0;
  increments_[2] = q;
  increments_[3] = (1.0 + q) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::add(double x) noexcept {
  if (n_ < 5) {
    heights_[n_] = x;
    ++n_;
    if (n_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
      }
    }
    return;
  }
  ++n_;

  // Locate the cell containing x and clamp the extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) {
      ++k;
    }
  }
  for (int i = k + 1; i < 5; ++i) {
    positions_[i] += 1.0;
  }
  for (int i = 0; i < 5; ++i) {
    desired_[i] += increments_[i];
  }

  // Adjust the interior markers toward their desired positions with
  // piecewise-parabolic (P²) interpolation, falling back to linear when
  // the parabola would leave the bracket.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double dp = positions_[i + 1] - positions_[i];
    const double dm = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && dp > 1.0) || (d <= -1.0 && dm < -1.0)) {
      const double sign = d >= 0.0 ? 1.0 : -1.0;
      const double hp = (heights_[i + 1] - heights_[i]) / dp; // slope toward upper neighbour
      const double hm = (heights_[i - 1] - heights_[i]) / dm; // slope toward lower neighbour
      const double parabolic =
          heights_[i] + sign / (dp - dm) * ((sign - dm) * hp + (dp - sign) * hm);
      double candidate;
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        candidate = parabolic;
      } else {
        candidate = heights_[i] + sign * (sign > 0.0 ? hp : hm);
      }
      heights_[i] = candidate;
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const noexcept {
  if (n_ == 0) {
    return 0.0;
  }
  if (n_ < 5) {
    // Exact small-sample quantile over what we have.
    double tmp[5];
    std::copy(heights_, heights_ + n_, tmp);
    std::sort(tmp, tmp + n_);
    const double rank = q_ * static_cast<double>(n_ - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= n_) {
      return tmp[n_ - 1];
    }
    return tmp[lo] + frac * (tmp[lo + 1] - tmp[lo]);
  }
  return heights_[2];
}

TailQuantiles::TailQuantiles()
    : q_{P2Quantile(kQuantiles[0]), P2Quantile(kQuantiles[1]), P2Quantile(kQuantiles[2]),
         P2Quantile(kQuantiles[3])} {}

void TailQuantiles::add(double x) noexcept {
  for (P2Quantile& q : q_) {
    q.add(x);
  }
  stats_.add(x);
}

double TailQuantiles::value(std::size_t i) const noexcept {
  return i < kCount ? q_[i].value() : 0.0;
}

void Log2Histogram::add(std::uint64_t x) noexcept {
  const unsigned bucket = x == 0 ? 0 : static_cast<unsigned>(std::bit_width(x) - 1);
  ++buckets_[bucket < kBuckets ? bucket : kBuckets - 1];
  ++total_;
}

std::uint64_t Log2Histogram::bucket_count(unsigned bucket) const noexcept {
  return bucket < kBuckets ? buckets_[bucket] : 0;
}

} // namespace hpmmap
