// Always-on invariant checks. The simulation is the product; a silently
// corrupted buddy list or page table would invalidate every number the
// benchmarks print, so invariants stay enabled in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hpmmap::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "HPMMAP invariant violated: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg);
  std::abort();
}

} // namespace hpmmap::detail

#define HPMMAP_ASSERT(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::hpmmap::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));    \
    }                                                                     \
  } while (false)
