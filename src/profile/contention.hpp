// Lock-contention profiling over the kLock trace stream.
//
// SmpDomain emits one kLock complete-event per *suffered* wait (dur =
// wait cycles, name = the lock: lock.mmap_sem.read, lock.pt, lock.zone,
// lock.ipi_drain) plus smp.shootdown completes for IPI rounds. With
// causal spans enabled each event also names the request/actor that ate
// the wait. This folder turns that stream into:
//
//   - per-lock-class wait totals and log2 wait histograms,
//   - a top-N blocked-by table (which span lost the most cycles to
//     which lock class),
//   - folded-stack output (`class;lock;site count`, one line per stack,
//     count in cycles) directly consumable by flamegraph.pl / speedscope.
//
// Works from live trace::Event vectors or from a parsed CSV dump, so
// `mmprof` can run offline on a --trace-out file.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace hpmmap::profile {

/// Lock classes the contention report aggregates by.
enum class LockClass : std::uint8_t {
  kMmapSem = 0,
  kPt,
  kZone,
  kIpiDrain,
  kShootdown,
  kCount,
};

[[nodiscard]] std::string_view lock_class_name(LockClass c) noexcept;

/// Classify a kLock event name; returns kCount for non-lock events.
[[nodiscard]] LockClass classify(std::string_view event_name) noexcept;

struct LockClassStats {
  std::uint64_t events = 0;
  std::int64_t total_wait = 0; // cycles (dur of each wait event)
  std::int64_t max_wait = 0;
  /// hist[k] counts waits with floor(log2(wait)) == k (wait >= 1).
  std::array<std::uint64_t, 40> hist{};
};

struct BlockedEntry {
  std::uint32_t span = 0; // 0 = unattributed (spans off or kernel work)
  LockClass cls = LockClass::kCount;
  std::int64_t wait = 0;
  std::uint64_t events = 0;
};

struct ContentionProfile {
  std::array<LockClassStats, static_cast<std::size_t>(LockClass::kCount)> classes{};
  /// (span, class) wait totals, descending by wait then ascending span.
  std::vector<BlockedEntry> top_blocked;
  /// `class;lock;site` -> wait cycles. Site is the suffering context:
  /// `pid<P>` when the event names a process, else `core<C>`.
  std::map<std::string, std::int64_t> folded;
};

[[nodiscard]] ContentionProfile fold(const std::vector<trace::Event>& events,
                                     std::size_t top_n = 10);
[[nodiscard]] ContentionProfile fold(const std::vector<trace::CsvEvent>& events,
                                     std::size_t top_n = 10);

/// Folded-stack lines (`class;lock;site count\n`), sorted by stack name
/// for deterministic output.
[[nodiscard]] std::string folded_stacks(const ContentionProfile& p);

/// Human-readable contention report: per-class totals + histograms and
/// the blocked-by table.
[[nodiscard]] std::string render_contention(const ContentionProfile& p);

} // namespace hpmmap::profile
