#include "profile/attribution.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iterator>

namespace hpmmap::profile {

namespace {

struct BucketView {
  const char* label;
  std::int64_t RequestRecord::* field;
};

// Report/CSV order; every decomposition consumer walks this one table
// so a new bucket shows up everywhere at once.
constexpr BucketView kBuckets[] = {
    {"queue", &RequestRecord::queue},
    {"slab", &RequestRecord::slab},
    {"fault", &RequestRecord::fault},
    {"lock.mmap_sem", &RequestRecord::lock_mmap_sem},
    {"lock.pt", &RequestRecord::lock_pt},
    {"lock.zone", &RequestRecord::lock_zone},
    {"ipi_stall", &RequestRecord::ipi_stall},
    {"miss_disk", &RequestRecord::miss_disk},
    {"compute", &RequestRecord::compute},
    {"mem_stretch", &RequestRecord::mem_stretch},
    {"sched_dilation", &RequestRecord::sched_dilation},
};

void add_into(RequestRecord& acc, const RequestRecord& r) {
  for (const BucketView& b : kBuckets) {
    acc.*(b.field) += r.*(b.field);
  }
  acc.latency += r.latency;
}

} // namespace

void RequestProfiler::on_dispatch(std::uint64_t index, Cycles arrival, std::int64_t queue_wait,
                                  std::int64_t slab_alloc, std::int64_t touch_cost,
                                  const LockWaits& locks, std::int64_t dilation) {
  RequestRecord& r = inflight_[index];
  r.index = index;
  r.span = static_cast<std::uint32_t>(index + 1);
  r.arrival = arrival;
  r.queue = queue_wait;
  r.slab = slab_alloc;
  r.fault = touch_cost - locks.total();
  r.lock_mmap_sem = locks.mmap_sem;
  r.lock_pt = locks.pt;
  r.lock_zone = locks.zone;
  r.ipi_stall = locks.ipi_stall;
  r.sched_dilation = dilation;
}

void RequestProfiler::on_serve(std::uint64_t index, std::int64_t miss_wait, std::int64_t work,
                               std::int64_t stretch, std::int64_t slab_free,
                               std::int64_t dilation) {
  RequestRecord& r = inflight_[index];
  r.miss_disk = miss_wait;
  r.compute = work;
  r.mem_stretch = stretch;
  r.slab += slab_free;
  r.sched_dilation += dilation;
}

void RequestProfiler::on_finish(std::uint64_t index, Cycles latency) {
  auto it = inflight_.find(index);
  if (it == inflight_.end()) {
    return;
  }
  RequestRecord r = it->second;
  inflight_.erase(it);
  r.latency = latency;
  if (r.sum() != static_cast<std::int64_t>(latency)) {
    ++out_.residual_errors;
  }
  add_into(out_.totals, r);
  ++out_.completed;
  out_.requests.push_back(r);
}

TrialAttribution RequestProfiler::take() {
  TrialAttribution t = std::move(out_);
  out_ = TrialAttribution{};
  inflight_.clear();
  return t;
}

TrialAttribution from_records(std::vector<RequestRecord> records) {
  TrialAttribution t;
  t.requests = std::move(records);
  for (const RequestRecord& r : t.requests) {
    add_into(t.totals, r);
    ++t.completed;
    if (r.sum() != static_cast<std::int64_t>(r.latency)) {
      ++t.residual_errors;
    }
  }
  return t;
}

const RequestRecord* percentile_record(const std::vector<RequestRecord>& records, double q) {
  if (records.empty()) {
    return nullptr;
  }
  q = std::min(std::max(q, 0.0), 1.0);
  // Nearest-rank on a latency-sorted view; ties broken by request index
  // so the answer is deterministic.
  std::vector<const RequestRecord*> by_lat;
  by_lat.reserve(records.size());
  for (const RequestRecord& r : records) {
    by_lat.push_back(&r);
  }
  std::sort(by_lat.begin(), by_lat.end(), [](const RequestRecord* a, const RequestRecord* b) {
    return a->latency != b->latency ? a->latency < b->latency : a->index < b->index;
  });
  std::size_t rank = q <= 0.0 ? 1
                              : static_cast<std::size_t>(
                                    std::ceil(q * static_cast<double>(by_lat.size())));
  rank = std::min(std::max<std::size_t>(rank, 1), by_lat.size());
  return by_lat[rank - 1];
}

namespace {

void render_record(std::string& out, const RequestRecord& r, double clock_hz) {
  char buf[160];
  const std::int64_t lat = static_cast<std::int64_t>(r.latency);
  for (const BucketView& b : kBuckets) {
    const std::int64_t v = r.*(b.field);
    const double share = lat > 0 ? 100.0 * static_cast<double>(v) / static_cast<double>(lat) : 0.0;
    std::snprintf(buf, sizeof(buf), "  %-15s %14" PRId64 " cycles  %6.2f%%\n", b.label, v, share);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  %-15s %14" PRId64 " cycles  (sum %s latency)\n", "total",
                r.sum(), r.sum() == lat ? "==" : "!=");
  out += buf;
  if (clock_hz > 0) {
    std::snprintf(buf, sizeof(buf), "  latency %.3f us on the virtual clock\n",
                  static_cast<double>(lat) * 1e6 / clock_hz);
    out += buf;
  }
}

} // namespace

std::string render_report(const TrialAttribution& trial, double clock_hz) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "latency attribution: %" PRIu64 " requests, %" PRIu64
                                  " residual errors\n",
                trial.completed, trial.residual_errors);
  out += buf;
  if (trial.requests.empty()) {
    return out;
  }
  out += "aggregate (all completed requests):\n";
  render_record(out, trial.totals, 0.0);
  for (const double q : {0.50, 0.99}) {
    const RequestRecord* r = percentile_record(trial.requests, q);
    if (r == nullptr) {
      continue;
    }
    std::snprintf(buf, sizeof(buf), "p%.0f request: index %" PRIu64 " span %u\n", q * 100.0,
                  r->index, r->span);
    out += buf;
    render_record(out, *r, clock_hz);
  }
  return out;
}

std::string attr_csv(const std::vector<RequestRecord>& records) {
  std::string out = "index,span,arrival,latency";
  for (const BucketView& b : kBuckets) {
    out += ',';
    out += b.label;
  }
  out += '\n';
  char buf[64];
  for (const RequestRecord& r : records) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ",%u,%" PRIu64 ",%" PRIu64, r.index, r.span,
                  r.arrival, r.latency);
    out += buf;
    for (const BucketView& b : kBuckets) {
      std::snprintf(buf, sizeof(buf), ",%" PRId64, r.*(b.field));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

std::vector<RequestRecord> parse_attr_csv(std::string_view text) {
  std::vector<RequestRecord> out;
  bool header = true;
  while (!text.empty()) {
    const std::size_t nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text = nl == std::string_view::npos ? std::string_view{} : text.substr(nl + 1);
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) {
      continue;
    }
    constexpr std::size_t kFixed = 4;
    constexpr std::size_t kTotal = kFixed + std::size(kBuckets);
    std::array<std::int64_t, kTotal> field{};
    std::size_t n = 0;
    while (n < kTotal && !line.empty()) {
      const std::size_t comma = line.find(',');
      const std::string tok(line.substr(0, comma));
      field[n++] = std::strtoll(tok.c_str(), nullptr, 10);
      line = comma == std::string_view::npos ? std::string_view{} : line.substr(comma + 1);
    }
    if (n != kTotal) {
      continue; // malformed row
    }
    RequestRecord r;
    r.index = static_cast<std::uint64_t>(field[0]);
    r.span = static_cast<std::uint32_t>(field[1]);
    r.arrival = static_cast<Cycles>(field[2]);
    r.latency = static_cast<Cycles>(field[3]);
    std::size_t i = kFixed;
    for (const BucketView& b : kBuckets) {
      r.*(b.field) = field[i++];
    }
    out.push_back(r);
  }
  return out;
}

} // namespace hpmmap::profile
