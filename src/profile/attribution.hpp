// Per-request latency attribution: exact integer decomposition of each
// served request's end-to-end latency into the places the cycles went.
//
// The serving actor runs on a virtual clock and every term of a
// request's latency is an integer cycle count it charged explicitly
// (queue wait, slab arena cycles, fault/touch cycles, lock waits read
// as SmpStats deltas, the page-cache miss penalty, the compute burst,
// scheduler dilation). The profiler just records those terms per
// request as they happen — a pure observer: it consumes no randomness,
// charges no cycles, and profiling on/off leaves every other output
// byte-identical. Because the engine executes callbacks atomically,
// the deltas are exact and sum() == latency holds as an integer
// identity, not an approximation (DESIGN.md §15).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace hpmmap::profile {

/// Lock-wait cycles suffered inside one synchronous block, read by the
/// caller as SmpStats deltas (all zero when no SMP domain is attached).
struct LockWaits {
  std::int64_t mmap_sem = 0;
  std::int64_t pt = 0;
  std::int64_t zone = 0;
  std::int64_t ipi_stall = 0;

  [[nodiscard]] std::int64_t total() const noexcept {
    return mmap_sem + pt + zone + ipi_stall;
  }
};

/// One request's latency, decomposed. All buckets are virtual-clock
/// cycles and sum() equals `latency` exactly.
struct RequestRecord {
  std::uint64_t index = 0; // schedule index; causal span id = index + 1
  std::uint32_t span = 0;
  Cycles arrival = 0;
  Cycles latency = 0; // finish - arrival, as measured by the actor

  std::int64_t queue = 0;         // arrival -> dispatch
  std::int64_t slab = 0;          // arena alloc + free cycles
  std::int64_t fault = 0;         // touch/probe cycles net of lock wait
  std::int64_t lock_mmap_sem = 0; // mmap_sem read/write wait
  std::int64_t lock_pt = 0;       // PT shard lock wait
  std::int64_t lock_zone = 0;     // zone buddy lock wait
  std::int64_t ipi_stall = 0;     // shootdown IPI stalls (ipi_drain)
  std::int64_t miss_disk = 0;     // page-cache miss penalty
  std::int64_t compute = 0;       // nominal on-core work
  std::int64_t mem_stretch = 0;   // bandwidth/TLB stretch over nominal
  std::int64_t sched_dilation = 0; // scheduler dilation on kernel phases

  [[nodiscard]] std::int64_t sum() const noexcept {
    return queue + slab + fault + lock_mmap_sem + lock_pt + lock_zone + ipi_stall + miss_disk +
           compute + mem_stretch + sched_dilation;
  }
};

/// One trial's worth of per-request records plus bucket-wise totals.
struct TrialAttribution {
  std::vector<RequestRecord> requests; // completion order
  RequestRecord totals;                // bucket-wise sums; id fields zero
  std::uint64_t completed = 0;
  /// Requests whose buckets failed to sum to the measured latency.
  /// Always 0 in a correct build; exported so benches can self-gate.
  std::uint64_t residual_errors = 0;
};

/// Online accumulator the serving actor feeds as each request moves
/// through its phases. Pure observer by construction: only integer
/// reads and stores.
class RequestProfiler {
 public:
  /// Dispatch time: queue wait, slab alloc, fault/touch split by lock
  /// class, and the scheduler-dilation remainder of the parse phase.
  void on_dispatch(std::uint64_t index, Cycles arrival, std::int64_t queue_wait,
                   std::int64_t slab_alloc, std::int64_t touch_cost, const LockWaits& locks,
                   std::int64_t dilation);
  /// Serve time: miss penalty, nominal work, bandwidth stretch, slab
  /// free, and the dilation remainder of the response phase.
  void on_serve(std::uint64_t index, std::int64_t miss_wait, std::int64_t work,
                std::int64_t stretch, std::int64_t slab_free, std::int64_t dilation);
  /// Completion: seals the record against the measured latency.
  void on_finish(std::uint64_t index, Cycles latency);

  [[nodiscard]] const TrialAttribution& trial() const noexcept { return out_; }
  /// Move the accumulated trial out (profiler resets to empty).
  [[nodiscard]] TrialAttribution take();

 private:
  std::unordered_map<std::uint64_t, RequestRecord> inflight_;
  TrialAttribution out_;
};

/// Nearest-rank percentile record by latency (q in [0,1]); nullptr on
/// an empty set. q = 0.99 answers "which request *is* the p99, and
/// where did its cycles go".
[[nodiscard]] const RequestRecord* percentile_record(const std::vector<RequestRecord>& records,
                                                     double q);

/// Human-readable attribution report: totals, then the exact bucket
/// decomposition of the p50/p99 request (shares sum to 100%).
[[nodiscard]] std::string render_report(const TrialAttribution& trial, double clock_hz);

/// CSV round-trip of per-request records (`index,span,arrival,latency,
/// queue,...` with a header row) so `mmprof` can read a dump offline.
[[nodiscard]] std::string attr_csv(const std::vector<RequestRecord>& records);
[[nodiscard]] std::vector<RequestRecord> parse_attr_csv(std::string_view text);

/// Rebuild a trial (totals + residual check) from bare records, e.g.
/// after parse_attr_csv.
[[nodiscard]] TrialAttribution from_records(std::vector<RequestRecord> records);

} // namespace hpmmap::profile
