#include "profile/contention.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace hpmmap::profile {

std::string_view lock_class_name(LockClass c) noexcept {
  switch (c) {
    case LockClass::kMmapSem: return "mmap_sem";
    case LockClass::kPt: return "pt";
    case LockClass::kZone: return "zone";
    case LockClass::kIpiDrain: return "ipi_drain";
    case LockClass::kShootdown: return "shootdown";
    case LockClass::kCount: break;
  }
  return "?";
}

LockClass classify(std::string_view event_name) noexcept {
  if (event_name.rfind("lock.mmap_sem", 0) == 0) {
    return LockClass::kMmapSem;
  }
  if (event_name == "lock.pt") {
    return LockClass::kPt;
  }
  if (event_name == "lock.zone") {
    return LockClass::kZone;
  }
  if (event_name == "lock.ipi_drain") {
    return LockClass::kIpiDrain;
  }
  if (event_name == "smp.shootdown") {
    return LockClass::kShootdown;
  }
  return LockClass::kCount;
}

namespace {

unsigned log2_bucket(std::int64_t wait) noexcept {
  unsigned k = 0;
  while (wait > 1) {
    wait >>= 1;
    ++k;
  }
  return k;
}

struct Accumulator {
  ContentionProfile profile;
  std::map<std::pair<std::uint32_t, LockClass>, BlockedEntry> blocked;

  void add(std::string_view event_name, std::int64_t wait, Pid pid, std::int32_t core,
           std::uint32_t span) {
    const LockClass cls = classify(event_name);
    if (cls == LockClass::kCount || wait <= 0) {
      return;
    }
    LockClassStats& s = profile.classes[static_cast<std::size_t>(cls)];
    ++s.events;
    s.total_wait += wait;
    s.max_wait = std::max(s.max_wait, wait);
    ++s.hist[std::min<unsigned>(log2_bucket(wait), static_cast<unsigned>(s.hist.size() - 1))];

    BlockedEntry& b = blocked[{span, cls}];
    b.span = span;
    b.cls = cls;
    b.wait += wait;
    ++b.events;

    char site[32];
    if (pid != 0) {
      std::snprintf(site, sizeof(site), "pid%u", static_cast<unsigned>(pid));
    } else {
      std::snprintf(site, sizeof(site), "core%d", core);
    }
    std::string key;
    key.reserve(48);
    key += lock_class_name(cls);
    key += ';';
    key += event_name;
    key += ';';
    key += site;
    profile.folded[key] += wait;
  }

  ContentionProfile finish(std::size_t top_n) {
    profile.top_blocked.reserve(blocked.size());
    for (const auto& [key, entry] : blocked) {
      profile.top_blocked.push_back(entry);
    }
    std::sort(profile.top_blocked.begin(), profile.top_blocked.end(),
              [](const BlockedEntry& a, const BlockedEntry& b) {
                if (a.wait != b.wait) {
                  return a.wait > b.wait;
                }
                if (a.span != b.span) {
                  return a.span < b.span;
                }
                return static_cast<int>(a.cls) < static_cast<int>(b.cls);
              });
    if (profile.top_blocked.size() > top_n) {
      profile.top_blocked.resize(top_n);
    }
    return std::move(profile);
  }
};

} // namespace

ContentionProfile fold(const std::vector<trace::Event>& events, std::size_t top_n) {
  Accumulator acc;
  for (const trace::Event& e : events) {
    if (e.cat != trace::Category::kLock || e.phase != trace::Phase::kComplete) {
      continue;
    }
    acc.add(e.name(), static_cast<std::int64_t>(e.dur), e.pid, e.core, e.span);
  }
  return acc.finish(top_n);
}

ContentionProfile fold(const std::vector<trace::CsvEvent>& events, std::size_t top_n) {
  Accumulator acc;
  for (const trace::CsvEvent& e : events) {
    if (e.category != "lock" || e.phase != 'X') {
      continue;
    }
    acc.add(e.name, static_cast<std::int64_t>(e.dur), e.pid, e.core, trace::span_of(e));
  }
  return acc.finish(top_n);
}

std::string folded_stacks(const ContentionProfile& p) {
  std::string out;
  char buf[32];
  for (const auto& [stack, cycles] : p.folded) {
    out += stack;
    std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", cycles);
    out += buf;
  }
  return out;
}

std::string render_contention(const ContentionProfile& p) {
  std::string out = "lock contention by class:\n";
  char buf[160];
  for (std::size_t c = 0; c < p.classes.size(); ++c) {
    const LockClassStats& s = p.classes[c];
    if (s.events == 0) {
      continue;
    }
    const std::string_view nm = lock_class_name(static_cast<LockClass>(c));
    std::snprintf(buf, sizeof(buf),
                  "  %-10.*s %10" PRIu64 " waits  %14" PRId64 " cycles  max %" PRId64 "\n",
                  static_cast<int>(nm.size()), nm.data(), s.events, s.total_wait, s.max_wait);
    out += buf;
    // log2 histogram, only the populated range.
    std::size_t lo = s.hist.size();
    std::size_t hi = 0;
    for (std::size_t k = 0; k < s.hist.size(); ++k) {
      if (s.hist[k] != 0) {
        lo = std::min(lo, k);
        hi = std::max(hi, k);
      }
    }
    for (std::size_t k = lo; k <= hi && lo < s.hist.size(); ++k) {
      std::snprintf(buf, sizeof(buf), "    [2^%-2zu..2^%-2zu) %10" PRIu64 "\n", k, k + 1,
                    s.hist[k]);
      out += buf;
    }
  }
  if (!p.top_blocked.empty()) {
    out += "top blocked-by (span x lock class):\n";
    for (const BlockedEntry& b : p.top_blocked) {
      const std::string_view nm = lock_class_name(b.cls);
      if (b.span != 0) {
        std::snprintf(buf, sizeof(buf),
                      "  span %-8u %-10.*s %14" PRId64 " cycles  %8" PRIu64 " waits\n", b.span,
                      static_cast<int>(nm.size()), nm.data(), b.wait, b.events);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "  (no span)     %-10.*s %14" PRId64 " cycles  %8" PRIu64 " waits\n",
                      static_cast<int>(nm.size()), nm.data(), b.wait, b.events);
      }
      out += buf;
    }
  }
  return out;
}

} // namespace hpmmap::profile
