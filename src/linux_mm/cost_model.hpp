// Cycle-cost parameters for memory-management operations.
//
// Every cost the simulation charges is composed from these primitives;
// nothing looks up a paper number directly. The defaults are calibrated
// so that the *composed* costs land near the paper's Figure 2/3
// measurements on the Dell R415 model:
//
//   4K demand fault, idle node:   entry + vma walk + order-0 alloc +
//                                 4 KiB zeroing + rmap/pte  ~= 1.7k cycles
//   2M THP fault, idle node:      + order-9 alloc (often via compaction)
//                                 + 2 MiB zeroing            ~= 370k cycles
//   merge-follower fault:         + wait for khugepaged's PT lock ~= 1M cycles
//
// Load sensitivity is not parameterized here — it emerges from the
// reclaim path, the bandwidth model, and lock contention.
#pragma once

#include "common/types.hpp"
#include "common/units.hpp"

namespace hpmmap::mm {

struct CostModel {
  // --- Fault / syscall fixed costs -------------------------------------
  Cycles fault_entry = 250;        // trap, exception frame, handler dispatch
  Cycles vma_lookup = 180;         // rb-tree descent under mmap_sem (read)
  Cycles pte_install = 140;        // PTE write + accounting + unlock
  Cycles rmap_account = 220;       // anon_vma / memcg / LRU bookkeeping (4K)
  Cycles rmap_account_large = 900; // compound-page bookkeeping (2M)
  Cycles syscall_entry = 300;      // mode switch + dispatch
  Cycles vma_mutate = 1100;        // VMA insert/split/merge under mmap_sem (write)

  // --- Buddy allocator --------------------------------------------------
  Cycles buddy_base = 160;     // freelist pop, watermark check
  Cycles buddy_split_step = 55; // one split level
  Cycles buddy_merge_step = 65; // one coalesce level on free

  // --- Page-content costs ------------------------------------------------
  // Streaming zero/copy rate in bytes per cycle on an idle channel; the
  // BandwidthModel degrades it under contention. 8 B/cy ~= 18 GB/s at
  // 2.3 GHz, matching non-temporal clears on the Opteron node.
  double zero_bytes_per_cycle = 6.0;
  double copy_bytes_per_cycle = 3.0; // read+write, both streams uncached

  // --- Page-table structure ---------------------------------------------
  Cycles pt_alloc_table = 450;  // allocate+zero one page-table page
  Cycles pt_level_step = 45;    // one level of a software walk
  Cycles tlb_flush_page = 120;  // invlpg + IPI amortized
  Cycles tlb_flush_full = 2600; // full shootdown across cores

  // --- Reclaim / compaction ----------------------------------------------
  // Direct reclaim scans the LRU; cost is per reclaimed batch and grows
  // heavy-tailed when clean pages run out (writeback stalls).
  Cycles reclaim_batch_base = 45'000;  // scan + unmap a 32-page batch, clean
  Cycles reclaim_writeback = 900'000;  // batch needing writeback/congestion wait
  double reclaim_writeback_tail_alpha = 1.6; // Pareto tail for stalls
  Cycles compact_attempt = 140'000;    // one order-9 compaction attempt
  double compact_success_unloaded = 0.92;
  double compact_success_loaded_floor = 0.25;

  // --- khugepaged (THP merge) --------------------------------------------
  // A merge unmaps up to 512 PTEs, copies 2 MiB, flushes, remaps — all
  // while holding the target's page-table lock (§II-B).
  Cycles merge_fixed = 650'000;         // mmap_sem writer wait + rmap walks over 512 ptes
  Cycles merge_per_pte = 260;           // unmap one small PTE
  std::uint64_t khugepaged_scan_period_ms = 10'000; // scan_sleep_millisecs default
  double khugepaged_preempt_factor_loaded = 3.2; // lock held longer when preempted

  // --- HugeTLBfs ----------------------------------------------------------
  Cycles hugetlb_fault_overhead = 12'000; // reservation map + hugetlb mutex
  double hugetlb_zero_bytes_per_cycle = 3.0; // no clearing-cache help

  // --- HPMMAP -------------------------------------------------------------
  Cycles hpmmap_hash_lookup = 90;   // PID hash probe on syscall entry
  Cycles hpmmap_alloc_base = 210;   // Kitten buddy pop (no watermarks)
  Cycles hpmmap_pte_install = 95;   // lightweight table, no rmap/LRU

  // --- SMP contention (DESIGN.md §14) -------------------------------------
  // Charged only when a node runs an SmpDomain; lock *waits* are never
  // parameterized here — they emerge from per-core actors interleaving on
  // the virtual clock. These are the uncontended primitive costs.
  Cycles smp_lock_acquire = 40;      // spin_lock/unlock pair, cache-hot
  Cycles smp_pcp_op = 60;            // pcp list push/pop, no zone lock
  Cycles smp_pcp_move_frame = 25;    // per frame moved on batched refill/drain
  Cycles tlb_ipi_send = 900;         // initiate one shootdown round
  Cycles tlb_ipi_per_core = 110;     // per target CPU in the round
  Cycles tlb_ipi_handler = 500;      // remote CPU stall to service the IPI

  // --- Swap -------------------------------------------------------------------
  // A major fault on a swapped-out page reads 4K from a rotating disk:
  // seek + rotational latency, ~8 ms on the testbed era's drives. This
  // is the source of the enormous stdev in Figure 3's loaded small
  // faults (reclaim evicts app pages once the page cache is spent).
  Cycles swap_in_mean = 18'000'000;
  double swap_in_cv = 1.2;

  // --- Watermarks ----------------------------------------------------------
  // Fractions of a zone's online memory; below `low` the fault path
  // enters direct reclaim, below `min` allocation may fail outright.
  double watermark_low = 0.04;
  double watermark_min = 0.01;

  // --- Noise ---------------------------------------------------------------
  // Multiplicative lognormal jitter applied to composed fault costs:
  // cache state, IRQ arrivals, sibling activity. cv = stdev/mean.
  double fault_jitter_cv = 0.45;
};

/// Zeroing cost for `size` bytes at `rate` effective bytes/cycle.
[[nodiscard]] inline Cycles stream_cycles(std::uint64_t size, double rate) noexcept {
  if (rate <= 0.0) {
    rate = 0.1;
  }
  return static_cast<Cycles>(static_cast<double>(size) / rate);
}

} // namespace hpmmap::mm
