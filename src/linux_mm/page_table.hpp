// Four-level x86-64 page tables (PML4 -> PDPT -> PD -> PT).
//
// Both memory managers drive this structure: Linux installs 4K PTEs and
// 2M PD entries through the fault path; HPMMAP installs 2M/1G leaves
// directly at allocation time in an otherwise-unused region of the
// 48-bit address space (§III-B). The structure is real — walks descend
// real levels, splits really replace a leaf with 512 children — while
// costs are charged by the caller from the step counts returned here.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/types.hpp"
#include "hw/tlb.hpp"

namespace hpmmap::mm {

struct Translation {
  Addr phys = 0;
  PageSize size = PageSize::k4K;
  Prot prot = Prot::kNone;
};

/// Step counts for cost accounting: levels descended and table pages
/// freshly allocated during the operation.
struct PtOpStats {
  unsigned levels = 0;
  unsigned tables_allocated = 0;
  unsigned entries_written = 0;
};

class PageTable {
 public:
  PageTable();
  ~PageTable();
  PageTable(PageTable&&) noexcept;
  PageTable& operator=(PageTable&&) noexcept;
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  /// Install a leaf mapping. Fails with kExist if any part of the region
  /// is already mapped, kInval on misalignment.
  Errno map(Addr vaddr, Addr paddr, PageSize size, Prot prot, PtOpStats* stats = nullptr);

  /// Remove the leaf at `vaddr` (must match `size`). kNoEnt if absent.
  Errno unmap(Addr vaddr, PageSize size, PtOpStats* stats = nullptr);

  /// Change protections on an existing leaf.
  Errno protect(Addr vaddr, PageSize size, Prot prot);

  /// Translate. nullopt when unmapped.
  [[nodiscard]] std::optional<Translation> walk(Addr vaddr) const;

  /// Split a 2M leaf into 512 4K leaves covering the same physical range
  /// (what THP does when a large page must be mlocked, §II-B). Returns
  /// kNoEnt if no 2M leaf maps `vaddr`.
  Errno split_large(Addr vaddr, PtOpStats* stats = nullptr);

  /// Byte totals of current leaf mappings per page size — the MappingMix
  /// the TLB model consumes.
  [[nodiscard]] hw::MappingMix mapping_mix() const noexcept { return mix_; }

  /// Count of leaf mappings whose translation lies in [range).
  [[nodiscard]] std::uint64_t mapped_bytes(Range vrange) const;

  /// Number of 4K leaves inside the 2M-aligned region containing `vaddr`
  /// — O(depth), used by khugepaged to pick merge candidates.
  [[nodiscard]] unsigned small_count_in_2m(Addr vaddr) const;

  /// True if a 2M (or larger) leaf already covers `vaddr`.
  [[nodiscard]] bool large_leaf_at(Addr vaddr) const;

  /// Pages consumed by the table structure itself.
  [[nodiscard]] std::uint64_t table_pages() const noexcept { return table_pages_; }

  /// Visit every leaf as (vaddr, Translation); deterministic order.
  template <typename Fn>
  void for_each_leaf(Fn&& fn) const {
    visit_leaves(root_.get(), 0, 3, fn);
  }

 private:
  static constexpr unsigned kFanout = 512;
  struct Node;
  struct Entry {
    // Either a child table (interior) or a leaf translation.
    std::unique_ptr<Node> child;
    bool leaf = false;
    Addr phys = 0;
    Prot prot = Prot::kNone;
  };
  struct Node {
    std::array<Entry, kFanout> slots;
    std::uint16_t used = 0;
  };

  /// Index of `vaddr` at `level` (level 3 = PML4 ... level 0 = PT).
  [[nodiscard]] static unsigned index_at(Addr vaddr, unsigned level) noexcept {
    return static_cast<unsigned>((vaddr >> (12 + 9 * level)) & (kFanout - 1));
  }
  /// Leaf level for a page size: 0 for 4K, 1 for 2M, 2 for 1G.
  [[nodiscard]] static unsigned leaf_level(PageSize size) noexcept;

  template <typename Fn>
  void visit_leaves(const Node* node, Addr base, unsigned level, Fn&& fn) const {
    if (node == nullptr) {
      return;
    }
    for (unsigned i = 0; i < kFanout; ++i) {
      const Entry& e = node->slots[i];
      const Addr va = base | (static_cast<Addr>(i) << (12 + 9 * level));
      if (e.leaf) {
        const PageSize size = level == 0   ? PageSize::k4K
                              : level == 1 ? PageSize::k2M
                                           : PageSize::k1G;
        fn(va, Translation{e.phys, size, e.prot});
      } else if (e.child) {
        visit_leaves(e.child.get(), va, level - 1, fn);
      }
    }
  }

  void account_map(PageSize size, std::int64_t delta) noexcept;

  std::unique_ptr<Node> root_;
  hw::MappingMix mix_;
  std::uint64_t table_pages_ = 1; // the root
};

} // namespace hpmmap::mm
