// Four-level x86-64 page tables (PML4 -> PDPT -> PD -> PT).
//
// Both memory managers drive this structure: Linux installs 4K PTEs and
// 2M PD entries through the fault path; HPMMAP installs 2M/1G leaves
// directly at allocation time in an otherwise-unused region of the
// 48-bit address space (§III-B). The structure is real — walks descend
// real levels, splits really replace a leaf with 512 children — while
// costs are charged by the caller from the step counts returned here.
//
// Entries are packed 8-byte words, like the hardware's: bit 0 = leaf,
// bit 1 = child present, bits 2-4 = protection, and the 4K-aligned
// payload from bit 12 (a physical frame for leaves, a node-pool index
// for children). Nodes are exactly 4 KiB (512 words) and live in an
// index-addressed pool with a free list, so a walk touches one cache
// line per level and map/unmap never call the heap once the pool is
// warm.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "hw/tlb.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::mm {

struct Translation {
  Addr phys = 0;
  PageSize size = PageSize::k4K;
  Prot prot = Prot::kNone;
};

/// Step counts for cost accounting: levels descended and table pages
/// freshly allocated during the operation.
struct PtOpStats {
  unsigned levels = 0;
  unsigned tables_allocated = 0;
  unsigned entries_written = 0;
};

class PageTable {
 public:
  PageTable();
  ~PageTable() = default;
  PageTable(PageTable&&) noexcept = default;
  PageTable& operator=(PageTable&&) noexcept = default;
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  /// Install a leaf mapping. Fails with kExist if any part of the region
  /// is already mapped, kInval on misalignment.
  Errno map(Addr vaddr, Addr paddr, PageSize size, Prot prot, PtOpStats* stats = nullptr);

  /// Remove the leaf at `vaddr` (must match `size`). kNoEnt if absent.
  Errno unmap(Addr vaddr, PageSize size, PtOpStats* stats = nullptr);

  /// Change protections on an existing leaf.
  Errno protect(Addr vaddr, PageSize size, Prot prot);

  /// Translate. nullopt when unmapped.
  [[nodiscard]] std::optional<Translation> walk(Addr vaddr) const;

  /// Split a 2M leaf into 512 4K leaves covering the same physical range
  /// (what THP does when a large page must be mlocked, §II-B). Returns
  /// kNoEnt if no 2M leaf maps `vaddr`.
  Errno split_large(Addr vaddr, PtOpStats* stats = nullptr);

  /// Byte totals of current leaf mappings per page size — the MappingMix
  /// the TLB model consumes.
  [[nodiscard]] hw::MappingMix mapping_mix() const noexcept { return mix_; }

  /// Count of leaf mappings whose translation lies in [range).
  [[nodiscard]] std::uint64_t mapped_bytes(Range vrange) const;

  /// Number of 4K leaves inside the 2M-aligned region containing `vaddr`
  /// — O(depth), used by khugepaged to pick merge candidates.
  [[nodiscard]] unsigned small_count_in_2m(Addr vaddr) const;

  /// True if a 2M (or larger) leaf already covers `vaddr`.
  [[nodiscard]] bool large_leaf_at(Addr vaddr) const;

  /// Pages consumed by the table structure itself.
  [[nodiscard]] std::uint64_t table_pages() const noexcept { return table_pages_; }

  /// Visit every leaf as (vaddr, Translation); deterministic order.
  template <typename Fn>
  void for_each_leaf(Fn&& fn) const {
    visit_leaves(kRoot, 0, 3, fn);
  }

 private:
  friend struct hpmmap::snapshot::Access;

  static constexpr unsigned kFanout = 512;
  static constexpr std::uint32_t kRoot = 0;
  static constexpr std::uint64_t kLeafBit = 1;
  static constexpr std::uint64_t kChildBit = 2;

  /// A table page: 512 packed entry words, exactly 4 KiB.
  struct Node {
    std::array<std::uint64_t, kFanout> slots;
  };

  [[nodiscard]] static constexpr bool is_leaf(std::uint64_t e) noexcept {
    return (e & kLeafBit) != 0;
  }
  [[nodiscard]] static constexpr bool has_child(std::uint64_t e) noexcept {
    return (e & kChildBit) != 0;
  }
  [[nodiscard]] static constexpr Addr leaf_phys(std::uint64_t e) noexcept {
    return e & ~Addr{0xFFF};
  }
  [[nodiscard]] static constexpr Prot leaf_prot(std::uint64_t e) noexcept {
    return static_cast<Prot>((e >> 2) & 0x7u);
  }
  [[nodiscard]] static constexpr std::uint64_t make_leaf(Addr phys, Prot prot) noexcept {
    return phys | (static_cast<std::uint64_t>(prot) << 2) | kLeafBit;
  }
  [[nodiscard]] static constexpr std::uint32_t child_index(std::uint64_t e) noexcept {
    return static_cast<std::uint32_t>(e >> 12);
  }
  [[nodiscard]] static constexpr std::uint64_t make_child(std::uint32_t idx) noexcept {
    return (static_cast<std::uint64_t>(idx) << 12) | kChildBit;
  }

  /// Index of `vaddr` at `level` (level 3 = PML4 ... level 0 = PT).
  [[nodiscard]] static unsigned index_at(Addr vaddr, unsigned level) noexcept {
    return static_cast<unsigned>((vaddr >> (12 + 9 * level)) & (kFanout - 1));
  }
  /// Leaf level for a page size: 0 for 4K, 1 for 2M, 2 for 1G.
  [[nodiscard]] static unsigned leaf_level(PageSize size) noexcept;

  template <typename Fn>
  void visit_leaves(std::uint32_t node, Addr base, unsigned level, Fn&& fn) const {
    for (unsigned i = 0; i < kFanout; ++i) {
      const std::uint64_t e = nodes_[node].slots[i];
      const Addr va = base | (static_cast<Addr>(i) << (12 + 9 * level));
      if (is_leaf(e)) {
        const PageSize size = level == 0   ? PageSize::k4K
                              : level == 1 ? PageSize::k2M
                                           : PageSize::k1G;
        fn(va, Translation{leaf_phys(e), size, leaf_prot(e)});
      } else if (has_child(e)) {
        visit_leaves(child_index(e), va, level - 1, fn);
      }
    }
  }

  [[nodiscard]] std::uint32_t alloc_node();
  void free_node(std::uint32_t idx);
  void account_map(PageSize size, std::int64_t delta) noexcept;

  // deque: stable addresses across alloc_node() while holding slot
  // references, one 4 KiB chunk per node.
  std::deque<Node> nodes_;
  std::vector<std::uint16_t> used_;      // live entries per node
  std::vector<std::uint32_t> free_nodes_; // recycled pool indices
  hw::MappingMix mix_;
  std::uint64_t table_pages_ = 1; // the root
};

} // namespace hpmmap::mm
