#include "linux_mm/thp.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "verify/fault_inject.hpp"

namespace hpmmap::mm {

ThpService::ThpService(MemorySystem& memory, sim::Engine& engine,
                       std::function<double()> load_factor_probe)
    : memory_(memory), engine_(engine), load_factor_(std::move(load_factor_probe)) {
  HPMMAP_ASSERT(load_factor_ != nullptr, "load probe required");
}

void ThpService::register_process(AddressSpace* as) {
  HPMMAP_ASSERT(as != nullptr, "null address space");
  processes_.push_back(as);
}

void ThpService::unregister_process(AddressSpace* as) {
  std::erase(processes_, as);
  std::erase_if(enter_queue_, [as](const auto& e) { return e.first == as; });
  scan_rr_ = 0;
  scan_cursor_ = 0;
}

void ThpService::note_fallback(AddressSpace* as, Addr vaddr) {
  constexpr std::size_t kQueueCap = 32;
  const Addr region = align_down(vaddr, kLargePageSize);
  // Dedup against the most recent entries (fault storms hit the same
  // region hundreds of times).
  for (const auto& [qas, qregion] : enter_queue_) {
    if (qas == as && qregion == region) {
      return;
    }
  }
  if (enter_queue_.size() >= kQueueCap) {
    enter_queue_.pop_front();
  }
  enter_queue_.emplace_back(as, region);
  // Wake the daemon if it has slept through a full period — the kernel's
  // fault path kicks khugepaged on allocation failures, which is exactly
  // why merges land *during* the application's fault bursts and stall
  // the faults that follow (Figure 4's blue dots).
  if (running_ && !wake_pending_.valid() && engine_.now() - last_scan_ >= scan_period_) {
    wake_pending_ = engine_.schedule(50'000, [this] { wake_tick(); });
  }
}

void ThpService::wake_tick() {
  wake_pending_ = sim::EventId{};
  scan_once();
}

bool ThpService::region_eligible(const AddressSpace& as, const Vma& vma, Addr vaddr) const {
  if (!vma.thp_eligible || vma.locked) {
    return false;
  }
  const Addr base = align_down(vaddr, kLargePageSize);
  const Range region{base, base + kLargePageSize};
  // The VMA must cover the whole aligned region — the address-space
  // organization problem from §II-A: unaligned or undersized VMAs force
  // small pages.
  if (!vma.range.contains(region)) {
    return false;
  }
  // No part of the region may already be mapped (the fault path never
  // overwrites existing PTEs; khugepaged handles those later).
  if (as.page_table().small_count_in_2m(base) != 0 || as.page_table().large_leaf_at(base)) {
    return false;
  }
  return true;
}

ThpService::HugeFaultResult ThpService::try_fault_huge(AddressSpace& as, const Vma& vma,
                                                       Addr vaddr) {
  HugeFaultResult result;
  if (!region_eligible(as, vma, vaddr)) {
    ++stats_.fault_huge_fallback;
    return result;
  }
  // Injected huge-allocation failure: eligibility passed but the order-9
  // block "fails" — exactly the fault-path fallback the caller must
  // absorb by mapping 4K and queueing the region for khugepaged.
  if (verify::injector().should_fail(verify::InjectPoint::kThpHugeAlloc)) {
    ++stats_.fault_huge_fallback;
    return result;
  }
  // Fault-path huge allocation is opportunistic: it takes an order-9
  // block only when the zone can hand one over without reclaim (the
  // 2.6.38-3.3 era behaviour the paper evaluates). Failures register the
  // region with khugepaged instead.
  const ZoneId zone = as.zone_for(align_down(vaddr, kLargePageSize));
  result.alloc = memory_.alloc_pages(zone, kLargePageOrder, /*allow_reclaim=*/false);
  if (!result.alloc.ok) {
    ++stats_.fault_huge_fallback;
    return result;
  }
  result.ok = true;
  result.phys = result.alloc.addr;
  ++stats_.fault_huge_success;
  return result;
}

void ThpService::start_khugepaged(double clock_hz) {
  scan_period_ = static_cast<Cycles>(
      clock_hz * static_cast<double>(memory_.costs().khugepaged_scan_period_ms) / 1000.0);
  running_ = true;
  schedule_next_scan();
}

void ThpService::stop_khugepaged() {
  running_ = false;
  engine_.cancel(pending_scan_);
  pending_scan_ = sim::EventId{};
  engine_.cancel(wake_pending_);
  wake_pending_ = sim::EventId{};
}

void ThpService::schedule_next_scan() {
  if (!running_) {
    return;
  }
  // Jitter the period slightly so merges are unsynchronized across
  // ranks/nodes — the OS-noise property §II-B calls out.
  const Cycles jitter = memory_.rng().uniform(scan_period_ / 4);
  pending_scan_ = engine_.schedule(scan_period_ + jitter, [this] { scan_tick(); });
}

void ThpService::scan_tick() {
  scan_once();
  schedule_next_scan();
}

std::optional<ThpService::MergeCandidate> ThpService::find_candidate() {
  if (processes_.empty()) {
    return std::nullopt;
  }
  // khugepaged_enter queue first: regions where the fault path recently
  // fell back are revisited before any background scanning.
  while (!enter_queue_.empty()) {
    auto [as, region] = enter_queue_.front();
    enter_queue_.pop_front();
    if (std::find(processes_.begin(), processes_.end(), as) == processes_.end()) {
      continue;
    }
    const Vma* vma = as->vmas().find(region);
    if (vma == nullptr || !vma->thp_eligible || vma->locked ||
        !vma->range.contains(Range{region, region + kLargePageSize})) {
      continue;
    }
    ++stats_.merge_candidates_scanned;
    const unsigned mapped = as->page_table().small_count_in_2m(region);
    if (mapped >= 64 && !as->page_table().large_leaf_at(region) &&
        !inflight_.contains({as, region})) {
      return MergeCandidate{as, region, mapped};
    }
  }
  // khugepaged_max_ptes_none defaults to 511, i.e. even a single mapped
  // small page makes a region collapsible; we require a quarter mapped
  // so merges hit regions the app actually uses.
  constexpr unsigned kMinMapped = 128;
  for (std::size_t attempt = 0; attempt < processes_.size(); ++attempt) {
    AddressSpace* as = processes_[(scan_rr_ + attempt) % processes_.size()];
    std::optional<MergeCandidate> found;
    Addr resume = (attempt == 0) ? scan_cursor_ : 0;
    as->vmas().for_each([&](const Vma& vma) {
      if (found.has_value() || !vma.thp_eligible || vma.locked) {
        return;
      }
      const Addr first = std::max(align_up(vma.range.begin, kLargePageSize), resume);
      for (Addr region = first; region + kLargePageSize <= vma.range.end;
           region += kLargePageSize) {
        ++stats_.merge_candidates_scanned;
        const unsigned mapped = as->page_table().small_count_in_2m(region);
        if (mapped >= kMinMapped && !as->page_table().large_leaf_at(region) &&
            !inflight_.contains({as, region})) {
          found = MergeCandidate{as, region, mapped};
          return;
        }
        if (stats_.merge_candidates_scanned % 4096 == 0) {
          return; // bound per-scan work like the real daemon's scan quota
        }
      }
    });
    if (found.has_value()) {
      scan_rr_ = (scan_rr_ + attempt) % processes_.size();
      scan_cursor_ = found->region + kLargePageSize;
      return found;
    }
    scan_cursor_ = 0;
  }
  scan_rr_ = (scan_rr_ + 1) % std::max<std::size_t>(processes_.size(), 1);
  return std::nullopt;
}

void ThpService::scan_once() {
  last_scan_ = engine_.now();
  if (trace::on(trace::Category::kThp)) {
    trace::instant(trace::Category::kThp, "khugepaged.scan", 0, -1,
                   {trace::Arg::u64("enter_queue", enter_queue_.size()),
                    trace::Arg::u64("processes", processes_.size())});
    ++trace::metrics().counter("khugepaged.scans");
  }
  // The daemon collapses a couple of regions per wakeup (its scan
  // quota). Before each collapse it linearly scans thousands of PTEs —
  // several milliseconds of work — so the lock acquisition lands at an
  // arbitrary phase of the application's fault activity rather than
  // immediately after the fault that woke it.
  const double clock_ms = static_cast<double>(scan_period_) /
                          static_cast<double>(memory_.costs().khugepaged_scan_period_ms);
  Cycles scan_progress = 0;
  for (int i = 0; i < 2; ++i) {
    auto candidate = find_candidate();
    if (!candidate.has_value()) {
      return;
    }
    scan_progress += static_cast<Cycles>(
        clock_ms * (1.0 + memory_.rng().uniform_double() * 8.0));
    const MergeCandidate c = *candidate;
    const std::uint64_t token = next_token_++;
    const sim::EventId ev =
        engine_.schedule(scan_progress, [this, token] { collapse_tick(token); });
    pending_collapses_.push_back({token, c.as, c.region, c.mapped_small, ev});
  }
}

void ThpService::collapse_tick(std::uint64_t token) {
  const auto it = std::find_if(pending_collapses_.begin(), pending_collapses_.end(),
                               [token](const PendingCollapse& p) { return p.token == token; });
  HPMMAP_ASSERT(it != pending_collapses_.end(), "collapse token fired without registry entry");
  const MergeCandidate c{it->as, it->region, it->mapped_small};
  pending_collapses_.erase(it);
  // Re-validate: the process may have exited or the region may have
  // changed while the daemon was scanning.
  if (std::find(processes_.begin(), processes_.end(), c.as) == processes_.end()) {
    return;
  }
  if (c.as->page_table().small_count_in_2m(c.region) < 64 ||
      c.as->page_table().large_leaf_at(c.region) ||
      inflight_.contains({c.as, c.region})) {
    return;
  }
  perform_merge(c);
}

void ThpService::perform_merge(const MergeCandidate& candidate) {
  AddressSpace& as = *candidate.as;
  const Addr region = candidate.region;
  const ZoneId zone = as.zone_for(region);

  // Injected abort: khugepaged abandons the candidate before touching
  // any state (the kernel's collapse_huge_page bails the same way when
  // its revalidation fails). The region stays 4K-mapped and remains a
  // future candidate.
  if (verify::injector().should_fail(verify::InjectPoint::kThpMergeAbort)) {
    ++stats_.merges_aborted;
    trace::instant(trace::Category::kThp, "khugepaged.merge_abort", as.pid(), -1,
                   {trace::Arg::str("reason", "injected")});
    return;
  }

  // Allocate the huge page first (outside the lock, like the kernel).
  AllocOutcome huge = memory_.alloc_pages(zone, kLargePageOrder, /*allow_reclaim=*/true);
  if (!huge.ok) {
    ++stats_.merges_aborted;
    return;
  }

  const CostModel& costs = memory_.costs();
  // Merge duration: the huge-page allocation (reclaim/compaction under
  // load) plus unmapping each mapped PTE, copying the payload into the
  // huge page, flushing and remapping — the expensive parts run with the
  // process's locks held (§II-B: "a relatively long operation compared
  // to a typical page fault"). Competing load preempts the daemon
  // mid-merge and stretches the hold further.
  // The collapse writes the full 2 MiB: mapped pages are copied and the
  // holes (khugepaged_max_ptes_none) are zero-filled.
  Cycles duration = memory_.alloc_cycles(huge, zone) + costs.merge_fixed +
                    candidate.mapped_small * costs.merge_per_pte +
                    memory_.zero_cost(zone, kLargePageSize, costs.copy_bytes_per_cycle) +
                    costs.tlb_flush_full;
  const double load = load_factor_();
  if (load > 1.0) {
    duration = static_cast<Cycles>(
        static_cast<double>(duration) *
        (1.0 + (costs.khugepaged_preempt_factor_loaded - 1.0) * std::min(load - 1.0, 1.0)));
  }
  // Tail: occasionally the daemon loses the CPU entirely mid-merge.
  if (load > 1.0 && memory_.rng().chance(0.25)) {
    duration += static_cast<Cycles>(memory_.rng().pareto(static_cast<double>(duration), 1.4));
  }

  as.lock_until(engine_.now() + duration);
  stats_.total_merge_lock_cycles += duration;
  inflight_.insert({&as, region});
  if (trace::on(trace::Category::kThp)) {
    // The span covers the full PT-lock hold — the window that turns
    // concurrent faults into merge-followers (Figure 4's blue dots).
    trace::complete(trace::Category::kThp, "khugepaged.merge", engine_.now(), duration, as.pid(),
                    -1,
                    {trace::Arg::u64("region", region),
                     trace::Arg::u64("mapped_small", candidate.mapped_small)});
    trace::metrics().histogram("thp.merge_lock_cycles").add(static_cast<double>(duration));
  }

  const Addr huge_phys = huge.addr;
  AddressSpace* asp = &as;
  const std::uint64_t token = next_token_++;
  const sim::EventId ev = engine_.schedule(duration, [this, token] { finish_merge(token); });
  pending_merges_.push_back({token, asp, region, huge_phys, ev});
}

void ThpService::finish_merge(std::uint64_t token) {
  const auto it = std::find_if(pending_merges_.begin(), pending_merges_.end(),
                               [token](const PendingMerge& p) { return p.token == token; });
  HPMMAP_ASSERT(it != pending_merges_.end(), "merge token fired without registry entry");
  AddressSpace* asp = it->as;
  const Addr region = it->region;
  const Addr huge_phys = it->huge_phys;
  pending_merges_.erase(it);
  inflight_.erase({asp, region});
  const auto abort_merge = [&] {
    memory_.free_pages(memory_.phys().zone_of(huge_phys), huge_phys, kLargePageOrder);
  };
  // The process may have exited mid-merge, or the region may have been
  // munmapped (temp buffers churn fast); either way the merge aborts
  // and the huge page goes back to the buddy.
  if (std::find(processes_.begin(), processes_.end(), asp) == processes_.end()) {
    abort_merge();
    ++stats_.merges_aborted;
    trace::instant(trace::Category::kThp, "khugepaged.merge_abort", 0, -1,
                   {trace::Arg::str("reason", "process_exited")});
    return;
  }
  AddressSpace& target = *asp;
  const Vma* vma = target.vmas().find(region);
  if (vma == nullptr || !vma->thp_eligible || vma->locked ||
      !vma->range.contains(Range{region, region + kLargePageSize}) ||
      target.page_table().large_leaf_at(region)) {
    // Region vanished, got remapped, or the fault path huge-mapped it
    // while the merge was copying: abort.
    abort_merge();
    ++stats_.merges_aborted;
    trace::instant(trace::Category::kThp, "khugepaged.merge_abort", target.pid(), -1,
                   {trace::Arg::str("reason", "region_changed")});
    return;
  }
  // Unmap the small pages and return their frames; install the leaf.
  PageTable& pt = target.page_table();
  for (Addr va = region; va < region + kLargePageSize; va += kSmallPageSize) {
    const auto t = pt.walk(va);
    if (t.has_value() && t->size == PageSize::k4K) {
      const Addr frame = align_down(t->phys, kSmallPageSize);
      pt.unmap(va, PageSize::k4K);
      memory_.free_pages(memory_.phys().zone_of(frame), frame, 0);
    }
  }
  const Errno err = pt.map(region, huge_phys, PageSize::k2M, vma->prot);
  HPMMAP_ASSERT(err == Errno::kOk, "merge target region was not fully cleared");
  ++stats_.merges_completed;
  if (trace::on(trace::Category::kThp)) {
    trace::instant(trace::Category::kThp, "khugepaged.merge_done", target.pid(), -1,
                   {trace::Arg::u64("region", region)});
    ++trace::metrics().counter("khugepaged.merges_completed");
  }
}

unsigned ThpService::split_for_mlock(AddressSpace& as, Range range) {
  unsigned splits = 0;
  for (Addr va = align_down(range.begin, kLargePageSize); va < range.end;
       va += kLargePageSize) {
    const auto t = as.page_table().walk(va);
    if (t.has_value() && t->size == PageSize::k2M) {
      const Errno err = as.page_table().split_large(va);
      HPMMAP_ASSERT(err == Errno::kOk, "walk said a 2M leaf exists");
      ++splits;
    }
  }
  stats_.split_on_mlock += splits;
  return splits;
}

} // namespace hpmmap::mm
