#include "linux_mm/page_table.hpp"

#include "common/assert.hpp"

namespace hpmmap::mm {

PageTable::PageTable() : root_(std::make_unique<Node>()) {}
PageTable::~PageTable() = default;
PageTable::PageTable(PageTable&&) noexcept = default;
PageTable& PageTable::operator=(PageTable&&) noexcept = default;

unsigned PageTable::leaf_level(PageSize size) noexcept {
  switch (size) {
    case PageSize::k4K: return 0;
    case PageSize::k2M: return 1;
    case PageSize::k1G: return 2;
  }
  return 0;
}

void PageTable::account_map(PageSize size, std::int64_t delta) noexcept {
  const auto apply = [delta](std::uint64_t& v) {
    v = static_cast<std::uint64_t>(static_cast<std::int64_t>(v) + delta);
  };
  switch (size) {
    case PageSize::k4K: apply(mix_.bytes_4k); break;
    case PageSize::k2M: apply(mix_.bytes_2m); break;
    case PageSize::k1G: apply(mix_.bytes_1g); break;
  }
}

Errno PageTable::map(Addr vaddr, Addr paddr, PageSize size, Prot prot, PtOpStats* stats) {
  if (!is_aligned(vaddr, bytes(size)) || !is_aligned(paddr, bytes(size))) {
    return Errno::kInval;
  }
  const unsigned target = leaf_level(size);
  Node* node = root_.get();
  PtOpStats local;
  local.levels = 1;
  for (unsigned level = 3; level > target; --level) {
    Entry& e = node->slots[index_at(vaddr, level)];
    if (e.leaf) {
      return Errno::kExist; // a larger mapping already covers this address
    }
    if (!e.child) {
      e.child = std::make_unique<Node>();
      ++node->used;
      ++table_pages_;
      ++local.tables_allocated;
    }
    node = e.child.get();
    ++local.levels;
  }
  Entry& leaf = node->slots[index_at(vaddr, target)];
  if (leaf.leaf) {
    return Errno::kExist;
  }
  if (leaf.child) {
    // A child table exists from earlier small mappings. If it is empty
    // (all PTEs unmapped — the khugepaged collapse path), free it and
    // install the large leaf in its place; otherwise the range is busy.
    if (leaf.child->used != 0) {
      return Errno::kExist;
    }
    leaf.child.reset();
    --table_pages_;
    --node->used;
  }
  leaf.leaf = true;
  leaf.phys = paddr;
  leaf.prot = prot;
  ++node->used;
  ++local.entries_written;
  account_map(size, static_cast<std::int64_t>(bytes(size)));
  if (stats != nullptr) {
    *stats = local;
  }
  return Errno::kOk;
}

Errno PageTable::unmap(Addr vaddr, PageSize size, PtOpStats* stats) {
  if (!is_aligned(vaddr, bytes(size))) {
    return Errno::kInval;
  }
  const unsigned target = leaf_level(size);
  Node* node = root_.get();
  PtOpStats local;
  local.levels = 1;
  for (unsigned level = 3; level > target; --level) {
    Entry& e = node->slots[index_at(vaddr, level)];
    if (e.leaf || !e.child) {
      return Errno::kNoEnt;
    }
    node = e.child.get();
    ++local.levels;
  }
  Entry& leaf = node->slots[index_at(vaddr, target)];
  if (!leaf.leaf) {
    return Errno::kNoEnt;
  }
  leaf.leaf = false;
  leaf.phys = 0;
  leaf.prot = Prot::kNone;
  --node->used;
  ++local.entries_written;
  account_map(size, -static_cast<std::int64_t>(bytes(size)));
  // Interior tables are retained (Linux frees them lazily too); the
  // table_pages_ count therefore only grows within a process lifetime.
  if (stats != nullptr) {
    *stats = local;
  }
  return Errno::kOk;
}

Errno PageTable::protect(Addr vaddr, PageSize size, Prot prot) {
  const unsigned target = leaf_level(size);
  Node* node = root_.get();
  for (unsigned level = 3; level > target; --level) {
    Entry& e = node->slots[index_at(vaddr, level)];
    if (e.leaf || !e.child) {
      return Errno::kNoEnt;
    }
    node = e.child.get();
  }
  Entry& leaf = node->slots[index_at(vaddr, target)];
  if (!leaf.leaf) {
    return Errno::kNoEnt;
  }
  leaf.prot = prot;
  return Errno::kOk;
}

std::optional<Translation> PageTable::walk(Addr vaddr) const {
  const Node* node = root_.get();
  for (unsigned level = 3; level > 0; --level) {
    const Entry& e = node->slots[index_at(vaddr, level)];
    if (e.leaf) {
      const PageSize size = level == 1 ? PageSize::k2M : PageSize::k1G;
      const Addr offset = vaddr & (bytes(size) - 1);
      return Translation{e.phys + offset, size, e.prot};
    }
    if (!e.child) {
      return std::nullopt;
    }
    node = e.child.get();
  }
  const Entry& leaf = node->slots[index_at(vaddr, 0)];
  if (!leaf.leaf) {
    return std::nullopt;
  }
  const Addr offset = vaddr & (kSmallPageSize - 1);
  return Translation{leaf.phys + offset, PageSize::k4K, leaf.prot};
}

Errno PageTable::split_large(Addr vaddr, PtOpStats* stats) {
  const Addr base = align_down(vaddr, kLargePageSize);
  Node* node = root_.get();
  for (unsigned level = 3; level > 1; --level) {
    Entry& e = node->slots[index_at(base, level)];
    if (e.leaf || !e.child) {
      return Errno::kNoEnt;
    }
    node = e.child.get();
  }
  Entry& pd = node->slots[index_at(base, 1)];
  if (!pd.leaf) {
    return Errno::kNoEnt;
  }
  const Addr phys = pd.phys;
  const Prot prot = pd.prot;
  // Replace the 2M leaf with a PT of 512 4K leaves over the same frames.
  pd.leaf = false;
  pd.child = std::make_unique<Node>();
  ++table_pages_;
  Node* pt = pd.child.get();
  for (unsigned i = 0; i < kFanout; ++i) {
    Entry& e = pt->slots[i];
    e.leaf = true;
    e.phys = phys + static_cast<Addr>(i) * kSmallPageSize;
    e.prot = prot;
  }
  pt->used = kFanout;
  account_map(PageSize::k2M, -static_cast<std::int64_t>(kLargePageSize));
  account_map(PageSize::k4K, static_cast<std::int64_t>(kLargePageSize));
  if (stats != nullptr) {
    stats->levels = 4;
    stats->tables_allocated = 1;
    stats->entries_written = kFanout;
  }
  return Errno::kOk;
}

unsigned PageTable::small_count_in_2m(Addr vaddr) const {
  const Addr base = align_down(vaddr, kLargePageSize);
  const Node* node = root_.get();
  for (unsigned level = 3; level > 1; --level) {
    const Entry& e = node->slots[index_at(base, level)];
    if (e.leaf || !e.child) {
      return 0;
    }
    node = e.child.get();
  }
  const Entry& pd = node->slots[index_at(base, 1)];
  if (pd.leaf || !pd.child) {
    return 0;
  }
  return pd.child->used;
}

bool PageTable::large_leaf_at(Addr vaddr) const {
  const auto t = walk(vaddr);
  return t.has_value() && t->size != PageSize::k4K;
}

std::uint64_t PageTable::mapped_bytes(Range vrange) const {
  std::uint64_t total = 0;
  for_each_leaf([&](Addr va, const Translation& t) {
    const Range leaf{va, va + bytes(t.size)};
    if (leaf.overlaps(vrange)) {
      const Addr lo = std::max(leaf.begin, vrange.begin);
      const Addr hi = std::min(leaf.end, vrange.end);
      total += hi - lo;
    }
  });
  return total;
}

} // namespace hpmmap::mm
