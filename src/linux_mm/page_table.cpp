#include "linux_mm/page_table.hpp"

#include <algorithm>

namespace hpmmap::mm {

PageTable::PageTable() {
  nodes_.push_back(Node{});
  used_.push_back(0);
}

std::uint32_t PageTable::alloc_node() {
  if (!free_nodes_.empty()) {
    const std::uint32_t idx = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[idx].slots.fill(0);
    used_[idx] = 0;
    return idx;
  }
  nodes_.push_back(Node{});
  used_.push_back(0);
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void PageTable::free_node(std::uint32_t idx) {
  HPMMAP_ASSERT(idx != kRoot, "cannot free the root table");
  free_nodes_.push_back(idx);
}

unsigned PageTable::leaf_level(PageSize size) noexcept {
  switch (size) {
    case PageSize::k4K: return 0;
    case PageSize::k2M: return 1;
    case PageSize::k1G: return 2;
  }
  return 0;
}

void PageTable::account_map(PageSize size, std::int64_t delta) noexcept {
  const auto apply = [delta](std::uint64_t& v) {
    v = static_cast<std::uint64_t>(static_cast<std::int64_t>(v) + delta);
  };
  switch (size) {
    case PageSize::k4K: apply(mix_.bytes_4k); break;
    case PageSize::k2M: apply(mix_.bytes_2m); break;
    case PageSize::k1G: apply(mix_.bytes_1g); break;
  }
}

Errno PageTable::map(Addr vaddr, Addr paddr, PageSize size, Prot prot, PtOpStats* stats) {
  if (!is_aligned(vaddr, bytes(size)) || !is_aligned(paddr, bytes(size))) {
    return Errno::kInval;
  }
  const unsigned target = leaf_level(size);
  std::uint32_t node = kRoot;
  PtOpStats local;
  local.levels = 1;
  for (unsigned level = 3; level > target; --level) {
    // deque references survive alloc_node()'s push_back.
    std::uint64_t& e = nodes_[node].slots[index_at(vaddr, level)];
    if (is_leaf(e)) {
      return Errno::kExist; // a larger mapping already covers this address
    }
    if (!has_child(e)) {
      const std::uint32_t child = alloc_node();
      e = make_child(child);
      ++used_[node];
      ++table_pages_;
      ++local.tables_allocated;
    }
    node = child_index(e);
    ++local.levels;
  }
  std::uint64_t& leaf = nodes_[node].slots[index_at(vaddr, target)];
  if (is_leaf(leaf)) {
    return Errno::kExist;
  }
  if (has_child(leaf)) {
    // A child table exists from earlier small mappings. If it is empty
    // (all PTEs unmapped — the khugepaged collapse path), free it and
    // install the large leaf in its place; otherwise the range is busy.
    const std::uint32_t child = child_index(leaf);
    if (used_[child] != 0) {
      return Errno::kExist;
    }
    free_node(child);
    --table_pages_;
    --used_[node];
    leaf = 0;
  }
  leaf = make_leaf(paddr, prot);
  ++used_[node];
  ++local.entries_written;
  account_map(size, static_cast<std::int64_t>(bytes(size)));
  if (stats != nullptr) {
    *stats = local;
  }
  return Errno::kOk;
}

Errno PageTable::unmap(Addr vaddr, PageSize size, PtOpStats* stats) {
  if (!is_aligned(vaddr, bytes(size))) {
    return Errno::kInval;
  }
  const unsigned target = leaf_level(size);
  std::uint32_t node = kRoot;
  PtOpStats local;
  local.levels = 1;
  for (unsigned level = 3; level > target; --level) {
    const std::uint64_t e = nodes_[node].slots[index_at(vaddr, level)];
    if (is_leaf(e) || !has_child(e)) {
      return Errno::kNoEnt;
    }
    node = child_index(e);
    ++local.levels;
  }
  std::uint64_t& leaf = nodes_[node].slots[index_at(vaddr, target)];
  if (!is_leaf(leaf)) {
    return Errno::kNoEnt;
  }
  leaf = 0;
  --used_[node];
  ++local.entries_written;
  account_map(size, -static_cast<std::int64_t>(bytes(size)));
  // Interior tables are retained (Linux frees them lazily too); the
  // table_pages_ count therefore only grows within a process lifetime.
  if (stats != nullptr) {
    *stats = local;
  }
  return Errno::kOk;
}

Errno PageTable::protect(Addr vaddr, PageSize size, Prot prot) {
  const unsigned target = leaf_level(size);
  std::uint32_t node = kRoot;
  for (unsigned level = 3; level > target; --level) {
    const std::uint64_t e = nodes_[node].slots[index_at(vaddr, level)];
    if (is_leaf(e) || !has_child(e)) {
      return Errno::kNoEnt;
    }
    node = child_index(e);
  }
  std::uint64_t& leaf = nodes_[node].slots[index_at(vaddr, target)];
  if (!is_leaf(leaf)) {
    return Errno::kNoEnt;
  }
  leaf = make_leaf(leaf_phys(leaf), prot);
  return Errno::kOk;
}

std::optional<Translation> PageTable::walk(Addr vaddr) const {
  std::uint32_t node = kRoot;
  for (unsigned level = 3; level > 0; --level) {
    const std::uint64_t e = nodes_[node].slots[index_at(vaddr, level)];
    if (is_leaf(e)) {
      const PageSize size = level == 1 ? PageSize::k2M : PageSize::k1G;
      const Addr offset = vaddr & (bytes(size) - 1);
      return Translation{leaf_phys(e) + offset, size, leaf_prot(e)};
    }
    if (!has_child(e)) {
      return std::nullopt;
    }
    node = child_index(e);
  }
  const std::uint64_t leaf = nodes_[node].slots[index_at(vaddr, 0)];
  if (!is_leaf(leaf)) {
    return std::nullopt;
  }
  const Addr offset = vaddr & (kSmallPageSize - 1);
  return Translation{leaf_phys(leaf) + offset, PageSize::k4K, leaf_prot(leaf)};
}

Errno PageTable::split_large(Addr vaddr, PtOpStats* stats) {
  const Addr base = align_down(vaddr, kLargePageSize);
  std::uint32_t node = kRoot;
  for (unsigned level = 3; level > 1; --level) {
    const std::uint64_t e = nodes_[node].slots[index_at(base, level)];
    if (is_leaf(e) || !has_child(e)) {
      return Errno::kNoEnt;
    }
    node = child_index(e);
  }
  const unsigned pd_slot = index_at(base, 1);
  const std::uint64_t pd = nodes_[node].slots[pd_slot];
  if (!is_leaf(pd)) {
    return Errno::kNoEnt;
  }
  const Addr phys = leaf_phys(pd);
  const Prot prot = leaf_prot(pd);
  // Replace the 2M leaf with a PT of 512 4K leaves over the same frames.
  const std::uint32_t pt = alloc_node();
  nodes_[node].slots[pd_slot] = make_child(pt);
  ++table_pages_;
  Node& child = nodes_[pt];
  for (unsigned i = 0; i < kFanout; ++i) {
    child.slots[i] = make_leaf(phys + static_cast<Addr>(i) * kSmallPageSize, prot);
  }
  used_[pt] = kFanout;
  account_map(PageSize::k2M, -static_cast<std::int64_t>(kLargePageSize));
  account_map(PageSize::k4K, static_cast<std::int64_t>(kLargePageSize));
  if (stats != nullptr) {
    stats->levels = 4;
    stats->tables_allocated = 1;
    stats->entries_written = kFanout;
  }
  return Errno::kOk;
}

unsigned PageTable::small_count_in_2m(Addr vaddr) const {
  const Addr base = align_down(vaddr, kLargePageSize);
  std::uint32_t node = kRoot;
  for (unsigned level = 3; level > 1; --level) {
    const std::uint64_t e = nodes_[node].slots[index_at(base, level)];
    if (is_leaf(e) || !has_child(e)) {
      return 0;
    }
    node = child_index(e);
  }
  const std::uint64_t pd = nodes_[node].slots[index_at(base, 1)];
  if (is_leaf(pd) || !has_child(pd)) {
    return 0;
  }
  return used_[child_index(pd)];
}

bool PageTable::large_leaf_at(Addr vaddr) const {
  const auto t = walk(vaddr);
  return t.has_value() && t->size != PageSize::k4K;
}

std::uint64_t PageTable::mapped_bytes(Range vrange) const {
  std::uint64_t total = 0;
  for_each_leaf([&](Addr va, const Translation& t) {
    const Range leaf{va, va + bytes(t.size)};
    if (leaf.overlaps(vrange)) {
      const Addr lo = std::max(leaf.begin, vrange.begin);
      const Addr hi = std::min(leaf.end, vrange.end);
      total += hi - lo;
    }
  });
  return total;
}

} // namespace hpmmap::mm
