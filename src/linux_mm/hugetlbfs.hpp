// HugeTLBfs: preallocated per-NUMA-zone large-page pools (§II-C).
//
// The pools are reserved at boot from pristine (unfragmented) zones —
// the real system's `hugepages=` boot parameter — and are invisible to
// the normal allocator afterwards. That exclusivity is the double-edged
// sword Figure 5 documents: hugetlb faults always find memory, while the
// rest of the system fights over what is left.
//
// The free pages are not kept in side vectors: each zone's pool is an
// intrusive LIFO stack threaded through that zone's hw::MemMap (state
// kHugetlbPool on the head frame, next-links in the map's link table),
// so frame ownership has a single home the auditor can cross-check.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "hw/mem_map.hpp"
#include "linux_mm/memory_system.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::mm {

struct HugetlbStats {
  std::uint64_t pool_pages_total = 0;
  std::uint64_t faults_served = 0;
  std::uint64_t pool_exhausted = 0;
};

class HugetlbPool {
 public:
  /// Reserve `bytes_per_zone` of 2M pages from every zone. Must run at
  /// "boot" (before any fragmentation); aborts if reservation fails,
  /// matching a failed hugepages= boot line.
  HugetlbPool(MemorySystem& memory, std::uint64_t bytes_per_zone);
  ~HugetlbPool();

  HugetlbPool(const HugetlbPool&) = delete;
  HugetlbPool& operator=(const HugetlbPool&) = delete;

  /// Take one 2M page, preferring `zone`, spilling to any other zone
  /// with free pool pages. nullopt when every pool is empty (the
  /// application gets SIGBUS on the real system).
  [[nodiscard]] std::optional<std::pair<Addr, ZoneId>> alloc_page(ZoneId zone);

  /// Return a page to its zone's pool.
  void free_page(ZoneId zone, Addr addr);

  [[nodiscard]] std::uint64_t free_pages(ZoneId zone) const;
  [[nodiscard]] std::uint64_t total_pages(ZoneId zone) const;
  [[nodiscard]] const HugetlbStats& stats() const noexcept { return stats_; }

  /// Visit the zone's free pool pages as (addr), newest first (stack
  /// order) — the invariant auditor's frame sweep. Bounded by the pool
  /// count so a corrupted chain still terminates.
  template <typename Fn>
  void for_each_pool_page(ZoneId zone, Fn&& fn) const {
    HPMMAP_ASSERT(zone < pool_.size(), "zone out of range");
    const hw::MemMap& m = memory_.buddy(zone).mem_map();
    std::uint32_t idx = pool_[zone].head;
    for (std::uint64_t n = 0; idx != hw::MemMap::kNil && n < pool_[zone].count; ++n) {
      fn(m.addr_of(idx));
      idx = m.link(idx).next;
    }
  }

 private:
  friend struct hpmmap::snapshot::Access;

  /// Intrusive stack push (ctor reservation and free_page share it).
  void push(ZoneId zone, Addr addr);

  /// One zone's free stack: head frame index into the zone's MemMap.
  /// A stack only ever holds frames of its own zone (reservation and
  /// free_page both key by the frame's physical zone).
  struct ZonePool {
    std::uint32_t head = hw::MemMap::kNil;
    std::uint64_t count = 0;
  };

  MemorySystem& memory_;
  std::vector<ZonePool> pool_;
  std::vector<std::uint64_t> total_;
  HugetlbStats stats_;
};

} // namespace hpmmap::mm
