// HugeTLBfs: preallocated per-NUMA-zone large-page pools (§II-C).
//
// The pools are reserved at boot from pristine (unfragmented) zones —
// the real system's `hugepages=` boot parameter — and are invisible to
// the normal allocator afterwards. That exclusivity is the double-edged
// sword Figure 5 documents: hugetlb faults always find memory, while the
// rest of the system fights over what is left.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "linux_mm/memory_system.hpp"

namespace hpmmap::mm {

struct HugetlbStats {
  std::uint64_t pool_pages_total = 0;
  std::uint64_t faults_served = 0;
  std::uint64_t pool_exhausted = 0;
};

class HugetlbPool {
 public:
  /// Reserve `bytes_per_zone` of 2M pages from every zone. Must run at
  /// "boot" (before any fragmentation); aborts if reservation fails,
  /// matching a failed hugepages= boot line.
  HugetlbPool(MemorySystem& memory, std::uint64_t bytes_per_zone);
  ~HugetlbPool();

  HugetlbPool(const HugetlbPool&) = delete;
  HugetlbPool& operator=(const HugetlbPool&) = delete;

  /// Take one 2M page, preferring `zone`, spilling to any other zone
  /// with free pool pages. nullopt when every pool is empty (the
  /// application gets SIGBUS on the real system).
  [[nodiscard]] std::optional<std::pair<Addr, ZoneId>> alloc_page(ZoneId zone);

  /// Return a page to its zone's pool.
  void free_page(ZoneId zone, Addr addr);

  [[nodiscard]] std::uint64_t free_pages(ZoneId zone) const;
  [[nodiscard]] std::uint64_t total_pages(ZoneId zone) const;
  /// The zone's free stack, for the invariant auditor's frame sweep.
  [[nodiscard]] const std::vector<Addr>& free_pool(ZoneId zone) const;
  [[nodiscard]] const HugetlbStats& stats() const noexcept { return stats_; }

 private:
  MemorySystem& memory_;
  std::vector<std::vector<Addr>> pool_; // per-zone free stacks
  std::vector<std::uint64_t> total_;
  HugetlbStats stats_;
};

} // namespace hpmmap::mm
