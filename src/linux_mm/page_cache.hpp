// Page cache model.
//
// Linux spends nearly all free memory on the page cache; a competing
// kernel build fills it with source files and object churn. Reclaim then
// has to shrink the cache page by page — cheap while entries are clean,
// expensive (writeback) once the clean tail is gone. This is the
// mechanism behind the Figure 3/5 "small faults cost 475k cycles under
// load" behaviour.
//
// Cache blocks are *movable* in the kernel's sense: compaction may
// relocate them to assemble contiguous 2M regions, so the cache supports
// address lookup and relocation.
//
// There is no per-block heap state: the LRU is an intrusive list
// threaded through the buddy's hw::MemMap link table, dirtiness and
// order live in the per-frame meta byte (kCacheClean/kCacheDirty heads),
// and block_containing() is an O(orders) align-down probe of that meta
// instead of an ordered-map search — grow/shrink/relocate touch no
// allocator and stay O(1) per block.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "common/types.hpp"
#include "hw/mem_map.hpp"
#include "linux_mm/buddy_allocator.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::mm {

class PageCache {
 public:
  /// `dirty_fraction`: probability a cached block needs writeback before
  /// it can be reclaimed (compiler temp output vs read-only source).
  explicit PageCache(BuddyAllocator& buddy, double dirty_fraction = 0.3);

  /// Read `bytes` of file data into the cache: allocates order-`order`
  /// blocks from the buddy until satisfied or free memory reaches the
  /// floor (page-cache fills stop at the low watermark and let kswapd
  /// take over; they never drain the atomic reserves). Returns bytes
  /// actually cached.
  std::uint64_t grow(std::uint64_t bytes, unsigned order, bool dirty);

  /// Free-memory floor below which grow() refuses to allocate.
  void set_free_floor(std::uint64_t bytes) noexcept { free_floor_ = bytes; }
  [[nodiscard]] std::uint64_t free_floor() const noexcept { return free_floor_; }

  /// Adopt an already-allocated buddy block into the cache (a process
  /// exits but its file data stays cached). The block must have come
  /// from this cache's buddy and must not be freed by the caller.
  void adopt(Addr addr, unsigned order, bool dirty);

  /// Drop cached blocks until `bytes` have been freed back to the buddy
  /// or the cache is empty (LRU order).
  struct ShrinkResult {
    std::uint64_t bytes_freed = 0;
    std::uint64_t writeback_blocks = 0;
    std::uint64_t clean_blocks = 0;
  };
  ShrinkResult shrink(std::uint64_t bytes);

  /// Drop everything (workload exit).
  void clear();

  /// The cache block containing `addr`, if any, as (block base, order).
  [[nodiscard]] std::optional<std::pair<Addr, unsigned>> block_containing(Addr addr) const {
    return buddy_.mem_map().block_containing(addr, hw::kCacheStates, buddy_.max_order());
  }

  /// Compaction support: the block at `old_addr` now lives at
  /// `new_addr`. LRU position and dirtiness are preserved.
  void relocate(Addr old_addr, Addr new_addr);

  /// Visit every cached block as (base, order, dirty) in ascending
  /// address order (deterministic; the invariant auditor's sweep).
  /// O(frames) meta scan — audits, not the hot path.
  template <typename Fn>
  void for_each_block(Fn&& fn) const {
    buddy_.mem_map().for_each_head([&](Addr a, hw::FrameState st, unsigned o) {
      if (st == hw::FrameState::kCacheClean || st == hw::FrameState::kCacheDirty) {
        fn(a, o, st == hw::FrameState::kCacheDirty);
      }
    });
  }

  /// Visit the LRU chain front (oldest) to back as (base, order, dirty)
  /// — the auditor's linkage walk. Bounded by block_count() so a
  /// corrupted (cyclic) chain still terminates.
  template <typename Fn>
  void for_each_lru(Fn&& fn) const {
    const hw::MemMap& m = buddy_.mem_map();
    std::uint32_t idx = head_;
    for (std::size_t n = 0; idx != hw::MemMap::kNil && n < count_; ++n) {
      fn(m.addr_of(idx), m.order(idx), m.state(idx) == hw::FrameState::kCacheDirty);
      idx = m.link(idx).next;
    }
  }

  [[nodiscard]] std::uint64_t cached_bytes() const noexcept { return cached_bytes_; }
  [[nodiscard]] std::size_t block_count() const noexcept { return count_; }
  [[nodiscard]] double dirty_fraction() const noexcept { return dirty_fraction_; }
  void set_dirty_fraction(double f) noexcept { dirty_fraction_ = f; }

 private:
  friend struct hpmmap::snapshot::Access;

  void push_back_block(Addr addr, unsigned order, bool dirty);
  /// Unlink `idx` from the LRU chain (meta untouched).
  void unlink(std::uint32_t idx);

  BuddyAllocator& buddy_;
  std::uint32_t head_ = hw::MemMap::kNil; // oldest (reclaimed first)
  std::uint32_t tail_ = hw::MemMap::kNil; // newest
  std::size_t count_ = 0;
  std::uint64_t cached_bytes_ = 0;
  std::uint64_t free_floor_ = 0;
  double dirty_fraction_;
  std::uint64_t grow_count_ = 0; // deterministic dirty assignment
};

} // namespace hpmmap::mm
