// Transparent Huge Pages: the fault-path huge allocation and the
// khugepaged background merge daemon (§II-B).
//
// Both components are faithful to the kernel's structure:
//  - the fault handler asks try_fault_huge() first; success depends on
//    VMA alignment/coverage, absence of existing 4K mappings in the 2M
//    region, and the zone allocator producing an order-9 block (possibly
//    via direct compaction);
//  - khugepaged periodically picks a registered process, finds a 2M
//    region with enough 4K-mapped pages, allocates a huge page, and
//    performs the merge *while holding the process's page-table lock* —
//    every fault arriving during the merge waits (the "Merge" rows in
//    Figure 2 and the blue dots in Figure 4).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "linux_mm/address_space.hpp"
#include "linux_mm/memory_system.hpp"
#include "sim/engine.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::mm {

struct ThpStats {
  std::uint64_t fault_huge_success = 0;
  std::uint64_t fault_huge_fallback = 0;
  std::uint64_t merges_completed = 0;
  std::uint64_t merges_aborted = 0; // process exit, region churn, or injected
  std::uint64_t merge_candidates_scanned = 0;
  std::uint64_t split_on_mlock = 0;
  Cycles total_merge_lock_cycles = 0;
};

class ThpService {
 public:
  /// `load_probe` reports whether the node currently runs competing
  /// CPU work — preempted merges hold the PT lock far longer (§II-B).
  ThpService(MemorySystem& memory, sim::Engine& engine,
             std::function<double()> load_factor_probe);

  // --- registration ---------------------------------------------------
  void register_process(AddressSpace* as);
  void unregister_process(AddressSpace* as);

  // --- fault path --------------------------------------------------------
  struct HugeFaultResult {
    bool ok = false;
    Addr phys = 0;
    AllocOutcome alloc;
  };
  /// Try to satisfy a fault at `vaddr` inside `vma` with a 2M page.
  HugeFaultResult try_fault_huge(AddressSpace& as, const Vma& vma, Addr vaddr);

  /// Whether the 2M region around `vaddr` is even eligible (alignment +
  /// VMA coverage + no prior mappings). Split out for tests.
  [[nodiscard]] bool region_eligible(const AddressSpace& as, const Vma& vma, Addr vaddr) const;

  /// khugepaged_enter(): the fault path fell back to a small page in a
  /// THP-eligible VMA; queue the region so the daemon revisits it. This
  /// is why merges land exactly where the application is faulting —
  /// the noise-injection mechanism of Figure 4.
  void note_fallback(AddressSpace* as, Addr vaddr);

  // --- khugepaged ----------------------------------------------------------
  /// Begin periodic scanning on the simulation clock.
  void start_khugepaged(double clock_hz);
  void stop_khugepaged();

  /// One scan step (exposed for tests; normally event-driven).
  void scan_once();

  // --- mlock interaction ------------------------------------------------
  /// Pinning splits every large page in the range into small pages
  /// before locking (§II-B: "the page is first split into small pages
  /// and then pinned"). Returns number of 2M leaves split.
  unsigned split_for_mlock(AddressSpace& as, Range range);

  [[nodiscard]] const ThpStats& stats() const noexcept { return stats_; }

 private:
  friend struct hpmmap::snapshot::Access;

  struct MergeCandidate {
    AddressSpace* as;
    Addr region; // 2M-aligned virtual base
    unsigned mapped_small;
  };
  // In-flight daemon work is token-registered rather than captured in
  // anonymous lambda closures so snapshot restore can re-arm the exact
  // pending events: each scheduled continuation is a named member keyed
  // by a token that looks up its state here.
  struct PendingCollapse {
    std::uint64_t token;
    AddressSpace* as;
    Addr region;
    unsigned mapped_small;
    sim::EventId event{};
  };
  struct PendingMerge {
    std::uint64_t token;
    AddressSpace* as;
    Addr region;
    Addr huge_phys;
    sim::EventId event{};
  };
  [[nodiscard]] std::optional<MergeCandidate> find_candidate();
  void perform_merge(const MergeCandidate& candidate);
  void schedule_next_scan();
  void scan_tick();
  void wake_tick();
  void collapse_tick(std::uint64_t token);
  void finish_merge(std::uint64_t token);

  MemorySystem& memory_;
  sim::Engine& engine_;
  std::function<double()> load_factor_;
  std::vector<AddressSpace*> processes_;
  std::deque<std::pair<AddressSpace*, Addr>> enter_queue_; // recent fallbacks
  std::set<std::pair<AddressSpace*, Addr>> inflight_;      // merges not yet completed
  std::size_t scan_rr_ = 0;  // round-robin over processes
  Addr scan_cursor_ = 0;     // resumes inside a process's address space
  Cycles scan_period_ = 0;
  Cycles last_scan_ = 0;
  bool running_ = false;
  sim::EventId pending_scan_{};
  sim::EventId wake_pending_{};
  std::vector<PendingCollapse> pending_collapses_;
  std::vector<PendingMerge> pending_merges_;
  std::uint64_t next_token_ = 1;
  ThpStats stats_;
};

} // namespace hpmmap::mm
