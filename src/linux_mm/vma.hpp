// Virtual memory areas and the per-process VMA tree.
//
// The paper's §II argument hinges on VMA-level behaviour: Linux lays VMAs
// out for 4K allocation, producing alignment and permission conflicts
// that forbid large mappings; THP eligibility is a per-VMA property;
// HugeTLBfs regions are special VMAs; the stack VMA can never be
// hugetlb-backed. This module implements those semantics.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace hpmmap::mm {

enum class VmaKind : std::uint8_t {
  kText,    // executable image
  kData,    // initialized data / BSS
  kHeap,    // brk-managed
  kStack,   // grows down; never hugetlb (§II-C)
  kAnon,    // anonymous mmap
  kHugetlb, // HugeTLBfs-backed file mapping
};

[[nodiscard]] constexpr std::string_view name(VmaKind k) noexcept {
  switch (k) {
    case VmaKind::kText:    return "text";
    case VmaKind::kData:    return "data";
    case VmaKind::kHeap:    return "heap";
    case VmaKind::kStack:   return "stack";
    case VmaKind::kAnon:    return "anon";
    case VmaKind::kHugetlb: return "hugetlb";
  }
  return "?";
}

struct Vma {
  Range range;
  Prot prot = kProtRW;
  VmaKind kind = VmaKind::kAnon;
  bool thp_eligible = false; // anonymous, large enough, madvise/always policy
  bool locked = false;       // mlock'd
  PageSize hugetlb_size = PageSize::k2M; // meaningful only for kHugetlb

  /// Two VMAs can merge when adjacent and identical in every attribute
  /// (the permission-conflict rule from §II-A: differing prot flags keep
  /// VMAs separate and defeat large mappings).
  [[nodiscard]] bool compatible(const Vma& other) const noexcept {
    return prot == other.prot && kind == other.kind && thp_eligible == other.thp_eligible &&
           locked == other.locked && hugetlb_size == other.hugetlb_size;
  }
};

/// Canonical layout windows (x86-64 Linux-like).
struct AddressLayout {
  static constexpr Addr kTextBase = 0x0000000000400000ull;
  static constexpr Addr kMmapTop = 0x00007f0000000000ull;   // mmap grows down from here
  static constexpr Addr kMmapBottom = 0x0000100000000000ull;
  static constexpr Addr kStackTop = 0x00007ffffffff000ull;
  static constexpr std::uint64_t kStackMax = 8 * 1024 * 1024ull; // RLIMIT_STACK default
  /// HPMMAP claims a region Linux never uses (§III-B: "locates and maps
  /// memory into an unused memory region").
  static constexpr Addr kHpmmapBase = 0x0000200000000000ull;
  static constexpr Addr kHpmmapTop = 0x0000400000000000ull;
};

class VmaTree {
 public:
  /// Insert; fails with kExist on overlap. Adjacent compatible VMAs are
  /// merged (Linux's vma_merge), which is what makes heaps THP-friendly.
  Errno insert(Vma vma);

  /// Remove [range); partially covered VMAs are split. Returns the
  /// removed pieces so the caller can release backing pages.
  std::vector<Vma> remove(Range range);

  /// Change protection over [range); splits partially covered VMAs.
  /// This is how permission conflicts fragment a once-mergeable region.
  Errno protect(Range range, Prot prot);

  [[nodiscard]] const Vma* find(Addr addr) const;

  /// Lowest gap of at least `len` aligned to `alignment` within `window`
  /// searching downward from the top (Linux's default mmap policy).
  [[nodiscard]] std::optional<Addr> find_free_topdown(std::uint64_t len, std::uint64_t alignment,
                                                      Range window) const;

  [[nodiscard]] std::size_t count() const noexcept { return vmas_.size(); }
  [[nodiscard]] std::uint64_t mapped_bytes() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return vmas_.empty(); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [begin, vma] : vmas_) {
      fn(vma);
    }
  }

  /// Invariants: sorted, non-overlapping, non-empty, merged where
  /// mergeable. For tests.
  [[nodiscard]] bool check_consistency() const;

 private:
  void merge_around(std::map<Addr, Vma>::iterator it);
  std::map<Addr, Vma> vmas_; // keyed by range.begin
};

} // namespace hpmmap::mm
