#include "linux_mm/fault.hpp"

#include "common/assert.hpp"

namespace hpmmap::mm {

FaultHandler::FaultHandler(MemorySystem& memory, ThpService* thp, HugetlbPool* hugetlb)
    : memory_(memory), thp_(thp), hugetlb_(hugetlb) {}

FaultResult FaultHandler::finish(FaultResult result, ZoneId zone) {
  // Lognormal jitter on the service portion (not the queueing wait):
  // cache state, IRQ arrivals, sibling interference.
  const Cycles service = result.cost - result.lock_wait;
  const double cv = memory_.costs().fault_jitter_cv;
  const double jittered = memory_.rng().lognormal_from_moments(
      static_cast<double>(service), cv * static_cast<double>(service));
  result.cost = result.lock_wait + static_cast<Cycles>(jittered);
  // Bandwidth contention already shaped the zeroing terms; the handler's
  // pointer-chasing parts also degrade a little on a saturated node.
  const double factor = 1.0 + 0.15 * (memory_.bandwidth().contention_factor(zone) - 1.0);
  result.cost = static_cast<Cycles>(static_cast<double>(result.cost) * factor);
  return result;
}

FaultResult FaultHandler::handle(AddressSpace& as, Addr vaddr, Cycles now) {
  const CostModel& costs = memory_.costs();
  FaultResult result;

  // Queue on the page-table lock first: if khugepaged is mid-merge we
  // wait for the full remainder of the merge (§II-B), and the fault is
  // classified as a merge-follower — the paper's "Merge" rows.
  result.lock_wait = as.lock_wait(now);
  result.cost = result.lock_wait + costs.fault_entry + costs.vma_lookup;

  const Vma* vma = as.vmas().find(vaddr);
  if (vma == nullptr || vma->prot == Prot::kNone) {
    result.err = Errno::kFault;
    result.kind = FaultKind::kInvalid;
    return result;
  }

  const ZoneId zone = as.zone_for(vaddr);

  // After waiting out a merge the region may now be huge-mapped; the
  // fault then only re-checks and returns (cost already dominated by the
  // wait). Also covers benign races on already-mapped pages.
  if (const auto t = as.page_table().walk(vaddr); t.has_value()) {
    result.kind = result.lock_wait > 0 ? FaultKind::kMergeFollower : FaultKind::kSmall;
    result.used = t->size;
    result.cost += costs.pte_install;
    return finish(result, zone);
  }

  if (vma->kind == VmaKind::kHugetlb) {
    return handle_hugetlb(as, *vma, vaddr, result.cost, result.lock_wait);
  }

  // --- THP fault path: try a 2M mapping first (§II-B) -------------------
  if (thp_ != nullptr) {
    ThpService::HugeFaultResult huge = thp_->try_fault_huge(as, *vma, vaddr);
    if (huge.ok) {
      const Addr base = align_down(vaddr, kLargePageSize);
      const Errno err = as.page_table().map(base, huge.phys, PageSize::k2M, vma->prot);
      HPMMAP_ASSERT(err == Errno::kOk, "THP eligibility check guaranteed an empty region");
      result.kind = result.lock_wait > 0 ? FaultKind::kMergeFollower : FaultKind::kLarge;
      result.used = PageSize::k2M;
      result.entered_reclaim = huge.alloc.entered_reclaim;
      result.cost += memory_.alloc_cycles(huge.alloc, zone) +
                     memory_.zero_cost(zone, kLargePageSize, costs.zero_bytes_per_cycle) +
                     costs.pt_alloc_table + costs.pte_install + costs.rmap_account_large;
      return finish(result, zone);
    }
    result.cost += huge.alloc.entered_reclaim || huge.alloc.entered_compaction
                       ? memory_.alloc_cycles(huge.alloc, zone)
                       : 0;
  }

  // --- small-page fallback ------------------------------------------------
  // Major fault? Reclaim may have pushed this page to swap; the refault
  // pays a disk read on top of the normal path.
  const Addr page_addr = align_down(vaddr, kSmallPageSize);
  const bool swapped_in = as.take_swapped(page_addr);
  if (swapped_in) {
    const CostModel& cm = memory_.costs();
    result.cost += static_cast<Cycles>(memory_.rng().lognormal_from_moments(
        static_cast<double>(cm.swap_in_mean),
        cm.swap_in_cv * static_cast<double>(cm.swap_in_mean)));
  }
  ZoneId alloc_zone = zone;
  AllocOutcome out = memory_.alloc_pages(alloc_zone, 0, /*allow_reclaim=*/true);
  if (!out.ok) {
    // NUMA spill: try the least-loaded other zone before declaring OOM.
    alloc_zone = memory_.fallback_zone(zone);
    if (alloc_zone != zone) {
      out = memory_.alloc_pages(alloc_zone, 0, /*allow_reclaim=*/true);
    }
  }
  if (!out.ok) {
    result.err = Errno::kNoMem;
    result.kind = FaultKind::kInvalid;
    return result;
  }
  const Addr page = align_down(vaddr, kSmallPageSize);
  PtOpStats pt_stats;
  const Errno err = as.page_table().map(page, out.addr, PageSize::k4K, vma->prot, &pt_stats);
  HPMMAP_ASSERT(err == Errno::kOk, "walk() said this page was unmapped");
  // khugepaged_enter: a THP-eligible region just went small; the daemon
  // will revisit it (and inject merge noise right here, Figure 4).
  if (thp_ != nullptr && vma->thp_eligible) {
    thp_->note_fallback(&as, vaddr);
  }
  result.kind = result.lock_wait > 0 ? FaultKind::kMergeFollower : FaultKind::kSmall;
  result.used = PageSize::k4K;
  result.entered_reclaim = out.entered_reclaim;
  result.cost += memory_.alloc_cycles(out, alloc_zone) +
                 memory_.zero_cost(alloc_zone, kSmallPageSize, costs.zero_bytes_per_cycle) +
                 pt_stats.tables_allocated * costs.pt_alloc_table + costs.pte_install +
                 costs.rmap_account;
  return finish(result, alloc_zone);
}

FaultResult FaultHandler::handle_hugetlb(AddressSpace& as, const Vma& vma, Addr vaddr,
                                         Cycles base_cost, Cycles lock_wait) {
  const CostModel& costs = memory_.costs();
  FaultResult result;
  result.cost = base_cost;
  result.lock_wait = lock_wait;

  HPMMAP_ASSERT(hugetlb_ != nullptr, "hugetlb VMA without a pool configured");
  const ZoneId zone = as.zone_for(vaddr);
  const auto page = hugetlb_->alloc_page(zone);
  if (!page.has_value()) {
    result.err = Errno::kNoMem; // SIGBUS on the real system
    result.kind = FaultKind::kInvalid;
    return result;
  }
  const auto [phys, got_zone] = *page;
  const Addr base = align_down(vaddr, kLargePageSize);
  PtOpStats pt_stats;
  const Errno err = as.page_table().map(base, phys, PageSize::k2M, vma.prot, &pt_stats);
  HPMMAP_ASSERT(err == Errno::kOk, "hugetlb region double-mapped");
  result.kind = lock_wait > 0 ? FaultKind::kMergeFollower : FaultKind::kLarge;
  result.used = PageSize::k2M;
  // The hugetlb path takes the hugetlb mutex and reservation map, then
  // zeroes 2 MiB without the clearing-cache assists the normal path has;
  // this is why Figure 3's large faults are pricier than THP's yet
  // mostly load-insensitive (pool memory is never contended).
  result.cost += costs.hugetlb_fault_overhead +
                 memory_.zero_cost(got_zone, kLargePageSize, costs.hugetlb_zero_bytes_per_cycle) +
                 pt_stats.tables_allocated * costs.pt_alloc_table + costs.pte_install;
  return finish(result, got_zone);
}

} // namespace hpmmap::mm
