#include "linux_mm/fault.hpp"

#include "common/assert.hpp"
#include "linux_mm/smp.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace hpmmap::mm {

namespace {

// Component breakdown collected only while the fault category is
// enabled. Spans are laid out back-to-back under the parent "fault"
// event, giving Perfetto the per-fault cost decomposition the paper's
// Figure 2/3 tables aggregate. Durations are the pre-jitter component
// model; the parent span carries the final (jittered) handler cost.
struct FaultSpans {
  struct Span {
    const char* name;
    Cycles dur;
  };
  bool active = false;
  std::array<Span, 6> spans{};
  std::size_t n = 0;

  void add(const char* span_name, Cycles dur) {
    if (active && dur > 0 && n < spans.size()) {
      spans[n++] = Span{span_name, dur};
    }
  }
};

constexpr const char* cycles_histogram(FaultKind k) {
  switch (k) {
    case FaultKind::kSmall:         return "fault.cycles.small";
    case FaultKind::kLarge:         return "fault.cycles.large";
    case FaultKind::kMergeFollower: return "fault.cycles.merge";
    case FaultKind::kInvalid:       return "fault.cycles.invalid";
  }
  return "fault.cycles.invalid";
}

FaultResult emit_fault(const AddressSpace& as, Cycles now, std::int32_t core, FaultResult r,
                       const FaultSpans& ft) {
  if (!ft.active) {
    return r;
  }
  trace::complete(trace::Category::kFault, "fault", now, r.cost, as.pid(), core,
                  {trace::Arg::str("kind", name(r.kind).data()),
                   trace::Arg::str("page", name(r.used).data()),
                   trace::Arg::u64("lock_wait", r.lock_wait),
                   trace::Arg::u64("reclaim", r.entered_reclaim ? 1 : 0)});
  Cycles cursor = now;
  for (std::size_t i = 0; i < ft.n; ++i) {
    trace::complete(trace::Category::kFault, ft.spans[i].name, cursor, ft.spans[i].dur, as.pid(),
                    core);
    cursor += ft.spans[i].dur;
  }
  trace::metrics().histogram(cycles_histogram(r.kind)).add(static_cast<double>(r.cost));
  ++trace::metrics().counter("fault.count");
  if (r.entered_reclaim) {
    ++trace::metrics().counter("fault.direct_reclaim");
  }
  return r;
}

} // namespace

FaultHandler::FaultHandler(MemorySystem& memory, ThpService* thp, HugetlbPool* hugetlb)
    : memory_(memory), thp_(thp), hugetlb_(hugetlb) {}

FaultResult FaultHandler::finish(FaultResult result, ZoneId zone) {
  // Lognormal jitter on the service portion (not the queueing wait):
  // cache state, IRQ arrivals, sibling interference.
  const Cycles service = result.cost - result.lock_wait;
  const double cv = memory_.costs().fault_jitter_cv;
  const double jittered = memory_.rng().lognormal_from_moments(
      static_cast<double>(service), cv * static_cast<double>(service));
  result.cost = result.lock_wait + static_cast<Cycles>(jittered);
  // Bandwidth contention already shaped the zeroing terms; the handler's
  // pointer-chasing parts also degrade a little on a saturated node.
  const double factor = 1.0 + 0.15 * (memory_.bandwidth().contention_factor(zone) - 1.0);
  result.cost = static_cast<Cycles>(static_cast<double>(result.cost) * factor);
  return result;
}

FaultResult FaultHandler::handle(AddressSpace& as, Addr vaddr, Cycles now, std::int32_t core) {
  const CostModel& costs = memory_.costs();
  FaultResult result;
  FaultSpans ft;
  ft.active = trace::on(trace::Category::kFault);

  // Queue on the page-table lock first: if khugepaged is mid-merge we
  // wait for the full remainder of the merge (§II-B), and the fault is
  // classified as a merge-follower — the paper's "Merge" rows. SMP lock
  // waits below also land in lock_wait but never reclassify the fault.
  const Cycles merge_wait = as.lock_wait(now);
  result.lock_wait = merge_wait;
  if (smp_ != nullptr && core >= 0) {
    // Service shootdown IPIs that remote cores' munmaps queued on this
    // CPU while it ran userspace; the backlog drains at kernel entry.
    result.lock_wait += smp_->cpu_drain(core, now);
  }
  result.cost = result.lock_wait + costs.fault_entry + costs.vma_lookup;
  ft.add("fault.pt_lock", result.lock_wait);
  ft.add("fault.entry", costs.fault_entry + costs.vma_lookup);

  const Vma* vma = as.vmas().find(vaddr);
  if (vma == nullptr || vma->prot == Prot::kNone) {
    result.err = Errno::kFault;
    result.kind = FaultKind::kInvalid;
    return emit_fault(as, now, core, result, ft);
  }

  const ZoneId zone = as.zone_for(vaddr);

  // After waiting out a merge the region may now be huge-mapped; the
  // fault then only re-checks and returns (cost already dominated by the
  // wait). Also covers benign races on already-mapped pages.
  if (const auto t = as.page_table().walk(vaddr); t.has_value()) {
    result.kind = merge_wait > 0 ? FaultKind::kMergeFollower : FaultKind::kSmall;
    result.used = t->size;
    result.cost += costs.pte_install;
    ft.add("fault.pt", costs.pte_install);
    return emit_fault(as, now, core, finish(result, zone), ft);
  }

  if (vma->kind == VmaKind::kHugetlb) {
    return handle_hugetlb(as, *vma, vaddr, now, result.cost, result.lock_wait, merge_wait, core);
  }

  // --- THP fault path: try a 2M mapping first (§II-B) -------------------
  if (thp_ != nullptr) {
    ThpService::HugeFaultResult huge = thp_->try_fault_huge(as, *vma, vaddr);
    if (huge.ok) {
      const Addr base = align_down(vaddr, kLargePageSize);
      const Errno err = as.page_table().map(base, huge.phys, PageSize::k2M, vma->prot);
      HPMMAP_ASSERT(err == Errno::kOk, "THP eligibility check guaranteed an empty region");
      result.kind = merge_wait > 0 ? FaultKind::kMergeFollower : FaultKind::kLarge;
      result.used = PageSize::k2M;
      result.entered_reclaim = huge.alloc.entered_reclaim;
      const Cycles alloc_cost = memory_.alloc_cycles(huge.alloc, zone);
      const Cycles zero = memory_.zero_cost(zone, kLargePageSize, costs.zero_bytes_per_cycle);
      const Cycles pt = costs.pt_alloc_table + costs.pte_install + costs.rmap_account_large;
      if (smp_ != nullptr && core >= 0) {
        // Order-9 allocations always go through the zone lock (no pcp
        // path exists for them), then the PT lock covers the install —
        // plus the 2 MiB zeroing when sharding is off.
        const Cycles zw = smp_->zone_lock(zone, now, alloc_cost, core);
        const bool sharded = smp_->config().sharded_pt_locks;
        const Cycles ptw = smp_->pt_lock(as.pid(), vaddr, now, sharded ? pt : zero + pt, core);
        result.lock_wait += zw + ptw;
        result.cost += zw + ptw;
      }
      result.cost += alloc_cost + zero + pt;
      ft.add("fault.alloc", alloc_cost);
      ft.add("fault.zero", zero);
      ft.add("fault.pt", pt);
      return emit_fault(as, now, core, finish(result, zone), ft);
    }
    const Cycles failed_alloc = huge.alloc.entered_reclaim || huge.alloc.entered_compaction
                                    ? memory_.alloc_cycles(huge.alloc, zone)
                                    : 0;
    result.cost += failed_alloc;
    ft.add("fault.thp_attempt", failed_alloc);
  }

  // --- small-page fallback ------------------------------------------------
  // Major fault? Reclaim may have pushed this page to swap; the refault
  // pays a disk read on top of the normal path.
  const Addr page_addr = align_down(vaddr, kSmallPageSize);
  const bool swapped_in = as.take_swapped(page_addr);
  if (swapped_in) {
    const CostModel& cm = memory_.costs();
    const auto swap_cost = static_cast<Cycles>(memory_.rng().lognormal_from_moments(
        static_cast<double>(cm.swap_in_mean),
        cm.swap_in_cv * static_cast<double>(cm.swap_in_mean)));
    result.cost += swap_cost;
    ft.add("fault.swap_in", swap_cost);
  }
  ZoneId alloc_zone = zone;
  Addr frame = 0;
  bool alloc_ok = false;
  bool entered_reclaim = false;
  Cycles alloc_cost = 0; // buddy/pcp service cycles
  Cycles alloc_wait = 0; // zone-lock wait cycles (SMP only)
  if (smp_ != nullptr && core >= 0) {
    SmallAlloc sa = smp_->alloc_small(memory_, alloc_zone, core, now);
    alloc_cost += sa.work;
    alloc_wait += sa.wait;
    if (!sa.ok) {
      // NUMA spill: try the least-loaded other zone before declaring OOM.
      alloc_zone = memory_.fallback_zone(zone);
      if (alloc_zone != zone) {
        sa = smp_->alloc_small(memory_, alloc_zone, core, now);
        alloc_cost += sa.work;
        alloc_wait += sa.wait;
      }
    }
    frame = sa.addr;
    alloc_ok = sa.ok;
    entered_reclaim = sa.entered_reclaim;
  } else {
    AllocOutcome out = memory_.alloc_pages(alloc_zone, 0, /*allow_reclaim=*/true);
    if (!out.ok) {
      // NUMA spill: try the least-loaded other zone before declaring OOM.
      alloc_zone = memory_.fallback_zone(zone);
      if (alloc_zone != zone) {
        out = memory_.alloc_pages(alloc_zone, 0, /*allow_reclaim=*/true);
      }
    }
    frame = out.addr;
    alloc_ok = out.ok;
    entered_reclaim = out.entered_reclaim;
    if (alloc_ok) {
      alloc_cost = memory_.alloc_cycles(out, alloc_zone);
    }
  }
  if (!alloc_ok) {
    result.err = Errno::kNoMem;
    result.kind = FaultKind::kInvalid;
    result.lock_wait += alloc_wait;
    result.cost += alloc_wait + alloc_cost;
    return emit_fault(as, now, core, result, ft);
  }
  const Addr page = align_down(vaddr, kSmallPageSize);
  PtOpStats pt_stats;
  const Errno err = as.page_table().map(page, frame, PageSize::k4K, vma->prot, &pt_stats);
  HPMMAP_ASSERT(err == Errno::kOk, "walk() said this page was unmapped");
  // khugepaged_enter: a THP-eligible region just went small; the daemon
  // will revisit it (and inject merge noise right here, Figure 4).
  if (thp_ != nullptr && vma->thp_eligible) {
    thp_->note_fallback(&as, vaddr);
  }
  result.kind = merge_wait > 0 ? FaultKind::kMergeFollower : FaultKind::kSmall;
  result.used = PageSize::k4K;
  result.entered_reclaim = entered_reclaim;
  const Cycles zero = memory_.zero_cost(alloc_zone, kSmallPageSize, costs.zero_bytes_per_cycle);
  const Cycles pt =
      pt_stats.tables_allocated * costs.pt_alloc_table + costs.pte_install + costs.rmap_account;
  if (smp_ != nullptr && core >= 0) {
    // Sharded mode locks only the install; the Linux-1999 shape holds
    // one mm-wide lock across zeroing *and* install, so concurrent
    // faulters serialize on the zeroing too.
    const bool sharded = smp_->config().sharded_pt_locks;
    alloc_wait += smp_->pt_lock(as.pid(), page, now, sharded ? pt : zero + pt, core);
  }
  result.lock_wait += alloc_wait;
  result.cost += alloc_wait + alloc_cost + zero + pt;
  ft.add("fault.alloc", alloc_cost);
  ft.add("fault.zero", zero);
  ft.add("fault.pt", pt);
  return emit_fault(as, now, core, finish(result, alloc_zone), ft);
}

FaultResult FaultHandler::handle_hugetlb(AddressSpace& as, const Vma& vma, Addr vaddr, Cycles now,
                                         Cycles base_cost, Cycles lock_wait, Cycles merge_wait,
                                         std::int32_t core) {
  const CostModel& costs = memory_.costs();
  FaultResult result;
  result.cost = base_cost;
  result.lock_wait = lock_wait;
  FaultSpans ft;
  ft.active = trace::on(trace::Category::kFault);
  ft.add("fault.pt_lock", lock_wait);
  ft.add("fault.entry", base_cost - lock_wait);

  HPMMAP_ASSERT(hugetlb_ != nullptr, "hugetlb VMA without a pool configured");
  const ZoneId zone = as.zone_for(vaddr);
  const auto page = hugetlb_->alloc_page(zone);
  if (!page.has_value()) {
    result.err = Errno::kNoMem; // SIGBUS on the real system
    result.kind = FaultKind::kInvalid;
    return emit_fault(as, now, core, result, ft);
  }
  const auto [phys, got_zone] = *page;
  const Addr base = align_down(vaddr, kLargePageSize);
  PtOpStats pt_stats;
  const Errno err = as.page_table().map(base, phys, PageSize::k2M, vma.prot, &pt_stats);
  HPMMAP_ASSERT(err == Errno::kOk, "hugetlb region double-mapped");
  result.kind = merge_wait > 0 ? FaultKind::kMergeFollower : FaultKind::kLarge;
  result.used = PageSize::k2M;
  // The hugetlb path takes the hugetlb mutex and reservation map, then
  // zeroes 2 MiB without the clearing-cache assists the normal path has;
  // this is why Figure 3's large faults are pricier than THP's yet
  // mostly load-insensitive (pool memory is never contended).
  const Cycles zero =
      memory_.zero_cost(got_zone, kLargePageSize, costs.hugetlb_zero_bytes_per_cycle);
  const Cycles pt = pt_stats.tables_allocated * costs.pt_alloc_table + costs.pte_install;
  result.cost += costs.hugetlb_fault_overhead + zero + pt;
  ft.add("fault.hugetlb_pool", costs.hugetlb_fault_overhead);
  ft.add("fault.zero", zero);
  ft.add("fault.pt", pt);
  return emit_fault(as, now, core, finish(result, got_zone), ft);
}

} // namespace hpmmap::mm
