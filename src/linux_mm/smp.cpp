#include "linux_mm/smp.hpp"

#include "common/assert.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace hpmmap::mm {

namespace {

/// One kLock tracepoint per suffered wait: a complete-event spanning the
/// spin, on the waiter's core track. Zero-wait acquires stay silent so
/// the flight recorder holds contention, not bookkeeping.
void trace_wait(const char* lock_name, Cycles now, Cycles wait, Cycles hold, Pid pid,
                std::int32_t core) {
  if (wait == 0 || !trace::on(trace::Category::kLock)) {
    return;
  }
  trace::complete(trace::Category::kLock, lock_name, now, wait, pid, core,
                  {trace::Arg::u64("hold", hold)});
  trace::metrics().counter(lock_name) += wait;
}

} // namespace

SmpDomain::SmpDomain(const SmpConfig& config, const CostModel& costs, std::uint32_t zones)
    : config_(config), costs_(costs), zones_(zones) {
  HPMMAP_ASSERT(config_.cores > 0, "SMP domain needs at least one core");
  HPMMAP_ASSERT(zones_ > 0, "SMP domain needs at least one zone");
  zone_locks_.resize(zones_);
  cpu_stall_.assign(config_.cores, 0);
  pcp_.resize(static_cast<std::size_t>(config_.cores) * zones_);
}

SmpDomain::MmState& SmpDomain::mm(Pid pid) {
  const auto it = std::lower_bound(
      mms_.begin(), mms_.end(), pid,
      [](const MmState& m, Pid p) { return m.pid < p; });
  if (it != mms_.end() && it->pid == pid) {
    return *it;
  }
  MmState fresh;
  fresh.pid = pid;
  fresh.pt_shards.resize(config_.sharded_pt_locks ? config_.pt_shards : 1);
  return *mms_.insert(it, std::move(fresh));
}

void SmpDomain::drop_mm(Pid pid) {
  const auto it = std::lower_bound(
      mms_.begin(), mms_.end(), pid,
      [](const MmState& m, Pid p) { return m.pid < p; });
  if (it != mms_.end() && it->pid == pid) {
    mms_.erase(it);
  }
}

SimLock& SmpDomain::pt_shard(MmState& m, Addr vaddr) noexcept {
  if (m.pt_shards.size() == 1) {
    return m.pt_shards[0];
  }
  return m.pt_shards[(vaddr >> 21) % m.pt_shards.size()];
}

Cycles SmpDomain::mmap_sem_read_enter(Pid pid, Cycles now, std::int32_t core) {
  const Cycles wait = mm(pid).mmap_sem.read_wait(now);
  stats_.mmap_sem_wait += wait;
  trace_wait("lock.mmap_sem.read", now, wait, 0, pid, core);
  return wait;
}

void SmpDomain::mmap_sem_read_exit(Pid pid, Cycles release) {
  mm(pid).mmap_sem.read_hold_until(release);
}

Cycles SmpDomain::mmap_sem_write(Pid pid, Cycles now, Cycles hold, std::int32_t core) {
  const Cycles wait = mm(pid).mmap_sem.write_acquire(now, hold);
  stats_.mmap_sem_wait += wait;
  trace_wait("lock.mmap_sem.write", now, wait, hold, pid, core);
  return wait;
}

Cycles SmpDomain::pt_lock(Pid pid, Addr vaddr, Cycles now, Cycles hold, std::int32_t core) {
  const Cycles wait = pt_shard(mm(pid), vaddr).acquire(now, hold + costs_.smp_lock_acquire);
  stats_.pt_lock_wait += wait;
  trace_wait("lock.pt", now, wait, hold, pid, core);
  return wait;
}

Cycles SmpDomain::cpu_drain(std::int32_t core, Cycles now) {
  if (core < 0 || static_cast<std::uint32_t>(core) >= config_.cores) {
    return 0;
  }
  const Cycles clears = cpu_stall_[static_cast<std::size_t>(core)];
  const Cycles wait = clears > now ? clears - now : 0;
  stats_.ipi_stall += wait;
  trace_wait("lock.ipi_drain", now, wait, 0, 0, core);
  return wait;
}

Cycles SmpDomain::zone_lock(ZoneId zone, Cycles now, Cycles hold, std::int32_t core) {
  HPMMAP_ASSERT(zone < zones_, "zone out of range");
  const Cycles wait = zone_locks_[zone].acquire(now, hold + costs_.smp_lock_acquire);
  stats_.zone_lock_wait += wait;
  trace_wait("lock.zone", now, wait, hold, 0, core);
  return wait;
}

SmallAlloc SmpDomain::alloc_small(MemorySystem& mem, ZoneId zone, std::int32_t core, Cycles now) {
  HPMMAP_ASSERT(zone < zones_, "zone out of range");
  SmallAlloc out;
  const std::uint32_t cpu =
      core >= 0 ? static_cast<std::uint32_t>(core) % config_.cores : 0;

  if (config_.pcp) {
    PcpList& list = pcp_[pcp_index(cpu, zone)];
    if (!list.frames.empty()) {
      out.addr = list.frames.back();
      list.frames.pop_back();
      hw::MemMap& map = mem.buddy(zone).mem_map();
      map.clear_head(map.index_of(out.addr));
      out.ok = true;
      out.from_pcp = true;
      out.work = costs_.smp_pcp_op;
      ++stats_.pcp_hits;
      return out;
    }
    // Miss: refill a batch from the buddy under one zone-lock acquire.
    ++stats_.pcp_misses;
    BuddyAllocator& buddy = mem.buddy(zone);
    hw::MemMap& map = buddy.mem_map();
    Cycles hold = costs_.smp_lock_acquire;
    std::uint32_t got = 0;
    for (std::uint32_t i = 0; i < config_.pcp_batch; ++i) {
      const auto a = buddy.alloc(0);
      if (!a.has_value()) {
        break;
      }
      hold += costs_.buddy_base + a->split_steps * costs_.buddy_split_step +
              costs_.smp_pcp_move_frame;
      if (got == 0) {
        out.addr = a->addr; // first (lowest) frame satisfies this fault
        out.ok = true;
      } else {
        map.set_head(map.index_of(a->addr), hw::FrameState::kPcpCache, 0);
        list.frames.push_back(a->addr);
      }
      ++got;
    }
    stats_.pcp_refilled_frames += got;
    out.wait = zone_locks_[zone].acquire(now, hold);
    stats_.zone_lock_wait += out.wait;
    trace_wait("lock.zone", now, out.wait, hold, 0, core);
    out.work = hold;
    if (out.ok) {
      return out;
    }
    // Buddy empty even for the batch's first frame: fall through to the
    // full slow path (reclaim) below, zone lock already paid.
  }

  // No pcp (or refill found nothing): the allocation itself runs under
  // the zone lock, reclaim included — the pre-pcp kernel's behavior.
  const AllocOutcome slow = mem.alloc_pages(zone, 0, /*allow_reclaim=*/true);
  const Cycles slow_work = mem.alloc_cycles(slow, zone) + costs_.smp_lock_acquire;
  const Cycles wait = zone_locks_[zone].acquire(now, slow_work);
  stats_.zone_lock_wait += wait;
  trace_wait("lock.zone", now, wait, slow_work, 0, core);
  out.wait += wait;
  out.work += slow_work;
  out.addr = slow.addr;
  out.ok = slow.ok;
  out.entered_reclaim = slow.entered_reclaim;
  return out;
}

LockedOp SmpDomain::free_small(MemorySystem& mem, ZoneId zone, std::int32_t core, Addr addr,
                               Cycles now) {
  HPMMAP_ASSERT(zone < zones_, "zone out of range");
  if (!config_.pcp) {
    return free_block(mem, zone, core, addr, 0, now);
  }
  const std::uint32_t cpu =
      core >= 0 ? static_cast<std::uint32_t>(core) % config_.cores : 0;
  PcpList& list = pcp_[pcp_index(cpu, zone)];
  hw::MemMap& map = mem.buddy(zone).mem_map();
  map.set_head(map.index_of(addr), hw::FrameState::kPcpCache, 0);
  list.frames.push_back(addr);
  LockedOp op;
  op.work = costs_.smp_pcp_op;
  if (list.frames.size() > config_.pcp_high) {
    const LockedOp drained = drain_list(mem, zone, list, now + op.work, config_.pcp_batch);
    op.wait += drained.wait;
    op.work += drained.work;
  }
  return op;
}

LockedOp SmpDomain::free_block(MemorySystem& mem, ZoneId zone, std::int32_t core, Addr addr,
                               unsigned order, Cycles now) {
  const unsigned merges = mem.free_pages(zone, addr, order);
  const Cycles hold =
      costs_.smp_lock_acquire + costs_.buddy_base + merges * costs_.buddy_merge_step;
  const Cycles wait = zone_locks_[zone].acquire(now, hold);
  stats_.zone_lock_wait += wait;
  trace_wait("lock.zone", now, wait, hold, 0, core);
  return LockedOp{wait, hold};
}

LockedOp SmpDomain::drain_list(MemorySystem& mem, ZoneId zone, PcpList& list, Cycles now,
                               std::size_t down_to) {
  if (list.frames.size() <= down_to) {
    return {};
  }
  ++stats_.pcp_drains;
  hw::MemMap& map = mem.buddy(zone).mem_map();
  Cycles hold = costs_.smp_lock_acquire;
  const std::size_t spill = list.frames.size() - down_to;
  // Coldest frames (front of the LIFO) go back to the buddy.
  for (std::size_t i = 0; i < spill; ++i) {
    const Addr addr = list.frames[i];
    map.clear_head(map.index_of(addr));
    const unsigned merges = mem.free_pages(zone, addr, 0);
    hold += costs_.buddy_base + merges * costs_.buddy_merge_step + costs_.smp_pcp_move_frame;
  }
  list.frames.erase(list.frames.begin(),
                    list.frames.begin() + static_cast<std::ptrdiff_t>(spill));
  const Cycles wait = zone_locks_[zone].acquire(now, hold);
  stats_.zone_lock_wait += wait;
  trace_wait("lock.zone", now, wait, hold, 0, -1);
  return LockedOp{wait, hold};
}

Cycles SmpDomain::ipi_round(std::int32_t core, std::uint64_t pages, Cycles now) {
  ++stats_.shootdown_ipis;
  stats_.shootdown_pages += pages;
  // Remote CPUs stall to service the interrupt; their backlog extends
  // past `now` so their next fault entry (cpu_drain) eats the stall.
  for (std::uint32_t c = 0; c < config_.cores; ++c) {
    if (static_cast<std::int32_t>(c) == core) {
      continue;
    }
    cpu_stall_[c] = std::max(cpu_stall_[c], now) + costs_.tlb_ipi_handler;
  }
  const std::uint64_t invalidations = std::min<std::uint64_t>(pages, 33);
  const Cycles cost = costs_.tlb_ipi_send +
                      static_cast<Cycles>(config_.cores - 1) * costs_.tlb_ipi_per_core +
                      (invalidations > 32 ? costs_.tlb_flush_full
                                          : invalidations * costs_.tlb_flush_page);
  if (trace::on(trace::Category::kLock)) {
    trace::complete(trace::Category::kLock, "smp.shootdown", now, cost, 0, core,
                    {trace::Arg::u64("pages", pages),
                     trace::Arg::u64("targets", config_.cores - 1)});
    ++trace::metrics().counter("smp.shootdown.rounds");
  }
  return cost;
}

Cycles SmpDomain::note_unmap(Pid pid, std::uint64_t pages, std::int32_t core, Cycles now) {
  if (pages == 0) {
    return 0;
  }
  if (!config_.batched_shootdowns) {
    // Pre-mmu_gather kernel: flush_tlb_page IPIs every other core once
    // per unmapped PTE. Modeled as `pages` back-to-back one-page rounds
    // folded into a single O(cores) pass so the event count stays flat.
    stats_.shootdown_ipis += pages;
    stats_.shootdown_pages += pages;
    for (std::uint32_t c = 0; c < config_.cores; ++c) {
      if (static_cast<std::int32_t>(c) == core) {
        continue;
      }
      cpu_stall_[c] = std::max(cpu_stall_[c], now) + pages * costs_.tlb_ipi_handler;
    }
    const Cycles per_round = costs_.tlb_ipi_send +
                             static_cast<Cycles>(config_.cores - 1) * costs_.tlb_ipi_per_core +
                             costs_.tlb_flush_page;
    const Cycles cost = pages * per_round;
    if (trace::on(trace::Category::kLock)) {
      trace::complete(trace::Category::kLock, "smp.shootdown", now, cost, pid, core,
                      {trace::Arg::u64("pages", pages),
                       trace::Arg::u64("rounds", pages)});
      trace::metrics().counter("smp.shootdown.rounds") += pages;
    }
    return cost;
  }
  MmState& m = mm(pid);
  m.pending_shootdown_pages += pages;
  Cycles cost = 0;
  while (m.pending_shootdown_pages >= config_.shootdown_batch) {
    m.pending_shootdown_pages -= config_.shootdown_batch;
    cost += ipi_round(core, config_.shootdown_batch, now + cost);
  }
  return cost;
}

Cycles SmpDomain::flush_shootdowns(Pid pid, std::int32_t core, Cycles now) {
  MmState& m = mm(pid);
  if (m.pending_shootdown_pages == 0) {
    return 0;
  }
  const std::uint64_t pages = m.pending_shootdown_pages;
  m.pending_shootdown_pages = 0;
  return ipi_round(core, pages, now);
}

void SmpDomain::drain_all(MemorySystem& mem) {
  for (std::uint32_t cpu = 0; cpu < config_.cores; ++cpu) {
    for (std::uint32_t z = 0; z < zones_; ++z) {
      PcpList& list = pcp_[pcp_index(cpu, z)];
      hw::MemMap& map = mem.buddy(z).mem_map();
      for (const Addr addr : list.frames) {
        map.clear_head(map.index_of(addr));
        mem.free_pages(z, addr, 0);
      }
      list.frames.clear();
    }
  }
}

std::uint64_t SmpDomain::pcp_cached_bytes(ZoneId zone) const {
  std::uint64_t frames = 0;
  for (std::uint32_t cpu = 0; cpu < config_.cores; ++cpu) {
    frames += pcp_[pcp_index(cpu, zone)].frames.size();
  }
  return frames * kSmallPageSize;
}

void SmpDomain::corrupt_clone_pcp_frame(std::uint32_t from_cpu, std::uint32_t to_cpu,
                                        ZoneId zone) {
  PcpList& from = pcp_[pcp_index(from_cpu, zone)];
  HPMMAP_ASSERT(!from.frames.empty(), "no cached frame to clone");
  pcp_[pcp_index(to_cpu, zone)].frames.push_back(from.frames.back());
}

} // namespace hpmmap::mm
